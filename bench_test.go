// Benchmarks regenerating every table and figure of the paper at
// reduced scale (full-scale runs are `cmd/alexbench -exp all`). Each
// benchmark runs the complete pipeline — synthetic data generation,
// PARIS-style baseline, ALEX to convergence — and reports the headline
// quantities of the corresponding figure as custom metrics.
package alex_test

import (
	"net/http/httptest"
	"testing"

	"alex/internal/core"
	"alex/internal/experiments"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/server"
	"alex/internal/synth"
)

// benchOpts returns the reduced-scale options used by all quality
// benchmarks: half the paper-scale entity counts with the episode size
// shrunk proportionally, so per-link feedback exposure matches the
// full-scale experiments (smaller scales over-expose each link and
// distort the noise experiments).
func benchOpts() experiments.Options {
	return experiments.Options{
		Scale: 0.5,
		Mutate: func(c *core.Config) {
			c.EpisodeSize = 500
			c.MaxEpisodes = 30
		},
	}
}

func benchQuality(b *testing.B, profile string, opts experiments.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		r, err := experiments.RunQuality(profile, opts)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.Final.F1, "finalF")
		b.ReportMetric(r.Final.Recall, "finalR")
		b.ReportMetric(float64(r.Result.Episodes), "episodes")
		b.ReportMetric(float64(r.Discovered), "discovered")
	}
}

// BenchmarkTable1Datasets regenerates the Table 1 dataset inventory.
func BenchmarkTable1Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table1(0.1)
		if len(rows) != 11 {
			b.Fatalf("rows = %d", len(rows))
		}
		triples := 0
		for _, r := range rows {
			triples += r.Triples1 + r.Triples2
		}
		b.ReportMetric(float64(triples), "triples")
	}
}

// BenchmarkFig2aDBpediaNYTimes: batch mode, low initial recall (Fig 2a).
func BenchmarkFig2aDBpediaNYTimes(b *testing.B) {
	benchQuality(b, "dbpedia-nytimes", benchOpts())
}

// BenchmarkFig2bDBpediaDrugbank: batch mode, low initial precision (Fig 2b).
func BenchmarkFig2bDBpediaDrugbank(b *testing.B) {
	benchQuality(b, "dbpedia-drugbank", benchOpts())
}

// BenchmarkFig2cDBpediaLexvo: batch mode, both metrics low (Fig 2c).
func BenchmarkFig2cDBpediaLexvo(b *testing.B) {
	benchQuality(b, "dbpedia-lexvo", benchOpts())
}

// BenchmarkFig3OpenCycPairs covers Figures 3a-3c.
func BenchmarkFig3OpenCycPairs(b *testing.B) {
	for _, profile := range []string{"opencyc-nytimes", "opencyc-drugbank", "opencyc-lexvo"} {
		b.Run(profile, func(b *testing.B) {
			benchQuality(b, profile, benchOpts())
		})
	}
}

// BenchmarkFig4SpecificDomains covers Figures 4a-4d (episode size 10).
func BenchmarkFig4SpecificDomains(b *testing.B) {
	opts := experiments.Options{Scale: 0.5, Mutate: func(c *core.Config) { c.MaxEpisodes = 40 }}
	for _, profile := range []string{"dbpedia-dogfood", "opencyc-dogfood", "dbpedia-nba-nytimes", "opencyc-nba-nytimes"} {
		b.Run(profile, func(b *testing.B) {
			benchQuality(b, profile, opts)
		})
	}
}

// BenchmarkFig5aFiltering measures the θ-filtering reduction (Fig 5a).
func BenchmarkFig5aFiltering(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5("dbpedia-nytimes", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.ReductionPct, "reduction%")
		b.ReportMetric(float64(r.TotalPairs), "totalPairs")
		b.ReportMetric(float64(r.FilteredPairs), "filteredPairs")
	}
}

// BenchmarkFig5bFilteredVsGT measures the ground-truth share (Fig 5b).
func BenchmarkFig5bFilteredVsGT(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5("dbpedia-nytimes", 0.5)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.GTShareOfFilteredPct, "gtShare%")
	}
}

// BenchmarkFig6Blacklist compares blacklist on/off (Figs 6a, 6b).
func BenchmarkFig6Blacklist(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.Fig6Blacklist("dbpedia-nytimes", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.Runs[0].Final.F1, "withF")
		b.ReportMetric(c.Runs[1].Final.F1, "withoutF")
		b.ReportMetric(meanNeg(c.Runs[0]), "withNeg%")
		b.ReportMetric(meanNeg(c.Runs[1]), "withoutNeg%")
	}
}

// BenchmarkFig7Rollback compares rollback on/off (Figs 7a-7c).
func BenchmarkFig7Rollback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7Rollback("dbpedia-nytimes", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(r.WithRollback.Final.F1, "withF")
		b.ReportMetric(r.WithoutRollback.Final.F1, "withoutF")
	}
}

// BenchmarkExecutionTime reproduces the §7.3 timing comparison.
func BenchmarkExecutionTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ExecutionTime([]string{"dbpedia-nytimes", "dbpedia-nba-nytimes"}, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].PerEpisode.Seconds(), "batch-s/ep")
		b.ReportMetric(rows[1].PerEpisode.Seconds(), "domain-s/ep")
	}
}

// BenchmarkFig8MultiDomain stresses the largest pair (Appendix B, Fig 8).
func BenchmarkFig8MultiDomain(b *testing.B) {
	opts := experiments.Options{Scale: 0.25, Mutate: func(c *core.Config) {
		c.EpisodeSize = 300
		c.MaxEpisodes = 30
	}}
	benchQuality(b, "dbpedia-opencyc", opts)
}

// BenchmarkFig9IncorrectFeedback compares 0% vs 10% feedback error
// (Appendix C, Fig 9).
func BenchmarkFig9IncorrectFeedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.Fig9IncorrectFeedback("dbpedia-nytimes", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(c.Runs[0].Final.Recall, "cleanR")
		b.ReportMetric(c.Runs[1].Final.Recall, "noisyR")
	}
}

// BenchmarkFig10StepSize sweeps the step size (Appendix D, Fig 10).
func BenchmarkFig10StepSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := experiments.Fig10StepSize("dbpedia-nytimes", benchOpts(), []float64{0.01, 0.05, 0.1})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range sw.Points {
			b.ReportMetric(p.Run.Final.Recall, "R@"+p.Label)
		}
	}
}

// BenchmarkFig11EpisodeSize sweeps the episode size (Appendix D, Fig 11).
func BenchmarkFig11EpisodeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		sw, err := experiments.Fig11EpisodeSize("dbpedia-nytimes",
			experiments.Options{Scale: 0.5, Mutate: func(c *core.Config) { c.MaxEpisodes = 30 }},
			[]int{250, 500, 750})
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range sw.Points {
			b.ReportMetric(float64(p.Run.Result.Episodes), "eps@"+p.Label)
		}
	}
}

// BenchmarkAblationPolicy isolates the value of the RL policy against a
// uniform random action choice (beyond the paper).
func BenchmarkAblationPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		c, err := experiments.AblationPolicy("dbpedia-nytimes", benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(meanNeg(c.Runs[0]), "learnedNeg%")
		b.ReportMetric(meanNeg(c.Runs[1]), "uniformNeg%")
	}
}

// BenchmarkServerQueries measures the alexd serving path — HTTP round
// trip, JSON codec, snapshot load, federated evaluation — as queries/sec
// against an in-process httptest server (beyond the paper: the serving
// layer has no figure, only a latency budget).
func BenchmarkServerQueries(b *testing.B) {
	prof, ok := synth.ProfileByName("dbpedia-drugbank")
	if !ok {
		b.Fatal("profile missing")
	}
	prof = prof.Scale(0.25)
	ds := synth.Generate(prof)
	scored := paris.Link(ds.G1, ds.G2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	for i, s := range scored {
		initial[i] = s.Link
	}
	cfg := core.DefaultConfig()
	cfg.Partitions = prof.Partitions
	sys := core.New(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg)
	srv, err := server.New(sys, ds.Dict, []federation.Source{
		{Name: "ds1", Graph: ds.G1},
		{Name: "ds2", Graph: ds.G2},
	}, server.Config{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := server.NewClient(ts.URL)
	ls, err := client.Links()
	if err != nil || len(ls.Links) == 0 {
		b.Fatalf("links: %v (%d)", err, len(ls.Links))
	}
	entities := make([]string, 0, len(ls.Links))
	seen := map[string]bool{}
	for _, l := range ls.Links {
		if !seen[l.E1] {
			seen[l.E1] = true
			entities = append(entities, l.E1)
		}
	}
	query := func(i int) string {
		return "SELECT ?n WHERE { <" + entities[i%len(entities)] + "> <http://ds2.example.org/prop/name> ?n . }"
	}
	// One warm round trip so connection setup is off the clock.
	if _, err := client.Query(query(0)); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, err := client.Query(query(i)); err != nil {
				b.Errorf("query: %v", err)
				return
			}
			i++
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

func meanNeg(r *experiments.QualityRun) float64 {
	if len(r.Series.NegativeFeedbackPct) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range r.Series.NegativeFeedbackPct {
		s += v
	}
	return s / float64(len(r.Series.NegativeFeedbackPct))
}
