# Developer entry points. `make verify` is the full pre-commit gate:
# tier-1 (build + test) plus vet, alexlint, and the race detector.

GO ?= go

.PHONY: all build test race vet lint verify fmt fmt-check bench bench-space bench-query bench-fleet bench-store fleet-smoke fleet-chaos clean

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint builds and runs alexlint, the ALEX invariant analyzer suite
# (internal/analysis). Also usable as `go vet -vettool=bin/alexlint`.
# The wall-clock budget guards the two-phase loader: the repo-wide
# typecheck + fact fixpoint must stay interactive, or the gate stops
# being run before commits.
lint:
	@start=$$(date +%s) && \
	$(GO) build -o bin/alexlint ./cmd/alexlint && \
	./bin/alexlint ./... && \
	elapsed=$$(( $$(date +%s) - start )) && \
	echo "lint: clean in $${elapsed}s (budget 60s)" && \
	if [ $$elapsed -ge 60 ]; then \
		echo "lint: FAIL: $${elapsed}s exceeds the 60s budget" >&2; exit 1; fi

verify: build vet lint test race
	@echo "verify: OK"

fmt:
	gofmt -l -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench: bench-space bench-query
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-space runs the feature-space construction scaling benchmark
# (-cpu rows are the parallel speedup curve) and records the results as
# BENCH_space.json via cmd/benchjson.
bench-space:
	$(GO) test -run '^$$' -bench '^BenchmarkSpaceBuild$$' -benchmem \
		-cpu=1,2,4,8 ./internal/feature | \
		$(GO) run ./cmd/benchjson -out BENCH_space.json

# bench-query runs the federated query read-path benchmarks: the
# legacy serial evaluator vs the fast path with cold and pre-warmed
# plan caches, plus static vs adaptive execution on the skewed-hub
# profile, across -cpu worker counts. Results land in BENCH_query.json
# (with delta_vs_prev against the previous run's file).
bench-query:
	$(GO) test -run '^$$' -bench '^(BenchmarkFederatedQuery|BenchmarkAdaptiveQuery)$$' -benchmem \
		-cpu=1,2,4,8 ./internal/federation | \
		$(GO) run ./cmd/benchjson -out BENCH_query.json

# bench-store runs the segment-store lifecycle benchmark at the
# largest synth profile: segment build, mmap'd full scan, the O(delta)
# disk checkpoint vs the mem backend's full serialization (acceptance:
# >=10x faster), and mmap cold start vs N-Triples re-parse (acceptance:
# faster). Results land in BENCH_store.json (delta_vs_prev against the
# previous run).
bench-store:
	$(GO) test -run '^$$' -bench '^BenchmarkSegmentStore$$' -benchmem \
		./internal/store | \
		$(GO) run ./cmd/benchjson -out BENCH_store.json

# bench-fleet runs the sharded-fleet scatter-gather benchmark: router
# query throughput over 1, 2 and 4 alexd shards with simulated
# I/O-bound sources. Acceptance is queries/s growing with the shard
# count; results land in BENCH_fleet.json.
bench-fleet:
	$(GO) test -run '^$$' -bench '^BenchmarkFleetQuery$$' -benchmem \
		-benchtime=200x ./internal/fleet | \
		$(GO) run ./cmd/benchjson -out BENCH_fleet.json

# fleet-smoke boots 3 alexd shards plus an alexrouter out-of-process,
# queries through the router, kills one shard, asserts
# degraded-but-correct serving, restarts it and asserts recovery.
fleet-smoke:
	./scripts/fleet_smoke.sh

# fleet-chaos is the seeded chaos drill: 3 shards behind faultnetd
# proxies (latency, drops, 5xx, partition) plus a SIGKILL'd shard;
# asserts zero acked-feedback loss and answer identity vs single-node.
fleet-chaos:
	./scripts/fleet_chaos.sh

clean:
	$(GO) clean ./...
	rm -rf bin
