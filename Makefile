# Developer entry points. `make verify` is the full pre-commit gate:
# tier-1 (build + test) plus vet, alexlint, and the race detector.

GO ?= go

.PHONY: all build test race vet lint verify fmt fmt-check bench bench-space bench-query clean

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint builds and runs alexlint, the ALEX invariant analyzer suite
# (internal/analysis). Also usable as `go vet -vettool=bin/alexlint`.
lint:
	$(GO) build -o bin/alexlint ./cmd/alexlint
	./bin/alexlint ./...

verify: build vet lint test race
	@echo "verify: OK"

fmt:
	gofmt -l -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench: bench-space bench-query
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

# bench-space runs the feature-space construction scaling benchmark
# (-cpu rows are the parallel speedup curve) and records the results as
# BENCH_space.json via cmd/benchjson.
bench-space:
	$(GO) test -run '^$$' -bench '^BenchmarkSpaceBuild$$' -benchmem \
		-cpu=1,2,4,8 ./internal/feature | \
		$(GO) run ./cmd/benchjson -out BENCH_space.json

# bench-query runs the federated query read-path benchmark: the legacy
# serial evaluator vs the fast path with cold and pre-warmed plan
# caches, across -cpu worker counts. Results land in BENCH_query.json.
bench-query:
	$(GO) test -run '^$$' -bench '^BenchmarkFederatedQuery$$' -benchmem \
		-cpu=1,2,4,8 ./internal/federation | \
		$(GO) run ./cmd/benchjson -out BENCH_query.json

clean:
	$(GO) clean ./...
	rm -rf bin
