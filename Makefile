# Developer entry points. `make verify` is the full pre-commit gate:
# tier-1 (build + test) plus vet, alexlint, and the race detector.

GO ?= go

.PHONY: all build test race vet lint verify fmt fmt-check bench clean

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# lint builds and runs alexlint, the ALEX invariant analyzer suite
# (internal/analysis). Also usable as `go vet -vettool=bin/alexlint`.
lint:
	$(GO) build -o bin/alexlint ./cmd/alexlint
	./bin/alexlint ./...

verify: build vet lint test race
	@echo "verify: OK"

fmt:
	gofmt -l -w .

fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
	rm -rf bin
