# Developer entry points. `make verify` is the full pre-commit gate:
# tier-1 (build + test) plus vet and the race detector.

GO ?= go

.PHONY: all build test race vet verify fmt bench clean

all: verify

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

verify: build vet test race
	@echo "verify: OK"

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

clean:
	$(GO) clean ./...
