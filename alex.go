// Package alex is a from-scratch Go reproduction of ALEX — "ALEX:
// Automatic Link Exploration in Linked Data" (El-Roby and Aboulnaga,
// SIGMOD 2015) — together with every substrate it depends on: an
// in-memory RDF triple store with N-Triples I/O, a SPARQL-subset engine,
// a federated query processor with owl:sameAs join provenance, a
// PARIS-style automatic linker for the initial candidate links, and the
// ALEX core itself (Monte-Carlo reinforcement-learned link exploration
// driven by user feedback on query answers).
//
// The typical pipeline is:
//
//	dict := alex.NewDict()
//	g1 := alex.NewGraphWithDict(dict)          // load dataset 1
//	g2 := alex.NewGraphWithDict(dict)          // load dataset 2
//	initial := alex.AutoLink(g1, g2, e1, e2, alex.AutoLinkOptions())
//	sys := alex.NewSystem(g1, g2, e1, e2, alex.LinksOf(initial), alex.DefaultConfig())
//	// answer federated queries, route answer feedback to sys.Feedback,
//	// or drive episodes with a ground-truth oracle:
//	oracle := alex.NewOracle(groundTruth, 0, rand.New(rand.NewSource(1)))
//	sys.Run(oracle, nil)
//	improved := sys.Candidates()
//
// Everything under internal/ is reachable through the aliases and
// constructors exported here.
package alex

import (
	"math/rand"
	"net"

	"alex/internal/cluster"
	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/federation"
	"alex/internal/feedback"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/rdf"
	"alex/internal/sparql"
	"alex/internal/synth"
)

// RDF data model.
type (
	// Term is an RDF term (IRI, literal, or blank node).
	Term = rdf.Term
	// Triple is an RDF statement.
	Triple = rdf.Triple
	// Graph is an in-memory, dictionary-encoded triple store.
	Graph = rdf.Graph
	// Dict interns terms to dense IDs; share one Dict across the graphs
	// of a linking task.
	Dict = rdf.Dict
	// ID is a dictionary-encoded term identifier.
	ID = rdf.ID
)

// Links and evaluation.
type (
	// Link is a candidate owl:sameAs edge between two entities.
	Link = links.Link
	// ScoredLink is a link with the linker's confidence.
	ScoredLink = links.Scored
	// LinkSet is a set of links.
	LinkSet = links.Set
	// Metrics holds precision/recall/F-measure against a ground truth.
	Metrics = eval.Metrics
	// Series tracks metrics episode by episode.
	Series = eval.Series
)

// The ALEX system.
type (
	// Config holds every tunable of ALEX; see DefaultConfig.
	Config = core.Config
	// System is a running ALEX instance.
	System = core.System
	// EpisodeStats summarizes one feedback episode.
	EpisodeStats = core.EpisodeStats
	// RunResult summarizes a full run to convergence.
	RunResult = core.Result
	// Oracle simulates users answering from a ground truth.
	Oracle = feedback.Oracle
	// Crowd simulates majority-vote feedback from many noisy users.
	Crowd = feedback.Crowd
	// Judger is the feedback interface accepted by System.Run: Oracle,
	// Crowd, or your own feedback channel.
	Judger = feedback.Judger
)

// Federated querying.
type (
	// Federator answers SPARQL queries across linked datasets and
	// records per-answer link provenance.
	Federator = federation.Federator
	// AnswerRow is one federated answer with the links it used.
	AnswerRow = federation.Row
	// AnswerSet holds federated query results.
	AnswerSet = federation.ResultSet
	// Query is a parsed SPARQL query.
	Query = sparql.Query
	// QueryResult holds single-graph SPARQL solutions.
	QueryResult = sparql.Result
)

// Synthetic workloads (the paper's dataset-pair stand-ins).
type (
	// Profile describes a synthetic dataset pair.
	Profile = synth.Profile
	// SynthDataset is a generated dataset pair with ground truth.
	SynthDataset = synth.Dataset
)

// Term constructors.
var (
	// IRI returns an IRI term.
	IRI = rdf.IRI
	// Literal returns a plain string literal.
	Literal = rdf.Literal
	// TypedLiteral returns a literal with a datatype IRI.
	TypedLiteral = rdf.TypedLiteral
	// LangLiteral returns a language-tagged literal.
	LangLiteral = rdf.LangLiteral
	// Blank returns a blank-node term.
	Blank = rdf.Blank
)

// Storage constructors and N-Triples I/O.
var (
	// NewDict returns an empty term dictionary.
	NewDict = rdf.NewDict
	// NewGraph returns a graph with a private dictionary.
	NewGraph = rdf.NewGraph
	// NewGraphWithDict returns a graph over a shared dictionary.
	NewGraphWithDict = rdf.NewGraphWithDict
	// ReadNTriples loads N-Triples into a graph.
	ReadNTriples = rdf.ReadNTriples
	// WriteNTriples serializes a graph as N-Triples.
	WriteNTriples = rdf.WriteNTriples
)

// DefaultConfig returns the paper's default ALEX settings (§7.1).
func DefaultConfig() Config { return core.DefaultConfig() }

// NewSystem builds an ALEX instance over two graphs that share a
// dictionary, the entity lists of both datasets, and the initial
// candidate links from any automatic linker.
func NewSystem(g1, g2 *Graph, entities1, entities2 []ID, initial []Link, cfg Config) *System {
	return core.New(g1, g2, entities1, entities2, initial, cfg)
}

// AutoLinkConfig configures the built-in PARIS-style automatic linker.
type AutoLinkConfig = paris.Options

// AutoLinkOptions returns the linker defaults used in the paper
// (score threshold 0.95).
func AutoLinkOptions() AutoLinkConfig { return paris.NewOptions() }

// AutoLink runs the PARIS-style probabilistic aligner and returns scored
// candidate links. ALEX accepts links from any source; this is the
// baseline the paper evaluates with.
func AutoLink(g1, g2 *Graph, entities1, entities2 []ID, opts AutoLinkConfig) []ScoredLink {
	return paris.Link(g1, g2, entities1, entities2, opts)
}

// LinksOf strips scores from scored links.
func LinksOf(scored []ScoredLink) []Link {
	out := make([]Link, len(scored))
	for i, s := range scored {
		out[i] = s.Link
	}
	return out
}

// NewLinkSet builds a LinkSet from links.
func NewLinkSet(ls ...Link) LinkSet { return links.NewSet(ls...) }

// Evaluate computes precision, recall and F-measure of candidates
// against a ground truth.
func Evaluate(candidates, groundTruth LinkSet) Metrics {
	return eval.Compute(candidates, groundTruth)
}

// NewOracle returns a feedback oracle over a ground truth with the given
// incorrect-feedback rate.
func NewOracle(groundTruth LinkSet, errRate float64, rng *rand.Rand) *Oracle {
	return feedback.NewOracle(groundTruth, errRate, rng)
}

// NewCrowd returns a majority-vote crowd of `voters` users, each erring
// with probability errRate (§6.3's feedback-refinement idea).
func NewCrowd(groundTruth LinkSet, errRate float64, voters int, rng *rand.Rand) *Crowd {
	return feedback.NewCrowd(groundTruth, errRate, voters, rng)
}

// NewFederator returns a federated query processor over a shared
// dictionary. Register sources with AddSource and install the current
// candidate links with SetLinks.
func NewFederator(dict *Dict) *Federator { return federation.New(dict) }

// ApproveAnswer routes positive feedback on a federated answer to ALEX:
// every link the answer used is approved.
func ApproveAnswer(row AnswerRow, sys *System) { federation.Approve(row, sys) }

// RejectAnswer routes negative feedback on a federated answer to ALEX.
func RejectAnswer(row AnswerRow, sys *System) { federation.Reject(row, sys) }

// ParseQuery parses a SPARQL SELECT query (the supported subset covers
// BGPs, FILTER, OPTIONAL, UNION, DISTINCT, ORDER BY, LIMIT, OFFSET).
func ParseQuery(q string) (*Query, error) { return sparql.Parse(q) }

// ExecuteQuery runs a SPARQL query against a single graph.
func ExecuteQuery(g *Graph, q string) (*QueryResult, error) { return sparql.Execute(g, q) }

// Profiles lists the built-in synthetic dataset-pair profiles, one per
// pair in the paper's Table 1.
func Profiles() []Profile { return synth.Profiles() }

// ProfileByName returns a built-in profile.
func ProfileByName(name string) (Profile, bool) { return synth.ProfileByName(name) }

// GenerateDataset builds the synthetic dataset pair for a profile.
func GenerateDataset(p Profile) *SynthDataset { return synth.Generate(p) }

// ReadTurtle loads a Turtle document into a graph.
var ReadTurtle = rdf.ReadTurtle

// WriteTurtle serializes a graph as Turtle with the given prefix map.
var WriteTurtle = rdf.WriteTurtle

// ConstructQuery evaluates a SPARQL CONSTRUCT query against a graph and
// returns the constructed triples as a new graph sharing the input's
// dictionary — handy for materializing owl:sameAs links or mapping
// vocabularies.
func ConstructQuery(g *Graph, q string) (*Graph, error) { return sparql.Construct(g, q) }

// FeatureStat summarizes what ALEX learned about one feature (a pair of
// predicates); see System.FeatureStats.
type FeatureStat = core.FeatureStat

// FormatFeatureStats renders learned feature statistics with predicate
// names resolved through the dictionary.
func FormatFeatureStats(d *Dict, stats []FeatureStat) string {
	return core.FormatFeatureStats(d, stats)
}

// Distributed execution (paper §6.2, multi-machine setting).
type (
	// ClusterCoordinator drives remote workers through episodes.
	ClusterCoordinator = cluster.Coordinator
	// ClusterWorker serves one dataset shard over RPC.
	ClusterWorker = cluster.Worker
)

// ServeWorker serves ALEX shards on a listener; it blocks until the
// listener closes. Pair with DialCluster on the coordinator side.
func ServeWorker(l net.Listener) error { return cluster.Serve(l) }

// DialCluster connects a coordinator to worker addresses.
func DialCluster(addrs []string) (*ClusterCoordinator, error) { return cluster.Dial(addrs) }
