package alex_test

import (
	"fmt"
	"math/rand"

	"alex"
)

// ExampleAutoLink links two tiny datasets with the built-in PARIS-style
// probabilistic aligner.
func ExampleAutoLink() {
	dict := alex.NewDict()
	g1 := alex.NewGraphWithDict(dict)
	g2 := alex.NewGraphWithDict(dict)

	g1.Insert(alex.Triple{S: alex.IRI("http://a/ada"), P: alex.IRI("http://a/name"), O: alex.Literal("Ada Lovelace")})
	g2.Insert(alex.Triple{S: alex.IRI("http://b/lovelace"), P: alex.IRI("http://b/label"), O: alex.Literal("Ada Lovelace")})

	scored := alex.AutoLink(g1, g2, g1.SubjectIDs(), g2.SubjectIDs(), alex.AutoLinkOptions())
	for _, s := range scored {
		fmt.Printf("%s == %s\n", dict.Term(s.E1).Value, dict.Term(s.E2).Value)
	}
	// Output:
	// http://a/ada == http://b/lovelace
}

// ExampleExecuteQuery runs a SPARQL query against a single graph.
func ExampleExecuteQuery() {
	g := alex.NewGraph()
	g.Insert(alex.Triple{S: alex.IRI("http://e/1"), P: alex.IRI("http://p/name"), O: alex.Literal("Alice")})
	g.Insert(alex.Triple{S: alex.IRI("http://e/2"), P: alex.IRI("http://p/name"), O: alex.Literal("Bob")})

	res, err := alex.ExecuteQuery(g, `SELECT ?n WHERE { ?e <http://p/name> ?n . } ORDER BY ?n`)
	if err != nil {
		panic(err)
	}
	for _, row := range res.Rows {
		fmt.Println(row["n"].Value)
	}
	// Output:
	// Alice
	// Bob
}

// ExampleNewSystem shows the ALEX loop: feedback on a correct link makes
// the system explore around it and discover a similar link.
func ExampleNewSystem() {
	dict := alex.NewDict()
	g1 := alex.NewGraphWithDict(dict)
	g2 := alex.NewGraphWithDict(dict)
	add := func(g *alex.Graph, s, p, o string) {
		g.Insert(alex.Triple{S: alex.IRI(s), P: alex.IRI(p), O: alex.Literal(o)})
	}
	add(g1, "http://a/1", "http://a/name", "Grace Hopper")
	add(g1, "http://a/2", "http://a/name", "Alan Turing")
	add(g2, "http://b/1", "http://b/label", "Grace Hopper")
	add(g2, "http://b/2", "http://b/label", "Alan Turingg") // typo variant

	e1, e2 := g1.SubjectIDs(), g2.SubjectIDs()
	id := func(iri string) alex.ID { v, _ := dict.Lookup(alex.IRI(iri)); return v }

	cfg := alex.DefaultConfig()
	cfg.EpisodeSize = 8
	cfg.StepSize = 0.3 // wide step: the variant is several edits away
	initial := []alex.Link{{E1: id("http://a/1"), E2: id("http://b/1")}}
	sys := alex.NewSystem(g1, g2, e1, e2, initial, cfg)

	truth := alex.NewLinkSet(
		alex.Link{E1: id("http://a/1"), E2: id("http://b/1")},
		alex.Link{E1: id("http://a/2"), E2: id("http://b/2")},
	)
	sys.Run(alex.NewOracle(truth, 0, rand.New(rand.NewSource(1))), nil)

	m := alex.Evaluate(sys.Candidates(), truth)
	fmt.Printf("recall %.1f\n", m.Recall)
	// Output:
	// recall 1.0
}
