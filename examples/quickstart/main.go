// Quickstart: build two tiny RDF datasets describing the same people,
// link them automatically, then let ALEX discover the links the
// automatic linker missed, using feedback from a known ground truth.
package main

import (
	"fmt"
	"math/rand"

	"alex"
)

func main() {
	// Both datasets must share one dictionary so that entity IDs are
	// comparable across them.
	dict := alex.NewDict()
	kb := alex.NewGraphWithDict(dict)   // dataset 1: a knowledge base
	news := alex.NewGraphWithDict(dict) // dataset 2: a news archive

	type fact struct{ s, p, o string }
	add := func(g *alex.Graph, facts []fact) {
		for _, f := range facts {
			g.Insert(alex.Triple{S: alex.IRI(f.s), P: alex.IRI(f.p), O: alex.Literal(f.o)})
		}
	}

	add(kb, []fact{
		{"http://kb/LeBron_James", "http://kb/label", "LeBron James"},
		{"http://kb/LeBron_James", "http://kb/birth", "1984-12-30"},
		{"http://kb/Kevin_Durant", "http://kb/label", "Kevin Durant"},
		{"http://kb/Kevin_Durant", "http://kb/birth", "1988-09-29"},
		{"http://kb/Tim_Duncan", "http://kb/label", "Tim Duncan"},
		{"http://kb/Tim_Duncan", "http://kb/birth", "1976-04-25"},
	})
	// The news archive spells one name identically (the linker will find
	// it) and the others differently (ALEX has to discover them).
	add(news, []fact{
		{"http://news/p1", "http://news/name", "LeBron James"},
		{"http://news/p1", "http://news/born", "1984-12-30"},
		{"http://news/p2", "http://news/name", "Durant, Kevin"},
		{"http://news/p2", "http://news/born", "1988-09-29"},
		{"http://news/p3", "http://news/name", "Tim Dunkan"},
		{"http://news/p3", "http://news/born", "1976-04-26"},
	})

	e1 := kb.SubjectIDs()
	e2 := news.SubjectIDs()

	// Step 1: automatic linking (the PARIS-style baseline).
	scored := alex.AutoLink(kb, news, e1, e2, alex.AutoLinkOptions())
	fmt.Printf("automatic linker found %d link(s):\n", len(scored))
	for _, s := range scored {
		fmt.Printf("  %s == %s (score %.2f)\n", dict.Term(s.E1).Value, dict.Term(s.E2).Value, s.Score)
	}

	// Step 2: ALEX explores around approved links.
	cfg := alex.DefaultConfig()
	cfg.EpisodeSize = 10
	cfg.MaxEpisodes = 20
	sys := alex.NewSystem(kb, news, e1, e2, alex.LinksOf(scored), cfg)

	// Ground truth for the feedback oracle (normally this is a human).
	id := func(iri string) alex.ID {
		v, ok := dict.Lookup(alex.IRI(iri))
		if !ok {
			panic("missing " + iri)
		}
		return v
	}
	truth := alex.NewLinkSet(
		alex.Link{E1: id("http://kb/LeBron_James"), E2: id("http://news/p1")},
		alex.Link{E1: id("http://kb/Kevin_Durant"), E2: id("http://news/p2")},
		alex.Link{E1: id("http://kb/Tim_Duncan"), E2: id("http://news/p3")},
	)
	oracle := alex.NewOracle(truth, 0, rand.New(rand.NewSource(1)))

	before := alex.Evaluate(sys.Candidates(), truth)
	res := sys.Run(oracle, nil)
	after := alex.Evaluate(sys.Candidates(), truth)

	fmt.Printf("\nALEX ran %d episodes (converged=%v)\n", res.Episodes, res.Converged)
	fmt.Printf("before: %v\nafter:  %v\n\nfinal links:\n", before, after)
	for _, l := range sys.Candidates().Slice() {
		fmt.Printf("  %s == %s\n", dict.Term(l.E1).Value, dict.Term(l.E2).Value)
	}
}
