// Checkpointing a long-running ALEX deployment: the paper's batch-mode
// service provider (§7.2.1) collects feedback continuously; this example
// runs a few episodes, snapshots everything the system has learned
// (candidates, provenance, blacklist, Q tables, policies) to a file,
// restores it into a freshly built system, and keeps going.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"alex"
)

func main() {
	prof, ok := alex.ProfileByName("opencyc-lexvo")
	if !ok {
		log.Fatal("missing profile")
	}
	ds := alex.GenerateDataset(prof)
	initial := alex.LinksOf(alex.AutoLink(ds.G1, ds.G2, ds.Entities1, ds.Entities2, alex.AutoLinkOptions()))

	cfg := alex.DefaultConfig()
	cfg.EpisodeSize = prof.EpisodeSize
	cfg.Partitions = prof.Partitions
	cfg.MaxEpisodes = 30

	sys := alex.NewSystem(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg)
	oracle := alex.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(7)))

	for i := 0; i < 3; i++ {
		sys.RunEpisode(oracle)
	}
	mid := alex.Evaluate(sys.Candidates(), ds.GroundTruth)
	fmt.Printf("after 3 episodes: %v\n", mid)

	// Snapshot to disk.
	path := filepath.Join(os.TempDir(), "alex-checkpoint.gob")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Save(f); err != nil {
		log.Fatal(err)
	}
	f.Close()
	info, _ := os.Stat(path)
	fmt.Printf("checkpoint written: %s (%d bytes)\n", path, info.Size())

	// A new process would rebuild the system over the same data and
	// restore. (Dictionary IDs are positional, so the datasets must be
	// loaded identically.)
	restored := alex.NewSystem(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg)
	rf, err := os.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	if err := restored.Restore(rf); err != nil {
		log.Fatal(err)
	}
	rf.Close()
	fmt.Printf("restored at episode %d with %d candidates\n", restored.Episode(), restored.CandidateCount())

	// Continue to convergence from the checkpoint.
	res := restored.Run(alex.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(8))), nil)
	final := alex.Evaluate(restored.Candidates(), ds.GroundTruth)
	fmt.Printf("after %d total episodes (converged=%v): %v\n", res.Episodes, res.Converged, final)
	os.Remove(path)
}
