// Batch-mode simulation (§7.2.1): generate a synthetic dataset pair,
// link it with the PARIS-style baseline, then run ALEX episode by
// episode and print the precision/recall/F-measure trajectory — the
// same curve the paper plots in Figure 2.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"alex"
)

func main() {
	profileName := flag.String("profile", "opencyc-nytimes", "built-in dataset-pair profile")
	scale := flag.Float64("scale", 0.5, "entity-count scale factor")
	episodes := flag.Int("episodes", 20, "maximum feedback episodes")
	errRate := flag.Float64("err", 0, "incorrect feedback rate")
	seed := flag.Int64("seed", 0, "exploration and oracle seed (0 = profile default)")
	flag.Parse()

	prof, ok := alex.ProfileByName(*profileName)
	if !ok {
		log.Fatalf("unknown profile %q", *profileName)
	}
	prof = prof.Scale(*scale)
	ds := alex.GenerateDataset(prof)
	fmt.Printf("dataset pair %s: %d + %d triples, %d ground-truth links\n",
		prof.Name, ds.G1.Size(), ds.G2.Size(), ds.GroundTruth.Len())

	scored := alex.AutoLink(ds.G1, ds.G2, ds.Entities1, ds.Entities2, alex.AutoLinkOptions())
	fmt.Printf("automatic linker: %d candidate links\n\n", len(scored))

	cfg := alex.DefaultConfig()
	cfg.EpisodeSize = prof.EpisodeSize
	cfg.MaxEpisodes = *episodes
	cfg.Partitions = prof.Partitions
	cfg.Seed = prof.Seed
	if *seed != 0 {
		cfg.Seed = *seed
	}
	sys := alex.NewSystem(ds.G1, ds.G2, ds.Entities1, ds.Entities2, alex.LinksOf(scored), cfg)
	oracle := alex.NewOracle(ds.GroundTruth, *errRate, rand.New(rand.NewSource(cfg.Seed)))

	fmt.Printf("%-8s %-10s %-10s %-10s %-8s %-8s\n", "episode", "precision", "recall", "f-measure", "|C|", "neg-fb%")
	m := alex.Evaluate(sys.Candidates(), ds.GroundTruth)
	fmt.Printf("%-8d %-10.3f %-10.3f %-10.3f %-8d\n", 0, m.Precision, m.Recall, m.F1, m.Candidates)

	res := sys.Run(oracle, func(st alex.EpisodeStats) {
		m := alex.Evaluate(sys.Candidates(), ds.GroundTruth)
		fmt.Printf("%-8d %-10.3f %-10.3f %-10.3f %-8d %-8.1f\n",
			st.Episode, m.Precision, m.Recall, m.F1, m.Candidates, st.NegativePct())
	})
	fmt.Printf("\nconverged=%v after %d episodes (relaxed <5%% change at episode %d)\n",
		res.Converged, res.Episodes, res.RelaxedEpisode)

	// What did the policy learn? Distinctive features (name/name,
	// date/date) should rank above the shared non-distinctive type.
	fmt.Printf("\nlearned feature values:\n%s", alex.FormatFeatureStats(ds.Dict, sys.FeatureStats()))
}
