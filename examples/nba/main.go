// The paper's motivating scenario (§1): "Find all New York Times
// articles about the NBA's MVP of 2013." The award fact lives in the
// knowledge base, the articles live in the news archive, and the answer
// requires joining across an owl:sameAs link. The user's feedback on
// each answer becomes feedback on the link that produced it.
package main

import (
	"fmt"
	"log"

	"alex"
)

func main() {
	dict := alex.NewDict()
	kb := alex.NewGraphWithDict(dict)
	news := alex.NewGraphWithDict(dict)

	// The knowledge base knows who won the award.
	lebron := alex.IRI("http://dbpedia.example.org/LeBron_James")
	kb.Insert(alex.Triple{S: lebron, P: alex.IRI("http://dbpedia.example.org/onto/name"), O: alex.Literal("LeBron James")})
	kb.Insert(alex.Triple{S: lebron, P: alex.IRI("http://dbpedia.example.org/onto/birth"), O: alex.Literal("1984-12-30")})
	kb.Insert(alex.Triple{S: lebron, P: alex.IRI("http://dbpedia.example.org/onto/award"), O: alex.Literal("NBA Most Valuable Player Award 2013")})
	durant := alex.IRI("http://dbpedia.example.org/Kevin_Durant")
	kb.Insert(alex.Triple{S: durant, P: alex.IRI("http://dbpedia.example.org/onto/name"), O: alex.Literal("Kevin Durant")})
	kb.Insert(alex.Triple{S: durant, P: alex.IRI("http://dbpedia.example.org/onto/birth"), O: alex.Literal("1988-09-29")})
	kb.Insert(alex.Triple{S: durant, P: alex.IRI("http://dbpedia.example.org/onto/award"), O: alex.Literal("NBA Most Valuable Player Award 2014")})

	// The news archive has articles about its own person IRIs. The name
	// is formatted differently, but the birth date gives the automatic
	// linker the exact-value evidence it needs.
	nytLebron := alex.IRI("http://nytimes.example.org/person/lebron-james")
	news.Insert(alex.Triple{S: nytLebron, P: alex.IRI("http://nytimes.example.org/prop/name"), O: alex.Literal("James, LeBron")})
	news.Insert(alex.Triple{S: nytLebron, P: alex.IRI("http://nytimes.example.org/prop/born"), O: alex.Literal("1984-12-30")})
	for i, headline := range []string{
		"Heat Top Spurs in Game 7",
		"James Leads Miami to Second Straight Title",
		"MVP Again: A Season for the Ages",
	} {
		art := alex.IRI(fmt.Sprintf("http://nytimes.example.org/2013/article-%d", i+1))
		news.Insert(alex.Triple{S: art, P: alex.IRI("http://nytimes.example.org/prop/about"), O: nytLebron})
		news.Insert(alex.Triple{S: art, P: alex.IRI("http://nytimes.example.org/prop/headline"), O: alex.Literal(headline)})
	}

	// Automatic linking produces the initial owl:sameAs candidates.
	e1 := kb.SubjectIDs()
	e2 := news.SubjectIDs()
	scored := alex.AutoLink(kb, news, e1, e2, autoLinkLoose())
	sys := alex.NewSystem(kb, news, e1, e2, alex.LinksOf(scored), alex.DefaultConfig())

	// Federated querying with link provenance.
	fed := alex.NewFederator(dict)
	if err := fed.AddSource("dbpedia", kb); err != nil {
		log.Fatal(err)
	}
	if err := fed.AddSource("nytimes", news); err != nil {
		log.Fatal(err)
	}
	fed.SetLinks(sys.Candidates())

	res, err := fed.Query(`
		PREFIX dbo: <http://dbpedia.example.org/onto/>
		PREFIX nyt: <http://nytimes.example.org/prop/>
		SELECT ?headline WHERE {
			?mvp dbo:award "NBA Most Valuable Player Award 2013" .
			?article nyt:about ?mvp .
			?article nyt:headline ?headline .
		} ORDER BY ?headline`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("articles about the NBA MVP of 2013 (%d answers):\n", len(res.Rows))
	for i, row := range res.Rows {
		fmt.Printf("  [%d] %s (answered via %d sameAs link(s))\n", i, row.Binding["headline"].Value, row.Used.Len())
	}

	// The user approves the first answer; ALEX interprets that as
	// approval of the link between the two LeBron entities and explores
	// around it for similar links.
	before := sys.CandidateCount()
	alex.ApproveAnswer(res.Rows[0], sys)
	fmt.Printf("\nafter approving answer 0: candidate links %d -> %d\n", before, sys.CandidateCount())
}

// autoLinkLoose lowers the linker threshold: the LeBron pair shares only
// its birth date, whose inverse functionality in this toy world is high
// but whose single shared value stays below the strict 0.95 default.
func autoLinkLoose() alex.AutoLinkConfig {
	opts := alex.AutoLinkOptions()
	opts.Threshold = 0.5
	return opts
}
