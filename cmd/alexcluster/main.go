// Command alexcluster runs ALEX partitions across machines (§6.2).
//
// Start workers (one per machine or core):
//
//	alexcluster -serve :7070
//	alexcluster -serve :7071
//
// Then drive them with a coordinator over a synthetic profile:
//
//	alexcluster -workers localhost:7070,localhost:7071 -profile opencyc-nytimes
//
// The coordinator partitions dataset 1 round-robin across the workers,
// ships each worker its shard as N-Triples, and streams feedback items
// to the owning shard.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"strings"

	"alex/internal/cluster"
	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/feedback"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/synth"
)

func main() {
	serve := flag.String("serve", "", "listen address for worker mode (e.g. :7070)")
	workers := flag.String("workers", "", "comma-separated worker addresses for coordinator mode")
	profile := flag.String("profile", "opencyc-nytimes", "synthetic profile for coordinator mode")
	scale := flag.Float64("scale", 0.5, "profile scale factor")
	episodes := flag.Int("episodes", 15, "maximum episodes")
	seed := flag.Int64("seed", 0, "exploration and oracle seed (0 = profile default)")
	flag.Parse()

	switch {
	case *serve != "":
		l, err := net.Listen("tcp", *serve)
		if err != nil {
			log.Fatalf("alexcluster: %v", err)
		}
		fmt.Printf("worker listening on %s\n", l.Addr())
		if err := cluster.Serve(l); err != nil {
			log.Fatalf("alexcluster: %v", err)
		}
	case *workers != "":
		coordinate(strings.Split(*workers, ","), *profile, *scale, *episodes, *seed)
	default:
		flag.Usage()
	}
}

func coordinate(addrs []string, profileName string, scale float64, episodes int, seed int64) {
	prof, ok := synth.ProfileByName(profileName)
	if !ok {
		log.Fatalf("alexcluster: unknown profile %q", profileName)
	}
	prof = prof.Scale(scale)
	ds := synth.Generate(prof)
	scored := paris.Link(ds.G1, ds.G2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	for i, s := range scored {
		initial[i] = s.Link
	}

	cfg := core.DefaultConfig()
	cfg.EpisodeSize = prof.EpisodeSize
	cfg.MaxEpisodes = episodes
	cfg.Seed = prof.Seed
	if seed != 0 {
		cfg.Seed = seed
	}

	coord, err := cluster.Dial(addrs)
	if err != nil {
		log.Fatalf("alexcluster: %v", err)
	}
	defer coord.Close()
	fmt.Printf("coordinating %d workers over %s (%d+%d triples, %d initial links)\n",
		coord.Workers(), prof.Name, ds.G1.Size(), ds.G2.Size(), len(initial))

	if err := coord.Setup(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg); err != nil {
		log.Fatalf("alexcluster: %v", err)
	}
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(cfg.Seed)))

	report := func() eval.Metrics {
		set, err := coord.Candidates()
		if err != nil {
			log.Fatalf("alexcluster: %v", err)
		}
		return eval.Compute(set, ds.GroundTruth)
	}
	fmt.Printf("episode 0: %v\n", report())
	res, err := coord.Run(oracle, func(st core.EpisodeStats) {
		fmt.Printf("episode %d: %v (explored %d, removed %d, neg %.1f%%)\n",
			st.Episode, report(), st.Explored, st.Removed, st.NegativePct())
	})
	if err != nil {
		log.Fatalf("alexcluster: %v", err)
	}
	fmt.Printf("done: %d episodes, converged=%v\n", res.Episodes, res.Converged)
}
