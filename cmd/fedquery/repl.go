package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"alex"
)

const replHelp = `commands:
  <SPARQL>            run a SELECT or ASK query (single line, or end lines with \ to continue)
  approve <i>         approve answer row i of the last result (feedback to ALEX)
  reject <i>          reject answer row i of the last result
  links               show the current candidate link count
  stats               show learned feature statistics
  save <file>         write current links as owl:sameAs N-Triples
  help                this message
  quit                exit`

// runREPL drives the federated query + feedback loop interactively: the
// closest thing in this repo to the user experience the paper describes
// in §3.2.
func runREPL(ds1Path, ds2Path, linksPath, linksOut string) {
	dict := alex.NewDict()
	g1 := loadGraph(ds1Path, dict)
	g2 := loadGraph(ds2Path, dict)
	linkSet := loadLinks(linksPath, dict)

	cfg := alex.DefaultConfig()
	sys := alex.NewSystem(g1, g2, g1.SubjectIDs(), g2.SubjectIDs(), linkSet.Slice(), cfg)

	fed := alex.NewFederator(dict)
	must(fed.AddSource("ds1", g1))
	must(fed.AddSource("ds2", g2))
	fed.SetLinks(sys.Candidates())

	fmt.Printf("fedquery REPL: %d + %d triples, %d links. Type 'help'.\n",
		g1.Size(), g2.Size(), sys.CandidateCount())

	var last *alex.AnswerSet
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var pending strings.Builder

	prompt := func() {
		if pending.Len() > 0 {
			fmt.Print("... ")
		} else {
			fmt.Print("> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasSuffix(line, "\\") {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			prompt()
			continue
		}
		if pending.Len() > 0 {
			pending.WriteString(line)
			line = pending.String()
			pending.Reset()
		}
		if line == "" {
			prompt()
			continue
		}
		switch {
		case line == "quit" || line == "exit":
			writeLinksIfRequested(sys, dict, linksOut)
			return
		case line == "help":
			fmt.Println(replHelp)
		case line == "links":
			fmt.Printf("%d candidate links (blacklisted: handled internally)\n", sys.CandidateCount())
		case line == "stats":
			fmt.Print(alex.FormatFeatureStats(dict, sys.FeatureStats()))
		case strings.HasPrefix(line, "save "):
			path := strings.TrimSpace(strings.TrimPrefix(line, "save "))
			if err := saveLinks(sys, dict, path); err != nil {
				fmt.Printf("error: %v\n", err)
			} else {
				fmt.Printf("wrote %d links to %s\n", sys.CandidateCount(), path)
			}
		case strings.HasPrefix(line, "approve ") || strings.HasPrefix(line, "reject "):
			applyFeedback(line, last, sys)
			// keep the query layer in sync with the evolving link set
			fed.SetLinks(sys.Candidates())
		default:
			res, err := fed.Query(line)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				break
			}
			if len(res.Vars) == 0 && len(res.Rows) == 0 {
				fmt.Printf("ASK -> %v\n", res.Ask)
				break
			}
			last = res
			fmt.Printf("%d answer(s):\n%s", len(res.Rows), res.String())
		}
		prompt()
	}
	writeLinksIfRequested(sys, dict, linksOut)
}

func applyFeedback(line string, last *alex.AnswerSet, sys *alex.System) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		fmt.Println("usage: approve <row> | reject <row>")
		return
	}
	if last == nil {
		fmt.Println("no previous query result")
		return
	}
	i, err := strconv.Atoi(fields[1])
	if err != nil || i < 0 || i >= len(last.Rows) {
		fmt.Printf("row index out of range (0..%d)\n", len(last.Rows)-1)
		return
	}
	row := last.Rows[i]
	if row.Used.Len() == 0 {
		fmt.Println("that answer used no sameAs links; nothing to learn from")
		return
	}
	before := sys.CandidateCount()
	if fields[0] == "approve" {
		alex.ApproveAnswer(row, sys)
	} else {
		alex.RejectAnswer(row, sys)
	}
	fmt.Printf("%s %d link(s); candidates %d -> %d\n", pastTense(fields[0] == "approve"), row.Used.Len(), before, sys.CandidateCount())
}

func saveLinks(sys *alex.System, dict *alex.Dict, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	sameAs := alex.IRI("http://www.w3.org/2002/07/owl#sameAs")
	for _, l := range sys.Candidates().Slice() {
		fmt.Fprintf(w, "%s\n", alex.Triple{S: dict.Term(l.E1), P: sameAs, O: dict.Term(l.E2)})
	}
	if err := w.Flush(); err != nil {
		_ = f.Close() // the flush error is the one worth reporting
		return err
	}
	return f.Close()
}

func writeLinksIfRequested(sys *alex.System, dict *alex.Dict, linksOut string) {
	if linksOut == "" {
		return
	}
	if err := saveLinks(sys, dict, linksOut); err != nil {
		fmt.Fprintf(os.Stderr, "fedquery: %v\n", err)
	}
}
