// Remote mode: fedquery as a thin client of a running alexd daemon.
// Queries and feedback go over HTTP; the server owns the datasets, the
// link set and the learning loop, so several fedquery clients can share
// one evolving federation.
package main

import (
	"bufio"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"alex/internal/server"
)

const remoteHelp = `commands (remote mode):
  <SPARQL>            run a SELECT or ASK query on the server (end lines with \ to continue)
  approve <i>         approve answer row i of the last result
  reject <i>          reject answer row i of the last result
  links               show the server's published link count
  health              show the server health report
  help                this message
  quit                exit`

// runRemote handles both one-shot (-query) and interactive (-repl) use
// against an alexd instance.
func runRemote(addr, query string, approve, reject int, repl bool) {
	c := server.NewClient(addr)
	h, err := c.Healthz()
	if err != nil {
		fatal(fmt.Errorf("cannot reach alexd at %s: %w", addr, err))
	}
	if repl {
		runRemoteREPL(c, h)
		return
	}

	res, err := c.Query(query)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d answers (snapshot v%d):\n%s", len(res.Rows), res.SnapshotVersion, formatRemote(res))
	for _, fb := range []struct {
		idx     int
		approve bool
		verb    string
	}{{approve, true, "approved"}, {reject, false, "rejected"}} {
		if fb.idx < 0 {
			continue
		}
		if fb.idx >= len(res.Rows) {
			fatal(fmt.Errorf("%s index %d out of range", fb.verb[:len(fb.verb)-1], fb.idx))
		}
		if err := sendRemoteFeedback(c, res.Rows[fb.idx], fb.approve); err != nil {
			fatal(err)
		}
		fmt.Printf("%s answer %d (%d links)\n", fb.verb, fb.idx, len(res.Rows[fb.idx].Links))
	}
}

func runRemoteREPL(c *server.Client, h *server.HealthResponse) {
	fmt.Printf("fedquery -> alexd (snapshot v%d, %d candidate links). Type 'help'.\n",
		h.SnapshotVersion, h.CandidateLinks)

	var last *server.QueryResponse
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var pending strings.Builder

	prompt := func() {
		if pending.Len() > 0 {
			fmt.Print("... ")
		} else {
			fmt.Print("> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasSuffix(line, "\\") {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			prompt()
			continue
		}
		if pending.Len() > 0 {
			pending.WriteString(line)
			line = pending.String()
			pending.Reset()
		}
		if line == "" {
			prompt()
			continue
		}
		switch {
		case line == "quit" || line == "exit":
			return
		case line == "help":
			fmt.Println(remoteHelp)
		case line == "links":
			ls, err := c.Links()
			if err != nil {
				fmt.Printf("error: %v\n", err)
				break
			}
			fmt.Printf("%d candidate links (snapshot v%d, episode %d)\n", ls.Count, ls.SnapshotVersion, ls.Episode)
		case line == "health":
			h, err := c.Healthz()
			if err != nil {
				fmt.Printf("error: %v\n", err)
				break
			}
			fmt.Printf("%s: snapshot v%d (%.1fs old), episode %d, %d links, queue %d/%d\n",
				h.Status, h.SnapshotVersion, h.SnapshotAgeSecs, h.Episode,
				h.CandidateLinks, h.QueueDepth, h.QueueCapacity)
		case strings.HasPrefix(line, "approve ") || strings.HasPrefix(line, "reject "):
			remoteFeedbackCommand(c, line, last)
		default:
			res, err := c.Query(line)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				break
			}
			if res.Ask != nil {
				fmt.Printf("ASK -> %v\n", *res.Ask)
				break
			}
			last = res
			fmt.Printf("%d answer(s) (snapshot v%d):\n%s", len(res.Rows), res.SnapshotVersion, formatRemote(res))
		}
		prompt()
	}
}

func remoteFeedbackCommand(c *server.Client, line string, last *server.QueryResponse) {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		fmt.Println("usage: approve <row> | reject <row>")
		return
	}
	if last == nil {
		fmt.Println("no previous query result")
		return
	}
	i, err := strconv.Atoi(fields[1])
	if err != nil || i < 0 || i >= len(last.Rows) {
		fmt.Printf("row index out of range (0..%d)\n", len(last.Rows)-1)
		return
	}
	row := last.Rows[i]
	if len(row.Links) == 0 {
		fmt.Println("that answer used no sameAs links; nothing to learn from")
		return
	}
	approve := fields[0] == "approve"
	if err := sendRemoteFeedback(c, row, approve); err != nil {
		fmt.Printf("error: %v\n", err)
		return
	}
	fmt.Printf("%s %d link(s); the server will fold it into its next episode\n", pastTense(approve), len(row.Links))
}

func pastTense(approve bool) string {
	if approve {
		return "approved"
	}
	return "rejected"
}

func sendRemoteFeedback(c *server.Client, row server.RowJSON, approve bool) error {
	err := c.Feedback(row.Links, approve)
	if err == server.ErrQueueFull {
		return fmt.Errorf("server is backpressuring (feedback queue full); retry shortly")
	}
	return err
}

func formatRemote(res *server.QueryResponse) string {
	var b strings.Builder
	for i, r := range res.Rows {
		fmt.Fprintf(&b, "[%d]", i)
		vars := append([]string(nil), res.Vars...)
		sort.Strings(vars)
		for _, v := range vars {
			if t, ok := r.Binding[v]; ok {
				fmt.Fprintf(&b, " ?%s=%s", v, formatTerm(t))
			}
		}
		if len(r.Links) > 0 {
			fmt.Fprintf(&b, " (links used: %d)", len(r.Links))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func formatTerm(t server.TermJSON) string {
	switch t.Kind {
	case "iri":
		return "<" + t.Value + ">"
	case "blank":
		return "_:" + t.Value
	default:
		s := strconv.Quote(t.Value)
		if t.Lang != "" {
			s += "@" + t.Lang
		} else if t.Datatype != "" {
			s += "^^<" + t.Datatype + ">"
		}
		return s
	}
}
