// Command fedquery answers federated SPARQL queries over two N-Triples
// datasets joined by owl:sameAs links, and optionally routes answer
// feedback into an ALEX instance — the end-to-end loop of the paper's
// Figure 1 on the command line.
//
// One-shot:
//
//	fedquery -ds1 a.nt -ds2 b.nt -links links.nt \
//	    -query 'SELECT ?x WHERE { ... }' [-approve 0] [-reject 1]
//
// Interactive (a small REPL over the same state):
//
//	fedquery -ds1 a.nt -ds2 b.nt -links links.nt -repl
//
// -approve/-reject take answer row indices; the feedback is applied to
// an ALEX system seeded with the given links, and the updated link set
// is written to -links-out if provided.
//
// Remote mode — act as a thin client of a running alexd daemon instead
// of loading datasets locally (the server owns the state and the
// learning loop):
//
//	fedquery -server localhost:8080 -repl
//	fedquery -server localhost:8080 -query 'SELECT ?x WHERE { ... }' [-approve 0]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"alex"
)

func main() {
	ds1Path := flag.String("ds1", "", "N-Triples file of dataset 1 (required)")
	ds2Path := flag.String("ds2", "", "N-Triples file of dataset 2 (required)")
	linksPath := flag.String("links", "", "N-Triples file of owl:sameAs links (required)")
	query := flag.String("query", "", "SPARQL SELECT or ASK query")
	approve := flag.Int("approve", -1, "answer row index to approve")
	reject := flag.Int("reject", -1, "answer row index to reject")
	linksOut := flag.String("links-out", "", "write the post-feedback link set to this file")
	repl := flag.Bool("repl", false, "interactive mode: queries and feedback from stdin")
	serverAddr := flag.String("server", "", "act as a client of a running alexd at this address (no local datasets)")
	flag.Parse()

	if *serverAddr != "" {
		if *ds1Path != "" || *ds2Path != "" || *linksPath != "" || *linksOut != "" {
			fmt.Fprintln(os.Stderr, "fedquery: -server is exclusive with -ds1/-ds2/-links/-links-out (the server owns the state)")
			flag.Usage()
			os.Exit(2)
		}
		if *query == "" && !*repl {
			fmt.Fprintln(os.Stderr, "fedquery: -server requires -query or -repl")
			flag.Usage()
			os.Exit(2)
		}
		runRemote(*serverAddr, *query, *approve, *reject, *repl)
		return
	}

	if *ds1Path == "" || *ds2Path == "" || *linksPath == "" || (*query == "" && !*repl) {
		fmt.Fprintln(os.Stderr, "fedquery: -ds1, -ds2, -links and either -query or -repl are required")
		flag.Usage()
		os.Exit(2)
	}
	if *repl {
		runREPL(*ds1Path, *ds2Path, *linksPath, *linksOut)
		return
	}

	dict := alex.NewDict()
	g1 := loadGraph(*ds1Path, dict)
	g2 := loadGraph(*ds2Path, dict)
	linkSet := loadLinks(*linksPath, dict)

	fed := alex.NewFederator(dict)
	must(fed.AddSource("ds1", g1))
	must(fed.AddSource("ds2", g2))
	fed.SetLinks(linkSet)

	res, err := fed.Query(*query)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%d answers:\n%s", len(res.Rows), res.String())

	if *approve < 0 && *reject < 0 {
		return
	}

	cfg := alex.DefaultConfig()
	sys := alex.NewSystem(g1, g2, g1.SubjectIDs(), g2.SubjectIDs(), linkSetSlice(linkSet), cfg)
	if *approve >= 0 {
		if *approve >= len(res.Rows) {
			fatal(fmt.Errorf("approve index %d out of range", *approve))
		}
		alex.ApproveAnswer(res.Rows[*approve], sys)
		fmt.Printf("approved answer %d (%d links)\n", *approve, res.Rows[*approve].Used.Len())
	}
	if *reject >= 0 {
		if *reject >= len(res.Rows) {
			fatal(fmt.Errorf("reject index %d out of range", *reject))
		}
		alex.RejectAnswer(res.Rows[*reject], sys)
		fmt.Printf("rejected answer %d (%d links)\n", *reject, res.Rows[*reject].Used.Len())
	}
	after := sys.Candidates()
	fmt.Printf("link set: %d -> %d links\n", linkSet.Len(), after.Len())

	if *linksOut != "" {
		f, err := os.Create(*linksOut)
		if err != nil {
			fatal(err)
		}
		w := bufio.NewWriter(f)
		sameAs := alex.IRI("http://www.w3.org/2002/07/owl#sameAs")
		for _, l := range after.Slice() {
			fmt.Fprintf(w, "%s\n", alex.Triple{S: dict.Term(l.E1), P: sameAs, O: dict.Term(l.E2)})
		}
		if err := w.Flush(); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func linkSetSlice(s alex.LinkSet) []alex.Link { return s.Slice() }

func loadGraph(path string, dict *alex.Dict) *alex.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	//lint:ignore syncerr read-only handle opened with os.Open; Close has no buffered writes to lose
	defer f.Close()
	g := alex.NewGraphWithDict(dict)
	if _, err := alex.ReadNTriples(f, g); err != nil {
		fatal(err)
	}
	return g
}

func loadLinks(path string, dict *alex.Dict) alex.LinkSet {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	//lint:ignore syncerr read-only handle opened with os.Open; Close has no buffered writes to lose
	defer f.Close()
	g := alex.NewGraphWithDict(dict)
	if _, err := alex.ReadNTriples(f, g); err != nil {
		fatal(err)
	}
	out := alex.NewLinkSet()
	for _, t := range g.Triples() {
		s, ok1 := dict.Lookup(t.S)
		o, ok2 := dict.Lookup(t.O)
		if ok1 && ok2 {
			out.Add(alex.Link{E1: s, E2: o})
		}
	}
	return out
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "fedquery: %v\n", err)
	os.Exit(1)
}
