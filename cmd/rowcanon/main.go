// Command rowcanon canonicalizes a /query response for answer-identity
// checks: it reads a QueryResponse JSON on stdin and prints one line
// per row — variables sorted, terms rendered, rows sorted — so that
// two answers are byte-identical under diff(1) exactly when they bind
// the same rows, regardless of row order, snapshot version or
// degradation markers. The fleet chaos drill pipes the router's answer
// and a single-node answer through it and diffs the outputs.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"alex/internal/server"
)

func main() {
	var qr server.QueryResponse
	if err := json.NewDecoder(os.Stdin).Decode(&qr); err != nil {
		fmt.Fprintf(os.Stderr, "rowcanon: bad QueryResponse on stdin: %v\n", err)
		os.Exit(1)
	}
	lines := make([]string, 0, len(qr.Rows))
	for _, row := range qr.Rows {
		vars := make([]string, 0, len(row.Binding))
		for v := range row.Binding {
			vars = append(vars, v)
		}
		sort.Strings(vars)
		parts := make([]string, 0, len(vars))
		for _, v := range vars {
			t := row.Binding[v]
			s := fmt.Sprintf("%s=%s:%q", v, t.Kind, t.Value)
			if t.Datatype != "" {
				s += "^^" + t.Datatype
			}
			if t.Lang != "" {
				s += "@" + t.Lang
			}
			parts = append(parts, s)
		}
		lines = append(lines, strings.Join(parts, "\t"))
	}
	sort.Strings(lines)
	w := bufio.NewWriter(os.Stdout)
	if qr.Ask != nil {
		fmt.Fprintf(w, "ask=%v\n", *qr.Ask)
	}
	for _, l := range lines {
		fmt.Fprintln(w, l)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintf(os.Stderr, "rowcanon: %v\n", err)
		os.Exit(1)
	}
}
