// Command alexd serves ALEX over HTTP: federated SPARQL queries with
// sameAs provenance, answer-level feedback that drives the exploration
// loop, the published candidate link set, health and Prometheus
// metrics. It is the long-lived serving layer for the interaction model
// of the paper's §3.2 — many users querying and giving feedback
// concurrently while one writer runs episodes.
//
// Serve a synthetic dataset pair (self-contained demo):
//
//	alexd -profile dbpedia-drugbank -addr :8080
//
// Serve real N-Triples datasets with initial links:
//
//	alexd -ds1 a.nt -ds2 b.nt -links links.nt -addr :8080
//
// Serve as shard 0 of a three-shard fleet (see README "Fleet
// deployment"; every shard gets the SAME -fleet list and data flags):
//
//	alexd -profile dbpedia-drugbank -addr :8081 \
//	  -shard-id 0 -fleet localhost:8081,localhost:8082,localhost:8083
//
// In fleet mode the shard loads the full dataset pair, runs the linker
// over all of it, then keeps only the dataset-1 entities (and initial
// links) its hash range owns; replication backfills the rest so reads
// stay full. Writes for entities it does not own are refused with 400 —
// front the fleet with alexrouter.
//
// Endpoints: POST /query, POST /feedback, GET /links, GET /healthz,
// GET /metrics. See the README "Serving" section for curl examples.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"alex/internal/cluster"
	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/pprofserve"
	"alex/internal/rdf"
	"alex/internal/server"
	"alex/internal/store"
	"alex/internal/synth"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	profile := flag.String("profile", "", "serve a synthetic dataset pair (see synthgen -list)")
	scale := flag.Float64("scale", 1.0, "entity-count scale factor for -profile")
	ds1Path := flag.String("ds1", "", "N-Triples file of dataset 1")
	ds2Path := flag.String("ds2", "", "N-Triples file of dataset 2")
	linksPath := flag.String("links", "", "N-Triples file of initial owl:sameAs links (default: run the PARIS linker)")
	partitions := flag.Int("partitions", 0, "ALEX partitions (0 = profile default or 1)")
	spaceWorkers := flag.Int("space-workers", 0, "goroutines per feature-space build (0 = GOMAXPROCS)")
	blocking := flag.Bool("block", false, "enable candidate blocking during space construction")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (off when empty)")
	episodeSize := flag.Int("episode-size", 100, "link-level feedback items per serving episode")
	queueSize := flag.Int("queue", 1024, "feedback queue capacity (full queue -> 429)")
	flush := flag.Duration("flush", 250*time.Millisecond, "finish a partial episode after this much idle time")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "per-request query deadline")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "shutdown budget for draining feedback")
	dataDir := flag.String("data", "", "durability directory (feedback journal + checkpoints); empty disables durability")
	checkpointEvery := flag.Int("checkpoint-every", 16, "episodes between state checkpoints (with -data)")
	storeBackend := flag.String("store", "mem", "triple store backend: mem (rebuild graphs at startup) or disk (persistent mmap'd segment store under <data>/store; requires -data)")
	sourceTimeout := flag.Duration("source-timeout", 2*time.Second, "per-attempt deadline for a federated source access")
	sourceRetries := flag.Int("source-retries", 2, "retries after a failed source access (jittered exponential backoff)")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive source failures that open its circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open probe")
	breakerSuccesses := flag.Int("breaker-successes", 2, "half-open successes required to close the breaker")
	queryWorkers := flag.Int("query-workers", 0, "per-query evaluation parallelism (0 = GOMAXPROCS)")
	planCache := flag.Int("plan-cache", 0, "compiled query plans kept in the LRU cache (0 = default)")
	adaptive := flag.Bool("adaptive", false, "adaptive query execution: re-rank remaining join patterns from observed cardinalities (shorthand for -replan-every 1)")
	replanEvery := flag.Int("replan-every", 0, "re-rank remaining patterns every N executed stages (0 = static plans)")
	maxQueries := flag.Int("max-queries", 0, "concurrent /query evaluations admitted (0 = unlimited; excess waits, then 503)")
	shardID := flag.Int("shard-id", -1, "this shard's ID within -fleet (-1 = standalone)")
	fleetList := flag.String("fleet", "", "comma-separated addresses of ALL fleet shards in shard-ID order (requires -shard-id)")
	replicateEvery := flag.Duration("replicate-every", 2*time.Second, "fleet anti-entropy pull interval (with -fleet)")
	routersList := flag.String("routers", "", "comma-separated router addresses to push health transitions to (with -fleet)")
	txnResolveAfter := flag.Duration("txn-resolve-after", 0, "grace period before consulting peers about an unresolved prepare (0 = 10s; must exceed the router prepare deadline)")
	flag.Parse()

	if addr, err := pprofserve.Start(*pprofAddr); err != nil {
		fatal(err)
	} else if addr != "" {
		log.Printf("pprof on http://%s/debug/pprof/", addr)
	}

	if (*profile == "") == (*ds1Path == "" || *ds2Path == "") {
		fmt.Fprintln(os.Stderr, "alexd: exactly one of -profile or (-ds1 and -ds2) is required")
		flag.Usage()
		os.Exit(2)
	}
	switch *storeBackend {
	case "mem", "disk":
	default:
		fmt.Fprintln(os.Stderr, "alexd: -store must be mem or disk")
		flag.Usage()
		os.Exit(2)
	}
	if *storeBackend == "disk" && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "alexd: -store=disk requires -data (the store lives under <data>/store)")
		flag.Usage()
		os.Exit(2)
	}
	var peers []string // fleet mode: all shard addresses, ID order
	if (*fleetList == "") != (*shardID < 0) {
		fmt.Fprintln(os.Stderr, "alexd: -shard-id and -fleet must be given together")
		flag.Usage()
		os.Exit(2)
	}
	if *fleetList != "" {
		for _, a := range strings.Split(*fleetList, ",") {
			peers = append(peers, strings.TrimSpace(a))
		}
		if *shardID >= len(peers) {
			fatal(fmt.Errorf("-shard-id %d out of range for a %d-shard -fleet", *shardID, len(peers)))
		}
	}

	var (
		dict       *rdf.Dict
		e1, e2     []rdf.ID
		initial    []links.Link
		gt         links.Set // synthetic mode only, for startup logging
		sourceName = [2]string{"ds1", "ds2"}
		prof       synth.Profile
	)
	// Resolve the profile without generating anything: the warm-start
	// path needs the source names and partition default up front.
	if *profile != "" {
		p, ok := synth.ProfileByName(*profile)
		if !ok {
			fatal(fmt.Errorf("unknown profile %q", *profile))
		}
		prof = p.Scale(*scale)
		sourceName[0], sourceName[1] = prof.Name+"-1", prof.Name+"-2"
		if *partitions == 0 {
			*partitions = prof.Partitions
		}
	}

	// The serving stores: in-memory graphs, or mmap'd segments under
	// <data>/store. storeMeta stamps the store with the inputs it was
	// built from, so a warm start over different flags fails loudly
	// instead of serving another dataset's dictionary IDs.
	var (
		t1, t2 store.TripleStore
		stores *store.Set
	)
	storeMeta := fmt.Sprintf("ds1=%s ds2=%s", *ds1Path, *ds2Path)
	if *profile != "" {
		storeMeta = fmt.Sprintf("profile=%s scale=%g", *profile, *scale)
	}
	loadStart := time.Now()

	if *storeBackend == "disk" {
		dir := filepath.Join(*dataDir, "store")
		set, err := store.Open(dir, store.Options{Meta: storeMeta})
		switch {
		case err == nil:
			// Warm start: dictionary, segments, entity lists and initial
			// links all come off disk (segments mmap'd) — no N-Triples
			// parse, no synthesis, no linker run.
			stores = set
			dict = set.Dict()
			t1, t2 = set.Source(sourceName[0]), set.Source(sourceName[1])
			if t1 == nil || t2 == nil {
				fatal(fmt.Errorf("store in %s is missing source %q or %q — rebuild with a fresh -data dir", dir, sourceName[0], sourceName[1]))
			}
			// Copies: fleet partitioning filters these in place, and the
			// set's own slices must keep the full data for checkpoints.
			e1 = append([]rdf.ID(nil), set.Entities(sourceName[0])...)
			e2 = append([]rdf.ID(nil), set.Entities(sourceName[1])...)
			ls, ok := set.InitialLinks()
			if !ok {
				fatal(fmt.Errorf("store in %s has no initial links — rebuild with a fresh -data dir", dir))
			}
			initial = append([]links.Link(nil), ls...)
			if *linksPath != "" {
				log.Printf("warm start: -links ignored, serving the store's persisted initial links")
			}
			log.Printf("warm start from %s: generation %d, %d + %d triples, %d initial links in %s",
				dir, set.Generation(), t1.Size(), t2.Size(), len(initial), time.Since(loadStart).Round(time.Millisecond))
		case errors.Is(err, store.ErrNoStore):
			// First boot over this -data dir: build in memory below,
			// then persist the pair so the next start is warm.
		default:
			fatal(err)
		}
	}

	if stores == nil {
		var g1, g2 *rdf.Graph
		switch {
		case *profile != "":
			log.Printf("generating %s (scale %.2f): %d + %d entities", prof.Name, *scale, prof.N1, prof.N2)
			ds := synth.Generate(prof)
			dict, g1, g2 = ds.Dict, ds.G1, ds.G2
			e1, e2 = ds.Entities1, ds.Entities2
			gt = ds.GroundTruth
		default:
			dict = rdf.NewDict()
			g1 = loadGraph(*ds1Path, dict)
			g2 = loadGraph(*ds2Path, dict)
			e1, e2 = g1.SubjectIDs(), g2.SubjectIDs()
		}

		if *linksPath != "" {
			initial = loadLinks(*linksPath, dict).Slice()
			log.Printf("loaded %d initial links from %s", len(initial), *linksPath)
		} else {
			log.Printf("running PARIS linker for initial links...")
			start := time.Now()
			scored := paris.Link(g1, g2, e1, e2, paris.NewOptions())
			initial = make([]links.Link, len(scored))
			for i, s := range scored {
				initial[i] = s.Link
			}
			log.Printf("PARIS produced %d links in %s", len(initial), time.Since(start).Round(time.Millisecond))
		}

		t1, t2 = g1, g2
		if *storeBackend == "disk" {
			dir := filepath.Join(*dataDir, "store")
			set, err := store.Create(dir, dict, store.Options{Meta: storeMeta})
			if err != nil {
				fatal(err)
			}
			for i, g := range []*rdf.Graph{g1, g2} {
				src, err := set.AddSource(sourceName[i])
				if err != nil {
					fatal(err)
				}
				g.ForEachMatchIDs(0, 0, 0, false, false, false, func(s, p, o rdf.ID) bool {
					src.InsertIDs(s, p, o)
					return true
				})
			}
			set.SetEntities(sourceName[0], e1)
			set.SetEntities(sourceName[1], e2)
			set.SetInitialLinks(initial)
			if err := set.Compact(); err != nil {
				fatal(err)
			}
			stores = set
			t1, t2 = set.Source(sourceName[0]), set.Source(sourceName[1])
			log.Printf("segment store built in %s: generation %d (the next start over this -data dir is a warm mmap open)", dir, set.Generation())
		}
	}
	if gt != nil {
		log.Printf("initial quality vs ground truth: %v", eval.Compute(links.NewSet(initial...), gt))
	}
	storeLoadSeconds := time.Since(loadStart).Seconds()

	// Fleet partitioning: the linker saw the full data above; now keep
	// only the dataset-1 entities and links this shard's range owns.
	var fleetCfg *server.FleetConfig
	if len(peers) > 0 {
		ranges := cluster.FleetRanges(len(peers))
		own := ranges[*shardID]
		allE1, allInit := len(e1), len(initial)
		kept := e1[:0]
		for _, e := range e1 {
			if own.ContainsIRI(dict.Term(e).Value) {
				kept = append(kept, e)
			}
		}
		e1 = kept
		keptLinks := initial[:0]
		for _, l := range initial {
			if cluster.OwnerOf(ranges, dict.Term(l.E1).Value) == *shardID {
				keptLinks = append(keptLinks, l)
			}
		}
		initial = keptLinks
		var routers []string
		if *routersList != "" {
			for _, a := range strings.Split(*routersList, ",") {
				routers = append(routers, strings.TrimSpace(a))
			}
		}
		fleetCfg = &server.FleetConfig{
			ShardID:         *shardID,
			Shards:          len(peers),
			ReplicateEvery:  *replicateEvery,
			Routers:         routers,
			TxnResolveAfter: *txnResolveAfter,
		}
		log.Printf("shard %d/%d owns range %s: %d/%d entities, %d/%d initial links",
			*shardID, len(peers), own, len(e1), allE1, len(initial), allInit)
	}

	cfg := core.DefaultConfig()
	if *partitions > 0 {
		cfg.Partitions = *partitions
	}
	cfg.SpaceWorkers = *spaceWorkers
	cfg.SpaceBlocking = *blocking
	log.Printf("building ALEX system (%d partitions, blocking %v)...", cfg.Partitions, *blocking)
	sys := core.New(t1, t2, e1, e2, initial, cfg)

	srv, err := server.New(sys, dict, []federation.Source{
		{Name: sourceName[0], Graph: t1},
		{Name: sourceName[1], Graph: t2},
	}, server.Config{
		EpisodeSize:          *episodeSize,
		QueueSize:            *queueSize,
		FlushInterval:        *flush,
		QueryTimeout:         *queryTimeout,
		DrainTimeout:         *drainTimeout,
		DataDir:              *dataDir,
		CheckpointEvery:      *checkpointEvery,
		Stores:               stores,
		StoreLoadSeconds:     storeLoadSeconds,
		QueryWorkers:         *queryWorkers,
		PlanCacheSize:        *planCache,
		ReplanEvery:          resolveReplanEvery(*adaptive, *replanEvery),
		MaxConcurrentQueries: *maxQueries,
		Fleet:                fleetCfg,
		Resilience: federation.Resilience{
			SourceTimeout: *sourceTimeout,
			Retries:       *sourceRetries,
			Breaker: federation.BreakerConfig{
				Failures:  *breakerFailures,
				Cooldown:  *breakerCooldown,
				Successes: *breakerSuccesses,
			},
		},
	})
	if err != nil {
		fatal(err)
	}
	if *dataDir != "" {
		rec := srv.Recovery()
		log.Printf("durability on in %s: recovered checkpoint seq %d, replayed %d journal records",
			*dataDir, rec.CheckpointSeq, rec.Replayed)
	}
	if fleetCfg != nil {
		// Peers may still be starting; replication retries on its
		// interval, so a one-shot registration here is enough.
		if err := srv.SetPeers(peers); err != nil {
			fatal(err)
		}
		log.Printf("fleet peers registered: %s (replicate every %s)", strings.Join(peers, ", "), *replicateEvery)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		log.Printf("alexd serving on %s (%d candidate links)", *addr, srv.Snapshot().Links.Len())
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	// Graceful shutdown: stop accepting, finish in-flight requests,
	// then drain the feedback queue and close the open episode.
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down...")
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("alexd: http shutdown: %v", err)
	}
	if err := srv.Close(); err != nil {
		log.Printf("alexd: %v", err)
	}
	if stores != nil {
		if _, err := stores.Checkpoint(); err != nil {
			log.Printf("alexd: final store checkpoint: %v", err)
		}
		if err := stores.Close(); err != nil {
			log.Printf("alexd: store close: %v", err)
		}
	}
	snap := srv.Snapshot()
	log.Printf("final snapshot v%d: %d links after %d episodes", snap.Version, snap.Links.Len(), snap.Episode)
	if gt != nil {
		log.Printf("final quality vs ground truth: %v", eval.Compute(snap.Links, gt))
	}
}

// resolveReplanEvery folds the -adaptive shorthand into the
// -replan-every knob: -adaptive alone means "re-rank at every stage
// boundary", while an explicit -replan-every wins either way.
func resolveReplanEvery(adaptive bool, every int) int {
	if every == 0 && adaptive {
		return 1
	}
	return every
}

func loadGraph(path string, dict *rdf.Dict) *rdf.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	//lint:ignore syncerr read-only handle opened with os.Open; Close has no buffered writes to lose
	defer f.Close()
	g := rdf.NewGraphWithDict(dict)
	if _, err := rdf.ReadNTriples(bufio.NewReader(f), g); err != nil {
		fatal(err)
	}
	return g
}

func loadLinks(path string, dict *rdf.Dict) links.Set {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	//lint:ignore syncerr read-only handle opened with os.Open; Close has no buffered writes to lose
	defer f.Close()
	g := rdf.NewGraphWithDict(dict)
	if _, err := rdf.ReadNTriples(bufio.NewReader(f), g); err != nil {
		fatal(err)
	}
	out := links.NewSet()
	for _, t := range g.Triples() {
		s, ok1 := dict.Lookup(t.S)
		o, ok2 := dict.Lookup(t.O)
		if ok1 && ok2 {
			out.Add(links.Link{E1: s, E2: o})
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "alexd: %v\n", err)
	os.Exit(1)
}
