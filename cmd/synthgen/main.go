// Command synthgen materializes a built-in synthetic dataset-pair
// profile as three N-Triples files, ready for alexlink and fedquery:
//
//	synthgen -profile dbpedia-nba-nytimes -dir /tmp/nba
//
// writes ds1.nt, ds2.nt and truth.nt (owl:sameAs ground truth) to -dir.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alex"
)

func main() {
	profile := flag.String("profile", "dbpedia-nba-nytimes", "built-in profile name (see -list)")
	dir := flag.String("dir", ".", "output directory")
	scale := flag.Float64("scale", 1.0, "entity-count scale factor")
	list := flag.Bool("list", false, "list profiles and exit")
	flag.Parse()

	if *list {
		var names []string
		for _, p := range alex.Profiles() {
			names = append(names, fmt.Sprintf("%-22s %s", p.Name, p.Description))
		}
		fmt.Println(strings.Join(names, "\n"))
		return
	}

	prof, ok := alex.ProfileByName(*profile)
	if !ok {
		fatal(fmt.Errorf("unknown profile %q", *profile))
	}
	if *scale != 1 {
		prof = prof.Scale(*scale)
	}
	ds := alex.GenerateDataset(prof)

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}
	writeGraph(filepath.Join(*dir, "ds1.nt"), ds.G1)
	writeGraph(filepath.Join(*dir, "ds2.nt"), ds.G2)
	writeTruth(filepath.Join(*dir, "truth.nt"), ds)
	fmt.Printf("wrote %s/{ds1.nt (%d triples), ds2.nt (%d triples), truth.nt (%d links)}\n",
		*dir, ds.G1.Size(), ds.G2.Size(), ds.GroundTruth.Len())
}

func writeGraph(path string, g *alex.Graph) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	if err := alex.WriteNTriples(f, g); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func writeTruth(path string, ds *alex.SynthDataset) {
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	w := bufio.NewWriter(f)
	sameAs := alex.IRI("http://www.w3.org/2002/07/owl#sameAs")
	for _, l := range ds.GroundTruth.Slice() {
		fmt.Fprintf(w, "%s\n", alex.Triple{S: ds.Dict.Term(l.E1), P: sameAs, O: ds.Dict.Term(l.E2)})
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "synthgen: %v\n", err)
	os.Exit(1)
}
