// Command alexlink runs the complete linking pipeline on two N-Triples
// files: PARIS-style automatic linking for initial candidates, then ALEX
// refinement driven by simulated feedback from a ground-truth link file.
//
//	alexlink -ds1 a.nt -ds2 b.nt -truth links.nt -out improved.nt
//
// The ground-truth file holds owl:sameAs triples (subject from ds1,
// object from ds2). Output is owl:sameAs triples for the final candidate
// set. Without -truth, only the automatic linker runs.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"alex"
)

func main() {
	ds1Path := flag.String("ds1", "", "N-Triples file of dataset 1 (required)")
	ds2Path := flag.String("ds2", "", "N-Triples file of dataset 2 (required)")
	truthPath := flag.String("truth", "", "N-Triples file of ground-truth owl:sameAs links (enables ALEX refinement)")
	outPath := flag.String("out", "", "output file for owl:sameAs links (default stdout)")
	episode := flag.Int("episode", 1000, "feedback episode size")
	maxEpisodes := flag.Int("max-episodes", 100, "maximum episodes")
	partitions := flag.Int("partitions", 4, "equal-size partitions of dataset 1")
	step := flag.Float64("step", 0.05, "exploration step size")
	theta := flag.Float64("theta", 0.3, "feature filtering threshold")
	errRate := flag.Float64("err", 0, "incorrect feedback rate (0..1)")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	if *ds1Path == "" || *ds2Path == "" {
		fmt.Fprintln(os.Stderr, "alexlink: -ds1 and -ds2 are required")
		flag.Usage()
		os.Exit(2)
	}

	dict := alex.NewDict()
	g1 := loadGraph(*ds1Path, dict)
	g2 := loadGraph(*ds2Path, dict)
	e1 := g1.SubjectIDs()
	e2 := g2.SubjectIDs()
	fmt.Fprintf(os.Stderr, "loaded %s: %d triples, %d subjects\n", *ds1Path, g1.Size(), len(e1))
	fmt.Fprintf(os.Stderr, "loaded %s: %d triples, %d subjects\n", *ds2Path, g2.Size(), len(e2))

	scored := alex.AutoLink(g1, g2, e1, e2, alex.AutoLinkOptions())
	fmt.Fprintf(os.Stderr, "automatic linker: %d candidate links\n", len(scored))
	final := alex.NewLinkSet(alex.LinksOf(scored)...)

	if *truthPath != "" {
		gt := loadTruth(*truthPath, dict)
		fmt.Fprintf(os.Stderr, "ground truth: %d links\n", gt.Len())

		cfg := alex.DefaultConfig()
		cfg.EpisodeSize = *episode
		cfg.MaxEpisodes = *maxEpisodes
		cfg.Partitions = *partitions
		cfg.StepSize = *step
		cfg.Theta = *theta
		cfg.Seed = *seed
		sys := alex.NewSystem(g1, g2, e1, e2, alex.LinksOf(scored), cfg)
		oracle := alex.NewOracle(gt, *errRate, rand.New(rand.NewSource(*seed)))

		fmt.Fprintf(os.Stderr, "initial: %v\n", alex.Evaluate(sys.Candidates(), gt))
		res := sys.Run(oracle, func(st alex.EpisodeStats) {
			m := alex.Evaluate(sys.Candidates(), gt)
			fmt.Fprintf(os.Stderr, "episode %d: %v (neg %.1f%%)\n", st.Episode, m, st.NegativePct())
		})
		fmt.Fprintf(os.Stderr, "done: %d episodes, converged=%v\n", res.Episodes, res.Converged)
		final = sys.Candidates()
	}

	out := os.Stdout
	var outFile *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		outFile = f
		out = f
	}
	w := bufio.NewWriter(out)
	sameAs := alex.IRI("http://www.w3.org/2002/07/owl#sameAs")
	for _, l := range final.Slice() {
		t := alex.Triple{S: dict.Term(l.E1), P: sameAs, O: dict.Term(l.E2)}
		fmt.Fprintf(w, "%s\n", t)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "wrote %d links\n", final.Len())
}

func loadGraph(path string, dict *alex.Dict) *alex.Graph {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	//lint:ignore syncerr read-only handle opened with os.Open; Close has no buffered writes to lose
	defer f.Close()
	g := alex.NewGraphWithDict(dict)
	if _, err := alex.ReadNTriples(f, g); err != nil {
		fatal(err)
	}
	return g
}

func loadTruth(path string, dict *alex.Dict) alex.LinkSet {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	//lint:ignore syncerr read-only handle opened with os.Open; Close has no buffered writes to lose
	defer f.Close()
	g := alex.NewGraphWithDict(dict)
	if _, err := alex.ReadNTriples(f, g); err != nil {
		fatal(err)
	}
	gt := alex.NewLinkSet()
	for _, t := range g.Triples() {
		s, ok1 := dict.Lookup(t.S)
		o, ok2 := dict.Lookup(t.O)
		if ok1 && ok2 {
			gt.Add(alex.Link{E1: s, E2: o})
		}
	}
	return gt
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "alexlink: %v\n", err)
	os.Exit(1)
}
