// Command alexload is the load generator for alexd: it hammers /query
// and /feedback from many concurrent workers and reports throughput and
// latency percentiles for both endpoints, plus the server-side episode
// progress it provoked.
//
// Against a running alexd:
//
//	alexload -addr localhost:8080 -concurrency 16 -duration 30s
//
// Self-contained (spins up an in-process server over a synthetic
// profile, then load-tests it — no daemon needed):
//
//	alexload -profile dbpedia-drugbank -scale 0.5 -duration 10s
//
// Each worker loops: pick a random entity from the published link set,
// run the -query template against it (default: a cross-source name
// lookup that must traverse a sameAs link), then with probability
// -feedback-frac judge one returned row and POST the verdict. In
// self-contained mode the verdict comes from the synthetic ground
// truth, so the run doubles as a serving-path quality demo; against a
// remote server verdicts are random approve/reject.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/server"
	"alex/internal/synth"
)

func main() {
	addr := flag.String("addr", "", "alexd address (empty: self-contained in-process server)")
	profile := flag.String("profile", "dbpedia-drugbank", "synthetic profile for self-contained mode")
	scale := flag.Float64("scale", 0.5, "profile scale for self-contained mode")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	concurrency := flag.Int("concurrency", 8, "concurrent workers")
	feedbackFrac := flag.Float64("feedback-frac", 0.5, "fraction of answered queries followed by feedback")
	queryTmpl := flag.String("query", "SELECT ?n WHERE { <{e1}> <http://ds2.example.org/prop/name> ?n . }",
		"query template; {e1} is replaced by an entity IRI from /links")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	var (
		client *server.Client
		gt     map[server.LinkJSON]bool // self-contained mode only
	)
	if *addr != "" {
		client = server.NewClient(*addr)
	} else {
		fmt.Printf("self-contained mode: serving %s at scale %.2f in-process\n", *profile, *scale)
		ts, srv, groundTruth := selfHost(*profile, *scale)
		defer ts.Close()
		defer srv.Close()
		client = server.NewClient(ts.URL)
		gt = groundTruth
	}

	start, err := client.Healthz()
	if err != nil {
		fatal(fmt.Errorf("server not reachable: %w", err))
	}
	ls, err := client.Links()
	if err != nil {
		fatal(err)
	}
	if len(ls.Links) == 0 {
		fatal(fmt.Errorf("server has no candidate links to query"))
	}
	entities := make([]string, 0, len(ls.Links))
	seen := map[string]bool{}
	for _, l := range ls.Links {
		if !seen[l.E1] {
			seen[l.E1] = true
			entities = append(entities, l.E1)
		}
	}
	fmt.Printf("targets: %d entities from snapshot v%d (%d links)\n", len(entities), ls.SnapshotVersion, ls.Count)

	var (
		queries, queryErrs, rows atomic.Uint64
		feedbacks, rejected429   atomic.Uint64
		queryLat, feedbackLat    = newLatencies(*concurrency), newLatencies(*concurrency)
		stopAt                   = time.Now().Add(*duration)
		wg                       sync.WaitGroup
	)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for time.Now().Before(stopAt) {
				e1 := entities[rng.Intn(len(entities))]
				q := strings.ReplaceAll(*queryTmpl, "{e1}", e1)
				t0 := time.Now()
				res, err := client.Query(q)
				queryLat.observe(w, time.Since(t0))
				if err != nil {
					queryErrs.Add(1)
					continue
				}
				queries.Add(1)
				rows.Add(uint64(len(res.Rows)))
				if len(res.Rows) == 0 || rng.Float64() >= *feedbackFrac {
					continue
				}
				row := res.Rows[rng.Intn(len(res.Rows))]
				if len(row.Links) == 0 {
					continue
				}
				approve := rng.Intn(2) == 0
				if gt != nil {
					approve = true
					for _, lj := range row.Links {
						if !gt[lj] {
							approve = false
						}
					}
				}
				t1 := time.Now()
				err = client.Feedback(row.Links, approve)
				feedbackLat.observe(w, time.Since(t1))
				switch err {
				case nil:
					feedbacks.Add(1)
				case server.ErrQueueFull:
					rejected429.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	end, err := client.Healthz()
	if err != nil {
		fatal(err)
	}
	elapsed := *duration
	fmt.Printf("\n--- load report (%s, %d workers) ---\n", elapsed, *concurrency)
	fmt.Printf("queries:   %d ok, %d errors, %.1f qps, %.1f rows/query\n",
		queries.Load(), queryErrs.Load(), float64(queries.Load())/elapsed.Seconds(),
		safeDiv(float64(rows.Load()), float64(queries.Load())))
	p := queryLat.percentiles()
	fmt.Printf("  latency: p50=%s p95=%s p99=%s max=%s\n", p[0], p[1], p[2], p[3])
	fmt.Printf("feedback:  %d accepted, %d backpressured (429), %.1f fps\n",
		feedbacks.Load(), rejected429.Load(), float64(feedbacks.Load())/elapsed.Seconds())
	p = feedbackLat.percentiles()
	fmt.Printf("  latency: p50=%s p95=%s p99=%s max=%s\n", p[0], p[1], p[2], p[3])
	fmt.Printf("server:    episodes %d -> %d, snapshot v%d -> v%d, %d -> %d links\n",
		start.Episode, end.Episode, start.SnapshotVersion, end.SnapshotVersion,
		start.CandidateLinks, end.CandidateLinks)
}

// selfHost builds a synthetic world, an ALEX system seeded by PARIS,
// and an in-process HTTP server over it.
func selfHost(profile string, scale float64) (*httptest.Server, *server.Server, map[server.LinkJSON]bool) {
	prof, ok := synth.ProfileByName(profile)
	if !ok {
		fatal(fmt.Errorf("unknown profile %q", profile))
	}
	prof = prof.Scale(scale)
	ds := synth.Generate(prof)
	scored := paris.Link(ds.G1, ds.G2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	for i, s := range scored {
		initial[i] = s.Link
	}
	fmt.Printf("initial quality: %v\n", eval.Compute(links.NewSet(initial...), ds.GroundTruth))
	cfg := core.DefaultConfig()
	cfg.Partitions = prof.Partitions
	sys := core.New(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg)
	srv, err := server.New(sys, ds.Dict, []federation.Source{
		{Name: "ds1", Graph: ds.G1},
		{Name: "ds2", Graph: ds.G2},
	}, server.Config{})
	if err != nil {
		fatal(err)
	}
	gt := make(map[server.LinkJSON]bool, ds.GroundTruth.Len())
	for _, l := range ds.GroundTruth.Slice() {
		gt[server.LinkJSON{E1: ds.Dict.Term(l.E1).Value, E2: ds.Dict.Term(l.E2).Value}] = true
	}
	return httptest.NewServer(srv.Handler()), srv, gt
}

// latencies collects per-worker samples without contention.
type latencies struct {
	perWorker [][]time.Duration
}

func newLatencies(workers int) *latencies {
	return &latencies{perWorker: make([][]time.Duration, workers)}
}

func (l *latencies) observe(w int, d time.Duration) {
	l.perWorker[w] = append(l.perWorker[w], d)
}

// percentiles returns p50, p95, p99 and max over all samples.
func (l *latencies) percentiles() [4]time.Duration {
	var all []time.Duration
	for _, s := range l.perWorker {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return [4]time.Duration{}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(all)-1))
		return all[i].Round(time.Microsecond)
	}
	return [4]time.Duration{at(0.50), at(0.95), at(0.99), all[len(all)-1].Round(time.Microsecond)}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "alexload: %v\n", err)
	os.Exit(1)
}
