// Command alexload is the load generator for alexd: it hammers /query
// and /feedback from many concurrent workers and reports throughput and
// latency percentiles for both endpoints, plus the server-side episode
// progress it provoked.
//
// Against a running alexd:
//
//	alexload -server localhost:8080 -concurrency 16 -duration 30s
//
// Against several targets at once — e.g. every shard of a fleet, or a
// router next to a standalone for comparison — give -server a comma-
// separated list; workers spread requests round-robin and the report
// adds a per-target latency/error breakdown:
//
//	alexload -server localhost:8081,localhost:8082,localhost:8083
//
// Self-contained (spins up an in-process server over a synthetic
// profile, then load-tests it — no daemon needed):
//
//	alexload -profile dbpedia-drugbank -scale 0.5 -duration 10s
//
// Each worker loops: pick a random entity from the published link set,
// run the -query template against it (default: a cross-source name
// lookup that must traverse a sameAs link), then with probability
// -feedback-frac judge one returned row and POST the verdict. In
// self-contained mode the verdict comes from the synthetic ground
// truth, so the run doubles as a serving-path quality demo; against a
// remote server verdicts are random approve/reject.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/server"
	"alex/internal/synth"
)

func main() {
	servers := flag.String("server", "", "comma-separated alexd/alexrouter addresses (empty: self-contained in-process server)")
	addr := flag.String("addr", "", "alias for -server (kept for old scripts)")
	profile := flag.String("profile", "dbpedia-drugbank", "synthetic profile for self-contained mode")
	scale := flag.Float64("scale", 0.5, "profile scale for self-contained mode")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	concurrency := flag.Int("concurrency", 8, "concurrent workers")
	feedbackFrac := flag.Float64("feedback-frac", 0.5, "fraction of answered queries followed by feedback")
	queryTmpl := flag.String("query", "SELECT ?n WHERE { <{e1}> <http://ds2.example.org/prop/name> ?n . }",
		"query template; {e1} is replaced by an entity IRI from /links")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	spec := *servers
	if spec == "" {
		spec = *addr
	}
	var (
		names   []string
		clients []*server.Client
		gt      map[server.LinkJSON]bool // self-contained mode only
	)
	if spec != "" {
		for _, a := range strings.Split(spec, ",") {
			a = strings.TrimSpace(a)
			names = append(names, a)
			clients = append(clients, server.NewClient(a))
		}
	} else {
		fmt.Printf("self-contained mode: serving %s at scale %.2f in-process\n", *profile, *scale)
		ts, srv, groundTruth := selfHost(*profile, *scale)
		defer ts.Close()
		defer srv.Close()
		names = []string{"in-process"}
		clients = []*server.Client{server.NewClient(ts.URL)}
		gt = groundTruth
	}

	starts := make([]*server.HealthResponse, len(clients))
	for i, c := range clients {
		h, err := c.Healthz()
		if err != nil {
			fatal(fmt.Errorf("target %s not reachable: %w", names[i], err))
		}
		starts[i] = h
	}
	start := starts[0]
	ls, err := clients[0].Links()
	if err != nil {
		fatal(err)
	}
	if len(ls.Links) == 0 {
		fatal(fmt.Errorf("server has no candidate links to query"))
	}
	entities := make([]string, 0, len(ls.Links))
	seen := map[string]bool{}
	for _, l := range ls.Links {
		if !seen[l.E1] {
			seen[l.E1] = true
			entities = append(entities, l.E1)
		}
	}
	fmt.Printf("targets: %d entities from snapshot v%d (%d links)\n", len(entities), ls.SnapshotVersion, ls.Count)

	// Counters and latency samples are kept per TARGET so a fleet run
	// shows which shard (or router) is slow or erroring; the headline
	// report aggregates across them.
	per := make([]*targetStats, len(clients))
	for i := range per {
		per[i] = &targetStats{
			queryLat:    newLatencies(*concurrency),
			feedbackLat: newLatencies(*concurrency),
		}
	}
	var (
		stopAt = time.Now().Add(*duration)
		wg     sync.WaitGroup
	)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(*seed + int64(w)))
			for n := w; time.Now().Before(stopAt); n++ {
				// Round-robin over targets, offset per worker so
				// small runs still touch every target.
				ti := n % len(clients)
				c, st := clients[ti], per[ti]
				e1 := entities[rng.Intn(len(entities))]
				q := strings.ReplaceAll(*queryTmpl, "{e1}", e1)
				t0 := time.Now()
				res, err := c.Query(q)
				st.queryLat.observe(w, time.Since(t0))
				if err != nil {
					st.queryErrs.Add(1)
					continue
				}
				st.queries.Add(1)
				st.rows.Add(uint64(len(res.Rows)))
				if len(res.Rows) == 0 || rng.Float64() >= *feedbackFrac {
					continue
				}
				row := res.Rows[rng.Intn(len(res.Rows))]
				if len(row.Links) == 0 {
					continue
				}
				approve := rng.Intn(2) == 0
				if gt != nil {
					approve = true
					for _, lj := range row.Links {
						if !gt[lj] {
							approve = false
						}
					}
				}
				t1 := time.Now()
				err = c.Feedback(row.Links, approve)
				st.feedbackLat.observe(w, time.Since(t1))
				switch err {
				case nil:
					st.feedbacks.Add(1)
				case server.ErrQueueFull:
					st.rejected429.Add(1)
				default:
					st.feedbackErrs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()

	end, err := clients[0].Healthz()
	if err != nil {
		fatal(err)
	}
	total := sumStats(per)
	elapsed := *duration
	fmt.Printf("\n--- load report (%s, %d workers, %d targets) ---\n", elapsed, *concurrency, len(clients))
	fmt.Printf("queries:   %d ok, %d errors, %.1f qps, %.1f rows/query\n",
		total.queries.Load(), total.queryErrs.Load(), float64(total.queries.Load())/elapsed.Seconds(),
		safeDiv(float64(total.rows.Load()), float64(total.queries.Load())))
	p := total.queryLat.percentiles()
	fmt.Printf("  latency: p50=%s p95=%s p99=%s max=%s\n", p[0], p[1], p[2], p[3])
	fmt.Printf("feedback:  %d accepted, %d backpressured (429), %d errors, %.1f fps\n",
		total.feedbacks.Load(), total.rejected429.Load(), total.feedbackErrs.Load(),
		float64(total.feedbacks.Load())/elapsed.Seconds())
	p = total.feedbackLat.percentiles()
	fmt.Printf("  latency: p50=%s p95=%s p99=%s max=%s\n", p[0], p[1], p[2], p[3])
	fmt.Printf("server:    episodes %d -> %d, snapshot v%d -> v%d, %d -> %d links\n",
		start.Episode, end.Episode, start.SnapshotVersion, end.SnapshotVersion,
		start.CandidateLinks, end.CandidateLinks)

	if len(clients) > 1 {
		fmt.Printf("\n--- per-target breakdown ---\n")
		for i, name := range names {
			st := per[i]
			qp := st.queryLat.percentiles()
			fmt.Printf("%s:\n", name)
			fmt.Printf("  queries:  %d ok, %d errors, p50=%s p95=%s p99=%s\n",
				st.queries.Load(), st.queryErrs.Load(), qp[0], qp[1], qp[2])
			fp := st.feedbackLat.percentiles()
			fmt.Printf("  feedback: %d accepted, %d backpressured, %d errors, p50=%s p95=%s p99=%s\n",
				st.feedbacks.Load(), st.rejected429.Load(), st.feedbackErrs.Load(), fp[0], fp[1], fp[2])
			if h, err := clients[i].Healthz(); err != nil {
				fmt.Printf("  health:   unreachable (%v)\n", err)
			} else {
				fmt.Printf("  health:   episodes %d -> %d, snapshot v%d, %d links\n",
					starts[i].Episode, h.Episode, h.SnapshotVersion, h.CandidateLinks)
			}
		}
	}
}

// targetStats is one target's slice of the workload.
type targetStats struct {
	queries, queryErrs, rows             atomic.Uint64
	feedbacks, rejected429, feedbackErrs atomic.Uint64
	queryLat, feedbackLat                *latencies
}

// sumStats aggregates per-target stats into fleet-wide totals; latency
// samples are concatenated so the headline percentiles cover every
// request regardless of target.
func sumStats(per []*targetStats) *targetStats {
	out := &targetStats{queryLat: &latencies{}, feedbackLat: &latencies{}}
	for _, st := range per {
		out.queries.Add(st.queries.Load())
		out.queryErrs.Add(st.queryErrs.Load())
		out.rows.Add(st.rows.Load())
		out.feedbacks.Add(st.feedbacks.Load())
		out.rejected429.Add(st.rejected429.Load())
		out.feedbackErrs.Add(st.feedbackErrs.Load())
		out.queryLat.perWorker = append(out.queryLat.perWorker, st.queryLat.perWorker...)
		out.feedbackLat.perWorker = append(out.feedbackLat.perWorker, st.feedbackLat.perWorker...)
	}
	return out
}

// selfHost builds a synthetic world, an ALEX system seeded by PARIS,
// and an in-process HTTP server over it.
func selfHost(profile string, scale float64) (*httptest.Server, *server.Server, map[server.LinkJSON]bool) {
	prof, ok := synth.ProfileByName(profile)
	if !ok {
		fatal(fmt.Errorf("unknown profile %q", profile))
	}
	prof = prof.Scale(scale)
	ds := synth.Generate(prof)
	scored := paris.Link(ds.G1, ds.G2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	for i, s := range scored {
		initial[i] = s.Link
	}
	fmt.Printf("initial quality: %v\n", eval.Compute(links.NewSet(initial...), ds.GroundTruth))
	cfg := core.DefaultConfig()
	cfg.Partitions = prof.Partitions
	sys := core.New(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg)
	srv, err := server.New(sys, ds.Dict, []federation.Source{
		{Name: "ds1", Graph: ds.G1},
		{Name: "ds2", Graph: ds.G2},
	}, server.Config{})
	if err != nil {
		fatal(err)
	}
	gt := make(map[server.LinkJSON]bool, ds.GroundTruth.Len())
	for _, l := range ds.GroundTruth.Slice() {
		gt[server.LinkJSON{E1: ds.Dict.Term(l.E1).Value, E2: ds.Dict.Term(l.E2).Value}] = true
	}
	return httptest.NewServer(srv.Handler()), srv, gt
}

// latencies collects per-worker samples without contention.
type latencies struct {
	perWorker [][]time.Duration
}

func newLatencies(workers int) *latencies {
	return &latencies{perWorker: make([][]time.Duration, workers)}
}

func (l *latencies) observe(w int, d time.Duration) {
	l.perWorker[w] = append(l.perWorker[w], d)
}

// percentiles returns p50, p95, p99 and max over all samples.
func (l *latencies) percentiles() [4]time.Duration {
	var all []time.Duration
	for _, s := range l.perWorker {
		all = append(all, s...)
	}
	if len(all) == 0 {
		return [4]time.Duration{}
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	at := func(q float64) time.Duration {
		i := int(q * float64(len(all)-1))
		return all[i].Round(time.Microsecond)
	}
	return [4]time.Duration{at(0.50), at(0.95), at(0.99), all[len(all)-1].Round(time.Microsecond)}
}

func safeDiv(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "alexload: %v\n", err)
	os.Exit(1)
}
