// Command alexlint runs ALEX's invariant analyzers (see
// internal/analysis/suite) over module packages.
//
// Standalone:
//
//	alexlint [packages]     # defaults to ./...
//	alexlint -list          # describe the analyzers
//
// As a go vet tool:
//
//	go vet -vettool=$(pwd)/bin/alexlint ./...
//
// In vettool mode cmd/go drives the binary with the standard protocol:
// `-V=full` prints a cacheable version line, `-flags` declares the
// (empty) analyzer flag set, and a lone *.cfg argument selects
// unitchecker mode, analyzing the single package the config describes.
//
// Exit status is 0 when the tree is clean, 2 when findings were
// reported, and 1 on operational errors.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alex/internal/analysis"
	"alex/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("alexlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: alexlint [-list] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the ALEX invariant analyzers; packages default to ./...\n")
		fs.PrintDefaults()
	}
	list := fs.Bool("list", false, "describe the analyzers and exit")
	version := fs.String("V", "", "if 'full', print version and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON and exit (go vet protocol)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *version == "full":
		printVersion()
		return 0
	case *version != "":
		fmt.Println("alexlint distributed with the alex module")
		return 0
	case *printFlags:
		// The suite takes no analyzer flags.
		fmt.Println("[]")
		return 0
	case *list:
		for _, a := range suite.Analyzers {
			fmt.Printf("%s: %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0])
	}
	return runStandalone(fs.Args())
}

// printVersion emits the `-V=full` line cmd/go hashes into its vet
// cache key: "<name> version <id>". Hashing the executable itself makes
// the cache invalidate whenever the analyzers change.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// runStandalone loads packages with the go tool and analyzes each one.
func runStandalone(patterns []string) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alexlint:", err)
		return 1
	}
	cwd, _ := os.Getwd()
	found := 0
	for _, pkg := range pkgs {
		findings, err := analysis.Run(pkg, suite.Analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alexlint:", err)
			return 1
		}
		for _, f := range findings {
			found++
			fmt.Printf("%s:%d:%d: %s (%s)\n",
				relpath(cwd, f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

// runVet analyzes the one package described by a cmd/go vet config.
func runVet(cfgPath string) int {
	cfg, err := analysis.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alexlint:", err)
		return 1
	}
	// cmd/go expects the facts file to exist even though the suite
	// exchanges none.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "alexlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency pass, run only to produce facts: nothing to do.
		return 0
	}
	pkg, err := analysis.LoadVetPackage(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "alexlint:", err)
		return 1
	}
	findings, err := analysis.Run(pkg, suite.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alexlint:", err)
		return 1
	}
	for _, f := range findings {
		// go vet surfaces the tool's stderr as the diagnostic stream.
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n",
			f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func relpath(base, path string) string {
	if base == "" {
		return path
	}
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
