// Command alexlint runs ALEX's invariant analyzers (see
// internal/analysis/suite) over module packages.
//
// Standalone:
//
//	alexlint [packages]     # defaults to ./...
//	alexlint -list          # describe the analyzers
//	alexlint -json ./...    # one JSON finding per line
//	alexlint -github ./...  # GitHub ::error annotations
//
// As a go vet tool:
//
//	go vet -vettool=$(pwd)/bin/alexlint ./...
//
// In vettool mode cmd/go drives the binary with the standard protocol:
// `-V=full` prints a cacheable version line, `-flags` declares the
// analyzer flag set, and a lone *.cfg argument selects unitchecker
// mode, analyzing the single package the config describes. Facts
// (interprocedural function summaries, internal/analysis/facts.go) are
// exchanged between per-package runs through cmd/go's .vetx files.
//
// Exit status is 0 when the tree is clean, 2 when findings were
// reported, and 1 on operational errors.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"alex/internal/analysis"
	"alex/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("alexlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: alexlint [-list] [-json|-github] [packages]\n\n")
		fmt.Fprintf(fs.Output(), "Runs the ALEX invariant analyzers; packages default to ./...\n")
		fs.PrintDefaults()
	}
	list := fs.Bool("list", false, "describe the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as JSON, one object per line")
	githubOut := fs.Bool("github", false, "emit findings as GitHub ::error annotations")
	version := fs.String("V", "", "if 'full', print version and exit (go vet protocol)")
	printFlags := fs.Bool("flags", false, "print analyzer flags as JSON and exit (go vet protocol)")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	switch {
	case *version == "full":
		printVersion()
		return 0
	case *version != "":
		fmt.Println("alexlint distributed with the alex module")
		return 0
	case *printFlags:
		// The suite takes no analyzer flags.
		fmt.Println("[]")
		return 0
	case *list:
		for _, a := range suite.Analyzers {
			fmt.Printf("%s: %s\n", a.Name, firstLine(a.Doc))
		}
		return 0
	}

	emit := emitText
	switch {
	case *jsonOut && *githubOut:
		fmt.Fprintln(os.Stderr, "alexlint: -json and -github are mutually exclusive")
		return 1
	case *jsonOut:
		emit = emitJSON
	case *githubOut:
		emit = emitGitHub
	}

	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return runVet(rest[0])
	}
	return runStandalone(fs.Args(), emit)
}

// printVersion emits the `-V=full` line cmd/go hashes into its vet
// cache key: "<name> version <id>". Hashing the executable itself makes
// the cache invalidate whenever the analyzers change.
func printVersion() {
	name := filepath.Base(os.Args[0])
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			sum := sha256.Sum256(data)
			id = fmt.Sprintf("%x", sum[:12])
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// ---- output modes ----

func emitText(rel func(string) string, f analysis.Finding) {
	fmt.Printf("%s:%d:%d: %s (%s)\n",
		rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
}

// jsonFinding is the -json wire shape: one finding per line, stable
// field names for CI tooling.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func emitJSON(rel func(string) string, f analysis.Finding) {
	out, _ := json.Marshal(jsonFinding{
		File:     rel(f.Pos.Filename),
		Line:     f.Pos.Line,
		Column:   f.Pos.Column,
		Analyzer: f.Analyzer,
		Message:  f.Message,
	})
	fmt.Println(string(out))
}

// emitGitHub prints workflow-command annotations so findings render
// inline on pull requests. Message text must escape %, CR and LF per
// the workflow-command encoding.
func emitGitHub(rel func(string) string, f analysis.Finding) {
	esc := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A")
	fmt.Printf("::error file=%s,line=%d,col=%d,title=alexlint/%s::%s\n",
		rel(f.Pos.Filename), f.Pos.Line, f.Pos.Column, f.Analyzer, esc.Replace(f.Message))
}

// runStandalone loads packages (and their module dependency graph, for
// facts) with the go tool and analyzes each target.
func runStandalone(patterns []string, emit func(func(string) string, analysis.Finding)) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	res, err := analysis.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alexlint:", err)
		return 1
	}
	cwd, _ := os.Getwd()
	rel := func(path string) string { return relpath(cwd, path) }
	found := 0
	for _, pkg := range res.Pkgs {
		findings, err := analysis.Run(pkg, res.Facts, suite.Analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "alexlint:", err)
			return 1
		}
		for _, f := range findings {
			found++
			emit(rel, f)
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

// runVet analyzes the one package described by a cmd/go vet config,
// reading dependency facts from (and writing this package's facts to)
// the .vetx files cmd/go manages.
func runVet(cfgPath string) int {
	cfg, err := analysis.ReadVetConfig(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alexlint:", err)
		return 1
	}
	pkg, facts, err := analysis.LoadVetPackage(cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "alexlint:", err)
		return 1
	}
	if cfg.VetxOutput != "" {
		data, err := facts.EncodeJSON()
		if err == nil {
			err = os.WriteFile(cfg.VetxOutput, data, 0o666)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "alexlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency pass, run only to produce facts.
		return 0
	}
	findings, err := analysis.Run(pkg, facts, suite.Analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "alexlint:", err)
		return 1
	}
	for _, f := range findings {
		// go vet surfaces the tool's stderr as the diagnostic stream.
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s (%s)\n",
			f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func relpath(base, path string) string {
	if base == "" {
		return path
	}
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
