// Command alexbench regenerates every table and figure of the paper's
// evaluation (§7, appendices B-D) on the synthetic dataset-pair
// stand-ins. Run a single experiment by id or all of them:
//
//	alexbench -exp fig2a
//	alexbench -exp all -scale 0.5
//
// Experiment ids: table1, fig2a, fig2b, fig2c, fig3a, fig3b, fig3c,
// fig4a, fig4b, fig4c, fig4d, fig5a, fig5b, fig6, fig7, fig8, fig9,
// fig10, fig11, timing, ablation-policy, ablation-epsilon,
// ablation-theta, ablation-rollback.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"alex/internal/core"
	"alex/internal/experiments"
	"alex/internal/pprofserve"
)

var experimentOrder = []string{
	"table1",
	"fig2a", "fig2b", "fig2c",
	"fig3a", "fig3b", "fig3c",
	"fig4a", "fig4b", "fig4c", "fig4d",
	"fig5a", "fig5b",
	"fig6", "fig7",
	"timing",
	"fig8", "fig9", "fig10", "fig11",
	"querydriven", "summary", "multiseed", "crowd",
	"ablation-policy", "ablation-epsilon", "ablation-theta", "ablation-rollback",
}

var qualityProfiles = map[string]string{
	"fig2a": "dbpedia-nytimes",
	"fig2b": "dbpedia-drugbank",
	"fig2c": "dbpedia-lexvo",
	"fig3a": "opencyc-nytimes",
	"fig3b": "opencyc-drugbank",
	"fig3c": "opencyc-lexvo",
	"fig4a": "dbpedia-dogfood",
	"fig4b": "opencyc-dogfood",
	"fig4c": "dbpedia-nba-nytimes",
	"fig4d": "opencyc-nba-nytimes",
	"fig8":  "dbpedia-opencyc",
}

func main() {
	exp := flag.String("exp", "all", "experiment id or 'all'")
	scale := flag.Float64("scale", 1.0, "entity-count scale factor for quicker runs")
	seed := flag.Int64("seed", 42, "feedback oracle seed")
	csvDir := flag.String("csv", "", "also write per-episode series as CSV files into this directory")
	spaceWorkers := flag.Int("space-workers", 0, "goroutines per feature-space build (0 = GOMAXPROCS)")
	queryWorkers := flag.Int("query-workers", 0, "per-query federation parallelism (0 = GOMAXPROCS)")
	adaptive := flag.Bool("adaptive", false, "adaptive query execution: re-rank remaining join patterns from observed cardinalities (shorthand for -replan-every 1)")
	replanEvery := flag.Int("replan-every", 0, "re-rank remaining patterns every N executed stages (0 = static plans)")
	blocking := flag.Bool("block", false, "enable candidate blocking during space construction")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (off when empty)")
	storeBackend := flag.String("store", "mem", "triple store backend: mem (in-memory graphs) or disk (temporary mmap'd segment store)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()
	csvOut = *csvDir

	if addr, err := pprofserve.Start(*pprofAddr); err != nil {
		fmt.Fprintf(os.Stderr, "alexbench: pprof: %v\n", err)
		os.Exit(1)
	} else if addr != "" {
		fmt.Printf("pprof on http://%s/debug/pprof/\n", addr)
	}

	if *list {
		fmt.Println(strings.Join(experimentOrder, "\n"))
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = experimentOrder
	}
	opts := experiments.Options{Scale: *scale, Seed: *seed, Store: *storeBackend, Mutate: func(c *core.Config) {
		c.SpaceWorkers = *spaceWorkers
		c.SpaceBlocking = *blocking
		c.QueryWorkers = *queryWorkers
		c.QueryReplanEvery = *replanEvery
		if c.QueryReplanEvery == 0 && *adaptive {
			c.QueryReplanEvery = 1
		}
	}}
	for _, id := range ids {
		start := time.Now()
		fmt.Printf("==================== %s ====================\n", id)
		if err := run(id, opts); err != nil {
			fmt.Fprintf(os.Stderr, "alexbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

// csvOut, when non-empty, receives per-episode CSV files for quality
// experiments.
var csvOut string

func writeCSV(id string, r *experiments.QualityRun) {
	if csvOut == "" {
		return
	}
	if err := os.MkdirAll(csvOut, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "alexbench: csv: %v\n", err)
		return
	}
	path := filepath.Join(csvOut, id+".csv")
	if err := os.WriteFile(path, []byte(r.Series.CSV()), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "alexbench: csv: %v\n", err)
		return
	}
	fmt.Printf("(series written to %s)\n", path)
}

func run(id string, opts experiments.Options) error {
	if prof, ok := qualityProfiles[id]; ok {
		r, err := experiments.RunQuality(prof, opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
		writeCSV(id, r)
		return nil
	}
	switch id {
	case "table1":
		fmt.Print(experiments.FormatTable1(experiments.Table1(opts.Scale)))
	case "fig5a", "fig5b":
		r, err := experiments.Fig5("dbpedia-nytimes", opts.Scale)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
	case "fig6":
		c, err := experiments.Fig6Blacklist("dbpedia-nytimes", opts)
		if err != nil {
			return err
		}
		fmt.Print(c.Report())
	case "fig7":
		r, err := experiments.Fig7Rollback("dbpedia-nytimes", opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
	case "fig9":
		c, err := experiments.Fig9IncorrectFeedback("dbpedia-nytimes", opts)
		if err != nil {
			return err
		}
		fmt.Print(c.Report())
	case "fig10":
		s, err := experiments.Fig10StepSize("dbpedia-nytimes", opts, nil)
		if err != nil {
			return err
		}
		fmt.Print(s.Report())
	case "fig11":
		s, err := experiments.Fig11EpisodeSize("dbpedia-nytimes", opts, nil)
		if err != nil {
			return err
		}
		fmt.Print(s.Report())
	case "crowd":
		r, err := experiments.CrowdFeedback("dbpedia-nytimes", opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
	case "summary":
		rows, err := experiments.Summary(opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatSummary(rows))
	case "multiseed":
		r, err := experiments.RunMultiSeed("dbpedia-nytimes", opts, 5)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
	case "querydriven":
		r, err := experiments.RunQueryDriven("opencyc-nytimes", opts)
		if err != nil {
			return err
		}
		fmt.Print(r.Report())
	case "timing":
		rows, err := experiments.ExecutionTime(nil, opts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatTiming(rows))
	case "ablation-policy":
		c, err := experiments.AblationPolicy("dbpedia-nytimes", opts)
		if err != nil {
			return err
		}
		fmt.Print(c.Report())
	case "ablation-epsilon":
		s, err := experiments.AblationEpsilon("dbpedia-nytimes", opts, nil)
		if err != nil {
			return err
		}
		fmt.Print(s.Report())
	case "ablation-theta":
		s, err := experiments.AblationTheta("dbpedia-nytimes", opts, nil)
		if err != nil {
			return err
		}
		fmt.Print(s.Report())
	case "ablation-rollback":
		s, err := experiments.AblationRollbackThreshold("dbpedia-nytimes", opts, nil)
		if err != nil {
			return err
		}
		fmt.Print(s.Report())
	default:
		return fmt.Errorf("unknown experiment %q (use -list)", id)
	}
	return nil
}
