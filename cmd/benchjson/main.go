// Command benchjson converts `go test -bench` output into a JSON
// file while echoing the original text through unchanged, so it can sit
// at the end of a benchmark pipe:
//
//	go test -bench BenchmarkSpaceBuild -cpu=1,2,4,8 ./internal/feature |
//	    go run ./cmd/benchjson -out BENCH_space.json
//
// Each benchmark result line becomes one JSON record with the metrics
// Go reports: ns/op always, plus pairs/s, queries/s, B/op and allocs/op
// when the benchmark emits them. The -cpu suffix of the benchmark name
// is parsed into its own field so scaling rows are directly comparable.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Row is one benchmark result.
type Row struct {
	Name          string  `json:"name"`
	CPUs          int     `json:"cpus"`
	Iterations    int64   `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	PairsPerSec   float64 `json:"pairs_per_sec,omitempty"`
	QueriesPerSec float64 `json:"queries_per_sec,omitempty"`
	BytesPerOp    float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp   float64 `json:"allocs_per_op,omitempty"`
	// DeltaVsPrev is the ns/op change relative to the same (name, cpus)
	// row in the JSON file being overwritten, e.g. "-12.3%". Absent
	// when there is no previous file or no matching row.
	DeltaVsPrev string `json:"delta_vs_prev,omitempty"`
}

func main() {
	out := flag.String("out", "BENCH_space.json", "JSON output file")
	flag.Parse()

	var rows []Row
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		fmt.Println(line)
		if r, ok := parseLine(line); ok {
			rows = append(rows, r)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if len(rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark result lines on stdin")
		os.Exit(1)
	}
	annotateDeltas(rows, *out)
	data, err := json.MarshalIndent(rows, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d rows to %s\n", len(rows), *out)
}

// annotateDeltas reads the JSON file about to be overwritten (if any)
// and fills each row's DeltaVsPrev with the ns/op change against the
// previous row of the same (name, cpus), so successive `make bench-*`
// runs show regressions inline without a separate diff tool.
func annotateDeltas(rows []Row, path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		return // first run, or unreadable — nothing to compare against
	}
	var prev []Row
	if err := json.Unmarshal(data, &prev); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: ignoring unparsable previous %s: %v\n", path, err)
		return
	}
	type key struct {
		name string
		cpus int
	}
	old := make(map[key]float64, len(prev))
	for _, r := range prev {
		if r.NsPerOp > 0 {
			old[key{r.Name, r.CPUs}] = r.NsPerOp
		}
	}
	for i := range rows {
		base, ok := old[key{rows[i].Name, rows[i].CPUs}]
		if !ok || rows[i].NsPerOp == 0 {
			continue
		}
		rows[i].DeltaVsPrev = fmt.Sprintf("%+.1f%%", 100*(rows[i].NsPerOp-base)/base)
		fmt.Fprintf(os.Stderr, "benchjson: %s-%d ns/op %s vs previous run\n",
			rows[i].Name, rows[i].CPUs, rows[i].DeltaVsPrev)
	}
}

// parseLine recognizes a result line such as
//
//	BenchmarkSpaceBuild/unblocked-8  2  512345678 ns/op  801234 pairs/s  96 B/op  3 allocs/op
//
// and returns false for everything else (headers, PASS, ok, …).
func parseLine(line string) (Row, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Row{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Row{}, false
	}
	r := Row{Name: f[0], CPUs: 1, Iterations: iters}
	if i := strings.LastIndexByte(f[0], '-'); i >= 0 {
		if n, err := strconv.Atoi(f[0][i+1:]); err == nil {
			r.Name, r.CPUs = f[0][:i], n
		}
	}
	// The rest alternates value, unit.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Row{}, false
		}
		switch f[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "pairs/s":
			r.PairsPerSec = v
		case "queries/s":
			r.QueriesPerSec = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp == 0 {
		return Row{}, false
	}
	return r, true
}
