package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkAdaptiveQuery/static-8  20  51234567 ns/op  1024 B/op  12 allocs/op  301.5 queries/s")
	if !ok {
		t.Fatal("result line not recognized")
	}
	if r.Name != "BenchmarkAdaptiveQuery/static" || r.CPUs != 8 {
		t.Fatalf("name/cpus = %q/%d", r.Name, r.CPUs)
	}
	if r.NsPerOp != 51234567 || r.QueriesPerSec != 301.5 || r.BytesPerOp != 1024 || r.AllocsPerOp != 12 {
		t.Fatalf("metrics mis-parsed: %+v", r)
	}
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \talex/internal/federation\t12.3s",
		"Benchmark  notanumber  1 ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("non-result line parsed as row: %q", line)
		}
	}
}

func TestAnnotateDeltas(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_query.json")
	prev := []Row{
		{Name: "BenchmarkFederatedQuery/serial", CPUs: 4, NsPerOp: 1000},
		{Name: "BenchmarkFederatedQuery/serial", CPUs: 8, NsPerOp: 2000},
	}
	data, err := json.Marshal(prev)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	rows := []Row{
		{Name: "BenchmarkFederatedQuery/serial", CPUs: 4, NsPerOp: 1100}, // +10%
		{Name: "BenchmarkFederatedQuery/serial", CPUs: 8, NsPerOp: 1000}, // -50%
		{Name: "BenchmarkAdaptiveQuery/adaptive", CPUs: 4, NsPerOp: 500}, // new row
	}
	annotateDeltas(rows, path)
	if got := rows[0].DeltaVsPrev; got != "+10.0%" {
		t.Fatalf("delta[0] = %q, want +10.0%%", got)
	}
	if got := rows[1].DeltaVsPrev; got != "-50.0%" {
		t.Fatalf("delta[1] = %q, want -50.0%%", got)
	}
	if got := rows[2].DeltaVsPrev; got != "" {
		t.Fatalf("delta for new row = %q, want empty", got)
	}

	// No previous file: all deltas stay empty.
	fresh := []Row{{Name: "X", CPUs: 1, NsPerOp: 10}}
	annotateDeltas(fresh, filepath.Join(t.TempDir(), "missing.json"))
	if fresh[0].DeltaVsPrev != "" {
		t.Fatalf("delta with no previous file = %q, want empty", fresh[0].DeltaVsPrev)
	}
}
