// Command alexrouter fronts a fleet of alexd shards: it consistent-
// hashes /feedback writes to the shard owning each link's dataset-1
// entity and scatter-gathers /query across the fleet, merging answers
// so clients see exactly what a single alexd over the same data would
// return. The router is stateless — all durable state lives in the
// shards' journals — so any number of routers can front one fleet.
//
// Route a three-shard fleet (same address list the shards were given
// via -fleet, in shard-ID order):
//
//	alexrouter -addr :8080 \
//	  -shards localhost:8081,localhost:8082,localhost:8083
//
// A health loop probes every shard's /healthz; dead shards are routed
// around behind a circuit breaker (reads keep working off any live
// shard's replicated full view, writes for a dead shard's range get
// 503 + Retry-After until it recovers).
//
// Endpoints: POST /query, POST /feedback, GET /links, GET /healthz,
// GET /metrics — the same wire contract as alexd, so fedquery and
// alexload point at the router unchanged.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"alex/internal/federation"
	"alex/internal/fleet"
	"alex/internal/pprofserve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	shards := flag.String("shards", "", "comma-separated alexd shard addresses, in shard-ID order (required)")
	healthInterval := flag.Duration("health-interval", time.Second, "shard /healthz poll interval")
	queryTimeout := flag.Duration("query-timeout", 10*time.Second, "scatter-gather deadline per /query")
	fanout := flag.Int("fanout", 0, "shards each /query scatters to (0 = all routable shards)")
	healthProbeTimeout := flag.Duration("health-probe-timeout", 0, "deadline per shard /healthz probe (0 = 2s default)")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fixed delay before hedging a slow sub-query to a peer (0 = adaptive p95)")
	noHedge := flag.Bool("no-hedge", false, "disable hedged failover reads")
	breakerFailures := flag.Int("breaker-failures", 5, "consecutive shard failures that open its circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 5*time.Second, "open-circuit cooldown before a half-open probe")
	breakerSuccesses := flag.Int("breaker-successes", 2, "half-open successes required to close the breaker")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (off when empty)")
	flag.Parse()

	if pa, err := pprofserve.Start(*pprofAddr); err != nil {
		fatal(err)
	} else if pa != "" {
		log.Printf("pprof on http://%s/debug/pprof/", pa)
	}

	if *shards == "" {
		fmt.Fprintln(os.Stderr, "alexrouter: -shards is required")
		flag.Usage()
		os.Exit(2)
	}
	var addrs []string
	for _, a := range strings.Split(*shards, ",") {
		addrs = append(addrs, strings.TrimSpace(a))
	}

	r, err := fleet.New(fleet.Config{
		Shards:             addrs,
		HealthInterval:     *healthInterval,
		QueryTimeout:       *queryTimeout,
		QueryFanout:        *fanout,
		HealthProbeTimeout: *healthProbeTimeout,
		Hedge:              fleet.HedgeConfig{Disabled: *noHedge, Delay: *hedgeDelay},
		Breaker: federation.BreakerConfig{
			Failures:  *breakerFailures,
			Cooldown:  *breakerCooldown,
			Successes: *breakerSuccesses,
		},
	})
	if err != nil {
		fatal(err)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: r.Handler()}
	go func() {
		log.Printf("alexrouter serving on %s over %d shards", *addr, len(addrs))
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			fatal(err)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Printf("alexrouter: http shutdown: %v", err)
	}
	if err := r.Close(); err != nil {
		log.Printf("alexrouter: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "alexrouter: %v\n", err)
	os.Exit(1)
}
