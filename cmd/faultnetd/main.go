// Command faultnetd is the network sibling of the faultfs story: a
// chaos reverse proxy that sits between routers and shards (or clients
// and routers) and injects seeded, deterministic network faults —
// latency, connection drops, 5xx bursts, slow-loris bodies and
// asymmetric partitions.
//
// Proxy a shard with 50ms latency already armed:
//
//	faultnetd -listen :9081 -target localhost:8081 -seed 42 \
//	  -faults '{"latency":50000000}'
//
// The fault profile is reconfigured live:
//
//	curl -X POST localhost:9081/_faultnet/set -d '{"partition":true}'
//	curl localhost:9081/_faultnet/stats
//
// Everything else is forwarded verbatim, so the proxied service's wire
// contract is unchanged — the chaos drill's journal audit and answer
// diffing run against the same endpoints as production.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"alex/internal/faultnet"
)

func main() {
	listen := flag.String("listen", ":9080", "proxy listen address")
	target := flag.String("target", "", "address to forward to (required)")
	seed := flag.Int64("seed", 1, "fault-injection RNG seed")
	faults := flag.String("faults", "", "initial fault profile as JSON (see faultnet.Faults)")
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "faultnetd: -target is required")
		flag.Usage()
		os.Exit(2)
	}

	p, err := faultnet.NewProxy(*seed, *listen, *target)
	if err != nil {
		fatal(err)
	}
	if *faults != "" {
		var f faultnet.Faults
		if err := json.Unmarshal([]byte(*faults), &f); err != nil {
			fatal(fmt.Errorf("bad -faults: %v", err))
		}
		p.Transport().SetFaults("", f)
	}
	p.Start()
	log.Printf("faultnetd proxying %s -> %s (seed %d)", p.Addr(), *target, *seed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down...")
	if err := p.Close(); err != nil {
		log.Printf("faultnetd: %v", err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "faultnetd: %v\n", err)
	os.Exit(1)
}
