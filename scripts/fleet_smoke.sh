#!/usr/bin/env bash
# fleet_smoke.sh — end-to-end smoke of the sharded alexd fleet.
#
# Boots 3 alexd shards (journal-backed, synthetic profile) plus an
# alexrouter, then asserts the failover contract from DESIGN.md:
#
#   1. the router serves queries and accepts feedback while healthy;
#   2. after SIGKILLing one shard the router reports degraded but keeps
#      answering queries with the same rows as before the kill;
#   3. the restarted shard recovers from its journal, catches up from
#      its peers, and the fleet returns to full health with answers
#      unchanged.
#
# Used by `make fleet-smoke` and the CI fleet-smoke job. Requires only
# bash, curl and the go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

PROFILE=dbpedia-drugbank
SCALE=0.15
BASE=$((20000 + RANDOM % 20000))
S0="127.0.0.1:$((BASE + 1))"
S1="127.0.0.1:$((BASE + 2))"
S2="127.0.0.1:$((BASE + 3))"
ROUTER="127.0.0.1:$((BASE + 4))"
FLEET="$S0,$S1,$S2"
DATA="$(mktemp -d)"
BIN="$DATA/bin"
mkdir -p "$BIN"
declare -a PIDS=()

# Cleanup runs exactly once, on normal exit OR on INT/TERM — a ^C'd
# smoke run must not strand alexd processes or temp data. After
# cleaning, re-raise the signal so the caller sees the right exit code.
CLEANED=0
cleanup() {
  [ "$CLEANED" = 1 ] && return
  CLEANED=1
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$DATA"
}
trap cleanup EXIT
trap 'cleanup; trap - INT; kill -INT $$' INT
trap 'cleanup; trap - TERM; kill -TERM $$' TERM

fail() { echo "fleet-smoke: FAIL: $*" >&2; exit 1; }

# wait_until <deadline-secs> <desc> <cmd...>: poll cmd until success.
wait_until() {
  local deadline=$1 desc=$2; shift 2
  local t=0
  until "$@" >/dev/null 2>&1; do
    sleep 0.5
    t=$((t + 1))
    [ "$t" -lt $((deadline * 2)) ] || fail "timed out waiting for $desc"
  done
}

router_routable() { # router_routable <n>: healthz reports n routable shards
  curl -fsS "http://$ROUTER/healthz" | grep -q "\"routable\":$1"
}

start_shard() { # start_shard <id> <addr>
  "$BIN/alexd" -profile "$PROFILE" -scale "$SCALE" -addr "$2" \
    -shard-id "$1" -fleet "$FLEET" -replicate-every 200ms \
    -flush 100ms -data "$DATA/shard-$1" \
    >"$DATA/shard-$1.log" 2>&1 &
  PIDS+=($!)
  eval "PID_SHARD$1=$!"
}

echo "== building binaries"
go build -o "$BIN/alexd" ./cmd/alexd
go build -o "$BIN/alexrouter" ./cmd/alexrouter
go build -o "$BIN/alexload" ./cmd/alexload

echo "== starting 3 shards + router (base port $BASE, data in $DATA)"
start_shard 0 "$S0"
start_shard 1 "$S1"
start_shard 2 "$S2"
"$BIN/alexrouter" -addr "$ROUTER" -shards "$FLEET" -health-interval 200ms \
  -breaker-failures 1 -breaker-cooldown 500ms -breaker-successes 1 \
  >"$DATA/router.log" 2>&1 &
PIDS+=($!)

# Shard startup includes synth generation + PARIS; give it a while.
wait_until 120 "fleet healthy" router_routable 3
echo "== fleet healthy: $(curl -fsS "http://$ROUTER/healthz")"

# Pick a query target entity off the router's full link view.
E1=$(curl -fsS "http://$ROUTER/links" | grep -o '"e1":"[^"]*"' | head -1 | cut -d'"' -f4)
[ -n "$E1" ] || fail "router /links returned no links"
QUERY="SELECT ?n WHERE { <$E1> <http://ds2.example.org/prop/name> ?n . }"
query_rows() {
  curl -fsS -X POST "http://$ROUTER/query" \
    -H 'Content-Type: application/json' \
    -d "{\"query\":\"$(echo "$QUERY" | sed 's/"/\\"/g')\"}" |
    grep -o '"rows":\[.*\]'
}

echo "== load through the router (queries + feedback)"
"$BIN/alexload" -server "http://$ROUTER" -duration 3s -concurrency 4 -seed 7
sleep 1 # let the final episodes flush + replicate before baselining
BASELINE=$(query_rows)
[ -n "$BASELINE" ] || fail "baseline query returned no rows payload"

echo "== killing shard 1 (SIGKILL, mid-fleet)"
kill -9 "$PID_SHARD1"
wait_until 30 "router to route around the dead shard" router_routable 2
curl -fsS "http://$ROUTER/healthz" | grep -q '"status":"degraded"' ||
  fail "router healthz not degraded with a dead shard"

DEGRADED=$(query_rows)
[ "$DEGRADED" = "$BASELINE" ] ||
  fail "degraded answer diverged from baseline:
  baseline: $BASELINE
  degraded: $DEGRADED"
echo "== degraded-but-correct: rows unchanged with shard 1 down"

echo "== restarting shard 1 from its journal"
start_shard 1 "$S1"
wait_until 120 "fleet to heal" router_routable 3
curl -fsS "http://$ROUTER/healthz" | grep -q '"status":"ok"' ||
  fail "router healthz not ok after shard restart"
grep -q "durability on" "$DATA/shard-1.log" ||
  fail "restarted shard did not report journal recovery"

# The restarted shard answers too; poll until its view converges.
recovered_matches() { [ "$(query_rows)" = "$BASELINE" ]; }
wait_until 30 "recovered fleet to answer like the baseline" recovered_matches
echo "== recovery: fleet healthy, answers unchanged"
echo "fleet-smoke: PASS"
