#!/usr/bin/env bash
# fleet_chaos.sh — seeded chaos drill for the sharded alexd fleet.
#
# Boots 3 alexd shards behind 3 faultnetd chaos proxies plus an
# alexrouter that reaches the shards only through the proxies, then
# runs the hard failure cocktail from ISSUE/DESIGN:
#
#   1. arm seeded latency + jitter + connection drops + 5xx bursts on
#      every router->shard path;
#   2. reject cross-shard feedback batches through the router, retrying
#      until each batch is acked (202) — every ack is a durability
#      promise;
#   3. SIGKILL one shard right after an ack (no drain, no checkpoint)
#      and restart it from its journal;
#   4. partition another shard from the router (asymmetrically — the
#      shard still reaches its peers), then heal;
#   5. audit: no acked rejection is served by any shard or the router
#      (zero acked-feedback loss), the cross-shard prepare/commit path
#      actually ran, and the fleet's answers are canonically identical
#      (via rowcanon) to a single-node alexd given the same verdicts.
#
# Deterministic per seed: synth data, PARIS and faultnetd all derive
# from fixed seeds. Used by `make fleet-chaos` and the CI fleet-chaos
# job. Requires only bash, curl and the go toolchain.
set -euo pipefail

cd "$(dirname "$0")/.."

PROFILE=dbpedia-drugbank
SCALE=0.15
SEED=20260808
BASE=$((20000 + RANDOM % 20000))
S0="127.0.0.1:$((BASE + 1))"
S1="127.0.0.1:$((BASE + 2))"
S2="127.0.0.1:$((BASE + 3))"
P0="127.0.0.1:$((BASE + 4))"
P1="127.0.0.1:$((BASE + 5))"
P2="127.0.0.1:$((BASE + 6))"
ROUTER="127.0.0.1:$((BASE + 7))"
SINGLE="127.0.0.1:$((BASE + 8))"
FLEET="$S0,$S1,$S2"     # shard-to-shard replication runs direct
PROXIED="$P0,$P1,$P2"   # the router only sees the chaos proxies
DATA="$(mktemp -d)"
BIN="$DATA/bin"
mkdir -p "$BIN"
declare -a PIDS=()

CLEANED=0
cleanup() {
  [ "$CLEANED" = 1 ] && return
  CLEANED=1
  for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  rm -rf "$DATA"
}
trap cleanup EXIT
trap 'cleanup; trap - INT; kill -INT $$' INT
trap 'cleanup; trap - TERM; kill -TERM $$' TERM

fail() { echo "fleet-chaos: FAIL: $*" >&2; exit 1; }

# wait_until <deadline-secs> <desc> <cmd...>: poll cmd until success.
wait_until() {
  local deadline=$1 desc=$2; shift 2
  local t=0
  until "$@" >/dev/null 2>&1; do
    sleep 0.5
    t=$((t + 1))
    [ "$t" -lt $((deadline * 2)) ] || fail "timed out waiting for $desc"
  done
}

router_routable() { # router_routable <n>: healthz reports n routable shards
  curl -fsS "http://$ROUTER/healthz" | grep -q "\"routable\":$1"
}

start_shard() { # start_shard <id> <addr>
  "$BIN/alexd" -profile "$PROFILE" -scale "$SCALE" -addr "$2" \
    -shard-id "$1" -fleet "$FLEET" -replicate-every 200ms \
    -routers "$ROUTER" -txn-resolve-after 2s \
    -flush 100ms -data "$DATA/shard-$1" \
    >"$DATA/shard-$1.log" 2>&1 &
  PIDS+=($!)
  eval "PID_SHARD$1=$!"
}

start_proxy() { # start_proxy <id> <listen> <target>
  "$BIN/faultnetd" -listen "$2" -target "$3" -seed $((SEED + $1)) \
    >"$DATA/proxy-$1.log" 2>&1 &
  PIDS+=($!)
}

set_faults() { # set_faults <proxy-addr> <json>
  curl -fsS -X POST "http://$1/_faultnet/set" -d "$2" >/dev/null
}

echo "== building binaries"
go build -o "$BIN/alexd" ./cmd/alexd
go build -o "$BIN/alexrouter" ./cmd/alexrouter
go build -o "$BIN/faultnetd" ./cmd/faultnetd
go build -o "$BIN/rowcanon" ./cmd/rowcanon

echo "== starting 3 shards + 3 chaos proxies + router (base port $BASE, data in $DATA)"
start_shard 0 "$S0"
start_shard 1 "$S1"
start_shard 2 "$S2"
start_proxy 0 "$P0" "$S0"
start_proxy 1 "$P1" "$S1"
start_proxy 2 "$P2" "$S2"
"$BIN/alexrouter" -addr "$ROUTER" -shards "$PROXIED" -health-interval 200ms \
  -breaker-failures 1 -breaker-cooldown 500ms -breaker-successes 1 \
  >"$DATA/router.log" 2>&1 &
PIDS+=($!)

# Shard startup includes synth generation + PARIS; give it a while.
wait_until 120 "fleet healthy" router_routable 3
echo "== fleet healthy through the proxies"

# Snapshot the link set while calm; pick probe queries (links 1..5)
# and 36 rejection victims spread across the rest of the list — the
# spread makes each 12-link batch span shard owners with near
# certainty, so every ack exercises the prepare/commit path.
curl -fsS "http://$ROUTER/links" |
  grep -o '"e1":"[^"]*","e2":"[^"]*"' |
  sed 's/"e1":"\([^"]*\)","e2":"\([^"]*\)"/\1 \2/' >"$DATA/links.txt"
TOTAL=$(wc -l <"$DATA/links.txt")
[ "$TOTAL" -ge 60 ] || fail "too few links for the drill: $TOTAL"
mapfile -t PROBES < <(head -5 "$DATA/links.txt" | cut -d' ' -f1)
STEP=$(((TOTAL - 10) / 36))
[ "$STEP" -ge 1 ] || STEP=1

# batch_json <batch>: a 12-link reject-feedback body from links.txt,
# batches 0..2 disjoint by construction. Each batch STRIDES across the
# whole list (indices b, b+3·STEP, b+6·STEP, ...) because a shard's
# full view groups links by owner — a contiguous block would land on a
# single shard and never exercise the cross-shard prepare/commit path.
batch_json() {
  local batch=$1 out="" i line e1 e2
  for ((i = 0; i < 12; i++)); do
    line=$(sed -n "$((10 + (i * 3 + batch) * STEP))p" "$DATA/links.txt")
    [ -n "$line" ] || fail "links.txt index out of range (batch $batch item $i)"
    e1=${line%% *}; e2=${line##* }
    [ -n "$out" ] && out+=","
    out+="{\"e1\":\"$e1\",\"e2\":\"$e2\"}"
  done
  echo "{\"approve\":false,\"links\":[$out]}"
}

# send_batch <json>: retry through the chaos until the router acks 202.
# Only an ack adds the batch to the must-survive set.
send_batch() {
  local body=$1 t=0 code
  while :; do
    code=$(curl -s -o "$DATA/fb.out" -w '%{http_code}' -X POST \
      "http://$ROUTER/feedback" -H 'Content-Type: application/json' \
      -d "$body" || true)
    [ "$code" = 202 ] && return 0
    t=$((t + 1))
    [ "$t" -lt 120 ] || fail "batch never acked (last status $code: $(cat "$DATA/fb.out"))"
    sleep 0.5
  done
}

CHAOS='{"latency":5000000,"jitter":20000000,"drop_prob":0.10,"err_prob":0.05}'
echo "== arming chaos on every router->shard path: $CHAOS"
set_faults "$P0" "$CHAOS"
set_faults "$P1" "$CHAOS"
set_faults "$P2" "$CHAOS"

echo "== rejecting batch 1 (12 links) through the chaos"
send_batch "$(batch_json 0)"

echo "== SIGKILL shard 1 right after the ack, restart from its journal"
kill -9 "$PID_SHARD1"
wait_until 30 "router to notice the dead shard" router_routable 2
start_shard 1 "$S1"
wait_until 120 "restarted shard to recover its journal" \
  grep -q "durability on" "$DATA/shard-1.log"
wait_until 120 "killed shard to rejoin" router_routable 3

echo "== rejecting batch 2 (12 links) with the restarted shard in rotation"
send_batch "$(batch_json 1)"

echo "== partitioning shard 2 from the router (asymmetric), healing in background"
set_faults "$P2" '{"partition":true}'
( sleep 3; set_faults "$P2" "$CHAOS" ) &
PIDS+=($!)
echo "== rejecting batch 3 (12 links) across the partition + heal"
send_batch "$(batch_json 2)"

echo "== calming the network"
set_faults "$P0" '{}'
set_faults "$P1" '{}'
set_faults "$P2" '{}'
wait_until 60 "fleet to heal after the drill" router_routable 3

{ batch_json 0; batch_json 1; batch_json 2; } |
  grep -o '{"e1":"[^"]*","e2":"[^"]*"}' >"$DATA/acked.txt"
ACKED=$(wc -l <"$DATA/acked.txt")
[ "$ACKED" = 36 ] || fail "expected 36 acked rejections, built $ACKED"

echo "== auditing: no acked rejection may be served anywhere"
# LinkJSON marshals as {"e1":"...","e2":"..."} with no spaces, so each
# acked.txt line is greppable verbatim in any /links payload.
audit_links() { # audit_links <name> <url>
  curl -fsS "$2" >"$DATA/audit.json"
  while read -r pair; do
    if grep -qF "$pair" "$DATA/audit.json"; then
      fail "$1 still serves acked rejection $pair"
    fi
  done <"$DATA/acked.txt"
}
# Convergence: poll until the router stops serving any acked rejection
# (a fetch failure is NOT clean — it must not end the wait early).
links_clean() { # links_clean <url>
  curl -fsS "$1" >"$DATA/clean.json" || return 1
  ! grep -qFf "$DATA/acked.txt" "$DATA/clean.json"
}
wait_until 60 "acked rejections to drain fleet-wide" links_clean "http://$ROUTER/links"
audit_links "router" "http://$ROUTER/links"
audit_links "shard 0" "http://$S0/links"
audit_links "shard 1" "http://$S1/links"
audit_links "shard 2" "http://$S2/links"
echo "== zero acked-feedback loss confirmed"

TXNS=$(curl -fsS "http://$ROUTER/metrics" | grep '^alexrouter_feedback_txns_total' | awk '{print $2}')
[ "${TXNS:-0}" -ge 1 ] || fail "no cross-shard prepare/commit ran (feedback_txns_total=$TXNS)"
echo "== cross-shard prepare/commit batches acked: $TXNS"
echo "== proxy stats (seeded, deterministic per seed $SEED):"
for p in "$P0" "$P1" "$P2"; do
  echo "  $p: $(curl -fsS "http://$p/_faultnet/stats")"
done

echo "== answer identity: single-node alexd with the same verdicts"
"$BIN/alexd" -profile "$PROFILE" -scale "$SCALE" -addr "$SINGLE" -flush 100ms \
  >"$DATA/single.log" 2>&1 &
PIDS+=($!)
single_healthy() { curl -fsS "http://$SINGLE/healthz" | grep -q '"status":"ok"'; }
wait_until 120 "single node healthy" single_healthy
curl -fsS -X POST "http://$SINGLE/feedback" -H 'Content-Type: application/json' \
  -d "{\"approve\":false,\"links\":[$(paste -sd, "$DATA/acked.txt")]}" >/dev/null
wait_until 60 "single node to apply the verdicts" links_clean "http://$SINGLE/links"

query_canon() { # query_canon <addr> <entity>
  curl -fsS -X POST "http://$1/query" -H 'Content-Type: application/json' \
    -d "{\"query\":\"SELECT ?n WHERE { <$2> <http://ds2.example.org/prop/name> ?n . }\"}" |
    "$BIN/rowcanon"
}
for e in "${PROBES[@]}"; do
  query_canon "$ROUTER" "$e" >"$DATA/canon-router.txt"
  query_canon "$SINGLE" "$e" >"$DATA/canon-single.txt"
  diff -u "$DATA/canon-single.txt" "$DATA/canon-router.txt" ||
    fail "post-drill answer for <$e> diverges from single node"
done
echo "== answers canonically identical to single node on ${#PROBES[@]} probes"
echo "fleet-chaos: PASS"
