package alex_test

import (
	"math/rand"
	"testing"

	"alex"
)

// TestEndToEndPipeline exercises the full public API: generate a pair,
// auto-link, run ALEX to convergence, and check quality improved.
func TestEndToEndPipeline(t *testing.T) {
	prof, ok := alex.ProfileByName("opencyc-lexvo")
	if !ok {
		t.Fatal("missing built-in profile")
	}
	prof = prof.Scale(0.5)
	ds := alex.GenerateDataset(prof)

	scored := alex.AutoLink(ds.G1, ds.G2, ds.Entities1, ds.Entities2, alex.AutoLinkOptions())
	if len(scored) == 0 {
		t.Fatal("auto-linker produced nothing")
	}
	initial := alex.LinksOf(scored)

	cfg := alex.DefaultConfig()
	cfg.EpisodeSize = 150
	cfg.MaxEpisodes = 15
	cfg.Partitions = 2
	sys := alex.NewSystem(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg)

	before := alex.Evaluate(sys.Candidates(), ds.GroundTruth)
	oracle := alex.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(2)))
	res := sys.Run(oracle, nil)
	after := alex.Evaluate(sys.Candidates(), ds.GroundTruth)

	t.Logf("episodes=%d before=%v after=%v", res.Episodes, before, after)
	if after.F1 <= before.F1 {
		t.Fatalf("no improvement: %.3f -> %.3f", before.F1, after.F1)
	}
}

// TestFederatedFeedbackLoop exercises the query-answer feedback path:
// a federated answer is approved and the link behind it triggers
// exploration in the system.
func TestFederatedFeedbackLoop(t *testing.T) {
	dict := alex.NewDict()
	g1 := alex.NewGraphWithDict(dict)
	g2 := alex.NewGraphWithDict(dict)

	player := alex.IRI("http://kb/LeBron_James")
	g1.Insert(alex.Triple{S: player, P: alex.IRI("http://kb/name"), O: alex.Literal("LeBron James")})
	g1.Insert(alex.Triple{S: player, P: alex.IRI("http://kb/award"), O: alex.Literal("NBA MVP 2013")})

	person := alex.IRI("http://news/lebron")
	g2.Insert(alex.Triple{S: person, P: alex.IRI("http://news/name"), O: alex.Literal("LeBron James")})
	g2.Insert(alex.Triple{S: alex.IRI("http://news/article1"), P: alex.IRI("http://news/about"), O: person})

	e1 := g1.SubjectIDs()
	e2 := g2.SubjectIDs()
	scored := alex.AutoLink(g1, g2, e1, e2, alex.AutoLinkOptions())
	if len(scored) == 0 {
		t.Fatal("linker found nothing")
	}

	cfg := alex.DefaultConfig()
	cfg.EpisodeSize = 10
	sys := alex.NewSystem(g1, g2, e1, e2, alex.LinksOf(scored), cfg)

	fed := alex.NewFederator(dict)
	if err := fed.AddSource("kb", g1); err != nil {
		t.Fatal(err)
	}
	if err := fed.AddSource("news", g2); err != nil {
		t.Fatal(err)
	}
	fed.SetLinks(sys.Candidates())

	res, err := fed.Query(`SELECT ?article WHERE {
		?p <http://kb/award> "NBA MVP 2013" .
		?article <http://news/about> ?p .
	}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	if res.Rows[0].Used.Len() == 0 {
		t.Fatal("answer carries no link provenance")
	}
	alex.ApproveAnswer(res.Rows[0], sys)
	// approval keeps the link a candidate
	for _, l := range res.Rows[0].Used.Slice() {
		if !sys.Candidates().Has(l) {
			t.Fatal("approved link vanished")
		}
	}
	alex.RejectAnswer(res.Rows[0], sys)
	for _, l := range res.Rows[0].Used.Slice() {
		if sys.Candidates().Has(l) {
			t.Fatal("rejected link survived")
		}
	}
}

func TestQueryHelpers(t *testing.T) {
	g := alex.NewGraph()
	g.Insert(alex.Triple{S: alex.IRI("http://e/a"), P: alex.IRI("http://p/name"), O: alex.Literal("A")})
	res, err := alex.ExecuteQuery(g, `SELECT ?n WHERE { ?s <http://p/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if _, err := alex.ParseQuery(`SELECT bogus`); err == nil {
		t.Fatal("bad query parsed")
	}
}

func TestProfilesExposed(t *testing.T) {
	// 11 paper dataset pairs plus the skewed-hub adaptive-execution
	// stress profile.
	if len(alex.Profiles()) != 12 {
		t.Fatalf("profiles = %d", len(alex.Profiles()))
	}
}
