// Package pprofserve exposes the net/http/pprof profiling endpoints on
// an opt-in listener. The long-running daemon (alexd) and the
// experiment driver (alexbench) both take a -pprof flag; profiling is
// off unless the flag is set, and the profile server never shares a
// listener with the serving API.
package pprofserve

import (
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on DefaultServeMux
)

// Start serves the pprof endpoints on addr in a background goroutine
// and returns the address actually listened on (useful with ":0").
// An empty addr is a no-op. Listen errors are returned immediately so a
// bad -pprof value fails fast; later Serve errors are logged. The
// goroutine lives for the rest of the process — profiling has no
// shutdown sequence.
func Start(addr string) (string, error) {
	if addr == "" {
		return "", nil
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() {
		// DefaultServeMux carries the /debug/pprof handlers from the
		// net/http/pprof import above.
		if err := http.Serve(ln, nil); err != nil {
			log.Printf("pprof: %v", err)
		}
	}()
	return ln.Addr().String(), nil
}
