package store

import (
	"fmt"
	"math/rand"
	"testing"

	"alex/internal/rdf"
	"alex/internal/wal"
)

// randomTriples returns n random (possibly duplicate) triples over a
// small ID universe, so every bound-position combination has matches.
func randomTriples(rng *rand.Rand, n, universe int) []triple {
	ts := make([]triple, n)
	for i := range ts {
		ts[i] = triple{
			s: rdf.ID(rng.Intn(universe) + 1),
			p: rdf.ID(rng.Intn(universe/4+1) + 1),
			o: rdf.ID(rng.Intn(universe) + 1),
		}
	}
	return ts
}

// graphOf loads triples into a fresh rdf.Graph (the reference
// implementation).
func graphOf(ts []triple) *rdf.Graph {
	g := rdf.NewGraph()
	for _, t := range ts {
		g.InsertIDs(t.s, t.p, t.o)
	}
	return g
}

// buildSegment writes and reopens one segment from the triples.
func buildSegment(t *testing.T, ts []triple, noMmap bool) *Segment {
	t.Helper()
	dir := t.TempDir()
	cp := append([]triple(nil), ts...)
	if err := writeSegment(nil2fs(), dir, "t-000001.seg", cp); err != nil {
		t.Fatalf("writeSegment: %v", err)
	}
	seg, err := openSegment(nil2fs(), dir+"/t-000001.seg", noMmap)
	if err != nil {
		t.Fatalf("openSegment: %v", err)
	}
	t.Cleanup(func() {
		if err := seg.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return seg
}

// assertSegmentMatchesGraph checks scan and count identity for every
// bound-position combination over a sample of IDs.
func assertSegmentMatchesGraph(t *testing.T, seg *Segment, g *rdf.Graph, universe int) {
	t.Helper()
	if seg.Count() != g.Size() {
		t.Fatalf("count: segment %d, graph %d", seg.Count(), g.Size())
	}
	for mask := 0; mask < 8; mask++ {
		haveS, haveP, haveO := mask&1 != 0, mask&2 != 0, mask&4 != 0
		for probe := 0; probe < universe+2; probe++ {
			s, p, o := rdf.ID(probe), rdf.ID(probe%(universe/4+2)), rdf.ID(universe+1-probe)
			want := g.CountMatch(s, p, o, haveS, haveP, haveO)
			got := seg.countMatch(s, p, o, haveS, haveP, haveO)
			if got != want {
				t.Fatalf("countMatch mask=%03b probe=(%d,%d,%d): got %d want %d", mask, s, p, o, got, want)
			}
			wantSet := map[triple]bool{}
			g.ForEachMatchIDs(s, p, o, haveS, haveP, haveO, func(ts, tp, to rdf.ID) bool {
				wantSet[triple{ts, tp, to}] = true
				return true
			})
			n := 0
			seg.forEachMatch(s, p, o, haveS, haveP, haveO, func(ts, tp, to rdf.ID) bool {
				if !wantSet[triple{ts, tp, to}] {
					t.Fatalf("forEachMatch mask=%03b: unexpected (%d,%d,%d)", mask, ts, tp, to)
				}
				n++
				return true
			})
			if n != len(wantSet) {
				t.Fatalf("forEachMatch mask=%03b: %d triples, want %d", mask, n, len(wantSet))
			}
			if !haveS && !haveP && !haveO {
				break // the wildcard scan does not depend on the probe
			}
		}
	}
}

func TestSegmentMatchesGraph(t *testing.T) {
	for _, tc := range []struct{ n, universe int }{
		{0, 4}, {1, 4}, {7, 3}, {340, 20}, {341, 20}, {342, 20}, {3000, 40},
	} {
		t.Run(fmt.Sprintf("n=%d", tc.n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(tc.n)*31 + 7))
			ts := randomTriples(rng, tc.n, tc.universe)
			g := graphOf(ts)
			seg := buildSegment(t, ts, false)
			assertSegmentMatchesGraph(t, seg, g, tc.universe)
		})
	}
}

func TestSegmentNoMmapFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ts := randomTriples(rng, 500, 16)
	g := graphOf(ts)
	seg := buildSegment(t, ts, true)
	if seg.mapped {
		t.Fatal("expected heap-loaded segment")
	}
	assertSegmentMatchesGraph(t, seg, g, 16)
}

func TestSegmentPostingEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ts := randomTriples(rng, 800, 25)
	g := graphOf(ts)
	seg := buildSegment(t, ts, false)
	gotS, wantS := seg.postingIDs(posS), g.SubjectIDs()
	if len(gotS) != len(wantS) {
		t.Fatalf("subjects: %d vs %d", len(gotS), len(wantS))
	}
	for i := range gotS {
		if gotS[i] != wantS[i] {
			t.Fatalf("subjects[%d]: %d vs %d", i, gotS[i], wantS[i])
		}
	}
	gotP, wantP := seg.postingIDs(posP), g.PredicateIDs()
	if fmt.Sprint(gotP) != fmt.Sprint(wantP) {
		t.Fatalf("predicates: %v vs %v", gotP, wantP)
	}
}

func TestSegmentRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ts := randomTriples(rng, 50, 8)
	dir := t.TempDir()
	if err := writeSegment(nil2fs(), dir, "c-000001.seg", ts); err != nil {
		t.Fatalf("writeSegment: %v", err)
	}
	path := dir + "/c-000001.seg"
	seg, err := openSegment(nil2fs(), path, true)
	if err != nil {
		t.Fatalf("openSegment: %v", err)
	}
	data := append([]byte(nil), seg.data...)
	if err := seg.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"bad-magic": func(b []byte) []byte { b[0] ^= 0xff; return b },
		"torn-tail": func(b []byte) []byte { return b[:len(b)-3] },
		"footer-flip": func(b []byte) []byte {
			off := binary_len(b)
			b[off] ^= 0x01
			return b
		},
	} {
		t.Run(name, func(t *testing.T) {
			mut := mutate(append([]byte(nil), data...))
			if _, err := parseSegment(path, mut, false); err == nil {
				t.Fatal("corrupt segment accepted")
			}
		})
	}
}

// binary_len returns the footer offset of a segment image, for the
// footer-corruption case.
func binary_len(b []byte) int {
	tr := b[len(b)-segTrailer:]
	return int(uint32(tr[0]) | uint32(tr[1])<<8 | uint32(tr[2])<<16 | uint32(tr[3])<<24)
}

func nil2fs() wal.FS { return wal.OS{} }
