package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"strings"
	"sync/atomic"

	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/wal"
)

// On-disk layout of a store directory:
//
//	MANIFEST.json            the root of the generation (written last,
//	                         atomically: tmp + fsync + rename + dirsync)
//	dict.bin                 append-only dictionary terms in ID order;
//	                         the manifest pins how many bytes/terms are
//	                         valid, so a torn append is truncated away
//	<src>-<seq>.seg          immutable sorted segments (see segment.go)
//	<src>-delta-<gen>.bin    the in-memory delta serialized at checkpoint
//	<src>.ent                the source's linkable-entity ID list
//	links.bin                the initial candidate link set
//
// Every file except dict.bin and MANIFEST.json is immutable and
// uniquely named, and the manifest is renamed into place only after
// everything it references is durable. A crash at any point therefore
// leaves the previous manifest and every file it references intact:
// recovery falls back to the previous generation, and stray files from
// the torn generation are removed at the next Open.
const (
	manifestName = "MANIFEST.json"
	dictName     = "dict.bin"
	linksName    = "links.bin"

	manifestVersion = 1

	// defaultMaxSegments is the flush-stack depth at which a compaction
	// folds the whole stack into one segment instead of appending
	// another delta segment.
	defaultMaxSegments = 8
)

// ErrNoStore is wrapped by Open when dir holds no store manifest —
// callers fall back to building from the original data.
var ErrNoStore = errors.New("store: no manifest")

// Options configures a Set.
type Options struct {
	// FS is the file system; nil means the real OS. faultfs satisfies
	// it for crash-injection tests.
	FS wal.FS
	// NoMmap forces segments to be read into memory instead of mmap'd.
	NoMmap bool
	// MaxSegments overrides defaultMaxSegments; 0 keeps the default.
	MaxSegments int
	// Meta is an identity stamp for the data the store was built from
	// (dataset paths or synth profile). Open fails when it does not
	// match, because dictionary IDs are only meaningful for the exact
	// inputs the store was built with.
	Meta string
}

// Set is a directory of disk-backed triple stores sharing one
// dictionary: the unit alexd persists. Mutation (AddSource, InsertIDs
// on its stores, Compact, Checkpoint) is single-writer, like the rest
// of the write path; reads through the stores are safe concurrently
// with all of it.
type Set struct {
	dir  string
	fs   wal.FS
	opts Options

	dict     *rdf.Dict
	gen      atomic.Uint64 // manifest generation, bumped each durable write
	seq      uint64        // unique file sequence number
	sources  []*Segmented
	byName   map[string]*Segmented
	entities map[string][]rdf.ID
	links    []links.Link

	dictTerms  int   // terms persisted in dict.bin per the manifest
	dictBytes  int64 // valid bytes of dict.bin per the manifest
	deltaFiles map[string]string
	hasLinks   bool

	// retired holds segments replaced by compaction. They stay mapped
	// until Close so readers holding an older view never fault.
	retired []*Segment

	lastFP string // fingerprint at the last manifest write
}

// Create starts an empty store set in dir. The caller adds sources,
// loads triples, then calls Checkpoint (or Compact) to make it
// durable.
func Create(dir string, dict *rdf.Dict, opts Options) (*Set, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = wal.OS{}
	}
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	if dict == nil {
		dict = rdf.NewDict()
	}
	return &Set{
		dir:        dir,
		fs:         fsys,
		opts:       opts,
		dict:       dict,
		byName:     make(map[string]*Segmented),
		entities:   make(map[string][]rdf.ID),
		deltaFiles: make(map[string]string),
	}, nil
}

// AddSource registers a new named store. Names become file name stems,
// so they are restricted to [a-zA-Z0-9_-].
func (s *Set) AddSource(name string) (*Segmented, error) {
	if name == "" || strings.IndexFunc(name, func(r rune) bool {
		return !(r == '-' || r == '_' || (r >= '0' && r <= '9') ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z'))
	}) >= 0 {
		return nil, fmt.Errorf("store: invalid source name %q", name)
	}
	if _, dup := s.byName[name]; dup {
		return nil, fmt.Errorf("store: duplicate source %q", name)
	}
	src := newSegmented(name, s.dict)
	s.sources = append(s.sources, src)
	s.byName[name] = src
	return src, nil
}

// Source returns the named store, or nil.
func (s *Set) Source(name string) *Segmented { return s.byName[name] }

// Sources returns the stores in registration order.
func (s *Set) Sources() []*Segmented { return s.sources }

// Dict returns the shared dictionary.
func (s *Set) Dict() *rdf.Dict { return s.dict }

// Meta returns the identity stamp the store was created or opened with.
func (s *Set) Meta() string { return s.opts.Meta }

// Generation returns the manifest generation (bumped by every
// successful Compact/Checkpoint that wrote something).
func (s *Set) Generation() uint64 { return s.gen.Load() }

// Dir returns the store directory.
func (s *Set) Dir() string { return s.dir }

// SetEntities records the source's linkable-entity ID list, persisted
// so cold start does not have to recompute it from the raw data.
func (s *Set) SetEntities(name string, ids []rdf.ID) {
	s.entities[name] = append([]rdf.ID(nil), ids...)
}

// Entities returns the recorded entity list for name.
func (s *Set) Entities(name string) []rdf.ID { return s.entities[name] }

// SetInitialLinks records the initial candidate link set, persisted so
// cold start does not have to re-run the automatic linker.
func (s *Set) SetInitialLinks(ls []links.Link) {
	s.links = append([]links.Link(nil), ls...)
	s.hasLinks = true
}

// InitialLinks returns the recorded initial link set and whether one
// was recorded.
func (s *Set) InitialLinks() ([]links.Link, bool) { return s.links, s.hasLinks }

// Dirty reports whether there is anything a Checkpoint would persist.
func (s *Set) Dirty() bool { return s.fingerprint() != s.lastFP }

// fingerprint captures everything a manifest write depends on. The
// store is insert-only, so sizes and file names are a sound change
// detector.
func (s *Set) fingerprint() string {
	var b strings.Builder
	fmt.Fprintf(&b, "d%d", s.dict.Len())
	for _, src := range s.sources {
		v := src.view.Load()
		fmt.Fprintf(&b, "|%s=%d", src.name, v.delta.Size())
		for _, seg := range v.segs {
			b.WriteByte(',')
			b.WriteString(seg.path)
		}
	}
	return b.String()
}

func (s *Set) maxSegments() int {
	if s.opts.MaxSegments > 0 {
		return s.opts.MaxSegments
	}
	return defaultMaxSegments
}

func (s *Set) nextSeq() uint64 { s.seq++; return s.seq }

// Compact folds each dirty source's delta into a new immutable segment
// (a full merge of the whole stack once it is maxSegments deep) and
// commits the new generation. Intended for episode boundaries. Clean
// sources are untouched; a fully clean set is a no-op.
func (s *Set) Compact() error {
	type swap struct {
		src  *Segmented
		prev *segView
		next *segView
		old  []*Segment
	}
	var swaps []swap
	for _, src := range s.sources {
		v := src.view.Load()
		if v.delta.Size() == 0 {
			continue
		}
		var ts []triple
		var old []*Segment
		if len(v.segs) >= s.maxSegments() {
			ts = v.triples() // full merge
			old = v.segs
		} else {
			ts = (&segView{delta: v.delta}).triples() // delta only
		}
		name := fmt.Sprintf("%s-%06d.seg", src.name, s.nextSeq())
		if err := writeSegment(s.fs, s.dir, name, ts); err != nil {
			return err
		}
		seg, err := openSegment(s.fs, s.dir+"/"+name, s.opts.NoMmap)
		if err != nil {
			return fmt.Errorf("store: reopen compacted segment: %w", err)
		}
		keep := v.segs
		if old != nil {
			keep = nil
		}
		next := &segView{
			segs:  append(append([]*Segment(nil), keep...), seg),
			delta: rdf.NewGraphWithDict(s.dict),
		}
		swaps = append(swaps, swap{src: src, prev: v, next: next, old: old})
	}
	if len(swaps) == 0 && s.fingerprint() == s.lastFP {
		return nil
	}
	// Stage the new views so the manifest describes them, then commit.
	// Only after the manifest is durable do readers see the new
	// generation; a failure before that leaves the old views (and the
	// old manifest) fully intact.
	for _, sw := range swaps {
		sw.src.view.Store(sw.next)
	}
	if err := s.writeManifest(); err != nil {
		for _, sw := range swaps {
			sw.src.view.Store(sw.prev)
		}
		return err
	}
	for _, sw := range swaps {
		s.retired = append(s.retired, sw.old...)
	}
	s.cleanup()
	return nil
}

// Checkpoint persists the current state in place: the dictionary tail
// is appended, each dirty source's delta is serialized (small — the
// segments are immutable and already on disk), and a new manifest
// committed. Returns false without touching the disk when nothing
// changed since the last manifest write — the skip-if-clean contract
// the server's episode loop relies on.
func (s *Set) Checkpoint() (bool, error) {
	if s.fingerprint() == s.lastFP {
		return false, nil
	}
	if err := s.writeManifest(); err != nil {
		return false, err
	}
	s.cleanup()
	return true, nil
}

// writeManifest makes the current in-memory state durable: dict tail,
// delta files, entity/link files, then the manifest itself, atomically
// and in that order.
func (s *Set) writeManifest() error {
	if err := s.appendDictTail(); err != nil {
		return err
	}
	gen := s.gen.Load() + 1
	m := manifest{
		Version:    manifestVersion,
		Meta:       s.opts.Meta,
		Generation: gen,
		Seq:        s.seq,
		DictTerms:  s.dictTerms,
		DictBytes:  s.dictBytes,
	}
	newDeltas := make(map[string]string, len(s.sources))
	for _, src := range s.sources {
		v := src.view.Load()
		ms := manifestSource{Name: src.name}
		for _, seg := range v.segs {
			ms.Segments = append(ms.Segments, pathBase(seg.path))
		}
		if v.delta.Size() > 0 {
			dn := fmt.Sprintf("%s-delta-%06d.bin", src.name, gen)
			if err := s.writeDelta(dn, v.delta); err != nil {
				return err
			}
			ms.Delta = dn
			newDeltas[src.name] = dn
		}
		if ids, ok := s.entities[src.name]; ok {
			en := src.name + ".ent"
			if err := s.writeBlobOnce(en, encodeEntities(ids)); err != nil {
				return err
			}
			ms.Entities = en
		}
		m.Sources = append(m.Sources, ms)
	}
	if s.hasLinks {
		if err := s.writeBlobOnce(linksName, encodeLinks(s.links)); err != nil {
			return err
		}
		m.Links = linksName
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	if err := s.writeFileAtomic(manifestName, append(data, '\n')); err != nil {
		return err
	}
	s.gen.Store(gen)
	s.deltaFiles = newDeltas
	s.lastFP = s.fingerprint()
	return nil
}

// appendDictTail persists dictionary terms interned since the last
// manifest. The file is append-only; the manifest pins the valid byte
// count, so the tail of a failed append is truncated before the next
// one.
func (s *Set) appendDictTail() error {
	if s.dict.Len() == s.dictTerms {
		return nil
	}
	path := s.dir + "/" + dictName
	if s.dictBytes > 0 {
		if err := s.fs.Truncate(path, s.dictBytes); err != nil {
			return fmt.Errorf("store: truncate dict: %w", err)
		}
	}
	var buf []byte
	for id := s.dictTerms + 1; id <= s.dict.Len(); id++ {
		buf = appendTerm(buf, s.dict.Term(rdf.ID(id)))
	}
	f, err := s.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("store: open dict: %w", err)
	}
	_, werr := f.Write(buf)
	if werr == nil {
		werr = f.Sync()
	}
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr != nil {
		return fmt.Errorf("store: append dict: %w", werr)
	}
	s.dictTerms = s.dict.Len()
	s.dictBytes += int64(len(buf))
	return nil
}

// writeDelta serializes a delta graph to a fresh, uniquely named file.
func (s *Set) writeDelta(name string, g *rdf.Graph) error {
	payload := make([]byte, 0, 16+g.Size()*6)
	payload = binary.AppendUvarint(payload, uint64(g.Size()))
	g.ForEachMatchIDs(0, 0, 0, false, false, false, func(sub, p, o rdf.ID) bool {
		payload = binary.AppendUvarint(payload, uint64(sub))
		payload = binary.AppendUvarint(payload, uint64(p))
		payload = binary.AppendUvarint(payload, uint64(o))
		return true
	})
	return s.writeFileDurable(name, blobBytes("ALXDLT01", payload))
}

// writeBlobOnce writes an immutable file unless it already exists.
func (s *Set) writeBlobOnce(name string, data []byte) error {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("store: readdir %s: %w", s.dir, err)
	}
	for _, n := range names {
		if n == name {
			return nil
		}
	}
	return s.writeFileDurable(name, data)
}

// writeFileDurable writes a uniquely named file and fsyncs it. No
// rename dance: the file only becomes live when a later manifest
// references it.
func (s *Set) writeFileDurable(name string, data []byte) error {
	f, err := s.fs.Create(s.dir + "/" + name)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", name, err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if err := f.Close(); werr == nil {
		werr = err
	}
	if werr != nil {
		return fmt.Errorf("store: write %s: %w", name, werr)
	}
	return nil
}

// writeFileAtomic writes name via tmp + fsync + rename + dirsync: the
// manifest protocol.
func (s *Set) writeFileAtomic(name string, data []byte) error {
	tmp := s.dir + "/" + name + ".tmp"
	if err := s.writeFileDurable(name+".tmp", data); err != nil {
		return err
	}
	if err := s.fs.Rename(tmp, s.dir+"/"+name); err != nil {
		return fmt.Errorf("store: rename %s: %w", name, err)
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", s.dir, err)
	}
	return nil
}

// cleanup removes files the current manifest does not reference: the
// debris of superseded generations and torn compactions. Best-effort;
// failures leave garbage, never break correctness.
func (s *Set) cleanup() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	live := map[string]bool{manifestName: true, dictName: true, linksName: true}
	for _, src := range s.sources {
		for _, seg := range src.view.Load().segs {
			live[pathBase(seg.path)] = true
		}
		live[src.name+".ent"] = true
	}
	for _, dn := range s.deltaFiles {
		live[dn] = true
	}
	for _, n := range names {
		if live[n] {
			continue
		}
		if strings.HasSuffix(n, ".seg") || strings.HasSuffix(n, ".tmp") ||
			strings.HasSuffix(n, ".ent") || strings.HasSuffix(n, "-delta.bin") ||
			strings.Contains(n, "-delta-") {
			s.fs.Remove(s.dir + "/" + n) //lint:ignore syncerr best-effort debris removal
		}
	}
}

// CheckpointTo snapshots the store into another directory: immutable
// files (segments, dict, entities, links) are hardlinked — zero-copy
// on any normal filesystem, falling back to a copy — and only the
// delta files and manifest are written fresh. The target is a complete
// store directory that Open can cold-start from.
func (s *Set) CheckpointTo(dir string) error {
	if dir == s.dir {
		_, err := s.Checkpoint()
		return err
	}
	if err := s.fs.MkdirAll(dir); err != nil {
		return fmt.Errorf("store: mkdir %s: %w", dir, err)
	}
	existing := map[string]bool{}
	if names, err := s.fs.ReadDir(dir); err == nil {
		for _, n := range names {
			existing[n] = true
		}
	}
	// Immutable files are only ever linked/copied when absent — an
	// existing name is the same content and must not be rewritten
	// (Create would truncate through a hardlink).
	share := func(name string) error {
		if existing[name] {
			return nil
		}
		return linkOrCopy(s.fs, s.dir+"/"+name, dir+"/"+name)
	}
	if err := s.appendDictTail(); err != nil {
		return err
	}
	gen := s.gen.Load() + 1
	m := manifest{
		Version:    manifestVersion,
		Meta:       s.opts.Meta,
		Generation: gen,
		Seq:        s.seq,
		DictTerms:  s.dictTerms,
		DictBytes:  s.dictBytes,
	}
	if s.dictBytes > 0 {
		if err := share(dictName); err != nil {
			return err
		}
	}
	for _, src := range s.sources {
		v := src.view.Load()
		ms := manifestSource{Name: src.name}
		for _, seg := range v.segs {
			base := pathBase(seg.path)
			if err := share(base); err != nil {
				return err
			}
			ms.Segments = append(ms.Segments, base)
		}
		if v.delta.Size() > 0 {
			dn := fmt.Sprintf("%s-delta-%06d.bin", src.name, gen)
			target := &Set{dir: dir, fs: s.fs}
			if err := target.writeDelta(dn, v.delta); err != nil {
				return err
			}
			ms.Delta = dn
		}
		if _, ok := s.entities[src.name]; ok {
			if err := share(src.name + ".ent"); err != nil {
				return err
			}
			ms.Entities = src.name + ".ent"
		}
		m.Sources = append(m.Sources, ms)
	}
	if s.hasLinks {
		if err := share(linksName); err != nil {
			return err
		}
		m.Links = linksName
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encode manifest: %w", err)
	}
	target := &Set{dir: dir, fs: s.fs}
	if err := target.writeFileAtomic(manifestName, append(data, '\n')); err != nil {
		return err
	}
	// The snapshot borrowed gen+1 for unique delta names; keep home's
	// own next generation ahead of it.
	s.gen.Store(gen)
	return nil
}

// Close releases every mapped segment, including retired ones.
func (s *Set) Close() error {
	var first error
	for _, src := range s.sources {
		for _, seg := range src.view.Load().segs {
			if err := seg.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	for _, seg := range s.retired {
		if err := seg.Close(); err != nil && first == nil {
			first = err
		}
	}
	s.retired = nil
	return first
}

// Open cold-starts a store set from dir: the manifest is read, the
// dictionary loaded, every segment mmap'd (no parsing — the OS pages
// data in on demand) and the small deltas replayed. Returns an error
// wrapping ErrNoStore when dir has no manifest, and an error when
// opts.Meta does not match the manifest's stamp (the store was built
// from different data, so its IDs would be meaningless).
func Open(dir string, opts Options) (*Set, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = wal.OS{}
	}
	r, err := fsys.Open(dir + "/" + manifestName)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w in %s", ErrNoStore, dir)
		}
		return nil, fmt.Errorf("store: open manifest: %w", err)
	}
	data, rerr := io.ReadAll(r)
	if cerr := r.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		return nil, fmt.Errorf("store: read manifest: %w", rerr)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("store: parse manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d not supported", m.Version)
	}
	if opts.Meta != "" && m.Meta != opts.Meta {
		return nil, fmt.Errorf("store: built from %q, want %q — rebuild with a fresh -data dir", m.Meta, opts.Meta)
	}
	opts.Meta = m.Meta
	s := &Set{
		dir:        dir,
		fs:         fsys,
		opts:       opts,
		dict:       rdf.NewDict(),
		seq:        m.Seq,
		byName:     make(map[string]*Segmented),
		entities:   make(map[string][]rdf.ID),
		deltaFiles: make(map[string]string),
		dictTerms:  m.DictTerms,
		dictBytes:  m.DictBytes,
	}
	s.gen.Store(m.Generation)
	if m.DictBytes > 0 {
		if err := s.loadDict(m); err != nil {
			return nil, err
		}
	}
	for _, ms := range m.Sources {
		src, err := s.AddSource(ms.Name)
		if err != nil {
			return nil, err
		}
		v := &segView{delta: rdf.NewGraphWithDict(s.dict)}
		for _, segName := range ms.Segments {
			seg, err := openSegment(fsys, dir+"/"+segName, opts.NoMmap)
			if err != nil {
				s.Close() //lint:ignore syncerr the open error wins; close is best-effort cleanup
				return nil, err
			}
			v.segs = append(v.segs, seg)
		}
		if ms.Delta != "" {
			if err := s.loadDelta(ms.Delta, v.delta); err != nil {
				s.Close() //lint:ignore syncerr the open error wins; close is best-effort cleanup
				return nil, err
			}
			s.deltaFiles[ms.Name] = ms.Delta
		}
		src.view.Store(v)
		if ms.Entities != "" {
			ids, err := s.readEntities(ms.Entities)
			if err != nil {
				s.Close() //lint:ignore syncerr the open error wins; close is best-effort cleanup
				return nil, err
			}
			s.entities[ms.Name] = ids
		}
	}
	if m.Links != "" {
		ls, err := s.readLinks(m.Links)
		if err != nil {
			s.Close() //lint:ignore syncerr the open error wins; close is best-effort cleanup
			return nil, err
		}
		s.links, s.hasLinks = ls, true
	}
	s.lastFP = s.fingerprint()
	s.cleanup()
	return s, nil
}

func (s *Set) loadDict(m manifest) error {
	r, err := s.fs.Open(s.dir + "/" + dictName)
	if err != nil {
		return fmt.Errorf("store: open dict: %w", err)
	}
	data, rerr := io.ReadAll(r)
	if cerr := r.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		return fmt.Errorf("store: read dict: %w", rerr)
	}
	if int64(len(data)) < m.DictBytes {
		return fmt.Errorf("store: dict file truncated: %d bytes, manifest says %d", len(data), m.DictBytes)
	}
	buf := data[:m.DictBytes]
	for i := 0; i < m.DictTerms; i++ {
		t, rest, err := readTerm(buf)
		if err != nil {
			return fmt.Errorf("store: dict term %d: %w", i+1, err)
		}
		buf = rest
		if got := s.dict.Intern(t); got != rdf.ID(i+1) {
			return fmt.Errorf("store: dict term %d interned as %d (duplicate?)", i+1, got)
		}
	}
	if len(buf) != 0 {
		return fmt.Errorf("store: dict file has %d trailing bytes", len(buf))
	}
	return nil
}

func (s *Set) loadDelta(name string, g *rdf.Graph) error {
	payload, err := s.readBlob(name, "ALXDLT01")
	if err != nil {
		return err
	}
	n, payload, err := readUvarint(payload)
	if err != nil {
		return fmt.Errorf("store: delta %s: %w", name, err)
	}
	for i := uint64(0); i < n; i++ {
		var sub, p, o uint64
		if sub, payload, err = readUvarint(payload); err == nil {
			if p, payload, err = readUvarint(payload); err == nil {
				o, payload, err = readUvarint(payload)
			}
		}
		if err != nil {
			return fmt.Errorf("store: delta %s triple %d: %w", name, i, err)
		}
		g.InsertIDs(rdf.ID(sub), rdf.ID(p), rdf.ID(o))
	}
	return nil
}

func (s *Set) readEntities(name string) ([]rdf.ID, error) {
	payload, err := s.readBlob(name, "ALXENT01")
	if err != nil {
		return nil, err
	}
	n, payload, err := readUvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("store: entities %s: %w", name, err)
	}
	ids := make([]rdf.ID, 0, n)
	for i := uint64(0); i < n; i++ {
		var v uint64
		if v, payload, err = readUvarint(payload); err != nil {
			return nil, fmt.Errorf("store: entities %s: %w", name, err)
		}
		ids = append(ids, rdf.ID(v))
	}
	return ids, nil
}

func (s *Set) readLinks(name string) ([]links.Link, error) {
	payload, err := s.readBlob(name, "ALXLNK01")
	if err != nil {
		return nil, err
	}
	n, payload, err := readUvarint(payload)
	if err != nil {
		return nil, fmt.Errorf("store: links: %w", err)
	}
	ls := make([]links.Link, 0, n)
	for i := uint64(0); i < n; i++ {
		var e1, e2 uint64
		if e1, payload, err = readUvarint(payload); err == nil {
			e2, payload, err = readUvarint(payload)
		}
		if err != nil {
			return nil, fmt.Errorf("store: links: %w", err)
		}
		ls = append(ls, links.Link{E1: rdf.ID(e1), E2: rdf.ID(e2)})
	}
	return ls, nil
}

// readBlob reads and validates a magic+payload+crc file.
func (s *Set) readBlob(name, magic string) ([]byte, error) {
	r, err := s.fs.Open(s.dir + "/" + name)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", name, err)
	}
	data, rerr := io.ReadAll(r)
	if cerr := r.Close(); rerr == nil {
		rerr = cerr
	}
	if rerr != nil {
		return nil, fmt.Errorf("store: read %s: %w", name, rerr)
	}
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("store: %s: bad header", name)
	}
	payload := data[len(magic) : len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != want {
		return nil, fmt.Errorf("store: %s: checksum mismatch", name)
	}
	return payload, nil
}

// manifest is the JSON root of a store directory generation.
type manifest struct {
	Version    int              `json:"version"`
	Meta       string           `json:"meta,omitempty"`
	Generation uint64           `json:"generation"`
	Seq        uint64           `json:"seq"`
	DictTerms  int              `json:"dict_terms"`
	DictBytes  int64            `json:"dict_bytes"`
	Links      string           `json:"links,omitempty"`
	Sources    []manifestSource `json:"sources"`
}

type manifestSource struct {
	Name     string   `json:"name"`
	Segments []string `json:"segments,omitempty"`
	Delta    string   `json:"delta,omitempty"`
	Entities string   `json:"entities,omitempty"`
}

func blobBytes(magic string, payload []byte) []byte {
	out := make([]byte, 0, len(magic)+len(payload)+4)
	out = append(out, magic...)
	out = append(out, payload...)
	return binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
}

func encodeEntities(ids []rdf.ID) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(ids)))
	for _, id := range ids {
		payload = binary.AppendUvarint(payload, uint64(id))
	}
	return blobBytes("ALXENT01", payload)
}

func encodeLinks(ls []links.Link) []byte {
	payload := binary.AppendUvarint(nil, uint64(len(ls)))
	for _, l := range ls {
		payload = binary.AppendUvarint(payload, uint64(l.E1))
		payload = binary.AppendUvarint(payload, uint64(l.E2))
	}
	return blobBytes("ALXLNK01", payload)
}

// appendTerm encodes one dictionary term: kind byte plus three
// length-prefixed strings.
func appendTerm(buf []byte, t rdf.Term) []byte {
	buf = append(buf, byte(t.Kind))
	for _, s := range []string{t.Value, t.Datatype, t.Lang} {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	return buf
}

func readTerm(buf []byte) (rdf.Term, []byte, error) {
	if len(buf) < 1 {
		return rdf.Term{}, nil, errors.New("short term record")
	}
	t := rdf.Term{Kind: rdf.TermKind(buf[0])}
	buf = buf[1:]
	for i := 0; i < 3; i++ {
		n, rest, err := readUvarint(buf)
		if err != nil || uint64(len(rest)) < n {
			return rdf.Term{}, nil, errors.New("short term string")
		}
		str := string(rest[:n])
		buf = rest[n:]
		switch i {
		case 0:
			t.Value = str
		case 1:
			t.Datatype = str
		default:
			t.Lang = str
		}
	}
	return t, buf, nil
}

func readUvarint(buf []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(buf)
	if n <= 0 {
		return 0, nil, errors.New("bad uvarint")
	}
	return v, buf[n:], nil
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
