//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapAvailable reports that this platform can memory-map segments.
const mmapAvailable = true

// mmapOpen maps the file at path read-only. The returned bytes stay
// valid even after the file is unlinked (compaction removes superseded
// segment files while retired readers may still hold the mapping).
func mmapOpen(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//lint:ignore syncerr read-only handle; the mapping outlives the descriptor
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := int(st.Size())
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmap(b []byte) error {
	if b == nil {
		return nil
	}
	return syscall.Munmap(b)
}
