package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"alex/internal/rdf"
	"alex/internal/synth"
)

// benchDataset generates the largest synth profile pair once per
// process (Figure 8's dbpedia-opencyc) — the acceptance scale for the
// segment-store numbers.
var benchDS *synth.Dataset

func benchDataset(b *testing.B) *synth.Dataset {
	b.Helper()
	if benchDS == nil {
		prof, ok := synth.ProfileByName("dbpedia-opencyc")
		if !ok {
			b.Fatal("missing dbpedia-opencyc profile")
		}
		if testing.Short() {
			prof = prof.Scale(0.1)
		}
		benchDS = synth.Generate(prof)
	}
	return benchDS
}

// buildBenchSet persists the dataset pair into dir and returns the
// compacted set (clean: segments + manifest durable, empty deltas).
func buildBenchSet(b *testing.B, dir string) *Set {
	b.Helper()
	ds := benchDataset(b)
	// A private dictionary per set: benchmarks must not grow each
	// other's dict (cold-start cost includes loading it).
	set, err := Create(dir, nil, Options{})
	if err != nil {
		b.Fatal(err)
	}
	dict := set.Dict()
	for name, g := range map[string]*rdf.Graph{"ds1": ds.G1, "ds2": ds.G2} {
		src, err := set.AddSource(name)
		if err != nil {
			b.Fatal(err)
		}
		g.ForEachMatchIDs(0, 0, 0, false, false, false, func(s, p, o rdf.ID) bool {
			src.InsertIDs(dict.Intern(ds.Dict.Term(s)), dict.Intern(ds.Dict.Term(p)), dict.Intern(ds.Dict.Term(o)))
			return true
		})
	}
	if err := set.Compact(); err != nil {
		b.Fatal(err)
	}
	return set
}

// dirtyDelta inserts a small batch of fresh triples — one episode's
// worth of discovered facts — so checkpoints have an O(delta) payload.
func dirtyDelta(b *testing.B, set *Set, n, salt int) {
	b.Helper()
	src := set.Source("ds1")
	for i := 0; i < n; i++ {
		id := set.Dict().Intern(rdf.IRI(fmt.Sprintf("urn:bench:delta-%d-%d", salt, i)))
		src.InsertIDs(id, 1, id)
	}
}

// BenchmarkSegmentStore measures the four lifecycle phases the disk
// backend exists for, at the largest synth profile:
//
//   - build: sort + write + fsync of all segments from scratch;
//   - scan: a full wildcard scan of the mmap'd segments (the query
//     path's worst case);
//   - checkpoint/disk-delta: persisting a 100-triple delta with the
//     segments untouched — the per-episode cost;
//   - checkpoint/mem-serialize: what the mem backend would have to do
//     instead: serialize the full dataset (the ≥10× acceptance foil);
//   - coldstart/mmap: Open on a compacted directory (footers + dict);
//   - coldstart/parse: re-parsing the same triples from N-Triples text
//     into a fresh rdf.Graph, the mem backend's cold start.
func BenchmarkSegmentStore(b *testing.B) {
	ds := benchDataset(b)
	total := ds.G1.Size() + ds.G2.Size()

	b.Run("build", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dir := b.TempDir()
			set := buildBenchSet(b, dir)
			if err := set.Close(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(total), "triples")
	})

	b.Run("scan", func(b *testing.B) {
		dir := b.TempDir()
		set := buildBenchSet(b, dir)
		defer set.Close() //nolint:errcheck // read-only teardown
		src := set.Source("ds1")
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			n := 0
			src.ForEachMatchIDs(0, 0, 0, false, false, false, func(s, p, o rdf.ID) bool {
				n++
				return true
			})
			if n != ds.G1.Size() {
				b.Fatalf("scan saw %d triples, want %d", n, ds.G1.Size())
			}
		}
	})

	b.Run("checkpoint/disk-delta", func(b *testing.B) {
		dir := b.TempDir()
		set := buildBenchSet(b, dir)
		defer set.Close() //nolint:errcheck // read-only teardown
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			// Fold the previous iteration's delta into segments so every
			// timed checkpoint persists exactly one 100-triple delta.
			if err := set.Compact(); err != nil {
				b.Fatal(err)
			}
			dirtyDelta(b, set, 100, i)
			b.StartTimer()
			wrote, err := set.Checkpoint()
			if err != nil || !wrote {
				b.Fatalf("checkpoint: wrote=%v err=%v", wrote, err)
			}
		}
	})

	b.Run("checkpoint/mem-serialize", func(b *testing.B) {
		// The mem backend has no incremental on-disk form: snapshotting
		// it means serializing every triple. Same durability protocol
		// (write + fsync + rename) over the full N-Triples dump.
		dir := b.TempDir()
		var buf bytes.Buffer
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := rdf.WriteNTriples(&buf, ds.G1); err != nil {
				b.Fatal(err)
			}
			if err := rdf.WriteNTriples(&buf, ds.G2); err != nil {
				b.Fatal(err)
			}
			path := filepath.Join(dir, "full.nt.tmp")
			f, err := os.Create(path)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := f.Write(buf.Bytes()); err != nil {
				b.Fatal(err)
			}
			if err := f.Sync(); err != nil {
				b.Fatal(err)
			}
			if err := f.Close(); err != nil {
				b.Fatal(err)
			}
			if err := os.Rename(path, filepath.Join(dir, "full.nt")); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("coldstart/mmap", func(b *testing.B) {
		dir := b.TempDir()
		set := buildBenchSet(b, dir)
		if err := set.Close(); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			re, err := Open(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if re.Source("ds1").Size() != ds.G1.Size() {
				b.Fatal("cold start lost triples")
			}
			b.StopTimer()
			if err := re.Close(); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
	})

	b.Run("coldstart/parse", func(b *testing.B) {
		var buf bytes.Buffer
		if err := rdf.WriteNTriples(&buf, ds.G1); err != nil {
			b.Fatal(err)
		}
		if err := rdf.WriteNTriples(&buf, ds.G2); err != nil {
			b.Fatal(err)
		}
		text := buf.Bytes()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			g := rdf.NewGraph()
			if _, err := rdf.ReadNTriples(bytes.NewReader(text), g); err != nil {
				b.Fatal(err)
			}
			if g.Size() != total {
				b.Fatalf("parse saw %d triples, want %d", g.Size(), total)
			}
		}
	})
}
