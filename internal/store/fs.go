package store

import (
	"fmt"
	"io"

	"alex/internal/wal"
)

// Optional wal.FS extensions the store probes for with type assertions,
// so the FS interface itself stays unchanged for existing implementers.
type (
	// linker hardlinks files; wal.OS and faultfs.FS implement it.
	// Checkpoints use it to share immutable segment bytes with zero
	// copying, falling back to a copy when linking fails (different
	// filesystem) or the FS does not support it.
	linker interface {
		Link(oldname, newname string) error
	}
	// mmapFaulter vetoes memory-mapping a file; faultfs implements it
	// to inject mmap failures and to keep a crashed process from
	// reading segments around the FS wrapper.
	mmapFaulter interface {
		MmapFault(path string) error
	}
)

// mapOrRead returns the segment file's bytes, preferring an OS mmap
// (reported by the bool) and falling back to reading the file into
// memory through fsys.
func mapOrRead(fsys wal.FS, path string, noMmap bool) ([]byte, bool, error) {
	if mf, ok := fsys.(mmapFaulter); ok {
		if mf.MmapFault(path) != nil {
			// The mapping is vetoed (injected mmap failure or crash).
			// Fall back to the heap read below — on a crashed FS, Open
			// enforces the crash there.
			noMmap = true
		}
	}
	if !noMmap && mmapAvailable {
		if data, err := mmapOpen(path); err == nil {
			return data, true, nil
		}
		// Fall through: the file may only be visible through fsys, or
		// the platform refused the mapping; a heap read is always valid.
	}
	r, err := fsys.Open(path)
	if err != nil {
		return nil, false, err
	}
	data, rerr := io.ReadAll(r)
	cerr := r.Close()
	if rerr != nil {
		return nil, false, fmt.Errorf("store: read %s: %w", path, rerr)
	}
	if cerr != nil {
		return nil, false, fmt.Errorf("store: close %s: %w", path, cerr)
	}
	return data, false, nil
}

// linkOrCopy makes newpath refer to oldpath's current content: a
// hardlink when the FS supports it, a full copy otherwise. Only ever
// applied to immutable files, where both are equivalent.
func linkOrCopy(fsys wal.FS, oldpath, newpath string) error {
	if l, ok := fsys.(linker); ok {
		if err := l.Link(oldpath, newpath); err == nil {
			return nil
		}
	}
	r, err := fsys.Open(oldpath)
	if err != nil {
		return fmt.Errorf("store: copy %s: %w", oldpath, err)
	}
	w, err := fsys.Create(newpath)
	if err != nil {
		r.Close() //lint:ignore syncerr read-only handle released on the error path
		return fmt.Errorf("store: copy to %s: %w", newpath, err)
	}
	_, cpErr := io.Copy(w, r)
	if cpErr == nil {
		cpErr = w.Sync()
	}
	if err := w.Close(); cpErr == nil {
		cpErr = err
	}
	if err := r.Close(); cpErr == nil {
		cpErr = err
	}
	if cpErr != nil {
		return fmt.Errorf("store: copy %s -> %s: %w", oldpath, newpath, cpErr)
	}
	return nil
}
