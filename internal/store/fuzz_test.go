package store

import (
	"testing"

	"alex/internal/rdf"
)

// FuzzSegmentRoundTrip drives arbitrary triple multisets through the
// full segment cycle — sort, dedupe, write, reopen (alternating mmap
// and heap reads on the input's parity) — and requires scan and
// CountMatch identity against rdf.Graph, the reference TripleStore,
// for every bound-position mask.
func FuzzSegmentRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add([]byte{1, 2, 3, 1, 2, 3, 9, 9, 9})
	seed := make([]byte, 3*400)
	for i := range seed {
		seed[i] = byte(i*7 + 3)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		ts := make([]triple, 0, len(data)/3)
		for i := 0; i+2 < len(data); i += 3 {
			ts = append(ts, triple{
				s: rdf.ID(data[i]%32 + 1),
				p: rdf.ID(data[i+1]%8 + 1),
				o: rdf.ID(data[i+2]%32 + 1),
			})
		}
		g := graphOf(ts)
		dir := t.TempDir()
		cp := append([]triple(nil), ts...)
		if err := writeSegment(nil2fs(), dir, "f-000001.seg", cp); err != nil {
			t.Fatalf("writeSegment: %v", err)
		}
		noMmap := len(data)%2 == 1
		seg, err := openSegment(nil2fs(), dir+"/f-000001.seg", noMmap)
		if err != nil {
			t.Fatalf("openSegment: %v", err)
		}
		defer seg.Close() //nolint:errcheck // read-only teardown
		if seg.Count() != g.Size() {
			t.Fatalf("count %d, graph %d", seg.Count(), g.Size())
		}
		for mask := 0; mask < 8; mask++ {
			haveS, haveP, haveO := mask&1 != 0, mask&2 != 0, mask&4 != 0
			for _, probe := range []rdf.ID{0, 1, 5, 16, 32, 33} {
				s, p, o := probe, probe%9, 33-probe
				if got, want := seg.countMatch(s, p, o, haveS, haveP, haveO), g.CountMatch(s, p, o, haveS, haveP, haveO); got != want {
					t.Fatalf("countMatch mask=%03b (%d,%d,%d): %d want %d", mask, s, p, o, got, want)
				}
				want := map[triple]bool{}
				g.ForEachMatchIDs(s, p, o, haveS, haveP, haveO, func(ts, tp, to rdf.ID) bool {
					want[triple{ts, tp, to}] = true
					return true
				})
				n := 0
				seg.forEachMatch(s, p, o, haveS, haveP, haveO, func(ts, tp, to rdf.ID) bool {
					if !want[triple{ts, tp, to}] {
						t.Fatalf("mask=%03b: unexpected (%d,%d,%d)", mask, ts, tp, to)
					}
					n++
					return true
				})
				if n != len(want) {
					t.Fatalf("mask=%03b: scanned %d, want %d", mask, n, len(want))
				}
			}
		}
	})
}
