package store

import (
	"errors"
	"math/rand"
	"os"
	"sort"
	"testing"

	"alex/internal/links"
	"alex/internal/rdf"
)

// fillSource interns terms for the IDs in play and inserts the triples.
func fillSource(t *testing.T, set *Set, src *Segmented, ts []triple) {
	t.Helper()
	maxID := rdf.ID(0)
	for _, tr := range ts {
		for _, id := range []rdf.ID{tr.s, tr.p, tr.o} {
			if id > maxID {
				maxID = id
			}
		}
	}
	for set.Dict().Len() < int(maxID) {
		set.Dict().Intern(rdf.IRI("urn:t:" + string(rune('a'+set.Dict().Len()%26)) + string(rune('0'+set.Dict().Len()/26))))
	}
	for _, tr := range ts {
		src.InsertIDs(tr.s, tr.p, tr.o)
	}
}

// assertStoreEqual compares a Segmented store against a reference
// graph on every TripleStore read.
func assertStoreEqual(t *testing.T, got TripleStore, want *rdf.Graph, universe int) {
	t.Helper()
	if got.Size() != want.Size() {
		t.Fatalf("size: %d want %d", got.Size(), want.Size())
	}
	for mask := 0; mask < 8; mask++ {
		haveS, haveP, haveO := mask&1 != 0, mask&2 != 0, mask&4 != 0
		for probe := 1; probe <= universe; probe++ {
			s, p, o := rdf.ID(probe), rdf.ID(probe%(universe/4+2)+1), rdf.ID(universe+1-probe)
			if g, w := got.CountMatch(s, p, o, haveS, haveP, haveO), want.CountMatch(s, p, o, haveS, haveP, haveO); g != w {
				t.Fatalf("CountMatch mask=%03b (%d,%d,%d): %d want %d", mask, s, p, o, g, w)
			}
		}
	}
	wantSet := map[triple]bool{}
	want.ForEachMatchIDs(0, 0, 0, false, false, false, func(s, p, o rdf.ID) bool {
		wantSet[triple{s, p, o}] = true
		return true
	})
	n := 0
	got.ForEachMatchIDs(0, 0, 0, false, false, false, func(s, p, o rdf.ID) bool {
		if !wantSet[triple{s, p, o}] {
			t.Fatalf("unexpected triple (%d,%d,%d)", s, p, o)
		}
		n++
		return true
	})
	if n != len(wantSet) {
		t.Fatalf("scan saw %d triples, want %d", n, len(wantSet))
	}
	gs, ws := got.SubjectIDs(), want.SubjectIDs()
	if len(gs) != len(ws) {
		t.Fatalf("SubjectIDs: %d want %d", len(gs), len(ws))
	}
	for i := range gs {
		if gs[i] != ws[i] {
			t.Fatalf("SubjectIDs[%d]: %d want %d", i, gs[i], ws[i])
		}
	}
	for _, s := range ws {
		ge, we := got.Entity(s), want.Entity(s)
		if len(ge) != len(we) {
			t.Fatalf("Entity(%d): %d attrs want %d", s, len(ge), len(we))
		}
		for i := range ge {
			if ge[i] != we[i] {
				t.Fatalf("Entity(%d)[%d]: %v want %v", s, i, ge[i], we[i])
			}
		}
	}
}

func TestSetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	set, err := Create(dir, nil, Options{Meta: "test-v1"})
	if err != nil {
		t.Fatal(err)
	}
	src, err := set.AddSource("ds1")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	ts := randomTriples(rng, 1200, 30)
	fillSource(t, set, src, ts)
	ref := graphOf(ts)
	set.SetEntities("ds1", []rdf.ID{3, 1, 9})
	set.SetInitialLinks([]links.Link{{E1: 1, E2: 2}, {E1: 5, E2: 7}})

	if err := set.Compact(); err != nil {
		t.Fatalf("compact: %v", err)
	}
	if src.DeltaSize() != 0 || src.SegmentCount() != 1 {
		t.Fatalf("after compact: delta=%d segments=%d", src.DeltaSize(), src.SegmentCount())
	}
	assertStoreEqual(t, src, ref, 30)

	// More inserts land in the delta; a checkpoint persists them
	// without touching the segment.
	extra := randomTriples(rand.New(rand.NewSource(7)), 40, 30)
	for _, tr := range extra {
		if src.InsertIDs(tr.s, tr.p, tr.o) != ref.InsertIDs(tr.s, tr.p, tr.o) {
			t.Fatal("InsertIDs newness diverged from rdf.Graph")
		}
	}
	wrote, err := set.Checkpoint()
	if err != nil || !wrote {
		t.Fatalf("checkpoint: wrote=%v err=%v", wrote, err)
	}
	assertStoreEqual(t, src, ref, 30)

	// Cold start: same triples, entities, links, dictionary.
	re, err := Open(dir, Options{Meta: "test-v1"})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer re.Close()
	rs := re.Source("ds1")
	if rs == nil {
		t.Fatal("reopened set lost ds1")
	}
	assertStoreEqual(t, rs, ref, 30)
	if got := re.Entities("ds1"); len(got) != 3 || got[0] != 3 || got[2] != 9 {
		t.Fatalf("entities: %v", got)
	}
	if ls, ok := re.InitialLinks(); !ok || len(ls) != 2 || ls[1] != (links.Link{E1: 5, E2: 7}) {
		t.Fatalf("links: %v %v", ls, ok)
	}
	if re.Dict().Len() != set.Dict().Len() {
		t.Fatalf("dict: %d want %d", re.Dict().Len(), set.Dict().Len())
	}
	for id := 1; id <= set.Dict().Len(); id++ {
		if re.Dict().Term(rdf.ID(id)) != set.Dict().Term(rdf.ID(id)) {
			t.Fatalf("dict term %d differs", id)
		}
	}
}

func TestSetCheckpointSkipsWhenClean(t *testing.T) {
	dir := t.TempDir()
	set, err := Create(dir, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := set.AddSource("ds1")
	fillSource(t, set, src, randomTriples(rand.New(rand.NewSource(3)), 100, 10))
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	if set.Dirty() {
		t.Fatal("set dirty right after compact")
	}
	before := dirState(t, dir)
	gen := set.Generation()
	wrote, err := set.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if wrote {
		t.Fatal("clean checkpoint claimed to write")
	}
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := dirState(t, dir); got != before {
		t.Fatalf("clean checkpoint/compact touched the dir:\nbefore %s\nafter  %s", before, got)
	}
	if set.Generation() != gen {
		t.Fatalf("generation moved %d -> %d without changes", gen, set.Generation())
	}
}

// dirState fingerprints a directory: sorted name:size:mtime.
func dirState(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, fi.Name()+":"+fi.ModTime().String()+":"+string(rune(fi.Size())))
	}
	sort.Strings(parts)
	out := ""
	for _, p := range parts {
		out += p + "\n"
	}
	return out
}

func TestSetMergesAtMaxSegments(t *testing.T) {
	dir := t.TempDir()
	set, err := Create(dir, nil, Options{MaxSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := set.AddSource("ds1")
	ref := rdf.NewGraph()
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 6; round++ {
		ts := randomTriples(rng, 80, 12)
		fillSource(t, set, src, ts)
		for _, tr := range ts {
			ref.InsertIDs(tr.s, tr.p, tr.o)
		}
		if err := set.Compact(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if got := src.SegmentCount(); got > 3 {
			t.Fatalf("round %d: %d segments, cap 3", round, got)
		}
		assertStoreEqual(t, src, ref, 12)
	}
	// The merged view must survive a cold start too.
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	assertStoreEqual(t, re.Source("ds1"), ref, 12)
}

func TestSetMetaMismatch(t *testing.T) {
	dir := t.TempDir()
	set, err := Create(dir, nil, Options{Meta: "profile=a"})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := set.AddSource("ds1")
	fillSource(t, set, src, randomTriples(rand.New(rand.NewSource(2)), 30, 8))
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{Meta: "profile=b"}); err == nil {
		t.Fatal("meta mismatch accepted")
	}
	re, err := Open(dir, Options{Meta: "profile=a"})
	if err != nil {
		t.Fatal(err)
	}
	re.Close()
}

func TestOpenNoStore(t *testing.T) {
	_, err := Open(t.TempDir(), Options{})
	if !errors.Is(err, ErrNoStore) {
		t.Fatalf("want ErrNoStore, got %v", err)
	}
}

func TestCheckpointToHardlinks(t *testing.T) {
	home := t.TempDir()
	set, err := Create(home, nil, Options{Meta: "ck"})
	if err != nil {
		t.Fatal(err)
	}
	src, _ := set.AddSource("ds1")
	ts := randomTriples(rand.New(rand.NewSource(21)), 700, 20)
	fillSource(t, set, src, ts)
	ref := graphOf(ts)
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	// Leave a small delta so the snapshot includes one.
	set.Dict().Intern(rdf.IRI("urn:late"))
	src.InsertIDs(1, 2, 3)
	ref.InsertIDs(1, 2, 3)

	snap := t.TempDir()
	if err := set.CheckpointTo(snap); err != nil {
		t.Fatalf("CheckpointTo: %v", err)
	}
	re, err := Open(snap, Options{Meta: "ck"})
	if err != nil {
		t.Fatalf("open snapshot: %v", err)
	}
	defer re.Close()
	assertStoreEqual(t, re.Source("ds1"), ref, 20)

	// The segment must be a hardlink (same inode), not a copy.
	var segName string
	ents, err := os.ReadDir(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if n := e.Name(); len(n) > 4 && n[len(n)-4:] == ".seg" {
			segName = n
		}
	}
	if segName == "" {
		t.Fatal("no segment in snapshot")
	}
	hi, err1 := os.Stat(home + "/" + segName)
	si, err2 := os.Stat(snap + "/" + segName)
	if err1 != nil || err2 != nil {
		t.Fatalf("stat: %v %v", err1, err2)
	}
	if !os.SameFile(hi, si) {
		t.Fatal("snapshot segment is a copy, want hardlink")
	}

	// A second snapshot into the same dir stays consistent after more
	// writes at home.
	src.InsertIDs(4, 5, 6)
	ref.InsertIDs(4, 5, 6)
	if err := set.CheckpointTo(snap); err != nil {
		t.Fatalf("second CheckpointTo: %v", err)
	}
	re2, err := Open(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	assertStoreEqual(t, re2.Source("ds1"), ref, 20)
}
