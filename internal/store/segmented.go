package store

import (
	"sort"
	"sync/atomic"

	"alex/internal/rdf"
)

// Segmented is the disk-backed TripleStore: a stack of immutable
// sorted segments plus an in-memory write delta. Reads resolve against
// an atomically-published (segments, delta) view, so queries run
// concurrently with compaction; writes follow the same single-writer
// contract as rdf.Graph. Segmented stores are created and compacted by
// a Set, which owns the on-disk files.
type Segmented struct {
	name string
	dict *rdf.Dict
	view atomic.Pointer[segView]
}

type segView struct {
	segs  []*Segment
	delta *rdf.Graph
}

func newSegmented(name string, dict *rdf.Dict) *Segmented {
	s := &Segmented{name: name, dict: dict}
	s.view.Store(&segView{delta: rdf.NewGraphWithDict(dict)})
	return s
}

// Name returns the source name the store was registered under.
func (s *Segmented) Name() string { return s.name }

// Dict returns the shared dictionary.
func (s *Segmented) Dict() *rdf.Dict { return s.dict }

// Size returns the number of distinct triples across segments and
// delta. Segments never overlap each other or the delta (InsertIDs
// dedupes against the whole view), so the sizes simply add.
func (s *Segmented) Size() int {
	v := s.view.Load()
	n := v.delta.Size()
	for _, seg := range v.segs {
		n += seg.count
	}
	return n
}

// DeltaSize returns the number of triples in the in-memory delta, i.e.
// inserted since the last compaction.
func (s *Segmented) DeltaSize() int { return s.view.Load().delta.Size() }

// SegmentCount returns the number of on-disk segments in the current
// view.
func (s *Segmented) SegmentCount() int { return len(s.view.Load().segs) }

// SegmentTriples returns the number of triples held in on-disk
// segments (Size minus the delta).
func (s *Segmented) SegmentTriples() int {
	v := s.view.Load()
	n := 0
	for _, seg := range v.segs {
		n += seg.count
	}
	return n
}

// InsertIDs adds a triple to the delta unless some segment (or the
// delta itself) already holds it. Writer-only.
func (s *Segmented) InsertIDs(sub, p, o rdf.ID) bool {
	v := s.view.Load()
	for _, seg := range v.segs {
		if seg.has(sub, p, o) {
			return false
		}
	}
	return v.delta.InsertIDs(sub, p, o)
}

// ForEachMatchIDs enumerates matching triples over segments then
// delta; fn returns false to stop.
func (s *Segmented) ForEachMatchIDs(sub, p, o rdf.ID, haveS, haveP, haveO bool, fn func(s, p, o rdf.ID) bool) {
	v := s.view.Load()
	for _, seg := range v.segs {
		if !seg.forEachMatch(sub, p, o, haveS, haveP, haveO, fn) {
			return
		}
	}
	v.delta.ForEachMatchIDs(sub, p, o, haveS, haveP, haveO, fn)
}

// CountMatch sums the per-segment footer/range counts and the delta's
// posting counts; exact because segments and delta never overlap.
func (s *Segmented) CountMatch(sub, p, o rdf.ID, haveS, haveP, haveO bool) int {
	v := s.view.Load()
	n := v.delta.CountMatch(sub, p, o, haveS, haveP, haveO)
	for _, seg := range v.segs {
		n += seg.countMatch(sub, p, o, haveS, haveP, haveO)
	}
	return n
}

// SubjectIDs returns all distinct subject IDs in ascending order.
func (s *Segmented) SubjectIDs() []rdf.ID {
	v := s.view.Load()
	lists := make([][]rdf.ID, 0, len(v.segs)+1)
	for _, seg := range v.segs {
		lists = append(lists, seg.postingIDs(posS))
	}
	lists = append(lists, v.delta.SubjectIDs())
	return unionIDs(lists)
}

// PredicateIDs returns all distinct predicate IDs in ascending order.
func (s *Segmented) PredicateIDs() []rdf.ID {
	v := s.view.Load()
	lists := make([][]rdf.ID, 0, len(v.segs)+1)
	for _, seg := range v.segs {
		lists = append(lists, seg.postingIDs(posP))
	}
	lists = append(lists, v.delta.PredicateIDs())
	return unionIDs(lists)
}

// Entity returns subject sub's attributes ordered by (predicate,
// object), matching rdf.Graph.Entity.
func (s *Segmented) Entity(sub rdf.ID) []rdf.Attribute {
	v := s.view.Load()
	var out []rdf.Attribute
	for _, seg := range v.segs {
		lo, hi := seg.bounds(secSPO, [3]uint32{uint32(sub)}, 1)
		for i := lo; i < hi; i++ {
			k := seg.key(secSPO, i)
			out = append(out, rdf.Attribute{Pred: rdf.ID(k[1]), Obj: rdf.ID(k[2])})
		}
	}
	out = append(out, v.delta.Entity(sub)...)
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}

// triples gathers the full view contents, sorted in SPO order, for
// compaction into a single fresh segment.
func (v *segView) triples() []triple {
	n := v.delta.Size()
	for _, seg := range v.segs {
		n += seg.count
	}
	out := make([]triple, 0, n)
	for _, seg := range v.segs {
		seg.scan(secSPO, 0, seg.count, func(s, p, o rdf.ID) bool {
			out = append(out, triple{s, p, o})
			return true
		})
	}
	v.delta.ForEachMatchIDs(0, 0, 0, false, false, false, func(s, p, o rdf.ID) bool {
		out = append(out, triple{s, p, o})
		return true
	})
	return out
}

// unionIDs merges ascending ID lists into one ascending deduplicated
// list.
func unionIDs(lists [][]rdf.ID) []rdf.ID {
	n := 0
	for _, l := range lists {
		n += len(l)
	}
	all := make([]rdf.ID, 0, n)
	for _, l := range lists {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	out := all[:0]
	for i, id := range all {
		if i == 0 || id != all[i-1] {
			out = append(out, id)
		}
	}
	return out
}
