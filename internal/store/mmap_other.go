//go:build !unix

package store

import "errors"

// mmapAvailable reports that this platform cannot memory-map segments;
// openSegment falls back to reading files into memory.
const mmapAvailable = false

func mmapOpen(path string) ([]byte, error) {
	return nil, errors.New("store: mmap unavailable on this platform")
}

func munmap(b []byte) error { return nil }
