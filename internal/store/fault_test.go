// Fault-injection coverage of the segment write path: torn writes and
// failed fsyncs abort a compaction without corrupting the in-memory
// view or the on-disk generation; injected mmap failures drive the
// heap-read fallback; injected link failures drive the checkpoint copy
// fallback. Crash-during-compaction recovery at the serving layer
// (with journal replay) lives in internal/server.
package store

import (
	"math/rand"
	"os"
	"testing"

	"alex/internal/faultfs"
	"alex/internal/rdf"
)

// faultWorld builds a compacted single-source set over a faultfs so
// each test starts from a durable generation with a dirty delta.
func faultWorld(t *testing.T, dir string) (*faultfs.FS, *Set, *Segmented, *rdf.Graph) {
	t.Helper()
	ffs := faultfs.New(nil)
	set, err := Create(dir, nil, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() }) //nolint:errcheck // read-only teardown
	src, err := set.AddSource("ds1")
	if err != nil {
		t.Fatal(err)
	}
	ts := randomTriples(rand.New(rand.NewSource(8)), 400, 15)
	fillSource(t, set, src, ts)
	ref := graphOf(ts)
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	extra := randomTriples(rand.New(rand.NewSource(9)), 60, 15)
	for _, tr := range extra {
		src.InsertIDs(tr.s, tr.p, tr.o)
		ref.InsertIDs(tr.s, tr.p, tr.o)
	}
	return ffs, set, src, ref
}

// assertTornCompaction injects a fault, requires Compact to fail
// without losing a triple from the serving view, then simulates a
// process death and requires a reopen to land on the previous
// generation — the last state whose manifest committed.
func assertTornCompaction(t *testing.T, inject func(*faultfs.FS)) {
	t.Helper()
	dir := t.TempDir()
	ffs, set, src, ref := faultWorld(t, dir)
	gen := set.Generation()
	baseSegTriples := src.SegmentTriples()

	inject(ffs)
	if err := set.Compact(); err == nil {
		t.Fatal("compaction survived the injected fault")
	}
	// The serving view is untouched: every triple, including the delta
	// that failed to flush, still answers.
	assertStoreEqual(t, src, ref, 15)
	if src.SegmentTriples() != baseSegTriples {
		t.Fatalf("torn compaction swapped segments in: %d triples, want %d",
			src.SegmentTriples(), baseSegTriples)
	}

	// Power cut, restart over the same directory.
	ffs.Revive()
	re, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatalf("reopen after torn compaction: %v", err)
	}
	defer re.Close()
	if re.Generation() != gen {
		t.Fatalf("reopened generation %d, want pre-tear %d", re.Generation(), gen)
	}
	rs := re.Source("ds1")
	if rs == nil {
		t.Fatal("reopened set lost ds1")
	}
	// Only the durable prefix survives: the compacted baseline, not the
	// torn delta (it was never acknowledged as checkpointed).
	if rs.Size() != baseSegTriples {
		t.Fatalf("reopened size %d, want durable baseline %d", rs.Size(), baseSegTriples)
	}
}

func TestCompactionTornWrite(t *testing.T) {
	assertTornCompaction(t, func(f *faultfs.FS) { f.ShortWriteAt(f.Writes() + 1) })
}

func TestCompactionFailedSync(t *testing.T) {
	assertTornCompaction(t, func(f *faultfs.FS) { f.FailAllSyncs(true) })
}

func TestCompactionFailedRename(t *testing.T) {
	assertTornCompaction(t, func(f *faultfs.FS) { f.FailRenames(true) })
}

func TestCompactionCrashMidWrite(t *testing.T) {
	assertTornCompaction(t, func(f *faultfs.FS) { f.CrashAfterWrites(2) })
}

// TestMmapFaultFallsBackToHeap: a vetoed mmap must not fail the open —
// the segment loads through the FS into the heap and serves
// identically.
func TestMmapFaultFallsBackToHeap(t *testing.T) {
	dir := t.TempDir()
	ffs, set, src, ref := faultWorld(t, dir)
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	ffs.FailMmaps(true)
	re, err := Open(dir, Options{FS: ffs})
	if err != nil {
		t.Fatalf("open with mmap fault: %v", err)
	}
	defer re.Close()
	assertStoreEqual(t, re.Source("ds1"), ref, 15)
	_ = src
}

// TestCheckpointToCopyFallback: when hardlinks fail (cross-filesystem
// snapshot targets), CheckpointTo degrades to copying and the snapshot
// still opens bit-identical.
func TestCheckpointToCopyFallback(t *testing.T) {
	dir := t.TempDir()
	ffs, set, _, ref := faultWorld(t, dir)
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	ffs.FailLinks(true)
	snap := t.TempDir()
	if err := set.CheckpointTo(snap); err != nil {
		t.Fatalf("CheckpointTo with links failing: %v", err)
	}
	re, err := Open(snap, Options{})
	if err != nil {
		t.Fatalf("open copied snapshot: %v", err)
	}
	defer re.Close()
	assertStoreEqual(t, re.Source("ds1"), ref, 15)

	// The segments really are copies, not links.
	ents, err := os.ReadDir(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		n := e.Name()
		if len(n) > 4 && n[len(n)-4:] == ".seg" {
			hi, err1 := os.Stat(dir + "/" + n)
			si, err2 := os.Stat(snap + "/" + n)
			if err1 != nil || err2 != nil {
				t.Fatalf("stat: %v %v", err1, err2)
			}
			if os.SameFile(hi, si) {
				t.Fatal("snapshot segment is a hardlink despite FailLinks")
			}
		}
	}
}
