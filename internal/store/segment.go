package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"alex/internal/rdf"
	"alex/internal/wal"
)

// Segment file layout (all integers little-endian):
//
//	page 0:    magic "ALXSEG01" | count uint64 | zero pad to 4096
//	section 0: SPO records, fixed-size pages
//	section 1: POS records, fixed-size pages
//	section 2: OSP records, fixed-size pages
//	footer:    per-section page directories (first key of every page),
//	           then per-position posting tables (id, count) sorted by id
//	trailer:   footerOff uint64 | footerLen uint64 | crc32(footer) |
//	           magic "ALXEND01"
//
// A record is the 12-byte permuted triple for its section (SPO stores
// (s,p,o), POS stores (p,o,s), OSP stores (o,s,p)), so every section is
// simply a sorted array of 3×uint32 keys. Pages hold recsPerPage
// records and are padded to pageSize, so record i of a section lives at
// a fixed computable offset and lookups touch only the footer (page
// directory binary search) plus one data page (in-page binary search).
// The posting tables give O(log distinct) single-position counts and
// the distinct subject/predicate lists without touching data pages.
//
// The trailer CRC covers the footer only: validating a segment at open
// reads metadata, not the data pages — that is what keeps cold start at
// mmap speed. Data-page integrity is the job of the atomic write
// protocol (tmp + fsync + rename + dirsync): a segment file either
// appears complete under its final name or not at all.
const (
	segMagic    = "ALXSEG01"
	segEndMagic = "ALXEND01"
	pageSize    = 4096
	recSize     = 12
	recsPerPage = pageSize / recSize // 341 records; 4 pad bytes per page
	segTrailer  = 8 + 8 + 4 + 8      // footerOff | footerLen | crc | end magic
)

// Section indexes. The permutation for each section places the sort key
// components in record order.
const (
	secSPO = 0
	secPOS = 1
	secOSP = 2
)

// Position indexes for posting tables.
const (
	posS = 0
	posP = 1
	posO = 2
)

type triple struct{ s, p, o rdf.ID }

// permute returns t's record key in section sec's component order.
func permute(t triple, sec int) [3]uint32 {
	switch sec {
	case secSPO:
		return [3]uint32{uint32(t.s), uint32(t.p), uint32(t.o)}
	case secPOS:
		return [3]uint32{uint32(t.p), uint32(t.o), uint32(t.s)}
	default:
		return [3]uint32{uint32(t.o), uint32(t.s), uint32(t.p)}
	}
}

// unpermute reconstructs the (s,p,o) triple from a section record key.
func unpermute(k [3]uint32, sec int) triple {
	switch sec {
	case secSPO:
		return triple{rdf.ID(k[0]), rdf.ID(k[1]), rdf.ID(k[2])}
	case secPOS:
		return triple{rdf.ID(k[2]), rdf.ID(k[0]), rdf.ID(k[1])}
	default:
		return triple{rdf.ID(k[1]), rdf.ID(k[2]), rdf.ID(k[0])}
	}
}

func cmpKeys(a, b [3]uint32, k int) int {
	for i := 0; i < k; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// sortSection sorts ts in section sec's key order.
func sortSection(ts []triple, sec int) {
	sort.Slice(ts, func(i, j int) bool {
		return cmpKeys(permute(ts[i], sec), permute(ts[j], sec), 3) < 0
	})
}

func sectionPages(n int) int { return (n + recsPerPage - 1) / recsPerPage }

func sectionBytes(n int) int { return sectionPages(n) * pageSize }

// writeSegment writes the triples as a segment file at dir/name using
// the atomic tmp + fsync + rename + dirsync protocol. ts is sorted (and
// deduplicated) in place. All I/O goes through fsys so faultfs can
// inject fsync failures, torn writes, rename faults and crash points.
func writeSegment(fsys wal.FS, dir, name string, ts []triple) (err error) {
	sortSection(ts, secSPO)
	ts = dedupeSorted(ts)
	n := len(ts)

	// Build the three section images and the footer in memory. Sections
	// are written largest-first as single writes, so a build stays at
	// O(dataset) transient memory — the same order as the sorted input
	// slice itself. (A streaming k-way merge writer is the upgrade path
	// if segment builds ever need to run in constant memory.)
	var footer []byte
	sections := make([][]byte, 3)
	counts := make([]map[rdf.ID]uint32, 3)
	for sec := 0; sec < 3; sec++ {
		if sec != secSPO {
			sortSection(ts, sec)
		}
		img := make([]byte, sectionBytes(n))
		dirEnt := make([]byte, 0, sectionPages(n)*recSize)
		cnt := make(map[rdf.ID]uint32, 64)
		for i, t := range ts {
			k := permute(t, sec)
			off := (i/recsPerPage)*pageSize + (i%recsPerPage)*recSize
			binary.LittleEndian.PutUint32(img[off:], k[0])
			binary.LittleEndian.PutUint32(img[off+4:], k[1])
			binary.LittleEndian.PutUint32(img[off+8:], k[2])
			if i%recsPerPage == 0 {
				var kb [recSize]byte
				binary.LittleEndian.PutUint32(kb[0:], k[0])
				binary.LittleEndian.PutUint32(kb[4:], k[1])
				binary.LittleEndian.PutUint32(kb[8:], k[2])
				dirEnt = append(dirEnt, kb[:]...)
			}
			// The leading key component of each section is the position
			// whose posting counts that pass accumulates: S from SPO,
			// P from POS, O from OSP.
			cnt[rdf.ID(k[0])]++
		}
		sections[sec] = img
		counts[sec] = cnt
		footer = binary.LittleEndian.AppendUint32(footer, uint32(sectionPages(n)))
		footer = append(footer, dirEnt...)
	}
	for pos := 0; pos < 3; pos++ {
		cnt := counts[pos]
		ids := make([]rdf.ID, 0, len(cnt))
		for id := range cnt {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		footer = binary.LittleEndian.AppendUint32(footer, uint32(len(ids)))
		for _, id := range ids {
			footer = binary.LittleEndian.AppendUint32(footer, uint32(id))
			footer = binary.LittleEndian.AppendUint32(footer, cnt[id])
		}
	}

	header := make([]byte, pageSize)
	copy(header, segMagic)
	binary.LittleEndian.PutUint64(header[8:], uint64(n))

	footerOff := pageSize + 3*sectionBytes(n)
	trailer := binary.LittleEndian.AppendUint64(nil, uint64(footerOff))
	trailer = binary.LittleEndian.AppendUint64(trailer, uint64(len(footer)))
	trailer = binary.LittleEndian.AppendUint32(trailer, crc32.ChecksumIEEE(footer))
	trailer = append(trailer, segEndMagic...)

	tmp := dir + "/" + name + ".tmp"
	final := dir + "/" + name
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: create %s: %w", tmp, err)
	}
	for _, chunk := range [][]byte{header, sections[0], sections[1], sections[2], append(footer, trailer...)} {
		if len(chunk) == 0 {
			continue
		}
		if _, werr := f.Write(chunk); werr != nil {
			f.Close() //lint:ignore syncerr the write error wins; close is best-effort cleanup
			return fmt.Errorf("store: write %s: %w", tmp, werr)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close() //lint:ignore syncerr the sync error wins; close is best-effort cleanup
		return fmt.Errorf("store: fsync %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: close %s: %w", tmp, err)
	}
	if err := fsys.Rename(tmp, final); err != nil {
		return fmt.Errorf("store: rename %s: %w", tmp, err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("store: sync dir %s: %w", dir, err)
	}
	return nil
}

// dedupeSorted removes adjacent duplicates from an SPO-sorted slice.
func dedupeSorted(ts []triple) []triple {
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			out = append(out, t)
		}
	}
	return out
}

// Segment is one immutable, mmap'd (or heap-loaded) segment file.
// Segments are read-only and safe for concurrent use.
type Segment struct {
	path   string
	data   []byte
	mapped bool // data came from mmap and needs munmap on Close
	count  int
	secOff [3]int
	pages  int
	dirs   [3][]byte // page-directory first keys, recSize bytes per page
	posts  [3][]byte // posting tables, 8 bytes per (id, count) entry
}

// openSegment validates and maps the segment at path. Reads go through
// fsys first so injected crashes apply; the mapping itself uses the
// real OS (segments live on real files even under faultfs), with an
// MmapFault hook for fault injection and a heap-read fallback when
// mmap is unavailable or noMmap is set.
func openSegment(fsys wal.FS, path string, noMmap bool) (*Segment, error) {
	data, mapped, err := mapOrRead(fsys, path, noMmap)
	if err != nil {
		return nil, err
	}
	seg, err := parseSegment(path, data, mapped)
	if err != nil {
		if mapped {
			munmap(data) //lint:ignore syncerr the parse error wins; unmap is best-effort cleanup
		}
		return nil, err
	}
	return seg, nil
}

func parseSegment(path string, data []byte, mapped bool) (*Segment, error) {
	if len(data) < pageSize+segTrailer {
		return nil, fmt.Errorf("store: segment %s: truncated (%d bytes)", path, len(data))
	}
	if string(data[:8]) != segMagic {
		return nil, fmt.Errorf("store: segment %s: bad magic", path)
	}
	if string(data[len(data)-8:]) != segEndMagic {
		return nil, fmt.Errorf("store: segment %s: missing end magic (torn write?)", path)
	}
	count := binary.LittleEndian.Uint64(data[8:16])
	tr := data[len(data)-segTrailer:]
	footerOff := binary.LittleEndian.Uint64(tr[0:8])
	footerLen := binary.LittleEndian.Uint64(tr[8:16])
	crc := binary.LittleEndian.Uint32(tr[16:20])
	n := int(count)
	wantOff := uint64(pageSize + 3*sectionBytes(n))
	if footerOff != wantOff || footerOff+footerLen+segTrailer != uint64(len(data)) {
		return nil, fmt.Errorf("store: segment %s: inconsistent geometry", path)
	}
	footer := data[footerOff : footerOff+footerLen]
	if crc32.ChecksumIEEE(footer) != crc {
		return nil, fmt.Errorf("store: segment %s: footer checksum mismatch", path)
	}
	seg := &Segment{path: path, data: data, mapped: mapped, count: n, pages: sectionPages(n)}
	off := 0
	for sec := 0; sec < 3; sec++ {
		seg.secOff[sec] = pageSize + sec*sectionBytes(n)
		if off+4 > len(footer) {
			return nil, fmt.Errorf("store: segment %s: short footer", path)
		}
		pages := int(binary.LittleEndian.Uint32(footer[off:]))
		off += 4
		if pages != seg.pages || off+pages*recSize > len(footer) {
			return nil, fmt.Errorf("store: segment %s: bad page directory", path)
		}
		seg.dirs[sec] = footer[off : off+pages*recSize]
		off += pages * recSize
	}
	for pos := 0; pos < 3; pos++ {
		if off+4 > len(footer) {
			return nil, fmt.Errorf("store: segment %s: short footer", path)
		}
		m := int(binary.LittleEndian.Uint32(footer[off:]))
		off += 4
		if off+m*8 > len(footer) {
			return nil, fmt.Errorf("store: segment %s: bad posting table", path)
		}
		seg.posts[pos] = footer[off : off+m*8]
		off += m * 8
	}
	if off != len(footer) {
		return nil, fmt.Errorf("store: segment %s: trailing footer bytes", path)
	}
	return seg, nil
}

// Close releases the mapping. The Segment must not be used afterwards;
// the owning Set keeps retired segments alive until its own Close so
// in-flight readers never touch an unmapped page.
func (seg *Segment) Close() error {
	if !seg.mapped {
		return nil
	}
	seg.mapped = false
	return munmap(seg.data)
}

// Count returns the number of triples in the segment.
func (seg *Segment) Count() int { return seg.count }

func (seg *Segment) key(sec, i int) [3]uint32 {
	off := seg.secOff[sec] + (i/recsPerPage)*pageSize + (i%recsPerPage)*recSize
	return [3]uint32{
		binary.LittleEndian.Uint32(seg.data[off:]),
		binary.LittleEndian.Uint32(seg.data[off+4:]),
		binary.LittleEndian.Uint32(seg.data[off+8:]),
	}
}

func (seg *Segment) dirKey(sec, page int) [3]uint32 {
	d := seg.dirs[sec][page*recSize:]
	return [3]uint32{
		binary.LittleEndian.Uint32(d),
		binary.LittleEndian.Uint32(d[4:]),
		binary.LittleEndian.Uint32(d[8:]),
	}
}

// bounds returns the half-open record range [lo, hi) of section sec
// whose leading k key components equal key. The page directory narrows
// the search to one page before any data page is touched.
func (seg *Segment) bounds(sec int, key [3]uint32, k int) (int, int) {
	lo := seg.search(sec, func(rk [3]uint32) bool { return cmpKeys(rk, key, k) >= 0 })
	if lo == seg.count || cmpKeys(seg.key(sec, lo), key, k) != 0 {
		return lo, lo
	}
	hi := seg.search(sec, func(rk [3]uint32) bool { return cmpKeys(rk, key, k) > 0 })
	return lo, hi
}

// search returns the first record index where pred(key) is true, using
// the footer page directory for the first level so only one data page
// is faulted in. pred must be monotone over the section's sort order.
func (seg *Segment) search(sec int, pred func([3]uint32) bool) int {
	// First page whose first key satisfies pred; the answer lies in the
	// page before it (or at its very first record).
	pg := sort.Search(seg.pages, func(p int) bool { return pred(seg.dirKey(sec, p)) })
	lo, hi := 0, seg.count
	if pg > 0 {
		lo = (pg - 1) * recsPerPage
	}
	if pg < seg.pages {
		hi = pg*recsPerPage + 1
		if hi > seg.count {
			hi = seg.count
		}
	}
	return lo + sort.Search(hi-lo, func(i int) bool { return pred(seg.key(sec, lo+i)) })
}

// scan calls fn with the reconstructed (s,p,o) of records [lo, hi) of
// section sec; it returns false if fn stopped the iteration.
func (seg *Segment) scan(sec, lo, hi int, fn func(s, p, o rdf.ID) bool) bool {
	for i := lo; i < hi; i++ {
		t := unpermute(seg.key(sec, i), sec)
		if !fn(t.s, t.p, t.o) {
			return false
		}
	}
	return true
}

// postingCount returns the number of triples whose position pos is id,
// via binary search of the footer posting table.
func (seg *Segment) postingCount(pos int, id rdf.ID) int {
	tbl := seg.posts[pos]
	n := len(tbl) / 8
	i := sort.Search(n, func(i int) bool {
		return rdf.ID(binary.LittleEndian.Uint32(tbl[i*8:])) >= id
	})
	if i < n && rdf.ID(binary.LittleEndian.Uint32(tbl[i*8:])) == id {
		return int(binary.LittleEndian.Uint32(tbl[i*8+4:]))
	}
	return 0
}

// postingIDs returns the distinct IDs at position pos in ascending
// order.
func (seg *Segment) postingIDs(pos int) []rdf.ID {
	tbl := seg.posts[pos]
	n := len(tbl) / 8
	out := make([]rdf.ID, n)
	for i := 0; i < n; i++ {
		out[i] = rdf.ID(binary.LittleEndian.Uint32(tbl[i*8:]))
	}
	return out
}

// has reports whether the exact triple is present.
func (seg *Segment) has(s, p, o rdf.ID) bool {
	lo, hi := seg.bounds(secSPO, [3]uint32{uint32(s), uint32(p), uint32(o)}, 3)
	return hi > lo
}

// forEachMatch enumerates matching triples; same contract as
// rdf.Graph.ForEachMatchIDs. It returns false if fn stopped early.
func (seg *Segment) forEachMatch(s, p, o rdf.ID, haveS, haveP, haveO bool, fn func(s, p, o rdf.ID) bool) bool {
	sec, key, k := planMatch(s, p, o, haveS, haveP, haveO)
	if k == 0 {
		return seg.scan(secSPO, 0, seg.count, fn)
	}
	lo, hi := seg.bounds(sec, key, k)
	return seg.scan(sec, lo, hi, fn)
}

// countMatch counts matching triples; same contract as
// rdf.Graph.CountMatch.
func (seg *Segment) countMatch(s, p, o rdf.ID, haveS, haveP, haveO bool) int {
	switch {
	case haveS && haveP && haveO:
		if seg.has(s, p, o) {
			return 1
		}
		return 0
	case !haveS && !haveP && !haveO:
		return seg.count
	case haveS && !haveP && !haveO:
		return seg.postingCount(posS, s)
	case haveP && !haveS && !haveO:
		return seg.postingCount(posP, p)
	case haveO && !haveS && !haveP:
		return seg.postingCount(posO, o)
	}
	sec, key, k := planMatch(s, p, o, haveS, haveP, haveO)
	lo, hi := seg.bounds(sec, key, k)
	return hi - lo
}

// planMatch picks the section and key prefix for a bound-position
// combination, mirroring rdf.Graph's index choice.
func planMatch(s, p, o rdf.ID, haveS, haveP, haveO bool) (sec int, key [3]uint32, k int) {
	switch {
	case haveS && haveP && haveO:
		return secSPO, [3]uint32{uint32(s), uint32(p), uint32(o)}, 3
	case haveS && haveP:
		return secSPO, [3]uint32{uint32(s), uint32(p)}, 2
	case haveP && haveO:
		return secPOS, [3]uint32{uint32(p), uint32(o)}, 2
	case haveS && haveO:
		return secOSP, [3]uint32{uint32(o), uint32(s)}, 2
	case haveS:
		return secSPO, [3]uint32{uint32(s)}, 1
	case haveP:
		return secPOS, [3]uint32{uint32(p)}, 1
	case haveO:
		return secOSP, [3]uint32{uint32(o)}, 1
	default:
		return secSPO, [3]uint32{}, 0
	}
}
