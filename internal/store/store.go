// Package store is the storage layer behind the federated query engine:
// a common TripleStore interface with two backends.
//
// The in-memory backend is rdf.Graph — three map-based indexes, the
// small-data fast path and the default. The disk backend (Segmented,
// managed per-dataset by Set) keeps each source as a stack of immutable
// sorted segment files plus a small in-memory write delta:
//
//   - A segment file holds the SPO, POS and OSP orderings of one batch
//     of triples in fixed-size pages, with a footer carrying per-page
//     first keys (two-level binary search touches only the footer and
//     the target page) and per-(s|p|o) posting counts so CountMatch
//     stays O(1)-ish for the planner on both backends.
//   - Segments are mmap'd at open, so cold start is a map + delta
//     replay, not a parse, and the OS pages data in on demand — the
//     dataset no longer has to fit in RAM.
//   - Writes go to the delta (an rdf.Graph sharing the set's
//     dictionary) and are compacted into a new segment at episode
//     boundaries. Checkpointing serializes only the delta and the
//     manifest: the segments are immutable, so a checkpoint is
//     O(delta), not O(dataset), and a backup is a hardlink per segment.
//
// Readers see a consistent (segments, delta) view through an atomic
// pointer; compaction builds the new generation off to the side and
// swaps it in, so queries never block on storage maintenance. Like
// rdf.Graph, a Segmented store is single-writer: concurrent reads are
// safe, mutation is not concurrent-safe with itself.
package store

import "alex/internal/rdf"

// TripleStore is the read/write surface the linking and query layers
// need from a triple store. Both *rdf.Graph (mem backend) and
// *Segmented (disk backend) satisfy it; the federation planner relies
// on CountMatch returning exactly the same values on both, which the
// cross-backend equivalence harness asserts.
type TripleStore interface {
	// Dict returns the dictionary the store's IDs are interned in.
	Dict() *rdf.Dict
	// Size returns the number of distinct triples.
	Size() int
	// InsertIDs adds a triple of already-interned IDs and reports
	// whether it was new. Writer-only; not safe concurrently with
	// itself (reads are safe concurrently with writes on Segmented,
	// and after loading on rdf.Graph).
	InsertIDs(s, p, o rdf.ID) bool
	// ForEachMatchIDs calls fn for every triple matching the bound
	// positions until fn returns false.
	ForEachMatchIDs(s, p, o rdf.ID, haveS, haveP, haveO bool, fn func(s, p, o rdf.ID) bool)
	// CountMatch returns the number of matching triples without
	// enumerating them; the planner's selectivity source.
	CountMatch(s, p, o rdf.ID, haveS, haveP, haveO bool) int
	// SubjectIDs returns all distinct subject IDs in ascending order.
	SubjectIDs() []rdf.ID
	// PredicateIDs returns all distinct predicate IDs in ascending order.
	PredicateIDs() []rdf.ID
	// Entity returns subject s's (predicate, object) pairs ordered by
	// predicate then object ID.
	Entity(s rdf.ID) []rdf.Attribute
}

var (
	_ TripleStore = (*rdf.Graph)(nil)
	_ TripleStore = (*Segmented)(nil)
)
