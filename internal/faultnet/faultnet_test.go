package faultnet

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func testServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, strings.Repeat("x", 2048))
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, tr *Transport, url string) (*http.Response, error) {
	t.Helper()
	c := &http.Client{Transport: tr, Timeout: 5 * time.Second}
	return c.Get(url)
}

func drain(t *testing.T, resp *http.Response) string {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close body: %v", err)
	}
	return string(data)
}

func TestTransportPassthroughAndCounts(t *testing.T) {
	ts := testServer(t)
	tr := New(1, nil)
	for i := 0; i < 3; i++ {
		resp, err := get(t, tr, ts.URL+"/query")
		if err != nil {
			t.Fatalf("get: %v", err)
		}
		if body := drain(t, resp); len(body) != 2048 {
			t.Fatalf("body length %d", len(body))
		}
	}
	host := strings.TrimPrefix(ts.URL, "http://")
	if got := tr.Requests(host, "/query"); got != 3 {
		t.Fatalf("counted %d requests, want 3", got)
	}
	if got := tr.HostRequests(host); got != 3 {
		t.Fatalf("host total %d, want 3", got)
	}
}

func TestTransportPartition(t *testing.T) {
	ts := testServer(t)
	tr := New(1, nil)
	host := strings.TrimPrefix(ts.URL, "http://")
	tr.SetFaults(host, Faults{Partition: true})
	if _, err := get(t, tr, ts.URL+"/"); !errors.Is(err, ErrPartition) {
		t.Fatalf("partitioned get: %v, want ErrPartition", err)
	}
	// Partitioned attempts are still counted (the drill's rate audit
	// needs them) and healing restores service.
	if got := tr.HostRequests(host); got != 1 {
		t.Fatalf("counted %d, want 1", got)
	}
	tr.ClearFaults(host)
	resp, err := get(t, tr, ts.URL+"/")
	if err != nil {
		t.Fatalf("healed get: %v", err)
	}
	drain(t, resp)
}

func TestTransportDeterministicDrops(t *testing.T) {
	run := func(seed int64) []bool {
		ts := testServer(t)
		tr := New(seed, nil)
		tr.SetFaults("", Faults{DropProb: 0.5})
		var fates []bool
		for i := 0; i < 32; i++ {
			resp, err := get(t, tr, ts.URL+"/")
			if err == nil {
				drain(t, resp)
			} else if !errors.Is(err, ErrDropped) {
				t.Fatalf("unexpected error: %v", err)
			}
			fates = append(fates, err == nil)
		}
		return fates
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed 42 runs diverged at request %d", i)
		}
	}
	dropped := 0
	for _, ok := range a {
		if !ok {
			dropped++
		}
	}
	if dropped == 0 || dropped == len(a) {
		t.Fatalf("DropProb 0.5 dropped %d/%d", dropped, len(a))
	}
}

func TestTransportErrBurst(t *testing.T) {
	ts := testServer(t)
	tr := New(7, nil)
	tr.SetFaults("", Faults{ErrProb: 1})
	resp, err := get(t, tr, ts.URL+"/feedback")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("X-Faultnet") != "injected" {
		t.Fatalf("missing injection marker")
	}
}

func TestTransportLatencyHonorsContext(t *testing.T) {
	ts := testServer(t)
	tr := New(3, nil)
	tr.SetFaults("", Faults{Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/", nil)
	start := time.Now()
	_, err := (&http.Client{Transport: tr}).Do(req)
	if err == nil {
		t.Fatal("expected context expiry")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("context expiry took %s; the latency sleep ignored ctx", elapsed)
	}
}

func TestTransportSlowBody(t *testing.T) {
	ts := testServer(t)
	tr := New(5, nil)
	tr.SetFaults("", Faults{SlowBody: 20 * time.Millisecond, SlowChunk: 512})
	resp, err := get(t, tr, ts.URL+"/")
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	start := time.Now()
	body := drain(t, resp)
	if len(body) != 2048 {
		t.Fatalf("body length %d", len(body))
	}
	// 2048 bytes at 512/chunk = 4 chunks, 3 inter-chunk sleeps minimum.
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("slow body arrived in %s", elapsed)
	}
}

func TestProxyInjectsAndReports(t *testing.T) {
	ts := testServer(t)
	p, err := NewProxy(11, "127.0.0.1:0", ts.URL)
	if err != nil {
		t.Fatalf("proxy: %v", err)
	}
	p.Start()
	defer func() {
		if err := p.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	base := "http://" + p.Addr()
	resp, err := http.Get(base + "/query")
	if err != nil {
		t.Fatalf("through proxy: %v", err)
	}
	if body := drain(t, resp); len(body) != 2048 {
		t.Fatalf("proxied body length %d", len(body))
	}

	// Reconfigure to a full partition via the admin endpoint.
	resp, err = http.Post(base+"/_faultnet/set", "application/json",
		strings.NewReader(`{"partition":true}`))
	if err != nil {
		t.Fatalf("set: %v", err)
	}
	drain(t, resp)
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("set status %d", resp.StatusCode)
	}
	resp, err = http.Get(base + "/query")
	if err != nil {
		t.Fatalf("partitioned proxy get: %v", err)
	}
	drain(t, resp)
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("partitioned status %d, want 502", resp.StatusCode)
	}

	resp, err = http.Get(base + "/_faultnet/stats")
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	stats := drain(t, resp)
	if !strings.Contains(stats, "/query") {
		t.Fatalf("stats missing /query counter: %s", stats)
	}
}
