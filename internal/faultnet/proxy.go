package faultnet

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strings"
	"sync"
	"time"
)

// Proxy is faultnet out of process: a reverse proxy in front of one
// upstream, forwarding through a fault-injecting Transport. Shell
// drills put one between the router and each shard, then reconfigure
// faults mid-run through the admin endpoints:
//
//	POST /_faultnet/set    body: Faults JSON — replace the profile
//	GET  /_faultnet/stats  counters as {"host":{"path":n}}
//
// Everything else is forwarded verbatim, so the router talks to the
// proxy exactly as it would to the shard.
type Proxy struct {
	tr     *Transport
	target *url.URL
	ln     net.Listener
	srv    *http.Server
	wg     sync.WaitGroup
}

// NewProxy builds a proxy for upstream target (host:port or URL),
// listening on listen (host:port, empty port picks a free one), with
// all injected randomness derived from seed.
func NewProxy(seed int64, listen, target string) (*Proxy, error) {
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	u, err := url.Parse(target)
	if err != nil {
		return nil, fmt.Errorf("faultnet: target: %w", err)
	}
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, fmt.Errorf("faultnet: listen: %w", err)
	}
	p := &Proxy{tr: New(seed, nil), target: u, ln: ln}
	rp := &httputil.ReverseProxy{
		Rewrite: func(pr *httputil.ProxyRequest) {
			pr.SetURL(u)
			pr.Out.Host = u.Host
		},
		Transport: p.tr,
		// Stream slow-loris bodies chunk by chunk instead of buffering
		// them away.
		FlushInterval: -1,
		ErrorHandler: func(w http.ResponseWriter, r *http.Request, err error) {
			w.WriteHeader(http.StatusBadGateway)
			_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
		},
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/_faultnet/set", p.handleSet)
	mux.HandleFunc("/_faultnet/stats", p.handleStats)
	mux.Handle("/", rp)
	p.srv = &http.Server{Handler: mux}
	return p, nil
}

// Transport exposes the proxy's fault injector (in-process callers;
// shell drills use the admin endpoints instead).
func (p *Proxy) Transport() *Transport { return p.tr }

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Start serves until Close. It returns immediately; the serve loop
// runs in a tracked goroutine.
func (p *Proxy) Start() {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		if err := p.srv.Serve(p.ln); err != nil && err != http.ErrServerClosed {
			// The listener died under us; nothing to clean up beyond what
			// Close already does.
			_ = err
		}
	}()
}

// Close shuts the proxy down and waits for the serve loop to exit.
func (p *Proxy) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := p.srv.Shutdown(ctx)
	p.wg.Wait()
	return err
}

// handleSet replaces the default fault profile (all upstream hosts —
// the proxy has exactly one).
func (p *Proxy) handleSet(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	var f Faults
	if err := json.NewDecoder(r.Body).Decode(&f); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	p.tr.SetFaults("", f)
	w.WriteHeader(http.StatusNoContent)
}

// handleStats dumps the request counters.
func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(p.tr.Stats())
}
