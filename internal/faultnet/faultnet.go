// Package faultnet injects network faults between fleet components —
// the network-layer sibling of internal/faultfs.
//
// Transport wraps an http.RoundTripper and injects, per destination
// host: added latency (with jitter), connection drops, synthesized 5xx
// bursts, slow-loris response bodies and full partitions. All
// randomness comes from one seeded *rand.Rand, so a chaos run is
// reproducible from its seed alone. The transport also counts every
// upstream request attempt by (host, path) — chaos tests assert rate
// bounds (e.g. "hedging never exceeds 2× the baseline request rate")
// against those counters.
//
// Proxy (proxy.go) lifts the same injection out of process: a reverse
// proxy that sits between a router and a shard in shell drills, with
// admin endpoints to reconfigure faults and read counters mid-run.
//
// Asymmetric partitions fall out of the shape: faults are keyed by
// destination host and each component owns its own Transport (or has
// its own Proxy in front), so "router cannot reach shard 2" leaves
// "shard 2 reaches everyone" intact.
package faultnet

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// Faults is one destination's injection profile. The zero value
// injects nothing.
type Faults struct {
	// Latency is added before the request is forwarded (or failed);
	// Jitter adds a uniformly random extra on top.
	Latency time.Duration `json:"latency"`
	Jitter  time.Duration `json:"jitter"`
	// DropProb is the probability the connection drops: the request
	// fails with a transport error after the latency, no response. The
	// caller cannot tell whether the server processed it — exactly the
	// ambiguity real connection resets have.
	DropProb float64 `json:"drop_prob"`
	// ErrProb is the probability the request is answered with a
	// synthesized 503 burst instead of reaching the upstream.
	ErrProb float64 `json:"err_prob"`
	// SlowBody drips the response body out one chunk per interval
	// (slow-loris): the status arrives promptly, the payload crawls.
	SlowBody time.Duration `json:"slow_body"`
	// SlowChunk is the bytes released per SlowBody interval (0 = 256).
	SlowChunk int `json:"slow_chunk"`
	// Partition fails every request immediately: the destination is
	// unreachable from this transport's side.
	Partition bool `json:"partition"`
}

// ErrPartition is the transport error injected for partitioned hosts.
var ErrPartition = fmt.Errorf("faultnet: host partitioned")

// ErrDropped is the transport error injected for dropped connections.
var ErrDropped = fmt.Errorf("faultnet: connection dropped")

// Transport is a fault-injecting http.RoundTripper. Safe for
// concurrent use.
type Transport struct {
	next http.RoundTripper

	mu     sync.Mutex
	rng    *rand.Rand
	faults map[string]Faults // keyed by destination host; "" is the default profile
	counts map[string]map[string]int
}

// New returns a Transport forwarding to next (nil = the default
// transport) with all randomness derived from seed.
func New(seed int64, next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{
		next:   next,
		rng:    rand.New(rand.NewSource(seed)),
		faults: make(map[string]Faults),
		counts: make(map[string]map[string]int),
	}
}

// SetFaults installs the injection profile for host ("" installs the
// default profile for hosts without their own).
func (t *Transport) SetFaults(host string, f Faults) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.faults[host] = f
}

// ClearFaults removes host's profile (it falls back to the default).
func (t *Transport) ClearFaults(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.faults, host)
}

// Requests returns how many upstream request attempts were made to
// host for path (counted before any fault fires, so dropped and
// partitioned attempts count too).
func (t *Transport) Requests(host, path string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.counts[host][path]
}

// HostRequests returns the total attempts to host across all paths.
func (t *Transport) HostRequests(host string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for _, c := range t.counts[host] {
		n += c
	}
	return n
}

// Stats snapshots all counters as host → path → attempts.
func (t *Transport) Stats() map[string]map[string]int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]map[string]int, len(t.counts))
	for h, paths := range t.counts {
		m := make(map[string]int, len(paths))
		for p, n := range paths {
			m[p] = n
		}
		out[h] = m
	}
	return out
}

// plan draws this request's fate under the mutex: the profile lookup,
// the counter bump and every random decision happen atomically.
// Determinism holds for a sequential client; concurrent requests still
// race for rng draws, which is why the seeded drills assert on
// aggregate counters, not individual request fates.
func (t *Transport) plan(host, path string) (f Faults, delay time.Duration, drop, errBurst bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	paths := t.counts[host]
	if paths == nil {
		paths = make(map[string]int)
		t.counts[host] = paths
	}
	paths[path]++
	f, ok := t.faults[host]
	if !ok {
		f = t.faults[""]
	}
	delay = f.Latency
	if f.Jitter > 0 {
		delay += time.Duration(t.rng.Int63n(int64(f.Jitter) + 1))
	}
	drop = f.DropProb > 0 && t.rng.Float64() < f.DropProb
	errBurst = f.ErrProb > 0 && t.rng.Float64() < f.ErrProb
	return f, delay, drop, errBurst
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	f, delay, drop, errBurst := t.plan(req.URL.Host, req.URL.Path)
	if f.Partition {
		return nil, ErrPartition
	}
	if delay > 0 {
		if err := sleepCtx(req.Context(), delay); err != nil {
			return nil, err
		}
	}
	if drop {
		return nil, ErrDropped
	}
	if errBurst {
		return synthesized(req, http.StatusServiceUnavailable), nil
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if f.SlowBody > 0 {
		chunk := f.SlowChunk
		if chunk <= 0 {
			chunk = 256
		}
		resp.Body = &slowBody{rc: resp.Body, ctx: req.Context(), every: f.SlowBody, chunk: chunk}
	}
	return resp, nil
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	tm := time.NewTimer(d)
	defer tm.Stop()
	select {
	case <-tm.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// synthesized builds an in-flight 5xx that never touched the upstream.
func synthesized(req *http.Request, status int) *http.Response {
	return &http.Response{
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode: status,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     http.Header{"X-Faultnet": []string{"injected"}},
		Body:       http.NoBody,
		Request:    req,
	}
}

// slowBody releases the wrapped body chunk by chunk, sleeping between
// chunks — a slow-loris response. Reads honor the request context so
// an abandoned response does not leak a sleeper.
type slowBody struct {
	rc      io.ReadCloser
	ctx     context.Context
	every   time.Duration
	chunk   int
	started bool
}

func (s *slowBody) Read(p []byte) (int, error) {
	if s.started {
		if err := sleepCtx(s.ctx, s.every); err != nil {
			return 0, err
		}
	}
	s.started = true
	if len(p) > s.chunk {
		p = p[:s.chunk]
	}
	return s.rc.Read(p)
}

func (s *slowBody) Close() error { return s.rc.Close() }
