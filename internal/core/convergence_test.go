package core

import (
	"math/rand"
	"testing"

	"alex/internal/feedback"
	"alex/internal/links"
	"alex/internal/rdf"
)

// staticWorld builds a system whose candidate set cannot change: the
// initial links reference entities with no feature sets, so approval
// explores nothing and the oracle always approves.
func staticWorld(t *testing.T, convergenceEpisodes int) (*System, *feedback.Oracle) {
	t.Helper()
	d := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(d)
	g2 := rdf.NewGraphWithDict(d)
	// Entities whose only values are dissimilar, so the θ-filtered
	// space is empty and no exploration is possible.
	g1.Insert(rdf.Triple{S: rdf.IRI("http://a/x"), P: rdf.IRI("http://a/p"), O: rdf.Literal("aaaaaaaa")})
	g2.Insert(rdf.Triple{S: rdf.IRI("http://b/y"), P: rdf.IRI("http://b/q"), O: rdf.Literal("zzzzzzzz")})
	cfg := DefaultConfig()
	cfg.EpisodeSize = 5
	cfg.MaxEpisodes = 50
	cfg.ConvergenceEpisodes = convergenceEpisodes
	e1 := g1.SubjectIDs()
	e2 := g2.SubjectIDs()
	x, _ := d.Lookup(rdf.IRI("http://a/x"))
	y, _ := d.Lookup(rdf.IRI("http://b/y"))
	l := links.Link{E1: x, E2: y}
	sys := New(g1, g2, e1, e2, []links.Link{l}, cfg)
	oracle := feedback.NewOracle(links.NewSet(l), 0, rand.New(rand.NewSource(1)))
	return sys, oracle
}

func TestStrictConvergenceNeedsConsecutiveUnchanged(t *testing.T) {
	sys, oracle := staticWorld(t, 3)
	res := sys.Run(oracle, nil)
	if !res.Converged {
		t.Fatal("static world did not converge")
	}
	if res.Episodes != 3 {
		t.Fatalf("episodes = %d, want exactly ConvergenceEpisodes (3)", res.Episodes)
	}
}

func TestConvergenceEpisodesDefaultsToOneWhenZero(t *testing.T) {
	sys, oracle := staticWorld(t, 0)
	res := sys.Run(oracle, nil)
	if !res.Converged || res.Episodes != 1 {
		t.Fatalf("episodes = %d converged=%v, want 1/true", res.Episodes, res.Converged)
	}
}

func TestRelaxedConvergenceRecorded(t *testing.T) {
	sys, oracle := staticWorld(t, 2)
	res := sys.Run(oracle, nil)
	if res.RelaxedEpisode != 1 {
		t.Fatalf("relaxed episode = %d, want 1 (first unchanged episode)", res.RelaxedEpisode)
	}
}

func TestChangedFracComputation(t *testing.T) {
	sys, oracle := staticWorld(t, 2)
	st := sys.RunEpisode(oracle)
	if st.ChangedFrac != 0 {
		t.Fatalf("ChangedFrac = %f, want 0 in a static world", st.ChangedFrac)
	}
	// Mutate the candidate set by hand between episodes: fraction is
	// |Δ| / |prev|.
	sys.BeginEpisode()
	sys.parts[0].addCandidate(links.Link{E1: 424242, E2: 434343}, nil)
	st2 := sys.FinishEpisode()
	if st2.ChangedFrac != 1.0 { // 1 new link / 1 previous link
		t.Fatalf("ChangedFrac = %f, want 1.0", st2.ChangedFrac)
	}
}
