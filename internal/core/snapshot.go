package core

import (
	"encoding/gob"
	"fmt"
	"io"
	"sort"

	"alex/internal/feature"
	"alex/internal/links"
	"alex/internal/rl"
)

// snapshotVersion guards against restoring incompatible snapshots.
const snapshotVersion = 1

// Snapshots let a long-running deployment (the paper's batch-mode
// service provider, §7.2) checkpoint everything ALEX has learned —
// candidate links with their generation provenance, the blacklist,
// feedback vote tallies, rollback state, and the per-partition
// action-value tables and policies — and resume later.
//
// A snapshot is only valid against a System built over the same
// datasets with the same configuration and partition count: dictionary
// IDs are positional, so the graphs must be loaded identically.

type provWire struct {
	State  links.Link
	Action feature.Key
}

type candWire struct {
	Link   links.Link
	HasGen bool
	Gen    provWire
}

type voteWire struct {
	Link links.Link
	N    int
}

type groupWire struct {
	Key   provWire
	Links []links.Link
}

type provCountWire struct {
	Key provWire
	N   int
}

type partitionWire struct {
	Cands      []candWire
	Blacklist  []links.Link
	Approved   []links.Link
	PosVotes   []voteWire
	NegVotes   []voteWire
	Generated  []groupWire
	NegCount   []provCountWire
	PosCount   []provCountWire
	RolledBack []provWire
	QTable     []rl.TableEntry[links.Link, feature.Key]
	Policy     []rl.PolicyEntry[links.Link, feature.Key]
}

type systemWire struct {
	Version   int
	Episode   int
	RelaxedAt int
	Parts     []partitionWire
}

// Save writes a snapshot of the system's learned state. Take snapshots
// between episodes (first-visit bookkeeping within an open episode is
// not persisted).
func (s *System) Save(w io.Writer) error {
	wire := systemWire{
		Version:   snapshotVersion,
		Episode:   s.ep,
		RelaxedAt: s.relaxedAt,
	}
	for _, p := range s.parts {
		wire.Parts = append(wire.Parts, exportPartition(p))
	}
	return gob.NewEncoder(w).Encode(&wire)
}

// Restore replaces the system's learned state from a snapshot taken on
// an identically constructed System.
func (s *System) Restore(r io.Reader) error {
	var wire systemWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return fmt.Errorf("core: decode snapshot: %w", err)
	}
	if wire.Version != snapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d", wire.Version, snapshotVersion)
	}
	if len(wire.Parts) != len(s.parts) {
		return fmt.Errorf("core: snapshot has %d partitions, system has %d", len(wire.Parts), len(s.parts))
	}
	for i, pw := range wire.Parts {
		importPartition(s.parts[i], pw)
	}
	s.ep = wire.Episode
	s.relaxedAt = wire.RelaxedAt
	s.prevCands = nil
	return nil
}

func sortedLinks(set links.Set) []links.Link { return set.Slice() }

func exportPartition(p *partition) partitionWire {
	var w partitionWire
	for _, l := range sortedCandLinks(p.cands) {
		cw := candWire{Link: l}
		if gen := p.cands[l].gen; gen != nil {
			cw.HasGen = true
			cw.Gen = provWire{State: gen.state, Action: gen.action}
		}
		w.Cands = append(w.Cands, cw)
	}
	w.Blacklist = sortedLinks(p.blacklist)
	w.Approved = sortedLinks(p.approved)
	w.PosVotes = exportVotes(p.posVotes)
	w.NegVotes = exportVotes(p.negVotes)
	for pk, ls := range p.generated {
		if len(ls) == 0 {
			continue
		}
		w.Generated = append(w.Generated, groupWire{
			Key:   provWire{State: pk.state, Action: pk.action},
			Links: append([]links.Link(nil), ls...),
		})
	}
	sortGroups(w.Generated)
	w.NegCount = exportProvCounts(p.negCount)
	w.PosCount = exportProvCounts(p.posCount)
	for pk := range p.rolledBack {
		w.RolledBack = append(w.RolledBack, provWire{State: pk.state, Action: pk.action})
	}
	sortProv(w.RolledBack)
	w.QTable, w.Policy = p.ctrl.Export()
	return w
}

func importPartition(p *partition, w partitionWire) {
	p.cands = make(map[links.Link]candInfo, len(w.Cands))
	p.order = p.order[:0]
	p.dead = 0
	for _, cw := range w.Cands {
		var gen *provKey
		if cw.HasGen {
			gen = &provKey{state: cw.Gen.State, action: cw.Gen.Action}
		}
		p.cands[cw.Link] = candInfo{gen: gen}
		p.order = append(p.order, cw.Link)
	}
	p.blacklist = links.NewSet(w.Blacklist...)
	p.approved = links.NewSet(w.Approved...)
	p.posVotes = importVotes(w.PosVotes)
	p.negVotes = importVotes(w.NegVotes)
	p.generated = make(map[provKey][]links.Link, len(w.Generated))
	for _, g := range w.Generated {
		p.generated[provKey{state: g.Key.State, action: g.Key.Action}] = append([]links.Link(nil), g.Links...)
	}
	p.negCount = importProvCounts(w.NegCount)
	p.posCount = importProvCounts(w.PosCount)
	p.rolledBack = make(map[provKey]bool, len(w.RolledBack))
	for _, pk := range w.RolledBack {
		p.rolledBack[provKey{state: pk.State, action: pk.Action}] = true
	}
	p.ctrl.Import(w.QTable, w.Policy)
	p.resetEpisodeCounters()
}

func exportVotes(m map[links.Link]int) []voteWire {
	out := make([]voteWire, 0, len(m))
	for l, n := range m {
		out = append(out, voteWire{Link: l, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return linkLess(out[i].Link, out[j].Link) })
	return out
}

func importVotes(vs []voteWire) map[links.Link]int {
	out := make(map[links.Link]int, len(vs))
	for _, v := range vs {
		out[v.Link] = v.N
	}
	return out
}

func exportProvCounts(m map[provKey]int) []provCountWire {
	out := make([]provCountWire, 0, len(m))
	for pk, n := range m {
		out = append(out, provCountWire{Key: provWire{State: pk.state, Action: pk.action}, N: n})
	}
	sort.Slice(out, func(i, j int) bool { return provLess(out[i].Key, out[j].Key) })
	return out
}

func importProvCounts(vs []provCountWire) map[provKey]int {
	out := make(map[provKey]int, len(vs))
	for _, v := range vs {
		out[provKey{state: v.Key.State, action: v.Key.Action}] = v.N
	}
	return out
}

func sortedCandLinks(m map[links.Link]candInfo) []links.Link {
	out := make([]links.Link, 0, len(m))
	for l := range m {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return linkLess(out[i], out[j]) })
	return out
}

func linkLess(a, b links.Link) bool {
	if a.E1 != b.E1 {
		return a.E1 < b.E1
	}
	return a.E2 < b.E2
}

func provLess(a, b provWire) bool {
	if a.State != b.State {
		return linkLess(a.State, b.State)
	}
	if a.Action.P1 != b.Action.P1 {
		return a.Action.P1 < b.Action.P1
	}
	return a.Action.P2 < b.Action.P2
}

func sortGroups(gs []groupWire) {
	sort.Slice(gs, func(i, j int) bool { return provLess(gs[i].Key, gs[j].Key) })
}

func sortProv(ps []provWire) {
	sort.Slice(ps, func(i, j int) bool { return provLess(ps[i], ps[j]) })
}
