package core

import (
	"fmt"
	"math/rand"

	"alex/internal/feature"
	"alex/internal/feedback"
	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/store"
)

// System is a running ALEX instance over one dataset pair.
type System struct {
	cfg    Config
	parts  []*partition
	partOf map[rdf.ID]int // dataset-1 entity → partition index
	rng    *rand.Rand
	ep     int

	relaxedAt int       // first episode with <RelaxedDelta change; 0 = not yet
	prevCands links.Set // candidate snapshot from BeginEpisode
}

// EpisodeStats summarizes one feedback episode.
type EpisodeStats struct {
	Episode   int
	Feedback  int
	Negative  int
	Explored  int
	Removed   int
	Rollbacks int
	// Blacklisted is the cumulative blacklist size after the episode.
	Blacklisted int
	// ChangedFrac is |C_now Δ C_prev| / max(1, |C_prev|).
	ChangedFrac float64
}

// NegativePct returns the percentage of feedback that was negative.
func (s EpisodeStats) NegativePct() float64 {
	if s.Feedback == 0 {
		return 0
	}
	return 100 * float64(s.Negative) / float64(s.Feedback)
}

// New builds a System: it partitions the dataset-1 entities round-robin
// (§6.2), constructs the filtered feature space of every partition
// (§6.1), and seeds the candidate sets with the initial links.
//
// g1 and g2 must share one dictionary. Initial links whose dataset-1
// entity is unknown are placed in partition 0.
func New(g1, g2 store.TripleStore, entities1, entities2 []rdf.ID, initial []links.Link, cfg Config) *System {
	if cfg.Partitions < 1 {
		cfg.Partitions = 1
	}
	if cfg.EpisodeSize < 1 {
		cfg.EpisodeSize = 1
	}
	if cfg.MaxEpisodes < 1 {
		cfg.MaxEpisodes = 100
	}
	s := &System{
		cfg:    cfg,
		partOf: make(map[rdf.ID]int, len(entities1)),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	partEnts := feature.PartitionRoundRobin(entities1, cfg.Partitions)
	for pi, ents := range partEnts {
		for _, e := range ents {
			s.partOf[e] = pi
		}
	}

	// Build partition spaces. Build parallelizes internally across
	// SpaceWorkers goroutines, so the partitions are constructed one
	// after another against a single shared signature table instead of
	// each recomputing its own (which the pre-signature-table code did
	// by building partitions concurrently).
	spaces := make([]*feature.Space, len(partEnts))
	fopts := feature.Options{
		Theta:    cfg.Theta,
		Sim:      cfg.Sim,
		Workers:  cfg.SpaceWorkers,
		Blocking: cfg.SpaceBlocking,
	}
	if cfg.Sim == nil {
		fopts.Sigs = feature.NewSigTable(g1.Dict())
	}
	for pi := range partEnts {
		spaces[pi] = feature.Build(g1, g2, partEnts[pi], entities2, fopts)
	}

	s.parts = make([]*partition, len(partEnts))
	for pi := range partEnts {
		prng := rand.New(rand.NewSource(cfg.Seed + int64(pi) + 1))
		s.parts[pi] = newPartition(spaces[pi], cfg.Epsilon, prng)
	}
	for _, l := range initial {
		s.parts[s.partitionOf(l)].addCandidate(l, nil)
	}
	return s
}

func (s *System) partitionOf(l links.Link) int {
	if pi, ok := s.partOf[l.E1]; ok {
		return pi
	}
	return 0
}

// Candidates returns the current candidate link set across partitions.
func (s *System) Candidates() links.Set {
	out := links.NewSet()
	for _, p := range s.parts {
		for l := range p.cands {
			out.Add(l)
		}
	}
	return out
}

// CandidateCount returns |C| without materializing the set.
func (s *System) CandidateCount() int {
	n := 0
	for _, p := range s.parts {
		n += len(p.cands)
	}
	return n
}

// Episode returns the number of completed episodes.
func (s *System) Episode() int { return s.ep }

// Partitions returns the partition count.
func (s *System) Partitions() int { return len(s.parts) }

// SpaceSize returns the filtered space size and the unfiltered cross
// product, summed over partitions (Figure 5).
func (s *System) SpaceSize() (filtered, total int) {
	for _, p := range s.parts {
		filtered += p.space.Len()
		total += p.space.TotalPairs
	}
	return filtered, total
}

// PartitionCandidates returns the candidate set of one partition, for
// the per-partition views of Figure 7.
func (s *System) PartitionCandidates(pi int) links.Set {
	out := links.NewSet()
	for l := range s.parts[pi].cands {
		out.Add(l)
	}
	return out
}

// Feedback processes a single feedback item on a link: the core entry
// point used by the federated query layer (approve/reject of an answer)
// and by the episode driver.
func (s *System) Feedback(l links.Link, positive bool) {
	s.parts[s.partitionOf(l)].handle(l, positive, &s.cfg)
}

// sampleCandidate draws a uniformly random candidate across partitions.
func (s *System) sampleCandidate() (links.Link, int, bool) {
	total := s.CandidateCount()
	if total == 0 {
		return links.Link{}, 0, false
	}
	r := s.rng.Intn(total)
	for pi, p := range s.parts {
		if r < len(p.cands) {
			l, ok := p.sample()
			if !ok {
				continue
			}
			return l, pi, true
		}
		r -= len(p.cands)
	}
	// Unreachable unless all partitions are empty.
	return links.Link{}, 0, false
}

// BeginEpisode snapshots the candidate set for convergence accounting
// and resets the per-episode counters. RunEpisode calls it implicitly;
// distributed drivers (internal/cluster) call the episode phases
// explicitly.
func (s *System) BeginEpisode() {
	s.prevCands = s.Candidates()
	for _, p := range s.parts {
		p.resetEpisodeCounters()
	}
}

// SampleCandidate draws a uniformly random current candidate link, as
// the paper's feedback generator does (§7.1).
func (s *System) SampleCandidate() (links.Link, bool) {
	l, _, ok := s.sampleCandidate()
	return l, ok
}

// FinishEpisode improves every partition's policy (Algorithm 1 lines
// 24-33) and returns the episode's exploration/removal statistics and
// the changed-links fraction used for convergence.
func (s *System) FinishEpisode() EpisodeStats {
	st := EpisodeStats{Episode: s.ep + 1}
	for _, p := range s.parts {
		p.ctrl.EndEpisode()
		st.Explored += p.explored
		st.Removed += p.removed
		st.Rollbacks += p.rollbacks
		st.Blacklisted += p.blacklist.Len()
	}
	if d := s.cfg.EpsilonDecay; d > 0 && d < 1 {
		floor := s.cfg.EpsilonMin
		if floor <= 0 {
			floor = 0.01
		}
		for _, p := range s.parts {
			eps := p.ctrl.Epsilon() * d
			if eps < floor {
				eps = floor
			}
			p.ctrl.SetEpsilon(eps)
		}
	}
	s.ep++

	prev := s.prevCands
	if prev == nil {
		prev = links.NewSet()
	}
	now := s.Candidates()
	denom := prev.Len()
	if denom == 0 {
		denom = 1
	}
	st.ChangedFrac = float64(prev.SymmetricDiff(now)) / float64(denom)
	if s.relaxedAt == 0 && st.ChangedFrac < s.cfg.RelaxedDelta {
		s.relaxedAt = s.ep
	}
	return st
}

// RunEpisode collects one episode of feedback (policy evaluation) and
// then improves the policy of every partition (Algorithm 1).
func (s *System) RunEpisode(oracle feedback.Judger) EpisodeStats {
	s.BeginEpisode()
	feedbackCount, negative := 0, 0
	for i := 0; i < s.cfg.EpisodeSize; i++ {
		l, pi, ok := s.sampleCandidate()
		if !ok {
			break
		}
		positive := oracle.Judge(l)
		feedbackCount++
		if !positive {
			negative++
		}
		s.parts[pi].handle(l, positive, &s.cfg)
	}
	st := s.FinishEpisode()
	st.Feedback = feedbackCount
	st.Negative = negative
	return st
}

// Result summarizes a full Run.
type Result struct {
	Episodes       int
	Converged      bool
	RelaxedEpisode int // first episode with <RelaxedDelta change (0 = never)
	Stats          []EpisodeStats
}

// Run iterates policy evaluation and policy improvement until the
// candidate set stops changing for ConvergenceEpisodes consecutive
// episodes (strict convergence), or MaxEpisodes is reached. onEpisode,
// if non-nil, is called after every episode with that episode's stats —
// experiments use it to snapshot metrics.
func (s *System) Run(oracle feedback.Judger, onEpisode func(EpisodeStats)) Result {
	res := Result{}
	need := s.cfg.ConvergenceEpisodes
	if need < 1 {
		need = 1
	}
	unchanged := 0
	for s.ep < s.cfg.MaxEpisodes {
		st := s.RunEpisode(oracle)
		res.Stats = append(res.Stats, st)
		if onEpisode != nil {
			onEpisode(st)
		}
		if st.ChangedFrac == 0 {
			unchanged++
			if unchanged >= need {
				res.Converged = true
				break
			}
		} else {
			unchanged = 0
		}
	}
	res.Episodes = s.ep
	res.RelaxedEpisode = s.relaxedAt
	return res
}

// String summarizes the system state.
func (s *System) String() string {
	f, t := s.SpaceSize()
	return fmt.Sprintf("alex.System{episodes: %d, candidates: %d, partitions: %d, space: %d/%d}",
		s.ep, s.CandidateCount(), len(s.parts), f, t)
}
