package core

import (
	"testing"

	"alex/internal/feature"
	"alex/internal/links"
	"alex/internal/rdf"
)

// TestRewardChainPropagation reproduces the paper's §4.4.1 example
// directly: s1's action generates s2, s2's action generates s3;
// feedback on s3 must reward both (s2, a2) and (s1, a1).
func TestRewardChainPropagation(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	p := sys.parts[0]

	ls := p.space.Links()
	if len(ls) < 3 {
		t.Skip("space too small")
	}
	s1, s2, s3 := ls[0], ls[1], ls[2]
	a1 := feature.Key{P1: 11, P2: 21}
	a2 := feature.Key{P1: 12, P2: 22}

	// Wire the chain by hand: s1 is an initial candidate; (s1, a1)
	// generated s2; (s2, a2) generated s3.
	p.addCandidate(s1, nil)
	pk1 := provKey{state: s1, action: a1}
	p.addCandidate(s2, &pk1)
	p.generated[pk1] = append(p.generated[pk1], s2)
	pk2 := provKey{state: s2, action: a2}
	p.addCandidate(s3, &pk2)
	p.generated[pk2] = append(p.generated[pk2], s3)

	// Positive feedback on s3 rewards both chain links.
	p.handle(s3, true, &sys.cfg)
	if got := p.ctrl.Q(s2, a2); got != 1 {
		t.Fatalf("Q(s2,a2) = %f, want 1", got)
	}
	if got := p.ctrl.Q(s1, a1); got != 1 {
		t.Fatalf("Q(s1,a1) = %f, want 1", got)
	}

	// Second feedback on s3 within the same episode: first-visit rule,
	// no further returns.
	p.handle(s3, true, &sys.cfg)
	if got := p.ctrl.Q(s2, a2); got != 1 {
		t.Fatalf("Q(s2,a2) after duplicate visit = %f, want 1", got)
	}

	// Negative feedback on s2 (new feedback state) penalizes (s1, a1):
	// returns average of +1 and -1.
	p.handle(s2, false, &sys.cfg)
	if got := p.ctrl.Q(s1, a1); got != 0 {
		t.Fatalf("Q(s1,a1) after mixed feedback = %f, want 0", got)
	}
}

// TestChainDepthBounded guards against pathological provenance chains.
func TestChainDepthBounded(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	p := sys.parts[0]
	ls := p.space.Links()
	if len(ls) < 2 {
		t.Skip("space too small")
	}
	// Build an artificially deep chain of 200 generated states using
	// synthetic link IDs.
	prev := links.Link{E1: 900001, E2: 900002}
	p.addCandidate(prev, nil)
	for i := 0; i < 200; i++ {
		next := links.Link{E1: rdf.ID(910000 + i), E2: rdf.ID(920000 + i)}
		pk := provKey{state: prev, action: feature.Key{P1: 1, P2: 2}}
		p.addCandidate(next, &pk)
		prev = next
	}
	// Must terminate promptly (the 64-hop bound) without stack issues.
	p.handle(prev, true, &sys.cfg)
}

// TestExploreOncePerEpisode: the first-visit rule also gates the
// exploration action, so repeated approvals within one episode do not
// multiply ε-greedy draws.
func TestExploreOncePerEpisode(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	var correct links.Link
	found := false
	for _, l := range sys.Candidates().Slice() {
		if ds.GroundTruth.Has(l) && len(sys.parts[sys.partitionOf(l)].space.FeatureSet(l)) > 0 {
			correct, found = l, true
			break
		}
	}
	if !found {
		t.Skip("no explorable correct candidate")
	}
	p := sys.parts[sys.partitionOf(correct)]
	p.handle(correct, true, &sys.cfg)
	afterFirst := len(p.cands)
	for i := 0; i < 20; i++ {
		p.handle(correct, true, &sys.cfg)
	}
	if got := len(p.cands); got != afterFirst {
		t.Fatalf("repeated approvals kept exploring: %d -> %d", afterFirst, got)
	}
	// A new episode re-enables exploration for the state.
	p.ctrl.EndEpisode()
	p.handle(correct, true, &sys.cfg)
}
