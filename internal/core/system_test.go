package core

import (
	"math/rand"
	"testing"

	"alex/internal/eval"
	"alex/internal/feature"
	"alex/internal/feedback"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/synth"
)

// smallWorld builds a deterministic miniature dataset pair: 20 matched
// people, 8 of them with exact copies (PARIS finds those), 12 with
// perturbed variants, plus a shared non-distinctive type on all
// entities (the feature a bad action floods the candidate set with).
func smallWorld(t *testing.T) *synth.Dataset {
	t.Helper()
	p := synth.Profile{
		Name: "test-world", N1: 40, N2: 35, Matched: 20,
		ExactFrac: 0.4, Traps: 4, AmbiguousFrac: 0.4, SharedTypeFrac: 0.5,
		EpisodeSize: 50, Partitions: 2, Seed: 7,
	}
	return synth.Generate(p)
}

func initialLinks(ds *synth.Dataset) []links.Link {
	scored := paris.Link(ds.G1, ds.G2, ds.Entities1, ds.Entities2, paris.NewOptions())
	out := make([]links.Link, len(scored))
	for i, s := range scored {
		out[i] = s.Link
	}
	return out
}

func newTestSystem(t *testing.T, ds *synth.Dataset, mutate func(*Config)) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.EpisodeSize = 50
	cfg.Partitions = 2
	cfg.MaxEpisodes = 30
	if mutate != nil {
		mutate(&cfg)
	}
	return New(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initialLinks(ds), cfg)
}

func TestNewSystemSeedsCandidates(t *testing.T) {
	ds := smallWorld(t)
	init := initialLinks(ds)
	sys := newTestSystem(t, ds, nil)
	if sys.CandidateCount() != len(init) {
		t.Fatalf("candidates = %d, want %d", sys.CandidateCount(), len(init))
	}
	cands := sys.Candidates()
	for _, l := range init {
		if !cands.Has(l) {
			t.Fatalf("initial link %+v missing", l)
		}
	}
	if sys.Partitions() != 2 {
		t.Fatalf("partitions = %d", sys.Partitions())
	}
}

func TestSpaceIsFiltered(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	filtered, total := sys.SpaceSize()
	if filtered == 0 || total == 0 {
		t.Fatal("empty space")
	}
	if filtered >= total {
		t.Fatalf("filtering removed nothing: %d/%d", filtered, total)
	}
}

func TestPositiveFeedbackExplores(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	before := sys.CandidateCount()
	// Feed positive feedback on every correct initial candidate a few
	// times; exploration must admit at least one new link.
	for round := 0; round < 3; round++ {
		for _, l := range sys.Candidates().Slice() {
			if ds.GroundTruth.Has(l) {
				sys.Feedback(l, true)
			}
		}
	}
	if sys.CandidateCount() <= before {
		t.Fatalf("no exploration happened: %d -> %d", before, sys.CandidateCount())
	}
}

func TestNegativeFeedbackRemovesAndBlacklists(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	var wrong links.Link
	found := false
	for _, l := range sys.Candidates().Slice() {
		if !ds.GroundTruth.Has(l) {
			wrong, found = l, true
			break
		}
	}
	if !found {
		t.Skip("no wrong initial candidate in this world")
	}
	sys.Feedback(wrong, false)
	if sys.Candidates().Has(wrong) {
		t.Fatal("rejected link still a candidate")
	}
	p := sys.parts[sys.partitionOf(wrong)]
	// Default BlacklistMargin is 2: the first rejection removes, the
	// second (after a hypothetical re-exploration) blacklists.
	if p.blacklist.Has(wrong) {
		t.Fatal("link blacklisted before reaching the margin")
	}
	p.addCandidate(wrong, nil)
	sys.Feedback(wrong, false)
	if !p.blacklist.Has(wrong) {
		t.Fatal("rejected link not blacklisted after reaching the margin")
	}
}

func TestBlacklistMarginOneIsImmediate(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, func(c *Config) { c.BlacklistMargin = 1 })
	var wrong links.Link
	found := false
	for _, l := range sys.Candidates().Slice() {
		if !ds.GroundTruth.Has(l) {
			wrong, found = l, true
			break
		}
	}
	if !found {
		t.Skip("no wrong initial candidate in this world")
	}
	sys.Feedback(wrong, false)
	if !sys.parts[sys.partitionOf(wrong)].blacklist.Has(wrong) {
		t.Fatal("margin 1 did not blacklist on first rejection")
	}
}

func TestFeedbackOnNonCandidateIsNoop(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	before := sys.CandidateCount()
	sys.Feedback(links.Link{E1: 999999, E2: 999998}, true)
	sys.Feedback(links.Link{E1: 999999, E2: 999998}, false)
	if sys.CandidateCount() != before {
		t.Fatal("feedback on unknown link changed state")
	}
}

func TestRunEpisodeImprovesQuality(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))

	start := eval.Compute(sys.Candidates(), ds.GroundTruth)
	res := sys.Run(oracle, nil)
	end := eval.Compute(sys.Candidates(), ds.GroundTruth)

	if end.F1 <= start.F1 {
		t.Fatalf("F-measure did not improve: %.3f -> %.3f over %d episodes", start.F1, end.F1, res.Episodes)
	}
	if end.Recall < start.Recall {
		t.Fatalf("recall regressed: %.3f -> %.3f", start.Recall, end.Recall)
	}
	if res.Episodes == 0 || len(res.Stats) != res.Episodes {
		t.Fatalf("result bookkeeping wrong: %+v", res)
	}
}

func TestRunIsDeterministic(t *testing.T) {
	ds := smallWorld(t)
	run := func() links.Set {
		sys := newTestSystem(t, ds, nil)
		oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))
		sys.Run(oracle, nil)
		return sys.Candidates()
	}
	a, b := run(), run()
	if a.SymmetricDiff(b) != 0 {
		t.Fatalf("two identical runs diverged by %d links", a.SymmetricDiff(b))
	}
}

func TestRollbackRemovesGeneratedLinks(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, func(c *Config) {
		c.RollbackThreshold = 2
	})
	// Find a correct candidate whose feature set includes the shared
	// non-distinctive type feature, then force that exploration.
	p := sys.parts[0]
	var state links.Link
	var typeKey feature.Key
	foundState := false
	for l := range p.cands {
		if !ds.GroundTruth.Has(l) {
			continue
		}
		for _, f := range p.space.FeatureSet(l) {
			t1 := ds.Dict.Term(f.Key.P1)
			if t1 == synth.P1Type && f.Score == 1 {
				state, typeKey, foundState = l, f.Key, true
				break
			}
		}
		if foundState {
			break
		}
	}
	if !foundState {
		t.Skip("no candidate with the shared-type feature in partition 0")
	}

	before := len(p.cands)
	pk := provKey{state: state, action: typeKey}
	p.approved.Add(state)
	// Emulate the bad action directly via explore internals.
	score := p.space.FeatureSet(state).Score(typeKey)
	for _, nl := range p.space.FindInRange(typeKey, score-0.05, score+0.05) {
		if p.addCandidate(nl, &pk) {
			p.generated[pk] = append(p.generated[pk], nl)
		}
	}
	flooded := len(p.cands)
	if flooded <= before {
		t.Skip("type exploration added nothing in this world")
	}

	// Enough negative feedback on generated links triggers rollback:
	// the trigger scales with group size (|group|/16) so a big flood
	// needs proportionally more rejections than the base threshold.
	need := sys.cfg.RollbackThreshold
	if scaled := len(p.generated[pk]) / 16; scaled > need {
		need = scaled
	}
	neg := 0
	for _, l := range p.generated[pk] {
		if !ds.GroundTruth.Has(l) {
			p.handle(l, false, &sys.cfg)
			neg++
			if neg == need {
				break
			}
		}
	}
	if neg < need {
		t.Skip("not enough wrong generated links")
	}
	after := len(p.cands)
	if after > before {
		t.Fatalf("rollback did not clean the flood: %d -> %d -> %d", before, flooded, after)
	}
	if p.rollbacks == 0 {
		t.Fatal("rollback counter not incremented")
	}
}

func TestRollbackSparesApprovedLinks(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, func(c *Config) { c.RollbackThreshold = 1 })
	p := sys.parts[0]
	// Construct a synthetic generation group by hand.
	var group []links.Link
	for l := range p.space.Links() {
		_ = l
		break
	}
	ls := p.space.Links()
	if len(ls) < 5 {
		t.Skip("space too small")
	}
	state := ls[0]
	pk := provKey{state: state, action: feature.Key{P1: 1, P2: 2}}
	for _, l := range ls[1:5] {
		if p.addCandidate(l, &pk) {
			p.generated[pk] = append(p.generated[pk], l)
			group = append(group, l)
		}
	}
	if len(group) < 4 {
		t.Skip("could not build group")
	}
	p.handle(group[0], true, &sys.cfg) // approve first
	// Two rejections: negCount (2) reaches the threshold and exceeds
	// the group's positive count (1), so rollback fires.
	p.handle(group[1], false, &sys.cfg)
	p.handle(group[2], false, &sys.cfg)
	if _, ok := p.cands[group[0]]; !ok {
		t.Fatal("rollback removed an approved link")
	}
	if _, ok := p.cands[group[3]]; ok {
		t.Fatal("rollback left an unapproved generated link")
	}
	// rolled-back links must not be blacklisted
	if p.blacklist.Has(group[3]) {
		t.Fatal("rolled-back link was blacklisted")
	}
}

func TestBlacklistPreventsReexploration(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(5)))
	sys.Run(oracle, nil)
	// After convergence every blacklisted link must be absent.
	for _, p := range sys.parts {
		for l := range p.blacklist {
			if _, ok := p.cands[l]; ok {
				t.Fatalf("blacklisted link %+v is a candidate", l)
			}
		}
	}
}

func TestUniformPolicyAblationRuns(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, func(c *Config) { c.UniformPolicy = true; c.MaxEpisodes = 5 })
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(5)))
	res := sys.Run(oracle, nil)
	if res.Episodes == 0 {
		t.Fatal("no episodes ran")
	}
}

func TestEpisodeStatsAccounting(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(9)))
	st := sys.RunEpisode(oracle)
	if st.Feedback == 0 || st.Feedback > 50 {
		t.Fatalf("feedback count = %d", st.Feedback)
	}
	if st.Negative > st.Feedback {
		t.Fatal("negative > feedback")
	}
	if pct := st.NegativePct(); pct < 0 || pct > 100 {
		t.Fatalf("NegativePct = %f", pct)
	}
	if st.Episode != 1 || sys.Episode() != 1 {
		t.Fatalf("episode numbering wrong: %d/%d", st.Episode, sys.Episode())
	}
}

func TestEmptyCandidatesEpisode(t *testing.T) {
	ds := smallWorld(t)
	cfg := DefaultConfig()
	cfg.EpisodeSize = 10
	sys := New(ds.G1, ds.G2, ds.Entities1, ds.Entities2, nil, cfg)
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(9)))
	st := sys.RunEpisode(oracle)
	if st.Feedback != 0 {
		t.Fatalf("feedback on empty candidate set: %d", st.Feedback)
	}
}

func TestPartitionCandidatesViews(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	total := 0
	for pi := 0; pi < sys.Partitions(); pi++ {
		total += sys.PartitionCandidates(pi).Len()
	}
	if total != sys.CandidateCount() {
		t.Fatalf("partition views sum to %d, want %d", total, sys.CandidateCount())
	}
}

func TestConfigValidationDefaults(t *testing.T) {
	ds := smallWorld(t)
	cfg := Config{Seed: 1} // everything zero
	sys := New(ds.G1, ds.G2, ds.Entities1, ds.Entities2, nil, cfg)
	if sys.Partitions() != 1 {
		t.Fatalf("partitions defaulted to %d", sys.Partitions())
	}
}

func TestStringer(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	if s := sys.String(); s == "" {
		t.Fatal("empty String()")
	}
}
