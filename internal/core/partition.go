package core

import (
	"math/rand"

	"alex/internal/feature"
	"alex/internal/links"
	"alex/internal/rl"
)

// provKey identifies the state-action pair that generated a set of
// explored links: the approved link (state) and the feature explored
// around (action).
type provKey struct {
	state  links.Link
	action feature.Key
}

// candInfo is per-candidate bookkeeping.
type candInfo struct {
	// gen is the state-action pair whose exploration admitted this
	// link; nil for initial candidates.
	gen *provKey
}

// partition owns one share-nothing slice of the search space (§6.2): a
// subset of dataset-1 entities crossed with all of dataset 2, its own
// candidate set, RL controller, blacklist and rollback state.
type partition struct {
	space *feature.Space
	ctrl  *rl.Controller[links.Link, feature.Key]
	rng   *rand.Rand

	cands     map[links.Link]candInfo
	order     []links.Link // append-only sampling order; lazily compacted
	dead      int          // entries of order no longer in cands
	blacklist links.Set
	approved  links.Set
	generated map[provKey][]links.Link
	// negCount/posCount tally feedback on the links each state-action
	// pair generated. Rollback fires when a group's negatives reach the
	// threshold AND outnumber its positives, so a flood of wrong links
	// is cleaned quickly while a mostly-correct group survives sporadic
	// (possibly erroneous) rejections.
	negCount map[provKey]int
	posCount map[provKey]int
	// rolledBack marks state-action pairs whose generated links were
	// rolled back; such a pair never explores again. The paper's §6.3
	// states rolled-back links "can be discovered later by another
	// state-action pair with a better average return" — the offending
	// pair itself is retired, which is also what makes strict
	// convergence reachable under an ε-greedy policy.
	rolledBack map[provKey]bool
	// posVotes/negVotes count per-link feedback history. A link enters
	// the blacklist only when its negative votes exceed its positive
	// votes, which makes the blacklist resilient to erroneous feedback
	// (Appendix C): a correct link wrongly rejected once is removed but
	// can be rediscovered, while a genuinely wrong link accumulates a
	// negative majority and stays out. Under fully correct feedback the
	// rule reduces to "blacklist on first rejection", the plain §6.3
	// behaviour, because correct links never receive negatives.
	posVotes map[links.Link]int
	negVotes map[links.Link]int

	// episode counters
	explored  int
	removed   int
	rollbacks int
}

func newPartition(space *feature.Space, epsilon float64, rng *rand.Rand) *partition {
	return &partition{
		space:      space,
		ctrl:       rl.New[links.Link, feature.Key](epsilon, rng),
		rng:        rng,
		cands:      make(map[links.Link]candInfo),
		blacklist:  links.NewSet(),
		approved:   links.NewSet(),
		generated:  make(map[provKey][]links.Link),
		negCount:   make(map[provKey]int),
		posCount:   make(map[provKey]int),
		rolledBack: make(map[provKey]bool),
		posVotes:   make(map[links.Link]int),
		negVotes:   make(map[links.Link]int),
	}
}

func (p *partition) addCandidate(l links.Link, gen *provKey) bool {
	if _, ok := p.cands[l]; ok {
		return false
	}
	p.cands[l] = candInfo{gen: gen}
	p.order = append(p.order, l)
	return true
}

func (p *partition) removeCandidate(l links.Link) bool {
	if _, ok := p.cands[l]; !ok {
		return false
	}
	delete(p.cands, l)
	p.dead++
	return true
}

// sample draws a uniformly random current candidate. It retries over
// the append-only order slice, compacting when it gets too stale, which
// keeps sampling deterministic under a seeded rng.
func (p *partition) sample() (links.Link, bool) {
	if len(p.cands) == 0 {
		return links.Link{}, false
	}
	if p.dead*2 > len(p.order) {
		p.compact()
	}
	for {
		l := p.order[p.rng.Intn(len(p.order))]
		if _, ok := p.cands[l]; ok {
			return l, true
		}
	}
}

func (p *partition) compact() {
	kept := p.order[:0]
	seen := make(map[links.Link]bool, len(p.cands))
	for _, l := range p.order {
		if _, ok := p.cands[l]; ok && !seen[l] {
			kept = append(kept, l)
			seen[l] = true
		}
	}
	p.order = kept
	p.dead = 0
}

// handle processes one feedback item for a link owned by this partition,
// implementing the policy-evaluation body of Algorithm 1 (lines 11-22)
// plus the blacklist and rollback optimizations.
func (p *partition) handle(l links.Link, positive bool, cfg *Config) {
	info, isCandidate := p.cands[l]
	if !isCandidate {
		return
	}

	// First-visit Monte Carlo bookkeeping (§4.4.1): within an episode,
	// only a state's first feedback propagates rewards along the
	// generation chain that led to it, and only the first positive
	// feedback triggers an exploration action. Without the second rule
	// a state receiving many feedback items per episode (common when
	// feedback arrives through query answers) would roll the ε die once
	// per item and flood the candidate set.
	firstVisit := p.ctrl.Visit(l)
	if firstVisit {
		reward := cfg.PositiveReward
		if !positive {
			reward = -cfg.NegativePenalty
		}
		gen := info.gen
		for depth := 0; gen != nil && depth < 64; depth++ {
			p.ctrl.RecordReturn(gen.state, gen.action, reward)
			parent, ok := p.cands[gen.state]
			if !ok {
				break
			}
			gen = parent.gen
		}
	}

	if positive {
		p.posVotes[l]++
		p.approved.Add(l)
		if info.gen != nil {
			p.posCount[*info.gen]++
		}
		if firstVisit {
			p.explore(l, cfg)
		}
		return
	}

	// Negative feedback: remove the link (Algorithm 1 line 20).
	p.negVotes[l]++
	p.removeCandidate(l)
	p.removed++
	margin := cfg.BlacklistMargin
	if margin < 1 {
		margin = 1
	}
	if cfg.UseBlacklist && p.negVotes[l]-p.posVotes[l] >= margin {
		p.blacklist.Add(l)
	}
	if info.gen != nil {
		pk := *info.gen
		p.negCount[pk]++
		// Rollback needs a "sufficient number" of negatives (§6.3):
		// the absolute threshold, scaled up for larger generation
		// groups so that a handful of rejections does not erase a big,
		// possibly mixed batch — but capped at 8× the base threshold so
		// that a catastrophic flood is still rolled back long before
		// link-by-link feedback could clean it — and in any case a
		// negative majority.
		need := cfg.RollbackThreshold
		if scaled := len(p.generated[pk]) / 16; scaled > need {
			need = scaled
		}
		if ceil := 8 * cfg.RollbackThreshold; need > ceil {
			need = ceil
		}
		if cfg.UseRollback && p.negCount[pk] >= need && p.negCount[pk] > p.posCount[pk] {
			p.rollback(pk)
		}
	}
}

// explore performs the action for an approved link: choose a feature of
// its feature set by the current policy and admit every link in the
// space whose score on that feature is within ±step (§4.2).
func (p *partition) explore(l links.Link, cfg *Config) {
	fs := p.space.FeatureSet(l)
	if len(fs) == 0 {
		return
	}
	var action feature.Key
	if cfg.UniformPolicy {
		keys := fs.Keys()
		action = keys[p.rng.Intn(len(keys))]
	} else {
		var ok bool
		action, ok = p.ctrl.ChooseAction(l, fs.Keys())
		if !ok {
			return
		}
	}
	pk := provKey{state: l, action: action}
	if p.rolledBack[pk] {
		return
	}
	score := fs.Score(action)
	found := p.space.FindInRange(action, score-cfg.StepSize, score+cfg.StepSize)
	for _, nl := range found {
		if p.blacklist.Has(nl) {
			continue
		}
		if p.addCandidate(nl, &pk) {
			p.generated[pk] = append(p.generated[pk], nl)
			p.explored++
		}
	}
}

// rollback removes every link generated by a state-action pair that has
// accumulated enough negative feedback (§6.3). Links removed this way
// are not blacklisted: they may include correct links that another
// state-action pair can rediscover. Links with a positive feedback
// majority survive.
func (p *partition) rollback(pk provKey) {
	removedAny := false
	for _, l := range p.generated[pk] {
		// Spare links the user has vouched for at least as often as
		// rejected: their own negatives will remove them if wrong.
		if p.posVotes[l] > 0 && p.posVotes[l] >= p.negVotes[l] {
			continue
		}
		if p.removeCandidate(l) {
			removedAny = true
		}
	}
	p.generated[pk] = nil
	p.rolledBack[pk] = true
	if removedAny {
		p.rollbacks++
	}
}

func (p *partition) resetEpisodeCounters() {
	p.explored, p.removed, p.rollbacks = 0, 0, 0
}
