package core

import (
	"fmt"
	"sort"
	"strings"

	"alex/internal/feature"
	"alex/internal/rdf"
)

// FeatureStat aggregates what the system has learned about one feature
// (predicate pair) across all states and partitions: how often it was
// chosen as an action, and the average of the action-value estimates.
// This surfaces the paper's §4.2 observation directly — distinctive
// features like (label, name) accumulate positive value, while
// non-distinctive ones like (rdf:type, rdf:type) go negative and stop
// being chosen.
type FeatureStat struct {
	Key feature.Key
	// States is the number of states whose action set includes the
	// feature and that have a value estimate for it.
	States int
	// MeanQ is the mean action-value estimate across those states.
	MeanQ float64
	// GreedyFor is the number of states whose current greedy action is
	// this feature.
	GreedyFor int
}

// FeatureStats returns learned per-feature statistics, most valuable
// first. It reflects the policy after the last completed episode.
func (s *System) FeatureStats() []FeatureStat {
	type acc struct {
		sum    float64
		n      int
		greedy int
	}
	byKey := map[feature.Key]*acc{}
	for _, p := range s.parts {
		table, policy := p.ctrl.Export()
		for _, e := range table {
			a := byKey[e.Action]
			if a == nil {
				a = &acc{}
				byKey[e.Action] = a
			}
			if e.N > 0 {
				a.sum += e.Sum / float64(e.N)
				a.n++
			}
		}
		for _, pe := range policy {
			a := byKey[pe.Action]
			if a == nil {
				a = &acc{}
				byKey[pe.Action] = a
			}
			a.greedy++
		}
	}
	out := make([]FeatureStat, 0, len(byKey))
	for k, a := range byKey {
		st := FeatureStat{Key: k, States: a.n, GreedyFor: a.greedy}
		if a.n > 0 {
			st.MeanQ = a.sum / float64(a.n)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].MeanQ != out[j].MeanQ {
			return out[i].MeanQ > out[j].MeanQ
		}
		if out[i].Key.P1 != out[j].Key.P1 {
			return out[i].Key.P1 < out[j].Key.P1
		}
		return out[i].Key.P2 < out[j].Key.P2
	})
	return out
}

// FormatFeatureStats renders feature statistics with predicate names
// resolved through the dictionary.
func FormatFeatureStats(d *rdf.Dict, stats []FeatureStat) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %-28s %-8s %-8s %s\n", "ds1 predicate", "ds2 predicate", "meanQ", "states", "greedy-for")
	for _, st := range stats {
		fmt.Fprintf(&b, "%-28s %-28s %-8.3f %-8d %d\n",
			d.Term(st.Key.P1).LocalName(), d.Term(st.Key.P2).LocalName(), st.MeanQ, st.States, st.GreedyFor)
	}
	return b.String()
}

// BlacklistSize returns the total number of blacklisted links.
func (s *System) BlacklistSize() int {
	n := 0
	for _, p := range s.parts {
		n += p.blacklist.Len()
	}
	return n
}

// RetiredActions returns the number of state-action pairs permanently
// retired by rollback.
func (s *System) RetiredActions() int {
	n := 0
	for _, p := range s.parts {
		n += len(p.rolledBack)
	}
	return n
}
