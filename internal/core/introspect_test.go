package core

import (
	"math/rand"
	"strings"
	"testing"

	"alex/internal/feedback"
	"alex/internal/synth"
)

func TestFeatureStatsLearnDistinctiveness(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, func(c *Config) { c.MaxEpisodes = 20 })
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))
	sys.Run(oracle, nil)

	stats := sys.FeatureStats()
	if len(stats) == 0 {
		t.Skip("no learned feature statistics in this world")
	}
	// Stats must be sorted by MeanQ descending.
	for i := 1; i < len(stats); i++ {
		if stats[i].MeanQ > stats[i-1].MeanQ {
			t.Fatalf("stats not sorted: %f after %f", stats[i].MeanQ, stats[i-1].MeanQ)
		}
	}
	// The shared-type feature, when present, should never be the top
	// feature: exploring it floods wrong links and earns negative
	// returns.
	typeID, okT := ds.Dict.Lookup(synth.P1Type)
	if okT && stats[0].Key.P1 == typeID && len(stats) > 1 {
		t.Errorf("non-distinctive type feature ranked best: %+v", stats[0])
	}
	out := FormatFeatureStats(ds.Dict, stats)
	if !strings.Contains(out, "meanQ") {
		t.Fatal("format missing header")
	}
}

func TestIntrospectionCounters(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))
	sys.Run(oracle, nil)
	if sys.BlacklistSize() < 0 {
		t.Fatal("negative blacklist size")
	}
	if sys.RetiredActions() < 0 {
		t.Fatal("negative retired count")
	}
	// After a full run on this trap-rich world something must have
	// been blacklisted.
	if sys.BlacklistSize() == 0 {
		t.Error("no links blacklisted after a full run with traps")
	}
}
