package core

import (
	"math/rand"
	"testing"

	"alex/internal/feedback"
)

func TestEpsilonDecayAnneals(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, func(c *Config) {
		c.Epsilon = 0.5
		c.EpsilonDecay = 0.5
		c.EpsilonMin = 0.05
		c.MaxEpisodes = 10
	})
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))
	for i := 0; i < 2; i++ {
		sys.RunEpisode(oracle)
	}
	if got := sys.parts[0].ctrl.Epsilon(); got != 0.125 {
		t.Fatalf("epsilon after 2 episodes = %f, want 0.125", got)
	}
	for i := 0; i < 6; i++ {
		sys.RunEpisode(oracle)
	}
	if got := sys.parts[0].ctrl.Epsilon(); got != 0.05 {
		t.Fatalf("epsilon floored at %f, want 0.05", got)
	}
}

func TestEpsilonDecayDisabledByDefault(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))
	sys.RunEpisode(oracle)
	if got := sys.parts[0].ctrl.Epsilon(); got != sys.cfg.Epsilon {
		t.Fatalf("epsilon changed without decay: %f", got)
	}
}

func TestEpsilonDecayConvergesFaster(t *testing.T) {
	ds := smallWorld(t)
	run := func(mutate func(*Config)) int {
		sys := newTestSystem(t, ds, mutate)
		oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))
		res := sys.Run(oracle, nil)
		return res.Episodes
	}
	fixed := run(func(c *Config) { c.MaxEpisodes = 60 })
	decayed := run(func(c *Config) { c.MaxEpisodes = 60; c.EpsilonDecay = 0.8 })
	t.Logf("episodes: fixed ε = %d, decayed ε = %d", fixed, decayed)
	// Annealing must not make convergence dramatically worse; it
	// usually helps. (Exact ordering is stochastic, so allow slack.)
	if decayed > fixed+20 {
		t.Fatalf("decay slowed convergence badly: %d vs %d", decayed, fixed)
	}
}
