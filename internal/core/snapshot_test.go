package core

import (
	"bytes"
	"math/rand"
	"testing"

	"alex/internal/eval"
	"alex/internal/feedback"
)

func TestSnapshotRoundTrip(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))

	// Learn for a few episodes, snapshot, learn more.
	for i := 0; i < 3; i++ {
		sys.RunEpisode(oracle)
	}
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	candsAtSave := sys.Candidates()
	epAtSave := sys.Episode()

	for i := 0; i < 3; i++ {
		sys.RunEpisode(oracle)
	}
	if sys.Candidates().SymmetricDiff(candsAtSave) == 0 && sys.Episode() == epAtSave {
		t.Skip("state did not change after snapshot; nothing to verify")
	}

	// Restore into a fresh, identically constructed system.
	restored := newTestSystem(t, ds, nil)
	if err := restored.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Episode() != epAtSave {
		t.Fatalf("episode = %d, want %d", restored.Episode(), epAtSave)
	}
	if restored.Candidates().SymmetricDiff(candsAtSave) != 0 {
		t.Fatalf("restored candidates differ by %d links", restored.Candidates().SymmetricDiff(candsAtSave))
	}

	// The restored system must keep learning sensibly.
	oracle2 := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(9)))
	res := restored.Run(oracle2, nil)
	m := eval.Compute(restored.Candidates(), ds.GroundTruth)
	if res.Episodes <= epAtSave {
		t.Fatalf("restored system did not continue: %d episodes", res.Episodes)
	}
	if m.F1 < 0.5 {
		t.Fatalf("restored system degraded: %v", m)
	}
}

func TestSnapshotPreservesLearnedPolicy(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))
	for i := 0; i < 4; i++ {
		sys.RunEpisode(oracle)
	}

	// Find a state with a learned greedy action.
	var found bool
	for _, p := range sys.parts {
		for l := range p.cands {
			if a, ok := p.ctrl.GreedyAction(l); ok {
				var buf bytes.Buffer
				if err := sys.Save(&buf); err != nil {
					t.Fatal(err)
				}
				restored := newTestSystem(t, ds, nil)
				if err := restored.Restore(&buf); err != nil {
					t.Fatal(err)
				}
				ra, rok := restored.parts[sys.partitionOf(l)].ctrl.GreedyAction(l)
				if !rok || ra != a {
					t.Fatalf("policy lost: %v/%v vs %v/true", ra, rok, a)
				}
				// Q values preserved too.
				if got, want := restored.parts[sys.partitionOf(l)].ctrl.Q(l, a), p.ctrl.Q(l, a); got != want {
					t.Fatalf("Q = %f, want %f", got, want)
				}
				found = true
				break
			}
		}
		if found {
			break
		}
	}
	if !found {
		t.Skip("no learned policy after 4 episodes")
	}
}

func TestRestoreRejectsPartitionMismatch(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	var buf bytes.Buffer
	if err := sys.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := newTestSystem(t, ds, func(c *Config) { c.Partitions = 3 })
	if err := other.Restore(&buf); err == nil {
		t.Fatal("partition mismatch accepted")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	ds := smallWorld(t)
	sys := newTestSystem(t, ds, nil)
	if err := sys.Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage accepted")
	}
}
