package fleet

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"alex/internal/cluster"
	"alex/internal/core"
	"alex/internal/faultnet"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/server"
)

// splitWorld builds eight dataset-1 entities whose names are chosen so
// a two-shard split puts four on each shard (tinyWorld's a0..a5 all
// hash to one shard at n=2, which would make every cross-shard batch
// degenerate). All eight initial links are crossed within their owner
// group, so rejecting them is a pure removal — no exploration noise —
// and a batch pairing one link from each group always spans owners.
func splitWorld(t testing.TB) *world {
	t.Helper()
	dict := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(dict)
	g2 := rdf.NewGraphWithDict(dict)
	label := rdf.IRI("http://ds1/label")
	name := rdf.IRI("http://ds2/name")
	nums := []int{1, 2, 3, 4, 10, 11, 12, 13}
	var queries []string
	for _, i := range nums {
		a := rdf.IRI(fmt.Sprintf("http://ds1/a%d", i))
		b := rdf.IRI(fmt.Sprintf("http://ds2/b%d", i))
		g1.Insert(rdf.Triple{S: a, P: label, O: rdf.Literal(fmt.Sprintf("thing %d", i))})
		g2.Insert(rdf.Triple{S: b, P: name, O: rdf.Literal(fmt.Sprintf("thing %d prime", i))})
		queries = append(queries,
			fmt.Sprintf("SELECT ?n WHERE { <%s> <%s> ?n . }", a.Value, name.Value),
			fmt.Sprintf("ASK { <%s> <%s> ?n . }", a.Value, name.Value),
		)
	}
	id := func(term rdf.Term) rdf.ID {
		i, ok := dict.Lookup(term)
		if !ok {
			t.Fatalf("unknown term %v", term)
		}
		return i
	}
	// Cross pairs within each owner group: (1,2)(3,4) and (10,11)(12,13).
	var initial []links.Link
	for _, p := range [][2]int{{1, 2}, {3, 4}, {10, 11}, {12, 13}} {
		for k := 0; k < 2; k++ {
			initial = append(initial, links.Link{
				E1: id(rdf.IRI(fmt.Sprintf("http://ds1/a%d", p[k]))),
				E2: id(rdf.IRI(fmt.Sprintf("http://ds2/b%d", p[1-k]))),
			})
		}
	}
	ranges := cluster.FleetRanges(2)
	if cluster.OwnerOf(ranges, "http://ds1/a1") == cluster.OwnerOf(ranges, "http://ds1/a10") {
		t.Fatal("splitWorld invariant broken: a1 and a10 hash to the same 2-shard owner")
	}
	return &world{
		dict: dict, g1: g1, g2: g2,
		sources: []federation.Source{{Name: "ds1", Graph: g1}, {Name: "ds2", Graph: g2}},
		e1:      g1.SubjectIDs(), e2: g2.SubjectIDs(),
		initial: initial,
		queries: queries,
	}
}

// Satellite: with every shard down the router must fail a query fast —
// an immediate 503 naming the unroutable shards, not a scatter that
// waits out the query timeout against dead sockets.
func TestRouterAllShardsDownFastFail(t *testing.T) {
	w := tinyWorld(t)
	f := startFleet(t, w, 2, server.Config{})
	f.waitConverged(t, len(w.initial))

	for i := range f.shards {
		f.https[i].Close()
		f.shards[i].Abort()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := f.router.healthView()
		if err == nil && h.Routable == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never marked the whole fleet down: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}

	start := time.Now()
	resp, err := http.Post(f.rts.URL+"/query", "application/json",
		strings.NewReader(`{"query":"SELECT ?n WHERE { <http://ds1/a0> <http://ds2/name> ?n . }"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := resp.Body.Close(); err != nil {
			t.Errorf("close response body: %v", err)
		}
	}()
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("all-down query took %s; must fail fast, not wait out a timeout", elapsed)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("all-down query status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Alex-Fleet-Degraded"); got != "shard-0,shard-1" {
		t.Fatalf("X-Alex-Fleet-Degraded = %q, want %q", got, "shard-0,shard-1")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("all-down 503 missing Retry-After")
	}
}

// Satellite: Router.Close during an in-flight health probe must cancel
// the probe and leave no goroutines behind — it cannot wait out the
// probe timeout, and the poll loop cannot outlive Close.
func TestRouterCloseDuringInflightPollNoLeak(t *testing.T) {
	// A listener that accepts and then says nothing: every probe hangs
	// until its context dies.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	connCh := make(chan net.Conn)
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			connCh <- c
		}
	}()
	collectDone := make(chan struct{})
	go func() {
		defer close(collectDone)
		for c := range connCh {
			conns = append(conns, c)
		}
	}()
	defer func() {
		if err := ln.Close(); err != nil {
			t.Errorf("close listener: %v", err)
		}
		<-acceptDone
		close(connCh)
		<-collectDone
		for _, c := range conns {
			_ = c.Close() // hung test conns; nothing to report
		}
	}()

	before := runtime.NumGoroutine()
	r, err := New(Config{
		Shards:             []string{"http://" + ln.Addr().String()},
		HealthInterval:     20 * time.Millisecond,
		HealthProbeTimeout: 500 * time.Millisecond,
		Breaker:            federation.BreakerConfig{Failures: 1000},
		Retry:              &server.RetryPolicy{MaxAttempts: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Let the poll loop start a probe, then close mid-flight.
	time.Sleep(60 * time.Millisecond)
	start := time.Now()
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 300*time.Millisecond {
		t.Fatalf("Close took %s; must cancel the in-flight probe, not wait it out", elapsed)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines leaked after Close: before=%d after=%d\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// pushHealth posts one shard health transition to the router and
// returns the HTTP status.
func pushHealth(t testing.TB, routerURL string, shardID int, status string) int {
	t.Helper()
	body := fmt.Sprintf(`{"shard_id":%d,"status":%q}`, shardID, status)
	resp, err := http.Post(routerURL+"/router/health", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := resp.Body.Close(); err != nil {
		t.Fatalf("close response body: %v", err)
	}
	return resp.StatusCode
}

// Tentpole: shard-pushed health transitions. "down" is trusted and
// immediate; "up" only triggers a verification probe, so a push for a
// live shard restores it instantly while a spoofed push for a dead
// shard cannot resurrect it. The poll interval is an hour, so any
// transition observed here came from the push path alone.
func TestRouterHealthPush(t *testing.T) {
	w := tinyWorld(t)
	f := startFleetWith(t, w, 2, server.Config{}, func(c *Config) {
		c.HealthInterval = time.Hour
		c.Breaker = federation.BreakerConfig{Failures: 5, Cooldown: 100 * time.Millisecond, Successes: 1}
	})
	f.waitConverged(t, len(w.initial))

	if st := pushHealth(t, f.rts.URL, 0, "down"); st != http.StatusNoContent {
		t.Fatalf("down push status = %d, want 204", st)
	}
	h, err := f.router.healthView()
	if err != nil {
		t.Fatal(err)
	}
	if h.Routable != 1 || h.Shards[0].Routable {
		t.Fatalf("down push not immediate: %+v", h)
	}

	// The shard is actually healthy, so an "up" push (which probes
	// before believing) restores it without waiting for a poll.
	if st := pushHealth(t, f.rts.URL, 0, "up"); st != http.StatusNoContent {
		t.Fatalf("up push status = %d, want 204", st)
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		h, err := f.router.healthView()
		if err == nil && h.Routable == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("up push never restored the live shard: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill shard 1 for real: a spoofed "up" push must NOT make it
	// routable — the verification probe fails against the corpse.
	f.https[1].Close()
	f.shards[1].Abort()
	if st := pushHealth(t, f.rts.URL, 1, "down"); st != http.StatusNoContent {
		t.Fatalf("down push status = %d, want 204", st)
	}
	for i := 0; i < 5; i++ {
		if st := pushHealth(t, f.rts.URL, 1, "up"); st != http.StatusNoContent {
			t.Fatalf("spoofed up push status = %d, want 204", st)
		}
		time.Sleep(50 * time.Millisecond)
	}
	h, err = f.router.healthView()
	if err != nil {
		t.Fatal(err)
	}
	if h.Shards[1].Routable {
		t.Fatal("spoofed up push resurrected a dead shard")
	}

	// Malformed pushes are rejected.
	if st := pushHealth(t, f.rts.URL, 99, "down"); st != http.StatusBadRequest {
		t.Fatalf("unknown-shard push status = %d, want 400", st)
	}
	if st := pushHealth(t, f.rts.URL, 0, "sideways"); st != http.StatusBadRequest {
		t.Fatalf("unknown-status push status = %d, want 400", st)
	}
}

// Tentpole acceptance: under a 100% slow fleet the hedging budget caps
// upstream amplification — total /query sub-requests stay at most 2×
// the client query count, while at least one hedge actually fires.
// faultnet's per-(host,path) counters are the measurement.
func TestRouterHedgedReadsBoundedAmplification(t *testing.T) {
	w := splitWorld(t)
	tr := faultnet.New(11, nil)
	f := startFleetWith(t, w, 2, server.Config{}, func(c *Config) {
		c.QueryFanout = 1
		c.Transport = tr
		c.Hedge = HedgeConfig{Delay: 10 * time.Millisecond}
	})
	f.waitConverged(t, len(w.initial))
	hosts := make([]string, f.n)
	for i, a := range f.addrs {
		hosts[i] = strings.TrimPrefix(a, "http://")
	}

	// Every shard is slow: the pathological case where naive hedging
	// would double (or worse) the upstream rate for zero benefit.
	tr.SetFaults("", faultnet.Faults{Latency: 120 * time.Millisecond})

	const m = 30
	for i := 0; i < m; i++ {
		if _, err := f.rclient.Query(w.queries[i%len(w.queries)]); err != nil {
			t.Fatalf("query %d under slow fleet: %v", i, err)
		}
	}

	total := 0
	for _, h := range hosts {
		total += tr.Requests(h, "/query")
	}
	if total <= m {
		t.Fatalf("no hedges fired: %d upstream /query attempts for %d queries", total, m)
	}
	if total > 2*m {
		t.Fatalf("hedging amplified upstream load: %d /query attempts for %d queries (bound: %d)", total, m, 2*m)
	}
	if f.router.metrics.hedges.Value() == 0 {
		t.Fatal("hedge counter never moved")
	}
	if f.router.metrics.hedgeBudgetDeny.Value() == 0 {
		t.Fatal("budget never denied a hedge under a 100% slow fleet")
	}
}

// The chaos drill acceptance, in-process: under seeded latency, drops,
// 5xx bursts, an asymmetric partition and a SIGKILL'd shard, every
// acked cross-shard feedback batch survives (journal audit) and the
// fleet's answers stay canonically identical to a single node that saw
// the same verdicts.
func TestRouterChaosDrillZeroAckedLoss(t *testing.T) {
	w := splitWorld(t)
	n := 2
	tr := faultnet.New(20260808, nil)
	base := server.Config{
		DataDir:       t.TempDir(),
		FlushInterval: 20 * time.Millisecond,
		Fleet:         &server.FleetConfig{TxnResolveAfter: 500 * time.Millisecond},
	}
	f := startFleetWith(t, w, n, base, func(c *Config) {
		c.Transport = tr
	})
	f.waitConverged(t, len(w.initial))
	hosts := make([]string, n)
	for i, a := range f.addrs {
		hosts[i] = strings.TrimPrefix(a, "http://")
	}

	chaos := faultnet.Faults{
		Latency:  2 * time.Millisecond,
		Jitter:   8 * time.Millisecond,
		DropProb: 0.15,
		ErrProb:  0.05,
	}
	tr.SetFaults("", chaos)

	// Three batches, each pairing one link from each owner group, so
	// every ack is a cross-shard prepare/commit under fire.
	batches := [][]server.LinkJSON{
		{{E1: "http://ds1/a1", E2: "http://ds2/b2"}, {E1: "http://ds1/a10", E2: "http://ds2/b11"}},
		{{E1: "http://ds1/a2", E2: "http://ds2/b1"}, {E1: "http://ds1/a11", E2: "http://ds2/b10"}},
		{{E1: "http://ds1/a3", E2: "http://ds2/b4"}, {E1: "http://ds1/a12", E2: "http://ds2/b13"}},
	}
	var acked []server.LinkJSON
	sendBatch := func(b []server.LinkJSON) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for {
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			status, err := f.rclient.FeedbackResult(ctx, b, false)
			cancel()
			if err == nil && status == http.StatusAccepted {
				acked = append(acked, b...)
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("batch %v never acked: status %d, err %v", b, status, err)
			}
			time.Sleep(25 * time.Millisecond)
		}
	}

	sendBatch(batches[0])

	// SIGKILL shard 1 right after the ack — the commit for batch 0 may
	// still be in flight, so recovery + the txn resolver must finish
	// the job from the journaled prepare alone.
	f.https[1].Close()
	f.shards[1].Abort()
	f.restartShard(t, w, 1, base)
	newClient := server.NewClient(f.addrs[1])
	newClient.SetRetryPolicy(server.RetryPolicy{MaxAttempts: 1})
	f.clients[1] = newClient
	sendBatch(batches[1])

	// Asymmetric partition: the router loses shard 0 while shard 0
	// still reaches everyone. The batch retries until the heal lands.
	tr.SetFaults(hosts[0], faultnet.Faults{Partition: true})
	heal := time.AfterFunc(400*time.Millisecond, func() { tr.SetFaults(hosts[0], chaos) })
	defer heal.Stop()
	sendBatch(batches[2])

	// Quiet the network and let the fleet settle.
	tr.SetFaults("", faultnet.Faults{})
	for _, h := range hosts {
		tr.ClearFaults(h)
	}
	want := len(w.initial) - len(acked)
	f.waitConverged(t, want)

	// Journal audit: the killed shard rebuilt its state from disk, and
	// every acked rejection is gone from every shard and the router.
	if rec := f.shards[1].Recovery(); rec.CheckpointSeq == 0 && rec.Replayed == 0 {
		t.Fatal("restarted shard recovered nothing — acked feedback at risk")
	}
	audit := func(c *server.Client) {
		ls := waitServed(t, c, want)
		for _, l := range ls.Links {
			for _, r := range acked {
				if l == r {
					t.Fatalf("acked rejection %v still served", r)
				}
			}
		}
	}
	for _, c := range f.clients {
		audit(c)
	}
	audit(f.rclient)
	if got := f.router.metrics.feedbackTxns.Value(); got < uint64(len(batches)) {
		t.Fatalf("feedback txn counter = %d, want >= %d", got, len(batches))
	}

	// Answer identity: a single node given the same verdicts must
	// canonicalize identically on every query.
	single, err := server.New(
		core.New(w.g1, w.g2, w.e1, w.e2, w.initial, core.DefaultConfig()),
		w.dict, w.sources, server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	sts := httptest.NewServer(single.Handler())
	t.Cleanup(func() {
		sts.Close()
		if err := single.Close(); err != nil {
			t.Errorf("close single node: %v", err)
		}
	})
	sc := server.NewClient(sts.URL)
	if err := sc.Feedback(acked, false); err != nil {
		t.Fatal(err)
	}
	waitServed(t, sc, want)
	for _, q := range w.queries {
		sres, err := sc.Query(q)
		if err != nil {
			t.Fatalf("single-node query %q: %v", q, err)
		}
		rres, err := f.rclient.Query(q)
		if err != nil {
			t.Fatalf("router query %q: %v", q, err)
		}
		if canon(rres) != canon(sres) {
			t.Fatalf("post-drill answer diverges for %q:\nrouter:\n%s\nsingle:\n%s", q, canon(rres), canon(sres))
		}
	}
}
