// Hedged failover reads: because every shard serves full reads off the
// replicated snapshots, a slow shard's sub-query can be re-issued to
// any healthy peer and the first answer wins. The hedge fires after an
// adaptive delay (a percentile of recently observed sub-query
// latencies, so only genuine stragglers pay it) and is limited by a
// token-bucket retry budget: every primary sub-query earns a fraction
// of a token, every hedge spends one, so hedging can never multiply
// the upstream request rate into a brownout — under a 100% slow fleet
// the extra load is bounded by BudgetRatio, not by the timeout.
package fleet

import (
	"sort"
	"sync"
	"time"
)

// HedgeConfig tunes hedged failover reads.
type HedgeConfig struct {
	// Disabled turns hedging off entirely.
	Disabled bool
	// Delay, when > 0, is a fixed hedge delay. 0 selects the adaptive
	// delay: the Percentile of recent sub-query latencies, clamped to
	// [MinDelay, MaxDelay].
	Delay time.Duration
	// Percentile of observed latency after which a hedge fires
	// (0 means 0.95).
	Percentile float64
	// MinDelay/MaxDelay clamp the adaptive delay (defaults 10ms / 2s).
	// Before any latency is observed the delay is MaxDelay.
	MinDelay time.Duration
	MaxDelay time.Duration
	// BudgetRatio is the hedge tokens earned per primary sub-query
	// (0 means 0.1: at most ~10% extra upstream load from hedging).
	BudgetRatio float64
	// BudgetBurst caps the token bucket (0 means 8).
	BudgetBurst float64
}

func (c HedgeConfig) withDefaults() HedgeConfig {
	if c.Percentile <= 0 || c.Percentile > 1 {
		c.Percentile = 0.95
	}
	if c.MinDelay <= 0 {
		c.MinDelay = 10 * time.Millisecond
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Second
	}
	if c.BudgetRatio <= 0 {
		c.BudgetRatio = 0.1
	}
	if c.BudgetBurst <= 0 {
		c.BudgetBurst = 8
	}
	return c
}

// hedgeWindow is the latency ring-buffer size; enough history for a
// stable percentile, small enough to track load shifts.
const hedgeWindow = 128

// hedger tracks sub-query latencies and meters hedges. Safe for
// concurrent use.
type hedger struct {
	cfg HedgeConfig

	mu      sync.Mutex
	samples [hedgeWindow]time.Duration
	n       int // filled entries (caps at hedgeWindow)
	idx     int // next write position
	tokens  float64
}

func newHedger(cfg HedgeConfig) *hedger {
	c := cfg.withDefaults()
	return &hedger{cfg: c, tokens: c.BudgetBurst}
}

// observe records a successful primary sub-query latency.
func (h *hedger) observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples[h.idx] = d
	h.idx = (h.idx + 1) % hedgeWindow
	if h.n < hedgeWindow {
		h.n++
	}
}

// delay returns how long to wait before hedging the current sub-query.
func (h *hedger) delay() time.Duration {
	if h.cfg.Delay > 0 {
		return h.cfg.Delay
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return h.cfg.MaxDelay
	}
	tmp := make([]time.Duration, h.n)
	copy(tmp, h.samples[:h.n])
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(float64(h.n) * h.cfg.Percentile)
	if i >= h.n {
		i = h.n - 1
	}
	d := tmp[i]
	if d < h.cfg.MinDelay {
		d = h.cfg.MinDelay
	}
	if d > h.cfg.MaxDelay {
		d = h.cfg.MaxDelay
	}
	return d
}

// earn credits the budget for one primary sub-query.
func (h *hedger) earn() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.tokens += h.cfg.BudgetRatio
	if h.tokens > h.cfg.BudgetBurst {
		h.tokens = h.cfg.BudgetBurst
	}
}

// take spends one token; false means the budget is exhausted and the
// hedge must not fire.
func (h *hedger) take() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.tokens < 1 {
		return false
	}
	h.tokens--
	return true
}
