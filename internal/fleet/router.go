// Package fleet is the scatter-gather router in front of a sharded
// alexd fleet (ISSUE 6; the multi-machine reading of paper §6.2's
// independent partitions).
//
// N shards each own a contiguous range of the entity-hash space
// (cluster.FleetRanges) and replicate their link snapshots to each
// other, so EVERY shard serves full reads. The router is stateless on
// top of that:
//
//   - /feedback is consistent-hash routed: the links of one request are
//     grouped by owning shard (cluster.OwnerOf on the E1 IRI) and each
//     group goes to its owner, which journals and fsyncs before acking
//     — the fleet ack is as durable as the single-node one. Delivery
//     is at-least-once per group; ALEX feedback tolerates duplicates.
//   - /query scatters to the routable shards and gathers with the
//     canonical merge in merge.go, which returns exactly one shard's
//     answer when the fleet is converged. Shards that failed or were
//     routed around are reported in the X-Alex-Fleet-Degraded header;
//     the body stays wire-identical to a single-node answer.
//   - Failover: a health loop polls every shard's /healthz behind a
//     per-shard circuit breaker (the PR-2 machinery, reused from
//     internal/federation). A dead shard is routed around — reads
//     survive any N-1 failures because replicas are full; writes for
//     the dead shard's range are refused with 503 + Retry-After (the
//     owner is the only durable home for its links; rerouting them
//     would fork ownership). Data-path failures feed the same breakers
//     so the router reacts faster than the polling interval.
//
// The router holds no link state and no journal: it can be restarted
// or replicated freely, and every durability promise is exactly one
// shard's fsync-before-ack.
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alex/internal/cluster"
	"alex/internal/federation"
	"alex/internal/server"
)

// Config tunes the router.
type Config struct {
	// Shards lists the shard addresses in shard-ID order; the fleet
	// size and hash ranges are derived from its length.
	Shards []string
	// HealthInterval is the /healthz polling period. 0 means 1s.
	HealthInterval time.Duration
	// QueryTimeout caps a fan-out round; requests may lower it via
	// timeout_ms. 0 means 10s.
	QueryTimeout time.Duration
	// QueryFanout is how many routable shards each /query scatters to:
	// 0 means all of them (the gather then cross-checks every replica),
	// K >= 1 picks K round-robin — with full replicas one is enough for
	// a correct answer, so fanout 1 is the throughput mode.
	QueryFanout int
	// Breaker tunes the per-shard circuit breakers. Zero values take
	// the federation defaults.
	Breaker federation.BreakerConfig
	// Retry is the per-shard client retry policy. Zero means
	// server.DefaultRetryPolicy.
	Retry *server.RetryPolicy
}

const (
	defaultHealthInterval = time.Second
	defaultQueryTimeout   = 10 * time.Second
	// healthProbeTimeout bounds one /healthz poll, so a hung shard
	// cannot stall the loop past its interval.
	healthProbeTimeout = 2 * time.Second
)

// shard is the router's view of one fleet member.
type shard struct {
	id      int
	client  *server.Client
	breaker *federation.Breaker
	// routable is the health loop's verdict, read lock-free by the
	// data path. health caches the last successful /healthz response.
	routable atomic.Bool
	health   atomic.Pointer[server.HealthResponse]
}

// Router scatter-gathers queries and hash-routes feedback across the
// fleet.
type Router struct {
	cfg    Config
	ranges []cluster.HashRange
	shards []*shard
	rr     atomic.Uint64 // round-robin cursor for QueryFanout > 0

	mux  http.Handler
	reg  *server.Registry
	stop chan struct{}
	done chan struct{}

	closing sync.Once
	metrics routerMetrics
}

type routerMetrics struct {
	queries        *server.Counter
	queryErrors    *server.Counter
	queryFanouts   *server.Histogram
	fleetDegraded  *server.Counter
	feedback       *server.Counter
	feedbackErrors *server.Counter
	feedbackSplits *server.Histogram
	healthPolls    *server.Counter
	healthFailures *server.Counter
	panics         *server.Counter
}

// New builds a router over the shard address list and starts its
// health loop. The first polling round runs synchronously, so the
// router never starts blind: shards that are already up are routable
// before New returns.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) < 1 {
		return nil, fmt.Errorf("fleet: router needs at least one shard address")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = defaultHealthInterval
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = defaultQueryTimeout
	}
	retry := server.DefaultRetryPolicy()
	if cfg.Retry != nil {
		retry = *cfg.Retry
	}
	r := &Router{
		cfg:    cfg,
		ranges: cluster.FleetRanges(len(cfg.Shards)),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		reg:    server.NewRegistry(),
	}
	for id, addr := range cfg.Shards {
		c := server.NewClient(addr)
		c.SetRetryPolicy(retry)
		r.shards = append(r.shards, &shard{
			id:      id,
			client:  c,
			breaker: federation.NewBreaker(cfg.Breaker),
		})
	}
	r.registerMetrics()
	r.mux = r.routes()
	r.pollAll()
	go r.healthLoop()
	return r, nil
}

func (r *Router) registerMetrics() {
	m := &r.metrics
	m.queries = r.reg.Counter("alexrouter_queries_total", "Queries scattered across the fleet.")
	m.queryErrors = r.reg.Counter("alexrouter_query_errors_total", "Queries that failed on every targeted shard.")
	m.queryFanouts = r.reg.Histogram("alexrouter_query_fanout", "Shards targeted per query.", []float64{1, 2, 4, 8, 16})
	m.fleetDegraded = r.reg.Counter("alexrouter_fleet_degraded_total", "Queries answered with at least one shard routed around.")
	m.feedback = r.reg.Counter("alexrouter_feedback_total", "Feedback requests routed to owning shards.")
	m.feedbackErrors = r.reg.Counter("alexrouter_feedback_errors_total", "Feedback requests refused (owner down, backpressure, bad links).")
	m.feedbackSplits = r.reg.Histogram("alexrouter_feedback_split", "Owner groups per feedback request.", []float64{1, 2, 4, 8})
	m.healthPolls = r.reg.Counter("alexrouter_health_polls_total", "Shard health probes issued.")
	m.healthFailures = r.reg.Counter("alexrouter_health_failures_total", "Shard health probes that failed.")
	m.panics = r.reg.Counter("alexrouter_http_panics_total", "Handler panics recovered.")
	r.reg.GaugeFunc("alexrouter_shards", "Fleet size.", func() float64 {
		return float64(len(r.shards))
	})
	r.reg.GaugeFunc("alexrouter_routable_shards", "Shards currently considered routable.", func() float64 {
		n := 0
		for _, sh := range r.shards {
			if sh.routable.Load() {
				n++
			}
		}
		return float64(n)
	})
	for _, sh := range r.shards {
		sh := sh
		r.reg.LabeledGaugeFunc("alexrouter_shard_routable",
			fmt.Sprintf("shard=\"%d\"", sh.id),
			"1 when the shard is routable.",
			func() float64 {
				if sh.routable.Load() {
					return 1
				}
				return 0
			})
		r.reg.LabeledGaugeFunc("alexrouter_shard_breaker_state",
			fmt.Sprintf("shard=\"%d\"", sh.id),
			"Per-shard circuit state: 0 closed, 1 open, 2 half-open.",
			func() float64 { return float64(sh.breaker.State()) })
	}
}

// healthLoop polls every shard each interval. Stopped by Close; the
// done channel closes when the loop exits.
func (r *Router) healthLoop() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.pollAll()
		}
	}
}

// pollAll probes every shard once. The breaker throttles probes to a
// dead shard: while open, Allow() fails and the shard stays
// unroutable without a network round trip; after the cooldown the
// half-open probe is the recovery path.
func (r *Router) pollAll() {
	for _, sh := range r.shards {
		if !sh.breaker.Allow() {
			sh.routable.Store(false)
			continue
		}
		r.metrics.healthPolls.Inc()
		ctx, cancel := context.WithTimeout(context.Background(), healthProbeTimeout)
		h, err := sh.client.HealthzContext(ctx)
		cancel()
		ok := err == nil && h.Status == "ok"
		sh.breaker.Record(ok)
		sh.routable.Store(ok)
		if ok {
			sh.health.Store(h)
		} else {
			r.metrics.healthFailures.Inc()
		}
	}
}

// markDown records a data-path failure: the breaker learns about it
// and the shard is immediately unroutable, without waiting for the
// next poll.
func (r *Router) markDown(sh *shard) {
	sh.breaker.Record(false)
	sh.routable.Store(false)
}

// routableShards returns the currently routable shards in ID order.
func (r *Router) routableShards() []*shard {
	out := make([]*shard, 0, len(r.shards))
	for _, sh := range r.shards {
		if sh.routable.Load() {
			out = append(out, sh)
		}
	}
	return out
}

// queryTargets picks the shards one query scatters to: all routable
// shards, or QueryFanout of them round-robin.
func (r *Router) queryTargets() []*shard {
	avail := r.routableShards()
	k := r.cfg.QueryFanout
	if k <= 0 || k >= len(avail) {
		return avail
	}
	start := int(r.rr.Add(1)-1) % len(avail)
	out := make([]*shard, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, avail[(start+i)%len(avail)])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Handler returns the router's root HTTP handler.
func (r *Router) Handler() http.Handler { return r.mux }

// Registry exposes the router's metrics registry.
func (r *Router) Registry() *server.Registry { return r.reg }

// Close stops the health loop. In-flight requests finish; the router
// holds no state to drain.
func (r *Router) Close() error {
	r.closing.Do(func() { close(r.stop) })
	<-r.done
	for _, sh := range r.shards {
		sh.client.CloseIdleConnections()
	}
	return nil
}

func (r *Router) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", r.handleQuery)
	mux.HandleFunc("/feedback", r.handleFeedback)
	mux.HandleFunc("/links", r.handleLinks)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/metrics", r.handleMetrics)
	return r.recoverMiddleware(mux)
}

func (r *Router) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				r.metrics.panics.Inc()
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, req)
	})
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var qr server.QueryRequest
	if err := json.NewDecoder(req.Body).Decode(&qr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if qr.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty query"})
		return
	}
	timeout := r.cfg.QueryTimeout
	if qr.TimeoutMillis > 0 {
		if t := time.Duration(qr.TimeoutMillis) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(req.Context(), timeout)
	defer cancel()

	targets := r.queryTargets()
	if len(targets) == 0 {
		r.metrics.queryErrors.Inc()
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no routable shard"})
		return
	}
	r.metrics.queryFanouts.Observe(float64(len(targets)))

	// Scatter: one goroutine per target, results slotted by position so
	// the gather keeps shard-ID order (the merge's first-seen order and
	// therefore the answer's row order is deterministic).
	resps := make([]*server.QueryResponse, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, sh := range targets {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			res, err := sh.client.QueryContext(ctx, qr.Query)
			if err != nil {
				errs[i] = err
				return
			}
			resps[i] = res
		}(i, sh)
	}
	wg.Wait()

	answered := 0
	var missed []string
	var firstErr error
	for i, sh := range targets {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			if ctx.Err() == nil {
				r.markDown(sh)
			}
			missed = append(missed, fmt.Sprintf("shard-%d", sh.id))
			continue
		}
		answered++
	}
	if answered == 0 {
		r.metrics.queryErrors.Inc()
		if ctx.Err() != nil {
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "query deadline exceeded"})
			return
		}
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: fmt.Sprintf("no shard answered: %v", firstErr)})
		return
	}
	// Shards routed around before the scatter are degraded too: the
	// answer is still full (replicas are), but cross-checking was
	// narrower than the fleet.
	for _, sh := range r.shards {
		if !sh.routable.Load() && !contains(missed, fmt.Sprintf("shard-%d", sh.id)) && !inTargets(targets, sh) {
			missed = append(missed, fmt.Sprintf("shard-%d", sh.id))
		}
	}
	out := mergeResponses(resps)
	r.metrics.queries.Inc()
	if len(out.DegradedSources) > 0 {
		w.Header().Set("X-Alex-Degraded", strings.Join(out.DegradedSources, ","))
	}
	if len(missed) > 0 && r.cfg.QueryFanout <= 0 {
		// Only meaningful in scatter-to-all mode: with a deliberate
		// fanout K, untargeted shards are load balancing, not damage.
		sort.Strings(missed)
		r.metrics.fleetDegraded.Inc()
		w.Header().Set("X-Alex-Fleet-Degraded", strings.Join(missed, ","))
	}
	writeJSON(w, http.StatusOK, out)
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func inTargets(targets []*shard, sh *shard) bool {
	for _, t := range targets {
		if t == sh {
			return true
		}
	}
	return false
}

func (r *Router) handleFeedback(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var fr server.FeedbackRequest
	if err := json.NewDecoder(req.Body).Decode(&fr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(fr.Links) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no links in feedback"})
		return
	}
	// Group the links by owning shard. One answer row can cross links
	// owned by different shards; each group must reach ITS owner — the
	// only node whose journal makes the ack durable for those links.
	groups := make(map[int][]server.LinkJSON)
	for _, lj := range fr.Links {
		owner := cluster.OwnerOf(r.ranges, lj.E1)
		groups[owner] = append(groups[owner], lj)
	}
	r.metrics.feedbackSplits.Observe(float64(len(groups)))
	// All owners must be routable up front: a partial delivery would
	// ack what landed and silently drop the rest. (Partial delivery can
	// still happen if an owner dies mid-flight — then the client gets a
	// retryable error and at-least-once semantics apply.)
	for owner := range groups {
		if !r.shards[owner].routable.Load() {
			r.metrics.feedbackErrors.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error: fmt.Sprintf("shard %d (owner of %d of the links) is not routable", owner, len(groups[owner])),
			})
			return
		}
	}

	owners := make([]int, 0, len(groups))
	for owner := range groups {
		owners = append(owners, owner)
	}
	sort.Ints(owners)
	statuses := make([]int, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, owner := range owners {
		wg.Add(1)
		go func(i, owner int) {
			defer wg.Done()
			statuses[i], errs[i] = r.shards[owner].client.FeedbackResult(req.Context(), groups[owner], fr.Approve)
		}(i, owner)
	}
	wg.Wait()

	worst := http.StatusAccepted
	var msg string
	for i, owner := range owners {
		status, err := statuses[i], errs[i]
		if err != nil && status == 0 {
			// Transport failure: the owner may or may not have journaled
			// the group. Surface a retryable 503 and let the breaker react.
			r.markDown(r.shards[owner])
			status = http.StatusServiceUnavailable
		}
		if status > worst {
			worst = status
			if err != nil {
				msg = fmt.Sprintf("shard %d: %v", owner, err)
			} else {
				msg = fmt.Sprintf("shard %d: HTTP %d", owner, status)
			}
		}
	}
	if worst != http.StatusAccepted {
		r.metrics.feedbackErrors.Inc()
		if worst == http.StatusTooManyRequests || worst >= 500 {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, worst, errorResponse{Error: msg})
		return
	}
	r.metrics.feedback.Inc()
	writeJSON(w, http.StatusAccepted, server.FeedbackResponse{Queued: true, Links: len(fr.Links)})
}

// handleLinks proxies the full link set from the freshest routable
// shard (every replica serves full reads; freshest = highest engine
// episode seen by the health loop, so the answer lags replication the
// least).
func (r *Router) handleLinks(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	avail := r.routableShards()
	sort.SliceStable(avail, func(i, j int) bool {
		hi, hj := avail[i].health.Load(), avail[j].health.Load()
		ei, ej := -1, -1
		if hi != nil {
			ei = hi.Episode
		}
		if hj != nil {
			ej = hj.Episode
		}
		return ei > ej
	})
	for _, sh := range avail {
		ls, err := sh.client.Links()
		if err != nil {
			r.markDown(sh)
			continue
		}
		writeJSON(w, http.StatusOK, ls)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no routable shard"})
}

// ShardStatus is the router's view of one shard, for /healthz.
type ShardStatus struct {
	ID       int               `json:"id"`
	Addr     string            `json:"addr"`
	Range    cluster.HashRange `json:"range"`
	Routable bool              `json:"routable"`
	Breaker  string            `json:"breaker"`
	// Episode/CandidateLinks/SnapshotVersion echo the last successful
	// health probe (zero before the first one).
	Episode         int    `json:"episode"`
	CandidateLinks  int    `json:"candidate_links"`
	SnapshotVersion uint64 `json:"snapshot_version"`
}

// RouterHealth reports the fleet as the router sees it. Status is
// "ok" (all shards routable), "degraded" (some), or "down" (none).
type RouterHealth struct {
	Status   string        `json:"status"`
	Shards   []ShardStatus `json:"shards"`
	Routable int           `json:"routable"`
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	out := RouterHealth{Shards: make([]ShardStatus, 0, len(r.shards))}
	for _, sh := range r.shards {
		st := ShardStatus{
			ID:       sh.id,
			Addr:     sh.client.Addr(),
			Range:    r.ranges[sh.id],
			Routable: sh.routable.Load(),
			Breaker:  sh.breaker.State().String(),
		}
		if h := sh.health.Load(); h != nil {
			st.Episode = h.Episode
			st.CandidateLinks = h.CandidateLinks
			st.SnapshotVersion = h.SnapshotVersion
		}
		if st.Routable {
			out.Routable++
		}
		out.Shards = append(out.Shards, st)
	}
	switch out.Routable {
	case len(r.shards):
		out.Status = "ok"
	case 0:
		out.Status = "down"
	default:
		out.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.reg.WritePrometheus(w)
}
