// Package fleet is the scatter-gather router in front of a sharded
// alexd fleet (ISSUE 6; the multi-machine reading of paper §6.2's
// independent partitions).
//
// N shards each own a contiguous range of the entity-hash space
// (cluster.FleetRanges) and replicate their link snapshots to each
// other, so EVERY shard serves full reads. The router is stateless on
// top of that:
//
//   - /feedback is consistent-hash routed: the links of one request are
//     grouped by owning shard (cluster.OwnerOf on the E1 IRI) and each
//     group goes to its owner, which journals and fsyncs before acking
//     — the fleet ack is as durable as the single-node one. Delivery
//     is at-least-once per group; ALEX feedback tolerates duplicates.
//   - /query scatters to the routable shards and gathers with the
//     canonical merge in merge.go, which returns exactly one shard's
//     answer when the fleet is converged. Shards that failed or were
//     routed around are reported in the X-Alex-Fleet-Degraded header;
//     the body stays wire-identical to a single-node answer.
//   - Failover: a health loop polls every shard's /healthz behind a
//     per-shard circuit breaker (the PR-2 machinery, reused from
//     internal/federation). A dead shard is routed around — reads
//     survive any N-1 failures because replicas are full; writes for
//     the dead shard's range are refused with 503 + Retry-After (the
//     owner is the only durable home for its links; rerouting them
//     would fork ownership). Data-path failures feed the same breakers
//     so the router reacts faster than the polling interval.
//
// The router holds no link state and no journal: it can be restarted
// or replicated freely, and every durability promise is exactly one
// shard's fsync-before-ack.
package fleet

import (
	"context"
	cryptorand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"alex/internal/cluster"
	"alex/internal/federation"
	"alex/internal/server"
)

// Config tunes the router.
type Config struct {
	// Shards lists the shard addresses in shard-ID order; the fleet
	// size and hash ranges are derived from its length.
	Shards []string
	// HealthInterval is the /healthz polling period. 0 means 1s.
	HealthInterval time.Duration
	// QueryTimeout caps a fan-out round; requests may lower it via
	// timeout_ms. 0 means 10s.
	QueryTimeout time.Duration
	// QueryFanout is how many routable shards each /query scatters to:
	// 0 means all of them (the gather then cross-checks every replica),
	// K >= 1 picks K round-robin — with full replicas one is enough for
	// a correct answer, so fanout 1 is the throughput mode.
	QueryFanout int
	// Breaker tunes the per-shard circuit breakers. Zero values take
	// the federation defaults.
	Breaker federation.BreakerConfig
	// Retry is the per-shard client retry policy. Zero means
	// server.DefaultRetryPolicy.
	Retry *server.RetryPolicy
	// HealthProbeTimeout bounds one /healthz poll, so a hung shard
	// cannot stall the loop past its interval. 0 means 2s.
	HealthProbeTimeout time.Duration
	// Hedge tunes hedged failover reads (see hedge.go). The zero value
	// enables hedging with adaptive delay and a 10% retry budget.
	Hedge HedgeConfig
	// Transport, when non-nil, replaces the HTTP transport of every
	// shard client — the chaos tests inject a faultnet.Transport here.
	Transport http.RoundTripper
}

const (
	defaultHealthInterval     = time.Second
	defaultQueryTimeout       = 10 * time.Second
	defaultHealthProbeTimeout = 2 * time.Second
	// prepareTimeout bounds the prepare round of a cross-shard feedback
	// batch. It must stay well under the shards' TxnResolveAfter grace
	// period: a shard resolver reading a peer's "unknown" as
	// never-prepared is only sound once no prepare is still in flight.
	prepareTimeout = 5 * time.Second
	// commitAttempts bounds the async commit worker's retries per owner
	// before it hands the transaction over to the owners' resolvers.
	commitAttempts = 5
)

// shard is the router's view of one fleet member.
type shard struct {
	id      int
	client  *server.Client
	breaker *federation.Breaker
	// routable is the health loop's verdict, read lock-free by the
	// data path. health caches the last successful /healthz response.
	routable atomic.Bool
	health   atomic.Pointer[server.HealthResponse]
}

// Router scatter-gathers queries and hash-routes feedback across the
// fleet.
type Router struct {
	cfg    Config
	ranges []cluster.HashRange
	shards []*shard
	rr     atomic.Uint64 // round-robin cursor for QueryFanout > 0
	hedge  *hedger

	mux  http.Handler
	reg  *server.Registry
	stop chan struct{}
	done chan struct{}
	// baseCtx scopes every background request the router issues (health
	// probes, async commits): Close cancels it, so shutdown never waits
	// out a probe timeout, and wg tracks the goroutines doing that work.
	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	closing sync.Once
	metrics routerMetrics
}

type routerMetrics struct {
	queries         *server.Counter
	queryErrors     *server.Counter
	queryFanouts    *server.Histogram
	fleetDegraded   *server.Counter
	feedback        *server.Counter
	feedbackErrors  *server.Counter
	feedbackSplits  *server.Histogram
	feedbackTxns    *server.Counter
	txnCommitRetry  *server.Counter
	hedges          *server.Counter
	hedgeWins       *server.Counter
	hedgeBudgetDeny *server.Counter
	healthPolls     *server.Counter
	healthFailures  *server.Counter
	healthPushes    *server.Counter
	panics          *server.Counter
}

// New builds a router over the shard address list and starts its
// health loop. The first polling round runs synchronously, so the
// router never starts blind: shards that are already up are routable
// before New returns.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) < 1 {
		return nil, fmt.Errorf("fleet: router needs at least one shard address")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = defaultHealthInterval
	}
	if cfg.QueryTimeout <= 0 {
		cfg.QueryTimeout = defaultQueryTimeout
	}
	if cfg.HealthProbeTimeout <= 0 {
		cfg.HealthProbeTimeout = defaultHealthProbeTimeout
	}
	retry := server.DefaultRetryPolicy()
	if cfg.Retry != nil {
		retry = *cfg.Retry
	}
	baseCtx, cancel := context.WithCancel(context.Background())
	r := &Router{
		cfg:     cfg,
		ranges:  cluster.FleetRanges(len(cfg.Shards)),
		hedge:   newHedger(cfg.Hedge),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		baseCtx: baseCtx,
		cancel:  cancel,
		reg:     server.NewRegistry(),
	}
	for id, addr := range cfg.Shards {
		c := server.NewClient(addr)
		c.SetRetryPolicy(retry)
		if cfg.Transport != nil {
			c.SetTransport(cfg.Transport)
		}
		r.shards = append(r.shards, &shard{
			id:      id,
			client:  c,
			breaker: federation.NewBreaker(cfg.Breaker),
		})
	}
	r.registerMetrics()
	r.mux = r.routes()
	r.pollAll()
	go r.healthLoop()
	return r, nil
}

func (r *Router) registerMetrics() {
	m := &r.metrics
	m.queries = r.reg.Counter("alexrouter_queries_total", "Queries scattered across the fleet.")
	m.queryErrors = r.reg.Counter("alexrouter_query_errors_total", "Queries that failed on every targeted shard.")
	m.queryFanouts = r.reg.Histogram("alexrouter_query_fanout", "Shards targeted per query.", []float64{1, 2, 4, 8, 16})
	m.fleetDegraded = r.reg.Counter("alexrouter_fleet_degraded_total", "Queries answered with at least one shard routed around.")
	m.feedback = r.reg.Counter("alexrouter_feedback_total", "Feedback requests routed to owning shards.")
	m.feedbackErrors = r.reg.Counter("alexrouter_feedback_errors_total", "Feedback requests refused (owner down, backpressure, bad links).")
	m.feedbackSplits = r.reg.Histogram("alexrouter_feedback_split", "Owner groups per feedback request.", []float64{1, 2, 4, 8})
	m.feedbackTxns = r.reg.Counter("alexrouter_feedback_txns_total", "Cross-shard feedback batches acked via prepare/commit.")
	m.txnCommitRetry = r.reg.Counter("alexrouter_txn_commit_retries_total", "Async commit attempts that had to be retried.")
	m.hedges = r.reg.Counter("alexrouter_hedged_queries_total", "Sub-queries hedged to a peer shard.")
	m.hedgeWins = r.reg.Counter("alexrouter_hedge_wins_total", "Hedged sub-queries where the peer answered first.")
	m.hedgeBudgetDeny = r.reg.Counter("alexrouter_hedge_budget_denied_total", "Hedges suppressed by the retry budget.")
	m.healthPolls = r.reg.Counter("alexrouter_health_polls_total", "Shard health probes issued.")
	m.healthFailures = r.reg.Counter("alexrouter_health_failures_total", "Shard health probes that failed.")
	m.healthPushes = r.reg.Counter("alexrouter_health_pushes_total", "Health transitions pushed by shards.")
	m.panics = r.reg.Counter("alexrouter_http_panics_total", "Handler panics recovered.")
	r.reg.GaugeFunc("alexrouter_shards", "Fleet size.", func() float64 {
		return float64(len(r.shards))
	})
	r.reg.GaugeFunc("alexrouter_routable_shards", "Shards currently considered routable.", func() float64 {
		n := 0
		for _, sh := range r.shards {
			if sh.routable.Load() {
				n++
			}
		}
		return float64(n)
	})
	for _, sh := range r.shards {
		sh := sh
		r.reg.LabeledGaugeFunc("alexrouter_shard_routable",
			fmt.Sprintf("shard=\"%d\"", sh.id),
			"1 when the shard is routable.",
			func() float64 {
				if sh.routable.Load() {
					return 1
				}
				return 0
			})
		r.reg.LabeledGaugeFunc("alexrouter_shard_breaker_state",
			fmt.Sprintf("shard=\"%d\"", sh.id),
			"Per-shard circuit state: 0 closed, 1 open, 2 half-open.",
			func() float64 { return float64(sh.breaker.State()) })
	}
}

// healthLoop polls every shard each interval. Stopped by Close; the
// done channel closes when the loop exits.
func (r *Router) healthLoop() {
	defer close(r.done)
	tick := time.NewTicker(r.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-tick.C:
			r.pollAll()
		}
	}
}

// pollAll probes every shard once. The breaker throttles probes to a
// dead shard: while open, Allow() fails and the shard stays
// unroutable without a network round trip; after the cooldown the
// half-open probe is the recovery path.
func (r *Router) pollAll() {
	for _, sh := range r.shards {
		if !sh.breaker.Allow() {
			sh.routable.Store(false)
			continue
		}
		r.probeShard(r.baseCtx, sh)
	}
}

// probeShard issues one /healthz probe within ctx and applies the
// verdict. It is both the polling loop's body and the verification
// step for pushed "up" transitions; both pass baseCtx, so Close
// aborts in-flight probes instead of waiting out their timeout.
func (r *Router) probeShard(ctx context.Context, sh *shard) {
	r.metrics.healthPolls.Inc()
	ctx, cancel := context.WithTimeout(ctx, r.cfg.HealthProbeTimeout)
	h, err := sh.client.HealthzContext(ctx)
	cancel()
	ok := err == nil && h.Status == "ok"
	sh.breaker.Record(ok)
	sh.routable.Store(ok)
	if ok {
		sh.health.Store(h)
	} else {
		r.metrics.healthFailures.Inc()
	}
}

// markDown records a data-path failure: the breaker learns about it
// and the shard is immediately unroutable, without waiting for the
// next poll.
func (r *Router) markDown(sh *shard) {
	sh.breaker.Record(false)
	sh.routable.Store(false)
}

// handleHealthPush is the shard-initiated health transition endpoint:
// a draining shard announces "down" before it stops serving, and a
// freshly started one announces "up", so failover reacts in
// milliseconds instead of a polling interval. "down" is trusted — a
// push can only make the router stop using a shard. "up" is merely a
// hint to probe now: the routable verdict still comes from a verified
// /healthz answer, so a spoofed push cannot resurrect a dead shard.
func (r *Router) handleHealthPush(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var hp cluster.HealthPush
	if err := json.NewDecoder(req.Body).Decode(&hp); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if hp.ShardID < 0 || hp.ShardID >= len(r.shards) {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown shard %d", hp.ShardID)})
		return
	}
	sh := r.shards[hp.ShardID]
	switch hp.Status {
	case "down":
		r.markDown(sh)
	case "up":
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			if sh.breaker.Allow() {
				// baseCtx, not the push request's ctx: the probe
				// deliberately outlives the 204 this handler returns.
				r.probeShard(r.baseCtx, sh)
			}
		}()
	default:
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: fmt.Sprintf("unknown status %q", hp.Status)})
		return
	}
	r.metrics.healthPushes.Inc()
	w.WriteHeader(http.StatusNoContent)
}

// routableShards returns the currently routable shards in ID order.
func (r *Router) routableShards() []*shard {
	out := make([]*shard, 0, len(r.shards))
	for _, sh := range r.shards {
		if sh.routable.Load() {
			out = append(out, sh)
		}
	}
	return out
}

// queryTargets picks the shards one query scatters to: all routable
// shards, or QueryFanout of them round-robin.
func (r *Router) queryTargets() []*shard {
	avail := r.routableShards()
	k := r.cfg.QueryFanout
	if k <= 0 || k >= len(avail) {
		return avail
	}
	start := int(r.rr.Add(1)-1) % len(avail)
	out := make([]*shard, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, avail[(start+i)%len(avail)])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Handler returns the router's root HTTP handler.
func (r *Router) Handler() http.Handler { return r.mux }

// Registry exposes the router's metrics registry.
func (r *Router) Registry() *server.Registry { return r.reg }

// Close stops the health loop, aborts in-flight background probes and
// waits for async commit workers. In-flight client requests finish;
// the router holds no state to drain. Pending commits it abandons are
// settled by the owners' resolvers (the prepares are durable).
func (r *Router) Close() error {
	r.closing.Do(func() {
		close(r.stop)
		r.cancel()
	})
	<-r.done
	r.wg.Wait()
	for _, sh := range r.shards {
		sh.client.CloseIdleConnections()
	}
	return nil
}

func (r *Router) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", r.handleQuery)
	mux.HandleFunc("/feedback", r.handleFeedback)
	mux.HandleFunc("/links", r.handleLinks)
	mux.HandleFunc("/router/health", r.handleHealthPush)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/metrics", r.handleMetrics)
	return r.recoverMiddleware(mux)
}

func (r *Router) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				r.metrics.panics.Inc()
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, req)
	})
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (r *Router) handleQuery(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var qr server.QueryRequest
	if err := json.NewDecoder(req.Body).Decode(&qr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if qr.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty query"})
		return
	}
	timeout := r.cfg.QueryTimeout
	if qr.TimeoutMillis > 0 {
		if t := time.Duration(qr.TimeoutMillis) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(req.Context(), timeout)
	defer cancel()

	targets := r.queryTargets()
	if len(targets) == 0 {
		// All shards down: fail fast with the full degraded set rather
		// than burn the query timeout — the client can tell "fleet is
		// down, retry later" from "query is slow".
		r.metrics.queryErrors.Inc()
		all := make([]string, 0, len(r.shards))
		for _, sh := range r.shards {
			all = append(all, fmt.Sprintf("shard-%d", sh.id))
		}
		w.Header().Set("X-Alex-Fleet-Degraded", strings.Join(all, ","))
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no routable shard"})
		return
	}
	r.metrics.queryFanouts.Observe(float64(len(targets)))

	// Scatter: one goroutine per target, results slotted by position so
	// the gather keeps shard-ID order (the merge's first-seen order and
	// therefore the answer's row order is deterministic). Each slot is a
	// hedged sub-query: a slow or failing primary is raced against a
	// healthy peer, and either answer fills the slot.
	resps := make([]*server.QueryResponse, len(targets))
	errs := make([]error, len(targets))
	answeredBy := make([]*shard, len(targets))
	var wg sync.WaitGroup
	for i, sh := range targets {
		wg.Add(1)
		go func(i int, sh *shard) {
			defer wg.Done()
			resps[i], answeredBy[i], errs[i] = r.subQuery(ctx, sh, targets, qr.Query)
		}(i, sh)
	}
	wg.Wait()

	answered := 0
	var missed []string
	var firstErr error
	for i, sh := range targets {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			missed = append(missed, fmt.Sprintf("shard-%d", sh.id))
			continue
		}
		if answeredBy[i] != sh {
			// A peer answered for this slot: the answer is full, but the
			// primary's replica went uncross-checked.
			missed = append(missed, fmt.Sprintf("shard-%d", sh.id))
		}
		answered++
	}
	if answered == 0 {
		r.metrics.queryErrors.Inc()
		if ctx.Err() != nil {
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "query deadline exceeded"})
			return
		}
		writeJSON(w, http.StatusBadGateway, errorResponse{Error: fmt.Sprintf("no shard answered: %v", firstErr)})
		return
	}
	// Shards routed around before the scatter are degraded too: the
	// answer is still full (replicas are), but cross-checking was
	// narrower than the fleet.
	for _, sh := range r.shards {
		if !sh.routable.Load() && !contains(missed, fmt.Sprintf("shard-%d", sh.id)) && !inTargets(targets, sh) {
			missed = append(missed, fmt.Sprintf("shard-%d", sh.id))
		}
	}
	out := mergeResponses(resps)
	r.metrics.queries.Inc()
	if len(out.DegradedSources) > 0 {
		w.Header().Set("X-Alex-Degraded", strings.Join(out.DegradedSources, ","))
	}
	if len(missed) > 0 && r.cfg.QueryFanout <= 0 {
		// Only meaningful in scatter-to-all mode: with a deliberate
		// fanout K, untargeted shards are load balancing, not damage.
		sort.Strings(missed)
		r.metrics.fleetDegraded.Inc()
		w.Header().Set("X-Alex-Fleet-Degraded", strings.Join(missed, ","))
	}
	writeJSON(w, http.StatusOK, out)
}

func contains(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func inTargets(targets []*shard, sh *shard) bool {
	for _, t := range targets {
		if t == sh {
			return true
		}
	}
	return false
}

// subQuery runs one scatter slot: the primary's query, raced against a
// hedge to a healthy peer when the primary is slow (after the hedger's
// adaptive delay) or fails fast — replicas are full, so any peer's
// answer is the full answer. It returns the winning response and the
// shard that produced it. At most one hedge per slot, and only if the
// retry budget allows it, so hedging cannot amplify a brownout.
func (r *Router) subQuery(ctx context.Context, primary *shard, targets []*shard, query string) (*server.QueryResponse, *shard, error) {
	type subResult struct {
		resp *server.QueryResponse
		sh   *shard
		err  error
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // cancels the loser; its send fits the buffer
	results := make(chan subResult, 2)
	launch := func(sh *shard) {
		go func() {
			start := time.Now()
			res, err := sh.client.QueryContext(cctx, query)
			if err == nil && sh == primary {
				r.hedge.observe(time.Since(start))
			}
			results <- subResult{res, sh, err}
		}()
	}
	r.hedge.earn()
	launch(primary)

	var hedgeC <-chan time.Time
	if !r.cfg.Hedge.Disabled {
		t := time.NewTimer(r.hedge.delay())
		defer t.Stop()
		hedgeC = t.C
	}
	hedged := false
	outstanding := 1
	var firstErr error
	for {
		select {
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		case <-hedgeC:
			hedgeC = nil
			if sh := r.tryHedge(primary, targets); sh != nil {
				hedged = true
				outstanding++
				launch(sh)
			}
		case res := <-results:
			if res.err == nil {
				if res.sh != primary {
					r.metrics.hedgeWins.Inc()
				}
				return res.resp, res.sh, nil
			}
			if firstErr == nil {
				firstErr = res.err
			}
			if ctx.Err() == nil {
				r.markDown(res.sh)
			}
			outstanding--
			if !hedged && ctx.Err() == nil {
				// The primary failed outright before the hedge delay: hedge
				// immediately, the delay has nothing left to protect.
				hedgeC = nil
				if sh := r.tryHedge(primary, targets); sh != nil {
					hedged = true
					outstanding++
					launch(sh)
				}
			}
			if outstanding == 0 {
				return nil, nil, firstErr
			}
		}
	}
}

// tryHedge picks a hedge destination and spends a budget token;
// nil means no peer is available or the budget is exhausted.
func (r *Router) tryHedge(primary *shard, targets []*shard) *shard {
	if r.cfg.Hedge.Disabled {
		return nil
	}
	sh := r.hedgePeer(primary, targets)
	if sh == nil {
		return nil
	}
	if !r.hedge.take() {
		r.metrics.hedgeBudgetDeny.Inc()
		return nil
	}
	r.metrics.hedges.Inc()
	return sh
}

// hedgePeer picks the hedge destination: a routable shard other than
// the primary, preferring one outside the scatter set (it duplicates
// no in-flight work).
func (r *Router) hedgePeer(primary *shard, targets []*shard) *shard {
	avail := r.routableShards()
	if len(avail) == 0 {
		return nil
	}
	var fallback *shard
	start := int(r.rr.Add(1)-1) % len(avail)
	for i := 0; i < len(avail); i++ {
		sh := avail[(start+i)%len(avail)]
		if sh == primary {
			continue
		}
		if !inTargets(targets, sh) {
			return sh
		}
		if fallback == nil {
			fallback = sh
		}
	}
	return fallback
}

func (r *Router) handleFeedback(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var fr server.FeedbackRequest
	if err := json.NewDecoder(req.Body).Decode(&fr); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(fr.Links) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no links in feedback"})
		return
	}
	// Group the links by owning shard. One answer row can cross links
	// owned by different shards; each group must reach ITS owner — the
	// only node whose journal makes the ack durable for those links.
	groups := make(map[int][]server.LinkJSON)
	for _, lj := range fr.Links {
		owner := cluster.OwnerOf(r.ranges, lj.E1)
		groups[owner] = append(groups[owner], lj)
	}
	r.metrics.feedbackSplits.Observe(float64(len(groups)))
	// All owners must be routable up front: a partial delivery would
	// ack what landed and silently drop the rest. (Partial delivery can
	// still happen if an owner dies mid-flight — then the client gets a
	// retryable error and at-least-once semantics apply.)
	for owner := range groups {
		if !r.shards[owner].routable.Load() {
			r.metrics.feedbackErrors.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{
				Error: fmt.Sprintf("shard %d (owner of %d of the links) is not routable", owner, len(groups[owner])),
			})
			return
		}
	}

	owners := make([]int, 0, len(groups))
	for owner := range groups {
		owners = append(owners, owner)
	}
	sort.Ints(owners)
	if len(owners) > 1 {
		// A batch spanning owners cannot be acked group by group: a crash
		// between two acks would half-apply it. Run prepare/commit instead.
		r.feedbackTxn(w, req, owners, groups, fr.Approve, len(fr.Links))
		return
	}
	statuses := make([]int, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, owner := range owners {
		wg.Add(1)
		go func(i, owner int) {
			defer wg.Done()
			statuses[i], errs[i] = r.shards[owner].client.FeedbackResult(req.Context(), groups[owner], fr.Approve)
		}(i, owner)
	}
	wg.Wait()

	worst := http.StatusAccepted
	var msg string
	for i, owner := range owners {
		status, err := statuses[i], errs[i]
		if err != nil && status == 0 {
			// Transport failure: the owner may or may not have journaled
			// the group. Surface a retryable 503 and let the breaker react.
			r.markDown(r.shards[owner])
			status = http.StatusServiceUnavailable
		}
		if status > worst {
			worst = status
			if err != nil {
				msg = fmt.Sprintf("shard %d: %v", owner, err)
			} else {
				msg = fmt.Sprintf("shard %d: HTTP %d", owner, status)
			}
		}
	}
	if worst != http.StatusAccepted {
		r.metrics.feedbackErrors.Inc()
		if worst == http.StatusTooManyRequests || worst >= 500 {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, worst, errorResponse{Error: msg})
		return
	}
	r.metrics.feedback.Inc()
	writeJSON(w, http.StatusAccepted, server.FeedbackResponse{Queued: true, Links: len(fr.Links)})
}

// newTxnID draws a random 128-bit batch ID. Randomness (not a counter)
// keeps the router stateless: a restarted router can never reuse an ID
// whose outcome the owners still remember.
func newTxnID() (string, error) {
	var b [16]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		return "", err
	}
	return hex.EncodeToString(b[:]), nil
}

// feedbackTxn acks a multi-owner feedback batch via prepare/commit:
// every owner journals an fsynced prepare before the client sees the
// 202, then the commit marks flow asynchronously. The router never
// sends aborts — when a prepare fails, the client gets a retryable
// error and the owners that DID prepare settle the outcome among
// themselves after the grace period (cluster.DecideTxn): an owner that
// never prepared answers "unknown" to their probes, which decides
// abort. A crash on either side between prepare and commit therefore
// never half-applies the batch.
func (r *Router) feedbackTxn(w http.ResponseWriter, req *http.Request, owners []int, groups map[int][]server.LinkJSON, approve bool, total int) {
	id, err := newTxnID()
	if err != nil {
		r.metrics.feedbackErrors.Inc()
		writeJSON(w, http.StatusInternalServerError, errorResponse{Error: "txn id: " + err.Error()})
		return
	}
	ctx, cancel := context.WithTimeout(req.Context(), prepareTimeout)
	defer cancel()
	statuses := make([]int, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, owner := range owners {
		wg.Add(1)
		go func(i, owner int) {
			defer wg.Done()
			links := make([]cluster.LinkWire, 0, len(groups[owner]))
			for _, lj := range groups[owner] {
				links = append(links, cluster.LinkWire{E1: lj.E1, E2: lj.E2})
			}
			statuses[i], errs[i] = r.shards[owner].client.TxnPrepare(ctx, cluster.TxnPrepare{
				ID:      id,
				Owners:  owners,
				Approve: approve,
				Links:   links,
			})
		}(i, owner)
	}
	wg.Wait()

	for i, owner := range owners {
		status, err := statuses[i], errs[i]
		if err != nil && status == 0 {
			// Transport failure: this owner may or may not hold the
			// prepare. Surface a retryable error; the resolvers decide.
			r.markDown(r.shards[owner])
			r.metrics.feedbackErrors.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: fmt.Sprintf("shard %d: prepare failed: %v", owner, err)})
			return
		}
		if status != http.StatusAccepted && status != http.StatusOK {
			r.metrics.feedbackErrors.Inc()
			if status == http.StatusTooManyRequests || status >= 500 {
				w.Header().Set("Retry-After", "1")
			}
			writeJSON(w, status, errorResponse{Error: fmt.Sprintf("shard %d: prepare refused: %v", owner, err)})
			return
		}
	}

	// Every owner's prepare is on stable storage: the outcome is decided
	// and the ack is as durable as a single-node one. Commits flow in the
	// background; an owner that misses its mark resolves via peers.
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		// baseCtx: the commit marks must keep flowing after this
		// handler's 202 — only Close abandons them.
		r.commitAll(r.baseCtx, id, owners)
	}()
	r.metrics.feedbackTxns.Inc()
	r.metrics.feedback.Inc()
	writeJSON(w, http.StatusAccepted, server.FeedbackResponse{Queued: true, Links: total})
}

// commitAll delivers the commit mark to every owner, retrying briefly
// on retryable failures. Giving up is safe: the prepares are durable
// everywhere, so an owner that never hears its commit learns the
// outcome from its peers after the grace period.
func (r *Router) commitAll(ctx context.Context, id string, owners []int) {
	for _, owner := range owners {
		for attempt := 0; ; attempt++ {
			tryCtx, cancel := context.WithTimeout(ctx, prepareTimeout)
			status, err := r.shards[owner].client.TxnCommit(tryCtx, id)
			cancel()
			if err == nil || (status != 0 && status != http.StatusTooManyRequests && status < 500) {
				break
			}
			if attempt+1 >= commitAttempts {
				break
			}
			r.metrics.txnCommitRetry.Inc()
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Duration(attempt+1) * 100 * time.Millisecond):
			}
		}
	}
}

// handleLinks proxies the full link set from the freshest routable
// shard (every replica serves full reads; freshest = highest engine
// episode seen by the health loop, so the answer lags replication the
// least).
func (r *Router) handleLinks(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	avail := r.routableShards()
	sort.SliceStable(avail, func(i, j int) bool {
		hi, hj := avail[i].health.Load(), avail[j].health.Load()
		ei, ej := -1, -1
		if hi != nil {
			ei = hi.Episode
		}
		if hj != nil {
			ej = hj.Episode
		}
		return ei > ej
	})
	for _, sh := range avail {
		ls, err := sh.client.LinksContext(req.Context())
		if err != nil {
			r.markDown(sh)
			continue
		}
		writeJSON(w, http.StatusOK, ls)
		return
	}
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "no routable shard"})
}

// ShardStatus is the router's view of one shard, for /healthz.
type ShardStatus struct {
	ID       int               `json:"id"`
	Addr     string            `json:"addr"`
	Range    cluster.HashRange `json:"range"`
	Routable bool              `json:"routable"`
	Breaker  string            `json:"breaker"`
	// Episode/CandidateLinks/SnapshotVersion echo the last successful
	// health probe (zero before the first one).
	Episode         int    `json:"episode"`
	CandidateLinks  int    `json:"candidate_links"`
	SnapshotVersion uint64 `json:"snapshot_version"`
}

// RouterHealth reports the fleet as the router sees it. Status is
// "ok" (all shards routable), "degraded" (some), or "down" (none).
type RouterHealth struct {
	Status   string        `json:"status"`
	Shards   []ShardStatus `json:"shards"`
	Routable int           `json:"routable"`
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	out := RouterHealth{Shards: make([]ShardStatus, 0, len(r.shards))}
	for _, sh := range r.shards {
		st := ShardStatus{
			ID:       sh.id,
			Addr:     sh.client.Addr(),
			Range:    r.ranges[sh.id],
			Routable: sh.routable.Load(),
			Breaker:  sh.breaker.State().String(),
		}
		if h := sh.health.Load(); h != nil {
			st.Episode = h.Episode
			st.CandidateLinks = h.CandidateLinks
			st.SnapshotVersion = h.SnapshotVersion
		}
		if st.Routable {
			out.Routable++
		}
		out.Shards = append(out.Shards, st)
	}
	switch out.Routable {
	case len(r.shards):
		out.Status = "ok"
	case 0:
		out.Status = "down"
	default:
		out.Status = "degraded"
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.reg.WritePrometheus(w)
}
