package fleet

import (
	"reflect"
	"testing"

	"alex/internal/server"
)

func row(v, val string, ls ...server.LinkJSON) server.RowJSON {
	return server.RowJSON{
		Binding: map[string]server.TermJSON{v: {Kind: "literal", Value: val}},
		Links:   ls,
	}
}

// Agreeing shards must merge to exactly one shard's answer — including
// duplicate solutions, which SELECT without DISTINCT preserves and a
// set-union would destroy.
func TestMergeIdenticalResponsesPassThrough(t *testing.T) {
	l := server.LinkJSON{E1: "http://ds1/a", E2: "http://ds2/b"}
	resp := &server.QueryResponse{
		Vars: []string{"n"},
		Rows: []server.RowJSON{
			row("n", "x", l),
			row("n", "dup"),
			row("n", "dup"), // duplicate solution, multiplicity 2
		},
		SnapshotVersion: 7,
	}
	got := mergeResponses([]*server.QueryResponse{resp, resp, resp})
	if !reflect.DeepEqual(got.Rows, resp.Rows) {
		t.Fatalf("merge of identical responses altered the answer:\n got %+v\nwant %+v", got.Rows, resp.Rows)
	}
	if got.SnapshotVersion != 7 || !reflect.DeepEqual(got.Vars, resp.Vars) {
		t.Fatalf("metadata mangled: %+v", got)
	}
}

// Divergent multiplicities take the max, never the sum.
func TestMergeMaxMultiplicity(t *testing.T) {
	a := &server.QueryResponse{Rows: []server.RowJSON{row("n", "x"), row("n", "y")}}
	b := &server.QueryResponse{Rows: []server.RowJSON{row("n", "y"), row("n", "y"), row("n", "z")}}
	got := mergeResponses([]*server.QueryResponse{a, b})
	// x (1), y (max(1,2)=2), z (1) — first-seen order: x, y, then the
	// second y and z from b.
	want := []string{"x", "y", "y", "z"}
	if len(got.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d: %+v", len(got.Rows), len(want), got.Rows)
	}
	for i, w := range want {
		if got.Rows[i].Binding["n"].Value != w {
			t.Fatalf("row %d = %q, want %q", i, got.Rows[i].Binding["n"].Value, w)
		}
	}
}

// Nil entries (shards that did not answer) are skipped.
func TestMergeSkipsNil(t *testing.T) {
	b := &server.QueryResponse{Vars: []string{"n"}, Rows: []server.RowJSON{row("n", "x")}}
	got := mergeResponses([]*server.QueryResponse{nil, b, nil})
	if len(got.Rows) != 1 || got.Rows[0].Binding["n"].Value != "x" {
		t.Fatalf("merge with nils = %+v", got.Rows)
	}
}

// A source is degraded fleet-wide only if EVERY answering shard saw it
// degraded; order follows the first response.
func TestMergeDegradedIntersection(t *testing.T) {
	a := &server.QueryResponse{DegradedSources: []string{"ds2", "ds3"}}
	b := &server.QueryResponse{DegradedSources: []string{"ds3"}}
	got := mergeResponses([]*server.QueryResponse{a, b})
	if !reflect.DeepEqual(got.DegradedSources, []string{"ds3"}) {
		t.Fatalf("degraded = %v, want [ds3]", got.DegradedSources)
	}
	// All agree -> pass through unchanged.
	got = mergeResponses([]*server.QueryResponse{a, a})
	if !reflect.DeepEqual(got.DegradedSources, []string{"ds2", "ds3"}) {
		t.Fatalf("degraded = %v, want [ds2 ds3]", got.DegradedSources)
	}
	// One healthy shard clears the marker.
	got = mergeResponses([]*server.QueryResponse{a, {}})
	if got.DegradedSources != nil {
		t.Fatalf("degraded = %v, want nil", got.DegradedSources)
	}
}

func TestMergeAsk(t *testing.T) {
	tr, fa := true, false
	got := mergeResponses([]*server.QueryResponse{{Ask: &fa}, {Ask: &tr}})
	if got.Ask == nil || !*got.Ask {
		t.Fatalf("ask = %v, want true", got.Ask)
	}
	got = mergeResponses([]*server.QueryResponse{{Ask: &fa}, {Ask: &fa}})
	if got.Ask == nil || *got.Ask {
		t.Fatalf("ask = %v, want false", got.Ask)
	}
	got = mergeResponses([]*server.QueryResponse{{}})
	if got.Ask != nil {
		t.Fatalf("ask = %v, want nil for SELECT", got.Ask)
	}
}

// rowKey must never collide across distinct rows: differing values,
// link lists, datatypes and adversarial field contents (separators
// inside values) all key apart, while link order keys together.
func TestRowKeyInjective(t *testing.T) {
	l1 := server.LinkJSON{E1: "a", E2: "b"}
	l2 := server.LinkJSON{E1: "c", E2: "d"}
	distinct := []server.RowJSON{
		row("n", "x"),
		row("n", "y"),
		row("m", "x"),
		row("n", "x", l1),
		row("n", "x", l1, l2),
		row("n", "x", server.LinkJSON{E1: "ab", E2: ""}),
		{Binding: map[string]server.TermJSON{"n": {Kind: "literal", Value: "x", Lang: "en"}}},
		{Binding: map[string]server.TermJSON{"n": {Kind: "literal", Value: "x", Datatype: "en"}}},
		{Binding: map[string]server.TermJSON{"n": {Kind: "iri", Value: "x"}}},
		{Binding: map[string]server.TermJSON{"n": {Kind: "literal", Value: "3:a"}}},
		{Binding: map[string]server.TermJSON{"n": {Kind: "literal", Value: ""}, "3:a": {Kind: "literal"}}},
	}
	seen := map[string]int{}
	for i, r := range distinct {
		k := rowKey(r)
		if j, ok := seen[k]; ok {
			t.Fatalf("rows %d and %d collide on key %q", j, i, k)
		}
		seen[k] = i
	}
	// Link ORDER is not identity: provenance is a set.
	if rowKey(row("n", "x", l1, l2)) != rowKey(row("n", "x", l2, l1)) {
		t.Fatal("link order changed the row key")
	}
}
