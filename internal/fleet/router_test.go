package fleet

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"alex/internal/cluster"
	"alex/internal/core"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/rdf"
	"alex/internal/server"
	"alex/internal/synth"
)

// world is one test dataset pair: everything needed to build either a
// single-node server or any number of shards over identical data.
type world struct {
	dict    *rdf.Dict
	g1, g2  *rdf.Graph
	sources []federation.Source
	e1, e2  []rdf.ID
	initial []links.Link
	// queries exercise the federated path across the links.
	queries []string
}

// tinyWorld hand-builds six dataset-1 entities so even a 4-shard split
// leaves most shards non-empty, with two deliberately wrong links.
func tinyWorld(t testing.TB) *world {
	t.Helper()
	dict := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(dict)
	g2 := rdf.NewGraphWithDict(dict)
	label := rdf.IRI("http://ds1/label")
	name := rdf.IRI("http://ds2/name")
	var initial []links.Link
	id := func(term rdf.Term) rdf.ID {
		i, ok := dict.Lookup(term)
		if !ok {
			t.Fatalf("unknown term %v", term)
		}
		return i
	}
	var queries []string
	for i := 0; i < 6; i++ {
		a := rdf.IRI(fmt.Sprintf("http://ds1/a%d", i))
		b := rdf.IRI(fmt.Sprintf("http://ds2/b%d", i))
		g1.Insert(rdf.Triple{S: a, P: label, O: rdf.Literal(fmt.Sprintf("thing %d", i))})
		g2.Insert(rdf.Triple{S: b, P: name, O: rdf.Literal(fmt.Sprintf("thing %d prime", i))})
		queries = append(queries,
			fmt.Sprintf("SELECT ?n WHERE { <%s> <%s> ?n . }", a.Value, name.Value),
			fmt.Sprintf("ASK { <%s> <%s> ?n . }", a.Value, name.Value),
		)
	}
	for i := 0; i < 6; i++ {
		// Links 0..3 are right; 4 and 5 are crossed (wrong on purpose).
		j := i
		if i >= 4 {
			j = 9 - i // 4<->5 swapped
		}
		initial = append(initial, links.Link{
			E1: id(rdf.IRI(fmt.Sprintf("http://ds1/a%d", i))),
			E2: id(rdf.IRI(fmt.Sprintf("http://ds2/b%d", j))),
		})
	}
	return &world{
		dict: dict, g1: g1, g2: g2,
		sources: []federation.Source{{Name: "ds1", Graph: g1}, {Name: "ds2", Graph: g2}},
		e1:      g1.SubjectIDs(), e2: g2.SubjectIDs(),
		initial: initial,
		queries: queries,
	}
}

// synthWorld is a scaled-down generated dataset with PARIS-produced
// initial links — the repo's standard "realistic" test world.
func synthWorld(t testing.TB) *world {
	t.Helper()
	prof, ok := synth.ProfileByName("dbpedia-drugbank")
	if !ok {
		t.Fatal("missing profile")
	}
	ds := synth.Generate(prof.Scale(0.15))
	scored := paris.Link(ds.G1, ds.G2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	for i, sc := range scored {
		initial[i] = sc.Link
	}
	var queries []string
	for i, e := range ds.Entities1 {
		if i >= 12 {
			break
		}
		queries = append(queries,
			fmt.Sprintf("SELECT ?n WHERE { <%s> <%s> ?n . }", ds.Dict.Term(e).Value, synth.P2Name.Value))
	}
	return &world{
		dict: ds.Dict, g1: ds.G1, g2: ds.G2,
		sources: []federation.Source{{Name: "ds1", Graph: ds.G1}, {Name: "ds2", Graph: ds.G2}},
		e1:      ds.Entities1, e2: ds.Entities2,
		initial: initial,
		queries: queries,
	}
}

// testFleet is a running fleet: shard servers, their HTTP frontends
// and a router, all sharing the world's dictionary in-process.
type testFleet struct {
	n       int
	shards  []*server.Server
	https   []*httptest.Server
	addrs   []string
	clients []*server.Client
	router  *Router
	rts     *httptest.Server
	rclient *server.Client
}

// shardEngine builds shard id's engine: the world's data restricted to
// the dataset-1 entities (and initial links) its hash range owns.
func shardEngine(w *world, n, id int) *core.System {
	ranges := cluster.FleetRanges(n)
	var e1 []rdf.ID
	for _, e := range w.e1 {
		if ranges[id].ContainsIRI(w.dict.Term(e).Value) {
			e1 = append(e1, e)
		}
	}
	var init []links.Link
	for _, l := range w.initial {
		if cluster.OwnerOf(ranges, w.dict.Term(l.E1).Value) == id {
			init = append(init, l)
		}
	}
	return core.New(w.g1, w.g2, e1, w.e2, init, core.DefaultConfig())
}

// fastBreaker trips after one failure and probes again quickly, so
// failover tests don't wait out production cooldowns.
func fastBreaker() federation.BreakerConfig {
	return federation.BreakerConfig{Failures: 1, Cooldown: 100 * time.Millisecond, Successes: 1}
}

func startFleet(t testing.TB, w *world, n int, scfg server.Config) *testFleet {
	return startFleetWith(t, w, n, scfg, nil)
}

// startFleetWith is startFleet with a router-config hook: the hardening
// tests use it to inject a faultnet transport, tune hedging or shrink
// probe timeouts without duplicating the harness.
func startFleetWith(t testing.TB, w *world, n int, scfg server.Config, mut func(*Config)) *testFleet {
	t.Helper()
	f := &testFleet{n: n}
	for id := 0; id < n; id++ {
		cfg := scfg
		cfg.Fleet = &server.FleetConfig{ShardID: id, Shards: n, ReplicateEvery: 25 * time.Millisecond}
		if scfg.Fleet != nil {
			cfg.Fleet.TxnResolveAfter = scfg.Fleet.TxnResolveAfter
		}
		if cfg.FlushInterval == 0 {
			cfg.FlushInterval = 20 * time.Millisecond
		}
		if cfg.DataDir != "" {
			cfg.DataDir = fmt.Sprintf("%s/shard-%d", cfg.DataDir, id)
		}
		s, err := server.New(shardEngine(w, n, id), w.dict, w.sources, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		f.shards = append(f.shards, s)
		f.https = append(f.https, ts)
		f.addrs = append(f.addrs, ts.URL)
		c := server.NewClient(ts.URL)
		c.SetRetryPolicy(server.RetryPolicy{MaxAttempts: 1})
		f.clients = append(f.clients, c)
	}
	for _, s := range f.shards {
		if err := s.SetPeers(f.addrs); err != nil {
			t.Fatal(err)
		}
	}
	rcfg := Config{
		Shards:         f.addrs,
		HealthInterval: 50 * time.Millisecond,
		Breaker:        fastBreaker(),
		Retry:          &server.RetryPolicy{MaxAttempts: 1},
	}
	if mut != nil {
		mut(&rcfg)
	}
	r, err := New(rcfg)
	if err != nil {
		t.Fatal(err)
	}
	f.router = r
	f.rts = httptest.NewServer(r.Handler())
	f.rclient = server.NewClient(f.rts.URL)
	f.rclient.SetRetryPolicy(server.RetryPolicy{MaxAttempts: 1})
	t.Cleanup(func() {
		f.rts.Close()
		r.Close()
		for i := range f.shards {
			f.https[i].Close()
			f.shards[i].Close()
		}
	})
	return f
}

// waitServed polls until client serves exactly want links.
func waitServed(t testing.TB, c *server.Client, want int) *server.LinksResponse {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ls, err := c.Links()
		if err == nil && ls.Count == want {
			return ls
		}
		if time.Now().After(deadline) {
			count := -1
			if ls != nil {
				count = ls.Count
			}
			t.Fatalf("served links = %d (err %v), want %d", count, err, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitConverged waits until every shard serves the full link set.
func (f *testFleet) waitConverged(t testing.TB, want int) {
	t.Helper()
	for _, c := range f.clients {
		waitServed(t, c, want)
	}
}

// canon renders a response canonically: sorted injective row keys plus
// the sorted degradation marker and the ASK verdict. Two responses
// over the same data must canonicalize identically (acceptance:
// rows + provenance + Degraded).
func canon(res *server.QueryResponse) string {
	keys := make([]string, 0, len(res.Rows))
	for _, r := range res.Rows {
		keys = append(keys, rowKey(r))
	}
	sort.Strings(keys)
	deg := append([]string(nil), res.DegradedSources...)
	sort.Strings(deg)
	ask := "-"
	if res.Ask != nil {
		ask = fmt.Sprint(*res.Ask)
	}
	return strings.Join(keys, "\n") + "\n|deg:" + strings.Join(deg, ",") + "|ask:" + ask
}

// The tentpole acceptance: a router over 1, 2 and 4 shards answers
// every test-world query canonically identically to a single-node
// alexd over the same data.
func TestRouterEquivalenceWithSingleNode(t *testing.T) {
	worlds := map[string]func(testing.TB) *world{
		"tiny":  tinyWorld,
		"synth": synthWorld,
	}
	for name, mk := range worlds {
		name, mk := name, mk
		t.Run(name, func(t *testing.T) {
			w := mk(t)

			single, err := server.New(
				core.New(w.g1, w.g2, w.e1, w.e2, w.initial, core.DefaultConfig()),
				w.dict, w.sources, server.Config{})
			if err != nil {
				t.Fatal(err)
			}
			sts := httptest.NewServer(single.Handler())
			t.Cleanup(func() { sts.Close(); single.Close() })
			sc := server.NewClient(sts.URL)

			want := make([]string, len(w.queries))
			for i, q := range w.queries {
				res, err := sc.Query(q)
				if err != nil {
					t.Fatalf("single-node query %q: %v", q, err)
				}
				want[i] = canon(res)
			}

			for _, n := range []int{1, 2, 4} {
				n := n
				t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
					f := startFleet(t, w, n, server.Config{})
					f.waitConverged(t, len(w.initial))
					for i, q := range w.queries {
						res, err := f.rclient.Query(q)
						if err != nil {
							t.Fatalf("router query %q: %v", q, err)
						}
						if got := canon(res); got != want[i] {
							t.Fatalf("router answer diverges from single node for %q:\nrouter:\n%s\nsingle:\n%s", q, got, want[i])
						}
					}
				})
			}
		})
	}
}

// One answer row can use links owned by different shards; the router
// must split the feedback so each group lands on (only) its owner.
func TestRouterFeedbackSplitRouting(t *testing.T) {
	w := tinyWorld(t)
	n := 2
	f := startFleet(t, w, n, server.Config{})
	f.waitConverged(t, len(w.initial))

	// Reject two links with different owners in ONE feedback request.
	ranges := cluster.FleetRanges(n)
	byOwner := map[int]server.LinkJSON{}
	for _, l := range w.initial {
		e1 := w.dict.Term(l.E1).Value
		owner := cluster.OwnerOf(ranges, e1)
		if _, ok := byOwner[owner]; !ok {
			byOwner[owner] = server.LinkJSON{E1: e1, E2: w.dict.Term(l.E2).Value}
		}
	}
	if len(byOwner) != 2 {
		t.Skipf("tiny world hashed onto one shard (owners: %v)", byOwner)
	}
	var reject []server.LinkJSON
	for _, lj := range byOwner {
		reject = append(reject, lj)
	}
	if err := f.rclient.Feedback(reject, false); err != nil {
		t.Fatal(err)
	}
	// Both removals must propagate to every shard's served set.
	f.waitConverged(t, len(w.initial)-2)
	ls := waitServed(t, f.rclient, len(w.initial)-2)
	for _, l := range ls.Links {
		for _, r := range reject {
			if l == r {
				t.Fatalf("rejected link %v still served", r)
			}
		}
	}
}

// restartShard rebuilds shard id of the fleet on its ORIGINAL address
// and data directory, as an operator restarting a crashed alexd would.
func (f *testFleet) restartShard(t *testing.T, w *world, id int, scfg server.Config) {
	t.Helper()
	cfg := scfg
	cfg.Fleet = &server.FleetConfig{ShardID: id, Shards: f.n, ReplicateEvery: 25 * time.Millisecond}
	if scfg.Fleet != nil {
		cfg.Fleet.TxnResolveAfter = scfg.Fleet.TxnResolveAfter
	}
	if cfg.FlushInterval == 0 {
		cfg.FlushInterval = 20 * time.Millisecond
	}
	cfg.DataDir = fmt.Sprintf("%s/shard-%d", scfg.DataDir, id)
	s, err := server.New(shardEngine(w, f.n, id), w.dict, w.sources, cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr := strings.TrimPrefix(f.addrs[id], "http://")
	var l net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	f.shards[id] = s
	f.https[id] = ts
	if err := s.SetPeers(f.addrs); err != nil {
		t.Fatal(err)
	}
}

// The failover acceptance: killing a shard loses no acked feedback
// (fsync-before-ack + journal recovery), the router keeps serving
// reads meanwhile, and the restarted shard rejoins and catches up.
func TestRouterFailoverRecoversAckedFeedback(t *testing.T) {
	w := tinyWorld(t)
	n := 3
	base := server.Config{DataDir: t.TempDir(), FlushInterval: 20 * time.Millisecond}
	f := startFleet(t, w, n, base)
	f.waitConverged(t, len(w.initial))

	// Pick the wrong link a4->b5 and its owner.
	ranges := cluster.FleetRanges(n)
	victimLink := server.LinkJSON{E1: "http://ds1/a4", E2: "http://ds2/b5"}
	victim := cluster.OwnerOf(ranges, victimLink.E1)

	// Reject through the router (202 = journaled + fsynced at the
	// owner), then crash the owner immediately — no drain, no
	// checkpoint. The ack obliges recovery to resurrect the verdict.
	if err := f.rclient.Feedback([]server.LinkJSON{victimLink}, false); err != nil {
		t.Fatal(err)
	}
	f.https[victim].Close()
	f.shards[victim].Abort()

	// The router must route around the corpse: reads keep working.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := f.router.healthView()
		if err == nil && h.Routable == n-1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("router never noticed the dead shard: %+v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	res, err := f.rclient.Query(w.queries[0])
	if err != nil {
		t.Fatalf("query with a dead shard: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("query with a dead shard returned nothing")
	}

	// Writes for the dead shard's range are refused retryably; writes
	// for live ranges still work. a5->b4 is the other wrong link.
	if err := f.rclient.Feedback([]server.LinkJSON{victimLink}, false); err == nil {
		t.Fatal("feedback for a dead shard's range was accepted")
	}
	liveLink := server.LinkJSON{E1: "http://ds1/a5", E2: "http://ds2/b4"}
	liveRejected := false
	if cluster.OwnerOf(ranges, liveLink.E1) != victim {
		if err := f.rclient.Feedback([]server.LinkJSON{liveLink}, false); err != nil {
			t.Fatalf("feedback for a live shard refused: %v", err)
		}
		liveRejected = true
	}

	// Restart the shard over its journal: recovery must replay the
	// acked rejection, the router must see it healthy again, and the
	// removal must replicate fleet-wide.
	f.restartShard(t, w, victim, base)
	deadline = time.Now().Add(10 * time.Second)
	for {
		h, err := f.router.healthView()
		if err == nil && h.Routable == n {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("restarted shard never became routable")
		}
		time.Sleep(10 * time.Millisecond)
	}
	rec := f.shards[victim].Recovery()
	if rec.CheckpointSeq == 0 && rec.Replayed == 0 {
		t.Fatal("restart recovered nothing — the acked feedback was lost")
	}

	// Every shard (and the router) converges to a served set without
	// the rejected link(s).
	want := len(w.initial) - 1
	if liveRejected {
		want--
	}
	newClient := server.NewClient(f.addrs[victim])
	newClient.SetRetryPolicy(server.RetryPolicy{MaxAttempts: 1})
	f.clients[victim] = newClient
	f.waitConverged(t, want)
	ls := waitServed(t, f.rclient, want)
	for _, l := range ls.Links {
		if l == victimLink {
			t.Fatal("acked rejection lost after crash recovery")
		}
	}
}

// healthView fetches the router's own health summary in-process.
func (r *Router) healthView() (*RouterHealth, error) {
	rec := httptest.NewRecorder()
	r.handleHealthz(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var h RouterHealth
	if err := json.Unmarshal(rec.Body.Bytes(), &h); err != nil {
		return nil, err
	}
	return &h, nil
}
