// Scatter-gather merge: combining full-read answers from several
// shards into one response that is canonically identical to what a
// single-node alexd over the same data would return.
//
// Every shard serves FULL reads (its own partition unioned with the
// newest replicated peer manifests — see internal/server's fleet
// role), so scatter-gather here is NOT the federation layer's
// partial-result union: each response is a complete answer, and on a
// converged fleet all responses are equal. The merge therefore has one
// job — return exactly one shard's answer when they agree, and degrade
// gracefully when a replication window makes them differ:
//
//   - Rows are a max-multiplicity multiset union in first-seen order,
//     iterating shards in ID order. SELECT without DISTINCT preserves
//     duplicate solutions, so a plain set-dedup would drop rows the
//     single-node path keeps; taking the MAX multiplicity per row
//     (never the sum) means N agreeing shards contribute each row
//     exactly as many times as any one of them did.
//   - Row identity is an injective encoding of the bindings AND the
//     provenance links (PR-5's projectionKey discipline: every field
//     length-prefixed, so no concatenation of distinct rows collides).
//   - DegradedSources keeps first-response order, filtered to sources
//     degraded in EVERY response — a source only the slowest shard saw
//     as down is not reported down fleet-wide. Equal responses pass
//     through unchanged.
//   - Ask is OR (equal on a converged fleet); Vars come from the first
//     response; SnapshotVersion is the max seen (per-shard counters
//     are not comparable, the field is informational only).
package fleet

import (
	"sort"
	"strconv"
	"strings"

	"alex/internal/server"
)

// writeField appends one length-prefixed string, making the
// concatenation of any field sequence injective.
func writeField(b *strings.Builder, s string) {
	b.WriteString(strconv.Itoa(len(s)))
	b.WriteByte(':')
	b.WriteString(s)
}

// rowKey is the injective identity of an answer row: sorted variable
// bindings (kind, value, datatype, lang) plus sorted provenance links.
func rowKey(row server.RowJSON) string {
	vars := make([]string, 0, len(row.Binding))
	for v := range row.Binding {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	var b strings.Builder
	for _, v := range vars {
		t := row.Binding[v]
		writeField(&b, v)
		writeField(&b, t.Kind)
		writeField(&b, t.Value)
		writeField(&b, t.Datatype)
		writeField(&b, t.Lang)
	}
	b.WriteByte('|')
	ls := append([]server.LinkJSON(nil), row.Links...)
	sort.Slice(ls, func(i, j int) bool {
		if ls[i].E1 != ls[j].E1 {
			return ls[i].E1 < ls[j].E1
		}
		return ls[i].E2 < ls[j].E2
	})
	for _, l := range ls {
		writeField(&b, l.E1)
		writeField(&b, l.E2)
	}
	return b.String()
}

// mergeResponses gathers per-shard full answers (in shard-ID order,
// nil entries allowed for shards that did not answer) into one
// response. At least one response must be non-nil.
func mergeResponses(resps []*server.QueryResponse) *server.QueryResponse {
	out := &server.QueryResponse{Rows: []server.RowJSON{}}
	first := true
	emitted := make(map[string]int) // row key -> multiplicity already emitted
	for _, r := range resps {
		if r == nil {
			continue
		}
		if first {
			out.Vars = r.Vars
			out.DegradedSources = append([]string(nil), r.DegradedSources...)
			first = false
		} else {
			out.DegradedSources = intersectOrdered(out.DegradedSources, r.DegradedSources)
		}
		if r.SnapshotVersion > out.SnapshotVersion {
			out.SnapshotVersion = r.SnapshotVersion
		}
		if r.Ask != nil {
			if out.Ask == nil {
				v := *r.Ask
				out.Ask = &v
			} else {
				*out.Ask = *out.Ask || *r.Ask
			}
		}
		local := make(map[string]int, len(r.Rows))
		for _, row := range r.Rows {
			k := rowKey(row)
			local[k]++
			if local[k] > emitted[k] {
				out.Rows = append(out.Rows, row)
				emitted[k]++
			}
		}
	}
	if len(out.DegradedSources) == 0 {
		out.DegradedSources = nil
	}
	return out
}

// intersectOrdered keeps the elements of a (in a's order) that also
// appear in b.
func intersectOrdered(a, b []string) []string {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	out := a[:0]
	for _, s := range a {
		if in[s] {
			out = append(out, s)
		}
	}
	return out
}
