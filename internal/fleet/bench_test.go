package fleet

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"alex/internal/federation"
	"alex/internal/server"
)

// Benchmark knobs. Each source access sleeps benchSourceLatency (the
// stand-in for a remote endpoint's round trip — see AccessFunc), and
// every shard admits at most benchShardSlots concurrent queries. Total
// fleet capacity is therefore shards x slots / latency queries/s, so
// router throughput should scale near-linearly from 1 to 4 shards.
// Without the simulated I/O the shards are in-process map lookups and
// a single node already saturates the client, hiding the scaling the
// bench exists to record.
const (
	benchSourceLatency = 2 * time.Millisecond
	benchShardSlots    = 4
)

// BenchmarkFleetQuery drives SELECT queries through an alexrouter over
// 1, 2 and 4 shards with QueryFanout 1 (each query answered by one
// shard's full read — the converged-fleet fast path) and I/O-bound
// sources. make bench-fleet records the result as BENCH_fleet.json;
// acceptance is queries/s growing with the shard count.
func BenchmarkFleetQuery(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			w := tinyWorld(b)
			for i := range w.sources {
				w.sources[i].Access = func(ctx context.Context) error {
					select {
					case <-time.After(benchSourceLatency):
						return nil
					case <-ctx.Done():
						return ctx.Err()
					}
				}
			}
			f := startFleet(b, w, n, server.Config{MaxConcurrentQueries: benchShardSlots})
			f.waitConverged(b, len(w.initial))

			// A fanout-1 router over the same shards: the equivalence
			// suite covers scatter-all, the bench measures capacity.
			r, err := New(Config{
				Shards:         f.addrs,
				HealthInterval: 50 * time.Millisecond,
				QueryFanout:    1,
				Breaker:        federation.BreakerConfig{Failures: 3, Cooldown: time.Second, Successes: 1},
			})
			if err != nil {
				b.Fatal(err)
			}
			rts := httptest.NewServer(r.Handler())
			b.Cleanup(func() { rts.Close(); r.Close() })

			queries := w.queries
			b.SetParallelism(4 * n) // keep every shard's slots occupied
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				c := server.NewClient(rts.URL)
				i := 0
				for pb.Next() {
					q := queries[i%len(queries)]
					i++
					if _, err := c.Query(q); err != nil {
						b.Errorf("query %q: %v", q, err)
						return
					}
				}
			})
		})
	}
}
