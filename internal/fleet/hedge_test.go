package fleet

import (
	"testing"
	"time"
)

func TestHedgerFixedDelay(t *testing.T) {
	h := newHedger(HedgeConfig{Delay: 5 * time.Millisecond})
	h.observe(time.Second) // samples must not override a fixed delay
	if got := h.delay(); got != 5*time.Millisecond {
		t.Fatalf("fixed delay = %s, want 5ms", got)
	}
}

func TestHedgerAdaptiveDelay(t *testing.T) {
	h := newHedger(HedgeConfig{})
	// Before any observation the hedger must be maximally conservative.
	if got := h.delay(); got != 2*time.Second {
		t.Fatalf("cold delay = %s, want MaxDelay 2s", got)
	}
	for i := 1; i <= 100; i++ {
		h.observe(time.Duration(i) * time.Millisecond)
	}
	// The ring holds 1..100ms; p95 must land near the tail, inside the
	// clamp window.
	got := h.delay()
	if got < 90*time.Millisecond || got > 100*time.Millisecond {
		t.Fatalf("p95 delay = %s, want ~95ms", got)
	}
	// Uniformly tiny latencies clamp up to MinDelay.
	h2 := newHedger(HedgeConfig{})
	for i := 0; i < hedgeWindow; i++ {
		h2.observe(time.Microsecond)
	}
	if got := h2.delay(); got != 10*time.Millisecond {
		t.Fatalf("clamped delay = %s, want MinDelay 10ms", got)
	}
}

func TestHedgerBudget(t *testing.T) {
	h := newHedger(HedgeConfig{BudgetRatio: 0.5, BudgetBurst: 2})
	if !h.take() || !h.take() {
		t.Fatal("burst tokens missing")
	}
	if h.take() {
		t.Fatal("budget exhausted but take succeeded")
	}
	h.earn() // +0.5 — still under one whole token
	if h.take() {
		t.Fatal("half a token must not buy a hedge")
	}
	h.earn() // +0.5 — one whole token now
	if !h.take() {
		t.Fatal("earned token not spendable")
	}
	// The bucket caps at BudgetBurst.
	for i := 0; i < 100; i++ {
		h.earn()
	}
	if !h.take() || !h.take() {
		t.Fatal("bucket refill missing")
	}
	if h.take() {
		t.Fatal("bucket exceeded BudgetBurst")
	}
}
