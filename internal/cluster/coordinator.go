package cluster

import (
	"fmt"
	"math/rand"
	"net/rpc"
	"strings"

	"alex/internal/core"
	"alex/internal/feature"
	"alex/internal/feedback"
	"alex/internal/links"
	"alex/internal/rdf"
)

// Coordinator drives a set of remote workers through the episode loop:
// it owns the canonical dictionary, splits the dataset-1 entities
// round-robin across workers (one shard per worker, §6.2), and routes
// uniformly sampled feedback to the owning shard.
type Coordinator struct {
	clients []*rpc.Client
	dict    *rdf.Dict
	rng     *rand.Rand

	episodeSize  int
	maxEpisodes  int
	relaxedDelta float64
	episode      int
	relaxedAt    int
	prev         links.Set
}

// Dial connects to the worker addresses.
func Dial(addrs []string) (*Coordinator, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("cluster: no worker addresses")
	}
	c := &Coordinator{}
	for _, addr := range addrs {
		client, err := rpc.Dial("tcp", addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, err)
		}
		c.clients = append(c.clients, client)
	}
	return c, nil
}

// Close disconnects from all workers.
func (c *Coordinator) Close() {
	for _, cl := range c.clients {
		if cl != nil {
			cl.Close()
		}
	}
}

// Workers returns the number of connected workers.
func (c *Coordinator) Workers() int { return len(c.clients) }

// Setup serializes the datasets, partitions the dataset-1 entities
// round-robin across the workers, and assigns each worker its shard.
func (c *Coordinator) Setup(g1, g2 *rdf.Graph, entities1, entities2 []rdf.ID, initial []links.Link, cfg core.Config) error {
	if g1.Dict() != g2.Dict() {
		return fmt.Errorf("cluster: datasets must share a dictionary")
	}
	c.dict = g1.Dict()
	c.rng = rand.New(rand.NewSource(cfg.Seed))
	c.episodeSize = cfg.EpisodeSize
	if c.episodeSize < 1 {
		c.episodeSize = 1
	}
	c.maxEpisodes = cfg.MaxEpisodes
	if c.maxEpisodes < 1 {
		c.maxEpisodes = 100
	}
	c.relaxedDelta = cfg.RelaxedDelta

	var ds1, ds2 strings.Builder
	if err := rdf.WriteNTriples(&ds1, g1); err != nil {
		return err
	}
	if err := rdf.WriteNTriples(&ds2, g2); err != nil {
		return err
	}
	e2 := c.iris(entities2)

	shards := feature.PartitionRoundRobin(entities1, len(c.clients))
	shardOf := map[rdf.ID]int{}
	for wi, shard := range shards {
		for _, e := range shard {
			shardOf[e] = wi
		}
	}
	initialByShard := make([][][2]string, len(c.clients))
	for _, l := range initial {
		wi := shardOf[l.E1]
		initialByShard[wi] = append(initialByShard[wi],
			[2]string{c.dict.Term(l.E1).Value, c.dict.Term(l.E2).Value})
	}

	for wi, client := range c.clients {
		args := AssignArgs{
			Dataset1NT: ds1.String(),
			Dataset2NT: ds2.String(),
			Entities1:  c.iris(shards[wi]),
			Entities2:  e2,
			Initial:    initialByShard[wi],
			Config:     FromConfig(withSeed(cfg, cfg.Seed+int64(wi)+1)),
		}
		var reply AssignReply
		if err := client.Call("Worker.Assign", args, &reply); err != nil {
			return fmt.Errorf("cluster: assign worker %d: %w", wi, err)
		}
	}
	c.prev = nil
	return nil
}

func withSeed(cfg core.Config, seed int64) core.Config {
	cfg.Seed = seed
	return cfg
}

func (c *Coordinator) iris(ids []rdf.ID) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = c.dict.Term(id).Value
	}
	return out
}

// Candidates gathers the global candidate set, interned into the
// coordinator's dictionary.
func (c *Coordinator) Candidates() (links.Set, error) {
	out := links.NewSet()
	for wi, client := range c.clients {
		var reply CandidatesReply
		if err := client.Call("Worker.Candidates", Empty{}, &reply); err != nil {
			return nil, fmt.Errorf("cluster: candidates from worker %d: %w", wi, err)
		}
		for _, lw := range reply.Links {
			e1, ok1 := c.dict.Lookup(rdf.IRI(lw.E1))
			e2, ok2 := c.dict.Lookup(rdf.IRI(lw.E2))
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("cluster: worker %d returned unknown entity", wi)
			}
			out.Add(links.Link{E1: e1, E2: e2})
		}
	}
	return out, nil
}

// RunEpisode drives one feedback episode across all workers: sampling
// is uniform over the union of shard candidate sets; each item is
// judged by the oracle and sent to the owning worker; every worker then
// improves its policy.
func (c *Coordinator) RunEpisode(oracle feedback.Judger) (core.EpisodeStats, error) {
	st := core.EpisodeStats{Episode: c.episode + 1}
	if c.prev == nil {
		prev, err := c.Candidates()
		if err != nil {
			return st, err
		}
		c.prev = prev
	}
	for _, client := range c.clients {
		if err := client.Call("Worker.BeginEpisode", Empty{}, &Empty{}); err != nil {
			return st, err
		}
	}

	counts := make([]int, len(c.clients))
	for i := 0; i < c.episodeSize; i++ {
		total := 0
		for wi, client := range c.clients {
			if err := client.Call("Worker.CandidateCount", Empty{}, &counts[wi]); err != nil {
				return st, err
			}
			total += counts[wi]
		}
		if total == 0 {
			break
		}
		r := c.rng.Intn(total)
		wi := 0
		for ; wi < len(counts); wi++ {
			if r < counts[wi] {
				break
			}
			r -= counts[wi]
		}
		var sample SampleReply
		if err := c.clients[wi].Call("Worker.Sample", Empty{}, &sample); err != nil {
			return st, err
		}
		if !sample.OK {
			continue
		}
		l, err := c.coordLink(sample.Link)
		if err != nil {
			return st, err
		}
		positive := oracle.Judge(l)
		st.Feedback++
		if !positive {
			st.Negative++
		}
		if err := c.clients[wi].Call("Worker.Feedback", FeedbackArgs{Link: sample.Link, Positive: positive}, &Empty{}); err != nil {
			return st, err
		}
	}

	for _, client := range c.clients {
		var reply EpisodeReply
		if err := client.Call("Worker.FinishEpisode", Empty{}, &reply); err != nil {
			return st, err
		}
		st.Explored += reply.Explored
		st.Removed += reply.Removed
		st.Rollbacks += reply.Rollbacks
	}
	c.episode++

	now, err := c.Candidates()
	if err != nil {
		return st, err
	}
	denom := c.prev.Len()
	if denom == 0 {
		denom = 1
	}
	st.ChangedFrac = float64(c.prev.SymmetricDiff(now)) / float64(denom)
	if c.relaxedAt == 0 && st.ChangedFrac < c.relaxedDelta {
		c.relaxedAt = c.episode
	}
	c.prev = now
	return st, nil
}

func (c *Coordinator) coordLink(lw LinkWire) (links.Link, error) {
	e1, ok1 := c.dict.Lookup(rdf.IRI(lw.E1))
	e2, ok2 := c.dict.Lookup(rdf.IRI(lw.E2))
	if !ok1 || !ok2 {
		return links.Link{}, fmt.Errorf("cluster: unknown entity in sample %v", lw)
	}
	return links.Link{E1: e1, E2: e2}, nil
}

// Run iterates episodes until strict convergence or MaxEpisodes.
func (c *Coordinator) Run(oracle feedback.Judger, onEpisode func(core.EpisodeStats)) (core.Result, error) {
	res := core.Result{}
	for c.episode < c.maxEpisodes {
		st, err := c.RunEpisode(oracle)
		if err != nil {
			return res, err
		}
		res.Stats = append(res.Stats, st)
		if onEpisode != nil {
			onEpisode(st)
		}
		if st.ChangedFrac == 0 {
			res.Converged = true
			break
		}
	}
	res.Episodes = c.episode
	res.RelaxedEpisode = c.relaxedAt
	return res, nil
}
