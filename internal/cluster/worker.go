// Package cluster runs ALEX's equal-size partitions on multiple
// machines (paper §6.2: "the different partitions can be independently
// explored in parallel, either on different CPU cores of the same
// machine or on multiple machines in a distributed setting").
//
// A Worker owns one shard of the dataset-1 entities crossed with all of
// dataset 2 — a share-nothing ALEX instance. The Coordinator partitions
// the entities round-robin across workers, routes each feedback item to
// the owning worker, and aggregates candidates and episode statistics.
//
// Entities cross the wire as IRI strings, never as dictionary IDs:
// every node interns terms into its own dictionary, exactly as separate
// machines would.
package cluster

import (
	"fmt"
	"net"
	"net/rpc"
	"strings"
	"sync"

	"alex/internal/core"
	"alex/internal/links"
	"alex/internal/rdf"
)

// ConfigWire is the gob-encodable subset of core.Config (the Sim
// function hook cannot cross the wire; workers use the default).
type ConfigWire struct {
	StepSize          float64
	Theta             float64
	Epsilon           float64
	MaxEpisodes       int
	UseBlacklist      bool
	BlacklistMargin   int
	UseRollback       bool
	RollbackThreshold int
	PositiveReward    float64
	NegativePenalty   float64
	Seed              int64
	UniformPolicy     bool
	SpaceWorkers      int
	SpaceBlocking     bool
}

// FromConfig converts a core.Config for the wire.
func FromConfig(c core.Config) ConfigWire {
	return ConfigWire{
		StepSize: c.StepSize, Theta: c.Theta, Epsilon: c.Epsilon,
		MaxEpisodes: c.MaxEpisodes, UseBlacklist: c.UseBlacklist,
		BlacklistMargin: c.BlacklistMargin, UseRollback: c.UseRollback,
		RollbackThreshold: c.RollbackThreshold, PositiveReward: c.PositiveReward,
		NegativePenalty: c.NegativePenalty, Seed: c.Seed, UniformPolicy: c.UniformPolicy,
		SpaceWorkers: c.SpaceWorkers, SpaceBlocking: c.SpaceBlocking,
	}
}

func (w ConfigWire) toConfig() core.Config {
	c := core.DefaultConfig()
	c.StepSize = w.StepSize
	c.Theta = w.Theta
	c.Epsilon = w.Epsilon
	c.MaxEpisodes = w.MaxEpisodes
	c.UseBlacklist = w.UseBlacklist
	c.BlacklistMargin = w.BlacklistMargin
	c.UseRollback = w.UseRollback
	c.RollbackThreshold = w.RollbackThreshold
	c.PositiveReward = w.PositiveReward
	c.NegativePenalty = w.NegativePenalty
	c.Seed = w.Seed
	c.UniformPolicy = w.UniformPolicy
	c.SpaceWorkers = w.SpaceWorkers
	c.SpaceBlocking = w.SpaceBlocking
	c.Partitions = 1  // a worker is exactly one partition
	c.EpisodeSize = 1 // episodes are driven item-by-item by the coordinator
	return c
}

// AssignArgs ships a worker its shard.
type AssignArgs struct {
	// Dataset1NT and Dataset2NT are the datasets in N-Triples form.
	Dataset1NT string
	Dataset2NT string
	// Entities1 is this worker's shard of dataset-1 entity IRIs;
	// Entities2 is all of dataset 2.
	Entities1 []string
	Entities2 []string
	// Initial holds the initial candidate links as [entity1, entity2]
	// IRI pairs belonging to this shard.
	Initial [][2]string
	Config  ConfigWire
}

// AssignReply reports the constructed shard.
type AssignReply struct {
	Candidates    int
	SpaceFiltered int
	SpaceTotal    int
}

// LinkWire is a link as IRI strings. It crosses both the RPC wire
// (gob, which ignores the tags) and the fleet replication wire (JSON,
// see SnapshotManifest).
type LinkWire struct {
	E1 string `json:"e1"`
	E2 string `json:"e2"`
}

// SampleReply is a sampled candidate (OK=false when the shard is empty).
type SampleReply struct {
	Link LinkWire
	OK   bool
}

// FeedbackArgs carries one feedback item.
type FeedbackArgs struct {
	Link     LinkWire
	Positive bool
}

// EpisodeReply reports a worker's episode statistics.
type EpisodeReply struct {
	Explored  int
	Removed   int
	Rollbacks int
}

// CandidatesReply lists a shard's candidate links.
type CandidatesReply struct {
	Links []LinkWire
}

// Empty is the empty RPC argument/reply.
type Empty struct{}

// Worker serves one ALEX shard over RPC.
type Worker struct {
	mu   sync.Mutex
	dict *rdf.Dict
	sys  *core.System
}

// NewWorker returns an unassigned worker.
func NewWorker() *Worker { return &Worker{} }

// Assign builds the worker's shard: parse the datasets, resolve the
// entity IRIs, build the feature space, seed the candidates.
func (w *Worker) Assign(args AssignArgs, reply *AssignReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()

	dict := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(dict)
	g2 := rdf.NewGraphWithDict(dict)
	if _, err := rdf.ReadNTriples(strings.NewReader(args.Dataset1NT), g1); err != nil {
		return fmt.Errorf("cluster: dataset 1: %w", err)
	}
	if _, err := rdf.ReadNTriples(strings.NewReader(args.Dataset2NT), g2); err != nil {
		return fmt.Errorf("cluster: dataset 2: %w", err)
	}
	e1, err := resolveIRIs(dict, args.Entities1)
	if err != nil {
		return err
	}
	e2, err := resolveIRIs(dict, args.Entities2)
	if err != nil {
		return err
	}
	initial := make([]links.Link, 0, len(args.Initial))
	for _, pair := range args.Initial {
		l, err := resolveLink(dict, LinkWire{E1: pair[0], E2: pair[1]})
		if err != nil {
			return err
		}
		initial = append(initial, l)
	}

	w.dict = dict
	w.sys = core.New(g1, g2, e1, e2, initial, args.Config.toConfig())
	reply.Candidates = w.sys.CandidateCount()
	reply.SpaceFiltered, reply.SpaceTotal = w.sys.SpaceSize()
	return nil
}

func resolveIRIs(dict *rdf.Dict, iris []string) ([]rdf.ID, error) {
	out := make([]rdf.ID, 0, len(iris))
	for _, iri := range iris {
		id, ok := dict.Lookup(rdf.IRI(iri))
		if !ok {
			return nil, fmt.Errorf("cluster: entity %q not present in shard data", iri)
		}
		out = append(out, id)
	}
	return out, nil
}

func resolveLink(dict *rdf.Dict, lw LinkWire) (links.Link, error) {
	e1, ok := dict.Lookup(rdf.IRI(lw.E1))
	if !ok {
		return links.Link{}, fmt.Errorf("cluster: unknown entity %q", lw.E1)
	}
	e2, ok := dict.Lookup(rdf.IRI(lw.E2))
	if !ok {
		return links.Link{}, fmt.Errorf("cluster: unknown entity %q", lw.E2)
	}
	return links.Link{E1: e1, E2: e2}, nil
}

func (w *Worker) wire(l links.Link) LinkWire {
	return LinkWire{E1: w.dict.Term(l.E1).Value, E2: w.dict.Term(l.E2).Value}
}

func (w *Worker) assigned() error {
	if w.sys == nil {
		return fmt.Errorf("cluster: worker not assigned")
	}
	return nil
}

// BeginEpisode starts an episode on the shard.
func (w *Worker) BeginEpisode(_ Empty, _ *Empty) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.assigned(); err != nil {
		return err
	}
	w.sys.BeginEpisode()
	return nil
}

// CandidateCount reports |C| of the shard.
func (w *Worker) CandidateCount(_ Empty, reply *int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.assigned(); err != nil {
		return err
	}
	*reply = w.sys.CandidateCount()
	return nil
}

// Sample draws a uniformly random candidate of the shard.
func (w *Worker) Sample(_ Empty, reply *SampleReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.assigned(); err != nil {
		return err
	}
	l, ok := w.sys.SampleCandidate()
	if !ok {
		reply.OK = false
		return nil
	}
	reply.Link = w.wire(l)
	reply.OK = true
	return nil
}

// Feedback applies one feedback item to the shard.
func (w *Worker) Feedback(args FeedbackArgs, _ *Empty) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.assigned(); err != nil {
		return err
	}
	l, err := resolveLink(w.dict, args.Link)
	if err != nil {
		return err
	}
	w.sys.Feedback(l, args.Positive)
	return nil
}

// FinishEpisode improves the shard's policy and reports statistics.
func (w *Worker) FinishEpisode(_ Empty, reply *EpisodeReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.assigned(); err != nil {
		return err
	}
	st := w.sys.FinishEpisode()
	reply.Explored = st.Explored
	reply.Removed = st.Removed
	reply.Rollbacks = st.Rollbacks
	return nil
}

// Candidates lists the shard's candidate links.
func (w *Worker) Candidates(_ Empty, reply *CandidatesReply) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.assigned(); err != nil {
		return err
	}
	for _, l := range w.sys.Candidates().Slice() {
		reply.Links = append(reply.Links, w.wire(l))
	}
	return nil
}

// Serve accepts RPC connections on l and serves a single Worker until
// the listener is closed. Every connection goroutine is drained before
// Serve returns, so closing the listener is a complete shutdown. It is
// the main loop of cmd/alexworker.
func Serve(l net.Listener) error {
	srv := rpc.NewServer()
	if err := srv.RegisterName("Worker", NewWorker()); err != nil {
		return err
	}
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeConn(conn)
		}()
	}
}
