package cluster

import (
	"math/rand"
	"net"
	"net/rpc"
	"testing"

	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/feedback"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/synth"
)

// startWorkers launches n in-process workers on loopback listeners and
// returns their addresses.
func startWorkers(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		addrs[i] = l.Addr().String()
		go Serve(l) //nolint:errcheck // listener close ends the loop
	}
	return addrs
}

func clusterWorld(t *testing.T) (*synth.Dataset, []links.Link, core.Config) {
	t.Helper()
	prof, ok := synth.ProfileByName("opencyc-lexvo")
	if !ok {
		t.Fatal("missing profile")
	}
	prof = prof.Scale(0.5)
	ds := synth.Generate(prof)
	scored := paris.Link(ds.G1, ds.G2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	for i, s := range scored {
		initial[i] = s.Link
	}
	cfg := core.DefaultConfig()
	cfg.EpisodeSize = 120
	cfg.MaxEpisodes = 12
	return ds, initial, cfg
}

func TestDistributedRunImprovesQuality(t *testing.T) {
	ds, initial, cfg := clusterWorld(t)
	addrs := startWorkers(t, 3)

	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if coord.Workers() != 3 {
		t.Fatalf("workers = %d", coord.Workers())
	}
	if err := coord.Setup(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg); err != nil {
		t.Fatal(err)
	}

	before, err := coord.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	mBefore := eval.Compute(before, ds.GroundTruth)

	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(3)))
	res, err := coord.Run(oracle, nil)
	if err != nil {
		t.Fatal(err)
	}
	after, err := coord.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	mAfter := eval.Compute(after, ds.GroundTruth)
	t.Logf("distributed: %d episodes, %v -> %v", res.Episodes, mBefore, mAfter)
	if mAfter.F1 <= mBefore.F1 {
		t.Fatalf("no improvement: %.3f -> %.3f", mBefore.F1, mAfter.F1)
	}
	if res.Episodes == 0 {
		t.Fatal("no episodes ran")
	}
}

func TestDistributedMatchesInitialCandidates(t *testing.T) {
	ds, initial, cfg := clusterWorld(t)
	addrs := startWorkers(t, 2)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Setup(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg); err != nil {
		t.Fatal(err)
	}
	cands, err := coord.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	want := links.NewSet(initial...)
	if cands.SymmetricDiff(want) != 0 {
		t.Fatalf("initial candidates differ by %d links across the wire", cands.SymmetricDiff(want))
	}
}

func TestDialFailures(t *testing.T) {
	if _, err := Dial(nil); err == nil {
		t.Fatal("Dial with no addresses succeeded")
	}
	if _, err := Dial([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("Dial to closed port succeeded")
	}
}

func TestWorkerRejectsCallsBeforeAssign(t *testing.T) {
	addrs := startWorkers(t, 1)
	client, err := rpc.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var n int
	if err := client.Call("Worker.CandidateCount", Empty{}, &n); err == nil {
		t.Fatal("unassigned worker accepted a call")
	}
	var sr SampleReply
	if err := client.Call("Worker.Sample", Empty{}, &sr); err == nil {
		t.Fatal("unassigned worker sampled")
	}
}

func TestWorkerAssignBadData(t *testing.T) {
	addrs := startWorkers(t, 1)
	client, err := rpc.Dial("tcp", addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	var reply AssignReply
	err = client.Call("Worker.Assign", AssignArgs{
		Dataset1NT: "not ntriples at all",
		Dataset2NT: "",
	}, &reply)
	if err == nil {
		t.Fatal("bad dataset accepted")
	}
	err = client.Call("Worker.Assign", AssignArgs{
		Dataset1NT: `<http://a> <http://p> "x" .`,
		Dataset2NT: `<http://b> <http://p> "x" .`,
		Entities1:  []string{"http://missing"},
	}, &reply)
	if err == nil {
		t.Fatal("unknown entity accepted")
	}
}

func TestConfigWireRoundTrip(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.StepSize = 0.07
	cfg.Epsilon = 0.2
	cfg.UseRollback = false
	w := FromConfig(cfg)
	back := w.toConfig()
	if back.StepSize != 0.07 || back.Epsilon != 0.2 || back.UseRollback {
		t.Fatalf("round trip lost fields: %+v", back)
	}
	if back.Partitions != 1 {
		t.Fatalf("worker config must pin Partitions=1, got %d", back.Partitions)
	}
}

// The distributed run and a local run with the same partition count are
// both valid executions; this test checks the distributed path reaches
// comparable quality (not identical: RNG streams differ by transport).
func TestDistributedComparableToLocal(t *testing.T) {
	ds, initial, cfg := clusterWorld(t)
	cfg.Partitions = 2

	local := core.New(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg)
	oracle := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(5)))
	local.Run(oracle, nil)
	mLocal := eval.Compute(local.Candidates(), ds.GroundTruth)

	addrs := startWorkers(t, 2)
	coord, err := Dial(addrs)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Setup(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg); err != nil {
		t.Fatal(err)
	}
	oracle2 := feedback.NewOracle(ds.GroundTruth, 0, rand.New(rand.NewSource(5)))
	if _, err := coord.Run(oracle2, nil); err != nil {
		t.Fatal(err)
	}
	set, err := coord.Candidates()
	if err != nil {
		t.Fatal(err)
	}
	mDist := eval.Compute(set, ds.GroundTruth)
	t.Logf("local F=%.3f, distributed F=%.3f", mLocal.F1, mDist.F1)
	if mDist.F1 < mLocal.F1-0.25 {
		t.Fatalf("distributed quality far below local: %.3f vs %.3f", mDist.F1, mLocal.F1)
	}
}
