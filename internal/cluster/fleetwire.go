// Fleet wire types: the partition and snapshot vocabulary shared by a
// sharded alexd deployment (internal/fleet, internal/server and the
// cmd/alexd / cmd/alexrouter binaries).
//
// A fleet of N shards divides the 64-bit hash space into N contiguous
// ranges; a dataset-1 entity belongs to the shard whose range contains
// the FNV-1a hash of its IRI. Hashing the IRI (never the dictionary ID)
// keeps ownership stable across nodes: every shard interns terms into
// its own dictionary, exactly as the RPC cluster does, so only the
// textual identity is comparable fleet-wide. The same ranges drive
// three decisions that must agree or links are silently lost:
//
//   - which entities a shard builds its ALEX partition over (cmd/alexd),
//   - which shard the router sends a feedback link to (internal/fleet),
//   - which links a shard accepts as its own (internal/server).
//
// SnapshotManifest is the replication unit: after every episode a shard
// publishes its authoritative link partition (with its provenance — the
// owning shard, the range it covers and the episode that produced it)
// so every peer can serve full reads; see internal/server's replicator.
package cluster

import (
	"fmt"
	"math/bits"
	"sort"
)

// HashRange is a contiguous, half-open range [Lo, Hi) of the 64-bit
// entity-hash space. Hi == 0 means the top of the space (2^64), so the
// last shard's range needs no special casing on the wire.
type HashRange struct {
	Lo uint64 `json:"lo"`
	Hi uint64 `json:"hi"` // exclusive; 0 = top of the hash space
}

// Contains reports whether hash h falls inside the range.
func (r HashRange) Contains(h uint64) bool {
	return h >= r.Lo && (r.Hi == 0 || h < r.Hi)
}

// ContainsIRI reports whether the entity IRI hashes into the range.
func (r HashRange) ContainsIRI(iri string) bool {
	return r.Contains(EntityHash(iri))
}

// String renders the range compactly for logs and health reports.
func (r HashRange) String() string {
	hi := r.Hi
	if hi == 0 {
		return fmt.Sprintf("[%#016x, 2^64)", r.Lo)
	}
	return fmt.Sprintf("[%#016x, %#016x)", r.Lo, hi)
}

// EntityHash maps an entity IRI to its position in the hash space:
// 64-bit FNV-1a followed by an avalanche finalizer (SplitMix64's
// mixer). The finalizer is load-bearing, not decoration — OwnerOf
// partitions the space by the TOP bits, and raw FNV-1a barely
// diffuses a trailing-byte difference upward (one multiply moves the
// last byte only into bits ~40–48), so sequential IRIs like
// .../resource/E0, E1, E2 … all share their high bits and collapse
// onto a single shard. The mixer spreads every input bit across the
// whole word, restoring the ~1/n per-range balance the fleet sizing
// assumes. The function is part of the fleet wire contract: every node
// must compute identical ownership, so it must never change while a
// deployment's journals are live.
func EntityHash(iri string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(iri); i++ {
		h ^= uint64(iri[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// FleetRanges splits the hash space into n contiguous, disjoint,
// covering ranges — one per shard, in shard-ID order. Boundaries are
// floor(i*2^64/n), so the ranges are equal to within one hash value and
// every node derives the identical partition from n alone.
func FleetRanges(n int) []HashRange {
	if n < 1 {
		n = 1
	}
	bound := func(i int) uint64 {
		if i == 0 {
			return 0
		}
		q, _ := bits.Div64(uint64(i), 0, uint64(n)) // floor(i*2^64/n), exact for i < n
		return q
	}
	out := make([]HashRange, n)
	for i := 0; i < n; i++ {
		var hi uint64 // 0 = top of the space, for the last shard
		if i < n-1 {
			hi = bound(i + 1)
		}
		out[i] = HashRange{Lo: bound(i), Hi: hi}
	}
	return out
}

// OwnerOf returns the index of the range owning the entity IRI. ranges
// must be sorted ascending by Lo and cover the space (FleetRanges
// output qualifies).
func OwnerOf(ranges []HashRange, iri string) int {
	h := EntityHash(iri)
	// The first range with Lo > h is one past the owner.
	i := sort.Search(len(ranges), func(i int) bool { return ranges[i].Lo > h })
	if i == 0 {
		return 0 // degenerate input; FleetRanges always starts at 0
	}
	return i - 1
}

// ShardInfo identifies one shard of a fleet: its ID (index into the
// fleet's range list), its advertised address and the range it owns.
type ShardInfo struct {
	ID    int       `json:"id"`
	Addr  string    `json:"addr,omitempty"`
	Range HashRange `json:"range"`
}

// SnapshotManifest is a shard's published link-set snapshot: the links
// of its authoritative partition plus the provenance needed to trust
// and order it — which shard produced it, the range those links' E1
// entities hash into, and the episode (and published snapshot version)
// the set reflects. Links travel as IRI pairs, never dictionary IDs:
// the receiver interns into its own dictionary.
type SnapshotManifest struct {
	ShardID int       `json:"shard_id"`
	Range   HashRange `json:"range"`
	// Episode orders manifests from the same shard: a receiver replaces
	// its stored copy only when the incoming episode is newer.
	Episode int `json:"episode"`
	// Version is the shard's published snapshot version at manifest
	// time, for observability (episode, not version, decides staleness).
	Version uint64     `json:"version"`
	Links   []LinkWire `json:"links"`
}

// HealthPush is the POST /router/health body: a shard telling a router
// about its own health transition, so failover reacts in milliseconds
// instead of waiting out the router's poll interval. "down" is pushed
// on graceful shutdown and trusted immediately; "up" is pushed on
// startup and only triggers a verification probe (a shard cannot vouch
// for its own reachability from the router's side of the network).
type HealthPush struct {
	ShardID int    `json:"shard_id"`
	Status  string `json:"status"` // "up" or "down"
}
