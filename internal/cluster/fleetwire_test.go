package cluster

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// TestFleetWireRoundTrip is the fleet twin of TestConfigWireRoundTrip:
// every field of the fleet wire types must survive a JSON round trip,
// catching silently-dropped fields (a missing tag, an unexported field,
// a renamed key) before they lose links between shards.
func TestFleetWireRoundTrip(t *testing.T) {
	manifests := []SnapshotManifest{
		{
			ShardID: 2,
			Range:   HashRange{Lo: 0x4000000000000000, Hi: 0x8000000000000000},
			Episode: 17,
			Version: 43,
			Links: []LinkWire{
				{E1: "http://ds1/a", E2: "http://ds2/b"},
				{E1: "http://ds1/x", E2: "http://ds2/y"},
			},
		},
		// Last-shard shape: Hi == 0 (top of the hash space) and an empty
		// link set must both survive.
		{ShardID: 3, Range: HashRange{Lo: 0xc000000000000000, Hi: 0}, Episode: 0, Version: 1, Links: nil},
	}
	for _, m := range manifests {
		data, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		var back SnapshotManifest
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("manifest round trip lost fields:\n sent %+v\n got  %+v", m, back)
		}
	}

	info := ShardInfo{ID: 1, Addr: "10.0.0.7:8081", Range: HashRange{Lo: 7, Hi: 11}}
	data, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	var back ShardInfo
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(info, back) {
		t.Fatalf("shard info round trip lost fields:\n sent %+v\n got  %+v", info, back)
	}
}

// The wire keys are a cross-version contract: renaming one desyncs
// mixed-version fleets even though same-version round trips still pass.
func TestFleetWireKeys(t *testing.T) {
	data, err := json.Marshal(SnapshotManifest{Links: []LinkWire{{E1: "a", E2: "b"}}})
	if err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"shard_id", "range", "episode", "version", "links"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("manifest JSON lost key %q: %s", key, data)
		}
	}
	var links []map[string]any
	b, _ := json.Marshal(raw["links"])
	if err := json.Unmarshal(b, &links); err != nil || len(links) != 1 {
		t.Fatalf("manifest links malformed: %s", data)
	}
	if _, ok := links[0]["e1"]; !ok {
		t.Fatalf("link JSON must use lowercase e1/e2 keys (the /feedback wire convention): %s", data)
	}
}

func TestFleetRangesPartitionTheHashSpace(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		ranges := FleetRanges(n)
		if len(ranges) != n {
			t.Fatalf("n=%d: got %d ranges", n, len(ranges))
		}
		if ranges[0].Lo != 0 {
			t.Fatalf("n=%d: first range starts at %#x", n, ranges[0].Lo)
		}
		if ranges[n-1].Hi != 0 {
			t.Fatalf("n=%d: last range must end at the top of the space, got %#x", n, ranges[n-1].Hi)
		}
		for i := 1; i < n; i++ {
			if ranges[i].Lo != ranges[i-1].Hi {
				t.Fatalf("n=%d: gap or overlap between range %d and %d: %v, %v", n, i-1, i, ranges[i-1], ranges[i])
			}
		}
		// Every hash is owned by exactly one range, and OwnerOf agrees
		// with Contains.
		rng := rand.New(rand.NewSource(int64(n)))
		probes := []uint64{0, 1, ^uint64(0), ^uint64(0) - 1}
		for i := 0; i < 200; i++ {
			probes = append(probes, rng.Uint64())
		}
		for _, r := range ranges {
			probes = append(probes, r.Lo) // boundaries are the edge cases
		}
		for _, h := range probes {
			owners := 0
			owner := -1
			for i, r := range ranges {
				if r.Contains(h) {
					owners++
					owner = i
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: hash %#x owned by %d ranges", n, h, owners)
			}
			_ = owner
		}
	}
}

func TestOwnerOfMatchesContains(t *testing.T) {
	iris := []string{
		"http://ds1.example.org/entity/1",
		"http://ds1.example.org/entity/2",
		"http://dbpedia.org/resource/Aspirin",
		"", // degenerate but must not panic
		"x",
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		iris = append(iris, "http://ds1/e"+string(rune('a'+rng.Intn(26)))+string(rune('a'+rng.Intn(26))))
	}
	for _, n := range []int{1, 2, 4, 5} {
		ranges := FleetRanges(n)
		for _, iri := range iris {
			o := OwnerOf(ranges, iri)
			if o < 0 || o >= n {
				t.Fatalf("n=%d: owner %d out of range for %q", n, o, iri)
			}
			if !ranges[o].ContainsIRI(iri) {
				t.Fatalf("n=%d: OwnerOf(%q)=%d but range %v does not contain hash %#x",
					n, iri, o, ranges[o], EntityHash(iri))
			}
		}
	}
}

// EntityHash is a wire contract: pin known values so an accidental
// algorithm change (which would re-partition every live deployment)
// fails loudly. Pins are FNV-1a + the SplitMix64 finalizer — the
// finalizer is deliberate (top-bit balance for OwnerOf), so these
// values changed exactly once, with it.
func TestEntityHashPinned(t *testing.T) {
	cases := map[string]uint64{
		"":              0xf52a15e9a9b5e89b,
		"a":             0x02c0bdbf481420f8,
		"http://ds1/a1": EntityHash("http://ds1/a1"), // self-consistency
	}
	for iri, want := range cases {
		if got := EntityHash(iri); got != want {
			t.Fatalf("EntityHash(%q) = %#x, want %#x", iri, got, want)
		}
	}
	if EntityHash("http://ds1/a1") == EntityHash("http://ds1/a2") {
		t.Fatal("distinct IRIs should hash apart")
	}
}

// Sequential IRIs (the shape every generated or scraped dataset has)
// must spread across shards. Raw FNV-1a failed this badly: its last
// multiply leaves the top bits — which OwnerOf partitions by — almost
// untouched by trailing-byte differences, so .../E0 … .../E99 all
// landed on one shard and a "fleet" degenerated to a single writer.
// The SplitMix64 finalizer restores balance; keep it honest.
func TestEntityHashSequentialIRIBalance(t *testing.T) {
	const total = 300
	for _, n := range []int{2, 3, 4} {
		ranges := FleetRanges(n)
		counts := make([]int, n)
		for i := 0; i < total; i++ {
			counts[OwnerOf(ranges, fmt.Sprintf("http://ds1.example.org/resource/E%d", i))]++
		}
		// Loose bound: every shard owns at least half its fair share.
		for id, c := range counts {
			if c < total/(2*n) {
				t.Fatalf("n=%d: shard %d owns %d of %d sequential IRIs (fair share %d): %v",
					n, id, c, total, total/n, counts)
			}
		}
	}
}
