// Cross-shard transaction wire types: the prepare/commit vocabulary
// shared by the fleet router (coordinator) and the shards (owners).
//
// A feedback batch whose links span shard owners cannot be acked link
// by link — a crash between two owners' acks would leave the batch
// half-applied, which the single-node WAL contract (202 means durable,
// all of it) forbids. Instead the router assigns the batch a random ID,
// sends each owner its slice of the links as a *prepare*, and acks the
// client only after every owner has journaled (and fsynced) a prepared
// record. The commit that follows is asynchronous: prepared state is
// durable on every owner, so the outcome is already decided — any
// owner that restarts before its commit mark arrives recovers it by
// asking its peers (DecideTxn below).
//
// The protocol is deliberately not full 2PC: there is no coordinator
// log. The router is stateless, so a router crash after the ack loses
// nothing — the owners' journals collectively encode the outcome, and
// each owner's resolver reconstructs it. See DESIGN.md for the
// decision record.
package cluster

// Transaction statuses as they appear on the wire (/txn/status) and in
// resolver decisions. Unknown means the shard has no record of the
// transaction — either it never prepared, or the outcome was resolved
// long ago and pruned.
const (
	TxnUnknown   = "unknown"
	TxnPrepared  = "prepared"
	TxnCommitted = "committed"
	TxnAborted   = "aborted"
)

// TxnPrepare is one owner's slice of a cross-shard feedback batch. It
// is both the /txn/prepare request body and the journaled payload of a
// wal.KindPrepare record.
type TxnPrepare struct {
	// ID is the router-assigned batch ID, shared by every owner's
	// prepare. Resends with the same ID are idempotent.
	ID string `json:"id"`
	// Owners lists the shard IDs participating in the batch (including
	// the receiver), so a recovering owner knows which peers to consult
	// for the outcome.
	Owners []int `json:"owners"`
	// Approve and Links mirror FeedbackRequest: the slice of the batch
	// owned by the receiving shard.
	Approve bool       `json:"approve"`
	Links   []LinkWire `json:"links"`
}

// TxnMark is the /txn/commit and /txn/abort request body and the
// journaled payload of wal.KindCommit / wal.KindAbort records.
type TxnMark struct {
	ID string `json:"id"`
}

// TxnStatusReply is the /txn/status response body.
type TxnStatusReply struct {
	ID     string `json:"id"`
	Status string `json:"status"`
}

// DecideTxn resolves the outcome of a prepared transaction from the
// statuses reported by the other participants. It is only safe to call
// when every status was actually obtained (unreachable peers must stall
// the decision, not default to unknown) and after a grace period longer
// than the router's prepare deadline, so "unknown" can only mean the
// peer never journaled a prepare — not that its prepare is still in
// flight.
//
// The rules, in precedence order:
//
//   - any peer committed → committed (the outcome was decided; commit
//     marks only exist for fully-prepared batches);
//   - any peer aborted or unknown → aborted (some owner never prepared
//     or already resolved to abort, so the router can never have acked
//     the batch);
//   - all peers prepared → committed. The router acks after the last
//     prepare succeeds, so a fully-prepared batch is one the client
//     either saw acked or will retry; committing matches the
//     at-least-once contract either way.
//
// An unrecognized status yields "" — the caller must keep the
// transaction pending rather than guess.
func DecideTxn(peerStatuses []string) string {
	sawAbort := false
	for _, s := range peerStatuses {
		switch s {
		case TxnCommitted:
			return TxnCommitted
		case TxnAborted, TxnUnknown:
			sawAbort = true
		case TxnPrepared:
		default:
			return ""
		}
	}
	if sawAbort {
		return TxnAborted
	}
	return TxnCommitted
}
