package cluster

import "testing"

func TestDecideTxn(t *testing.T) {
	cases := []struct {
		name  string
		peers []string
		want  string
	}{
		{"all prepared commits", []string{TxnPrepared, TxnPrepared}, TxnCommitted},
		{"no peers commits", nil, TxnCommitted},
		{"any committed wins", []string{TxnUnknown, TxnCommitted}, TxnCommitted},
		{"committed beats aborted", []string{TxnAborted, TxnCommitted}, TxnCommitted},
		{"unknown aborts", []string{TxnPrepared, TxnUnknown}, TxnAborted},
		{"aborted aborts", []string{TxnAborted, TxnPrepared}, TxnAborted},
		{"garbage stalls", []string{TxnPrepared, "wedged"}, ""},
	}
	for _, c := range cases {
		if got := DecideTxn(c.peers); got != c.want {
			t.Errorf("%s: DecideTxn(%v) = %q, want %q", c.name, c.peers, got, c.want)
		}
	}
}
