// The package loader behind alexlint, in two phases. Phase one:
// `go list -deps -export` resolves the import graph (dependency-first
// order) and compiles export data into the build cache; every
// non-standard package in the graph is then parsed and typechecked from
// source, importing already-checked module packages directly and the
// standard library from export data. Phase two: ComputeFacts walks all
// the source packages and propagates interprocedural facts over the
// repo-wide call graph (facts.go). Everything runs offline — the module
// has no external dependencies and the standard library's export data
// comes from the local toolchain's build cache.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test Go files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// Result is one completed load: the requested target packages, the
// full non-standard source graph behind them (dependencies first), and
// the interprocedural facts computed over that graph.
type Result struct {
	Pkgs  []*Package // the packages the patterns matched
	All   []*Package // Pkgs plus their non-stdlib dependencies, deps first
	Facts *FactSet
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

const listFields = "-json=ImportPath,Export,Dir,GoFiles,Standard,Error"

func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", args, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", args, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns with the go tool (relative to dir; "" means
// the current directory), parses and typechecks every non-standard
// package in their dependency graph from source, and computes facts
// over the whole graph. Standard-library packages are imported from
// export data; module packages import each other's source-checked
// types directly (go list's -deps order guarantees dependencies come
// first), so cross-package object identity holds within one load.
func Load(dir string, patterns ...string) (*Result, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(targets))
	for _, t := range targets {
		wanted[t.ImportPath] = true
	}
	// One -deps -export walk compiles and exposes export data for the
	// whole graph, including the standard library.
	graph, err := goList(dir, append([]string{"-deps", "-export", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(graph))
	var order []listedPkg
	for _, p := range graph {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard {
			order = append(order, p)
		}
	}

	fset := token.NewFileSet()
	source := map[string]*types.Package{}
	gc := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if tp, ok := source[path]; ok {
			return tp, nil
		}
		return gc.Import(path)
	})

	res := &Result{}
	for _, p := range order {
		pkg, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		source[p.ImportPath] = pkg.Types
		res.All = append(res.All, pkg)
		if wanted[p.ImportPath] {
			res.Pkgs = append(res.Pkgs, pkg)
		}
	}
	res.Facts = ComputeFacts(res.All, nil)
	return res, nil
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// VetConfig is the subset of cmd/go's vet configuration JSON that
// alexlint's `go vet -vettool` mode consumes. cmd/go hands the tool one
// such file per package, with export data for every dependency already
// compiled and the dependencies' fact files listed in PackageVetx.
type VetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses a cmd/go vet configuration file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

// LoadVetPackage parses and typechecks the single package described by
// a cmd/go vet configuration, importing dependencies from the export
// data files cmd/go listed in PackageFile, then computes the package's
// facts on top of the dependency facts deserialized from the PackageVetx
// files (each written by an earlier alexlint invocation on that
// dependency — cmd/go sequences the runs dependency-first and caches
// them against the tool's -V=full hash).
func LoadVetPackage(cfg *VetConfig) (*Package, *FactSet, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	pkg, err := typecheck(fset, imp, listedPkg{
		Dir:        cfg.Dir,
		ImportPath: cfg.ImportPath,
		GoFiles:    cfg.GoFiles,
	})
	if err != nil {
		return nil, nil, err
	}
	imported := NewFactSet()
	for path, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			return nil, nil, fmt.Errorf("reading facts for %s: %w", path, err)
		}
		if err := imported.DecodeJSON(data); err != nil {
			return nil, nil, fmt.Errorf("decoding facts for %s: %w", path, err)
		}
	}
	facts := ComputeFacts([]*Package{pkg}, imported)
	return pkg, facts, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, p listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
	}
	return &Package{
		Path:  p.ImportPath,
		Dir:   p.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
