// The package loader behind alexlint: `go list -deps -export` resolves
// the import graph and compiles export data into the build cache, and
// the gc importer typechecks each target package's syntax against that
// export data. Everything runs offline — the module has no external
// dependencies and the standard library's export data comes from the
// local toolchain's build cache.
package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path  string // import path
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File // non-test Go files, parsed with comments
	Types *types.Package
	Info  *types.Info
}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	Error      *struct{ Err string }
}

const listFields = "-json=ImportPath,Export,Dir,GoFiles,Standard,Error"

func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", args, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %w", args, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load resolves patterns with the go tool (relative to dir; "" means the
// current directory), then parses and typechecks every matched
// non-standard package. Dependencies are imported from export data, so
// each target is typechecked exactly once, from its own source.
func Load(dir string, patterns ...string) ([]*Package, error) {
	targets, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	wanted := make(map[string]bool, len(targets))
	for _, t := range targets {
		wanted[t.ImportPath] = true
	}
	// One -deps -export walk compiles and exposes export data for the
	// whole graph, including the standard library.
	graph, err := goList(dir, append([]string{"-deps", "-export", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(graph))
	var order []listedPkg
	for _, p := range graph {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if wanted[p.ImportPath] && !p.Standard {
			order = append(order, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	var out []*Package
	for _, p := range order {
		pkg, err := typecheck(fset, imp, p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// VetConfig is the subset of cmd/go's vet configuration JSON that
// alexlint's `go vet -vettool` mode consumes. cmd/go hands the tool one
// such file per package, with export data for every dependency already
// compiled.
type VetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	NonGoFiles  []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool
	PackageVetx map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// ReadVetConfig parses a cmd/go vet configuration file.
func ReadVetConfig(path string) (*VetConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	cfg := new(VetConfig)
	if err := json.Unmarshal(data, cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %w", path, err)
	}
	return cfg, nil
}

// LoadVetPackage parses and typechecks the single package described by a
// cmd/go vet configuration, importing dependencies from the export data
// files cmd/go listed in PackageFile.
func LoadVetPackage(cfg *VetConfig) (*Package, error) {
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	return typecheck(fset, imp, listedPkg{
		Dir:        cfg.Dir,
		ImportPath: cfg.ImportPath,
		GoFiles:    cfg.GoFiles,
	})
}

func typecheck(fset *token.FileSet, imp types.Importer, p listedPkg) (*Package, error) {
	files := make([]*ast.File, 0, len(p.GoFiles))
	for _, name := range p.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(p.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", p.ImportPath, err)
	}
	return &Package{
		Path:  p.ImportPath,
		Dir:   p.Dir,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}
