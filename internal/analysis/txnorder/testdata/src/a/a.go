// Fixture a: PR 7's bug shape — the cross-shard prepare path acks 202
// while the durable prepare is still in flight. Kill the process right
// after the ack and a shard that never journaled its slice forgets the
// batch the client was just promised.
package a

import (
	"net/http"
	"sync"

	"alex/internal/wal"
)

type router struct {
	log *wal.Log
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
}

// ackBeforeFanout: the launches are asynchronous and nothing collects
// them before the 202 — the literal PR-7 shape.
func (r *router) ackBeforeFanout(w http.ResponseWriter, slices [][]byte) {
	for _, p := range slices {
		p := p
		go func() {
			r.log.Append(p)
		}()
	}
	writeJSON(w, http.StatusAccepted, nil) // want `202 Accepted on the prepare path without a dominating durable prepare`
}

// waitAfterAck: the Wait exists but runs after the client already has
// its 202 — dominance is about order, not presence.
func (r *router) waitAfterAck(w http.ResponseWriter, slices [][]byte) {
	var wg sync.WaitGroup
	for _, p := range slices {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.log.Append(p)
		}()
	}
	writeJSON(w, http.StatusAccepted, nil) // want `202 Accepted on the prepare path without a dominating durable prepare`
	wg.Wait()
}

// conditionalPrepare journals on one branch and acks on all of them.
func (r *router) conditionalPrepare(w http.ResponseWriter, p []byte, durable bool) {
	if durable {
		r.log.Append(p)
	}
	writeJSON(w, http.StatusAccepted, nil) // want `202 Accepted on the prepare path without a dominating durable prepare`
}

// bareWait: a Wait with no journaling goroutine behind it vouches for
// nothing.
func (r *router) bareWait(w http.ResponseWriter, wg *sync.WaitGroup) {
	wg.Wait()
	writeJSON(w, http.StatusAccepted, nil) // want `202 Accepted on the prepare path without a dominating durable prepare`
}
