// Fixture b: compliant prepare paths — the 202 is dominated by a
// durable prepare, either a direct journal append, a scatter-gather
// whose WaitGroup.Wait collects every shard's prepare, or a remote
// prepare RPC whose contract is journal-before-ack.
package b

import (
	"context"
	"net/http"
	"sync"

	"alex/internal/cluster"
	"alex/internal/server"
	"alex/internal/wal"
)

type router struct {
	log    *wal.Log
	client *server.Client
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
}

// directPrepare journals synchronously before the ack.
func (r *router) directPrepare(w http.ResponseWriter, p []byte) {
	if _, err := r.log.Append(p); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, nil)
		return
	}
	writeJSON(w, http.StatusAccepted, nil)
}

// gatheredFanout is PR 7's fix: the Wait is the point where every
// asynchronous prepare has provably completed, and it dominates the
// ack.
func (r *router) gatheredFanout(w http.ResponseWriter, slices [][]byte) {
	var wg sync.WaitGroup
	for _, p := range slices {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			r.log.Append(p)
		}()
	}
	wg.Wait()
	writeJSON(w, http.StatusAccepted, nil)
}

// remotePrepare relies on the RPC contract: a non-error TxnPrepare
// return means the remote shard journaled and fsynced before acking.
func (r *router) remotePrepare(w http.ResponseWriter, ctx context.Context, p cluster.TxnPrepare) {
	if _, err := r.client.TxnPrepare(ctx, p); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, nil)
		return
	}
	writeJSON(w, http.StatusAccepted, nil)
}

// nonAckStatuses: only the 202 durability promise is txnorder's
// business; errors and throttles need no barrier.
func (r *router) nonAckStatuses(w http.ResponseWriter) {
	writeJSON(w, http.StatusTooManyRequests, nil)
	writeJSON(w, http.StatusServiceUnavailable, nil)
}
