// Package txnorder extends ackorder's fsync-before-ack contract across
// functions and across the fleet: on the cross-shard prepare path, the
// durable prepared-WAL record must dominate the 202 ack — whether the
// journal write happens in this function, in a callee two packages
// away, or on a remote shard behind a prepare RPC.
//
// PR 7's bug shape: the router's cross-shard feedback handler acked 202
// after fanning the batch out, but the fan-out was asynchronous — kill
// the router right after the ack and a shard that never got its
// TxnPrepare forgets the batch. The fix journals (or collects every
// shard's prepare ack) strictly before the 202. This analyzer replays
// that shape mechanically, on top of the facts framework:
//
//   - an "ack" is any call carrying a constant 202 argument whose
//     callee's facts say it writes an HTTP status (AcksHTTP) —
//     WriteHeader(202) itself, this package's writeJSON, or another
//     package's;
//   - a "barrier" is a call whose facts say Journals: (*wal.Log).Append
//     or anything that transitively reaches it, and the Client RPCs
//     whose non-error return means a remote shard journaled and fsynced
//     (Feedback, TxnPrepare);
//   - additionally — the fleet's scatter-gather idiom — a
//     sync.WaitGroup.Wait() call counts as a barrier when some `go`
//     statement earlier in the same function launches a body containing
//     a Journals call: the Wait is the point where the asynchronous
//     prepares have provably completed. A `go` launch with no
//     dominating Wait before the ack is exactly the PR-7 bug and stays
//     a finding, because facts never credit a goroutine's effects to
//     its launcher (see ComputeFacts).
//
// Dominance is the same structural test ackorder uses: the barrier must
// execute on every path into the ack, so a prepare inside an `if` body,
// a select case or a closure does not count.
package txnorder

import (
	"go/ast"
	"go/types"

	"alex/internal/analysis"
	"alex/internal/analysis/ackorder"
)

// Analyzer is the txnorder checker, scoped to the serving layer and the
// fleet router — both ends of the cross-shard prepare path.
var Analyzer = &analysis.Analyzer{
	Name: "txnorder",
	Doc:  "flags cross-shard 202 acks not dominated by a durable prepare",
	Match: func(p string) bool {
		return analysis.PathHasAny(p, "alex/internal/server", "alex/internal/fleet")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	// Goroutines that journal: their launch positions gate which
	// WaitGroup.Wait calls count as barriers.
	var journalGoPos []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		if goJournals(pass, g) {
			journalGoPos = append(journalGoPos, g)
		}
		return true
	})

	var barrierPaths, ackPaths []analysis.NodePath
	analysis.WalkPaths(body, func(path analysis.NodePath) {
		call, ok := path.Node().(*ast.CallExpr)
		if !ok {
			return
		}
		_, facts := pass.CallFacts(call)
		if facts.Journals {
			barrierPaths = append(barrierPaths, path)
		}
		if isWaitGroupWait(pass, call) {
			for _, g := range journalGoPos {
				if g.Pos() < call.Pos() {
					barrierPaths = append(barrierPaths, path)
					break
				}
			}
		}
		if facts.AcksHTTP && ackorder.Writes202(pass, call) {
			ackPaths = append(ackPaths, path)
		}
	})

	for _, ack := range ackPaths {
		dominated := false
		for _, b := range barrierPaths {
			if analysis.Dominates(b, ack) {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(ack.Node().Pos(), "202 Accepted on the prepare path without a dominating durable prepare; journal the prepared record (or collect every shard's prepare ack via WaitGroup.Wait) before acking")
		}
	}
}

// goJournals reports whether the launched body (a function literal, or
// a same-package function — resolved through its facts) contains a
// Journals call.
func goJournals(pass *analysis.Pass, g *ast.GoStmt) bool {
	if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
		found := false
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if _, facts := pass.CallFacts(call); facts.Journals {
					found = true
				}
			}
			return true
		})
		return found
	}
	_, facts := pass.CallFacts(g.Call)
	return facts.Journals
}

// isWaitGroupWait matches sync.WaitGroup.Wait calls.
func isWaitGroupWait(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := analysis.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() != "Wait" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
