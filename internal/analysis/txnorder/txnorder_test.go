package txnorder_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"alex/internal/analysis"
	"alex/internal/analysis/analysistest"
	"alex/internal/analysis/txnorder"
)

func TestTxnorder(t *testing.T) {
	analysistest.Run(t, txnorder.Analyzer,
		"testdata/src/a", // acks racing their asynchronous prepares (the PR-7 shape)
		"testdata/src/b", // prepares that dominate the ack
	)
}

// TestCatchesPrepareAckMutation is the analyzer's reason to exist,
// demonstrated on the production source: take the real internal/server
// package, move the prepare path's 202 ahead of the journaling
// prepareTxn call, and the analyzer must flag exactly that regression —
// while staying silent on the pristine copy.
func TestCatchesPrepareAckMutation(t *testing.T) {
	pristine := copyServerPackage(t, nil)
	if findings := runTxnorder(t, pristine); len(findings) != 0 {
		t.Fatalf("pristine internal/server copy has %d txnorder findings, want 0: %v", len(findings), findings)
	}

	const prepareCall = "st, code, err := s.prepareTxn(req, item)"
	const earlyAck = "writeJSON(w, http.StatusAccepted, cluster.TxnStatusReply{ID: req.ID, Status: cluster.TxnPrepared})\n\t" + prepareCall
	mutated := copyServerPackage(t, func(name, src string) string {
		if name != "txn.go" {
			return src
		}
		if !strings.Contains(src, prepareCall) {
			t.Fatalf("txn.go no longer contains %q; update the mutation", prepareCall)
		}
		return strings.Replace(src, prepareCall, earlyAck, 1)
	})
	findings := runTxnorder(t, mutated)
	if len(findings) != 1 {
		t.Fatalf("mutated internal/server copy has %d txnorder findings, want exactly the early ack: %v", len(findings), findings)
	}
	f := findings[0]
	if filepath.Base(f.Pos.Filename) != "txn.go" || !strings.Contains(f.Message, "202 Accepted on the prepare path") {
		t.Fatalf("unexpected finding for the early-ack mutation: %s: %s", f.Pos, f.Message)
	}
}

// copyServerPackage clones internal/server's non-test sources into a
// fresh package directory under testdata (inside the module, so the
// loader resolves its alex/ imports), applying mutate to each file.
func copyServerPackage(t *testing.T, mutate func(name, src string) string) string {
	t.Helper()
	dir, err := os.MkdirTemp("testdata", "servercopy-")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })

	const serverDir = "../../server"
	entries, err := os.ReadDir(serverDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(serverDir, name))
		if err != nil {
			t.Fatal(err)
		}
		src := string(data)
		if mutate != nil {
			src = mutate(name, src)
		}
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runTxnorder(t *testing.T, dir string) []analysis.Finding {
	t.Helper()
	res, err := analysis.Load("", "./"+dir)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(res.Pkgs) != 1 {
		t.Fatalf("loaded %d packages from %s, want 1", len(res.Pkgs), dir)
	}
	unscoped := *txnorder.Analyzer
	unscoped.Match = nil
	findings, err := analysis.Run(res.Pkgs[0], res.Facts, []*analysis.Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("running txnorder on %s: %v", dir, err)
	}
	return findings
}
