package snapmut_test

import (
	"testing"

	"alex/internal/analysis/analysistest"
	"alex/internal/analysis/snapmut"
)

func TestSnapmut(t *testing.T) {
	analysistest.Run(t, snapmut.Analyzer,
		"testdata/src/a", // published-snapshot mutations (PR-2 bug shape)
		"testdata/src/b", // copy-on-write: build fresh, fill, Store
	)
}
