// Package snapmut enforces the serving layer's copy-on-write snapshot
// contract: a value published through an atomic.Pointer is immutable
// from the moment Store runs.
//
// The single-writer design (internal/server, DESIGN.md) lets query
// handlers evaluate lock-free because the writer never mutates a
// published *Snapshot — it builds a fresh value and swaps the pointer.
// A field write to a published snapshot reintroduces exactly the data
// race the architecture exists to prevent, invisible to the race
// detector until a reader happens to overlap it. PR 2's review caught
// one such write by hand; this analyzer catches them mechanically.
//
// For every named type T that the package publishes via an
// atomic.Pointer[T] (struct field or variable), a write to a field of a
// *T is a finding unless the pointee is provably this function's own
// unpublished copy:
//
//   - allowed: writes through a local built from &T{...} or new(T),
//     up to (lexically) the first atomic Store of that local;
//   - allowed: writes to a plain value copy (v := *snap; v.F = ...);
//   - flagged: writes through Load() results, parameters, receivers,
//     struct fields, or a constructed local after it was Store'd.
//
// The analysis is intraprocedural: a constructor that returns the fresh
// value for its caller to fill stays outside the contract (none exists
// in the serving layer — publish builds and stores in one function).
package snapmut

import (
	"go/ast"
	"go/token"
	"go/types"

	"alex/internal/analysis"
)

// Analyzer is the snapmut checker. It runs everywhere: packages that
// publish nothing through atomic.Pointer produce no findings, so the
// scope is self-limiting.
var Analyzer = &analysis.Analyzer{
	Name: "snapmut",
	Doc:  "flags writes to fields of snapshot types after publication through atomic.Pointer",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	published := publishedTypes(pass)
	if len(published) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, published, fn.Body)
				}
				return false
			case *ast.FuncLit:
				checkFunc(pass, published, fn.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// publishedTypes collects every named type T for which this package
// declares an atomic.Pointer[T] anywhere (struct field, package or
// local variable).
func publishedTypes(pass *analysis.Pass) map[*types.TypeName]bool {
	out := map[*types.TypeName]bool{}
	for _, obj := range pass.TypesInfo.Defs {
		v, ok := obj.(*types.Var)
		if !ok {
			continue
		}
		if elem := atomicPointerElem(v.Type()); elem != nil {
			if named, ok := elem.(*types.Named); ok && named.Obj().Pkg() == pass.Pkg {
				out[named.Obj()] = true
			}
		}
	}
	return out
}

// atomicPointerElem returns T when t is sync/atomic.Pointer[T].
func atomicPointerElem(t types.Type) types.Type {
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "Pointer" || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
		return nil
	}
	args := named.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil
	}
	return args.At(0)
}

// checkFunc analyzes one function body. It first collects the locals
// freshly constructed here (and where, if anywhere, each is Store'd),
// then flags every field write whose base is not such a pre-publication
// local.
func checkFunc(pass *analysis.Pass, published map[*types.TypeName]bool, body *ast.BlockStmt) {
	fresh := freshLocals(pass, published, body)
	stored := storePositions(pass, body)

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false // nested literals get their own checkFunc pass
		}
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range stmt.Lhs {
				checkWrite(pass, published, fresh, stored, lhs, stmt.Pos())
			}
		case *ast.IncDecStmt:
			checkWrite(pass, published, fresh, stored, stmt.X, stmt.Pos())
		}
		return true
	})
}

// checkWrite flags lhs when it writes a field of a published type
// through anything but a fresh, not-yet-stored local.
func checkWrite(pass *analysis.Pass, published map[*types.TypeName]bool, fresh map[types.Object]token.Pos, stored map[types.Object]token.Pos, lhs ast.Expr, at token.Pos) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.FieldVal {
		return // qualified identifier or method value, not a field write
	}
	base := ast.Unparen(sel.X)
	// Normalize explicit derefs: (*p).F writes through p.
	if star, ok := base.(*ast.StarExpr); ok {
		base = ast.Unparen(star.X)
	}
	tv, ok := pass.TypesInfo.Types[base]
	if !ok {
		return
	}
	ptr, ok := tv.Type.(*types.Pointer)
	if !ok {
		return // writes into a value copy never alias the published pointee
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok || !published[named.Obj()] {
		return
	}
	if obj := rootObject(pass, base); obj != nil {
		if _, isFresh := fresh[obj]; isFresh {
			storeAt, wasStored := stored[obj]
			if !wasStored || at < storeAt {
				return // this function's own copy, still unpublished
			}
			pass.Reportf(at, "write to %s.%s after the snapshot was published with Store; snapshots are immutable once stored — build a fresh %s instead", obj.Name(), sel.Sel.Name, named.Obj().Name())
			return
		}
	}
	pass.Reportf(at, "write to field %s of published snapshot type %s; snapshots are copy-on-write — construct a new value and Store it", sel.Sel.Name, named.Obj().Name())
}

// freshLocals maps each local variable object that is only ever
// assigned freshly-constructed values (&T{...}, new(T), or another
// fresh local) to the position of its construction.
func freshLocals(pass *analysis.Pass, published map[*types.TypeName]bool, body *ast.BlockStmt) map[types.Object]token.Pos {
	fresh := map[types.Object]token.Pos{}
	poisoned := map[types.Object]bool{}
	// Two passes so `a := &T{}; b := a` marks b regardless of order of
	// deeper aliasing chains; chains longer than the body's statement
	// count cannot exist.
	for pass1 := 0; pass1 < 2; pass1++ {
		ast.Inspect(body, func(n ast.Node) bool {
			var lhss, rhss []ast.Expr
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				lhss, rhss = stmt.Lhs, stmt.Rhs
			case *ast.ValueSpec: // var ns = &Snapshot{...}
				for _, name := range stmt.Names {
					lhss = append(lhss, name)
				}
				rhss = stmt.Values
			default:
				return true
			}
			if len(lhss) != len(rhss) {
				return true
			}
			for i, lhs := range lhss {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(id)
				if obj == nil {
					continue
				}
				if !pointsToPublished(pass, published, obj) {
					continue
				}
				if isFreshExpr(pass, fresh, rhss[i]) {
					if _, seen := fresh[obj]; !seen && !poisoned[obj] {
						fresh[obj] = rhss[i].Pos()
					}
				} else {
					// Reassigned from a non-fresh source (Load result,
					// parameter, ...): the local may alias published data.
					poisoned[obj] = true
					delete(fresh, obj)
				}
			}
			return true
		})
	}
	return fresh
}

func pointsToPublished(pass *analysis.Pass, published map[*types.TypeName]bool, obj types.Object) bool {
	ptr, ok := obj.Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	return ok && published[named.Obj()]
}

// isFreshExpr reports whether e constructs a brand-new value: &T{...},
// new(T), or an alias of an already-fresh local.
func isFreshExpr(pass *analysis.Pass, fresh map[types.Object]token.Pos, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
	case *ast.Ident:
		if obj := pass.TypesInfo.ObjectOf(e); obj != nil {
			_, ok := fresh[obj]
			return ok
		}
	}
	return false
}

// storePositions records, for each local, the position of the first
// atomic Pointer.Store call that publishes it.
func storePositions(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]token.Pos {
	stored := map[types.Object]token.Pos{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Store" {
			return true
		}
		recv, ok := pass.TypesInfo.Types[sel.X]
		if !ok || atomicPointerElem(recv.Type) == nil {
			return true
		}
		if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				if old, seen := stored[obj]; !seen || call.Pos() < old {
					stored[obj] = call.Pos()
				}
			}
		}
		return true
	})
	return stored
}

// rootObject resolves the identifier at the base of a selector chain
// (s.x.y -> s, p -> p); nil when the base is a call or index result.
func rootObject(pass *analysis.Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return pass.TypesInfo.ObjectOf(x)
		case *ast.SelectorExpr:
			// A field path like s.cache.snap roots at s only if we treat
			// the whole chain as one storage location; for freshness we
			// require a plain local, so a selector base is never fresh.
			return nil
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
