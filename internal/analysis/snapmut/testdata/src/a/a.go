// Fixture a: mutations of a published snapshot — the bug shape PR 2's
// review caught by hand in the serving layer, modeled on
// server.Snapshot / server.Server.
package a

import (
	"sync/atomic"
	"time"
)

type snapshot struct {
	links     []string
	version   uint64
	published time.Time
}

type server struct {
	snap atomic.Pointer[snapshot]
}

// mutateLoaded writes straight through the Load result: a concurrent
// query handler holding the same pointer observes the torn update.
func mutateLoaded(s *server) {
	s.snap.Load().version = 2 // want `write to field version of published snapshot type snapshot`
}

// mutateViaLocal is the same race one assignment later.
func mutateViaLocal(s *server, extra string) {
	sn := s.snap.Load()
	sn.links = append(sn.links, extra) // want `write to field links of published snapshot type snapshot`
}

// mutateAfterStore builds a fresh snapshot correctly, publishes it, and
// then keeps writing: immutable-after-Store is the contract.
func mutateAfterStore(s *server) {
	ns := &snapshot{version: 1}
	s.snap.Store(ns)
	ns.version = 2 // want `write to ns.version after the snapshot was published with Store`
}

// mutateParam writes through a pointer of unknown provenance; callers
// pass published snapshots here.
func mutateParam(sn *snapshot) {
	sn.version++ // want `write to field version of published snapshot type snapshot`
}

// mutateReceiver is the method form of the same hazard.
func (sn *snapshot) touch() {
	sn.published = time.Time{} // want `write to field published of published snapshot type snapshot`
}
