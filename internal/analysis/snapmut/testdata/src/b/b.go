// Fixture b: the compliant copy-on-write idiom — exactly what
// server.(*Server).publish does.
package b

import (
	"sync/atomic"
	"time"
)

type snapshot struct {
	links     []string
	version   uint64
	published time.Time
}

type server struct {
	snap atomic.Pointer[snapshot]
}

// publish builds a fresh value, fills it while unpublished, and swaps
// the pointer; the old snapshot is never touched.
func publish(s *server, links []string) {
	old := s.snap.Load()
	ns := &snapshot{
		links:   links,
		version: old.version + 1,
	}
	ns.published = time.Now()
	s.snap.Store(ns)
}

// publishVar is the same with a var declaration and new().
func publishVar(s *server) {
	var ns = new(snapshot)
	ns.version = 1
	s.snap.Store(ns)
}

// valueCopy mutates a dereferenced copy: no aliasing with the published
// pointee, so republishing the copy is fine.
func valueCopy(s *server) {
	v := *s.snap.Load()
	v.version++
	s.snap.Store(&v)
}

// alias keeps freshness across a plain assignment chain.
func alias(s *server) {
	ns := &snapshot{}
	tmp := ns
	tmp.version = 7
	s.snap.Store(tmp)
}
