// Package broken is a deliberately wrong fixture: its expectations
// disagree with the analyzer in both directions. The harness's own
// test asserts that running syncerr over it FAILS — a harness that
// accepts a broken fixture would silently accept broken analyzers.
package broken

import "os"

func drop(f *os.File) {
	f.Sync() // deliberately missing its want comment
}

func fine(f *os.File) error {
	return f.Sync() // want `discarded error` (wrong: the error is returned, not discarded)
}
