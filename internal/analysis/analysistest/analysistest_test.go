// The harness is itself load-bearing: every analyzer's fixtures prove
// their invariants through it, so a harness that fails to fail on a
// wrong expectation would quietly neuter the whole suite. This test
// feeds it a fixture that is wrong in both directions and requires
// both mismatches to surface.
package analysistest_test

import (
	"fmt"
	"strings"
	"testing"

	"alex/internal/analysis/analysistest"
	"alex/internal/analysis/syncerr"
)

type recorder struct {
	errs []string
}

func (r *recorder) Errorf(format string, args ...any) {
	r.errs = append(r.errs, fmt.Sprintf(format, args...))
}

func TestHarnessFailsOnBrokenFixture(t *testing.T) {
	rec := &recorder{}
	if err := analysistest.RunDir(rec, syncerr.Analyzer, "testdata/src/broken"); err != nil {
		t.Fatalf("operational failure, want expectation mismatches: %v", err)
	}
	if len(rec.errs) != 2 {
		t.Fatalf("broken fixture produced %d errors, want 2 (one unexpected, one unmatched):\n%s",
			len(rec.errs), strings.Join(rec.errs, "\n"))
	}
	var unexpected, unmatched bool
	for _, e := range rec.errs {
		if strings.Contains(e, "unexpected diagnostic") {
			unexpected = true
		}
		if strings.Contains(e, "no diagnostic matching") {
			unmatched = true
		}
	}
	if !unexpected {
		t.Errorf("missing-want line did not produce an 'unexpected diagnostic' error:\n%s", strings.Join(rec.errs, "\n"))
	}
	if !unmatched {
		t.Errorf("wrong-want line did not produce a 'no diagnostic matching' error:\n%s", strings.Join(rec.errs, "\n"))
	}
}

func TestHarnessRejectsMissingFixture(t *testing.T) {
	rec := &recorder{}
	if err := analysistest.RunDir(rec, syncerr.Analyzer, "testdata/src/nonexistent"); err == nil {
		t.Fatal("loading a nonexistent fixture directory succeeded, want an operational error")
	}
	if len(rec.errs) != 0 {
		t.Fatalf("operational failure leaked %d expectation errors: %v", len(rec.errs), rec.errs)
	}
}
