// Package analysistest runs an alexlint analyzer over fixture packages
// and checks its diagnostics against expectations written in the
// fixtures themselves, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is an ordinary package directory under the analyzer's
// testdata/src/. Every line that should trigger the analyzer carries a
// trailing comment of the form
//
//	x.Close() // want `discarded error`
//
// where the backquoted (or double-quoted) text is a regular expression
// that must match the diagnostic's message. Several `want` patterns on
// one line expect several diagnostics. Any reported diagnostic without a
// matching expectation — and any expectation without a diagnostic — is a
// test failure, so clean fixture lines double as negative cases.
//
// Fixtures are real module packages (go list resolves them by explicit
// path; testdata is invisible to ./... wildcards), so they may import
// live packages such as alex/internal/wal and reproduce this repo's
// actual historical bug shapes against the real types. The loader
// typechecks the fixture's whole module dependency graph from source
// and computes interprocedural facts over it, so fact-driven analyzers
// (lockhold, ctxflow, txnorder) see exactly what the production driver
// sees.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"alex/internal/analysis"
)

// Reporter is the slice of testing.T the harness needs. Tests for the
// harness itself substitute a recorder to assert that a broken fixture
// (a wrong or missing `want`) actually fails.
type Reporter interface {
	Errorf(format string, args ...any)
}

// Run loads each fixture directory (relative to the test's working
// directory, conventionally "testdata/src/<name>"), applies the
// analyzer, and reports any mismatch between expected and actual
// diagnostics as test errors.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDirs ...string) {
	t.Helper()
	for _, dir := range fixtureDirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Helper()
			if err := RunDir(t, a, dir); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// RunDir runs the analyzer over one fixture directory, reporting
// expectation mismatches through r. The returned error covers
// operational failures (fixture fails to load, bad want pattern,
// analyzer error) — conditions that should abort rather than
// accumulate.
func RunDir(r Reporter, a *analysis.Analyzer, dir string) error {
	res, err := analysis.Load("", "./"+dir)
	if err != nil {
		return fmt.Errorf("loading fixture %s: %v", dir, err)
	}
	if len(res.Pkgs) != 1 {
		return fmt.Errorf("fixture %s: loaded %d packages, want 1", dir, len(res.Pkgs))
	}
	pkg := res.Pkgs[0]

	// Bypass Match: fixtures live under testdata, not in the scoped
	// packages; scope is the driver's concern, behavior is tested here.
	unscoped := *a
	unscoped.Match = nil
	findings, err := analysis.Run(pkg, res.Facts, []*analysis.Analyzer{&unscoped})
	if err != nil {
		return fmt.Errorf("running %s on %s: %v", a.Name, dir, err)
	}

	wants, err := collectWants(pkg)
	if err != nil {
		return err
	}
	for _, f := range findings {
		key := posKey{file: f.Pos.Filename, line: f.Pos.Line}
		if !wants.take(key, f.Message) {
			r.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			r.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, e.String())
		}
	}
	return nil
}

type posKey struct {
	file string
	line int
}

type wantMap map[posKey][]*regexp.Regexp

// take consumes one expectation matching msg at key, reporting whether
// one existed.
func (w wantMap) take(key posKey, msg string) bool {
	for i, re := range w[key] {
		if re.MatchString(msg) {
			w[key] = append(w[key][:i], w[key][i+1:]...)
			if len(w[key]) == 0 {
				delete(w, key)
			}
			return true
		}
	}
	return false
}

// wantRE pulls the patterns out of a `// want ...` comment: one or more
// backquoted or double-quoted strings.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(pkg *analysis.Package) (wantMap, error) {
	wants := wantMap{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pat, err := unquote(q)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want regexp %s: %v", pos, q, err)
					}
					key := posKey{file: pos.Filename, line: pos.Line}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants, nil
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	s, err := strconv.Unquote(q)
	if err != nil {
		return "", fmt.Errorf("unquote %s: %w", q, err)
	}
	return s, nil
}
