// Package analysistest runs an alexlint analyzer over fixture packages
// and checks its diagnostics against expectations written in the
// fixtures themselves, in the style of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is an ordinary package directory under the analyzer's
// testdata/src/. Every line that should trigger the analyzer carries a
// trailing comment of the form
//
//	x.Close() // want `discarded error`
//
// where the backquoted (or double-quoted) text is a regular expression
// that must match the diagnostic's message. Several `want` patterns on
// one line expect several diagnostics. Any reported diagnostic without a
// matching expectation — and any expectation without a diagnostic — is a
// test failure, so clean fixture lines double as negative cases.
//
// Fixtures are real module packages (go list resolves them by explicit
// path; testdata is invisible to ./... wildcards), so they may import
// live packages such as alex/internal/wal and reproduce this repo's
// actual historical bug shapes against the real types.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"alex/internal/analysis"
)

// Run loads each fixture directory (relative to the test's working
// directory, conventionally "testdata/src/<name>"), applies the
// analyzer, and reports any mismatch between expected and actual
// diagnostics as test errors.
func Run(t *testing.T, a *analysis.Analyzer, fixtureDirs ...string) {
	t.Helper()
	for _, dir := range fixtureDirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Helper()
			runDir(t, a, dir)
		})
	}
}

func runDir(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	pkgs, err := analysis.Load("", "./"+dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("fixture %s: loaded %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	// Bypass Match: fixtures live under testdata, not in the scoped
	// packages; scope is the driver's concern, behavior is tested here.
	unscoped := *a
	unscoped.Match = nil
	findings, err := analysis.Run(pkg, []*analysis.Analyzer{&unscoped})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)
	for _, f := range findings {
		key := posKey{file: f.Pos.Filename, line: f.Pos.Line}
		if !wants.take(key, f.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", f.Pos, f.Message)
		}
	}
	for key, exps := range wants {
		for _, e := range exps {
			t.Errorf("%s:%d: no diagnostic matching %q", key.file, key.line, e.String())
		}
	}
}

type posKey struct {
	file string
	line int
}

type wantMap map[posKey][]*regexp.Regexp

// take consumes one expectation matching msg at key, reporting whether
// one existed.
func (w wantMap) take(key posKey, msg string) bool {
	for i, re := range w[key] {
		if re.MatchString(msg) {
			w[key] = append(w[key][:i], w[key][i+1:]...)
			if len(w[key]) == 0 {
				delete(w, key)
			}
			return true
		}
	}
	return false
}

// wantRE pulls the patterns out of a `// want ...` comment: one or more
// backquoted or double-quoted strings.
var wantRE = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

func collectWants(t *testing.T, pkg *analysis.Package) wantMap {
	t.Helper()
	wants := wantMap{}
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantRE.FindAllString(strings.TrimPrefix(text, "want "), -1) {
					pat, err := unquote(q)
					if err != nil {
						t.Fatalf("%s: bad want pattern %s: %v", pos, q, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %s: %v", pos, q, err)
					}
					key := posKey{file: pos.Filename, line: pos.Line}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}

func unquote(q string) (string, error) {
	if strings.HasPrefix(q, "`") {
		return strings.Trim(q, "`"), nil
	}
	s, err := strconv.Unquote(q)
	if err != nil {
		return "", fmt.Errorf("unquote %s: %w", q, err)
	}
	return s, nil
}
