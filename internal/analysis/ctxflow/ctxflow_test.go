package ctxflow_test

import (
	"testing"

	"alex/internal/analysis/analysistest"
	"alex/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analysistest.Run(t, ctxflow.Analyzer,
		"testdata/src/a", // escaped deadlines: bare Background, no-ctx entry points, dropped ctx
		"testdata/src/b", // propagated and self-bounded deadlines
	)
}
