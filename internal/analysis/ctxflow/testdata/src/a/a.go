// Fixture a: outbound requests that escape the caller's deadline — the
// unbounded-wait shapes the fleet's availability design forbids.
package a

import (
	"context"
	"net/http"
	"time"
)

var hc = &http.Client{}

// bareBackground manufactures an unbounded context on a request path.
func bareBackground(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context\.Background\(\) outside a context\.With\* wrapper`
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://shard/links", nil)
	hc.Do(req)
}

// bareTODO is the same hole spelled differently.
func bareTODO() context.Context {
	return context.TODO() // want `context\.TODO\(\) outside a context\.With\* wrapper`
}

// noCtxEntryPoints: the net/http surface that cannot carry a context.
func noCtxEntryPoints() {
	http.Get("http://shard/links")                             // want `net/http\.Get cannot carry the caller's context`
	hc.Post("http://shard/feedback", "text/json", nil)         // want `net/http\.Client\.Post cannot carry the caller's context`
	http.NewRequest(http.MethodGet, "http://shard/links", nil) // want `net/http\.NewRequest cannot carry the caller's context; use http\.NewRequestWithContext`
}

// fetchLinks performs an outbound request but accepts no context: it
// bounds itself, which is fine for lifecycle callers — but a caller
// holding a request context cannot propagate its deadline through it.
func fetchLinks() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://shard/links", nil)
	if err != nil {
		return err
	}
	_, err = hc.Do(req)
	return err
}

// handler has a deadline to give (r.Context()) and drops it at the
// fetchLinks call — the interprocedural shape rule three exists for.
func handler(w http.ResponseWriter, r *http.Request) {
	fetchLinks() // want `performs outbound requests but accepts no context`
}

// deepHandler shows the fact propagating: relay is Outbound only
// because fetchLinks is, one call further down.
func relay() error {
	return fetchLinks()
}

func deepHandler(ctx context.Context) {
	relay() // want `performs outbound requests but accepts no context`
}
