// Fixture b: compliant deadline flow — request paths derive from the
// caller's ctx, lifecycle scopes bound themselves with With*, and
// no-ctx helpers are called only by no-ctx (self-bounding) callers.
package b

import (
	"context"
	"net/http"
	"time"
)

var hc = &http.Client{}

// fetchLinksCtx is the Context variant: the caller's deadline rides in.
func fetchLinksCtx(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://shard/links", nil)
	if err != nil {
		return err
	}
	_, err = hc.Do(req)
	return err
}

// fetchLinks self-bounds; only no-ctx callers may use it.
func fetchLinks() error {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	return fetchLinksCtx(ctx)
}

// handler propagates the request's deadline.
func handler(w http.ResponseWriter, r *http.Request) {
	fetchLinksCtx(r.Context())
}

// handlerBounded derives a tighter deadline from the request's.
func handlerBounded(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := context.WithTimeout(r.Context(), time.Second)
	defer cancel()
	fetchLinksCtx(ctx)
}

// pollLoop is a lifecycle scope: no caller is waiting, so the bound
// comes from its own With* wrapper — and calling the no-ctx helper is
// legal because the loop has no inherited deadline to lose.
func pollLoop(stop chan struct{}) {
	for {
		select {
		case <-stop:
			return
		default:
		}
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		fetchLinksCtx(ctx)
		cancel()
		fetchLinks()
	}
}
