// Package ctxflow enforces deadline propagation on the fleet's request
// paths: every outbound request made from internal/server,
// internal/cluster or internal/fleet must be scopeable by the caller's
// context, and no request path may manufacture an unbounded
// context.Background().
//
// The fleet's availability story (hedged reads, circuit breakers,
// scatter-gather deadlines — DESIGN.md) assumes a slow shard can always
// be abandoned. One convenience call that ignores the request context
// — client.Links() with a baked-in Background() — reintroduces the
// unbounded wait the whole design exists to remove, and no local
// review can see it once the Background() is two packages away. The
// facts framework makes the property compositional; each function is
// held to three local rules, and their conjunction gives the global
// one by induction over the call graph:
//
//   - no call to a net/http entry point that cannot carry a context:
//     http.Get/Head/Post/PostForm, the Client equivalents, and
//     http.NewRequest (use NewRequestWithContext);
//   - no bare context.Background()/context.TODO(): the value must be
//     consumed directly by a context.With{Cancel,Timeout,Deadline,...}
//     wrapper, the accepted idiom for lifecycle-scoped (non-request)
//     work like health probes and background replication — those put a
//     bound on the work even though no caller is waiting;
//   - in a function that itself has a context to give (a ctx or
//     *http.Request parameter), no call to a module function whose
//     facts say it performs outbound requests (Outbound) but whose
//     signature accepts no context (!HasCtx): the caller's deadline
//     dies at that call. Add a Context variant and call that instead.
//     Callers without a ctx of their own — lifecycle loops like
//     health pollers and replicators — are exempt from this rule:
//     rule two already forces them to bound their work with With*,
//     and they have no inherited deadline to lose.
//
// Convenience wrappers without a ctx parameter stay legal for the cmd/
// tools (an interactive REPL has no deadline to propagate); the scoped
// daemon packages must use the Context variants.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"alex/internal/analysis"
)

// Analyzer is the ctxflow checker, scoped to the packages whose
// outbound requests serve other requests — where an unbounded wait
// stalls a caller that expected a deadline.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags outbound requests that cannot be scoped by the caller's context",
	Match: func(p string) bool {
		return analysis.PathHasAny(p, "alex/internal/server", "alex/internal/cluster", "alex/internal/fleet")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.WalkPaths(file, func(path analysis.NodePath) {
			call, ok := path.Node().(*ast.CallExpr)
			if !ok {
				return
			}
			fn := analysis.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return
			}
			checkCall(pass, path, call, fn)
		})
	}
	return nil
}

func checkCall(pass *analysis.Pass, path analysis.NodePath, call *ast.CallExpr, fn *types.Func) {
	pkgPath := ""
	if fn.Pkg() != nil {
		pkgPath = fn.Pkg().Path()
	}
	name := fn.Name()

	switch pkgPath {
	case "context":
		if name == "Background" || name == "TODO" {
			if !wrappedByWith(pass, path) {
				pass.Reportf(call.Pos(), "context.%s() outside a context.With* wrapper; request paths must derive from the caller's ctx, lifecycle scopes must bound themselves with WithTimeout/WithCancel", name)
			}
		}
		return
	case "net/http":
		if noCtxHTTPEntry(fn) {
			fix := "use (*http.Client).Do with http.NewRequestWithContext"
			if name == "NewRequest" {
				fix = "use http.NewRequestWithContext"
			}
			pass.Reportf(call.Pos(), "net/http.%s cannot carry the caller's context; %s", callName(fn), fix)
		}
		return
	}

	// Module functions: outbound but unscopeable — flagged only when the
	// enclosing function has a context it is failing to pass down.
	if strings.HasPrefix(pkgPath, "alex/") {
		if facts, ok := pass.FuncFacts(fn); ok && facts.Outbound && !facts.HasCtx && callerHasCtx(pass, path) {
			pass.Reportf(call.Pos(), "call to %s performs outbound requests but accepts no context; use its Context variant so the caller's deadline propagates", analysis.FuncKey(fn))
		}
	}
}

// callerHasCtx reports whether the function declaration enclosing the
// node at the end of path has a context to propagate — a
// context.Context or *http.Request parameter, per the HasCtx fact of
// its own object. Calls inside func literals are attributed to the
// literal's enclosing declaration: a goroutine launched by a handler
// inherits the handler's deadline obligation.
func callerHasCtx(pass *analysis.Pass, path analysis.NodePath) bool {
	for i := len(path) - 1; i >= 0; i-- {
		decl, ok := path[i].(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, ok := pass.TypesInfo.Defs[decl.Name].(*types.Func)
		if !ok {
			return false
		}
		facts, ok := pass.FuncFacts(fn)
		return ok && facts.HasCtx
	}
	return false
}

// wrappedByWith reports whether the Background()/TODO() call at the end
// of path is directly an argument of a context.With* constructor — the
// make-then-bound idiom.
func wrappedByWith(pass *analysis.Pass, path analysis.NodePath) bool {
	if len(path) < 2 {
		return false
	}
	parent, ok := path[len(path)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := analysis.CalleeFunc(pass.TypesInfo, parent)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return false
	}
	switch fn.Name() {
	case "WithCancel", "WithCancelCause", "WithTimeout", "WithTimeoutCause",
		"WithDeadline", "WithDeadlineCause":
		return true
	}
	return false
}

// noCtxHTTPEntry matches the net/http API surface that performs or
// prepares a request with no way to attach a context.
func noCtxHTTPEntry(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	name := fn.Name()
	if sig.Recv() == nil {
		switch name {
		case "Get", "Head", "Post", "PostForm", "NewRequest":
			return true
		}
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Client" {
		return false
	}
	switch name {
	case "Get", "Head", "Post", "PostForm":
		return true
	}
	return false
}

func callName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}
