// Package analysis is alexlint's analyzer framework: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface that the ALEX invariant checkers need.
//
// The repo deliberately has no module dependencies, so instead of the
// x/tools driver stack this package provides the same pieces in
// ~stdlib-only form:
//
//   - Analyzer / Pass / Diagnostic — the contract an invariant checker
//     implements (analysis.go, this file);
//   - a two-phase go/list-based loader that parses and typechecks the
//     whole module dependency graph from source and computes
//     interprocedural facts over it (load.go, facts.go);
//   - structural dominance helpers shared by the ordering analyzers
//     (dominance.go);
//   - an analysistest-style fixture harness driven by `// want` comments
//     (internal/analysis/analysistest).
//
// The nine shipped analyzers (snapmut, ackorder, syncerr, globalrand,
// gotrack, lockhold, ctxflow, txnorder, mutcopy) encode the
// concurrency, durability and determinism contracts of the serving
// fleet; cmd/alexlint is the multichecker binary that runs them in
// `make verify` and CI.
//
// Findings can be suppressed in place with a directive comment
//
//	//lint:ignore analyzer1,analyzer2 reason the invariant holds anyway
//
// which silences the named analyzers on its own line and the line
// below it. lockhold additionally honors the directive at a mutex's
// declaration, exempting every region of that one lock (the
// journal-holds-logMu design in internal/server).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Unlike x/tools analyzers it also
// carries its package scope: ALEX's invariants are contracts of specific
// subsystems (the WAL, the serving layer), not universal style rules.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc states the invariant the analyzer enforces, the exact shapes
	// it flags, and the compliant idioms it accepts.
	Doc string
	// Match reports whether the analyzer applies to the package with the
	// given import path. nil applies it everywhere. The driver consults
	// Match; the test harness bypasses it so fixtures can live anywhere.
	Match func(pkgPath string) bool
	// Run analyzes one package, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed and typechecked state through an
// analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Facts is the load's interprocedural fact table; nil outside a
	// framework-driven run. Use FuncFacts, which falls back to the
	// intrinsic seeds when the table is absent.
	Facts  *FactSet
	Report func(Diagnostic)

	ignores ignoreIndex
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FuncFacts returns the interprocedural facts for fn (see FuncFacts in
// facts.go). Safe with a nil fact table: intrinsic seeds still answer.
func (p *Pass) FuncFacts(fn *types.Func) (FuncFacts, bool) {
	return p.Facts.ForFunc(fn)
}

// CallFacts resolves call's callee and returns its facts.
func (p *Pass) CallFacts(call *ast.CallExpr) (*types.Func, FuncFacts) {
	fn := CalleeFunc(p.TypesInfo, call)
	if fn == nil {
		return nil, FuncFacts{}
	}
	f, _ := p.FuncFacts(fn)
	return fn, f
}

// IgnoredAt reports whether a `//lint:ignore` directive naming analyzer
// covers pos: the directive sits on pos's line or the line above it.
// Analyzers use it for declaration-scoped exemptions (lockhold consults
// the mutex's declaration); Run applies it to every finding
// automatically.
func (p *Pass) IgnoredAt(pos token.Pos, analyzer string) bool {
	return p.ignores.covers(p.Fset.Position(pos), analyzer)
}

// Finding is a diagnostic bound to its analyzer and resolved position,
// as produced by Run.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer whose Match accepts pkg's import path and
// returns the findings sorted by position, minus any suppressed by
// `//lint:ignore` directives. facts may be nil (seed-only lookups).
// Analyzer errors (not findings) abort the run.
//
// Test files are excluded: the analyzers enforce production contracts
// (durability, shutdown, determinism), and holding test cleanup to them
// would only produce noise. Standalone loads never include test files;
// this matters when cmd/go drives alexlint over test-variant packages.
func Run(pkg *Package, facts *FactSet, analyzers []*Analyzer) ([]Finding, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	ignores := collectIgnores(pkg.Fset, files)
	var out []Finding
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Facts:     facts,
			ignores:   ignores,
		}
		pass.Report = func(d Diagnostic) {
			pos := pkg.Fset.Position(d.Pos)
			if ignores.covers(pos, a.Name) {
				return
			}
			out = append(out, Finding{
				Analyzer: a.Name,
				Pos:      pos,
				Message:  d.Message,
			})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Pos, out[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ---- //lint:ignore directives ----

// ignoreIndex maps file -> line -> analyzer names suppressed there.
type ignoreIndex map[string]map[int][]string

// covers reports whether a directive at pos's line or the line above
// names analyzer.
func (ix ignoreIndex) covers(pos token.Position, analyzer string) bool {
	lines := ix[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[line] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// collectIgnores indexes every `//lint:ignore names reason` comment.
// The names field is a comma-separated analyzer list; a directive with
// no trailing reason is ignored (an undocumented exemption is a bug).
func collectIgnores(fset *token.FileSet, files []*ast.File) ignoreIndex {
	ix := ignoreIndex{}
	for _, file := range files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // no reason given: directive inert by design
				}
				pos := fset.Position(c.Pos())
				if ix[pos.Filename] == nil {
					ix[pos.Filename] = map[int][]string{}
				}
				for _, name := range strings.Split(fields[0], ",") {
					if name = strings.TrimSpace(name); name != "" {
						ix[pos.Filename][pos.Line] = append(ix[pos.Filename][pos.Line], name)
					}
				}
			}
		}
	}
	return ix
}

// PathHasAny reports whether import path p is one of the listed packages
// or inside one of them (prefix with a following "/"). It is the helper
// analyzers build Match functions from.
func PathHasAny(p string, pkgs ...string) bool {
	for _, pkg := range pkgs {
		if p == pkg || strings.HasPrefix(p, pkg+"/") {
			return true
		}
	}
	return false
}
