// Package analysis is alexlint's analyzer framework: a minimal,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface that the ALEX invariant checkers need.
//
// The repo deliberately has no module dependencies, so instead of the
// x/tools driver stack this package provides the same three pieces in
// ~stdlib-only form:
//
//   - Analyzer / Pass / Diagnostic — the contract an invariant checker
//     implements (analysis.go, this file);
//   - a go/list-based package loader that parses and typechecks module
//     packages offline using the build cache's export data (load.go);
//   - an analysistest-style fixture harness driven by `// want` comments
//     (internal/analysis/analysistest).
//
// The five shipped analyzers (snapmut, ackorder, syncerr, globalrand,
// gotrack) encode the concurrency, durability and determinism contracts
// that PR-2's review had to enforce by hand; cmd/alexlint is the
// multichecker binary that runs them in `make verify` and CI.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant checker. Unlike x/tools analyzers it also
// carries its package scope: ALEX's invariants are contracts of specific
// subsystems (the WAL, the serving layer), not universal style rules.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc states the invariant the analyzer enforces, the exact shapes
	// it flags, and the compliant idioms it accepts.
	Doc string
	// Match reports whether the analyzer applies to the package with the
	// given import path. nil applies it everywhere. The driver consults
	// Match; the test harness bypasses it so fixtures can live anywhere.
	Match func(pkgPath string) bool
	// Run analyzes one package, reporting findings through pass.Report.
	Run func(pass *Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one package's parsed and typechecked state through an
// analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)
}

// Reportf reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a diagnostic bound to its analyzer and resolved position,
// as produced by Run.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s (%s)", f.Pos, f.Message, f.Analyzer)
}

// Run applies every analyzer whose Match accepts pkg's import path and
// returns the findings sorted by position. Analyzer errors (not
// findings) abort the run.
//
// Test files are excluded: the analyzers enforce production contracts
// (durability, shutdown, determinism), and holding test cleanup to them
// would only produce noise. Standalone loads never include test files;
// this matters when cmd/go drives alexlint over test-variant packages.
func Run(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		if !strings.HasSuffix(pkg.Fset.Position(f.Package).Filename, "_test.go") {
			files = append(files, f)
		}
	}
	var out []Finding
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Report: func(d Diagnostic) {
				out = append(out, Finding{
					Analyzer: a.Name,
					Pos:      pkg.Fset.Position(d.Pos),
					Message:  d.Message,
				})
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Pos, out[j].Pos
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// PathHasAny reports whether import path p is one of the listed packages
// or inside one of them (prefix with a following "/"). It is the helper
// analyzers build Match functions from.
func PathHasAny(p string, pkgs ...string) bool {
	for _, pkg := range pkgs {
		if p == pkg || strings.HasPrefix(p, pkg+"/") {
			return true
		}
	}
	return false
}
