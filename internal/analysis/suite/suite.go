// Package suite assembles alexlint's analyzer set. cmd/alexlint runs it
// from the command line; suite_test.go runs it over the whole module so
// a plain `go test ./...` also fails on any invariant violation.
package suite

import (
	"alex/internal/analysis"
	"alex/internal/analysis/ackorder"
	"alex/internal/analysis/globalrand"
	"alex/internal/analysis/gotrack"
	"alex/internal/analysis/snapmut"
	"alex/internal/analysis/syncerr"
)

// Analyzers is the full alexlint suite, in the order findings are
// attributed. Each analyzer carries its own package scope (Match).
var Analyzers = []*analysis.Analyzer{
	snapmut.Analyzer,
	ackorder.Analyzer,
	syncerr.Analyzer,
	globalrand.Analyzer,
	gotrack.Analyzer,
}
