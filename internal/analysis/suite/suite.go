// Package suite assembles alexlint's analyzer set. cmd/alexlint runs it
// from the command line; suite_test.go runs it over the whole module so
// a plain `go test ./...` also fails on any invariant violation.
package suite

import (
	"alex/internal/analysis"
	"alex/internal/analysis/ackorder"
	"alex/internal/analysis/ctxflow"
	"alex/internal/analysis/globalrand"
	"alex/internal/analysis/gotrack"
	"alex/internal/analysis/lockhold"
	"alex/internal/analysis/mutcopy"
	"alex/internal/analysis/snapmut"
	"alex/internal/analysis/syncerr"
	"alex/internal/analysis/txnorder"
)

// Analyzers is the full alexlint suite, in the order findings are
// attributed. Each analyzer carries its own package scope (Match); the
// fleet-era four (lockhold, ctxflow, txnorder, mutcopy) consume the
// interprocedural facts the loader computes.
var Analyzers = []*analysis.Analyzer{
	snapmut.Analyzer,
	ackorder.Analyzer,
	syncerr.Analyzer,
	globalrand.Analyzer,
	gotrack.Analyzer,
	lockhold.Analyzer,
	ctxflow.Analyzer,
	txnorder.Analyzer,
	mutcopy.Analyzer,
}
