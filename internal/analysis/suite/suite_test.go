package suite_test

import (
	"strings"
	"testing"

	"alex/internal/analysis"
	"alex/internal/analysis/suite"
)

// TestTreeLintsClean is the merge gate in test form: the whole module
// must produce zero findings. `make lint` (and CI) run the alexlint
// binary for the same result with human-oriented output; this test
// makes sure the invariants hold even for contributors who only run
// `go test ./...`.
func TestTreeLintsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and typechecks the whole module")
	}
	res, err := analysis.Load("", "alex/...")
	if err != nil {
		t.Fatalf("loading module packages: %v", err)
	}
	if len(res.Pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	var all []string
	for _, pkg := range res.Pkgs {
		findings, err := analysis.Run(pkg, res.Facts, suite.Analyzers)
		if err != nil {
			t.Fatalf("analyzing %s: %v", pkg.Path, err)
		}
		for _, f := range findings {
			all = append(all, f.String())
		}
	}
	if len(all) > 0 {
		t.Errorf("alexlint findings in the tree (must be zero at merge):\n%s", strings.Join(all, "\n"))
	}
}
