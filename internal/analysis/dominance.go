// Structural dominance over Go's AST: the machinery ackorder built for
// the fsync-before-ack contract, promoted to the framework so txnorder
// (and future ordering analyzers) share one definition of "this call
// executes on every path into that one".
package analysis

import (
	"go/ast"
	"go/token"
)

// NodePath is a node plus its ancestor chain from the analyzed body's
// root block down to the node itself.
type NodePath []ast.Node

// Node returns the path's final node.
func (p NodePath) Node() ast.Node { return p[len(p)-1] }

// WalkPaths visits every node under root, handing fn the full ancestor
// path.
func WalkPaths(root ast.Node, fn func(NodePath)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(append(NodePath(nil), stack...))
		return true
	})
}

// Dominates reports whether the barrier at path b executes on every
// path that reaches the ack at path a. With structured control flow
// (no goto) that holds exactly when b appears strictly earlier in the
// source and b's chain below the deepest common ancestor never enters a
// conditionally-executed region: an if/else body, a switch or select
// clause, a loop body or post statement, or a function literal.
func Dominates(b, a NodePath) bool {
	if b.Node().Pos() >= a.Node().Pos() {
		return false
	}
	common := 0
	for common < len(b)-1 && common < len(a)-1 && b[common] == a[common] {
		common++
	}
	// b[common-1] is the deepest shared ancestor. Check every edge on
	// b's own chain below it, starting with the ancestor's edge into
	// b's branch: that is where then/else (and sibling-clause)
	// divergence shows up. A case/comm clause that contains BOTH nodes
	// gates them identically, so its edge is exempt at the shared level.
	for i := common - 1; i < len(b)-1; i++ {
		parent, child := b[i], b[i+1]
		if i == common-1 {
			switch parent.(type) {
			case *ast.CaseClause, *ast.CommClause:
				continue // same clause: sequential for both nodes
			}
		}
		if ConditionalEdge(parent, child) {
			return false
		}
	}
	return true
}

// ConditionalEdge reports whether child, as a direct AST child of
// parent, only executes conditionally relative to code after parent.
func ConditionalEdge(parent, child ast.Node) bool {
	switch p := parent.(type) {
	case *ast.IfStmt:
		return child == p.Body || child == p.Else
	case *ast.ForStmt:
		return child == p.Body || child == p.Post
	case *ast.RangeStmt:
		return child == p.Body
	case *ast.CaseClause, *ast.CommClause:
		return true // switch/select bodies and even their exprs may not run
	case *ast.FuncLit:
		return true // a closure's body runs zero or more times, later
	case *ast.BinaryExpr:
		// Short-circuit operators: the right operand is conditional.
		if p.Op == token.LAND || p.Op == token.LOR {
			return child == p.Y
		}
	}
	return false
}
