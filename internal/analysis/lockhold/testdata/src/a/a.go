// Fixture a: blocking work inside critical sections, including the
// interprocedural shape that motivated the facts framework — the
// syscall is two calls away from the Lock and invisible to any
// single-function check.
package a

import (
	"net/http"
	"os"
	"sync"

	"alex/internal/wal"
)

type store struct {
	mu  sync.Mutex
	log *wal.Log
	ch  chan int
}

// appendUnderLock holds the lock across a journal append: every other
// producer stalls behind the fsync.
func (s *store) appendUnderLock(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Append(p) // want `call to alex/internal/wal\.\(\*Log\)\.Append may block`
}

// fileUnderLock: direct file I/O in the region.
func (s *store) fileUnderLock() {
	s.mu.Lock()
	os.WriteFile("state", nil, 0o644) // want `may block \(file I/O\)`
	s.mu.Unlock()
}

// save is the helper hiding the I/O; holdAcrossHelper is the caller
// that cannot see it without interprocedural facts.
func (s *store) save() error {
	return os.WriteFile("state", nil, 0o644)
}

func (s *store) holdAcrossHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.save() // want `may block \(file I/O via`
}

// fetch reaches the network three frames down.
func fetch(hc *http.Client, req *http.Request) {
	hc.Do(req)
}

func (s *store) holdAcrossHTTP(hc *http.Client, req *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fetch(hc, req) // want `may block \(HTTP via`
}

// Channel operations are blocking unless a select-with-default makes
// them polls.
func (s *store) sendUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- 1 // want `channel send while holding s\.mu`
}

func (s *store) recvUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-s.ch // want `channel receive while holding s\.mu`
}

func (s *store) selectUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select while holding s\.mu`
	case v := <-s.ch:
		_ = v
	}
}

func (s *store) rangeUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for v := range s.ch { // want `ranging over a channel while holding s\.mu`
		_ = v
	}
}

// RLock regions are checked the same way: readers pile up too.
type cache struct {
	mu sync.RWMutex
}

func (c *cache) readUnderRLock() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	os.ReadFile("state") // want `may block \(file I/O\)`
}
