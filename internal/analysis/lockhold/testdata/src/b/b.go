// Fixture b: compliant critical sections — the lock is released before
// the blocking work, polls are select-with-default, launches don't
// block, and deliberate exceptions carry the directive.
package b

import (
	"os"
	"sync"

	"alex/internal/wal"
)

type store struct {
	mu  sync.Mutex
	log *wal.Log
	ch  chan int

	// journalMu's regions deliberately hold the lock across the fsync:
	// the declaration-level directive documents the design once for
	// every critical section of this lock.
	//lint:ignore lockhold group-commit design: producers serialize on the fsync deliberately
	journalMu sync.Mutex
}

// unlockBeforeIO releases the lock, then does the slow work.
func (s *store) unlockBeforeIO(p []byte) {
	s.mu.Lock()
	dirty := cap(s.ch) > 0
	s.mu.Unlock()
	if dirty {
		s.log.Append(p)
	}
}

// pollUnderLock: a select with default never parks the holder.
func (s *store) pollUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- 1:
	default:
	}
}

// launchUnderLock: starting a goroutine is not blocking; the goroutine
// body runs without the lock and is scanned on its own.
func (s *store) launchUnderLock(p []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.log.Append(p)
	}()
}

// exemptedSite carries the directive on the Lock statement itself.
func (s *store) exemptedSite(p []byte) {
	//lint:ignore lockhold startup-only path, no concurrent producers yet
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.Append(p)
}

// exemptedDecl inherits journalMu's declaration-level directive.
func (s *store) exemptedDecl(p []byte) {
	s.journalMu.Lock()
	defer s.journalMu.Unlock()
	s.log.Append(p)
}

// pureUnderLock: plain computation in the region is fine.
func (s *store) pureUnderLock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return cap(s.ch) * 2
}

// ioAfterExplicitUnlock: statements after the in-block unlock are out
// of the region.
func (s *store) ioAfterExplicitUnlock() {
	s.mu.Lock()
	n := cap(s.ch)
	s.mu.Unlock()
	if n > 0 {
		os.WriteFile("state", nil, 0o644)
	}
}
