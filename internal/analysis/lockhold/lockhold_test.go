package lockhold_test

import (
	"testing"

	"alex/internal/analysis/analysistest"
	"alex/internal/analysis/lockhold"
)

func TestLockhold(t *testing.T) {
	analysistest.Run(t, lockhold.Analyzer,
		"testdata/src/a", // blocking work (direct and via helpers) under a lock
		"testdata/src/b", // released locks, polls, launches, directives
	)
}
