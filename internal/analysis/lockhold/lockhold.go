// Package lockhold forbids blocking work inside mutex critical
// sections: no file I/O, fsync, HTTP traffic, sleeps or blocking
// channel operations while a sync.Mutex or sync.RWMutex is held.
//
// A lock held across I/O turns one slow disk or peer into a pile-up:
// every other goroutine needing the lock stalls behind a syscall the
// holder cannot bound. The fleet made this interprocedural — a
// router handler that calls a helper that calls a Client RPC holds its
// lock across the network without a single blocking call in sight —
// so the check rides the facts framework: a call is blocking if the
// callee's interprocedural MayBlock fact says so, no matter how many
// packages down the actual syscall lives.
//
// Within the region between x.Lock()/x.RLock() and the matching
// unlock (or the rest of the enclosing block when the unlock is
// deferred), a finding is:
//
//   - a call to any function whose facts say MayBlock (file I/O,
//     fsync, HTTP, network, sleep, subprocess wait) — directly or
//     transitively;
//   - a syntactic blocking channel operation: a send, a receive, a
//     range over a channel, or a select with no default clause.
//     Channel facts are deliberately not propagated through calls: a
//     callee using channels for bounded internal parallelism (the
//     core build under cluster's worker lock) does not block the
//     caller indefinitely, and propagating would drown the analyzer
//     in false positives (DESIGN.md decision 14).
//
// Deliberate exceptions are declared, not silent: a
// `//lint:ignore lockhold reason` directive on the Lock statement — or
// on the mutex's own declaration, exempting every region of that lock —
// suppresses the region. internal/server's logMu is the canonical
// case: the journal-then-queue ordering under logMu IS the durability
// design, and its declaration carries the directive and the argument.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"

	"alex/internal/analysis"
)

// Analyzer is the lockhold checker. It applies module-wide: a lock
// held across I/O is a latency and deadlock hazard in any package.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc:  "flags blocking I/O and channel waits while holding a mutex",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if block, ok := n.(*ast.BlockStmt); ok {
				scanBlock(pass, block)
			}
			return true
		})
	}
	return nil
}

// scanBlock finds Lock/RLock statements among block's direct children
// and checks each one's critical section. Nested blocks are reached by
// run's outer inspection.
func scanBlock(pass *analysis.Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		lockExpr, rlock, ok := lockStmt(pass, stmt)
		if !ok {
			continue
		}
		if exempted(pass, stmt, lockExpr) {
			continue
		}
		unlockName := "Unlock"
		if rlock {
			unlockName = "RUnlock"
		}
		lockStr := types.ExprString(lockExpr)

		// Region: statements after the Lock until a same-receiver
		// unlock among the siblings; a deferred unlock extends the
		// region to the end of the block and puts deferred statements
		// back in scope (LIFO: they run before the unlock).
		deferUnlock := false
		end := len(block.List)
		for j := i + 1; j < len(block.List); j++ {
			switch s := block.List[j].(type) {
			case *ast.DeferStmt:
				if isUnlockCall(pass, s.Call, lockStr, unlockName) {
					deferUnlock = true
				}
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && isUnlockCall(pass, call, lockStr, unlockName) {
					end = j
				}
			}
			if end != len(block.List) {
				break
			}
		}
		region := block.List[i+1 : end]
		scanRegion(pass, region, lockStr, unlockName, deferUnlock)
	}
}

// scanRegion reports blocking operations between a Lock and its
// unlock. The scan is source-ordered and stops at the first
// same-receiver unlock it meets anywhere (e.g. inside an early-return
// branch): code after a conditional unlock may or may not hold the
// lock, and silence beats a false positive in a merge gate.
func scanRegion(pass *analysis.Pass, region []ast.Stmt, lockStr, unlockName string, deferUnlock bool) {
	stopped := false
	for _, stmt := range region {
		if stopped {
			return
		}
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if !deferUnlock {
				// With an explicit unlock the deferred call runs after it.
				continue
			}
			if isUnlockCall(pass, d.Call, lockStr, unlockName) {
				// The region-extending `defer x.Unlock()` itself: it runs
				// at return, not here — don't let it end the scan.
				continue
			}
		}
		// Channel operations that a select statement makes non-blocking
		// (any comm clause of a select WITH default).
		nonBlocking := map[ast.Node]bool{}

		ast.Inspect(stmt, func(n ast.Node) bool {
			if stopped || n == nil {
				return false
			}
			switch n := n.(type) {
			case *ast.FuncLit:
				return false // runs later (or never); its own locks are scanned separately
			case *ast.GoStmt:
				return false // launching never blocks; the goroutine runs unlocked... on its own stack
			case *ast.SelectStmt:
				hasDefault := false
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				// Either way the comm ops themselves are not re-reported:
				// with a default they never block, without one the select
				// diagnostic already covers them.
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
						markCommOps(cc.Comm, nonBlocking)
					}
				}
				if !hasDefault {
					pass.Reportf(n.Pos(), "blocking select while holding %s; a stalled channel peer stalls every goroutine waiting on the lock", lockStr)
				}
			case *ast.SendStmt:
				if !nonBlocking[n] {
					pass.Reportf(n.Pos(), "channel send while holding %s may block; release the lock before communicating", lockStr)
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !nonBlocking[n] {
					pass.Reportf(n.Pos(), "channel receive while holding %s may block; release the lock before communicating", lockStr)
				}
			case *ast.RangeStmt:
				if tv, ok := pass.TypesInfo.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Reportf(n.Pos(), "ranging over a channel while holding %s blocks until the channel closes", lockStr)
					}
				}
			case *ast.CallExpr:
				if isUnlockCall(pass, n, lockStr, unlockName) {
					stopped = true
					return false
				}
				fn, facts := pass.CallFacts(n)
				if fn != nil && facts.MayBlock {
					via := ""
					if facts.BlockVia != "" {
						via = " via " + facts.BlockVia
					}
					pass.Reportf(n.Pos(), "call to %s may block (%s%s) while holding %s; shrink the critical section or move the I/O out", analysis.FuncKey(fn), facts.BlockReason, via, lockStr)
				}
			}
			return true
		})
	}
}

// markCommOps records the channel operations of one select comm
// statement as non-blocking (their select has a default clause).
func markCommOps(comm ast.Stmt, set map[ast.Node]bool) {
	ast.Inspect(comm, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.SendStmt, *ast.UnaryExpr:
			set[n] = true
		}
		return true
	})
}

// lockStmt matches `x.Lock()` / `x.RLock()` expression statements where
// x is a sync.Mutex or sync.RWMutex (including promoted embeds),
// returning the receiver expression.
func lockStmt(pass *analysis.Pass, stmt ast.Stmt) (recv ast.Expr, rlock bool, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return nil, false, false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return nil, false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" {
		return nil, false, false
	}
	if !isSyncLockMethod(pass, sel.Sel) {
		return nil, false, false
	}
	return sel.X, name == "RLock", true
}

func isUnlockCall(pass *analysis.Pass, call *ast.CallExpr, lockStr, unlockName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != unlockName {
		return false
	}
	return isSyncLockMethod(pass, sel.Sel) && types.ExprString(sel.X) == lockStr
}

// isSyncLockMethod reports whether id resolves to a method of
// sync.Mutex or sync.RWMutex.
func isSyncLockMethod(pass *analysis.Pass, id *ast.Ident) bool {
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return (obj.Name() == "Mutex" || obj.Name() == "RWMutex") &&
		obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// exempted honors `//lint:ignore lockhold reason` on the Lock statement
// itself or at the mutex's declaration — one directive at the field
// declaration documents every critical section of that lock.
func exempted(pass *analysis.Pass, lockStmt ast.Stmt, recv ast.Expr) bool {
	if pass.IgnoredAt(lockStmt.Pos(), "lockhold") {
		return true
	}
	var id *ast.Ident
	switch e := ast.Unparen(recv).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false
	}
	obj := pass.TypesInfo.ObjectOf(id)
	return obj != nil && pass.IgnoredAt(obj.Pos(), "lockhold")
}
