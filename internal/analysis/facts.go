// Facts: interprocedural function summaries, alexlint's stdlib-only
// analogue of golang.org/x/tools go/analysis facts.
//
// A FuncFacts value summarizes one function's externally relevant
// behavior — "may block on I/O", "performs an outbound HTTP request",
// "journals durably before returning", "writes an HTTP response
// status". The loader computes facts for every module package in the
// dependency graph (phase two of the load, after all sources are
// typechecked) by seeding intrinsic knowledge about standard-library
// and contract functions, then propagating the bits caller-ward over
// the repo-wide call graph to a fixpoint. Analyzers consult facts
// through Pass.FuncFacts, which is how lockhold can know that
// Server.checkpoint eventually fsyncs without reimplementing a
// whole-program dataflow.
//
// Facts are deliberately summaries, not dataflow (DESIGN.md decision
// 14): a bit answers "can calling F do X at all", never "does this
// call to F do X with these arguments". The identity that makes the
// scheme work across load modes is the canonical string key (FuncKey):
// the same function seen through source typechecking and through
// export data yields different *types.Func objects but the same key,
// so facts serialize losslessly into go vet's .vetx fact files.
package analysis

import (
	"encoding/json"
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// FuncFacts is the summary of one function. The zero value means
// "nothing known", which for analyzers reads as "safe": facts
// under-approximate on function values and unresolvable dynamic calls
// (see DESIGN.md decision 14 for what that misses).
type FuncFacts struct {
	// MayBlock: calling this function may block the caller's goroutine
	// on I/O or time — file reads/writes, fsync, network traffic,
	// subprocess waits, sleeps. Channel operations are deliberately NOT
	// propagated: a callee using channels for bounded internal
	// parallelism (internal/core's parallel build) does not hold the
	// caller hostage the way unbounded I/O does, and lockhold checks
	// channel ops syntactically in the locked region instead.
	MayBlock    bool   `json:"may_block,omitempty"`
	BlockReason string `json:"block_reason,omitempty"` // "file I/O", "fsync", "HTTP", ...
	BlockVia    string `json:"block_via,omitempty"`    // callee key the bit arrived through

	// Outbound: the function transitively performs an HTTP request.
	Outbound    bool   `json:"outbound,omitempty"`
	OutboundVia string `json:"outbound_via,omitempty"`

	// HasCtx: the function's own signature accepts a context.Context
	// (or an *http.Request, which carries one). Not propagated — it is
	// a property of the signature, and together with Outbound it lets
	// ctxflow flag "performs requests but offers callers no way to
	// scope them".
	HasCtx bool `json:"has_ctx,omitempty"`

	// Journals: the function transitively reaches a durable write that
	// backs an ack — (*wal.Log).Append locally, or a Client RPC whose
	// non-error return means the remote shard journaled and fsynced
	// (Feedback, TxnPrepare). txnorder and ackorder treat such calls as
	// barriers that must dominate a 202.
	Journals    bool   `json:"journals,omitempty"`
	JournalsVia string `json:"journals_via,omitempty"`

	// AcksHTTP: the function transitively calls
	// net/http.ResponseWriter.WriteHeader — it can commit a response
	// status. Combined with a constant 202 argument at the call site
	// this identifies ack writers like writeJSON across packages.
	AcksHTTP bool   `json:"acks_http,omitempty"`
	AcksVia  string `json:"acks_via,omitempty"`
}

func (f FuncFacts) interesting() bool {
	return f.MayBlock || f.Outbound || f.HasCtx || f.Journals || f.AcksHTTP
}

// merge ORs other's bits into f, keeping the first Via/Reason seen.
func (f *FuncFacts) merge(other FuncFacts) bool {
	changed := false
	if other.MayBlock && !f.MayBlock {
		f.MayBlock, f.BlockReason, f.BlockVia = true, other.BlockReason, other.BlockVia
		changed = true
	}
	if other.Outbound && !f.Outbound {
		f.Outbound, f.OutboundVia = true, other.OutboundVia
		changed = true
	}
	if other.HasCtx && !f.HasCtx {
		f.HasCtx = true
		changed = true
	}
	if other.Journals && !f.Journals {
		f.Journals, f.JournalsVia = true, other.JournalsVia
		changed = true
	}
	if other.AcksHTTP && !f.AcksHTTP {
		f.AcksHTTP, f.AcksVia = true, other.AcksVia
		changed = true
	}
	return changed
}

// FactSet is the computed fact table for one load: canonical function
// key → summary. Lookups fall back to the intrinsic seed table, so a
// nil or empty set still answers correctly for standard-library
// functions.
type FactSet struct {
	funcs map[string]FuncFacts
}

// NewFactSet returns an empty fact set.
func NewFactSet() *FactSet { return &FactSet{funcs: map[string]FuncFacts{}} }

// ForFunc returns the facts for fn: the computed entry if the load saw
// it, otherwise fn's intrinsic seed facts. ok reports whether anything
// is known at all.
func (s *FactSet) ForFunc(fn *types.Func) (FuncFacts, bool) {
	if fn == nil {
		return FuncFacts{}, false
	}
	if s != nil && s.funcs != nil {
		if f, ok := s.funcs[FuncKey(fn)]; ok {
			return f, true
		}
	}
	f, ok := seedFacts(fn)
	return f, ok
}

// Lookup returns the facts stored under a canonical key.
func (s *FactSet) Lookup(key string) (FuncFacts, bool) {
	if s == nil || s.funcs == nil {
		return FuncFacts{}, false
	}
	f, ok := s.funcs[key]
	return f, ok
}

// Len reports the number of stored summaries.
func (s *FactSet) Len() int {
	if s == nil {
		return 0
	}
	return len(s.funcs)
}

// Keys returns the stored keys, sorted — for tests and debugging.
func (s *FactSet) Keys() []string {
	if s == nil {
		return nil
	}
	keys := make([]string, 0, len(s.funcs))
	for k := range s.funcs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EncodeJSON serializes the set for a go vet .vetx fact file: one JSON
// object, canonical key → facts, only interesting entries.
func (s *FactSet) EncodeJSON() ([]byte, error) {
	out := map[string]FuncFacts{}
	if s != nil {
		for k, f := range s.funcs {
			if f.interesting() {
				out[k] = f
			}
		}
	}
	return json.Marshal(out)
}

// DecodeJSON merges a serialized fact table (as written by EncodeJSON)
// into the set. Empty input is a valid empty table: cmd/go creates
// zero-length vetx files for packages a tool had nothing to say about.
func (s *FactSet) DecodeJSON(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	m := map[string]FuncFacts{}
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	for k, f := range m {
		cur := s.funcs[k]
		cur.merge(f)
		s.funcs[k] = cur
	}
	return nil
}

// FuncKey returns the canonical, load-mode-independent identity of a
// function: "pkgpath.Name" for package functions, "pkgpath.(Recv).Name"
// or "pkgpath.(*Recv).Name" for methods (including interface methods).
// Generic instantiations key as their origin.
func FuncKey(fn *types.Func) string {
	fn = fn.Origin()
	name := fn.Name()
	pkg := fn.Pkg()
	if pkg == nil {
		return name // universe scope: error.Error
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg.Path() + "." + name
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, ok := recv.(*types.Pointer); ok {
		recv, ptr = p.Elem(), "*"
	}
	recvName := ""
	if named, ok := recv.(*types.Named); ok {
		recvName = named.Obj().Name()
	} else {
		recvName = types.TypeString(recv, func(*types.Package) string { return "" })
	}
	return pkg.Path() + ".(" + ptr + recvName + ")." + name
}

// ---- intrinsic seeds ----

// seedFacts returns the facts known about fn without seeing its body:
// the standard library's blocking and HTTP surface, plus the module's
// durability contract roots. Seeds also apply to source functions (a
// source body for (*wal.Log).Append cannot reveal that an Append IS the
// durability barrier — that is contract knowledge) and are unioned with
// source-derived facts during ComputeFacts.
func seedFacts(fn *types.Func) (FuncFacts, bool) {
	fn = fn.Origin()
	name := fn.Name()
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	recv := recvTypeName(fn)

	block := func(reason string) (FuncFacts, bool) {
		return FuncFacts{MayBlock: true, BlockReason: reason}, true
	}

	switch path {
	case "net/http":
		switch recv {
		case "":
			switch name {
			case "Get", "Head", "Post", "PostForm":
				return FuncFacts{MayBlock: true, BlockReason: "HTTP", Outbound: true}, true
			}
		case "Client":
			switch name {
			case "Do":
				return FuncFacts{MayBlock: true, BlockReason: "HTTP", Outbound: true, HasCtx: true}, true
			case "Get", "Head", "Post", "PostForm":
				return FuncFacts{MayBlock: true, BlockReason: "HTTP", Outbound: true}, true
			}
		case "Transport", "RoundTripper":
			if name == "RoundTrip" {
				return FuncFacts{MayBlock: true, BlockReason: "HTTP", Outbound: true, HasCtx: true}, true
			}
		case "ResponseWriter":
			if name == "WriteHeader" {
				return FuncFacts{AcksHTTP: true}, true
			}
		case "Server":
			switch name {
			case "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS", "Shutdown":
				return block("network I/O")
			}
		}
	case "os":
		switch recv {
		case "File":
			switch name {
			case "Sync":
				return block("fsync")
			case "Read", "ReadAt", "ReadFrom", "Write", "WriteAt", "WriteString",
				"WriteTo", "Truncate", "Close", "Seek":
				return block("file I/O")
			}
		case "":
			switch name {
			case "Open", "OpenFile", "Create", "CreateTemp", "MkdirTemp",
				"ReadFile", "WriteFile", "ReadDir", "Remove", "RemoveAll",
				"Rename", "Mkdir", "MkdirAll", "Stat", "Lstat", "Truncate",
				"Symlink", "Link", "Chmod", "Chtimes":
				return block("file I/O")
			}
		}
	case "net":
		switch recv {
		case "":
			switch name {
			case "Dial", "DialTimeout", "Listen", "ListenPacket":
				return block("network I/O")
			}
		case "Dialer":
			switch name {
			case "Dial":
				return block("network I/O")
			case "DialContext":
				return FuncFacts{MayBlock: true, BlockReason: "network I/O", HasCtx: true}, true
			}
		case "Conn", "TCPConn", "UDPConn", "UnixConn":
			switch name {
			case "Read", "Write", "Close":
				return block("network I/O")
			}
		case "Listener", "TCPListener":
			if name == "Accept" || name == "AcceptTCP" {
				return block("network I/O")
			}
		}
	case "time":
		if recv == "" && name == "Sleep" {
			return block("sleep")
		}
	case "os/exec":
		if recv == "Cmd" {
			switch name {
			case "Run", "Wait", "Output", "CombinedOutput":
				return block("subprocess wait")
			}
		}
	case "bufio":
		if recv == "Writer" && name == "Flush" {
			return block("buffered flush")
		}
	}

	// Module contract roots, matched by path suffix so fixture copies
	// and the live packages resolve identically.
	if strings.HasSuffix(path, "internal/wal") {
		if recv == "Log" && name == "Append" {
			return FuncFacts{MayBlock: true, BlockReason: "file I/O", Journals: true}, true
		}
		if recv == "File" {
			// The WAL's File abstraction fronts real files (and fault
			// injection wrappers); every method is I/O.
			if name == "Sync" {
				return block("fsync")
			}
			return block("file I/O")
		}
	}
	if strings.HasSuffix(path, "internal/server") && recv == "Client" {
		switch name {
		// A non-error return from these RPCs means the remote shard
		// journaled and fsynced before acking — durable by contract.
		case "Feedback", "FeedbackContext", "FeedbackResult",
			"TxnPrepare", "TxnPrepareContext":
			return FuncFacts{Journals: true}, true
		}
	}

	// Any niladic Sync() error is an fsync-shaped barrier (faultfs
	// wrappers, custom file handles).
	if name == "Sync" {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
			sig.Params().Len() == 0 && sig.Results().Len() == 1 {
			if named, ok := sig.Results().At(0).Type().(*types.Named); ok &&
				named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
				return block("fsync")
			}
		}
	}

	return FuncFacts{}, false
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// ---- computation ----

// srcFunc is one source-declared function during fact computation.
type srcFunc struct {
	key     string
	callees []string // canonical keys of resolved outbound calls
}

// ComputeFacts builds the fact table for the given source packages
// (dependencies first — go list -deps order). base carries facts
// imported from dependency vetx files in go vet mode; nil means none.
//
// Phase one collects, per declared function, its signature facts and
// resolved call edges; callees that are not source-declared contribute
// their seed facts immediately. Phase two unions seed overlays for
// source functions and propagates MayBlock/Outbound/Journals/AcksHTTP
// caller-ward to a fixpoint (a worklist over the reversed edges, so
// mutual recursion converges to the least fixpoint).
//
// Calls inside `go func() { ... }` bodies are excluded from the
// launching function's summary: the launch itself neither blocks nor
// completes the callee's effects before returning. An async journal is
// therefore NOT a journal — exactly the PR-7 bug shape — and txnorder
// separately credits goroutine barriers only when a dominating
// sync.WaitGroup.Wait proves the ack waits for them.
func ComputeFacts(srcPkgs []*Package, base *FactSet) *FactSet {
	set := NewFactSet()
	if base != nil {
		for k, f := range base.funcs {
			set.funcs[k] = f
		}
	}

	var funcs []srcFunc
	callers := map[string][]int{} // callee key -> indexes into funcs

	for _, pkg := range srcPkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sf := srcFunc{key: FuncKey(obj)}
				facts := set.funcs[sf.key]
				if signatureHasCtx(obj) {
					facts.HasCtx = true
				}
				if seed, ok := seedFacts(obj); ok {
					facts.merge(seed)
				}
				collectCallees(pkg, fd.Body, &sf)
				set.funcs[sf.key] = facts
				funcs = append(funcs, sf)
			}
		}
	}

	// Callees outside the source set (stdlib, export-data-only deps)
	// contribute their seed facts now, so the fixpoint can read them
	// and vet mode serializes them.
	set.seedCallees(srcPkgs)

	for i := range funcs {
		for _, calleeKey := range funcs[i].callees {
			callers[calleeKey] = append(callers[calleeKey], i)
		}
	}

	// Fixpoint: start with every function dirty, pull callee facts in.
	work := make([]int, len(funcs))
	inWork := make([]bool, len(funcs))
	for i := range funcs {
		work[i] = i
		inWork[i] = true
	}
	for len(work) > 0 {
		i := work[0]
		work = work[1:]
		inWork[i] = false
		f := funcs[i]
		cur := set.funcs[f.key]
		changed := false
		for _, calleeKey := range f.callees {
			cf, ok := set.funcs[calleeKey]
			if !ok {
				continue
			}
			prop := FuncFacts{}
			if cf.MayBlock {
				prop.MayBlock, prop.BlockReason, prop.BlockVia = true, cf.BlockReason, calleeKey
			}
			if cf.Outbound {
				prop.Outbound, prop.OutboundVia = true, calleeKey
			}
			if cf.Journals {
				prop.Journals, prop.JournalsVia = true, calleeKey
			}
			if cf.AcksHTTP {
				prop.AcksHTTP, prop.AcksVia = true, calleeKey
			}
			if cur.merge(prop) {
				changed = true
			}
		}
		if changed {
			set.funcs[f.key] = cur
			for _, ci := range callers[f.key] {
				if !inWork[ci] {
					work = append(work, ci)
					inWork[ci] = true
				}
			}
		}
	}
	return set
}

// collectCallees records the canonical keys of every resolved call in
// body, skipping goroutine-literal bodies (see ComputeFacts), and
// stores seed facts for non-source callees into the set lazily via the
// caller (the callee key alone is enough — ForFunc falls back to seeds,
// and ComputeFacts pre-stores seeds below).
func collectCallees(pkg *Package, body *ast.BlockStmt, sf *srcFunc) {
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			// Arguments to the launched call evaluate synchronously;
			// the launched body does not.
			for _, arg := range g.Call.Args {
				ast.Inspect(arg, func(m ast.Node) bool {
					if call, ok := m.(*ast.CallExpr); ok {
						if fn := CalleeFunc(pkg.Info, call); fn != nil {
							sf.callees = append(sf.callees, FuncKey(fn))
						}
					}
					return true
				})
			}
			// The launched call itself — literal body or `go s.writer()`
			// — contributes no edge: the launch is asynchronous.
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := CalleeFunc(pkg.Info, call); fn != nil {
				sf.callees = append(sf.callees, FuncKey(fn))
			}
		}
		return true
	})
}

// seedCallees walks the same calls as collectCallees and stores seed
// facts for callees the source set does not cover, so propagation and
// vet-mode serialization see them. Called by ComputeFacts via Load.
func (s *FactSet) seedCallees(pkgs []*Package) {
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := CalleeFunc(pkg.Info, call)
				if fn == nil {
					return true
				}
				key := FuncKey(fn)
				if _, ok := s.funcs[key]; ok {
					return true
				}
				if seed, ok := seedFacts(fn); ok {
					s.funcs[key] = seed
				}
				return true
			})
		}
	}
}

// signatureHasCtx reports whether fn's parameters include a
// context.Context or an *http.Request (which carries one).
func signatureHasCtx(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		if isNamed(t, "context", "Context") {
			return true
		}
		if p, ok := t.(*types.Pointer); ok && isNamed(p.Elem(), "net/http", "Request") {
			return true
		}
	}
	return false
}

func isNamed(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// CalleeFunc resolves the *types.Func a call expression invokes, or nil
// for dynamic calls through function values.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}
