package gotrack_test

import (
	"testing"

	"alex/internal/analysis/analysistest"
	"alex/internal/analysis/gotrack"
)

func TestGotrack(t *testing.T) {
	analysistest.Run(t, gotrack.Analyzer,
		"testdata/src/a", // orphan launches (pre-fix cluster.Serve shape)
		"testdata/src/b", // done-channel, WaitGroup, context, stop-channel ties
	)
}
