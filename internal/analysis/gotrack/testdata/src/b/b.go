// Fixture b: tracked launches — the serving layer's own idioms.
package b

import (
	"context"
	"net"
	"net/rpc"
	"sync"
)

type server struct {
	stop chan struct{}
	done chan struct{}
}

// writer signals completion by closing done, the way the single-writer
// goroutine does; Close waits on it.
func (s *server) writer() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		}
	}
}

func (s *server) start() {
	go s.writer()
}

// addDone is the classic WaitGroup triple.
func addDone(work func()) *sync.WaitGroup {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	return &wg
}

// serveTracked is cluster.Serve after the fix: every connection
// goroutine registered before launch, drained before return.
func serveTracked(l net.Listener, srv *rpc.Server) error {
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.ServeConn(conn)
		}()
	}
}

// evalShape is handlers.evalWithContext: the helper's work is scoped to
// the request context, which cancels its callees.
func evalShape(ctx context.Context, eval func(context.Context) int) int {
	ch := make(chan int, 1)
	go func() {
		ch <- eval(ctx)
	}()
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// stopChan ties the goroutine to a struct{} stop channel.
func stopChan(stop chan struct{}, work func()) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				work()
			}
		}
	}()
}

// replicatorShape is internal/server's fleet replicator: a long-lived
// periodic loop that closes its done-channel on exit and selects on a
// struct{} stop signal alongside its tick/kick channels.
func (s *server) replicatorShape(tick <-chan int, replicate func()) {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case <-tick:
			replicate()
		}
	}
}

func (s *server) startReplicator(tick <-chan int, replicate func()) {
	go s.replicatorShape(tick, replicate)
}
