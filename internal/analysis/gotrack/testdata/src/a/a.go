// Fixture a: orphan launches. The first is the exact shape
// internal/cluster's Serve loop shipped before this PR: RPC connections
// served by goroutines nothing waits for.
package a

import (
	"net"
	"net/rpc"
)

// serveShape accepts connections forever and leaks a goroutine per
// connection through shutdown.
func serveShape(l net.Listener, srv *rpc.Server) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go srv.ServeConn(conn) // want `goroutine is not tied to a WaitGroup`
	}
}

// bareLit launches a fire-and-forget literal.
func bareLit(work func()) {
	go func() { // want `goroutine is not tied to a WaitGroup`
		work()
	}()
}

type worker struct {
	jobs chan int
}

// loop drains a data channel but has no shutdown tie: closing jobs is a
// data-path concern, not a lifecycle one, and an int channel is not a
// stop signal.
func (w *worker) loop() {
	for range w.jobs {
	}
}

// namedUntracked launches a same-package method whose body shows no
// completion or shutdown path.
func (w *worker) namedUntracked() {
	go w.loop() // want `goroutine is not tied to a WaitGroup`
}

// tickerLoop is the replication anti-pattern the fleet work guards
// against: a periodic loop whose only exit is process death. A
// time.Ticker channel is a data channel, not a stop signal, so this
// goroutine runs through Server.Close and races teardown.
func tickerLoop(replicate func()) {
	go func() { // want `goroutine is not tied to a WaitGroup`
		for range tick() {
			replicate()
		}
	}()
}

func tick() <-chan int { return nil }
