// Package gotrack forbids orphan goroutines in the daemon packages:
// every goroutine launched in internal/server, internal/cluster,
// internal/fleet and internal/faultnet must be tied to a shutdown or
// completion path.
//
// alexd's graceful drain (Server.Close) and the chaos tests' crash
// simulation both assume the process knows about every goroutine it
// started: an untracked `go` statement keeps running through shutdown,
// races teardown, and leaks under the race detector's radar. The
// serving layer's writer goroutine signals completion with
// `defer close(s.done)`; request-scoped helpers bound their lifetime
// with a context. This analyzer requires every launch to show one such
// tie, structurally:
//
//   - the launched body does `defer close(ch)` on a done-channel, or
//     calls Done on a sync.WaitGroup;
//   - the launch site is preceded (same or enclosing block) by
//     wg.Add on a sync.WaitGroup — the classic Add/go/Done triple,
//     which also covers launches of functions defined elsewhere;
//   - the launched body is context-scoped: it uses a context.Context
//     value (selects on Done or passes it to its callees, which is how
//     evalWithContext's helper is cancelled); or
//   - the launched body receives from a struct{} stop-channel.
//
// Launched named functions and methods of the same package are checked
// by their declared body; for functions of other packages only the
// launch-site WaitGroup rule can vouch, so `go srv.ServeConn(conn)`
// with no Add is a finding — the shape internal/cluster shipped before
// this PR.
package gotrack

import (
	"go/ast"
	"go/token"
	"go/types"

	"alex/internal/analysis"
)

// Analyzer is the gotrack checker, scoped to the long-running daemon
// packages — including the cmd/ daemons themselves, whose mains launch
// serve loops and signal handlers that must not outlive shutdown.
var Analyzer = &analysis.Analyzer{
	Name: "gotrack",
	Doc:  "flags goroutines not tied to a WaitGroup, done-channel, context, or stop-channel",
	Match: func(p string) bool {
		return analysis.PathHasAny(p, "alex/internal/server", "alex/internal/cluster", "alex/internal/fleet", "alex/internal/faultnet", "alex/internal/store", "alex/cmd")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	decls := indexFuncs(pass)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if launchSiteTracked(pass, file, g) || bodyTracked(pass, decls, g.Call) {
				return true
			}
			pass.Reportf(g.Pos(), "goroutine is not tied to a WaitGroup, done-channel, context, or stop-channel; orphan goroutines outlive the daemon's shutdown path")
			return true
		})
	}
	return nil
}

// indexFuncs maps package function objects to declarations so a
// `go s.writer()` launch can be vouched for by writer's own body.
func indexFuncs(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					idx[obj] = fn
				}
			}
		}
	}
	return idx
}

// launchSiteTracked reports whether a wg.Add call precedes the go
// statement in its block or an enclosing one — the Add/go/Done idiom.
func launchSiteTracked(pass *analysis.Pass, file *ast.File, g *ast.GoStmt) bool {
	found := false
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return !found
		}
		// Does this block contain g (possibly nested) after a sibling
		// wg.Add statement?
		containsGo := false
		for _, stmt := range block.List {
			if containsNode(stmt, g) {
				containsGo = true
				break
			}
		}
		if !containsGo {
			return false // don't descend into unrelated blocks
		}
		for _, stmt := range block.List {
			if stmt.Pos() >= g.Pos() {
				break
			}
			if stmtCallsWaitGroupAdd(pass, stmt) {
				found = true
				return false
			}
		}
		return !found
	}
	ast.Inspect(file, walk)
	return found
}

func stmtCallsWaitGroupAdd(pass *analysis.Pass, stmt ast.Stmt) bool {
	found := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isWaitGroupMethod(pass, call, "Add") {
			found = true
			return false
		}
		return !found
	})
	return found
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}

// bodyTracked resolves the launched function's body — a literal, or a
// same-package declaration — and looks for a completion or shutdown tie.
func bodyTracked(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr) bool {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if isHTTPServerServe(pass, call) {
			return true // `go srv.ListenAndServe()`: bounded by srv.Shutdown
		}
		if fn := calleeFunc(pass, call); fn != nil {
			if decl := decls[fn]; decl != nil {
				body = decl.Body
			}
		}
	}
	if body == nil {
		return false
	}
	tracked := false
	ast.Inspect(body, func(n ast.Node) bool {
		if tracked {
			return false
		}
		switch n := n.(type) {
		case *ast.DeferStmt:
			// defer close(done) — completion signal the owner waits on.
			if isCloseBuiltin(pass, n.Call) {
				tracked = true
			}
			// defer wg.Done()
			if isWaitGroupMethod(pass, n.Call, "Done") {
				tracked = true
			}
		case *ast.CallExpr:
			if isWaitGroupMethod(pass, n, "Done") {
				tracked = true
			}
			// An *http.Server serve loop: its lifetime is owned by the
			// Server value — Shutdown/Close ends it — so the server,
			// not a channel, is the tracking handle. The idiomatic
			// `go srv.ListenAndServe()` in the daemons' mains is tied.
			if isHTTPServerServe(pass, n) {
				tracked = true
			}
		case *ast.Ident:
			// Any use of a context.Context value: the goroutine's work is
			// cancel-scoped through it (evalWithContext's helper passes
			// ctx to the federator, which honors the deadline).
			if obj := pass.TypesInfo.ObjectOf(n); obj != nil && isContextType(obj.Type()) {
				tracked = true
			}
		case *ast.UnaryExpr:
			// <-stop on a struct{} channel.
			if n.Op == token.ARROW && isStructChan(pass, n.X) {
				tracked = true
			}
		}
		return !tracked
	})
	return tracked
}

func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isHTTPServerServe matches the blocking serve methods of
// *net/http.Server.
func isHTTPServerServe(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return false
	}
	switch fn.Name() {
	case "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
	default:
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Server" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

func isCloseBuiltin(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "close"
}

func isWaitGroupMethod(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "WaitGroup" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

func isStructChan(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	ch, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}
