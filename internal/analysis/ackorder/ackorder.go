// Package ackorder enforces the serving layer's fsync-before-ack
// contract: a 202 Accepted must never leave a handler unless every path
// to it already passed a write-ahead journal append.
//
// alexd's 202 on /feedback is a durability promise — "this item
// survives any crash" (internal/wal, DESIGN.md). PR 2's review found
// the ack and the append could be reordered by an innocent-looking
// refactor, and only a human noticed. This analyzer pins the order
// mechanically.
//
// In the scoped package, writing status 202 (http.StatusAccepted, the
// protocol's mutation-ack status; plain 2xx reads like /query's 200 OK
// carry no durability promise and are exempt) is a finding unless the
// write is dominated by a durable append:
//
//   - an "ack" is a call to a function whose interprocedural facts say
//     it reaches net/http.ResponseWriter.WriteHeader (AcksHTTP — e.g.
//     writeJSON, in this package or another), with a constant 202
//     argument;
//   - a "barrier" is a call whose facts say it journals durably
//     (Journals): (*wal.Log).Append itself, any function that
//     transitively contains one (like Server.accept, whose durable
//     path appends and fsyncs before returning), or a Client RPC whose
//     success means a remote shard journaled;
//   - "dominated" means the barrier executes on every path into the
//     ack: it appears earlier in the same or an enclosing block (or an
//     if/switch init clause), not hidden inside a conditional branch,
//     loop body or closure.
//
// The dominance test is structural (Go's structured control flow, no
// goto), so a barrier inside an `if` body or a `select` case does not
// count — exactly the shapes that reorder acks ahead of appends.
// Before the facts framework both closures were computed per package;
// facts now carry them across package boundaries, which is what lets
// txnorder extend this contract to the cross-shard prepare path.
package ackorder

import (
	"go/ast"
	"go/constant"

	"alex/internal/analysis"
)

// Analyzer is the ackorder checker, scoped to the serving layer where
// the 202 contract lives.
var Analyzer = &analysis.Analyzer{
	Name: "ackorder",
	Doc:  "flags 202 acks not dominated by a write-ahead journal append",
	Match: func(p string) bool {
		return analysis.PathHasAny(p, "alex/internal/server")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn.Body)
		}
	}
	return nil
}

// checkFunc reports every 202 ack in body that no barrier call
// dominates. Function literals are analyzed as part of the enclosing
// body: a barrier inside a closure does not dominate statements outside
// it (the closure may never run), which the path test encodes.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	var barrierPaths, ackPaths []analysis.NodePath
	analysis.WalkPaths(body, func(path analysis.NodePath) {
		call, ok := path.Node().(*ast.CallExpr)
		if !ok {
			return
		}
		_, facts := pass.CallFacts(call)
		if facts.Journals {
			barrierPaths = append(barrierPaths, path)
		}
		if facts.AcksHTTP && Writes202(pass, call) {
			ackPaths = append(ackPaths, path)
		}
	})
	for _, ack := range ackPaths {
		dominated := false
		for _, b := range barrierPaths {
			if analysis.Dominates(b, ack) {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(ack.Node().Pos(), "202 Accepted written without a dominating journal append; the ack is a durability promise — append (and fsync) to the WAL first")
		}
	}
}

// Writes202 reports whether call carries a constant 202 status
// argument — the shape that, on a status-writing callee (AcksHTTP),
// makes the call an ack: ResponseWriter.WriteHeader(202) directly, or
// writeJSON(w, http.StatusAccepted, v). Shared with txnorder.
func Writes202(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		if v, ok := constant.Int64Val(tv.Value); ok && v == 202 {
			return true
		}
	}
	return false
}
