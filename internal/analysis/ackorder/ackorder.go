// Package ackorder enforces the serving layer's fsync-before-ack
// contract: a 202 Accepted must never leave a handler unless every path
// to it already passed a write-ahead journal append.
//
// alexd's 202 on /feedback is a durability promise — "this item
// survives any crash" (internal/wal, DESIGN.md). PR 2's review found
// the ack and the append could be reordered by an innocent-looking
// refactor, and only a human noticed. This analyzer pins the order
// mechanically.
//
// In the scoped package, writing status 202 (http.StatusAccepted, the
// protocol's mutation-ack status; plain 2xx reads like /query's 200 OK
// carry no durability promise and are exempt) is a finding unless the
// write is dominated by a durable append:
//
//   - an "ack" is a call to net/http.ResponseWriter.WriteHeader — or to
//     a package function that transitively reaches WriteHeader, like
//     writeJSON — with a constant 202 argument;
//   - a "barrier" is a call to (*wal.Log).Append, or to a package
//     function that transitively contains one (like Server.accept,
//     whose durable path appends and fsyncs before returning);
//   - "dominated" means the barrier executes on every path into the
//     ack: it appears earlier in the same or an enclosing block (or an
//     if/switch init clause), not hidden inside a conditional branch,
//     loop body or closure.
//
// The dominance test is structural (Go's structured control flow, no
// goto), so a barrier inside an `if` body or a `select` case does not
// count — exactly the shapes that reorder acks ahead of appends.
package ackorder

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"

	"alex/internal/analysis"
)

// Analyzer is the ackorder checker, scoped to the serving layer where
// the 202 contract lives.
var Analyzer = &analysis.Analyzer{
	Name: "ackorder",
	Doc:  "flags 202 acks not dominated by a write-ahead journal append",
	Match: func(p string) bool {
		return analysis.PathHasAny(p, "alex/internal/server")
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	idx := indexFuncs(pass)
	barriers := transitive(pass, idx, isAppendCall)
	ackWriters := transitive(pass, idx, isWriteHeaderCall)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, barriers, ackWriters, fn.Body)
		}
	}
	return nil
}

// checkFunc reports every 202 ack in body that no barrier call
// dominates. Function literals are analyzed as part of the enclosing
// body: a barrier inside a closure does not dominate statements outside
// it (the closure may never run), which the path test encodes.
func checkFunc(pass *analysis.Pass, barriers, ackWriters funcSet, body *ast.BlockStmt) {
	var barrierPaths, ackPaths []nodePath
	walkPaths(body, func(path nodePath) {
		call, ok := path.node().(*ast.CallExpr)
		if !ok {
			return
		}
		if calleeIn(pass, call, barriers) || isAppendCall(pass, call) {
			barrierPaths = append(barrierPaths, path)
		}
		if writes202(pass, call, ackWriters) {
			ackPaths = append(ackPaths, path)
		}
	})
	for _, ack := range ackPaths {
		dominated := false
		for _, b := range barrierPaths {
			if dominates(b, ack) {
				dominated = true
				break
			}
		}
		if !dominated {
			pass.Reportf(ack.node().Pos(), "202 Accepted written without a dominating journal append; the ack is a durability promise — append (and fsync) to the WAL first")
		}
	}
}

// writes202 reports whether call acknowledges with constant status 202:
// either ResponseWriter.WriteHeader(202) or a package status-writer
// (e.g. writeJSON) passed a constant 202 argument.
func writes202(pass *analysis.Pass, call *ast.CallExpr, ackWriters funcSet) bool {
	if !isWriteHeaderCall(pass, call) && !calleeIn(pass, call, ackWriters) {
		return false
	}
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
			continue
		}
		if v, ok := constant.Int64Val(tv.Value); ok && v == 202 {
			return true
		}
	}
	return false
}

// isAppendCall matches the durable barrier itself: a call to the Append
// method of the write-ahead log (receiver type Log of a package whose
// import path ends in internal/wal, so fixtures exercising the real
// package resolve too).
func isAppendCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := callee(pass, call)
	if fn == nil || fn.Name() != "Append" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Log" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && strings.HasSuffix(pkg.Path(), "internal/wal")
}

// isWriteHeaderCall matches net/http.ResponseWriter.WriteHeader.
func isWriteHeaderCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := callee(pass, call)
	if fn == nil || fn.Name() != "WriteHeader" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "ResponseWriter" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// ---- package function indexing and transitive closure ----

type funcSet map[*types.Func]bool

// indexFuncs maps each package-level function/method object to its
// declaration.
func indexFuncs(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	idx := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					idx[obj] = fn
				}
			}
		}
	}
	return idx
}

// transitive computes the package functions whose body contains a call
// matching direct, directly or through other package functions.
func transitive(pass *analysis.Pass, idx map[*types.Func]*ast.FuncDecl, direct func(*analysis.Pass, *ast.CallExpr) bool) funcSet {
	memo := funcSet{}
	visiting := map[*types.Func]bool{}
	var visit func(fn *types.Func) bool
	visit = func(fn *types.Func) bool {
		if v, ok := memo[fn]; ok {
			return v
		}
		if visiting[fn] {
			return false // break recursion cycles conservatively
		}
		visiting[fn] = true
		defer delete(visiting, fn)
		decl := idx[fn]
		found := false
		if decl != nil && decl.Body != nil {
			ast.Inspect(decl.Body, func(n ast.Node) bool {
				if found {
					return false
				}
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if direct(pass, call) {
					found = true
					return false
				}
				if c := callee(pass, call); c != nil && idx[c] != nil && visit(c) {
					found = true
					return false
				}
				return true
			})
		}
		memo[fn] = found
		return found
	}
	for fn := range idx {
		visit(fn)
	}
	return memo
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func calleeIn(pass *analysis.Pass, call *ast.CallExpr, set funcSet) bool {
	fn := callee(pass, call)
	return fn != nil && set[fn]
}

// ---- structural dominance ----

// nodePath is a node plus its ancestor chain from the analyzed body's
// root block down to the node itself.
type nodePath []ast.Node

func (p nodePath) node() ast.Node { return p[len(p)-1] }

// walkPaths visits every node under root, handing fn the full ancestor
// path.
func walkPaths(root ast.Node, fn func(nodePath)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		fn(append(nodePath(nil), stack...))
		return true
	})
}

// dominates reports whether the barrier at path b executes on every
// path that reaches the ack at path a. With structured control flow
// (no goto) that holds exactly when b appears strictly earlier in the
// source and b's chain below the deepest common ancestor never enters a
// conditionally-executed region: an if/else body, a switch or select
// clause, a loop body or post statement, or a function literal.
func dominates(b, a nodePath) bool {
	if b.node().Pos() >= a.node().Pos() {
		return false
	}
	common := 0
	for common < len(b)-1 && common < len(a)-1 && b[common] == a[common] {
		common++
	}
	// b[common-1] is the deepest shared ancestor. Check every edge on
	// b's own chain below it, starting with the ancestor's edge into
	// b's branch: that is where then/else (and sibling-clause)
	// divergence shows up. A case/comm clause that contains BOTH nodes
	// gates them identically, so its edge is exempt at the shared level.
	for i := common - 1; i < len(b)-1; i++ {
		parent, child := b[i], b[i+1]
		if i == common-1 {
			switch parent.(type) {
			case *ast.CaseClause, *ast.CommClause:
				continue // same clause: sequential for both nodes
			}
		}
		if conditionalEdge(parent, child) {
			return false
		}
	}
	return true
}

// conditionalEdge reports whether child, as a direct AST child of
// parent, only executes conditionally relative to code after parent.
func conditionalEdge(parent, child ast.Node) bool {
	switch p := parent.(type) {
	case *ast.IfStmt:
		return child == p.Body || child == p.Else
	case *ast.ForStmt:
		return child == p.Body || child == p.Post
	case *ast.RangeStmt:
		return child == p.Body
	case *ast.CaseClause, *ast.CommClause:
		return true // switch/select bodies and even their exprs may not run
	case *ast.FuncLit:
		return true // a closure's body runs zero or more times, later
	case *ast.BinaryExpr:
		// Short-circuit operators: the right operand is conditional.
		if p.Op == token.LAND || p.Op == token.LOR {
			return child == p.Y
		}
	}
	return false
}
