package ackorder_test

import (
	"testing"

	"alex/internal/analysis/ackorder"
	"alex/internal/analysis/analysistest"
)

func TestAckorder(t *testing.T) {
	analysistest.Run(t, ackorder.Analyzer,
		"testdata/src/a", // 202 before/without the journal append
		"testdata/src/b", // append dominates every ack path
	)
}
