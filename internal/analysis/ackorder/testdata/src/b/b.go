// Fixture b: the compliant order — append (and fsync) to the journal on
// every path before the 202 leaves the handler, mirroring
// server.handleFeedback -> Server.accept -> wal.Append.
package b

import (
	"net/http"

	"alex/internal/wal"
)

type server struct {
	log *wal.Log
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
}

// accept is the durable gate: the journal append happens inside, before
// any caller can ack.
func (s *server) accept(payload []byte) (int, error) {
	if _, err := s.log.Append(payload); err != nil {
		return http.StatusServiceUnavailable, err
	}
	return http.StatusAccepted, nil
}

// handleFeedback acks only after accept returned: the append dominates
// the 202 through the helper.
func (s *server) handleFeedback(w http.ResponseWriter, payload []byte) {
	status, err := s.accept(payload)
	if err != nil {
		writeJSON(w, status, nil)
		return
	}
	writeJSON(w, http.StatusAccepted, nil)
}

// directAppend journals inline before the ack.
func (s *server) directAppend(w http.ResponseWriter, payload []byte) {
	if _, err := s.log.Append(payload); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, nil)
		return
	}
	writeJSON(w, http.StatusAccepted, nil)
}

// readHandler never promises durability: 200 OK needs no journal.
func (s *server) readHandler(w http.ResponseWriter) {
	writeJSON(w, http.StatusOK, nil)
}
