// Fixture a: acks that break the fsync-before-ack contract, against the
// real write-ahead log types. The first shape is PR 2's actual bug: the
// 202 moved ahead of the journal append.
package a

import (
	"net/http"

	"alex/internal/wal"
)

type server struct {
	log *wal.Log
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
}

// ackThenAppend acknowledges first and journals after: a crash between
// the two breaks the durability promise the 202 just made.
func (s *server) ackThenAppend(w http.ResponseWriter, payload []byte) {
	writeJSON(w, http.StatusAccepted, nil) // want `202 Accepted written without a dominating journal append`
	s.log.Append(payload)
}

// ackWithoutAppend promises durability it never attempted.
func (s *server) ackWithoutAppend(w http.ResponseWriter) {
	writeJSON(w, http.StatusAccepted, nil) // want `202 Accepted written without a dominating journal append`
}

// conditionalAppend journals on only one path but acks on all of them.
func (s *server) conditionalAppend(w http.ResponseWriter, payload []byte, durable bool) {
	if durable {
		if _, err := s.log.Append(payload); err != nil {
			writeJSON(w, http.StatusServiceUnavailable, nil)
			return
		}
	}
	writeJSON(w, http.StatusAccepted, nil) // want `202 Accepted written without a dominating journal append`
}

// rawAck uses WriteHeader directly; the helper is not the contract.
func (s *server) rawAck(w http.ResponseWriter) {
	w.WriteHeader(202) // want `202 Accepted written without a dominating journal append`
}
