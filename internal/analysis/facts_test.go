package analysis_test

import (
	"strings"
	"testing"

	"alex/internal/analysis"
)

const demoPath = "alex/internal/analysis/testdata/src/factsdemo"

func loadDemoFacts(t *testing.T) *analysis.FactSet {
	t.Helper()
	res, err := analysis.Load("", "./testdata/src/factsdemo")
	if err != nil {
		t.Fatalf("loading factsdemo: %v", err)
	}
	return res.Facts
}

func demoFacts(t *testing.T, facts *analysis.FactSet, fn string) analysis.FuncFacts {
	t.Helper()
	f, ok := facts.Lookup(demoPath + "." + fn)
	if !ok {
		t.Fatalf("no facts recorded for %s", fn)
	}
	return f
}

func TestFactPropagation(t *testing.T) {
	facts := loadDemoFacts(t)

	direct := demoFacts(t, facts, "writesFile")
	if !direct.MayBlock || direct.BlockReason != "file I/O" {
		t.Errorf("writesFile: got %+v, want MayBlock via file I/O", direct)
	}

	transitive := demoFacts(t, facts, "callsWriter")
	if !transitive.MayBlock {
		t.Errorf("callsWriter: MayBlock did not propagate: %+v", transitive)
	}
	if !strings.Contains(transitive.BlockVia, "writesFile") {
		t.Errorf("callsWriter: BlockVia %q does not name the callee", transitive.BlockVia)
	}

	outbound := demoFacts(t, facts, "callsFetcher")
	if !outbound.Outbound {
		t.Errorf("callsFetcher: Outbound did not propagate: %+v", outbound)
	}

	j := demoFacts(t, facts, "journals")
	if !j.Journals || !j.MayBlock {
		t.Errorf("journals: got %+v, want Journals and MayBlock", j)
	}

	a := demoFacts(t, facts, "callsAcks")
	if !a.AcksHTTP {
		t.Errorf("callsAcks: AcksHTTP did not propagate: %+v", a)
	}

	if f, ok := facts.Lookup(demoPath + ".pure"); ok && (f.MayBlock || f.Outbound || f.Journals || f.AcksHTTP) {
		t.Errorf("pure: spurious facts %+v", f)
	}
}

// TestGoroutineBoundary is the PR-7 lesson as a unit test: work behind
// a `go` statement is asynchronous, so none of its effects — blocking,
// journaling — may be credited to the launcher.
func TestGoroutineBoundary(t *testing.T) {
	facts := loadDemoFacts(t)
	if f, ok := facts.Lookup(demoPath + ".launches"); ok {
		if f.Journals {
			t.Errorf("launches: goroutine journaling credited to the launcher: %+v", f)
		}
		if f.MayBlock {
			t.Errorf("launches: goroutine blocking credited to the launcher: %+v", f)
		}
	}
}

func TestHasCtxSignatures(t *testing.T) {
	facts := loadDemoFacts(t)
	if f := demoFacts(t, facts, "hasCtx"); !f.HasCtx {
		t.Errorf("hasCtx: context.Context parameter not detected: %+v", f)
	}
	if f := demoFacts(t, facts, "hasReq"); !f.HasCtx {
		t.Errorf("hasReq: *http.Request parameter not detected: %+v", f)
	}
	if f, ok := facts.Lookup(demoPath + ".writesFile"); ok && f.HasCtx {
		t.Errorf("writesFile: spurious HasCtx: %+v", f)
	}
	// HasCtx is a signature property, never propagated: callsWriter
	// calling nothing ctx-shaped must not inherit it.
	if f, ok := facts.Lookup(demoPath + ".callsWriter"); ok && f.HasCtx {
		t.Errorf("callsWriter: HasCtx wrongly propagated: %+v", f)
	}
}

func TestFactJSONRoundTrip(t *testing.T) {
	facts := loadDemoFacts(t)
	data, err := facts.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	decoded := analysis.NewFactSet()
	if err := decoded.DecodeJSON(data); err != nil {
		t.Fatal(err)
	}
	for _, key := range facts.Keys() {
		want, _ := facts.Lookup(key)
		if !want.MayBlock && !want.Outbound && !want.Journals && !want.AcksHTTP && !want.HasCtx {
			continue // uninteresting entries need not survive encoding
		}
		got, ok := decoded.Lookup(key)
		if !ok {
			t.Errorf("round trip dropped %s", key)
			continue
		}
		if got != want {
			t.Errorf("round trip changed %s: got %+v, want %+v", key, got, want)
		}
	}
	// Empty input decodes to a valid empty table (a dependency with no
	// interesting functions writes an empty vetx file).
	empty := analysis.NewFactSet()
	if err := empty.DecodeJSON(nil); err != nil {
		t.Fatalf("DecodeJSON(nil): %v", err)
	}
	if empty.Len() != 0 {
		t.Fatalf("DecodeJSON(nil): %d entries, want 0", empty.Len())
	}
}
