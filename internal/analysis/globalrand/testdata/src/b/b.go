// Fixture b: the compliant pattern — an explicitly seeded *rand.Rand
// owned by the caller, exactly how core.Config.Seed flows through the
// system.
package b

import "math/rand"

type sampler struct {
	rng *rand.Rand
}

// newSampler owns its stream; runs with equal seeds are identical.
func newSampler(seed int64) *sampler {
	return &sampler{rng: rand.New(rand.NewSource(seed))}
}

func (s *sampler) sample(n int) int {
	return s.rng.Intn(n)
}

func (s *sampler) jitter() float64 {
	return s.rng.Float64()
}

// zipf builds distribution state from the owned stream; the constructor
// is allowed.
func zipf(rng *rand.Rand) *rand.Zipf {
	return rand.NewZipf(rng, 1.5, 1, 1000)
}
