// Fixture a: the global-source shapes that break figure reproduction.
package a

import (
	"math/rand"
	randv2 "math/rand/v2"
)

// sampleGlobal draws from the shared process-wide source: one such call
// anywhere re-interleaves every other consumer's stream.
func sampleGlobal(n int) int {
	return rand.Intn(n) // want `top-level math/rand.Intn`
}

// shuffleGlobal mutates the global stream too, even without reading a
// value out.
func shuffleGlobal(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { // want `top-level math/rand.Shuffle`
		xs[i], xs[j] = xs[j], xs[i]
	})
}

// reseedGlobal is the classic "deterministic, honest" trap: seeding the
// global source still races every other goroutine drawing from it.
func reseedGlobal(seed int64) float64 {
	rand.Seed(seed)       // want `top-level math/rand.Seed`
	return rand.Float64() // want `top-level math/rand.Float64`
}

// v2Global cannot be seeded at all.
func v2Global(n int) int {
	return randv2.IntN(n) // want `top-level math/rand/v2.IntN`
}
