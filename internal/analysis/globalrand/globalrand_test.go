package globalrand_test

import (
	"testing"

	"alex/internal/analysis/analysistest"
	"alex/internal/analysis/globalrand"
)

func TestGlobalrand(t *testing.T) {
	analysistest.Run(t, globalrand.Analyzer,
		"testdata/src/a", // global-source draws, reseeding, rand/v2
		"testdata/src/b", // seeded *rand.Rand flowing from the caller
	)
}
