// Package globalrand forbids the process-global math/rand state.
//
// ALEX's reproduction of the paper's Figures 2–4 is bit-for-bit
// deterministic because every random draw — candidate sampling, oracle
// noise, retry jitter — flows through an explicitly seeded *rand.Rand
// that the caller owns (core.Config.Seed, the -seed flags of the
// binaries). Top-level math/rand functions (rand.Intn, rand.Shuffle,
// rand.Seed, ...) draw from a shared, process-global source instead:
// one stray call re-interleaves every consumer and the experiment
// figures stop reproducing. math/rand/v2's top-level functions are
// worse still — they cannot be seeded at all.
//
// Allowed: rand.New, rand.NewSource and rand.NewZipf (constructors of
// owned state) and every method on a *rand.Rand value.
package globalrand

import (
	"go/ast"
	"go/types"

	"alex/internal/analysis"
)

// Analyzer is the globalrand checker. It runs over the whole module —
// library, internal packages, commands and examples alike — with an
// intentionally empty exemption list: even the demo binaries take a
// -seed flag instead of touching global state.
var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc:  "forbids top-level math/rand functions; randomness must flow through a seeded *rand.Rand",
	Run:  run,
}

// constructors build caller-owned state and are therefore allowed.
var constructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig := fn.Type().(*types.Signature)
			if sig.Recv() != nil || constructors[fn.Name()] {
				return true // *rand.Rand methods and constructors are fine
			}
			pass.Reportf(call.Pos(), "call to top-level %s.%s uses the process-global random source; draw from an explicitly seeded *rand.Rand instead", path, fn.Name())
			return true
		})
	}
	return nil
}

// calleeFunc resolves the called function object, if the callee is a
// plain identifier or selector.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
