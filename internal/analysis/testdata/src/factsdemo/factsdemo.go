// Package factsdemo exercises the fact computation end to end:
// propagation through helpers, the goroutine boundary, signature
// detection and the journal contract.
package factsdemo

import (
	"context"
	"net/http"
	"os"

	"alex/internal/wal"
)

// writesFile blocks on file I/O directly (seeded stdlib callee).
func writesFile() error {
	return os.WriteFile("state", nil, 0o644)
}

// callsWriter blocks only transitively.
func callsWriter() error {
	return writesFile()
}

// fetches performs an outbound HTTP request, two frames down.
func fetches(hc *http.Client, req *http.Request) error {
	_, err := hc.Do(req)
	return err
}

func callsFetcher(hc *http.Client, req *http.Request) error {
	return fetches(hc, req)
}

// launches starts the blocking work asynchronously: the launch itself
// does not block, journal or fetch, so no fact may credit it.
func launches(l *wal.Log, p []byte) {
	go func() {
		l.Append(p)
	}()
}

// journals appends to the WAL: Journals and MayBlock.
func journals(l *wal.Log, p []byte) error {
	_, err := l.Append(p)
	return err
}

// hasCtx carries a context; hasReq carries one via *http.Request.
func hasCtx(ctx context.Context) {}

func hasReq(w http.ResponseWriter, r *http.Request) {}

// acks writes an HTTP status.
func acks(w http.ResponseWriter) {
	w.WriteHeader(http.StatusAccepted)
}

func callsAcks(w http.ResponseWriter) {
	acks(w)
}

// pure does none of the above.
func pure(a, b int) int { return a + b }
