// Fixture b: the compliant idioms — errors folded into the surrounding
// error path, explicit discards, and deferred closes of read-only
// handles.
package b

import (
	"io"

	"alex/internal/wal"
)

// foldedClose captures the close error the way wal.(*Log).scan does
// after the fix.
func foldedClose(rc io.ReadCloser) ([]byte, error) {
	data, err := io.ReadAll(rc)
	cerr := rc.Close()
	if err != nil {
		return nil, err
	}
	if cerr != nil {
		return nil, cerr
	}
	return data, nil
}

// explicitDiscard acknowledges the drop visibly; the blank assignment is
// the reviewer-facing signal that the error is meaningless here.
func explicitDiscard(f wal.File) {
	_ = f.Close()
}

// deferredReadOnly is idiomatic: the handle cannot write, so Close
// carries no flush error worth keeping.
func deferredReadOnly(fs wal.FS) error {
	rc, err := fs.Open("journal")
	if err != nil {
		return err
	}
	defer rc.Close()
	_, err = io.ReadAll(rc)
	return err
}

// successPathClose checks Sync and Close on the success path, like
// wal.(*Log).Checkpoint's temp-file write.
func successPathClose(fs wal.FS) error {
	f, err := fs.Create("state.tmp")
	if err != nil {
		return err
	}
	_, werr := f.Write([]byte("state"))
	var serr error
	if werr == nil {
		serr = f.Sync()
	}
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	if serr != nil {
		return serr
	}
	return cerr
}
