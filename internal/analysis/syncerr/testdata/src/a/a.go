// Fixture a: the dropped-error shapes PR 2 actually shipped in
// internal/wal (bare Close on the scan path, bare Close in repair and
// checkpoint) plus a deferred close of a writable handle.
package a

import (
	"io"

	"alex/internal/wal"
)

type log struct {
	f  wal.File
	fs wal.FS
}

// scanShape is wal.(*Log).scan before the fix: the journal read handle
// closed with its error dropped.
func scanShape(l *log, rc io.ReadCloser) ([]byte, error) {
	data, err := io.ReadAll(rc)
	rc.Close() // want `discarded error from rc.Close\(\)`
	if err != nil {
		return nil, err
	}
	return data, nil
}

// repairShape is wal.(*Log).repair before the fix: the append handle
// closed bare before truncating back to the record boundary.
func repairShape(l *log, path string, size int64) {
	l.f.Close() // want `discarded error from l.f.Close\(\)`
	if err := l.fs.Truncate(path, size); err != nil {
		return
	}
}

// checkpointShape is wal.(*Log).Checkpoint before the fix: the journal
// handle closed bare before the reset, plus a dropped Sync.
func checkpointShape(l *log, f wal.File) error {
	f.Sync()    // want `discarded error from f.Sync\(\)`
	l.f.Close() // want `discarded error from l.f.Close\(\)`
	nf, err := l.fs.Create("journal")
	if err != nil {
		return err
	}
	l.f = nf
	return nil
}

// deferredWritable defers Close on a handle that can write: the
// flush-on-close error vanishes.
func deferredWritable(fs wal.FS) error {
	f, err := fs.Create("checkpoint.tmp")
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred f.Close\(\) on a writable file`
	_, err = f.Write([]byte("state"))
	return err
}

// insideDefer hides the bare close inside a deferred func literal; the
// statement is still a drop.
func insideDefer(f wal.File) {
	defer func() {
		f.Close() // want `discarded error from f.Close\(\)`
	}()
}
