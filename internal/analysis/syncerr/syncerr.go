// Package syncerr flags discarded errors from Sync, Flush and Close on
// the durability-critical packages' file handles.
//
// The WAL's contract — a 202 ack means the bytes are on stable storage —
// dies silently when a write-path Sync or Close error is dropped: the
// kernel reports delayed write failures on exactly those calls. PR 2
// shipped three such drops in internal/wal (the scan-path rc.Close, the
// repair-path and checkpoint-path l.f.Close) and each had to be caught
// by a human. This analyzer makes the drop mechanical to catch:
//
//   - a bare call statement `x.Sync()`, `x.Flush()` or `x.Close()`
//     whose error result is discarded is always a finding;
//   - `defer x.Close()` is additionally a finding when x's static type
//     can write (implements io.Writer): deferring discards the
//     flush-on-close error of a file that may hold dirty data. Deferred
//     closes of read-only handles stay idiomatic.
//
// Compliant forms: capture the error into the surrounding error path,
// or discard it visibly with `_ = x.Close()` when a comment can justify
// why the error is meaningless there.
package syncerr

import (
	"go/ast"
	"go/types"

	"alex/internal/analysis"
)

// Analyzer is the syncerr checker, scoped to the write-ahead log, the
// serving layer, the fleet router, the chaos proxy and the cmd/ tools —
// the packages whose errors back durability promises (the router relays
// acks whose meaning is "the owning shard fsynced"; faultnet sits on
// that path in chaos drills, where a dropped error would fake a fault;
// the tools write graph and link files whose silent truncation corrupts
// every downstream run).
var Analyzer = &analysis.Analyzer{
	Name: "syncerr",
	Doc:  "flags discarded Sync/Flush/Close errors on durability-relevant files",
	Match: func(p string) bool {
		return analysis.PathHasAny(p, "alex/internal/wal", "alex/internal/server", "alex/internal/fleet", "alex/internal/faultnet", "alex/internal/store", "alex/cmd")
	},
	Run: run,
}

// checked are the method names whose single error result must not be
// dropped.
var checked = map[string]bool{"Sync": true, "Flush": true, "Close": true}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, name, ok := checkedCall(pass, stmt.X); ok {
					pass.Reportf(call.Pos(), "discarded error from %s; fold it into the surrounding error path (or assign to _ to discard explicitly)", name)
				}
			case *ast.DeferStmt:
				if call, name, ok := checkedCall(pass, stmt.Call); ok && writable(pass, call) {
					pass.Reportf(stmt.Pos(), "deferred %s on a writable file discards its flush-on-close error; close explicitly on the success path", name)
				}
			}
			// Keep descending: a func literal inside a defer can still
			// contain bare call statements.
			return true
		})
	}
	return nil
}

// checkedCall reports whether expr is a niladic method call named
// Sync/Flush/Close returning exactly one error, i.e. a call whose only
// product is the error being dropped. name describes it for the
// diagnostic.
func checkedCall(pass *analysis.Pass, expr ast.Expr) (*ast.CallExpr, string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return nil, "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !checked[sel.Sel.Name] {
		return nil, "", false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil, "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return nil, "", false
	}
	if !isErrorType(sig.Results().At(0).Type()) {
		return nil, "", false
	}
	return call, types.ExprString(sel) + "()", true
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// writable reports whether the receiver of call statically implements
// io.Writer — the handles whose Close can surface a failed flush.
func writable(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel := call.Fun.(*ast.SelectorExpr) // checkedCall established the shape
	tv, ok := pass.TypesInfo.Types[sel.X]
	if !ok {
		return false
	}
	return types.Implements(tv.Type, ioWriter) ||
		types.Implements(types.NewPointer(tv.Type), ioWriter)
}

// ioWriter is io.Writer built from scratch so the analyzer needs no
// import lookup.
var ioWriter = types.NewInterfaceType([]*types.Func{
	types.NewFunc(0, nil, "Write", types.NewSignatureType(nil, nil, nil,
		types.NewTuple(types.NewVar(0, nil, "p", types.NewSlice(types.Typ[types.Byte]))),
		types.NewTuple(
			types.NewVar(0, nil, "n", types.Typ[types.Int]),
			types.NewVar(0, nil, "err", types.Universe.Lookup("error").Type()),
		), false)),
}, nil).Complete()
