package syncerr_test

import (
	"testing"

	"alex/internal/analysis/analysistest"
	"alex/internal/analysis/syncerr"
)

func TestSyncerr(t *testing.T) {
	analysistest.Run(t, syncerr.Analyzer,
		"testdata/src/a", // PR-2 bug shapes: dropped wal Close/Sync errors
		"testdata/src/b", // compliant: folded, explicit, read-only defers
	)
}
