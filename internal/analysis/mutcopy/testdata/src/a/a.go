// Fixture a: by-value copies that fork synchronization state. The
// atomic.Pointer shapes replay the fleet's publication-cell hazard: a
// store copied by value keeps publishing into its private cell while
// readers load from the original.
package a

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

// publisher embeds the publication cell two levels down.
type cell struct {
	snap atomic.Pointer[int]
}

type publisher struct {
	c cell
}

func byValueParam(g guarded) int { // want `parameter passes .*a\.guarded by value, copying mu\.sync\.Mutex`
	return g.n
}

func (g guarded) byValueReceiver() {} // want `receiver passes .*a\.guarded by value`

func byValueResult() (g guarded, _ error) { // want `result passes .*a\.guarded by value`
	return
}

func arrayParam(arr [2]guarded) {} // want `parameter passes \[2\].*a\.guarded by value`

var lit = func(p publisher) { // want `parameter passes .*a\.publisher by value, copying c\.snap\.sync/atomic\.Pointer`
}

func copyAssignments(gp *guarded, arrp *[2]guarded, pubp *publisher) int {
	g := *gp             // want `assignment copies .*a\.guarded`
	h := arrp[0]         // want `assignment copies .*a\.guarded`
	p2 := *pubp          // want `assignment copies .*a\.publisher`
	p2.c.snap.Store(nil) // publishes into the fork, not the original
	return g.n + h.n
}

var cells [4]cell

var spare = cells[0] // want `assignment copies .*a\.cell`

func rangeCopies(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies .*a\.guarded`
		total += g.n
	}
	return total
}
