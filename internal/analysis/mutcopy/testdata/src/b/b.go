// Fixture b: compliant handling of lock-bearing values — pointers
// travel, fresh zero values are born in place, and plain data moves
// freely.
package b

import (
	"sync"
	"sync/atomic"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type publisher struct {
	snap atomic.Pointer[int]
}

type plain struct {
	n int
}

// Pointers are the way lock-bearing values travel.
func byPointer(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func (p *publisher) load() *int {
	return p.snap.Load()
}

// Composite literals are fresh: a zero-valued mutex has no history to
// fork, so initialization is not a copy.
func fresh() *guarded {
	g := guarded{n: 1}
	return &g
}

var global = guarded{}

// Call results are checked at the callee's result declaration, not at
// every call site.
func use() {
	g := fresh()
	_ = g
}

// Plain structs copy freely.
func plainCopies(ps []plain, p plain) int {
	q := p
	total := q.n
	for _, v := range ps {
		total += v.n
	}
	return total
}

// Ranging over pointers to lock-bearing values is fine.
func rangePointers(gs []*guarded) int {
	total := 0
	for _, g := range gs {
		total += g.n
	}
	return total
}
