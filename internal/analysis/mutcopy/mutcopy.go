// Package mutcopy forbids by-value copies of structs that embed
// synchronization state: sync.Mutex, sync.RWMutex, sync.WaitGroup,
// sync.Once, sync.Cond, and the sync/atomic value types
// (atomic.Pointer[T], atomic.Value, atomic.Int64, ...).
//
// Copying a mutex forks the lock: two goroutines can each hold "the"
// lock on their own copy. Copying an atomic.Pointer forks the
// publication cell — the snapshot-aliasing shape snapmut cannot see,
// because snapmut checks what is reachable FROM a published snapshot,
// not how the publishing cell itself travels. A store copied by value
// keeps publishing into its private cell while readers load from the
// original, and the fleet serves two divergent histories with no race
// report.
//
// A finding is any of:
//
//   - a function parameter, receiver or result of a lock-bearing type
//     passed by value (take a pointer);
//   - an assignment or variable initialization whose right-hand side
//     copies an existing lock-bearing value (dereference, field read,
//     index). Composite literals are fine: a fresh value's zero-valued
//     mutex has no history to fork;
//   - a range clause whose value variable copies lock-bearing
//     elements.
//
// "Lock-bearing" is recursive: a struct containing (at any depth,
// through named types, embedded fields and arrays) one of the types
// above. The check is syntactic and needs no facts; it rides alexlint
// rather than vet's copylocks so the invariant — including the atomic
// publication-cell case and this module's own wrapper types — is
// enforced by the same gate as the rest, with the same fixtures.
package mutcopy

import (
	"go/ast"
	"go/types"

	"alex/internal/analysis"
)

// Analyzer is the mutcopy checker. It applies module-wide.
var Analyzer = &analysis.Analyzer{
	Name: "mutcopy",
	Doc:  "flags by-value copies of structs carrying mutexes or atomics",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkFieldList(pass, n.Recv, "receiver")
				if n.Type.Params != nil {
					checkFieldList(pass, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(pass, n.Type.Results, "result")
				}
			case *ast.FuncLit:
				if n.Type.Params != nil {
					checkFieldList(pass, n.Type.Params, "parameter")
				}
				if n.Type.Results != nil {
					checkFieldList(pass, n.Type.Results, "result")
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					// `_ = x` evaluates and discards; nothing keeps the
					// forked copy, so nothing can diverge.
					if len(n.Lhs) == len(n.Rhs) && isBlank(n.Lhs[i]) {
						continue
					}
					checkCopyExpr(pass, rhs)
				}
			case *ast.ValueSpec:
				for i, v := range n.Values {
					if len(n.Names) == len(n.Values) && n.Names[i].Name == "_" {
						continue
					}
					checkCopyExpr(pass, v)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := exprType(pass, n.Value); t != nil {
						if path, bad := lockBearing(t); bad {
							pass.Reportf(n.Value.Pos(), "range value copies %s, which carries %s; iterate by index or over pointers", t.String(), path)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

func checkFieldList(pass *analysis.Pass, fields *ast.FieldList, kind string) {
	if fields == nil {
		return
	}
	for _, field := range fields.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok {
			continue
		}
		if path, bad := lockBearing(tv.Type); bad {
			pass.Reportf(field.Type.Pos(), "%s passes %s by value, copying %s; use a pointer", kind, tv.Type.String(), path)
		}
	}
}

// checkCopyExpr flags rhs when evaluating it copies an existing
// lock-bearing value: a variable read, field selection, dereference or
// index. Fresh values (composite literals, conversions of literals,
// function calls — the callee's result declaration is checked at its
// own site) are allowed.
func checkCopyExpr(pass *analysis.Pass, rhs ast.Expr) {
	switch ast.Unparen(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return
	}
	tv, ok := pass.TypesInfo.Types[rhs]
	if !ok {
		return
	}
	if path, bad := lockBearing(tv.Type); bad {
		pass.Reportf(rhs.Pos(), "assignment copies %s, which carries %s; the copy forks the lock/publication state — use a pointer", tv.Type.String(), path)
	}
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// exprType resolves e's type, falling back to the defined object for
// identifiers the Types map does not cover (a range clause's `:=`
// value variable is a definition, not an expression use).
func exprType(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// lockBearing reports whether t contains synchronization state by
// value, and a human-readable path to the first offending component.
func lockBearing(t types.Type) (string, bool) {
	return findLock(t, map[types.Type]bool{})
}

func findLock(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	seen[t] = true

	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return "sync." + obj.Name(), true
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Value", "Bool", "Int32", "Int64", "Uint32", "Uint64",
					"Uintptr", "Pointer":
					return "sync/atomic." + obj.Name(), true
				}
			}
		}
		return findLock(named.Underlying(), seen)
	}

	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if path, bad := findLock(f.Type(), seen); bad {
				return f.Name() + "." + path, true
			}
		}
	case *types.Array:
		if path, bad := findLock(u.Elem(), seen); bad {
			return "[...]" + path, true
		}
	}
	return "", false
}
