package mutcopy_test

import (
	"testing"

	"alex/internal/analysis/analysistest"
	"alex/internal/analysis/mutcopy"
)

func TestMutcopy(t *testing.T) {
	analysistest.Run(t, mutcopy.Analyzer,
		"testdata/src/a", // by-value copies forking mutexes and publication cells
		"testdata/src/b", // pointers, fresh values, plain data
	)
}
