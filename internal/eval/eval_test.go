package eval

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"alex/internal/links"
	"alex/internal/rdf"
)

func l(a, b uint32) links.Link { return links.Link{E1: rdf.ID(a), E2: rdf.ID(b)} }

func TestComputeBasics(t *testing.T) {
	gt := links.NewSet(l(1, 1), l(2, 2), l(3, 3), l(4, 4))
	cands := links.NewSet(l(1, 1), l(2, 2), l(9, 9))
	m := Compute(cands, gt)
	if m.Correct != 2 || m.Candidates != 3 {
		t.Fatalf("counts = %+v", m)
	}
	if math.Abs(m.Precision-2.0/3) > 1e-9 {
		t.Errorf("P = %f", m.Precision)
	}
	if math.Abs(m.Recall-0.5) > 1e-9 {
		t.Errorf("R = %f", m.Recall)
	}
	wantF := 2 * (2.0 / 3) * 0.5 / (2.0/3 + 0.5)
	if math.Abs(m.F1-wantF) > 1e-9 {
		t.Errorf("F = %f, want %f", m.F1, wantF)
	}
}

func TestComputeEdgeCases(t *testing.T) {
	empty := links.NewSet()
	gt := links.NewSet(l(1, 1))
	m := Compute(empty, gt)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 {
		t.Fatalf("empty candidates: %+v", m)
	}
	m = Compute(gt, empty)
	if m.Recall != 0 {
		t.Fatalf("empty ground truth recall = %f", m.Recall)
	}
	m = Compute(gt, gt)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 {
		t.Fatalf("perfect: %+v", m)
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Append(Metrics{Precision: 0.5})
	s.Append(Metrics{Precision: 0.8})
	s.NegativeFeedbackPct = append(s.NegativeFeedbackPct, 20)
	if s.Episodes() != 1 {
		t.Fatalf("Episodes = %d, want 1", s.Episodes())
	}
	if s.Last().Precision != 0.8 {
		t.Fatalf("Last = %+v", s.Last())
	}
	tab := s.Table()
	if !strings.Contains(tab, "0.800") || !strings.Contains(tab, "20.0") {
		t.Fatalf("Table output missing data:\n%s", tab)
	}
	var emptySeries Series
	if emptySeries.Episodes() != 0 || emptySeries.Last().Precision != 0 {
		t.Fatal("empty series accessors wrong")
	}
}

func TestSeriesCSV(t *testing.T) {
	var s Series
	s.Append(Metrics{Precision: 0.5, Recall: 0.25, F1: 1.0 / 3, Candidates: 8})
	s.Append(Metrics{Precision: 1, Recall: 1, F1: 1, Candidates: 4})
	s.NegativeFeedbackPct = append(s.NegativeFeedbackPct, 12.5)
	csv := s.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if lines[0] != "episode,precision,recall,fmeasure,candidates,negative_feedback_pct" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[2] != "1,1.0000,1.0000,1.0000,4,12.50" {
		t.Fatalf("row = %q", lines[2])
	}
}

// Property: metrics are in [0,1] and F1 is between min and max of P,R
// scaled harmonically (F ≤ min(... actually F ≤ both P and R is false;
// F is ≤ max and ≥ min is false too; but F ≤ (P+R)/2 always holds).
func TestMetricsRangeProperty(t *testing.T) {
	f := func(xs, ys []uint16) bool {
		cands, gt := links.NewSet(), links.NewSet()
		for _, x := range xs {
			cands.Add(l(uint32(x%30), uint32(x/30%30)))
		}
		for _, y := range ys {
			gt.Add(l(uint32(y%30), uint32(y/30%30)))
		}
		m := Compute(cands, gt)
		inRange := m.Precision >= 0 && m.Precision <= 1 && m.Recall >= 0 && m.Recall <= 1 && m.F1 >= 0 && m.F1 <= 1
		harmonic := m.F1 <= (m.Precision+m.Recall)/2+1e-9
		return inRange && harmonic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
