// Package eval computes the link-quality metrics the paper reports:
// precision, recall and F-measure of the candidate link set against the
// ground truth, tracked episode by episode.
package eval

import (
	"fmt"
	"strings"

	"alex/internal/links"
)

// Metrics holds the quality of a candidate link set at one point in time.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
	// Candidates and Correct are the sizes behind the ratios: |C| and |C∩G|.
	Candidates int
	Correct    int
}

// Compute evaluates candidates against ground truth gt: P = |C∩G|/|C|,
// R = |C∩G|/|G|, F = 2PR/(P+R) (paper §7.1).
func Compute(candidates, gt links.Set) Metrics {
	correct := candidates.Intersection(gt)
	m := Metrics{Candidates: candidates.Len(), Correct: correct}
	if candidates.Len() > 0 {
		m.Precision = float64(correct) / float64(candidates.Len())
	}
	if gt.Len() > 0 {
		m.Recall = float64(correct) / float64(gt.Len())
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// String renders the metrics compactly.
func (m Metrics) String() string {
	return fmt.Sprintf("P=%.3f R=%.3f F=%.3f (|C|=%d, correct=%d)",
		m.Precision, m.Recall, m.F1, m.Candidates, m.Correct)
}

// Series is a per-episode sequence of metrics; index 0 is the initial
// (pre-feedback) state, matching the x-axes of Figures 2-4 and 7-11.
type Series struct {
	Points []Metrics
	// NegativeFeedbackPct[i] is the percentage of feedback items in
	// episode i+1 that were negative (Figures 6b and 10c).
	NegativeFeedbackPct []float64
}

// Append records the metrics after one more episode.
func (s *Series) Append(m Metrics) { s.Points = append(s.Points, m) }

// Last returns the most recent metrics (zero value if empty).
func (s *Series) Last() Metrics {
	if len(s.Points) == 0 {
		return Metrics{}
	}
	return s.Points[len(s.Points)-1]
}

// Episodes returns the number of recorded episodes (excluding point 0).
func (s *Series) Episodes() int {
	if len(s.Points) == 0 {
		return 0
	}
	return len(s.Points) - 1
}

// CSV renders the series as comma-separated values (header included),
// ready for external plotting: episode, precision, recall, f-measure,
// candidates, negative-feedback percentage.
func (s *Series) CSV() string {
	var b strings.Builder
	b.WriteString("episode,precision,recall,fmeasure,candidates,negative_feedback_pct\n")
	for i, m := range s.Points {
		neg := ""
		if i > 0 && i-1 < len(s.NegativeFeedbackPct) {
			neg = fmt.Sprintf("%.2f", s.NegativeFeedbackPct[i-1])
		}
		fmt.Fprintf(&b, "%d,%.4f,%.4f,%.4f,%d,%s\n", i, m.Precision, m.Recall, m.F1, m.Candidates, neg)
	}
	return b.String()
}

// Table renders the series as an aligned text table with one row per
// episode, the format printed by cmd/alexbench.
func (s *Series) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %-10s %-10s %-10s %-8s %s\n", "episode", "precision", "recall", "f-measure", "|C|", "neg-fb%")
	for i, m := range s.Points {
		neg := ""
		if i > 0 && i-1 < len(s.NegativeFeedbackPct) {
			neg = fmt.Sprintf("%.1f", s.NegativeFeedbackPct[i-1])
		}
		fmt.Fprintf(&b, "%-8d %-10.3f %-10.3f %-10.3f %-8d %s\n", i, m.Precision, m.Recall, m.F1, m.Candidates, neg)
	}
	return b.String()
}
