package feature

import (
	"sort"
	"strconv"
	"time"

	"alex/internal/rdf"
	"alex/internal/similarity"
)

// fastSim is a precomputing implementation of similarity.SpaceSim used
// when Options.Sim is left nil: every term is classified and tokenized
// once, so the per-pair cost during space construction is two sorted
// array intersections instead of repeated string processing.
type fastSim struct {
	d     *rdf.Dict
	cache map[rdf.ID]*termSig
}

type termKind uint8

const (
	sigString termKind = iota
	sigNumber
	sigDate
	sigIRI
)

type termSig struct {
	kind termKind
	num  float64  // numeric value, or date as fractional days
	norm string   // normalized string form
	tri  []uint32 // sorted unique trigram hashes
	tok  []uint32 // sorted unique token hashes
}

func newFastSim(d *rdf.Dict) *fastSim {
	return &fastSim{d: d, cache: make(map[rdf.ID]*termSig)}
}

func (f *fastSim) sig(id rdf.ID) *termSig {
	if s, ok := f.cache[id]; ok {
		return s
	}
	s := buildSig(f.d.Term(id))
	f.cache[id] = s
	return s
}

var dateLayouts = []string{"2006-01-02", "2006-01-02T15:04:05", "2006"}

func buildSig(t rdf.Term) *termSig {
	s := &termSig{}
	raw := t.Value
	if t.IsIRI() || t.IsBlank() {
		s.kind = sigIRI
		raw = t.LocalName()
	} else {
		switch t.EffectiveDatatype() {
		case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
			if v, err := strconv.ParseFloat(raw, 64); err == nil {
				s.kind = sigNumber
				s.num = v
				return s
			}
		case rdf.XSDDate, rdf.XSDDateTime:
			if d, ok := parseAnyDate(raw); ok {
				s.kind = sigDate
				s.num = float64(d.Unix()) / 86400
				return s
			}
		case rdf.XSDString:
			// plain literal: sniff the lexical form
			if v, err := strconv.ParseFloat(raw, 64); err == nil {
				s.kind = sigNumber
				s.num = v
				return s
			}
			if d, ok := parseAnyDate(raw); ok {
				s.kind = sigDate
				s.num = float64(d.Unix()) / 86400
				return s
			}
		}
	}
	s.norm = similarity.Normalize(raw)
	s.tri = trigramHashes(s.norm)
	s.tok = tokenHashes(s.norm)
	return s
}

func parseAnyDate(v string) (time.Time, bool) {
	for _, layout := range dateLayouts {
		if d, err := time.Parse(layout, v); err == nil {
			return d, true
		}
	}
	return time.Time{}, false
}

const fnvOffset, fnvPrime = 2166136261, 16777619

func fnvAdd(h uint32, b byte) uint32 { return (h ^ uint32(b)) * fnvPrime }

func trigramHashes(norm string) []uint32 {
	if norm == "" {
		return nil
	}
	padded := "  " + norm + " "
	out := make([]uint32, 0, len(padded))
	for i := 0; i+3 <= len(padded); i++ {
		h := uint32(fnvOffset)
		h = fnvAdd(h, padded[i])
		h = fnvAdd(h, padded[i+1])
		h = fnvAdd(h, padded[i+2])
		out = append(out, h)
	}
	return dedupSorted(out)
}

func tokenHashes(norm string) []uint32 {
	var out []uint32
	h := uint32(fnvOffset)
	inTok := false
	for i := 0; i < len(norm); i++ {
		if norm[i] == ' ' {
			if inTok {
				out = append(out, h)
				h = fnvOffset
				inTok = false
			}
			continue
		}
		h = fnvAdd(h, norm[i])
		inTok = true
	}
	if inTok {
		out = append(out, h)
	}
	return dedupSorted(out)
}

func dedupSorted(xs []uint32) []uint32 {
	if len(xs) == 0 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// jaccardSorted computes |a∩b| / |a∪b| over sorted unique slices.
func jaccardSorted(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// sim mirrors similarity.SpaceSim over precomputed signatures.
func (f *fastSim) sim(o1, o2 rdf.ID) float64 {
	if o1 == o2 {
		return 1
	}
	a, b := f.sig(o1), f.sig(o2)
	switch {
	case a.kind == sigDate && b.kind == sigDate:
		d := a.num - b.num
		if d < 0 {
			d = -d
		}
		if d >= 365 {
			return 0
		}
		return 1 - d/365
	case a.kind == sigNumber && b.kind == sigNumber:
		d := a.num - b.num
		if d < 0 {
			d = -d
		}
		if d >= 10 {
			return 0
		}
		return 1 - d/10
	case a.kind == sigDate || b.kind == sigDate || a.kind == sigNumber || b.kind == sigNumber:
		return 0
	case a.kind == sigIRI != (b.kind == sigIRI):
		return 0
	default:
		if a.norm == b.norm {
			if a.norm == "" {
				return 0
			}
			return 1
		}
		tg := jaccardSorted(a.tri, b.tri)
		tk := jaccardSorted(a.tok, b.tok)
		if tk > tg {
			return tk
		}
		return tg
	}
}
