package feature

import (
	"sort"
	"strconv"
	"time"

	"alex/internal/rdf"
	"alex/internal/similarity"
)

// SigTable is a precomputed term-signature table: a dense array indexed
// by rdf.ID (the dictionary assigns dense IDs) holding, for every
// interned term, its classification and tokenization. It is the fast
// path behind space construction when Options.Sim is nil: every term is
// classified and tokenized exactly once, so the per-pair cost during
// construction is two sorted array intersections instead of repeated
// string processing, with no map lookups in the inner loop.
//
// A SigTable is read-only after construction and therefore safe to
// share between the worker goroutines of one Build and across the
// Builds of several partitions, as long as they all use the dictionary
// the table was built from. Terms interned after construction are not
// covered; Build panics (index out of range) rather than silently
// degrading.
type SigTable struct {
	sigs []termSig
}

type termKind uint8

const (
	sigString termKind = iota
	sigNumber
	sigDate
	sigIRI
)

type termSig struct {
	kind termKind
	num  float64  // numeric value, or date as fractional days
	norm string   // normalized string form
	tri  []uint32 // sorted unique trigram hashes
	tok  []uint32 // sorted unique token hashes
}

// NewSigTable classifies and tokenizes every term currently interned in
// d in one pass. Cost is linear in the dictionary; see DESIGN.md
// "Shared signature table".
func NewSigTable(d *rdf.Dict) *SigTable {
	n := d.Len()
	t := &SigTable{sigs: make([]termSig, n+1)} // slot 0 reserved for NoID
	for id := 1; id <= n; id++ {
		buildSig(d.Term(rdf.ID(id)), &t.sigs[id])
	}
	return t
}

// Len returns the number of signatures in the table.
func (t *SigTable) Len() int { return len(t.sigs) - 1 }

func (t *SigTable) sig(id rdf.ID) *termSig { return &t.sigs[id] }

var dateLayouts = []string{"2006-01-02", "2006-01-02T15:04:05", "2006"}

// buildSig fills s with the signature of t. Writing into caller-owned
// storage keeps the dense table a single allocation.
func buildSig(t rdf.Term, s *termSig) {
	raw := t.Value
	if t.IsIRI() || t.IsBlank() {
		s.kind = sigIRI
		raw = t.LocalName()
	} else {
		switch t.EffectiveDatatype() {
		case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
			if v, err := strconv.ParseFloat(raw, 64); err == nil {
				s.kind = sigNumber
				s.num = v
				return
			}
		case rdf.XSDDate, rdf.XSDDateTime:
			if d, ok := parseAnyDate(raw); ok {
				s.kind = sigDate
				s.num = float64(d.Unix()) / 86400
				return
			}
		case rdf.XSDString:
			// plain literal: sniff the lexical form
			if v, err := strconv.ParseFloat(raw, 64); err == nil {
				s.kind = sigNumber
				s.num = v
				return
			}
			if d, ok := parseAnyDate(raw); ok {
				s.kind = sigDate
				s.num = float64(d.Unix()) / 86400
				return
			}
		}
	}
	s.norm = similarity.Normalize(raw)
	s.tri = trigramHashes(s.norm)
	s.tok = tokenHashes(s.norm)
}

func parseAnyDate(v string) (time.Time, bool) {
	for _, layout := range dateLayouts {
		if d, err := time.Parse(layout, v); err == nil {
			return d, true
		}
	}
	return time.Time{}, false
}

const fnvOffset, fnvPrime = 2166136261, 16777619

func fnvAdd(h uint32, b byte) uint32 { return (h ^ uint32(b)) * fnvPrime }

func trigramHashes(norm string) []uint32 {
	if norm == "" {
		return nil
	}
	padded := "  " + norm + " "
	out := make([]uint32, 0, len(padded))
	for i := 0; i+3 <= len(padded); i++ {
		h := uint32(fnvOffset)
		h = fnvAdd(h, padded[i])
		h = fnvAdd(h, padded[i+1])
		h = fnvAdd(h, padded[i+2])
		out = append(out, h)
	}
	return dedupSorted(out)
}

func tokenHashes(norm string) []uint32 {
	var out []uint32
	h := uint32(fnvOffset)
	inTok := false
	for i := 0; i < len(norm); i++ {
		if norm[i] == ' ' {
			if inTok {
				out = append(out, h)
				h = fnvOffset
				inTok = false
			}
			continue
		}
		h = fnvAdd(h, norm[i])
		inTok = true
	}
	if inTok {
		out = append(out, h)
	}
	return dedupSorted(out)
}

func dedupSorted(xs []uint32) []uint32 {
	if len(xs) == 0 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// jaccardSorted computes |a∩b| / |a∪b| over sorted unique slices.
func jaccardSorted(a, b []uint32) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	i, j, inter := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			inter++
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return float64(inter) / float64(len(a)+len(b)-inter)
}

// sim mirrors similarity.SpaceSim over precomputed signatures.
func (t *SigTable) sim(o1, o2 rdf.ID) float64 {
	if o1 == o2 {
		return 1
	}
	a, b := t.sig(o1), t.sig(o2)
	switch {
	case a.kind == sigDate && b.kind == sigDate:
		d := a.num - b.num
		if d < 0 {
			d = -d
		}
		if d >= 365 {
			return 0
		}
		return 1 - d/365
	case a.kind == sigNumber && b.kind == sigNumber:
		d := a.num - b.num
		if d < 0 {
			d = -d
		}
		if d >= 10 {
			return 0
		}
		return 1 - d/10
	case a.kind == sigDate || b.kind == sigDate || a.kind == sigNumber || b.kind == sigNumber:
		return 0
	case a.kind == sigIRI != (b.kind == sigIRI):
		return 0
	default:
		if a.norm == b.norm {
			if a.norm == "" {
				return 0
			}
			return 1
		}
		tg := jaccardSorted(a.tri, b.tri)
		tk := jaccardSorted(a.tok, b.tok)
		if tk > tg {
			return tk
		}
		return tg
	}
}
