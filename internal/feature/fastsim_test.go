package feature

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"alex/internal/rdf"
	"alex/internal/similarity"
)

// TestSigTableMatchesSpaceSim verifies the precomputed signature table
// agrees with the reference similarity.SpaceSim on a broad set of term
// pairs.
func TestSigTableMatchesSpaceSim(t *testing.T) {
	terms := []rdf.Term{
		rdf.Literal("LeBron James"),
		rdf.Literal("James, LeBron"),
		rdf.Literal("Kevin Durant"),
		rdf.Literal("kevin  durant"),
		rdf.Literal("Zinedine Zidane"),
		rdf.Literal(""),
		rdf.Literal("42"),
		rdf.Literal("45"),
		rdf.Literal("1984-12-30"),
		rdf.Literal("1984-12-31"),
		rdf.Literal("1994-12-30"),
		rdf.TypedLiteral("1984-12-30", rdf.XSDDate),
		rdf.TypedLiteral("7", rdf.XSDInteger),
		rdf.TypedLiteral("7.5", rdf.XSDDecimal),
		rdf.IRI("http://x.org/LeBron_James"),
		rdf.IRI("http://y.org/LeBron_James"),
		rdf.IRI("http://y.org/Tim_Duncan"),
		rdf.Literal("Thing"),
	}
	d := rdf.NewDict()
	ids := make([]rdf.ID, len(terms))
	for i, tm := range terms {
		ids[i] = d.Intern(tm)
	}
	tab := NewSigTable(d)
	if tab.Len() != d.Len() {
		t.Fatalf("table covers %d terms, dict has %d", tab.Len(), d.Len())
	}
	for i, a := range terms {
		for j, b := range terms {
			want := similarity.SpaceSim(a, b)
			got := tab.sim(ids[i], ids[j])
			if math.Abs(got-want) > 1e-9 {
				t.Errorf("sim(%v, %v): fast=%f reference=%f", a, b, got, want)
			}
		}
	}
}

// Property: the table similarity is symmetric, in [0,1], and 1 on
// identical IDs. The table is rebuilt after every intern because it
// only covers terms present at construction time.
func TestSigTableProperties(t *testing.T) {
	d := rdf.NewDict()
	prop := func(a, b string) bool {
		ia := d.Intern(rdf.Literal(a))
		ib := d.Intern(rdf.Literal(b))
		tab := NewSigTable(d)
		x := tab.sim(ia, ib)
		y := tab.sim(ib, ia)
		return x >= 0 && x <= 1 && math.Abs(x-y) < 1e-9 && tab.sim(ia, ia) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardSorted(t *testing.T) {
	cases := []struct {
		a, b []uint32
		want float64
	}{
		{nil, nil, 0},
		{[]uint32{1}, nil, 0},
		{[]uint32{1, 2, 3}, []uint32{1, 2, 3}, 1},
		{[]uint32{1, 2}, []uint32{2, 3}, 1.0 / 3},
		{[]uint32{1}, []uint32{2}, 0},
	}
	for _, c := range cases {
		if got := jaccardSorted(c.a, c.b); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("jaccardSorted(%v,%v) = %f, want %f", c.a, c.b, got, c.want)
		}
	}
}

func TestDedupSorted(t *testing.T) {
	got := dedupSorted([]uint32{5, 1, 5, 3, 1})
	want := []uint32{1, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("dedupSorted = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupSorted = %v, want %v", got, want)
		}
	}
	if out := dedupSorted(nil); len(out) != 0 {
		t.Fatal("dedupSorted(nil) not empty")
	}
}

func BenchmarkFastSimNames(b *testing.B) {
	d := rdf.NewDict()
	var ids []rdf.ID
	for i := 0; i < 200; i++ {
		ids = append(ids, d.Intern(rdf.Literal(fmt.Sprintf("Person Number %d Lastname%d", i, i*7%100))))
	}
	tab := NewSigTable(d)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.sim(ids[i%200], ids[(i*31)%200])
	}
}
