package feature

import (
	"fmt"
	"testing"
	"testing/quick"

	"alex/internal/links"
	"alex/internal/rdf"
)

// twoDatasets builds two small graphs over a shared dictionary:
// dataset 1 people with label/birth, dataset 2 people with name/born.
func twoDatasets() (g1, g2 *rdf.Graph, d *rdf.Dict) {
	d = rdf.NewDict()
	g1 = rdf.NewGraphWithDict(d)
	g2 = rdf.NewGraphWithDict(d)

	p1 := func(s, p, o string) {
		g1.Insert(rdf.Triple{S: rdf.IRI("http://ds1/" + s), P: rdf.IRI("http://ds1/" + p), O: rdf.Literal(o)})
	}
	p2 := func(s, p, o string) {
		g2.Insert(rdf.Triple{S: rdf.IRI("http://ds2/" + s), P: rdf.IRI("http://ds2/" + p), O: rdf.Literal(o)})
	}
	p1("a", "label", "LeBron James")
	p1("a", "birth", "1984-12-30")
	p1("b", "label", "Kevin Durant")
	p1("b", "birth", "1988-09-29")

	p2("x", "name", "LeBron James")
	p2("x", "born", "1984-12-30")
	p2("y", "name", "Kevin Durant")
	p2("y", "born", "1988-09-29")
	p2("z", "name", "Zinedine Zidane")
	p2("z", "born", "1972-06-23")
	return g1, g2, d
}

func id(d *rdf.Dict, iri string) rdf.ID {
	v, ok := d.Lookup(rdf.IRI(iri))
	if !ok {
		panic("missing " + iri)
	}
	return v
}

func TestBuildSpaceBasics(t *testing.T) {
	g1, g2, d := twoDatasets()
	sp := Build(g1, g2, g1.SubjectIDs(), g2.SubjectIDs(), Options{Theta: 0.5})

	if sp.TotalPairs != 6 {
		t.Fatalf("TotalPairs = %d, want 6", sp.TotalPairs)
	}
	la := links.Link{E1: id(d, "http://ds1/a"), E2: id(d, "http://ds2/x")}
	if !sp.Contains(la) {
		t.Fatal("space is missing the correct pair (a,x)")
	}
	set := sp.FeatureSet(la)
	k := Key{P1: id(d, "http://ds1/label"), P2: id(d, "http://ds2/name")}
	if got := set.Score(k); got != 1 {
		t.Fatalf("label/name score = %f, want 1", got)
	}
}

func TestBuildSpaceFiltersEmptySets(t *testing.T) {
	g1, g2, d := twoDatasets()
	sp := Build(g1, g2, g1.SubjectIDs(), g2.SubjectIDs(), Options{Theta: 0.95})
	// With a high θ only near-identical value pairs survive; (a,z) and
	// (b,z) should have been dropped entirely.
	bad := links.Link{E1: id(d, "http://ds1/a"), E2: id(d, "http://ds2/z")}
	if sp.Contains(bad) {
		t.Fatal("pair with no strong feature was not filtered")
	}
	if sp.Len() >= sp.TotalPairs {
		t.Fatalf("filtering removed nothing: %d of %d", sp.Len(), sp.TotalPairs)
	}
}

func TestFindInRange(t *testing.T) {
	g1, g2, d := twoDatasets()
	sp := Build(g1, g2, g1.SubjectIDs(), g2.SubjectIDs(), Options{Theta: 0.3})
	k := Key{P1: id(d, "http://ds1/label"), P2: id(d, "http://ds2/name")}

	got := sp.FindInRange(k, 0.95, 1.0)
	if len(got) != 2 {
		t.Fatalf("FindInRange(0.95,1.0) = %d links, want 2 exact name matches", len(got))
	}
	if n := sp.CountInRange(k, 0.95, 1.0); n != 2 {
		t.Fatalf("CountInRange = %d, want 2", n)
	}
	if n := sp.CountInRange(k, 2.0, 3.0); n != 0 {
		t.Fatalf("CountInRange outside domain = %d, want 0", n)
	}
	if n := sp.CountInRange(k, 0.9, 0.5); n != 0 {
		t.Fatalf("CountInRange inverted = %d, want 0", n)
	}
}

func TestFindInRangeMatchesLinearScan(t *testing.T) {
	g1, g2, _ := twoDatasets()
	sp := Build(g1, g2, g1.SubjectIDs(), g2.SubjectIDs(), Options{Theta: 0.1})
	for k := range sp.index {
		for _, window := range [][2]float64{{0, 1}, {0.4, 0.8}, {0.9, 1.0}} {
			want := 0
			for _, l := range sp.Links() {
				s := sp.FeatureSet(l).Score(k)
				if s >= window[0] && s <= window[1] {
					want++
				}
			}
			if got := len(sp.FindInRange(k, window[0], window[1])); got != want {
				t.Errorf("key %v window %v: FindInRange = %d, scan = %d", k, window, got, want)
			}
		}
	}
}

func TestSetKeysAndMissingScore(t *testing.T) {
	s := Set{{Key: Key{P1: 1, P2: 2}, Score: 0.7}, {Key: Key{P1: 3, P2: 4}, Score: 0.9}}
	if len(s.Keys()) != 2 {
		t.Fatalf("Keys = %v", s.Keys())
	}
	if got := s.Score(Key{P1: 9, P2: 9}); got != -1 {
		t.Fatalf("missing feature score = %f, want -1", got)
	}
}

func TestRowColumnMaxReduction(t *testing.T) {
	// Entity 1 has 3 attributes, entity 2 has 1: n > m means one feature
	// per dataset-1 predicate (row max).
	d := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(d)
	g2 := rdf.NewGraphWithDict(d)
	g1.Insert(rdf.Triple{S: rdf.IRI("e1"), P: rdf.IRI("p1"), O: rdf.Literal("alpha")})
	g1.Insert(rdf.Triple{S: rdf.IRI("e1"), P: rdf.IRI("p2"), O: rdf.Literal("alpha")})
	g1.Insert(rdf.Triple{S: rdf.IRI("e1"), P: rdf.IRI("p3"), O: rdf.Literal("alpha")})
	g2.Insert(rdf.Triple{S: rdf.IRI("e2"), P: rdf.IRI("q1"), O: rdf.Literal("alpha")})

	sp := Build(g1, g2, []rdf.ID{mustID(d, "e1")}, []rdf.ID{mustID(d, "e2")}, Options{Theta: 0.3})
	set := sp.FeatureSet(links.Link{E1: mustID(d, "e1"), E2: mustID(d, "e2")})
	if len(set) != 3 {
		t.Fatalf("row-max reduction produced %d features, want 3 (one per row)", len(set))
	}

	// Reverse: entity 1 has 1 attribute, entity 2 has 3: column max.
	sp2 := Build(g2, g1, []rdf.ID{mustID(d, "e2")}, []rdf.ID{mustID(d, "e1")}, Options{Theta: 0.3})
	set2 := sp2.FeatureSet(links.Link{E1: mustID(d, "e2"), E2: mustID(d, "e1")})
	if len(set2) != 3 {
		t.Fatalf("column-max reduction produced %d features, want 3", len(set2))
	}
}

func mustID(d *rdf.Dict, iri string) rdf.ID {
	v, ok := d.Lookup(rdf.IRI(iri))
	if !ok {
		panic("missing " + iri)
	}
	return v
}

func TestPartitionRoundRobin(t *testing.T) {
	ents := make([]rdf.ID, 10)
	for i := range ents {
		ents[i] = rdf.ID(i + 1)
	}
	parts := PartitionRoundRobin(ents, 3)
	if len(parts) != 3 {
		t.Fatalf("parts = %d, want 3", len(parts))
	}
	sizes := []int{len(parts[0]), len(parts[1]), len(parts[2])}
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Fatalf("sizes = %v, want [4 3 3]", sizes)
	}
	// entity i goes to partition i mod n
	if parts[1][0] != rdf.ID(2) {
		t.Fatalf("round-robin placement wrong: %v", parts[1])
	}
	// degenerate n
	if got := PartitionRoundRobin(ents, 0); len(got) != 1 || len(got[0]) != 10 {
		t.Fatalf("n=0 should yield a single partition")
	}
}

// Property: round-robin partitioning preserves all entities exactly once
// and sizes differ by at most one.
func TestPartitionProperty(t *testing.T) {
	f := func(count uint8, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		ents := make([]rdf.ID, count)
		for i := range ents {
			ents[i] = rdf.ID(i + 1)
		}
		parts := PartitionRoundRobin(ents, n)
		seen := map[rdf.ID]bool{}
		minSize, maxSize := int(count), 0
		for _, p := range parts {
			if len(p) < minSize {
				minSize = len(p)
			}
			if len(p) > maxSize {
				maxSize = len(p)
			}
			for _, e := range p {
				if seen[e] {
					return false
				}
				seen[e] = true
			}
		}
		return len(seen) == int(count) && (count == 0 || maxSize-minSize <= 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildSpace(b *testing.B) {
	d := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(d)
	g2 := rdf.NewGraphWithDict(d)
	for i := 0; i < 100; i++ {
		s := rdf.IRI(fmt.Sprintf("http://ds1/e%d", i))
		g1.Insert(rdf.Triple{S: s, P: rdf.IRI("http://ds1/label"), O: rdf.Literal(fmt.Sprintf("entity number %d", i))})
		g1.Insert(rdf.Triple{S: s, P: rdf.IRI("http://ds1/num"), O: rdf.Literal(fmt.Sprintf("%d", i))})
	}
	for i := 0; i < 100; i++ {
		s := rdf.IRI(fmt.Sprintf("http://ds2/e%d", i))
		g2.Insert(rdf.Triple{S: s, P: rdf.IRI("http://ds2/name"), O: rdf.Literal(fmt.Sprintf("entity number %d", i))})
		g2.Insert(rdf.Triple{S: s, P: rdf.IRI("http://ds2/num"), O: rdf.Literal(fmt.Sprintf("%d", i))})
	}
	e1, e2 := g1.SubjectIDs(), g2.SubjectIDs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := Build(g1, g2, e1, e2, Options{Theta: 0.3})
		if sp.Len() == 0 {
			b.Fatal("empty space")
		}
	}
}
