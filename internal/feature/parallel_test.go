package feature

import (
	"fmt"
	"reflect"
	"testing"

	"alex/internal/rdf"
	"alex/internal/similarity"
	"alex/internal/synth"
)

// testScale keeps the exhaustive per-profile equivalence tests fast
// enough to run under -race: the largest profile (dbpedia-opencyc,
// 2400×1500) shrinks to 120×75.
const testScale = 0.05

// sameSpace asserts two spaces are identical in every observable and
// internal respect: the unfiltered size, the per-link feature sets, and
// the per-feature sorted index (order included — FindInRange answer
// order must not depend on how the space was built).
func sameSpace(t *testing.T, label string, got, want *Space) {
	t.Helper()
	if got.TotalPairs != want.TotalPairs {
		t.Fatalf("%s: TotalPairs = %d, want %d", label, got.TotalPairs, want.TotalPairs)
	}
	if !reflect.DeepEqual(got.sets, want.sets) {
		t.Fatalf("%s: feature sets differ (got %d links, want %d)", label, len(got.sets), len(want.sets))
	}
	if !reflect.DeepEqual(got.index, want.index) {
		t.Fatalf("%s: index differs (got %d keys, want %d)", label, len(got.index), len(want.index))
	}
}

// TestBuildDeterministic is the regression test for the historical
// nondeterministic tie ordering in Space.index: building the same space
// twice must produce byte-identical indexes, map iteration order
// notwithstanding.
func TestBuildDeterministic(t *testing.T) {
	prof, _ := synth.ProfileByName("dbpedia-nytimes")
	ds := synth.Generate(prof.Scale(testScale))
	opts := Options{Theta: DefaultTheta, Workers: 4}
	a := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2, opts)
	b := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2, opts)
	if a.Len() == 0 {
		t.Fatal("space is empty; test proves nothing")
	}
	sameSpace(t, "second build", b, a)
}

// TestParallelMatchesSerial checks the tentpole determinism claim on
// every synth profile: a Workers:8 build is identical to Workers:1.
func TestParallelMatchesSerial(t *testing.T) {
	for _, prof := range synth.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			ds := synth.Generate(prof.Scale(testScale))
			serial := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2, Options{Theta: DefaultTheta, Workers: 1})
			parallel := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2, Options{Theta: DefaultTheta, Workers: 8})
			if serial.Len() == 0 {
				t.Fatal("space is empty; test proves nothing")
			}
			sameSpace(t, "workers=8", parallel, serial)
		})
	}
}

// TestBlockedMatchesUnblocked checks the θ-unreachability argument
// exhaustively: on every synth profile and several thresholds, the
// blocked space is identical to the unblocked one.
func TestBlockedMatchesUnblocked(t *testing.T) {
	for _, prof := range synth.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			ds := synth.Generate(prof.Scale(testScale))
			for _, theta := range []float64{DefaultTheta, 0.6, 0.9} {
				open := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2, Options{Theta: theta, Workers: 2})
				blocked := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2, Options{Theta: theta, Workers: 2, Blocking: true})
				sameSpace(t, fmt.Sprintf("blocked θ=%g", theta), blocked, open)
			}
		})
	}
}

// TestSharedSigTable checks that supplying a precomputed table (as
// core.New does, one table across all partitions) changes nothing.
func TestSharedSigTable(t *testing.T) {
	prof, _ := synth.ProfileByName("opencyc-drugbank")
	ds := synth.Generate(prof.Scale(testScale))
	own := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2, Options{Theta: DefaultTheta, Workers: 2})
	shared := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2,
		Options{Theta: DefaultTheta, Workers: 2, Sigs: NewSigTable(ds.Dict)})
	sameSpace(t, "shared table", shared, own)
}

// TestThetaSentinel pins the Options.Theta contract: negative means
// "unset" (DefaultTheta applies), zero is an honest θ=0 that keeps
// zero-score features instead of silently becoming 0.3.
func TestThetaSentinel(t *testing.T) {
	prof, _ := synth.ProfileByName("dbpedia-lexvo")
	ds := synth.Generate(prof.Scale(testScale))
	build := func(theta float64) *Space {
		return Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2, Options{Theta: theta, Workers: 2})
	}
	sameSpace(t, "Theta:-1 vs DefaultTheta", build(-1), build(DefaultTheta))
	zero := build(0)
	if zero.Len() <= build(DefaultTheta).Len() {
		t.Fatalf("explicit θ=0 filtered the space like the default did (len %d)", zero.Len())
	}
	// θ=0 keeps every pair where both sides have attributes.
	for l, set := range zero.sets {
		for _, f := range set {
			if f.Score < 0 {
				t.Fatalf("link %v feature %v has negative score %g", l, f.Key, f.Score)
			}
		}
	}
}

// TestCustomSimParallel checks that a user-supplied Sim function is
// deterministic across worker counts and that Blocking is ignored with
// it (the θ-unreachability argument only holds for the built-in
// similarity).
func TestCustomSimParallel(t *testing.T) {
	prof, _ := synth.ProfileByName("dbpedia-dogfood")
	ds := synth.Generate(prof.Scale(testScale))
	sim := func(a, b rdf.Term) float64 { return similarity.SpaceSim(a, b) }
	serial := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2,
		Options{Theta: DefaultTheta, Workers: 1, Sim: sim})
	parallel := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2,
		Options{Theta: DefaultTheta, Workers: 8, Sim: sim, Blocking: true})
	if serial.Len() == 0 {
		t.Fatal("space is empty; test proves nothing")
	}
	sameSpace(t, "custom sim workers=8 blocking=true", parallel, serial)
}

func TestPrefixLen(t *testing.T) {
	for _, tc := range []struct {
		n     int
		theta float64
		want  int
	}{
		{0, 0.3, 0},
		{1, 0.3, 1},
		{10, 0.3, 8},
		{10, 0.9, 2},
		{10, 1.0, 1},
		{10, 1.5, 0},
		{40, 0.3, 29},
	} {
		if got := prefixLen(tc.n, tc.theta); got != tc.want {
			t.Errorf("prefixLen(%d, %g) = %d, want %d", tc.n, tc.theta, got, tc.want)
		}
	}
}

func TestBucketOfMonotone(t *testing.T) {
	vals := []float64{-1e300, -12345.6, -10, -0.1, 0, 0.1, 9.99, 10, 123456.7, 1e300}
	for i := 1; i < len(vals); i++ {
		if bucketOf(vals[i-1], 10) > bucketOf(vals[i], 10) {
			t.Errorf("bucketOf not monotone at %g vs %g", vals[i-1], vals[i])
		}
	}
	// Values within one window land in adjacent buckets.
	for _, d := range []float64{0, 1, 4.9, 9.9} {
		a, b := bucketOf(100, 10), bucketOf(100+d, 10)
		if b-a > 1 {
			t.Errorf("Δ=%g spans %d buckets", d, b-a)
		}
	}
}
