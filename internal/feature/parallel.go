package feature

import (
	"sync"

	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/store"
)

// Build constructs the space for the cross product of entities1 (from
// g1) and entities2 (from g2). Both graphs must share one dictionary.
//
// Construction shards entities1 across Options.Workers goroutines. Each
// worker fills shard-local sets and index maps against the shared
// read-only signature table; the shards are then merged and every index
// slice is sorted by the total (score, link) order, so the result is
// byte-identical to a serial build regardless of worker count or
// scheduling.
func Build(g1, g2 store.TripleStore, entities1, entities2 []rdf.ID, opts Options) *Space {
	opts.fill()
	sp := &Space{
		sets:       make(map[links.Link]Set),
		index:      make(map[Key][]scoredPair),
		TotalPairs: len(entities1) * len(entities2),
	}
	d := g1.Dict()

	// Pre-materialize entity attribute lists once.
	attrs2 := make([][]rdf.Attribute, len(entities2))
	for i, e2 := range entities2 {
		attrs2[i] = g2.Entity(e2)
	}

	sigs := opts.Sigs
	if sigs == nil && opts.Sim == nil {
		sigs = NewSigTable(d)
	}

	// Blocking needs the built-in similarity (the θ-unreachability
	// argument is about SpaceSim's structure) and a positive θ (θ≤0
	// keeps zero-score features, so no pair is prunable).
	var blk *blockIndex
	if opts.Blocking && opts.Sim == nil && opts.Theta > 0 {
		blk = newBlockIndex(sigs, opts.Theta, attrs2)
	}

	workers := opts.Workers
	if workers > len(entities1) {
		workers = len(entities1)
	}
	if workers < 1 {
		workers = 1
	}

	type shard struct {
		sets  map[links.Link]Set
		index map[Key][]scoredPair
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			res := shard{
				sets:  make(map[links.Link]Set),
				index: make(map[Key][]scoredPair),
			}

			// The default similarity reads the shared table; a custom
			// Sim gets a worker-local memoization cache (the function
			// itself must tolerate concurrent calls).
			var sim func(o1, o2 rdf.ID) float64
			if opts.Sim == nil {
				sim = sigs.sim
			} else {
				cache := make(map[[2]rdf.ID]float64)
				sim = func(o1, o2 rdf.ID) float64 {
					k := [2]rdf.ID{o1, o2}
					if v, ok := cache[k]; ok {
						return v
					}
					v := opts.Sim(d.Term(o1), d.Term(o2))
					cache[k] = v
					return v
				}
			}

			var probe *blockProbe
			if blk != nil {
				probe = blk.newProbe()
			}

			// Round-robin sharding keeps workers balanced when entity
			// cost varies systematically along entities1.
			for i := w; i < len(entities1); i += workers {
				e1 := entities1[i]
				a1 := g1.Entity(e1)
				if len(a1) == 0 {
					continue
				}
				if probe != nil {
					for _, i2 := range probe.candidates(a1) {
						buildPair(res.sets, res.index, e1, entities2[i2], a1, attrs2[i2], opts.Theta, sim)
					}
				} else {
					for i2, e2 := range entities2 {
						buildPair(res.sets, res.index, e1, e2, a1, attrs2[i2], opts.Theta, sim)
					}
				}
			}
			shards[w] = res
		}(w)
	}
	wg.Wait()

	// Merge. Shard set maps are disjoint (entities1 is partitioned), and
	// the per-key sort below is a total order, so concatenation order is
	// immaterial.
	for _, res := range shards {
		for l, set := range res.sets {
			sp.sets[l] = set
		}
		for k, ps := range res.index {
			sp.index[k] = append(sp.index[k], ps...)
		}
	}
	for k := range sp.index {
		sortPairs(sp.index[k])
	}
	return sp
}

// buildPair scores one (e1, e2) pair and records it if any feature
// survives θ-filtering.
func buildPair(sets map[links.Link]Set, index map[Key][]scoredPair, e1, e2 rdf.ID, a1, a2 []rdf.Attribute, theta float64, sim func(o1, o2 rdf.ID) float64) {
	if len(a2) == 0 {
		return
	}
	set := buildSet(a1, a2, theta, sim)
	if len(set) == 0 {
		return
	}
	l := links.Link{E1: e1, E2: e2}
	sets[l] = set
	for _, f := range set {
		index[f.Key] = append(index[f.Key], scoredPair{score: f.Score, link: l})
	}
}
