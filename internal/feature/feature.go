// Package feature builds and indexes the space of candidate links that
// ALEX explores (paper §4.1-4.2). A link between two entities is
// represented by a feature set: for each pair of predicates (one from
// each entity) the similarity score of their values. Scores below a
// threshold θ are discarded, and pairs whose feature sets become empty
// are dropped from the space entirely (§6.1, "filtering to reduce the
// search space").
//
// The space answers the exploration query at the heart of ALEX's action:
// "all links whose feature (p1, p2) has a score within [lo, hi]", served
// by a per-feature sorted index in O(log n + answers).
//
// Construction is parallel (Options.Workers) over a shared, read-only
// signature table (SigTable), with optional candidate blocking
// (Options.Blocking) that prunes entity pairs unable to reach θ on any
// feature. Both are transparent: the constructed space is identical to
// a serial, unblocked build. See DESIGN.md "Space construction".
package feature

import (
	"runtime"
	"sort"

	"alex/internal/links"
	"alex/internal/rdf"
)

// Key identifies a feature: a predicate of dataset 1 paired with a
// predicate of dataset 2.
type Key struct {
	P1, P2 rdf.ID
}

// Feature is one element of a state feature set.
type Feature struct {
	Key   Key
	Score float64
}

// Set is a link's state feature set, ordered by (P1, P2).
type Set []Feature

// Score returns the score of the feature with the given key, or -1 if
// the feature is not part of the set.
func (s Set) Score(k Key) float64 {
	for _, f := range s {
		if f.Key == k {
			return f.Score
		}
	}
	return -1
}

// Keys returns the feature keys of the set, which are the actions
// available at this state (§4.2).
func (s Set) Keys() []Key {
	out := make([]Key, len(s))
	for i, f := range s {
		out[i] = f.Key
	}
	return out
}

// DefaultTheta is the paper's default feature-filtering threshold
// (§6.1).
const DefaultTheta = 0.3

// Options configures space construction.
type Options struct {
	// Theta is the similarity threshold below which feature values are
	// discarded. The zero value is an explicit θ=0: every feature of
	// every pair is kept, including zero-score ones. A negative Theta
	// means "unset" and is replaced by DefaultTheta.
	Theta float64
	// Sim compares two attribute values. When nil, the precomputed
	// signature table (SigTable) implementation of similarity.SpaceSim
	// is used, which is substantially faster for large cross products.
	// A non-nil Sim must be safe for concurrent calls when Workers > 1;
	// results are cached per worker.
	Sim func(a, b rdf.Term) float64
	// Workers is the number of goroutines Build uses (0 or negative =
	// runtime.GOMAXPROCS(0)). The constructed space is byte-identical
	// for every worker count: shard results are merged with a total
	// (score, link) order, so scheduling cannot leak into the output.
	Workers int
	// Blocking enables candidate blocking: an inverted index over
	// dataset-2 attribute values (token/trigram hashes, numeric and
	// date buckets) restricts each dataset-1 entity to candidates that
	// could reach Theta on at least one feature. The constructed space
	// is provably identical to the unblocked one (see DESIGN.md for the
	// θ-unreachability argument); only build time changes. Blocking
	// requires the built-in similarity (Sim nil) and Theta > 0, and is
	// ignored otherwise.
	Blocking bool
	// Sigs optionally supplies a precomputed signature table covering
	// the shared dictionary, letting several Builds (e.g. one per
	// partition) reuse one table. When nil, Build computes its own.
	// Ignored when Sim is non-nil.
	Sigs *SigTable
}

func (o *Options) fill() {
	if o.Theta < 0 {
		o.Theta = DefaultTheta
	}
	if o.Workers < 1 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

type scoredPair struct {
	score float64
	link  links.Link
}

// sortPairs orders index entries by score with the link as tie-breaker.
// The comparison is a total order over the entries of one feature key (a
// link occurs at most once per key), so the result is independent of
// input order — map iteration and parallel merge order cannot leak into
// the index, and FindInRange answers are stable run to run.
func sortPairs(ps []scoredPair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].score != ps[j].score {
			return ps[i].score < ps[j].score
		}
		if ps[i].link.E1 != ps[j].link.E1 {
			return ps[i].link.E1 < ps[j].link.E1
		}
		return ps[i].link.E2 < ps[j].link.E2
	})
}

// Space is the (filtered) space of possible links between a set of
// dataset-1 entities and a set of dataset-2 entities.
type Space struct {
	sets  map[links.Link]Set
	index map[Key][]scoredPair // sorted ascending by (score, link)
	// TotalPairs is the unfiltered size |E1|×|E2| (Figure 5a).
	TotalPairs int
}

// buildSet computes the similarity matrix between the two attribute
// lists, discards entries below θ, and reduces to the state feature set
// by keeping the maximum per row if the first entity has more attributes
// than the second, otherwise the maximum per column (§4.1).
func buildSet(a1, a2 []rdf.Attribute, theta float64, sim func(o1, o2 rdf.ID) float64) Set {
	type cell struct {
		key   Key
		score float64
	}
	var cells []cell
	for _, x := range a1 {
		for _, y := range a2 {
			s := sim(x.Obj, y.Obj)
			if s < theta {
				continue
			}
			cells = append(cells, cell{key: Key{P1: x.Pred, P2: y.Pred}, score: s})
		}
	}
	if len(cells) == 0 {
		return nil
	}
	// Row = dataset-1 predicate, column = dataset-2 predicate.
	groupByRow := len(a1) > len(a2)
	best := make(map[rdf.ID]cell)
	for _, c := range cells {
		g := c.key.P1
		if !groupByRow {
			g = c.key.P2
		}
		if cur, ok := best[g]; !ok || c.score > cur.score {
			best[g] = c
		}
	}
	set := make(Set, 0, len(best))
	for _, c := range best {
		set = append(set, Feature{Key: c.key, Score: c.score})
	}
	sort.Slice(set, func(i, j int) bool {
		if set[i].Key.P1 != set[j].Key.P1 {
			return set[i].Key.P1 < set[j].Key.P1
		}
		return set[i].Key.P2 < set[j].Key.P2
	})
	return set
}

// FeatureSet returns the feature set of a link in the space (nil if the
// link was filtered out or never existed).
func (sp *Space) FeatureSet(l links.Link) Set { return sp.sets[l] }

// Contains reports whether the link survived filtering.
func (sp *Space) Contains(l links.Link) bool {
	_, ok := sp.sets[l]
	return ok
}

// Len returns the number of links in the filtered space (Figure 5a).
func (sp *Space) Len() int { return len(sp.sets) }

// Links returns all links in the space in unspecified order.
func (sp *Space) Links() []links.Link {
	out := make([]links.Link, 0, len(sp.sets))
	for l := range sp.sets {
		out = append(out, l)
	}
	return out
}

// FindInRange returns every link whose feature k has a score in
// [lo, hi]. This is the exploration primitive behind ALEX's actions
// (§4.2: links with similarity between sf−af and sf+af).
func (sp *Space) FindInRange(k Key, lo, hi float64) []links.Link {
	ps := sp.index[k]
	start := sort.Search(len(ps), func(i int) bool { return ps[i].score >= lo })
	var out []links.Link
	for i := start; i < len(ps) && ps[i].score <= hi; i++ {
		out = append(out, ps[i].link)
	}
	return out
}

// CountInRange returns the number of links FindInRange would return.
func (sp *Space) CountInRange(k Key, lo, hi float64) int {
	ps := sp.index[k]
	start := sort.Search(len(ps), func(i int) bool { return ps[i].score >= lo })
	end := sort.Search(len(ps), func(i int) bool { return ps[i].score > hi })
	if end < start {
		return 0
	}
	return end - start
}

// PartitionRoundRobin splits entities into n equal-size partitions in a
// round-robin fashion: the i-th entity goes to partition i mod n
// (§6.2, "equal-size partitioning").
func PartitionRoundRobin(entities []rdf.ID, n int) [][]rdf.ID {
	if n < 1 {
		n = 1
	}
	out := make([][]rdf.ID, n)
	for i, e := range entities {
		out[i%n] = append(out[i%n], e)
	}
	return out
}
