// Package feature builds and indexes the space of candidate links that
// ALEX explores (paper §4.1-4.2). A link between two entities is
// represented by a feature set: for each pair of predicates (one from
// each entity) the similarity score of their values. Scores below a
// threshold θ are discarded, and pairs whose feature sets become empty
// are dropped from the space entirely (§6.1, "filtering to reduce the
// search space").
//
// The space answers the exploration query at the heart of ALEX's action:
// "all links whose feature (p1, p2) has a score within [lo, hi]", served
// by a per-feature sorted index in O(log n + answers).
package feature

import (
	"sort"

	"alex/internal/links"
	"alex/internal/rdf"
)

// Key identifies a feature: a predicate of dataset 1 paired with a
// predicate of dataset 2.
type Key struct {
	P1, P2 rdf.ID
}

// Feature is one element of a state feature set.
type Feature struct {
	Key   Key
	Score float64
}

// Set is a link's state feature set, ordered by (P1, P2).
type Set []Feature

// Score returns the score of the feature with the given key, or -1 if
// the feature is not part of the set.
func (s Set) Score(k Key) float64 {
	for _, f := range s {
		if f.Key == k {
			return f.Score
		}
	}
	return -1
}

// Keys returns the feature keys of the set, which are the actions
// available at this state (§4.2).
func (s Set) Keys() []Key {
	out := make([]Key, len(s))
	for i, f := range s {
		out[i] = f.Key
	}
	return out
}

// Options configures space construction.
type Options struct {
	// Theta is the similarity threshold below which feature values are
	// discarded (paper default 0.3).
	Theta float64
	// Sim compares two attribute values. When nil, a precomputing
	// implementation of similarity.SpaceSim is used, which is
	// substantially faster for large cross products.
	Sim func(a, b rdf.Term) float64
}

func (o *Options) fill() {
	if o.Theta == 0 {
		o.Theta = 0.3
	}
}

type scoredPair struct {
	score float64
	link  links.Link
}

// Space is the (filtered) space of possible links between a set of
// dataset-1 entities and a set of dataset-2 entities.
type Space struct {
	sets  map[links.Link]Set
	index map[Key][]scoredPair // sorted ascending by score
	// TotalPairs is the unfiltered size |E1|×|E2| (Figure 5a).
	TotalPairs int
}

// Build constructs the space for the cross product of entities1 (from
// g1) and entities2 (from g2). Both graphs must share one dictionary.
func Build(g1, g2 *rdf.Graph, entities1, entities2 []rdf.ID, opts Options) *Space {
	opts.fill()
	sp := &Space{
		sets:       make(map[links.Link]Set),
		index:      make(map[Key][]scoredPair),
		TotalPairs: len(entities1) * len(entities2),
	}
	d := g1.Dict()

	// Pre-materialize entity attribute lists once.
	attrs2 := make([][]rdf.Attribute, len(entities2))
	for i, e2 := range entities2 {
		attrs2[i] = g2.Entity(e2)
	}

	var sim func(o1, o2 rdf.ID) float64
	if opts.Sim == nil {
		fs := newFastSim(d)
		sim = fs.sim
	} else {
		simCache := make(map[[2]rdf.ID]float64)
		sim = func(o1, o2 rdf.ID) float64 {
			k := [2]rdf.ID{o1, o2}
			if v, ok := simCache[k]; ok {
				return v
			}
			v := opts.Sim(d.Term(o1), d.Term(o2))
			simCache[k] = v
			return v
		}
	}

	for _, e1 := range entities1 {
		a1 := g1.Entity(e1)
		if len(a1) == 0 {
			continue
		}
		for i2, e2 := range entities2 {
			a2 := attrs2[i2]
			if len(a2) == 0 {
				continue
			}
			set := buildSet(a1, a2, opts.Theta, sim)
			if len(set) == 0 {
				continue
			}
			l := links.Link{E1: e1, E2: e2}
			sp.sets[l] = set
			for _, f := range set {
				sp.index[f.Key] = append(sp.index[f.Key], scoredPair{score: f.Score, link: l})
			}
		}
	}
	for k := range sp.index {
		ps := sp.index[k]
		sort.Slice(ps, func(i, j int) bool { return ps[i].score < ps[j].score })
	}
	return sp
}

// buildSet computes the similarity matrix between the two attribute
// lists, discards entries below θ, and reduces to the state feature set
// by keeping the maximum per row if the first entity has more attributes
// than the second, otherwise the maximum per column (§4.1).
func buildSet(a1, a2 []rdf.Attribute, theta float64, sim func(o1, o2 rdf.ID) float64) Set {
	type cell struct {
		key   Key
		score float64
	}
	var cells []cell
	for _, x := range a1 {
		for _, y := range a2 {
			s := sim(x.Obj, y.Obj)
			if s < theta {
				continue
			}
			cells = append(cells, cell{key: Key{P1: x.Pred, P2: y.Pred}, score: s})
		}
	}
	if len(cells) == 0 {
		return nil
	}
	// Row = dataset-1 predicate, column = dataset-2 predicate.
	groupByRow := len(a1) > len(a2)
	best := make(map[rdf.ID]cell)
	for _, c := range cells {
		g := c.key.P1
		if !groupByRow {
			g = c.key.P2
		}
		if cur, ok := best[g]; !ok || c.score > cur.score {
			best[g] = c
		}
	}
	set := make(Set, 0, len(best))
	for _, c := range best {
		set = append(set, Feature{Key: c.key, Score: c.score})
	}
	sort.Slice(set, func(i, j int) bool {
		if set[i].Key.P1 != set[j].Key.P1 {
			return set[i].Key.P1 < set[j].Key.P1
		}
		return set[i].Key.P2 < set[j].Key.P2
	})
	return set
}

// FeatureSet returns the feature set of a link in the space (nil if the
// link was filtered out or never existed).
func (sp *Space) FeatureSet(l links.Link) Set { return sp.sets[l] }

// Contains reports whether the link survived filtering.
func (sp *Space) Contains(l links.Link) bool {
	_, ok := sp.sets[l]
	return ok
}

// Len returns the number of links in the filtered space (Figure 5a).
func (sp *Space) Len() int { return len(sp.sets) }

// Links returns all links in the space in unspecified order.
func (sp *Space) Links() []links.Link {
	out := make([]links.Link, 0, len(sp.sets))
	for l := range sp.sets {
		out = append(out, l)
	}
	return out
}

// FindInRange returns every link whose feature k has a score in
// [lo, hi]. This is the exploration primitive behind ALEX's actions
// (§4.2: links with similarity between sf−af and sf+af).
func (sp *Space) FindInRange(k Key, lo, hi float64) []links.Link {
	ps := sp.index[k]
	start := sort.Search(len(ps), func(i int) bool { return ps[i].score >= lo })
	var out []links.Link
	for i := start; i < len(ps) && ps[i].score <= hi; i++ {
		out = append(out, ps[i].link)
	}
	return out
}

// CountInRange returns the number of links FindInRange would return.
func (sp *Space) CountInRange(k Key, lo, hi float64) int {
	ps := sp.index[k]
	start := sort.Search(len(ps), func(i int) bool { return ps[i].score >= lo })
	end := sort.Search(len(ps), func(i int) bool { return ps[i].score > hi })
	if end < start {
		return 0
	}
	return end - start
}

// PartitionRoundRobin splits entities into n equal-size partitions in a
// round-robin fashion: the i-th entity goes to partition i mod n
// (§6.2, "equal-size partitioning").
func PartitionRoundRobin(entities []rdf.ID, n int) [][]rdf.ID {
	if n < 1 {
		n = 1
	}
	out := make([][]rdf.ID, n)
	for i, e := range entities {
		out[i%n] = append(out[i%n], e)
	}
	return out
}
