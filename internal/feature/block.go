package feature

import (
	"math"
	"sort"

	"alex/internal/rdf"
)

// Candidate blocking (Options.Blocking): an inverted index from
// blocking keys of dataset-2 attribute values to the entities carrying
// them. A dataset-1 entity then only visits dataset-2 entities with
// which it shares at least one blocking key, instead of the full
// |E1|×|E2| cross product.
//
// Correctness rests on a θ-unreachability argument against the built-in
// similarity (SigTable.sim): for θ > 0 a pair can only enter the space
// if some attribute pair scores ≥ θ, and every way to score ≥ θ implies
// a shared blocking key:
//
//   - identical object IDs score 1 → identity key (one per ID);
//   - dates score ≥ θ only if |Δ| ≤ 365(1−θ) days → buckets of that
//     width differ by at most one, and the probe visits b−1, b, b+1;
//   - numbers score ≥ θ only if |Δ| ≤ 10(1−θ) → same construction;
//   - strings/IRIs score ≥ θ only if trigram Jaccard ≥ θ, token
//     Jaccard ≥ θ, or the normal forms are equal and non-empty (which
//     implies trigram Jaccard = 1). For Jaccard ≥ θ the prefix
//     filtering principle applies (Chaudhuri et al., PPJoin): the
//     overlap must be at least α = max(⌈θ|A|⌉, ⌈θ|B|⌉), and two sets
//     with overlap ≥ α must share an element within the first
//     |X|−α+1 ≤ |X|−⌈θ|X|⌉+1 elements of any shared total order. So
//     indexing and probing only the sorted hash prefix of length
//     |X|−⌈θ|X|⌉+1 never drops a qualifying pair, while keeping the
//     long tails of common values out of the posting lists.
//
// Key collisions (hash collisions, bucket aliasing after clamping) only
// ever admit extra candidates, which the ordinary θ-filter then scores
// and discards — they can never drop a pair. The blocked space is
// therefore identical to the unblocked one; the exhaustive equivalence
// test over every synth profile (parallel_test.go) checks exactly that.
const (
	blockKeyMask uint64 = 1<<60 - 1
	blockTagText uint64 = 1 << 60
	blockTagNum  uint64 = 2 << 60
	blockTagDate uint64 = 3 << 60
	blockTagID   uint64 = 4 << 60
)

// blockWidth returns the bucket width within which a proximity score
// over a window of size w can still reach θ: |Δ| ≤ w(1−θ). The floor
// keeps the width positive for θ ≥ 1 (only exact value matches qualify
// then, which land in the same bucket regardless of width).
func blockWidth(w, theta float64) float64 {
	f := 1 - theta
	if f < 0.01 {
		f = 0.01
	}
	return w * f
}

// bucketOf returns the blocking bucket of a numeric/date magnitude.
// Clamping keeps the float→int conversion defined; it is monotone, so
// "buckets differ by at most one" survives it.
func bucketOf(num, width float64) int64 {
	b := math.Floor(num / width)
	if b > 1e15 {
		b = 1e15
	}
	if b < -1e15 {
		b = -1e15
	}
	return int64(b)
}

func numKey(bucket int64) uint64  { return blockTagNum | (uint64(bucket) & blockKeyMask) }
func dateKey(bucket int64) uint64 { return blockTagDate | (uint64(bucket) & blockKeyMask) }

// prefixLen returns the length of the sorted-set prefix that must be
// indexed/probed for Jaccard ≥ theta: n − ⌈θn⌉ + 1, clamped to [0, n].
func prefixLen(n int, theta float64) int {
	if n == 0 {
		return 0
	}
	p := n - int(math.Ceil(theta*float64(n))) + 1
	if p < 0 {
		return 0
	}
	if p > n {
		return n
	}
	return p
}

// blockIndex is the read-only inverted index over dataset-2 attribute
// values, shared by all workers of one Build.
type blockIndex struct {
	sigs     *SigTable
	theta    float64
	numWidth float64
	dayWidth float64
	n        int
	post     map[uint64][]int32 // blocking key → ascending entities2 indices
}

func newBlockIndex(sigs *SigTable, theta float64, attrs2 [][]rdf.Attribute) *blockIndex {
	b := &blockIndex{
		sigs:     sigs,
		theta:    theta,
		numWidth: blockWidth(10, theta),
		dayWidth: blockWidth(365, theta),
		n:        len(attrs2),
		post:     make(map[uint64][]int32),
	}
	var keys []uint64
	for i2, attrs := range attrs2 {
		keys = keys[:0]
		for _, a := range attrs {
			keys = b.appendValueKeys(keys, a.Obj)
		}
		keys = dedupSortedUint64(keys)
		for _, k := range keys {
			b.post[k] = append(b.post[k], int32(i2))
		}
	}
	return b
}

// appendValueKeys emits the blocking keys under which one attribute
// value is indexed.
func (b *blockIndex) appendValueKeys(keys []uint64, o rdf.ID) []uint64 {
	keys = append(keys, blockTagID|(uint64(o)&blockKeyMask))
	s := b.sigs.sig(o)
	switch s.kind {
	case sigNumber:
		keys = append(keys, numKey(bucketOf(s.num, b.numWidth)))
	case sigDate:
		keys = append(keys, dateKey(bucketOf(s.num, b.dayWidth)))
	default: // strings and IRIs
		for _, h := range s.tri[:prefixLen(len(s.tri), b.theta)] {
			keys = append(keys, blockTagText|uint64(h))
		}
		for _, h := range s.tok[:prefixLen(len(s.tok), b.theta)] {
			keys = append(keys, blockTagText|uint64(h))
		}
	}
	return keys
}

func dedupSortedUint64(xs []uint64) []uint64 {
	if len(xs) == 0 {
		return xs
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// blockProbe is one worker's scratch space for candidate lookups; the
// underlying index is shared and read-only.
type blockProbe struct {
	idx  *blockIndex
	seen []bool
	out  []int32
}

func (b *blockIndex) newProbe() *blockProbe {
	return &blockProbe{idx: b, seen: make([]bool, b.n)}
}

// candidates returns the ascending entities2 indices that share at
// least one blocking key with the attribute values of a1.
func (p *blockProbe) candidates(a1 []rdf.Attribute) []int32 {
	p.out = p.out[:0]
	add := func(k uint64) {
		for _, i2 := range p.idx.post[k] {
			if !p.seen[i2] {
				p.seen[i2] = true
				p.out = append(p.out, i2)
			}
		}
	}
	for _, a := range a1 {
		o := a.Obj
		add(blockTagID | (uint64(o) & blockKeyMask))
		s := p.idx.sigs.sig(o)
		switch s.kind {
		case sigNumber:
			bk := bucketOf(s.num, p.idx.numWidth)
			add(numKey(bk - 1))
			add(numKey(bk))
			add(numKey(bk + 1))
		case sigDate:
			bk := bucketOf(s.num, p.idx.dayWidth)
			add(dateKey(bk - 1))
			add(dateKey(bk))
			add(dateKey(bk + 1))
		default:
			for _, h := range s.tri[:prefixLen(len(s.tri), p.idx.theta)] {
				add(blockTagText | uint64(h))
			}
			for _, h := range s.tok[:prefixLen(len(s.tok), p.idx.theta)] {
				add(blockTagText | uint64(h))
			}
		}
	}
	sort.Slice(p.out, func(i, j int) bool { return p.out[i] < p.out[j] })
	for _, i2 := range p.out {
		p.seen[i2] = false
	}
	return p.out
}
