package feature

import (
	"testing"

	"alex/internal/synth"
)

// BenchmarkSpaceBuild measures feature-space construction on the
// largest synth profile (dbpedia-opencyc). Run with -cpu=1,2,4,8 for
// scaling rows — Options.Workers follows GOMAXPROCS, so each -cpu value
// is one point on the speedup curve (make bench-space writes the rows
// to BENCH_space.json). The signature table is precomputed outside the
// timed loop, as core.New shares one table across all partition builds;
// the benchmark times the cross-product scoring itself.
func BenchmarkSpaceBuild(b *testing.B) {
	scale := 0.25
	if testing.Short() {
		scale = 0.05
	}
	prof, _ := synth.ProfileByName("dbpedia-opencyc")
	ds := synth.Generate(prof.Scale(scale))
	sigs := NewSigTable(ds.Dict)
	for _, bc := range []struct {
		name    string
		blocked bool
	}{
		{"unblocked", false},
		{"blocked", true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			opts := Options{Theta: DefaultTheta, Sigs: sigs, Blocking: bc.blocked}
			b.ReportAllocs()
			var total int
			for i := 0; i < b.N; i++ {
				sp := Build(ds.G1, ds.G2, ds.Entities1, ds.Entities2, opts)
				total = sp.TotalPairs
			}
			b.ReportMetric(float64(total)*float64(b.N)/b.Elapsed().Seconds(), "pairs/s")
		})
	}
}
