package faultfs

import (
	"errors"
	"fmt"
	"testing"

	"alex/internal/wal"
)

func openLog(t *testing.T, dir string, fs wal.FS) *wal.Log {
	t.Helper()
	l, err := wal.Open(dir, fs)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	return l
}

func countReplay(t *testing.T, dir string) int {
	t.Helper()
	l := openLog(t, dir, nil)
	n, err := l.Replay(0, func(wal.Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestFsyncFailureNotAcked: an append whose fsync fails must return an
// error (the server then refuses the 202 ack) and must not surface as a
// record after recovery.
func TestFsyncFailureNotAcked(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)
	l := openLog(t, dir, fs)
	if _, err := l.Append([]byte("acked-1")); err != nil {
		t.Fatal(err)
	}
	fs.FailSyncAt(2)
	if _, err := l.Append([]byte("lost")); !errors.Is(err, ErrInjected) {
		t.Fatalf("append with failing fsync: err = %v, want ErrInjected", err)
	}
	// The log repaired itself: the next append works and recovery sees
	// exactly the acknowledged records.
	if _, err := l.Append([]byte("acked-2")); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
	l.Close()
	if n := countReplay(t, dir); n != 2 {
		t.Fatalf("recovered %d records, want the 2 acked ones", n)
	}
}

// TestShortWriteRepaired: a torn write (power loss mid-record) must not
// corrupt earlier records, and the log keeps working afterwards.
func TestShortWriteRepaired(t *testing.T) {
	dir := t.TempDir()
	fs := New(nil)
	l := openLog(t, dir, fs)
	if _, err := l.Append([]byte("before")); err != nil {
		t.Fatal(err)
	}
	fs.ShortWriteAt(2)
	if _, err := l.Append([]byte("torn")); err == nil {
		t.Fatal("short write reported success")
	}
	if _, err := l.Append([]byte("after")); err != nil {
		t.Fatalf("append after torn write: %v", err)
	}
	l.Close()
	if n := countReplay(t, dir); n != 2 {
		t.Fatalf("recovered %d records, want 2 (torn one dropped)", n)
	}
}

// TestCrashAtEveryWrite simulates power loss at every successive write
// boundary: whatever survives on disk must recover to a clean prefix of
// the acknowledged records.
func TestCrashAtEveryWrite(t *testing.T) {
	for crashAt := 0; crashAt <= 6; crashAt++ {
		dir := t.TempDir()
		fs := New(nil)
		l, err := wal.Open(dir, fs)
		if err != nil {
			t.Fatal(err)
		}
		fs.CrashAfterWrites(crashAt)
		acked := 0
		for i := 1; i <= 5; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
				break
			}
			acked++
		}
		l.Close()
		fs.Revive()
		n := countReplay(t, dir)
		if n < acked {
			t.Fatalf("crash@%d: recovered %d < %d acked records", crashAt, n, acked)
		}
		if n > acked+1 {
			// At most one in-flight (unacked) record can survive whole.
			t.Fatalf("crash@%d: recovered %d records with only %d acked", crashAt, n, acked)
		}
	}
}

// TestCrashDuringCheckpoint: dying anywhere inside the checkpoint
// sequence must leave either the old state or the new one recoverable,
// with the journal records still covering the difference.
func TestCrashDuringCheckpoint(t *testing.T) {
	for extra := 0; extra <= 3; extra++ {
		dir := t.TempDir()
		fs := New(nil)
		l, err := wal.Open(dir, fs)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= 3; i++ {
			if _, err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		fs.CrashAfterWrites(extra)         // checkpoint write #1 is the state blob
		l.Checkpoint(3, []byte("state@3")) //nolint:errcheck // crash expected
		l.Close()
		fs.Revive()

		l2 := openLog(t, dir, nil)
		seq, _, ok, err := l2.LatestCheckpoint()
		if err != nil {
			t.Fatal(err)
		}
		after := uint64(0)
		if ok {
			after = seq
		}
		replayed, err := l2.Replay(after, func(wal.Record) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if int(after)+replayed < 3 {
			t.Fatalf("crash extra=%d: checkpoint@%d + %d replayed < 3 acked records", extra, after, replayed)
		}
	}
}
