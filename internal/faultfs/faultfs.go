// Package faultfs wraps a wal.FS with injectable storage faults, the
// file-system half of the chaos harness: fsync failures, short (torn)
// writes, and crash points after which every operation fails as if the
// process had been killed. Crash-recovery tests use it to cut power at
// arbitrary byte positions and then assert that recovery preserves
// every acknowledged record.
package faultfs

import (
	"errors"
	"io"
	"sync"

	"alex/internal/wal"
)

// ErrInjected is the error returned by operations failed on purpose.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is returned by every operation after the crash point: the
// simulated process is dead and can do no further I/O.
var ErrCrashed = errors.New("faultfs: crashed")

// FS wraps an inner wal.FS and injects faults per the configured
// counters. The zero value is not usable; call New. All methods are
// safe for concurrent use.
type FS struct {
	inner wal.FS

	mu            sync.Mutex
	writes        int // completed Write calls across all files
	syncs         int // completed Sync calls across all files
	closes        int // completed Close calls across all files
	renames       int // completed Rename calls
	failSyncAt    int // fail the nth sync (1-based); 0 = never
	failSyncAll   bool
	failCloseAt   int // fail the nth close (1-based); 0 = never
	failCloseAll  bool
	failRenameAt  int // fail the nth rename (1-based); 0 = never
	failRenameAll bool
	failLinks     bool
	failMmaps     bool
	shortAt       int // tear the nth write in half (1-based); 0 = never
	crashAfter    int // crash once this many writes have completed; -1 = never
	crashed       bool
}

// New wraps inner (nil for the real OS).
func New(inner wal.FS) *FS {
	if inner == nil {
		inner = wal.OS{}
	}
	return &FS{inner: inner, crashAfter: -1}
}

// FailSyncAt makes the nth Sync (1-based, counted across all files)
// return ErrInjected. Later syncs succeed.
func (f *FS) FailSyncAt(n int) { f.mu.Lock(); f.failSyncAt = n; f.mu.Unlock() }

// FailAllSyncs makes every subsequent Sync return ErrInjected,
// simulating a disk that accepts writes but cannot persist them.
func (f *FS) FailAllSyncs(fail bool) { f.mu.Lock(); f.failSyncAll = fail; f.mu.Unlock() }

// FailCloses makes every subsequent file Close return ErrInjected after
// releasing the handle, the shape of a flush-on-close failure (full
// disk, NFS). Revive clears it.
func (f *FS) FailCloses(fail bool) { f.mu.Lock(); f.failCloseAll = fail; f.mu.Unlock() }

// FailCloseAt makes the nth file Close (1-based, counted across all
// files) return ErrInjected after releasing the handle. Later closes
// succeed.
func (f *FS) FailCloseAt(n int) { f.mu.Lock(); f.failCloseAt = n; f.mu.Unlock() }

// ShortWriteAt makes the nth Write (1-based) persist only the first
// half of its buffer and return ErrInjected: a torn record.
func (f *FS) ShortWriteAt(n int) { f.mu.Lock(); f.shortAt = n; f.mu.Unlock() }

// FailRenameAt makes the nth Rename (1-based) return ErrInjected
// without renaming: the atomic-commit step of a segment or manifest
// write fails. Later renames succeed.
func (f *FS) FailRenameAt(n int) { f.mu.Lock(); f.failRenameAt = n; f.mu.Unlock() }

// FailRenames makes every subsequent Rename return ErrInjected.
// Revive clears it.
func (f *FS) FailRenames(fail bool) { f.mu.Lock(); f.failRenameAll = fail; f.mu.Unlock() }

// FailLinks makes every subsequent Link return ErrInjected, forcing
// the store's hardlink checkpoints onto the copy fallback. Revive
// clears it.
func (f *FS) FailLinks(fail bool) { f.mu.Lock(); f.failLinks = fail; f.mu.Unlock() }

// FailMmaps makes every subsequent segment mmap fail with ErrInjected
// (surfaced through the MmapFault hook the store probes before
// mapping). Revive clears it.
func (f *FS) FailMmaps(fail bool) { f.mu.Lock(); f.failMmaps = fail; f.mu.Unlock() }

// CrashAfterWrites kills the simulated process once n more writes have
// completed: the nth write still succeeds, then every subsequent
// operation on the FS and its files returns ErrCrashed. n = 0 crashes
// immediately.
func (f *FS) CrashAfterWrites(n int) {
	f.mu.Lock()
	f.crashAfter = f.writes + n
	f.crashed = f.writes >= f.crashAfter
	f.mu.Unlock()
}

// Revive clears the crash state (the "process" restarts over the same
// disk). Injected sync/write faults are cleared too.
func (f *FS) Revive() {
	f.mu.Lock()
	f.crashed = false
	f.crashAfter = -1
	f.failSyncAt = 0
	f.failSyncAll = false
	f.failCloseAt = 0
	f.failCloseAll = false
	f.failRenameAt = 0
	f.failRenameAll = false
	f.failLinks = false
	f.failMmaps = false
	f.shortAt = 0
	f.mu.Unlock()
}

// Writes returns the number of completed file writes, the coordinate
// system of CrashAfterWrites and ShortWriteAt.
func (f *FS) Writes() int { f.mu.Lock(); defer f.mu.Unlock(); return f.writes }

func (f *FS) dead() bool { f.mu.Lock(); defer f.mu.Unlock(); return f.crashed }

func (f *FS) MkdirAll(dir string) error {
	if f.dead() {
		return ErrCrashed
	}
	return f.inner.MkdirAll(dir)
}

func (f *FS) OpenAppend(name string) (wal.File, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) Create(name string) (wal.File, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, inner: inner}, nil
}

func (f *FS) Open(name string) (io.ReadCloser, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.inner.Open(name)
}

func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.renames++
	fail := f.failRenameAll || (f.failRenameAt > 0 && f.renames == f.failRenameAt)
	f.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return f.inner.Rename(oldname, newname)
}

// Link hardlinks through to the inner FS (the real OS unless the inner
// FS provides its own), honoring crash state and the FailLinks fault.
// The store falls back to copying when Link errors, so an injected
// failure here exercises the copy path, not data loss.
func (f *FS) Link(oldname, newname string) error {
	f.mu.Lock()
	fail := f.failLinks
	dead := f.crashed
	f.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	if fail {
		return ErrInjected
	}
	if l, ok := f.inner.(interface {
		Link(oldname, newname string) error
	}); ok {
		return l.Link(oldname, newname)
	}
	return errors.New("faultfs: inner FS does not support Link")
}

// MmapFault is the store's pre-mmap hook: it vetoes the mapping when a
// crash or mmap fault is injected. A crashed process cannot map files;
// an injected mmap failure drives the store onto its heap-read
// fallback.
func (f *FS) MmapFault(path string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	if f.failMmaps {
		return ErrInjected
	}
	return nil
}

func (f *FS) Remove(name string) error {
	if f.dead() {
		return ErrCrashed
	}
	return f.inner.Remove(name)
}

func (f *FS) Truncate(name string, size int64) error {
	if f.dead() {
		return ErrCrashed
	}
	return f.inner.Truncate(name, size)
}

func (f *FS) ReadDir(dir string) ([]string, error) {
	if f.dead() {
		return nil, ErrCrashed
	}
	return f.inner.ReadDir(dir)
}

func (f *FS) SyncDir(dir string) error {
	if f.dead() {
		return ErrCrashed
	}
	return f.inner.SyncDir(dir)
}

// file wraps a wal.File, consulting the FS fault counters on every
// write and sync.
type file struct {
	fs    *FS
	inner wal.File
}

func (w *file) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	if w.fs.crashed {
		w.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	w.fs.writes++
	n := w.fs.writes
	short := w.fs.shortAt == n
	crashNow := w.fs.crashAfter >= 0 && w.fs.writes >= w.fs.crashAfter
	if crashNow {
		w.fs.crashed = true
	}
	w.fs.mu.Unlock()
	if short {
		half := len(p) / 2
		w.inner.Write(p[:half]) //nolint:errcheck // the injected error wins
		return half, ErrInjected
	}
	return w.inner.Write(p)
}

func (w *file) Sync() error {
	w.fs.mu.Lock()
	if w.fs.crashed {
		w.fs.mu.Unlock()
		return ErrCrashed
	}
	w.fs.syncs++
	fail := w.fs.failSyncAll || (w.fs.failSyncAt > 0 && w.fs.syncs == w.fs.failSyncAt)
	w.fs.mu.Unlock()
	if fail {
		return ErrInjected
	}
	return w.inner.Sync()
}

func (w *file) Close() error {
	// Close works even when crashed: the real kernel closes descriptors
	// of dead processes too, and recovery code needs to release handles.
	// An injected close failure still releases the inner handle — the
	// kernel frees the descriptor even when close(2) reports an error.
	w.fs.mu.Lock()
	w.fs.closes++
	fail := w.fs.failCloseAll || (w.fs.failCloseAt > 0 && w.fs.closes == w.fs.failCloseAt)
	w.fs.mu.Unlock()
	err := w.inner.Close()
	if fail {
		return ErrInjected
	}
	return err
}
