package similarity

import (
	"testing"
	"time"

	"alex/internal/rdf"
)

func TestSpaceSimIdentity(t *testing.T) {
	if got := SpaceSim(rdf.Literal("abc"), rdf.Literal("abc")); got != 1 {
		t.Fatalf("identity = %f", got)
	}
	if got := SpaceSim(rdf.IRI("http://a/X"), rdf.IRI("http://a/X")); got != 1 {
		t.Fatalf("IRI identity = %f", got)
	}
}

func TestSpaceSimUnrelatedStringsNearZero(t *testing.T) {
	pairs := [][2]string{
		{"Quentin Harwood", "Bellatrix Omondi"},
		{"mitochondrial enzyme", "downtown traffic report"},
		{"zzzz", "aaaa"},
	}
	for _, p := range pairs {
		if got := SpaceSim(rdf.Literal(p[0]), rdf.Literal(p[1])); got >= 0.3 {
			t.Errorf("SpaceSim(%q,%q) = %f, want < 0.3", p[0], p[1], got)
		}
	}
}

func TestSpaceSimVariantsAboveTheta(t *testing.T) {
	pairs := [][2]string{
		{"LeBron James", "James, LeBron"},
		{"LeBron James", "LeBron James"},
		{"International Business Machines", "International Business Machine"},
	}
	for _, p := range pairs {
		if got := SpaceSim(rdf.Literal(p[0]), rdf.Literal(p[1])); got < 0.4 {
			t.Errorf("SpaceSim(%q,%q) = %f, want ≥ 0.4", p[0], p[1], got)
		}
	}
}

func TestSpaceSimDates(t *testing.T) {
	a := rdf.TypedLiteral("1984-12-30", rdf.XSDDate)
	day := rdf.TypedLiteral("1984-12-31", rdf.XSDDate)
	year := rdf.TypedLiteral("1990-12-30", rdf.XSDDate)
	if got := SpaceSim(a, day); got < 0.99 {
		t.Errorf("one day apart = %f", got)
	}
	if got := SpaceSim(a, year); got != 0 {
		t.Errorf("six years apart = %f, want 0", got)
	}
}

func TestSpaceSimNumbers(t *testing.T) {
	if got := SpaceSim(rdf.Literal("1984"), rdf.Literal("1985")); got != 0.9 {
		t.Errorf("adjacent years = %f, want 0.9", got)
	}
	if got := SpaceSim(rdf.Literal("1984"), rdf.Literal("2020")); got != 0 {
		t.Errorf("far years = %f, want 0", got)
	}
}

func TestSpaceSimKindMismatch(t *testing.T) {
	if got := SpaceSim(rdf.Literal("1984-12-30"), rdf.Literal("hello there world")); got != 0 {
		t.Errorf("date vs string = %f, want 0", got)
	}
	if got := SpaceSim(rdf.IRI("http://a"), rdf.Literal("a")); got != 0 {
		t.Errorf("IRI vs literal = %f, want 0", got)
	}
}

func TestDateWindow(t *testing.T) {
	base := time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC)
	if got := DateWindow(base, base, time.Hour); got != 1 {
		t.Fatalf("same = %f", got)
	}
	if got := DateWindow(base, base.Add(30*time.Minute), time.Hour); got != 0.5 {
		t.Fatalf("half window = %f", got)
	}
	if got := DateWindow(base, base.Add(2*time.Hour), time.Hour); got != 0 {
		t.Fatalf("outside window = %f", got)
	}
}

func TestNumericWindow(t *testing.T) {
	if got := NumericWindow(5, 5, 10); got != 1 {
		t.Fatalf("same = %f", got)
	}
	if got := NumericWindow(0, 5, 10); got != 0.5 {
		t.Fatalf("half = %f", got)
	}
	if got := NumericWindow(0, 50, 10); got != 0 {
		t.Fatalf("outside = %f", got)
	}
	if got := NumericWindow(1, 2, 0); got != 0 {
		t.Fatalf("zero window = %f", got)
	}
}
