// Package similarity implements the generic, type-aware value similarity
// function used by ALEX when building feature sets (paper §4.1: "ALEX uses
// a generic similarity function that depends on the type of the attributes
// to be compared (string, integer, float, date, etc.)").
//
// All functions return scores in [0, 1], with 1 meaning identical.
package similarity

import (
	"math"
	"strconv"
	"strings"
	"time"
	"unicode"

	"alex/internal/rdf"
)

// ValueKind is the inferred type of a literal value.
type ValueKind uint8

// The value kinds recognized by type inference.
const (
	KindString ValueKind = iota
	KindInteger
	KindFloat
	KindDate
	KindBool
	KindIRI
)

// InferKind determines the value kind of a term, preferring the declared
// XSD datatype and falling back to lexical sniffing for plain literals.
func InferKind(t rdf.Term) ValueKind {
	if t.IsIRI() || t.IsBlank() {
		return KindIRI
	}
	switch t.EffectiveDatatype() {
	case rdf.XSDInteger:
		return KindInteger
	case rdf.XSDDecimal, rdf.XSDDouble:
		return KindFloat
	case rdf.XSDDate, rdf.XSDDateTime:
		return KindDate
	case rdf.XSDBoolean:
		return KindBool
	}
	lex := t.Value
	if _, err := strconv.ParseInt(lex, 10, 64); err == nil {
		return KindInteger
	}
	if _, err := strconv.ParseFloat(lex, 64); err == nil {
		return KindFloat
	}
	if _, ok := parseDate(lex); ok {
		return KindDate
	}
	return KindString
}

// Compare returns the similarity of two terms in [0, 1], dispatching on
// their inferred value kinds. Terms of incompatible kinds (for example a
// date and a float) score 0 unless both parse as numbers.
func Compare(a, b rdf.Term) float64 {
	ka, kb := InferKind(a), InferKind(b)
	if ka == KindIRI || kb == KindIRI {
		if ka == kb {
			return iriSimilarity(a, b)
		}
		return 0
	}
	switch {
	case ka == kb:
		switch ka {
		case KindInteger, KindFloat:
			return Numeric(mustFloat(a.Value), mustFloat(b.Value))
		case KindDate:
			da, _ := parseDate(a.Value)
			db, _ := parseDate(b.Value)
			return Date(da, db)
		case KindBool:
			if strings.EqualFold(a.Value, b.Value) {
				return 1
			}
			return 0
		default:
			return String(a.Value, b.Value)
		}
	case numericKind(ka) && numericKind(kb):
		return Numeric(mustFloat(a.Value), mustFloat(b.Value))
	default:
		return 0
	}
}

func numericKind(k ValueKind) bool { return k == KindInteger || k == KindFloat }

func mustFloat(s string) float64 {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return math.NaN()
	}
	return v
}

func iriSimilarity(a, b rdf.Term) float64 {
	if a == b {
		return 1
	}
	// Compare local names: two IRIs from different namespaces can still
	// denote similar things (e.g. .../LeBron_James vs .../lebron-james).
	return String(a.LocalName(), b.LocalName())
}

var dateLayouts = []string{"2006-01-02", "2006-01-02T15:04:05", "2006-01-02T15:04:05Z07:00", "2006"}

func parseDate(s string) (time.Time, bool) {
	for _, layout := range dateLayouts {
		if t, err := time.Parse(layout, s); err == nil {
			return t, true
		}
	}
	return time.Time{}, false
}

// String returns a composite string similarity: the maximum of
// Jaro-Winkler and token-set Jaccard over normalized input. Combining an
// edit-based and a token-based measure handles both typos and word
// reordering ("James, LeBron" vs "LeBron James").
func String(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == nb {
		if na == "" {
			return 0
		}
		return 1
	}
	jw := JaroWinkler(na, nb)
	tj := TokenJaccard(na, nb)
	if tj > jw {
		return tj
	}
	return jw
}

// Normalize lowercases, collapses whitespace and strips punctuation so
// that formatting variants compare equal.
func Normalize(s string) string {
	var b strings.Builder
	lastSpace := true
	for _, r := range s {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
			lastSpace = false
		case !lastSpace:
			b.WriteByte(' ')
			lastSpace = true
		}
	}
	return strings.TrimSpace(b.String())
}

// Levenshtein returns the edit distance between a and b.
func Levenshtein(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(cur[j-1]+1, prev[j]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// LevenshteinSimilarity returns 1 − dist/maxLen in [0, 1].
func LevenshteinSimilarity(a, b string) float64 {
	la, lb := len([]rune(a)), len([]rune(b))
	if la == 0 && lb == 0 {
		return 1
	}
	m := la
	if lb > m {
		m = lb
	}
	return 1 - float64(Levenshtein(a, b))/float64(m)
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	la, lb := len(ra), len(rb)
	if la == 0 && lb == 0 {
		return 1
	}
	if la == 0 || lb == 0 {
		return 0
	}
	window := la
	if lb > window {
		window = lb
	}
	window = window/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, la)
	matchB := make([]bool, lb)
	matches := 0
	for i := 0; i < la; i++ {
		lo := i - window
		if lo < 0 {
			lo = 0
		}
		hi := i + window + 1
		if hi > lb {
			hi = lb
		}
		for j := lo; j < hi; j++ {
			if matchB[j] || ra[i] != rb[j] {
				continue
			}
			matchA[i] = true
			matchB[j] = true
			matches++
			break
		}
	}
	if matches == 0 {
		return 0
	}
	transpositions := 0
	j := 0
	for i := 0; i < la; i++ {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	return (m/float64(la) + m/float64(lb) + (m-float64(transpositions)/2)/m) / 3
}

// JaroWinkler returns the Jaro-Winkler similarity with the standard
// prefix scale 0.1 and maximum prefix length 4.
func JaroWinkler(a, b string) float64 {
	j := Jaro(a, b)
	prefix := 0
	ra, rb := []rune(a), []rune(b)
	for prefix < len(ra) && prefix < len(rb) && prefix < 4 && ra[prefix] == rb[prefix] {
		prefix++
	}
	return j + float64(prefix)*0.1*(1-j)
}

// TokenJaccard returns the Jaccard coefficient of the whitespace-token
// sets of a and b.
func TokenJaccard(a, b string) float64 {
	ta := strings.Fields(a)
	tb := strings.Fields(b)
	if len(ta) == 0 && len(tb) == 0 {
		return 1
	}
	if len(ta) == 0 || len(tb) == 0 {
		return 0
	}
	set := make(map[string]bool, len(ta))
	for _, tok := range ta {
		set[tok] = true
	}
	inter := 0
	seen := make(map[string]bool, len(tb))
	for _, tok := range tb {
		if seen[tok] {
			continue
		}
		seen[tok] = true
		if set[tok] {
			inter++
		}
	}
	union := len(set) + len(seen) - inter
	return float64(inter) / float64(union)
}

// TrigramJaccard returns the Jaccard coefficient of the character
// 3-gram sets of a and b (padded), a robust fuzzy measure for short
// strings.
func TrigramJaccard(a, b string) float64 {
	ga := trigrams(a)
	gb := trigrams(b)
	if len(ga) == 0 && len(gb) == 0 {
		return 1
	}
	if len(ga) == 0 || len(gb) == 0 {
		return 0
	}
	inter := 0
	for g := range gb {
		if ga[g] {
			inter++
		}
	}
	union := len(ga) + len(gb) - inter
	return float64(inter) / float64(union)
}

func trigrams(s string) map[string]bool {
	if s == "" {
		return nil
	}
	padded := "  " + s + " "
	r := []rune(padded)
	out := make(map[string]bool, len(r))
	for i := 0; i+3 <= len(r); i++ {
		out[string(r[i:i+3])] = true
	}
	return out
}

// Numeric returns a proximity score for two numbers: 1 for equal values,
// decaying with the relative difference.
func Numeric(a, b float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return 0
	}
	if a == b {
		return 1
	}
	denom := math.Max(math.Abs(a), math.Abs(b))
	if denom == 0 {
		return 1
	}
	rel := math.Abs(a-b) / denom
	if rel >= 1 {
		return 0
	}
	return 1 - rel
}

// Date returns a proximity score for two dates: 1 for the same day,
// decaying linearly to 0 over a ten-year gap.
func Date(a, b time.Time) float64 {
	const window = 10 * 365.25 * 24 * time.Hour
	d := a.Sub(b)
	if d < 0 {
		d = -d
	}
	if d >= window {
		return 0
	}
	return 1 - float64(d)/float64(window)
}
