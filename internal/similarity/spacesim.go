package similarity

import (
	"math"
	"time"

	"alex/internal/rdf"
)

// SpaceSim is the similarity function used to build ALEX's feature
// spaces. Compared to Compare it is tuned for *discrimination*: scores
// of unrelated values concentrate near 0 so that θ-filtering (paper
// §6.1) removes most of the cross product, while perturbed variants of
// the same value land on a dense continuum below 1.0 that exploration
// can walk.
//
//   - identical terms score 1;
//   - dates use proximity with a 1-year window;
//   - numbers use absolute-difference proximity with a window of 10;
//   - strings use max(trigram Jaccard, token Jaccard) over normalized text;
//   - IRIs compare by local name with the string rule.
func SpaceSim(a, b rdf.Term) float64 {
	if a == b {
		return 1
	}
	ka, kb := InferKind(a), InferKind(b)
	if ka == KindIRI || kb == KindIRI {
		if ka != kb {
			return 0
		}
		return discriminativeString(a.LocalName(), b.LocalName())
	}
	if ka == KindDate && kb == KindDate {
		da, _ := parseDate(a.Value)
		db, _ := parseDate(b.Value)
		return DateWindow(da, db, 365*24*time.Hour)
	}
	if numericKind(ka) && numericKind(kb) {
		return NumericWindow(mustFloat(a.Value), mustFloat(b.Value), 10)
	}
	if ka != kb {
		return 0
	}
	return discriminativeString(a.Value, b.Value)
}

func discriminativeString(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == nb {
		if na == "" {
			return 0
		}
		return 1
	}
	tg := TrigramJaccard(na, nb)
	tj := TokenJaccard(na, nb)
	if tj > tg {
		return tj
	}
	return tg
}

// DateWindow returns 1 − |a−b|/window clipped to [0, 1].
func DateWindow(a, b time.Time, window time.Duration) float64 {
	d := a.Sub(b)
	if d < 0 {
		d = -d
	}
	if d >= window {
		return 0
	}
	return 1 - float64(d)/float64(window)
}

// NumericWindow returns 1 − |a−b|/window clipped to [0, 1].
func NumericWindow(a, b, window float64) float64 {
	if math.IsNaN(a) || math.IsNaN(b) || window <= 0 {
		return 0
	}
	d := math.Abs(a - b)
	if d >= window {
		return 0
	}
	return 1 - d/window
}
