package similarity

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"alex/internal/rdf"
)

func almost(got, want, eps float64) bool { return math.Abs(got-want) <= eps }

func TestInferKind(t *testing.T) {
	cases := []struct {
		term rdf.Term
		want ValueKind
	}{
		{rdf.IRI("http://a"), KindIRI},
		{rdf.Blank("b"), KindIRI},
		{rdf.TypedLiteral("5", rdf.XSDInteger), KindInteger},
		{rdf.TypedLiteral("5.5", rdf.XSDDouble), KindFloat},
		{rdf.TypedLiteral("2020-01-01", rdf.XSDDate), KindDate},
		{rdf.TypedLiteral("true", rdf.XSDBoolean), KindBool},
		{rdf.Literal("42"), KindInteger},
		{rdf.Literal("3.14"), KindFloat},
		{rdf.Literal("1984-12-30"), KindDate},
		{rdf.Literal("LeBron James"), KindString},
	}
	for _, c := range cases {
		if got := InferKind(c.term); got != c.want {
			t.Errorf("InferKind(%v) = %d, want %d", c.term, got, c.want)
		}
	}
}

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestJaroWinklerKnownValues(t *testing.T) {
	if got := JaroWinkler("martha", "marhta"); !almost(got, 0.9611, 0.001) {
		t.Errorf("JaroWinkler(martha,marhta) = %f, want ~0.961", got)
	}
	if got := JaroWinkler("dwayne", "duane"); !almost(got, 0.84, 0.001) {
		t.Errorf("JaroWinkler(dwayne,duane) = %f, want ~0.84", got)
	}
	if got := Jaro("abc", "abc"); got != 1 {
		t.Errorf("Jaro identity = %f", got)
	}
	if got := Jaro("abc", "xyz"); got != 0 {
		t.Errorf("Jaro disjoint = %f, want 0", got)
	}
}

func TestTokenJaccard(t *testing.T) {
	if got := TokenJaccard("lebron james", "james lebron"); got != 1 {
		t.Errorf("token reorder = %f, want 1", got)
	}
	if got := TokenJaccard("a b", "b c"); !almost(got, 1.0/3, 1e-9) {
		t.Errorf("jaccard = %f, want 1/3", got)
	}
	if got := TokenJaccard("", ""); got != 1 {
		t.Errorf("both empty = %f, want 1", got)
	}
	if got := TokenJaccard("a", ""); got != 0 {
		t.Errorf("one empty = %f, want 0", got)
	}
	if got := TokenJaccard("a a a", "a"); got != 1 {
		t.Errorf("repeated tokens = %f, want 1", got)
	}
}

func TestTrigramJaccard(t *testing.T) {
	if got := TrigramJaccard("hello", "hello"); got != 1 {
		t.Errorf("identity = %f, want 1", got)
	}
	if got := TrigramJaccard("hello", "help"); got <= 0 || got >= 1 {
		t.Errorf("related strings = %f, want in (0,1)", got)
	}
	if got := TrigramJaccard("", ""); got != 1 {
		t.Errorf("both empty = %f, want 1", got)
	}
}

func TestNumeric(t *testing.T) {
	if got := Numeric(10, 10); got != 1 {
		t.Errorf("equal = %f, want 1", got)
	}
	if got := Numeric(0, 0); got != 1 {
		t.Errorf("zeros = %f, want 1", got)
	}
	if got := Numeric(10, 11); !almost(got, 1-1.0/11, 1e-9) {
		t.Errorf("10 vs 11 = %f", got)
	}
	if got := Numeric(1, 1000); got > 0.01 {
		t.Errorf("far apart = %f, want near 0", got)
	}
	if got := Numeric(math.NaN(), 1); got != 0 {
		t.Errorf("NaN = %f, want 0", got)
	}
	if got := Numeric(-5, 5); got != 0 {
		t.Errorf("opposite signs = %f, want 0", got)
	}
}

func TestDate(t *testing.T) {
	d1 := time.Date(2013, 6, 1, 0, 0, 0, 0, time.UTC)
	if got := Date(d1, d1); got != 1 {
		t.Errorf("same day = %f, want 1", got)
	}
	d2 := d1.AddDate(0, 0, 365)
	got := Date(d1, d2)
	if !almost(got, 0.9, 0.01) {
		t.Errorf("one year apart = %f, want ~0.9", got)
	}
	if Date(d1, d2) != Date(d2, d1) {
		t.Error("Date is not symmetric")
	}
	far := d1.AddDate(50, 0, 0)
	if got := Date(d1, far); got != 0 {
		t.Errorf("50 years apart = %f, want 0", got)
	}
}

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"LeBron James", "lebron james"},
		{"  James,   LeBron  ", "james lebron"},
		{"O'Neal-Shaq", "o neal shaq"},
		{"", ""},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestCompareDispatch(t *testing.T) {
	// Same strings with formatting noise should score high.
	if got := Compare(rdf.Literal("LeBron James"), rdf.Literal("james, lebron")); got != 1 {
		t.Errorf("reordered name = %f, want 1", got)
	}
	// Numbers compared numerically even across lexical forms.
	if got := Compare(rdf.Literal("100"), rdf.Literal("100.0")); got != 1 {
		t.Errorf("100 vs 100.0 = %f, want 1", got)
	}
	// Date vs date.
	if got := Compare(rdf.TypedLiteral("1984-12-30", rdf.XSDDate), rdf.Literal("1984-12-30")); got != 1 {
		t.Errorf("same dates = %f, want 1", got)
	}
	// Incompatible kinds.
	if got := Compare(rdf.Literal("2020-01-01"), rdf.Literal("hello world")); got != 0 {
		t.Errorf("date vs string = %f, want 0", got)
	}
	// IRI vs literal.
	if got := Compare(rdf.IRI("http://a"), rdf.Literal("a")); got != 0 {
		t.Errorf("IRI vs literal = %f, want 0", got)
	}
	// IRIs with same local name.
	if got := Compare(rdf.IRI("http://x.org/LeBron_James"), rdf.IRI("http://y.org/LeBron_James")); got < 0.8 {
		t.Errorf("same local names = %f, want high", got)
	}
}

// Property: every exported similarity is in [0,1] and symmetric.
func TestSimilarityRangeAndSymmetryProperty(t *testing.T) {
	funcs := map[string]func(a, b string) float64{
		"String":        String,
		"Jaro":          Jaro,
		"JaroWinkler":   JaroWinkler,
		"TokenJaccard":  TokenJaccard,
		"Trigram":       TrigramJaccard,
		"LevenshteinSm": LevenshteinSimilarity,
	}
	for name, fn := range funcs {
		fn := fn
		prop := func(a, b string) bool {
			x, y := fn(a, b), fn(b, a)
			return x >= 0 && x <= 1 && almost(x, y, 1e-9)
		}
		if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

// Property: identity scores 1 for non-empty strings.
func TestSimilarityIdentityProperty(t *testing.T) {
	prop := func(a string) bool {
		if a == "" {
			return true
		}
		return Jaro(a, a) == 1 && TokenJaccard(a, a) == 1 && LevenshteinSimilarity(a, a) == 1
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Compare stays in [0,1] for arbitrary literal pairs.
func TestCompareRangeProperty(t *testing.T) {
	prop := func(a, b string) bool {
		v := Compare(rdf.Literal(a), rdf.Literal(b))
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
