package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers failures[i] for the i-th request and 200 with an
// empty query response once the scripted failures run out.
func flakyHandler(calls *atomic.Int64, failures ...int) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := int(calls.Add(1)) - 1
		if n < len(failures) {
			w.WriteHeader(failures[n])
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"rows":[],"snapshot_version":1}`)) //nolint:errcheck
	})
}

func fastRetryClient(url string, attempts int) *Client {
	c := NewClient(url)
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts: attempts,
		BackoffBase: time.Millisecond,
		BackoffMax:  4 * time.Millisecond,
	})
	return c
}

func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(flakyHandler(&calls, http.StatusServiceUnavailable, http.StatusInternalServerError))
	defer ts.Close()

	c := fastRetryClient(ts.URL, 4)
	if _, err := c.Query("SELECT ?s WHERE { ?s ?p ?o . }"); err != nil {
		t.Fatalf("query through 2 transient failures: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (2 failures + success)", got)
	}
}

func TestClientCapsAttempts(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := fastRetryClient(ts.URL, 3)
	if _, err := c.Query("SELECT ?s WHERE { ?s ?p ?o . }"); err == nil {
		t.Fatal("query against a permanently failing server succeeded")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want exactly MaxAttempts=3", got)
	}
}

func TestClientDoesNotRetryCallerErrors(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()

	c := fastRetryClient(ts.URL, 4)
	if _, err := c.Query("nonsense"); err == nil {
		t.Fatal("400 did not surface as an error")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("4xx retried: %d attempts", got)
	}
}

func TestClientHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"rows":[],"snapshot_version":1}`)) //nolint:errcheck
	}))
	defer ts.Close()

	c := fastRetryClient(ts.URL, 2) // backoff alone would retry in ~1ms
	start := time.Now()
	if _, err := c.Query("SELECT ?s WHERE { ?s ?p ?o . }"); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < time.Second {
		t.Fatalf("retried after %s, Retry-After asked for 1s", elapsed)
	}
}

func TestClientRespectsContextDeadline(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := fastRetryClient(ts.URL, 10)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := c.FeedbackContext(ctx, []LinkJSON{{E1: "a", E2: "b"}}, true)
	if err == nil {
		t.Fatal("feedback against a failing server succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("client ignored the context deadline: returned after %s", elapsed)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("deadline of 50ms vs Retry-After 30s: %d attempts, want 1", got)
	}
}
