// Crash-recovery and chaos tests of the serving layer's durability
// contract: a 202 ack means the feedback survives any crash, and a
// recovered server converges to the exact state an uninterrupted run
// would have reached.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"

	"alex/internal/core"
	"alex/internal/faultfs"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/rdf"
)

// durableCfg is the deterministic configuration the recovery tests
// share: tiny episodes, no timer flushes (only EpisodeSize and the
// drain path close episodes, so batching is a pure function of the
// feedback sequence), frequent checkpoints.
func durableCfg(dir string) Config {
	return Config{
		EpisodeSize:     2,
		FlushInterval:   time.Hour,
		CheckpointEvery: 2,
		DataDir:         dir,
		DrainTimeout:    5 * time.Second,
	}
}

// feedbackScript returns a deterministic mixed approve/reject sequence
// over tinyWorld's two links.
func feedbackScript(n int) []FeedbackRequest {
	good := []LinkJSON{{E1: "http://ds1/a1", E2: "http://ds2/b1"}}
	bad := []LinkJSON{{E1: "http://ds1/a2", E2: "http://ds2/b2w"}}
	out := make([]FeedbackRequest, n)
	for i := range out {
		switch i % 3 {
		case 0:
			out[i] = FeedbackRequest{Approve: true, Links: good}
		case 1:
			out[i] = FeedbackRequest{Approve: false, Links: bad}
		default:
			out[i] = FeedbackRequest{Approve: true, Links: append(append([]LinkJSON(nil), good...), bad...)}
		}
	}
	return out
}

func postFeedback(t *testing.T, url string, req FeedbackRequest) int {
	t.Helper()
	resp, err := http.Post(url+"/feedback", "application/json", strings.NewReader(mustJSON(t, req)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// linkIRIs renders a link set as sorted IRI pairs, comparable across
// servers with independently built (but identically loaded)
// dictionaries.
func linkIRIs(dict *rdf.Dict, ls links.Set) []string {
	out := make([]string, 0, ls.Len())
	for _, l := range ls.Slice() {
		out = append(out, dict.Term(l.E1).Value+" "+dict.Term(l.E2).Value)
	}
	sort.Strings(out)
	return out
}

// runTwin applies a feedback prefix to a fresh, identically seeded
// world on a journal-less server and returns its final (post-Close)
// link set and episode count — the ground truth a recovered server must
// match.
func runTwin(t *testing.T, script []FeedbackRequest) ([]string, int) {
	t.Helper()
	dict, sources, sys, _ := tinyWorld(t)
	cfg := durableCfg("")
	cfg.DataDir = ""
	s, err := New(sys, dict, sources, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	for i, req := range script {
		if code := postFeedback(t, ts.URL, req); code != http.StatusAccepted {
			t.Fatalf("twin feedback %d: status %d", i, code)
		}
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return linkIRIs(dict, s.Snapshot().Links), sys.Episode()
}

// TestCrashRecoveryEquivalence is the core durability acceptance test:
// ack k feedback items, kill the writer at an arbitrary point in its
// pipeline (some items applied, some mid-episode, some only journaled;
// checkpoints interleaved), recover into a fresh engine, and require
// the recovered state to equal — link for link, episode for episode —
// an uninterrupted run over the same k items.
func TestCrashRecoveryEquivalence(t *testing.T) {
	script := feedbackScript(9)
	for kill := 1; kill <= len(script); kill += 2 {
		kill := kill
		t.Run(fmt.Sprintf("kill=%d", kill), func(t *testing.T) {
			dir := t.TempDir()
			dict, sources, sys, _ := tinyWorld(t)
			s, err := New(sys, dict, sources, durableCfg(dir))
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s.Handler())
			for i := 0; i < kill; i++ {
				if code := postFeedback(t, ts.URL, script[i]); code != http.StatusAccepted {
					t.Fatalf("feedback %d: status %d, want 202", i, code)
				}
			}
			ts.Close()
			s.abort() // crash: no drain, no final checkpoint
			s.Close() //nolint:errcheck // releases the journal fd

			dict2, sources2, sys2, _ := tinyWorld(t)
			rec, err := New(sys2, dict2, sources2, durableCfg(dir))
			if err != nil {
				t.Fatalf("recovery after kill=%d: %v", kill, err)
			}
			st := rec.Recovery()
			if int(st.CheckpointSeq)+st.Replayed < kill {
				t.Fatalf("recovery covered %d+%d records, %d were acked",
					st.CheckpointSeq, st.Replayed, kill)
			}
			if err := rec.Close(); err != nil {
				t.Fatal(err)
			}

			wantLinks, wantEpisodes := runTwin(t, script[:kill])
			gotLinks := linkIRIs(dict2, rec.Snapshot().Links)
			if fmt.Sprint(gotLinks) != fmt.Sprint(wantLinks) {
				t.Fatalf("recovered links diverge from uninterrupted run:\n got %v\nwant %v", gotLinks, wantLinks)
			}
			if got := sys2.Episode(); got != wantEpisodes {
				t.Fatalf("recovered episodes = %d, uninterrupted run = %d", got, wantEpisodes)
			}
		})
	}
}

// gatedEngine wraps a core.System, blocking each FinishEpisode until
// the gate yields a token (closing the gate releases it for good), so
// tests can hold the writer mid-pipeline while producers keep
// journaling and acking items. The embedded System's Save/Restore keep
// it a Checkpointer.
type gatedEngine struct {
	*core.System
	gate chan struct{}
}

func (g *gatedEngine) FinishEpisode() core.EpisodeStats {
	<-g.gate
	return g.System.FinishEpisode()
}

// copyDir snapshots the flat data directory into a fresh temp dir: the
// exact on-disk state a power cut at this instant would leave behind.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestCheckpointSparesQueuedAckedRecords: a checkpoint reached while a
// later item is already journaled, 202-acked and queued must NOT reset
// the journal — that record would survive only in the in-memory queue,
// and a crash before the next checkpoint would lose acknowledged
// feedback. The writer is held inside FinishEpisode to pin the exact
// interleaving.
func TestCheckpointSparesQueuedAckedRecords(t *testing.T) {
	dir := t.TempDir()
	dict, sources, sys, _ := tinyWorld(t)
	eng := &gatedEngine{System: sys, gate: make(chan struct{})}
	cfg := durableCfg(dir)
	cfg.EpisodeSize = 1 // every item closes an episode
	cfg.CheckpointEvery = 1
	s, err := New(eng, dict, sources, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	script := feedbackScript(2)
	// Item 1: the writer applies it and blocks inside FinishEpisode,
	// before the episode's checkpoint.
	if code := postFeedback(t, ts.URL, script[0]); code != http.StatusAccepted {
		t.Fatalf("feedback 0: status %d", code)
	}
	// Item 2: journaled, fsynced, acked and queued while the writer is
	// held — exactly the record a careless checkpoint would strand.
	if code := postFeedback(t, ts.URL, script[1]); code != http.StatusAccepted {
		t.Fatalf("feedback 1: status %d", code)
	}
	// Release episode 1: the writer reaches its checkpoint with item 2
	// still queued, then dequeues item 2 and blocks in episode 2. The
	// unbuffered send synchronizes with the writer sitting in
	// FinishEpisode, so the single token can only release episode 1.
	eng.gate <- struct{}{}
	deadline := time.Now().Add(5 * time.Second)
	for len(s.queue) > 0 { // the dequeue happens after the checkpoint decision
		if time.Now().After(deadline) {
			t.Fatal("writer never picked up item 2")
		}
		time.Sleep(time.Millisecond)
	}

	// Cut the power here: recover a fresh engine from a copy of the
	// data directory and require BOTH acked items.
	snap := copyDir(t, dir)
	dict2, sources2, sys2, _ := tinyWorld(t)
	cfg2 := cfg
	cfg2.DataDir = snap
	cfg2.FS = nil
	rec, err := New(sys2, dict2, sources2, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	st := rec.Recovery()
	if int(st.CheckpointSeq)+st.Replayed < len(script) {
		t.Fatalf("recovery covered %d+%d records, %d were acked (checkpoint stranded a queued item)",
			st.CheckpointSeq, st.Replayed, len(script))
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// Ground truth: the same two items on an identically configured
	// journal-less twin.
	dict3, sources3, sys3, _ := tinyWorld(t)
	cfg3 := cfg
	cfg3.DataDir = ""
	tw, err := New(sys3, dict3, sources3, cfg3)
	if err != nil {
		t.Fatal(err)
	}
	tts := httptest.NewServer(tw.Handler())
	for i, req := range script {
		if code := postFeedback(t, tts.URL, req); code != http.StatusAccepted {
			t.Fatalf("twin feedback %d: status %d", i, code)
		}
	}
	tts.Close()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	want := linkIRIs(dict3, tw.Snapshot().Links)
	if got := linkIRIs(dict2, rec.Snapshot().Links); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("recovered links diverge (acked item lost to a checkpoint):\n got %v\nwant %v", got, want)
	}
	if got, wantEp := sys2.Episode(), sys3.Episode(); got != wantEp {
		t.Fatalf("recovered episodes = %d, uninterrupted run = %d", got, wantEp)
	}

	close(eng.gate) // release the held writer for a clean shutdown
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrashDuringRecoveryLosesNothing: recovery itself must be
// crash-safe. Replaying crosses several checkpoint intervals; a
// checkpoint taken mid-replay would reset the journal while the
// unreplayed tail exists only in memory, so a second crash right after
// recovery would lose acked records. kill=7 ends replay mid-episode,
// keeping the tail exposed.
func TestCrashDuringRecoveryLosesNothing(t *testing.T) {
	const kill = 7
	dir := t.TempDir()
	script := feedbackScript(kill)
	dict, sources, sys, _ := tinyWorld(t)
	// The live run never checkpoints, leaving the whole 7-item journal
	// as the tail; recovering it with CheckpointEvery=2 forces multiple
	// checkpoint-interval crossings during replay.
	liveCfg := durableCfg(dir)
	liveCfg.CheckpointEvery = 100
	s, err := New(sys, dict, sources, liveCfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	for i, req := range script {
		if code := postFeedback(t, ts.URL, req); code != http.StatusAccepted {
			t.Fatalf("feedback %d: status %d", i, code)
		}
	}
	ts.Close()
	s.abort()
	s.Close() //nolint:errcheck // releases the journal fd

	// First recovery replays several episodes, then crashes again before
	// serving anything: no drain, no graceful checkpoint.
	dict1, sources1, sys1, _ := tinyWorld(t)
	rec1, err := New(sys1, dict1, sources1, durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	rec1.abort()
	rec1.Close() //nolint:errcheck // releases the journal fd

	// The second recovery must still cover every acked item.
	dict2, sources2, sys2, _ := tinyWorld(t)
	rec2, err := New(sys2, dict2, sources2, durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	st := rec2.Recovery()
	if int(st.CheckpointSeq)+st.Replayed < kill {
		t.Fatalf("second recovery covered %d+%d records, %d were acked (mid-replay checkpoint lost the tail)",
			st.CheckpointSeq, st.Replayed, kill)
	}
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}
	wantLinks, wantEpisodes := runTwin(t, script)
	if got := linkIRIs(dict2, rec2.Snapshot().Links); fmt.Sprint(got) != fmt.Sprint(wantLinks) {
		t.Fatalf("doubly-recovered links diverge:\n got %v\nwant %v", got, wantLinks)
	}
	if got := sys2.Episode(); got != wantEpisodes {
		t.Fatalf("doubly-recovered episodes = %d, uninterrupted run = %d", got, wantEpisodes)
	}
}

// TestCleanShutdownNeedsNoReplay: graceful Close leaves a final
// checkpoint, so the next start replays nothing and still sees every
// acked item.
func TestCleanShutdownNeedsNoReplay(t *testing.T) {
	dir := t.TempDir()
	script := feedbackScript(5)
	dict, sources, sys, _ := tinyWorld(t)
	s, err := New(sys, dict, sources, durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	for i, req := range script {
		if code := postFeedback(t, ts.URL, req); code != http.StatusAccepted {
			t.Fatalf("feedback %d: status %d", i, code)
		}
	}
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	want := linkIRIs(dict, s.Snapshot().Links)

	dict2, sources2, sys2, _ := tinyWorld(t)
	rec, err := New(sys2, dict2, sources2, durableCfg(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer rec.Close()
	st := rec.Recovery()
	if st.Replayed != 0 {
		t.Fatalf("clean shutdown still replayed %d records", st.Replayed)
	}
	if st.CheckpointSeq != uint64(len(script)) {
		t.Fatalf("checkpoint seq = %d, want %d (all acked items)", st.CheckpointSeq, len(script))
	}
	if got := linkIRIs(dict2, rec.Snapshot().Links); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("restart changed the link set:\n got %v\nwant %v", got, want)
	}
}

// TestFeedbackNotAckedWhenJournalFails: a failing fsync must surface as
// 503 (retryable, not acked), never as a 202 the server cannot honor.
func TestFeedbackNotAckedWhenJournalFails(t *testing.T) {
	dir := t.TempDir()
	ffs := faultfs.New(nil)
	dict, sources, sys, _ := tinyWorld(t)
	cfg := durableCfg(dir)
	cfg.FS = ffs
	s, err := New(sys, dict, sources, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	script := feedbackScript(2)
	if code := postFeedback(t, ts.URL, script[0]); code != http.StatusAccepted {
		t.Fatalf("healthy feedback: status %d", code)
	}
	ffs.FailAllSyncs(true)
	resp, err := http.Post(ts.URL+"/feedback", "application/json", strings.NewReader(mustJSON(t, script[1])))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fsync-failure feedback: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	// The journal heals once fsync works again.
	ffs.FailAllSyncs(false)
	if code := postFeedback(t, ts.URL, script[1]); code != http.StatusAccepted {
		t.Fatalf("post-recovery feedback: status %d", code)
	}
}

// TestDegradedQueryMarkedOnWire: a query over a federation with a dead
// source answers partially, with the degradation marker in both the
// JSON body and the X-Alex-Degraded header, and /healthz names the
// open breaker.
func TestDegradedQueryMarkedOnWire(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	sources[1].Access = func(ctx context.Context) error {
		return fmt.Errorf("connection refused")
	}
	cfg := Config{Resilience: federation.Resilience{
		SourceTimeout: 50 * time.Millisecond,
		Retries:       0,
		BackoffBase:   time.Millisecond,
		Breaker:       federation.BreakerConfig{Failures: 1, Cooldown: time.Hour, Successes: 1},
	}}
	s, ts, client := newTestServer(t, sys, dict, sources, cfg)

	// Unbound predicate: source selection cannot exclude ds2, so the
	// query probes it and must degrade.
	body := `{"query":"SELECT ?s ?o WHERE { ?s ?p ?o . }"}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded query status = %d, want 200 (partial results)", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Alex-Degraded"); got != "ds2" {
		t.Fatalf("X-Alex-Degraded = %q, want \"ds2\"", got)
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.DegradedSources) != 1 || qr.DegradedSources[0] != "ds2" {
		t.Fatalf("degraded_sources = %v", qr.DegradedSources)
	}
	if len(qr.Rows) != 2 {
		t.Fatalf("rows = %d, want ds1's 2 label rows", len(qr.Rows))
	}

	// The failure tripped the breaker (threshold 1); /healthz reports it.
	h, err := client.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if len(h.Sources) != 2 {
		t.Fatalf("healthz sources = %+v", h.Sources)
	}
	if h.Sources[0].Breaker != "closed" || h.Sources[0].Guarded {
		t.Fatalf("ds1 health = %+v, want unguarded closed", h.Sources[0])
	}
	if h.Sources[1].Breaker != "open" || !h.Sources[1].Guarded {
		t.Fatalf("ds2 health = %+v, want guarded open", h.Sources[1])
	}

	// /metrics exposes the labeled breaker gauge and the degraded counter.
	m, err := client.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m, `alexd_source_breaker_state{source="ds2"} 1`) {
		t.Fatalf("breaker gauge missing or wrong:\n%s", m)
	}
	if v := metricValue(t, m, "alexd_degraded_queries_total"); v != 1 {
		t.Fatalf("alexd_degraded_queries_total = %v, want 1", v)
	}
	_ = s
}

// TestNoGoroutineLeaks cycles full server lifetimes (start, serve
// queries and feedback, shut down) and requires the goroutine count to
// return to its baseline: neither the writer, nor abandoned query
// evaluations, nor the journal may leak.
func TestNoGoroutineLeaks(t *testing.T) {
	dir := t.TempDir()
	cycle := func() {
		dict, sources, sys, _ := tinyWorld(t)
		cfg := durableCfg(dir)
		cfg.FlushInterval = 10 * time.Millisecond
		s, err := New(sys, dict, sources, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		client := NewClient(ts.URL)
		if _, err := client.Query(`SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`); err != nil {
			t.Fatal(err)
		}
		if err := client.Feedback([]LinkJSON{{E1: "http://ds1/a1", E2: "http://ds2/b1"}}, true); err != nil {
			t.Fatal(err)
		}
		if _, err := client.Healthz(); err != nil {
			t.Fatal(err)
		}
		client.CloseIdleConnections()
		ts.Close()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}

	cycle() // warm-up: lets the runtime and net/http settle their helpers
	runtime.GC()
	time.Sleep(50 * time.Millisecond)
	before := runtime.NumGoroutine()

	for i := 0; i < 5; i++ {
		cycle()
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutines: %d before, %d after 5 cycles\n%s",
				before, runtime.NumGoroutine(), buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
