package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"alex/internal/cluster"
	"alex/internal/core"
	"alex/internal/links"
	"alex/internal/rdf"
)

// fleetWorld splits tinyWorld across n in-process shards: one shared
// dictionary and graph pair (as identical dataset loads would produce),
// each shard's engine built only over the dataset-1 entities its hash
// range owns, peers wired up, replication ticking fast.
func fleetWorld(t *testing.T, n int) (shards []*Server, clients []*Client, dict *rdf.Dict, initial links.Set) {
	t.Helper()
	dict, sources, _, initial := tinyWorld(t)
	ranges := cluster.FleetRanges(n)
	g1 := sources[0].Graph
	g2 := sources[1].Graph

	addrs := make([]string, n)
	for id := 0; id < n; id++ {
		var e1 []rdf.ID
		for _, e := range g1.SubjectIDs() {
			if ranges[id].ContainsIRI(dict.Term(e).Value) {
				e1 = append(e1, e)
			}
		}
		var init []links.Link
		for _, l := range initial.Slice() {
			if cluster.OwnerOf(ranges, dict.Term(l.E1).Value) == id {
				init = append(init, l)
			}
		}
		sys := core.New(g1, g2, e1, g2.SubjectIDs(), init, core.DefaultConfig())
		s, err := New(sys, dict, sources, Config{
			FlushInterval: 20 * time.Millisecond,
			Fleet:         &FleetConfig{ShardID: id, Shards: n, ReplicateEvery: 25 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		t.Cleanup(ts.Close)
		t.Cleanup(func() { s.Close() })
		c := NewClient(ts.URL)
		c.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
		shards = append(shards, s)
		clients = append(clients, c)
		addrs[id] = ts.URL
	}
	for _, s := range shards {
		if err := s.SetPeers(addrs); err != nil {
			t.Fatal(err)
		}
	}
	return shards, clients, dict, initial
}

// waitLinks polls a shard's /links until the served count reaches want.
func waitLinks(t *testing.T, c *Client, want int) *LinksResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ls, err := c.Links()
		if err != nil {
			t.Fatal(err)
		}
		if ls.Count == want {
			return ls
		}
		if time.Now().After(deadline) {
			t.Fatalf("served links = %d, want %d", ls.Count, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Replication must make every shard serve the FULL link set — the
// union of all partitions — even though each engine only owns a slice.
func TestFleetReplicationServesFullReads(t *testing.T) {
	n := 2
	_, clients, _, initial := fleetWorld(t, n)
	for _, c := range clients {
		waitLinks(t, c, initial.Len())
	}

	// Reject the wrong link at its owning shard; the removal must
	// propagate so EVERY shard's served set drops it.
	ranges := cluster.FleetRanges(n)
	owner := cluster.OwnerOf(ranges, "http://ds1/a2")
	if err := clients[owner].Feedback([]LinkJSON{{E1: "http://ds1/a2", E2: "http://ds2/b2w"}}, false); err != nil {
		t.Fatal(err)
	}
	for id, c := range clients {
		ls := waitLinks(t, c, 1)
		if ls.Links[0].E1 != "http://ds1/a1" || ls.Links[0].E2 != "http://ds2/b1" {
			t.Fatalf("shard %d serves wrong surviving link: %+v", id, ls.Links)
		}
	}
}

// A shard's query path must cross links owned by OTHER shards: the
// replicated union feeds the federator, so any shard answers like a
// standalone server (the fleet router counts on this for failover).
func TestFleetShardAnswersAcrossForeignLinks(t *testing.T) {
	n := 2
	_, clients, _, initial := fleetWorld(t, n)
	ranges := cluster.FleetRanges(n)
	owner := cluster.OwnerOf(ranges, "http://ds1/a1")
	other := (owner + 1) % n
	waitLinks(t, clients[other], initial.Len())

	res, err := clients[other].Query(`SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Binding["n"].Value != "alpha prime" {
		t.Fatalf("non-owner shard failed to answer across the replicated link: %+v", res.Rows)
	}
	if len(res.Rows[0].Links) != 1 || res.Rows[0].Links[0].E1 != "http://ds1/a1" {
		t.Fatalf("provenance lost through replication: %+v", res.Rows[0].Links)
	}
}

// Satellite: /healthz reports shard role, owned range and episodes —
// the router's health loop and humans both read it.
func TestHealthzShardInfo(t *testing.T) {
	n := 2
	shards, clients, _, initial := fleetWorld(t, n)
	waitLinks(t, clients[0], initial.Len())

	h, err := clients[0].Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Role != "shard" {
		t.Fatalf("role = %q, want shard", h.Role)
	}
	if h.Shard == nil {
		t.Fatal("shard section missing")
	}
	if h.Shard.ID != 0 || h.Shard.Shards != n {
		t.Fatalf("shard identity = %d/%d, want 0/%d", h.Shard.ID, h.Shard.Shards, n)
	}
	if want := cluster.FleetRanges(n)[0]; h.Shard.Range != want {
		t.Fatalf("range = %+v, want %+v", h.Shard.Range, want)
	}
	if h.Shard.RangeText == "" {
		t.Fatal("range_text missing")
	}
	if h.Shard.OwnLinks+sumPeerLinks(h.Shard.Peers) != h.CandidateLinks {
		t.Fatalf("own (%d) + peers (%d) != served (%d)",
			h.Shard.OwnLinks, sumPeerLinks(h.Shard.Peers), h.CandidateLinks)
	}
	// After convergence every other shard shows up as a peer.
	if len(h.Shard.Peers) != n-1 {
		t.Fatalf("peers = %+v, want %d entries", h.Shard.Peers, n-1)
	}

	// The standalone server keeps the old shape: role standalone, no
	// shard section — single-node deployments see no wire change.
	dict, sources, sys, _ := tinyWorld(t)
	_, _, sc := newTestServer(t, sys, dict, sources, Config{})
	sh, err := sc.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if sh.Role != "standalone" || sh.Shard != nil {
		t.Fatalf("standalone healthz = role %q shard %+v", sh.Role, sh.Shard)
	}
	_ = shards
}

func sumPeerLinks(ps []PeerHealth) int {
	n := 0
	for _, p := range ps {
		n += p.Links
	}
	return n
}

// A shard must refuse feedback for links it does not own: accepting a
// misrouted link would explore it on the wrong engine and lose it from
// replication (which is keyed by owner).
func TestFleetFeedbackOwnershipRejected(t *testing.T) {
	n := 2
	_, clients, _, _ := fleetWorld(t, n)
	ranges := cluster.FleetRanges(n)
	owner := cluster.OwnerOf(ranges, "http://ds1/a1")
	wrong := (owner + 1) % n
	err := clients[wrong].Feedback([]LinkJSON{{E1: "http://ds1/a1", E2: "http://ds2/b1"}}, true)
	if err == nil {
		t.Fatal("misrouted feedback accepted")
	}
	// The owner accepts the same link.
	if err := clients[owner].Feedback([]LinkJSON{{E1: "http://ds1/a1", E2: "http://ds2/b1"}}, true); err != nil {
		t.Fatal(err)
	}
}

// Stale manifests (older episode than the held copy) must not roll a
// peer's replicated links back — replays and reordered deliveries are
// normal under retry.
func TestFleetStaleManifestIgnored(t *testing.T) {
	shards, clients, _, initial := fleetWorld(t, 2)
	waitLinks(t, clients[0], initial.Len())

	s := shards[0]
	from := 1
	s.peerMu.Lock()
	heldEp := s.peerSets[from].episode
	heldLinks := s.peerSets[from].links.Len()
	s.peerMu.Unlock()

	stale := cluster.SnapshotManifest{
		ShardID: from,
		Range:   cluster.FleetRanges(2)[from],
		Episode: heldEp - 1,
		Links:   nil, // an empty, older set must not erase anything
	}
	applied, err := s.applyManifest(stale)
	if err != nil {
		t.Fatal(err)
	}
	if applied {
		t.Fatal("stale manifest applied")
	}
	s.peerMu.Lock()
	if s.peerSets[from].links.Len() != heldLinks || s.peerSets[from].episode != heldEp {
		t.Fatalf("stale manifest mutated peer state: %+v", s.peerSets[from])
	}
	s.peerMu.Unlock()

	// Garbage manifests are refused loudly.
	if _, err := s.applyManifest(cluster.SnapshotManifest{ShardID: 99}); err == nil {
		t.Fatal("out-of-fleet manifest accepted")
	}
	if _, err := s.applyManifest(cluster.SnapshotManifest{ShardID: 0}); err == nil {
		t.Fatal("self manifest accepted")
	}
	if _, err := s.applyManifest(cluster.SnapshotManifest{
		ShardID: from, Episode: heldEp + 100,
		Links: []cluster.LinkWire{{E1: "http://nowhere/x", E2: "http://nowhere/y"}},
	}); err == nil {
		t.Fatal("manifest with unknown entities accepted")
	}
}

// The replica endpoints are fleet-only: a standalone server 404s them.
func TestReplicaEndpointsStandaloneDisabled(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	_, ts, _ := newTestServer(t, sys, dict, sources, Config{})
	resp, err := http.Get(ts.URL + "/replica/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /replica/snapshot on standalone = %d, want 404", resp.StatusCode)
	}
}

// MaxConcurrentQueries is admission control: with every slot taken, a
// query whose deadline expires waiting gets 503 + Retry-After, not a
// pile-up.
func TestQueryAdmissionBackpressure(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	s, ts, client := newTestServer(t, sys, dict, sources, Config{MaxConcurrentQueries: 1})

	// Occupy the only slot directly; the next query must time out
	// waiting for admission.
	s.querySem <- struct{}{}
	body, _ := json.Marshal(QueryRequest{
		Query:         `SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`,
		TimeoutMillis: 50,
	})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("admission-blocked query = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}
	<-s.querySem

	// With the slot free the same query succeeds.
	res, err := client.QueryContext(context.Background(), `SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
}
