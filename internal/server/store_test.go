// Tests of the disk-backed segment store's integration with the
// serving layer: compaction and store checkpoints at episode
// boundaries, the /healthz backend section, the store gauges on
// /metrics, skip-when-clean checkpointing, and crash-during-compaction
// recovery (torn compaction falls back to the previous segment
// generation while the journal preserves every acked feedback item).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"testing"
	"time"

	"alex/internal/core"
	"alex/internal/faultfs"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/store"
	"alex/internal/wal"
)

// diskWorld mirrors tinyWorld exactly — same triples, entities and
// initial links — but serves both sources from a disk-backed
// store.Set, so store-integration tests can compare against the
// in-memory twin link for link.
func diskWorld(t *testing.T, fsys wal.FS, dir string) (*rdf.Dict, []federation.Source, *core.System, *store.Set, links.Set) {
	t.Helper()
	set, err := store.Create(dir, nil, store.Options{FS: fsys, Meta: "tiny"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { set.Close() }) //nolint:errcheck // read-only teardown
	s1, err := set.AddSource("ds1")
	if err != nil {
		t.Fatal(err)
	}
	s2, err := set.AddSource("ds2")
	if err != nil {
		t.Fatal(err)
	}
	dict := set.Dict()
	ins := func(src *store.Segmented, s, p, o rdf.Term) {
		src.InsertIDs(dict.Intern(s), dict.Intern(p), dict.Intern(o))
	}
	label := rdf.IRI("http://ds1/label")
	name := rdf.IRI("http://ds2/name")
	a1, a2 := rdf.IRI("http://ds1/a1"), rdf.IRI("http://ds1/a2")
	b1, b2w := rdf.IRI("http://ds2/b1"), rdf.IRI("http://ds2/b2w")
	ins(s1, a1, label, rdf.Literal("alpha"))
	ins(s1, a2, label, rdf.Literal("beta"))
	ins(s2, b1, name, rdf.Literal("alpha prime"))
	ins(s2, b2w, name, rdf.Literal("unrelated"))

	id := func(term rdf.Term) rdf.ID {
		i, ok := dict.Lookup(term)
		if !ok {
			t.Fatalf("unknown term %v", term)
		}
		return i
	}
	initial := links.NewSet(
		links.Link{E1: id(a1), E2: id(b1)},
		links.Link{E1: id(a2), E2: id(b2w)},
	)
	set.SetEntities("ds1", s1.SubjectIDs())
	set.SetEntities("ds2", s2.SubjectIDs())
	set.SetInitialLinks(initial.Slice())
	sys := core.New(s1, s2, s1.SubjectIDs(), s2.SubjectIDs(), initial.Slice(), core.DefaultConfig())
	sources := []federation.Source{{Name: "ds1", Graph: s1}, {Name: "ds2", Graph: s2}}
	return dict, sources, sys, set, initial
}

// storeDirState fingerprints the store directory (sorted
// name:size:mtime) so tests can assert a clean checkpoint writes
// nothing at all.
func storeDirState(t *testing.T, dir string) string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var parts []string
	for _, e := range ents {
		fi, err := e.Info()
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, fmt.Sprintf("%s:%d:%s", fi.Name(), fi.Size(), fi.ModTime()))
	}
	sort.Strings(parts)
	return strings.Join(parts, "\n")
}

// waitForSnapshotEpisode polls the published snapshot until the writer
// has closed at least n episodes.
func waitForSnapshotEpisode(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Episode < n {
		if time.Now().After(deadline) {
			t.Fatalf("writer never reached episode %d (at %d)", n, s.Snapshot().Episode)
		}
		time.Sleep(time.Millisecond)
	}
}

func getHealth(t *testing.T, url string) HealthResponse {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getMetricsText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var b strings.Builder
	if _, err := fmt.Fprint(&b, readAll(t, resp)); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// TestStoreBackedServerHealthAndMetrics runs the full serving loop on
// the disk backend: queries and feedback behave as on the mem backend,
// /healthz reports backend "disk" with per-source segment/delta
// counts, and /metrics exposes the store checkpoint gauge plus the
// snapshot-load gauge fed from Config.StoreLoadSeconds.
func TestStoreBackedServerHealthAndMetrics(t *testing.T) {
	dict, sources, sys, set, _ := diskWorld(t, nil, t.TempDir())
	cfg := Config{
		EpisodeSize:      1,
		FlushInterval:    time.Hour,
		CheckpointEvery:  1,
		Stores:           set,
		StoreLoadSeconds: 1.25,
	}
	s, ts, client := newTestServer(t, sys, dict, sources, cfg)

	// The disk backend serves queries like the mem backend does.
	res, err := client.Query(`SELECT ?s WHERE { ?s <http://ds1/label> "alpha" . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0].Binding["s"].Value != "http://ds1/a1" {
		t.Fatalf("disk-backed query rows: %v", res.Rows)
	}

	// An episode compacts the delta into a segment and checkpoints the
	// store (it was never compacted, so the first checkpoint writes).
	if code := postFeedback(t, ts.URL, feedbackScript(1)[0]); code != http.StatusAccepted {
		t.Fatalf("feedback status %d", code)
	}
	waitForSnapshotEpisode(t, s, 1)
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.storeCheckpoints.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("store checkpoint never ran")
		}
		time.Sleep(time.Millisecond)
	}

	h := getHealth(t, ts.URL)
	if h.Store.Backend != "disk" {
		t.Fatalf("healthz backend = %q, want disk", h.Store.Backend)
	}
	if h.Store.Generation == 0 {
		t.Fatal("healthz store generation still 0 after checkpoint")
	}
	if len(h.Store.Sources) != 2 {
		t.Fatalf("healthz store sources: %+v", h.Store.Sources)
	}
	for _, src := range h.Store.Sources {
		if src.Segments != 1 || src.SegmentTriples != 2 || src.DeltaTriples != 0 {
			t.Fatalf("source %s: %+v, want 1 segment of 2 triples, empty delta", src.Name, src)
		}
	}

	text := getMetricsText(t, ts.URL)
	for _, want := range []string{
		"# TYPE alexd_store_checkpoint_seconds gauge",
		"# TYPE alexd_snapshot_load_seconds gauge",
		"alexd_snapshot_load_seconds 1.25",
		"alexd_store_checkpoints_total 1",
		"alexd_store_errors_total 0",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, text)
		}
	}
}

// TestMemBackendHealthz: without a store set configured the health
// endpoint reports the in-memory backend and no store sources.
func TestMemBackendHealthz(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	_, ts, _ := newTestServer(t, sys, dict, sources, Config{})
	h := getHealth(t, ts.URL)
	if h.Store.Backend != "mem" || h.Store.Generation != 0 || len(h.Store.Sources) != 0 {
		t.Fatalf("mem healthz store section: %+v", h.Store)
	}
}

// TestServerStoreCheckpointSkipsWhenClean is the regression test for
// the O(delta) checkpoint contract at the serving layer: feedback
// episodes do not mutate triples, so once the store is compacted the
// per-episode store checkpoints must not produce a single new segment,
// delta or manifest file — the directory stays byte-for-byte
// untouched. Dirtying the delta afterwards proves the skip is not
// vacuous.
func TestServerStoreCheckpointSkipsWhenClean(t *testing.T) {
	dir := t.TempDir()
	dict, sources, sys, set, _ := diskWorld(t, nil, dir)
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	gen := set.Generation()
	before := storeDirState(t, dir)

	cfg := Config{
		EpisodeSize:     1,
		FlushInterval:   time.Hour,
		CheckpointEvery: 1,
		Stores:          set,
	}
	s, ts, _ := newTestServer(t, sys, dict, sources, cfg)
	for i, req := range feedbackScript(3) {
		if code := postFeedback(t, ts.URL, req); code != http.StatusAccepted {
			t.Fatalf("feedback %d: status %d", i, code)
		}
	}
	waitForSnapshotEpisode(t, s, 3)
	if got := storeDirState(t, dir); got != before {
		t.Fatalf("clean store checkpoints rewrote files:\nbefore:\n%s\nafter:\n%s", before, got)
	}
	if set.Generation() != gen {
		t.Fatalf("generation moved %d -> %d with an empty delta", gen, set.Generation())
	}
	if n := s.metrics.storeCheckpoints.Value(); n != 0 {
		t.Fatalf("clean episodes wrote %d store checkpoints", n)
	}

	// A real delta write makes the next episode's checkpoint advance the
	// generation — the skip above was the clean path, not a dead path.
	// Store mutation is single-writer, so quiesce the serving writer
	// before dirtying the delta from this goroutine, then serve again.
	ts.Close()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	set.Dict().Intern(rdf.IRI("http://ds1/late"))
	set.Source("ds1").InsertIDs(1, 2, 3)
	_, ts2, _ := newTestServer(t, sys, dict, sources, cfg)
	if code := postFeedback(t, ts2.URL, feedbackScript(1)[0]); code != http.StatusAccepted {
		t.Fatal("dirty-epoch feedback rejected")
	}
	deadline := time.Now().Add(5 * time.Second)
	for set.Generation() == gen {
		if time.Now().After(deadline) {
			t.Fatal("dirty store never checkpointed")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestCrashDuringStoreCompaction cuts power in the middle of a segment
// compaction (the rename that would commit the new segment fails, then
// the process dies) and requires both halves of the durability
// contract: the reopened store falls back to the previous segment
// generation (the torn compaction is invisible), and the engine
// journal still replays every acknowledged feedback item, matching an
// uninterrupted twin run link for link.
func TestCrashDuringStoreCompaction(t *testing.T) {
	ffs := faultfs.New(nil)
	storeDir, dataDir := t.TempDir(), t.TempDir()
	dict, sources, sys, set, _ := diskWorld(t, ffs, storeDir)
	// Durable baseline: one compacted generation on disk.
	if err := set.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := set.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	gen := set.Generation()
	baseline := sources[0].Graph.Size()

	cfg := Config{
		EpisodeSize:     1,
		FlushInterval:   time.Hour,
		CheckpointEvery: 1,
		DataDir:         dataDir,
		FS:              ffs,
		Stores:          set,
		DrainTimeout:    5 * time.Second,
	}
	s, err := New(sys, dict, sources, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())

	// Ack a prefix of feedback while the store is clean.
	script := feedbackScript(5)
	for i := 0; i < 4; i++ {
		if code := postFeedback(t, ts.URL, script[i]); code != http.StatusAccepted {
			t.Fatalf("feedback %d: status %d", i, code)
		}
	}
	waitForSnapshotEpisode(t, s, 4)

	// Dirty the store (an inert triple on a fresh subject, so link
	// inference is unaffected), then fail every rename: the compaction
	// triggered by the next episode tears before its commit point.
	stray := set.Dict().Intern(rdf.IRI("http://ds1/stray"))
	set.Source("ds1").InsertIDs(stray, 1, 1)
	ffs.FailRenames(true)
	if code := postFeedback(t, ts.URL, script[4]); code != http.StatusAccepted {
		t.Fatalf("final feedback: status %d", code)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.metrics.storeErrors.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("torn compaction never surfaced as a store error")
		}
		time.Sleep(time.Millisecond)
	}
	// The torn compaction must not corrupt the serving view: the store
	// still answers with every triple including the delta.
	if got := sources[0].Graph.Size(); got != baseline+1 {
		t.Fatalf("post-tear in-memory size = %d, want %d", got, baseline+1)
	}

	// Power cut.
	ts.Close()
	s.abort()
	s.Close()   //nolint:errcheck // releases the journal fd
	set.Close() //nolint:errcheck // drops the mmaps of the dead process

	// Restart over the same disk. The store opens at the pre-crash
	// generation — the torn segment and manifest are ignored and swept.
	ffs.Revive()
	set2, err := store.Open(storeDir, store.Options{FS: ffs, Meta: "tiny"})
	if err != nil {
		t.Fatalf("reopen after torn compaction: %v", err)
	}
	defer set2.Close()
	if set2.Generation() != gen {
		t.Fatalf("reopened generation %d, want pre-crash %d", set2.Generation(), gen)
	}
	r1, r2 := set2.Source("ds1"), set2.Source("ds2")
	if r1 == nil || r2 == nil {
		t.Fatal("reopened store lost a source")
	}
	if got := r1.Size(); got != baseline {
		t.Fatalf("reopened ds1 size = %d, want pre-tear %d", got, baseline)
	}

	// The journal replays all five acked items into a fresh engine over
	// the reopened store; the result matches an uninterrupted run.
	initial, ok := set2.InitialLinks()
	if !ok {
		t.Fatal("reopened store lost its initial links")
	}
	sys2 := core.New(r1, r2, set2.Entities("ds1"), set2.Entities("ds2"), initial, core.DefaultConfig())
	sources2 := []federation.Source{{Name: "ds1", Graph: r1}, {Name: "ds2", Graph: r2}}
	cfg2 := cfg
	cfg2.Stores = set2
	rec, err := New(sys2, set2.Dict(), sources2, cfg2)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	st := rec.Recovery()
	if int(st.CheckpointSeq)+st.Replayed < len(script) {
		t.Fatalf("recovery covered %d+%d records, %d were acked", st.CheckpointSeq, st.Replayed, len(script))
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
	wantLinks, _ := runTwin(t, script)
	gotLinks := linkIRIs(set2.Dict(), rec.Snapshot().Links)
	if fmt.Sprint(gotLinks) != fmt.Sprint(wantLinks) {
		t.Fatalf("recovered links diverge:\n got %v\nwant %v", gotLinks, wantLinks)
	}
}
