package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"alex/internal/cluster"
	"alex/internal/core"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/rdf"
)

// txnWorld builds a dataset pair whose dataset-1 entities split across
// a 2-shard fleet: a1/a2 hash into shard 1's range, a10/a11 into shard
// 0's (verified by construction — the test fails loudly if the hash
// function ever changes that).
func txnWorld(t *testing.T) (*rdf.Dict, []federation.Source, links.Set) {
	t.Helper()
	dict := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(dict)
	g2 := rdf.NewGraphWithDict(dict)
	label := rdf.IRI("http://ds1/label")
	name := rdf.IRI("http://ds2/name")
	var initial []links.Link
	for _, s := range []string{"a1", "a2", "a10", "a11"} {
		a := rdf.IRI("http://ds1/" + s)
		b := rdf.IRI("http://ds2/b" + strings.TrimPrefix(s, "a"))
		g1.Insert(rdf.Triple{S: a, P: label, O: rdf.Literal(s)})
		g2.Insert(rdf.Triple{S: b, P: name, O: rdf.Literal(s + " prime")})
		ia, _ := dict.Lookup(a)
		ib, _ := dict.Lookup(b)
		initial = append(initial, links.Link{E1: ia, E2: ib})
	}
	ranges := cluster.FleetRanges(2)
	if cluster.OwnerOf(ranges, "http://ds1/a1") == cluster.OwnerOf(ranges, "http://ds1/a10") {
		t.Fatal("txnWorld no longer splits across 2 shards; pick different entity names")
	}
	sources := []federation.Source{{Name: "ds1", Graph: g1}, {Name: "ds2", Graph: g2}}
	return dict, sources, links.NewSet(initial...)
}

// txnShardConfig is the per-shard config for txn tests: fast flush and
// replication, a resolver grace period the test controls, and an
// optional durability dir.
func txnShardConfig(n, id int, dataDir string, resolveAfter time.Duration) Config {
	cfg := Config{
		FlushInterval: 20 * time.Millisecond,
		Fleet: &FleetConfig{
			ShardID:         id,
			Shards:          n,
			ReplicateEvery:  25 * time.Millisecond,
			TxnResolveAfter: resolveAfter,
		},
	}
	if dataDir != "" {
		cfg.DataDir = fmt.Sprintf("%s/shard-%d", dataDir, id)
	}
	return cfg
}

// txnShardEngine builds shard id's engine over the txnWorld data it
// owns.
func txnShardEngine(dict *rdf.Dict, sources []federation.Source, initial links.Set, n, id int) *core.System {
	ranges := cluster.FleetRanges(n)
	g1, g2 := sources[0].Graph, sources[1].Graph
	var e1 []rdf.ID
	for _, e := range g1.SubjectIDs() {
		if ranges[id].ContainsIRI(dict.Term(e).Value) {
			e1 = append(e1, e)
		}
	}
	var init []links.Link
	for _, l := range initial.Slice() {
		if cluster.OwnerOf(ranges, dict.Term(l.E1).Value) == id {
			init = append(init, l)
		}
	}
	return core.New(g1, g2, e1, g2.SubjectIDs(), init, core.DefaultConfig())
}

// txnFleet starts an n-shard fleet over txnWorld.
func txnFleet(t *testing.T, n int, dataDir string, resolveAfter time.Duration) ([]*Server, []*httptest.Server, []*Client, []string, *rdf.Dict, []federation.Source, links.Set) {
	t.Helper()
	dict, sources, initial := txnWorld(t)
	var shards []*Server
	var https []*httptest.Server
	var clients []*Client
	addrs := make([]string, n)
	for id := 0; id < n; id++ {
		s, err := New(txnShardEngine(dict, sources, initial, n, id), dict, sources, txnShardConfig(n, id, dataDir, resolveAfter))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s.Handler())
		c := NewClient(ts.URL)
		c.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
		shards = append(shards, s)
		https = append(https, ts)
		clients = append(clients, c)
		addrs[id] = ts.URL
	}
	for _, s := range shards {
		if err := s.SetPeers(addrs); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for i := range shards {
			https[i].Close()
			shards[i].Close()
		}
	})
	return shards, https, clients, addrs, dict, sources, initial
}

// waitTxnStatus polls /txn/status until it reports want.
func waitTxnStatus(t *testing.T, c *Client, id, want string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.TxnStatus(context.Background(), id)
		if err == nil && st.Status == want {
			return
		}
		if time.Now().After(deadline) {
			got := "<error>"
			if st != nil {
				got = st.Status
			}
			t.Fatalf("txn %s status = %s (err %v), want %s", id, got, err, want)
		}
		time.Sleep(15 * time.Millisecond)
	}
}

// The satellite acceptance: a batch ID resent after a simulated router
// crash between prepare and commit is applied exactly once, across a
// shard crash in the middle, with the journal replay doing the
// resurrection.
func TestTxnCrashBetweenPrepareAndCommitAppliesOnce(t *testing.T) {
	dataDir := t.TempDir()
	// The resolver must not race this test's explicit marks.
	shards, https, clients, addrs, dict, sources, initial := txnFleet(t, 2, dataDir, time.Hour)
	owner := cluster.OwnerOf(cluster.FleetRanges(2), "http://ds1/a1")
	c := clients[owner]
	waitLinks(t, c, initial.Len())

	prep := cluster.TxnPrepare{
		ID:      "txn-crash-1",
		Owners:  []int{owner},
		Approve: false,
		Links:   []cluster.LinkWire{{E1: "http://ds1/a1", E2: "http://ds2/b1"}},
	}
	if st, err := c.TxnPrepare(context.Background(), prep); err != nil || st != http.StatusAccepted {
		t.Fatalf("prepare = %d, %v", st, err)
	}
	// The router retried (at-least-once): the resend must dedup, not
	// journal or pend a second copy.
	if st, err := c.TxnPrepare(context.Background(), prep); err != nil || st != http.StatusAccepted {
		t.Fatalf("prepare resend = %d, %v", st, err)
	}

	// Crash the owner before any commit arrives (the "router died between
	// prepare and commit" window, plus a shard crash for good measure).
	https[owner].Close()
	shards[owner].Abort()
	restartTxnShard(t, shards, https, clients, addrs, dict, sources, initial, owner, dataDir, time.Hour)
	c = clients[owner]

	// Exactly ONE prepare record must replay — the dedup kept the resend
	// out of the journal — and nothing may be applied yet.
	if rec := shards[owner].Recovery(); rec.Replayed != 1 {
		t.Fatalf("replayed %d journal records after prepare-only crash, want 1", rec.Replayed)
	}
	waitTxnStatus(t, c, prep.ID, cluster.TxnPrepared)
	waitLinks(t, c, initial.Len())

	// A post-crash prepare resend is still idempotent.
	if st, err := c.TxnPrepare(context.Background(), prep); err != nil || st != http.StatusAccepted {
		t.Fatalf("post-restart prepare resend = %d, %v", st, err)
	}

	// Commit applies the batch once; the resend answers from the
	// resolved table without reapplying.
	if st, err := c.TxnCommit(context.Background(), prep.ID); err != nil || st != http.StatusOK {
		t.Fatalf("commit = %d, %v", st, err)
	}
	waitLinks(t, c, initial.Len()-1)
	if st, err := c.TxnCommit(context.Background(), prep.ID); err != nil || st != http.StatusOK {
		t.Fatalf("commit resend = %d, %v", st, err)
	}
	// A late prepare resend for a resolved batch reports the outcome.
	if st, err := c.TxnPrepare(context.Background(), prep); err != nil || st != http.StatusOK {
		t.Fatalf("post-commit prepare resend = %d, %v", st, err)
	}
	waitLinks(t, c, initial.Len()-1)

	// Crash again: prepare + commit replay, the application survives,
	// and the batch stays exactly-once.
	https[owner].Close()
	shards[owner].Abort()
	restartTxnShard(t, shards, https, clients, addrs, dict, sources, initial, owner, dataDir, time.Hour)
	c = clients[owner]
	if rec := shards[owner].Recovery(); rec.Replayed != 2 {
		t.Fatalf("replayed %d journal records after commit crash, want 2 (prepare+commit)", rec.Replayed)
	}
	waitTxnStatus(t, c, prep.ID, cluster.TxnCommitted)
	waitLinks(t, c, initial.Len()-1)
	if st, err := c.TxnCommit(context.Background(), prep.ID); err != nil || st != http.StatusOK {
		t.Fatalf("post-replay commit resend = %d, %v", st, err)
	}
	waitLinks(t, c, initial.Len()-1)
}

// restartTxnShard rebuilds shard id on its original address and data
// directory, updating the harness slices in place.
func restartTxnShard(t *testing.T, shards []*Server, https []*httptest.Server, clients []*Client, addrs []string, dict *rdf.Dict, sources []federation.Source, initial links.Set, id int, dataDir string, resolveAfter time.Duration) {
	t.Helper()
	n := len(shards)
	s, err := New(txnShardEngine(dict, sources, initial, n, id), dict, sources, txnShardConfig(n, id, dataDir, resolveAfter))
	if err != nil {
		t.Fatal(err)
	}
	addr := strings.TrimPrefix(addrs[id], "http://")
	var l net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err = net.Listen("tcp", addr)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	ts := httptest.NewUnstartedServer(s.Handler())
	ts.Listener.Close()
	ts.Listener = l
	ts.Start()
	if err := s.SetPeers(addrs); err != nil {
		t.Fatal(err)
	}
	c := NewClient(addrs[id])
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
	shards[id], https[id], clients[id] = s, ts, c
	t.Cleanup(func() { ts.Close(); s.Close() })
}

// A fully-prepared batch whose router died before any commit must be
// committed by the owners' resolvers: each asks the other, sees
// "prepared" everywhere, and applies (all-or-nothing, the "all" side).
func TestTxnResolverCommitsFullyPrepared(t *testing.T) {
	_, _, clients, _, _, _, initial := txnFleet(t, 2, "", 150*time.Millisecond)
	ranges := cluster.FleetRanges(2)
	o1 := cluster.OwnerOf(ranges, "http://ds1/a1")
	o10 := cluster.OwnerOf(ranges, "http://ds1/a10")
	for _, c := range clients {
		waitLinks(t, c, initial.Len())
	}

	id := "txn-resolve-commit"
	owners := []int{0, 1}
	if st, err := clients[o1].TxnPrepare(context.Background(), cluster.TxnPrepare{
		ID: id, Owners: owners, Approve: false,
		Links: []cluster.LinkWire{{E1: "http://ds1/a1", E2: "http://ds2/b1"}},
	}); err != nil || st != http.StatusAccepted {
		t.Fatalf("prepare at owner %d = %d, %v", o1, st, err)
	}
	if st, err := clients[o10].TxnPrepare(context.Background(), cluster.TxnPrepare{
		ID: id, Owners: owners, Approve: false,
		Links: []cluster.LinkWire{{E1: "http://ds1/a10", E2: "http://ds2/b10"}},
	}); err != nil || st != http.StatusAccepted {
		t.Fatalf("prepare at owner %d = %d, %v", o10, st, err)
	}

	// No commit ever arrives; the resolvers must settle it to committed
	// on BOTH owners and the rejections must propagate fleet-wide.
	waitTxnStatus(t, clients[0], id, cluster.TxnCommitted)
	waitTxnStatus(t, clients[1], id, cluster.TxnCommitted)
	for _, c := range clients {
		waitLinks(t, c, initial.Len()-2)
	}
}

// A batch that prepared on only SOME owners (the router died mid-
// prepare, so the client never saw an ack) must abort everywhere: the
// prepared owner's resolver sees the other owner's "unknown" and drops
// the batch (all-or-nothing, the "nothing" side).
func TestTxnResolverAbortsPartialPrepare(t *testing.T) {
	_, _, clients, _, _, _, initial := txnFleet(t, 2, "", 150*time.Millisecond)
	ranges := cluster.FleetRanges(2)
	o1 := cluster.OwnerOf(ranges, "http://ds1/a1")
	for _, c := range clients {
		waitLinks(t, c, initial.Len())
	}

	id := "txn-resolve-abort"
	if st, err := clients[o1].TxnPrepare(context.Background(), cluster.TxnPrepare{
		ID: id, Owners: []int{0, 1}, Approve: false,
		Links: []cluster.LinkWire{{E1: "http://ds1/a1", E2: "http://ds2/b1"}},
	}); err != nil || st != http.StatusAccepted {
		t.Fatalf("prepare = %d, %v", st, err)
	}

	waitTxnStatus(t, clients[o1], id, cluster.TxnAborted)
	// Nothing was applied anywhere: the aborted slice's link survives.
	for _, c := range clients {
		waitLinks(t, c, initial.Len())
	}
}

// Checkpoints must not run while a prepare is unresolved (the journal
// reset would discard the acked batch), and resolved outcomes must ride
// inside the checkpoint so idempotency survives a checkpoint+restart.
func TestCheckpointSuppressedWhileTxnPending(t *testing.T) {
	dataDir := t.TempDir()
	shards, https, clients, addrs, dict, sources, initial := txnFleet(t, 1, dataDir, time.Hour)
	c := clients[0]
	waitLinks(t, c, initial.Len())

	prep := cluster.TxnPrepare{
		ID: "txn-ckpt", Owners: []int{0}, Approve: false,
		Links: []cluster.LinkWire{{E1: "http://ds1/a1", E2: "http://ds2/b1"}},
	}
	if st, err := c.TxnPrepare(context.Background(), prep); err != nil || st != http.StatusAccepted {
		t.Fatalf("prepare = %d, %v", st, err)
	}
	// With the prepare pending, a checkpoint attempt must refuse to run:
	// after a crash the prepare record must still replay. checkpoint is
	// writer-goroutine-only, so crash the writer first (Abort joins it,
	// leaving the journal as a real crash would) and drive the attempt
	// from here on the quiescent server.
	https[0].Close()
	shards[0].Abort()
	shards[0].checkpoint()
	restartTxnShard(t, shards, https, clients, addrs, dict, sources, initial, 0, dataDir, time.Hour)
	c = clients[0]
	if rec := shards[0].Recovery(); rec.Replayed != 1 {
		t.Fatalf("replayed %d records, want 1 — the checkpoint discarded a pending prepare", rec.Replayed)
	}
	waitTxnStatus(t, c, prep.ID, cluster.TxnPrepared)

	// Resolve it, checkpoint for real, restart: the outcome must come
	// back from the checkpoint envelope (no journal records left), so a
	// very late resend still answers "committed" instead of re-preparing.
	if st, err := c.TxnCommit(context.Background(), prep.ID); err != nil || st != http.StatusOK {
		t.Fatalf("commit = %d, %v", st, err)
	}
	waitLinks(t, c, initial.Len()-1)
	https[0].Close()
	shards[0].Abort()
	shards[0].checkpoint()
	restartTxnShard(t, shards, https, clients, addrs, dict, sources, initial, 0, dataDir, time.Hour)
	c = clients[0]
	rec := shards[0].Recovery()
	if rec.CheckpointSeq == 0 {
		t.Fatal("second checkpoint never happened")
	}
	if rec.Replayed != 0 {
		t.Fatalf("replayed %d records after checkpoint, want 0", rec.Replayed)
	}
	waitTxnStatus(t, c, prep.ID, cluster.TxnCommitted)
	if st, err := c.TxnPrepare(context.Background(), prep); err != nil || st != http.StatusOK {
		t.Fatalf("late prepare resend after checkpointed outcome = %d, %v", st, err)
	}
	waitLinks(t, c, initial.Len()-1)
}

// Unit coverage for the checkpoint envelope itself, including the
// legacy passthrough.
func TestCheckpointEnvelopeRoundTrip(t *testing.T) {
	s := &Server{
		txnPending: map[string]*txnEntry{},
		txnDone:    map[string]string{"t1": cluster.TxnCommitted, "t2": cluster.TxnAborted},
		txnOrder:   []string{"t1", "t2"},
	}
	engine := []byte("engine-gob-bytes")
	blob := s.wrapCheckpoint(engine)
	got, hdr, err := unwrapCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, engine) {
		t.Fatalf("engine bytes corrupted: %q", got)
	}
	if len(hdr.Resolved) != 2 || hdr.Resolved[0].ID != "t1" || hdr.Resolved[0].Status != cluster.TxnCommitted ||
		hdr.Resolved[1].ID != "t2" || hdr.Resolved[1].Status != cluster.TxnAborted {
		t.Fatalf("resolved table mangled: %+v", hdr.Resolved)
	}

	// A legacy checkpoint (raw engine gob, no magic) passes through.
	legacy := []byte{0x1f, 0x8b, 'g', 'o', 'b'}
	got, hdr, err = unwrapCheckpoint(legacy)
	if err != nil || !bytes.Equal(got, legacy) || hdr.Resolved != nil {
		t.Fatalf("legacy passthrough failed: %q, %+v, %v", got, hdr, err)
	}

	// Truncated envelopes fail loudly rather than feeding garbage to the
	// engine decoder.
	if _, _, err := unwrapCheckpoint(blob[:len(ckptMagic)+2]); err == nil {
		t.Fatal("truncated header accepted")
	}
}
