package server

import (
	"strings"
	"sync"
	"testing"
)

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_requests_total", "Requests.")
	g := r.Gauge("test_depth", "Depth.")
	r.GaugeFunc("test_version", "Version.", func() float64 { return 7 })
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})

	c.Add(3)
	g.Set(2.5)
	// Binary-exact observations keep the _sum line deterministic.
	h.Observe(0.0625) // bucket le=0.1
	h.Observe(0.5)    // bucket le=1
	h.Observe(5)      // overflow bucket

	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE test_requests_total counter",
		"test_requests_total 3",
		"# TYPE test_depth gauge",
		"test_depth 2.5",
		"test_version 7",
		"# TYPE test_latency_seconds histogram",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.5625",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Counter("dup", "y")
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{0.01, 0.1, 1})
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
	for i := 0; i < 90; i++ {
		h.Observe(0.005) // le=0.01
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.5) // le=1
	}
	if q := h.Quantile(0.5); q != 0.01 {
		t.Fatalf("p50 = %v, want 0.01", q)
	}
	if q := h.Quantile(0.99); q != 1 {
		t.Fatalf("p99 = %v, want 1", q)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
}

func TestInstrumentsConcurrentSafety(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c", "")
	h := r.Histogram("h", "", nil)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || h.Count() != 8000 {
		t.Fatalf("counter = %d, hist count = %d", c.Value(), h.Count())
	}
}
