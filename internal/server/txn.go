// Cross-shard transaction manager: the owner side of the fleet's
// prepare/commit feedback protocol (see internal/cluster/txn.go for
// the protocol and DESIGN.md for the decision record).
//
// A prepare journals the owner's slice of a cross-shard batch — typed
// wal record, fsynced before the 202 leaves, exactly the contract of a
// plain /feedback ack — but does NOT apply it. The links enter the
// engine only when the commit mark arrives (from the router, or from
// this shard's own resolver after consulting its peers). Both the
// pending table and the resolved-outcome table are guarded by logMu:
// every transition journals, so the journal lock is the natural owner,
// and it keeps the queue-capacity reservation of Server.accept intact
// on the commit path.
//
// Crash safety: prepares and marks are journal records, so restart
// replays them back into the same tables. Checkpoints are suppressed
// while any prepare is unresolved (a checkpoint resets the journal,
// which would silently discard the prepared batch), and resolved
// outcomes ride inside the checkpoint blob (wrapCheckpoint) so a
// resend of an already-resolved transaction stays idempotent across
// restarts.
package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"alex/internal/cluster"
	"alex/internal/wal"
)

// txnEntry is one prepared-but-unresolved transaction: the wire form
// (for peers asking /txn/status and for the resolver's owner list) plus
// the resolved feedback item, ready to enqueue the moment the commit
// mark lands.
type txnEntry struct {
	prepare    cluster.TxnPrepare
	item       feedbackItem
	preparedAt time.Time
}

// txnKeepResolved bounds the resolved-outcome table. Outcomes are kept
// so prepare/commit resends stay idempotent and so peers recovering a
// long time later can still learn the verdict; the bound only matters
// for a shard that lived through that many cross-shard batches, by
// which point any peer still pending on the oldest one has been dead
// for far longer than the resolution grace period.
const txnKeepResolved = 4096

// defaultTxnResolveAfter is the grace period before a shard consults
// its peers about an unresolved prepare. It must exceed the router's
// prepare deadline: the decision rule reads a peer's "unknown" as
// "never prepared", which is only sound once no prepare can still be
// in flight.
const defaultTxnResolveAfter = 10 * time.Second

// txnStatusTimeout bounds one /txn/status probe to a peer.
const txnStatusTimeout = 2 * time.Second

type txnMetrics struct {
	prepares *Counter
	commits  *Counter
	aborts   *Counter
	resolved *Counter
	dedups   *Counter
	errors   *Counter
	stalls   *Counter
}

func (s *Server) registerTxnMetrics() {
	m := &s.txnMetrics
	m.prepares = s.reg.Counter("alexd_txn_prepares_total", "Cross-shard transaction prepares journaled.")
	m.commits = s.reg.Counter("alexd_txn_commits_total", "Cross-shard transactions committed (links applied).")
	m.aborts = s.reg.Counter("alexd_txn_aborts_total", "Cross-shard transactions aborted (links dropped).")
	m.resolved = s.reg.Counter("alexd_txn_resolved_total", "Unresolved prepares decided by peer consultation.")
	m.dedups = s.reg.Counter("alexd_txn_dedups_total", "Duplicate prepare/commit requests answered from the tables.")
	m.errors = s.reg.Counter("alexd_txn_errors_total", "Transaction journal appends that failed.")
	m.stalls = s.reg.Counter("alexd_txn_resolve_stalls_total", "Resolution rounds postponed because a peer was unreachable.")
	s.reg.GaugeFunc("alexd_txn_pending", "Prepared transactions awaiting an outcome.", func() float64 {
		s.logMu.Lock()
		defer s.logMu.Unlock()
		return float64(len(s.txnPending))
	})
}

// txnResolveAfter returns the configured grace period (fleet shards
// only; callers check s.fleet first).
func (s *Server) txnResolveAfter() time.Duration {
	if s.fleet != nil && s.fleet.TxnResolveAfter > 0 {
		return s.fleet.TxnResolveAfter
	}
	return defaultTxnResolveAfter
}

// prepareTxn journals req as a prepared transaction. It returns the
// transaction's status after the call: TxnPrepared (freshly journaled
// or an idempotent resend), TxnCommitted (already resolved; the resend
// arrived late) or TxnAborted. A non-nil error carries the HTTP status
// to relay (503 journal failure, 429 queue full on the in-memory
// path).
func (s *Server) prepareTxn(req cluster.TxnPrepare, item feedbackItem) (string, int, error) {
	payload, err := json.Marshal(req)
	if err != nil {
		return "", http.StatusBadRequest, err
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if st, ok := s.txnDone[req.ID]; ok {
		s.txnMetrics.dedups.Inc()
		return st, 0, nil
	}
	if _, ok := s.txnPending[req.ID]; ok {
		s.txnMetrics.dedups.Inc()
		return cluster.TxnPrepared, 0, nil
	}
	if s.log != nil {
		start := time.Now()
		_, err := s.log.Append(wal.EncodeTyped(wal.KindPrepare, payload))
		s.metrics.journalFsync.Observe(time.Since(start).Seconds())
		if err != nil {
			s.metrics.journalErrors.Inc()
			s.txnMetrics.errors.Inc()
			return "", http.StatusServiceUnavailable, fmt.Errorf("prepare not durable: %v", err)
		}
	}
	s.txnPending[req.ID] = &txnEntry{prepare: req, item: item, preparedAt: time.Now()}
	s.txnMetrics.prepares.Inc()
	return cluster.TxnPrepared, 0, nil
}

// commitTxn resolves a prepared transaction to committed: journal the
// mark, move the entry to the resolved table and enqueue its feedback
// item for the writer. Idempotent; the returned status is
// TxnCommitted on success (including resends), TxnAborted when the
// transaction already resolved the other way, TxnUnknown when it was
// never prepared here. A non-nil error carries the HTTP status to
// relay and leaves the transaction pending (the caller retries).
func (s *Server) commitTxn(id string) (string, int, error) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if st, ok := s.txnDone[id]; ok {
		s.txnMetrics.dedups.Inc()
		return st, 0, nil
	}
	e, ok := s.txnPending[id]
	if !ok {
		return cluster.TxnUnknown, 0, nil
	}
	// The commit enqueues: reserve the queue slot under logMu exactly as
	// Server.accept does, so the mark is never journaled for an item
	// that then has nowhere to go.
	if len(s.queue) == cap(s.queue) {
		s.metrics.feedbackThrottled.Inc()
		return "", http.StatusTooManyRequests, fmt.Errorf("feedback queue full, retry later")
	}
	it := e.item
	if s.log != nil {
		payload, err := json.Marshal(cluster.TxnMark{ID: id})
		if err != nil {
			return "", http.StatusInternalServerError, err
		}
		start := time.Now()
		seq, err := s.log.Append(wal.EncodeTyped(wal.KindCommit, payload))
		s.metrics.journalFsync.Observe(time.Since(start).Seconds())
		if err != nil {
			s.metrics.journalErrors.Inc()
			s.txnMetrics.errors.Inc()
			return "", http.StatusServiceUnavailable, fmt.Errorf("commit not durable: %v", err)
		}
		it.seq = seq
	}
	delete(s.txnPending, id)
	s.markResolved(id, cluster.TxnCommitted)
	s.queue <- it // fits: capacity checked above, under logMu
	s.metrics.feedbackQueued.Inc()
	s.txnMetrics.commits.Inc()
	return cluster.TxnCommitted, 0, nil
}

// abortTxn resolves a prepared transaction to aborted: journal the
// mark and drop the entry. Unknown transactions answer aborted without
// journaling (presumed abort — there is nothing to undo). A non-nil
// error leaves the transaction pending.
func (s *Server) abortTxn(id string) (string, int, error) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if st, ok := s.txnDone[id]; ok {
		s.txnMetrics.dedups.Inc()
		return st, 0, nil
	}
	if _, ok := s.txnPending[id]; !ok {
		return cluster.TxnAborted, 0, nil
	}
	if s.log != nil {
		payload, err := json.Marshal(cluster.TxnMark{ID: id})
		if err != nil {
			return "", http.StatusInternalServerError, err
		}
		start := time.Now()
		_, err = s.log.Append(wal.EncodeTyped(wal.KindAbort, payload))
		s.metrics.journalFsync.Observe(time.Since(start).Seconds())
		if err != nil {
			s.metrics.journalErrors.Inc()
			s.txnMetrics.errors.Inc()
			return "", http.StatusServiceUnavailable, fmt.Errorf("abort not durable: %v", err)
		}
	}
	delete(s.txnPending, id)
	s.markResolved(id, cluster.TxnAborted)
	s.txnMetrics.aborts.Inc()
	return cluster.TxnAborted, 0, nil
}

// markResolved records an outcome in the bounded resolved table.
// Callers hold logMu.
func (s *Server) markResolved(id, status string) {
	if _, ok := s.txnDone[id]; ok {
		return
	}
	s.txnDone[id] = status
	s.txnOrder = append(s.txnOrder, id)
	for len(s.txnOrder) > txnKeepResolved {
		delete(s.txnDone, s.txnOrder[0])
		s.txnOrder = s.txnOrder[1:]
	}
}

// txnStatus reports a transaction's status as this shard knows it.
func (s *Server) txnStatus(id string) string {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if st, ok := s.txnDone[id]; ok {
		return st
	}
	if _, ok := s.txnPending[id]; ok {
		return cluster.TxnPrepared
	}
	return cluster.TxnUnknown
}

// ---- HTTP handlers ----

func (s *Server) handleTxnPrepare(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req cluster.TxnPrepare
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.ID == "" || len(req.Links) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "transaction needs an id and links"})
		return
	}
	item := feedbackItem{positive: req.Approve}
	for _, lw := range req.Links {
		// Same ownership gate as /feedback: preparing a foreign link
		// would fork ownership (see handleFeedback).
		if s.fleet != nil {
			if owner := cluster.OwnerOf(s.ranges, lw.E1); owner != s.fleet.ShardID {
				writeJSON(w, http.StatusBadRequest, errorResponse{
					Error: fmt.Sprintf("link %q belongs to shard %d, this is shard %d", lw.E1, owner, s.fleet.ShardID),
				})
				return
			}
		}
		l, err := s.resolveLink(LinkJSON{E1: lw.E1, E2: lw.E2})
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		item.links = append(item.links, l)
	}
	st, code, err := s.prepareTxn(req, item)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}
	if st == cluster.TxnCommitted {
		writeJSON(w, http.StatusOK, cluster.TxnStatusReply{ID: req.ID, Status: st})
		return
	}
	if st == cluster.TxnAborted {
		writeJSON(w, http.StatusConflict, cluster.TxnStatusReply{ID: req.ID, Status: st})
		return
	}
	// The 202 is the durability ack: prepareTxn appended and fsynced the
	// prepare record before returning (ackorder's contract).
	writeJSON(w, http.StatusAccepted, cluster.TxnStatusReply{ID: req.ID, Status: st})
}

func (s *Server) handleTxnCommit(w http.ResponseWriter, r *http.Request) {
	s.handleTxnMark(w, r, s.commitTxn)
}

func (s *Server) handleTxnAbort(w http.ResponseWriter, r *http.Request) {
	s.handleTxnMark(w, r, s.abortTxn)
}

func (s *Server) handleTxnMark(w http.ResponseWriter, r *http.Request, mark func(string) (string, int, error)) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req cluster.TxnMark
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.ID == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "transaction needs an id"})
		return
	}
	st, code, err := mark(req.ID)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, code, errorResponse{Error: err.Error()})
		return
	}
	switch st {
	case cluster.TxnUnknown:
		writeJSON(w, http.StatusNotFound, cluster.TxnStatusReply{ID: req.ID, Status: st})
	default:
		writeJSON(w, http.StatusOK, cluster.TxnStatusReply{ID: req.ID, Status: st})
	}
}

func (s *Server) handleTxnStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "id query parameter required"})
		return
	}
	writeJSON(w, http.StatusOK, cluster.TxnStatusReply{ID: id, Status: s.txnStatus(id)})
}

// ---- startup replay ----

// replayTxnRecord folds one typed journal record back into the
// transaction tables during recovery. Prepare records re-pend (their
// grace period restarts — the peers may still be recovering too);
// marks re-resolve, and a commit mark applies the pended item through
// the same episode batching as live traffic.
func (s *Server) replayTxnRecord(kind wal.Kind, rec wal.Record, body []byte) error {
	switch kind {
	case wal.KindPrepare:
		var req cluster.TxnPrepare
		if err := json.Unmarshal(body, &req); err != nil {
			return fmt.Errorf("server: journal record %d: %w", rec.Seq, err)
		}
		if _, ok := s.txnDone[req.ID]; ok {
			return nil // resolved by a later mark the checkpoint kept
		}
		item := feedbackItem{positive: req.Approve}
		for _, lw := range req.Links {
			l, err := s.resolveLink(LinkJSON{E1: lw.E1, E2: lw.E2})
			if err != nil {
				return fmt.Errorf("server: journal record %d: %w (were the datasets loaded identically?)", rec.Seq, err)
			}
			item.links = append(item.links, l)
		}
		s.txnPending[req.ID] = &txnEntry{prepare: req, item: item, preparedAt: time.Now()}
	case wal.KindCommit:
		var m cluster.TxnMark
		if err := json.Unmarshal(body, &m); err != nil {
			return fmt.Errorf("server: journal record %d: %w", rec.Seq, err)
		}
		if e, ok := s.txnPending[m.ID]; ok {
			delete(s.txnPending, m.ID)
			it := e.item
			it.seq = rec.Seq
			s.applyItem(it)
		}
		s.markResolved(m.ID, cluster.TxnCommitted)
	case wal.KindAbort:
		var m cluster.TxnMark
		if err := json.Unmarshal(body, &m); err != nil {
			return fmt.Errorf("server: journal record %d: %w", rec.Seq, err)
		}
		delete(s.txnPending, m.ID)
		s.markResolved(m.ID, cluster.TxnAborted)
	default:
		return fmt.Errorf("server: journal record %d: unknown record kind %q", rec.Seq, kind)
	}
	return nil
}

// ---- checkpoint envelope ----

// ckptMagic marks a checkpoint blob that carries a server-level header
// (resolved transaction outcomes) ahead of the engine state. Legacy
// checkpoints are bare engine gobs, which cannot start with these
// bytes.
var ckptMagic = []byte("ALEXCKPT")

// ckptHeader is the server-level checkpoint header.
type ckptHeader struct {
	// Resolved is the outcome table in resolution order, so pruning
	// order survives the round trip.
	Resolved []cluster.TxnStatusReply `json:"resolved,omitempty"`
}

// wrapCheckpoint prefixes the engine blob with the server-level header.
// Callers hold logMu (the tables must be consistent with the journal
// reset that follows).
func (s *Server) wrapCheckpoint(engine []byte) []byte {
	hdr := ckptHeader{}
	for _, id := range s.txnOrder {
		hdr.Resolved = append(hdr.Resolved, cluster.TxnStatusReply{ID: id, Status: s.txnDone[id]})
	}
	hb, err := json.Marshal(hdr)
	if err != nil {
		// Marshal of plain structs cannot fail; keep the checkpoint
		// usable regardless.
		hb = []byte("{}")
	}
	buf := make([]byte, 0, len(ckptMagic)+4+len(hb)+len(engine))
	buf = append(buf, ckptMagic...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(hb)))
	buf = append(buf, hb...)
	buf = append(buf, engine...)
	return buf
}

// unwrapCheckpoint splits a checkpoint blob into the engine state and
// the server header, accepting legacy blobs without one.
func unwrapCheckpoint(state []byte) ([]byte, ckptHeader, error) {
	var hdr ckptHeader
	if !bytes.HasPrefix(state, ckptMagic) {
		return state, hdr, nil
	}
	rest := state[len(ckptMagic):]
	if len(rest) < 4 {
		return nil, hdr, fmt.Errorf("server: checkpoint header truncated")
	}
	n := binary.LittleEndian.Uint32(rest)
	rest = rest[4:]
	if uint32(len(rest)) < n {
		return nil, hdr, fmt.Errorf("server: checkpoint header truncated")
	}
	if err := json.Unmarshal(rest[:n], &hdr); err != nil {
		return nil, hdr, fmt.Errorf("server: checkpoint header: %w", err)
	}
	return rest[n:], hdr, nil
}

// ---- resolver ----

// txnResolver is the fleet shard's third long-lived goroutine: it
// watches for prepares that outlived the grace period without a mark —
// the router died, or the mark was lost — and settles them by asking
// the other owners. Same lifecycle discipline as the writer and
// replicator.
func (s *Server) txnResolver() {
	defer close(s.txnResolveDone)
	interval := s.txnResolveAfter() / 2
	if interval < 25*time.Millisecond {
		interval = 25 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.die:
			return // simulated crash
		case <-tick.C:
			s.resolveTxns()
		}
	}
}

// resolveTxns runs one resolution round over every overdue prepare.
func (s *Server) resolveTxns() {
	grace := s.txnResolveAfter()
	s.logMu.Lock()
	var overdue []cluster.TxnPrepare
	for _, e := range s.txnPending {
		if time.Since(e.preparedAt) >= grace {
			overdue = append(overdue, e.prepare)
		}
	}
	s.logMu.Unlock()
	for _, p := range overdue {
		s.resolveTxn(p)
	}
}

// resolveTxn consults the transaction's other owners and applies the
// decision. Every peer must answer: an unreachable peer stalls the
// decision (its journal may hold the very prepare or mark that decides
// the outcome), and the round retries at the next tick.
func (s *Server) resolveTxn(p cluster.TxnPrepare) {
	var statuses []string
	for _, owner := range p.Owners {
		if owner == s.fleet.ShardID {
			continue
		}
		s.peerMu.Lock()
		c := s.peerClients[owner]
		s.peerMu.Unlock()
		if c == nil {
			s.txnMetrics.stalls.Inc()
			return // topology incomplete: cannot decide
		}
		ctx, cancel := context.WithTimeout(context.Background(), txnStatusTimeout)
		st, err := c.TxnStatus(ctx, p.ID)
		cancel()
		if err != nil {
			s.txnMetrics.stalls.Inc()
			return // unreachable peer: stall, retry next tick
		}
		statuses = append(statuses, st.Status)
	}
	switch cluster.DecideTxn(statuses) {
	case cluster.TxnCommitted:
		if _, _, err := s.commitTxn(p.ID); err == nil {
			s.txnMetrics.resolved.Inc()
		}
	case cluster.TxnAborted:
		if _, _, err := s.abortTxn(p.ID); err == nil {
			s.txnMetrics.resolved.Inc()
		}
	}
}
