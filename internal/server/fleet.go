// Fleet role of alexd: this file makes a Server one shard of a
// partitioned fleet (see internal/cluster's fleet wire types and
// internal/fleet's router).
//
// A shard owns the contiguous hash range cluster.FleetRanges(Shards)
// assigns to its ShardID: its engine explores only links whose E1
// entity hashes into that range, and /feedback rejects misrouted links
// outright (the router owes each link to exactly one shard — accepting
// a foreign link here would fork ownership and lose the link on the
// owner). Durability is unchanged: fsync-before-ack holds per shard,
// over the shard's own journal.
//
// Replication makes every shard able to serve a FULL read. After each
// episode the writer publishes a fresh snapshot and kicks the
// replicator, which pushes the shard's own link partition — a
// cluster.SnapshotManifest carrying the episode that produced it — to
// every peer, and pulls the peers' manifests back (the pull doubles as
// catch-up after a restart and as anti-entropy on a timer). A received
// manifest replaces the stored copy only when its episode is newer, so
// replays and reordered deliveries cannot roll a peer's links back.
// The served snapshot is the union of the shard's own candidates and
// the newest manifest from every peer; queries and /links never
// distinguish a shard from a standalone server.
//
// The replicator is a second long-lived goroutine beside the writer.
// It follows the same lifecycle discipline (defer close of its done
// channel, select on stop/die), and it never touches the engine: it
// reads published snapshots and the peer table, so the single-writer
// invariant stands. When a manifest is applied outside an episode
// boundary the writer is asked — via the repub channel — to republish,
// keeping publication itself writer-only.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"alex/internal/cluster"
	"alex/internal/links"
	"alex/internal/rdf"
)

// FleetConfig makes the server one shard of a fleet.
type FleetConfig struct {
	// ShardID is this shard's index into cluster.FleetRanges(Shards).
	ShardID int
	// Shards is the fleet size.
	Shards int
	// ReplicateEvery is the anti-entropy interval: how often the
	// replicator pushes/pulls snapshots absent episode activity.
	// 0 means 2s.
	ReplicateEvery time.Duration
	// Routers lists router addresses to push health transitions to
	// (POST /router/health on startup and graceful shutdown), so
	// failover reacts in milliseconds instead of a poll interval.
	// Best-effort: an unreachable router just waits for its next poll.
	Routers []string
	// TxnResolveAfter is the grace period before an unresolved prepared
	// transaction is settled by consulting its peer owners. It must
	// exceed the router's prepare deadline (see txn.go); 0 means 10s.
	TxnResolveAfter time.Duration
}

const defaultReplicateEvery = 2 * time.Second

// replicaRPCTimeout bounds one push or pull to a single peer, so a hung
// peer cannot stall the whole replication round past the next tick.
const replicaRPCTimeout = 5 * time.Second

func (fc *FleetConfig) validate() error {
	if fc.Shards < 1 {
		return fmt.Errorf("server: fleet needs at least 1 shard, got %d", fc.Shards)
	}
	if fc.ShardID < 0 || fc.ShardID >= fc.Shards {
		return fmt.Errorf("server: shard ID %d out of range for %d shards", fc.ShardID, fc.Shards)
	}
	return nil
}

// peerState is the newest manifest accepted from one peer, with its
// links resolved into this shard's dictionary. The set is frozen at
// acceptance; publish unions it into served snapshots without copying.
type peerState struct {
	episode int
	version uint64
	links   links.Set
}

// initFleet wires the fleet role into a freshly constructed server (New
// only, before the writer and replicator goroutines start).
func (s *Server) initFleet(fc *FleetConfig) error {
	if err := fc.validate(); err != nil {
		return err
	}
	c := *fc
	if c.ReplicateEvery <= 0 {
		c.ReplicateEvery = defaultReplicateEvery
	}
	s.fleet = &c
	s.ranges = cluster.FleetRanges(c.Shards)
	s.peerSets = make(map[int]peerState)
	s.peerClients = make(map[int]*Client)
	s.kick = make(chan struct{}, 1)
	s.repub = make(chan struct{}, 1)
	s.repDone = make(chan struct{})
	s.registerFleetMetrics()
	return nil
}

func (s *Server) registerFleetMetrics() {
	m := &s.fleetMetrics
	m.pushes = s.reg.Counter("alexd_replica_pushes_total", "Snapshot manifests pushed to peers.")
	m.pushErrors = s.reg.Counter("alexd_replica_push_errors_total", "Manifest pushes that failed.")
	m.pulls = s.reg.Counter("alexd_replica_pulls_total", "Snapshot manifests pulled from peers.")
	m.pullErrors = s.reg.Counter("alexd_replica_pull_errors_total", "Manifest pulls that failed.")
	m.applied = s.reg.Counter("alexd_replica_applied_total", "Peer manifests accepted (newer episode than the stored copy).")
	m.rejected = s.reg.Counter("alexd_replica_rejected_total", "Peer manifests refused (bad shard, unknown entity).")
	s.reg.GaugeFunc("alexd_shard_id", "This shard's ID within the fleet.", func() float64 {
		return float64(s.fleet.ShardID)
	})
	s.reg.GaugeFunc("alexd_shard_own_links", "Candidate links of this shard's own partition.", func() float64 {
		return float64(s.Snapshot().Own.Len())
	})
	for id := 0; id < s.fleet.Shards; id++ {
		if id == s.fleet.ShardID {
			continue
		}
		id := id
		s.reg.LabeledGaugeFunc("alexd_peer_episode",
			fmt.Sprintf("peer=\"%d\"", id),
			"Episode of the newest manifest accepted from each peer.",
			func() float64 {
				s.peerMu.Lock()
				defer s.peerMu.Unlock()
				return float64(s.peerSets[id].episode)
			})
	}
}

type fleetMetrics struct {
	pushes     *Counter
	pushErrors *Counter
	pulls      *Counter
	pullErrors *Counter
	applied    *Counter
	rejected   *Counter
}

// SetPeers installs the peer address list, indexed by shard ID (the
// entry at this shard's own ID is ignored; empty entries disable that
// peer). It may be called at any time — test fleets only learn their
// URLs after binding — and kicks an immediate replication round so a
// freshly (re)started shard catches up without waiting for the timer.
func (s *Server) SetPeers(addrs []string) error {
	if s.fleet == nil {
		return fmt.Errorf("server: not a fleet shard")
	}
	if len(addrs) != s.fleet.Shards {
		return fmt.Errorf("server: got %d peer addresses for %d shards", len(addrs), s.fleet.Shards)
	}
	clients := make(map[int]*Client)
	for id, addr := range addrs {
		if id == s.fleet.ShardID || addr == "" {
			continue
		}
		clients[id] = NewClient(addr)
	}
	s.peerMu.Lock()
	s.peerClients = clients
	s.peerMu.Unlock()
	s.kickReplicator()
	return nil
}

// healthPushTimeout bounds one router health notification; the push is
// an optimization over polling, never worth stalling startup/shutdown.
const healthPushTimeout = 500 * time.Millisecond

// notifyRouters pushes a health transition ("up" or "down") to every
// configured router. Best-effort and synchronous: failures are dropped
// (the router's poll loop remains the source of truth) and the short
// per-router timeout bounds the total cost.
func (s *Server) notifyRouters(status string) {
	if s.fleet == nil || len(s.fleet.Routers) == 0 {
		return
	}
	body, err := json.Marshal(cluster.HealthPush{ShardID: s.fleet.ShardID, Status: status})
	if err != nil {
		return
	}
	for _, addr := range s.fleet.Routers {
		base := addr
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		ctx, cancel := context.WithTimeout(context.Background(), healthPushTimeout)
		req, err := http.NewRequestWithContext(ctx, http.MethodPost,
			strings.TrimRight(base, "/")+"/router/health", bytes.NewReader(body))
		if err != nil {
			cancel()
			continue
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close() // response body fully drained; nothing useful in the error
		}
		cancel()
	}
}

// kickReplicator asks the replicator for an immediate round; a pending
// kick coalesces.
func (s *Server) kickReplicator() {
	if s.fleet == nil {
		return
	}
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// replicator is the fleet's second long-lived goroutine: on every kick
// (episode published, peers changed) and every ReplicateEvery tick it
// pushes this shard's manifest to all peers and pulls theirs back.
func (s *Server) replicator() {
	defer close(s.repDone)
	tick := time.NewTicker(s.fleet.ReplicateEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-s.die:
			return // simulated crash, same as the writer
		case <-s.kick:
			s.replicate()
		case <-tick.C:
			s.replicate()
		}
	}
}

// replicate runs one push+pull round against every configured peer.
func (s *Server) replicate() {
	s.peerMu.Lock()
	clients := make(map[int]*Client, len(s.peerClients))
	for id, c := range s.peerClients {
		clients[id] = c
	}
	s.peerMu.Unlock()
	if len(clients) == 0 {
		return
	}
	own := s.Manifest()
	for id, c := range clients {
		ctx, cancel := context.WithTimeout(context.Background(), replicaRPCTimeout)
		if _, err := c.ReplicaPush(ctx, own); err != nil {
			s.fleetMetrics.pushErrors.Inc()
		} else {
			s.fleetMetrics.pushes.Inc()
		}
		m, err := c.ReplicaSnapshot(ctx)
		cancel()
		if err != nil {
			s.fleetMetrics.pullErrors.Inc()
			continue
		}
		s.fleetMetrics.pulls.Inc()
		if m.ShardID != id {
			s.fleetMetrics.rejected.Inc()
			continue // address list and fleet topology disagree
		}
		s.applyManifest(*m) //nolint:errcheck // counted inside; a bad peer manifest must not stop the round
	}
}

// Manifest renders the shard's own link partition for the replication
// wire, from the published snapshot (never from the engine — the
// replicator and HTTP handlers must not touch it).
func (s *Server) Manifest() cluster.SnapshotManifest {
	snap := s.Snapshot()
	m := cluster.SnapshotManifest{
		ShardID: s.fleet.ShardID,
		Range:   s.ranges[s.fleet.ShardID],
		Episode: snap.Episode,
		Version: snap.Version,
	}
	for _, l := range snap.Own.Slice() {
		m.Links = append(m.Links, cluster.LinkWire{
			E1: s.dict.Term(l.E1).Value,
			E2: s.dict.Term(l.E2).Value,
		})
	}
	return m
}

// applyManifest accepts a peer's manifest: resolve its links into this
// shard's dictionary and store it if it is newer than the held copy.
// Returns whether the manifest replaced the stored one. An unknown
// entity rejects the whole manifest — shards load identical datasets,
// so a miss means the fleet is misconfigured and silently dropping the
// link would be worse than refusing loudly.
func (s *Server) applyManifest(m cluster.SnapshotManifest) (bool, error) {
	if s.fleet == nil {
		return false, fmt.Errorf("server: not a fleet shard")
	}
	if m.ShardID < 0 || m.ShardID >= s.fleet.Shards {
		s.fleetMetrics.rejected.Inc()
		return false, fmt.Errorf("server: manifest from shard %d, fleet has %d", m.ShardID, s.fleet.Shards)
	}
	if m.ShardID == s.fleet.ShardID {
		s.fleetMetrics.rejected.Inc()
		return false, fmt.Errorf("server: manifest claims to be from this shard (%d)", m.ShardID)
	}
	set := links.NewSet()
	for _, lw := range m.Links {
		e1, ok := s.dict.Lookup(rdf.IRI(lw.E1))
		if !ok {
			s.fleetMetrics.rejected.Inc()
			return false, fmt.Errorf("server: manifest from shard %d names unknown entity %q (were the datasets loaded identically?)", m.ShardID, lw.E1)
		}
		e2, ok := s.dict.Lookup(rdf.IRI(lw.E2))
		if !ok {
			s.fleetMetrics.rejected.Inc()
			return false, fmt.Errorf("server: manifest from shard %d names unknown entity %q (were the datasets loaded identically?)", m.ShardID, lw.E2)
		}
		set.Add(links.Link{E1: e1, E2: e2})
	}
	s.peerMu.Lock()
	held, ok := s.peerSets[m.ShardID]
	newer := !ok || m.Episode > held.episode ||
		(m.Episode == held.episode && m.Version > held.version)
	if newer {
		s.peerSets[m.ShardID] = peerState{episode: m.Episode, version: m.Version, links: set}
	}
	s.peerMu.Unlock()
	if !newer {
		return false, nil
	}
	s.fleetMetrics.applied.Inc()
	// Publication is writer-only; ask it to fold the new peer links into
	// a fresh snapshot. A pending request coalesces.
	select {
	case s.repub <- struct{}{}:
	default:
	}
	return true, nil
}

// peerUnion folds the newest accepted peer manifests into own,
// returning the full served link set (own itself when there are no
// peers, so standalone publication pays nothing).
func (s *Server) peerUnion(own links.Set) links.Set {
	if s.fleet == nil {
		return own
	}
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	if len(s.peerSets) == 0 {
		return own
	}
	full := own.Clone()
	for _, ps := range s.peerSets {
		for l := range ps.links {
			full.Add(l)
		}
	}
	return full
}

// peerHealth reports the newest accepted manifest per peer, for
// /healthz. Sorted by shard ID.
func (s *Server) peerHealth() []PeerHealth {
	s.peerMu.Lock()
	defer s.peerMu.Unlock()
	out := make([]PeerHealth, 0, len(s.peerSets))
	for id := 0; id < s.fleet.Shards; id++ {
		ps, ok := s.peerSets[id]
		if !ok {
			continue
		}
		out = append(out, PeerHealth{ShardID: id, Episode: ps.episode, Links: ps.links.Len()})
	}
	return out
}

// replicaPushResponse acknowledges a pushed manifest.
type replicaPushResponse struct {
	// Applied is false when the manifest was valid but stale (the
	// receiver already holds a newer episode from that shard).
	Applied bool `json:"applied"`
}

// handleReplicaSnapshot serves this shard's own link partition (GET
// /replica/snapshot) for peers catching up by pull.
func (s *Server) handleReplicaSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	if s.fleet == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "not a fleet shard"})
		return
	}
	writeJSON(w, http.StatusOK, s.Manifest())
}

// handleReplicaPush accepts a peer's manifest (POST /replica/push).
func (s *Server) handleReplicaPush(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	if s.fleet == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{Error: "not a fleet shard"})
		return
	}
	var m cluster.SnapshotManifest
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	applied, err := s.applyManifest(m)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, replicaPushResponse{Applied: applied})
}
