// Package server is alexd's serving layer: a concurrent HTTP/JSON API
// over a running ALEX instance, exposing federated SPARQL queries and
// the answer-level feedback channel that drives the paper's exploration
// loop (§3.2).
//
// The architecture is single-writer / many-reader with snapshot
// isolation. Exactly one writer goroutine owns the *core.System: all
// feedback flows through a bounded queue into it, the writer brackets
// the feedback into episodes (BeginEpisode … FinishEpisode) and, after
// every episode, publishes an immutable Snapshot — the candidate link
// set plus a Federator frozen over it — through an atomic.Pointer.
// Query handlers load the current snapshot and evaluate against it
// without taking any lock, so readers never block on feedback
// processing and never observe a half-updated link set. A snapshot is
// never mutated after publication (federation.Federator.WithLinks
// enforces the frozen read path).
//
// Robustness is part of the design: per-request timeouts via context,
// backpressure (HTTP 429 + Retry-After when the feedback queue is
// full — feedback is acknowledged only after it is durably queued),
// panic-recovery middleware, graceful shutdown that drains queued
// feedback and finishes the open episode, and a built-in metrics
// registry exported at /metrics in Prometheus text format.
package server

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"alex/internal/core"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/rdf"
)

// Engine is the feedback-consuming side of the writer goroutine.
// *core.System satisfies it; tests substitute slow or instrumented
// implementations.
type Engine interface {
	BeginEpisode()
	Feedback(l links.Link, positive bool)
	FinishEpisode() core.EpisodeStats
	Candidates() links.Set
	CandidateCount() int
	Episode() int
}

// Config holds the serving-layer tunables.
type Config struct {
	// EpisodeSize is the number of link-level feedback items the writer
	// batches into one episode before improving the policy and
	// publishing a fresh snapshot.
	EpisodeSize int
	// QueueSize bounds the feedback queue (answer-level items). A full
	// queue yields 429 to clients, never a silent drop.
	QueueSize int
	// FlushInterval finishes a partially filled episode after this much
	// writer idle time, so low-traffic feedback still reaches the
	// published snapshot promptly.
	FlushInterval time.Duration
	// QueryTimeout caps per-request query evaluation time. Requests may
	// ask for less via timeout_ms, never more.
	QueryTimeout time.Duration
	// DrainTimeout bounds how long Close waits for the writer to drain
	// queued feedback and finish the open episode.
	DrainTimeout time.Duration
}

// DefaultConfig returns serving defaults suitable for interactive use.
func DefaultConfig() Config {
	return Config{
		EpisodeSize:   100,
		QueueSize:     1024,
		FlushInterval: 250 * time.Millisecond,
		QueryTimeout:  10 * time.Second,
		DrainTimeout:  10 * time.Second,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.EpisodeSize < 1 {
		c.EpisodeSize = d.EpisodeSize
	}
	if c.QueueSize < 1 {
		c.QueueSize = d.QueueSize
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = d.FlushInterval
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = d.QueryTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
	return c
}

// Snapshot is one published, immutable view of the link set: queries
// evaluate against Fed, /links serves Links. Both are frozen at
// publication time.
type Snapshot struct {
	Fed       *federation.Federator
	Links     links.Set
	Version   uint64
	Episode   int
	Published time.Time
}

// feedbackItem is one queued answer-level feedback: the links an answer
// row used, with one verdict for all of them.
type feedbackItem struct {
	links    []links.Link
	positive bool
}

// Server serves federated queries and routes feedback into ALEX.
type Server struct {
	cfg  Config
	eng  Engine
	dict *rdf.Dict
	base *federation.Federator

	snap    atomic.Pointer[Snapshot]
	queue   chan feedbackItem
	stop    chan struct{}
	done    chan struct{}
	closing sync.Once

	mux     http.Handler
	reg     *Registry
	metrics serverMetrics
}

type serverMetrics struct {
	queries           *Counter
	queryErrors       *Counter
	queryTimeouts     *Counter
	queryRows         *Counter
	queryDuration     *Histogram
	feedbackQueued    *Counter
	feedbackThrottled *Counter
	feedbackLinks     *Counter
	episodes          *Counter
	episodeDuration   *Histogram
	panics            *Counter
}

// New builds a Server over an engine and the federation sources the
// queries run against. All graphs must share dict. The writer goroutine
// starts immediately; the initial snapshot (version 1) is published
// before New returns, so queries are answerable at once.
func New(eng Engine, dict *rdf.Dict, sources []federation.Source, cfg Config) (*Server, error) {
	base := federation.New(dict)
	for _, src := range sources {
		if err := base.AddSource(src.Name, src.Graph); err != nil {
			return nil, err
		}
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:   cfg,
		eng:   eng,
		dict:  dict,
		base:  base,
		queue: make(chan feedbackItem, cfg.QueueSize),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
		reg:   NewRegistry(),
	}
	s.registerMetrics()
	s.publish(1)
	s.mux = s.routes()
	go s.writer()
	return s, nil
}

func (s *Server) registerMetrics() {
	m := &s.metrics
	m.queries = s.reg.Counter("alexd_queries_total", "Federated queries served.")
	m.queryErrors = s.reg.Counter("alexd_query_errors_total", "Queries rejected or failed (parse/eval errors).")
	m.queryTimeouts = s.reg.Counter("alexd_query_timeouts_total", "Queries abandoned on deadline.")
	m.queryRows = s.reg.Counter("alexd_query_rows_total", "Answer rows returned across all queries.")
	m.queryDuration = s.reg.Histogram("alexd_query_duration_seconds", "Query evaluation latency.", nil)
	m.feedbackQueued = s.reg.Counter("alexd_feedback_total", "Answer-level feedback items accepted into the queue.")
	m.feedbackThrottled = s.reg.Counter("alexd_feedback_throttled_total", "Feedback items refused with 429 (queue full).")
	m.feedbackLinks = s.reg.Counter("alexd_feedback_links_total", "Link-level feedback items applied by the writer.")
	m.episodes = s.reg.Counter("alexd_episodes_total", "Feedback episodes completed.")
	m.episodeDuration = s.reg.Histogram("alexd_episode_duration_seconds", "Episode duration from first feedback to policy improvement.", nil)
	m.panics = s.reg.Counter("alexd_http_panics_total", "Handler panics recovered.")
	s.reg.GaugeFunc("alexd_feedback_queue_depth", "Answer-level feedback items waiting for the writer.", func() float64 {
		return float64(len(s.queue))
	})
	s.reg.GaugeFunc("alexd_snapshot_version", "Version of the published snapshot.", func() float64 {
		return float64(s.Snapshot().Version)
	})
	s.reg.GaugeFunc("alexd_snapshot_age_seconds", "Seconds since the current snapshot was published.", func() float64 {
		return time.Since(s.Snapshot().Published).Seconds()
	})
	s.reg.GaugeFunc("alexd_candidate_links", "Candidate links in the published snapshot.", func() float64 {
		return float64(s.Snapshot().Links.Len())
	})
}

// Snapshot returns the currently published snapshot. The result is
// immutable; it remains valid (and consistent) for as long as the
// caller holds it, even across later publications.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Handler returns the root HTTP handler (all routes, middleware
// applied).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry, so embedders can add their own
// instruments next to the server's.
func (s *Server) Registry() *Registry { return s.reg }

// publish builds a fresh immutable snapshot from the engine's current
// candidate set. Writer-goroutine only (plus once from New, before the
// writer starts).
func (s *Server) publish(version uint64) {
	cands := s.eng.Candidates()
	s.snap.Store(&Snapshot{
		Fed:       s.base.WithLinks(cands),
		Links:     cands,
		Version:   version,
		Episode:   s.eng.Episode(),
		Published: time.Now(),
	})
}

// writer is the single goroutine that owns the engine: it applies
// queued feedback, brackets it into episodes, and publishes snapshots.
func (s *Server) writer() {
	defer close(s.done)
	var (
		pending int       // link-level items in the open episode
		epStart time.Time // when the open episode began
		version = s.Snapshot().Version
	)
	flush := time.NewTicker(s.cfg.FlushInterval)
	defer flush.Stop()

	finish := func() {
		if pending == 0 {
			return
		}
		s.eng.FinishEpisode()
		s.metrics.episodes.Inc()
		s.metrics.episodeDuration.Observe(time.Since(epStart).Seconds())
		pending = 0
		version++
		s.publish(version)
	}
	apply := func(it feedbackItem) {
		if pending == 0 {
			s.eng.BeginEpisode()
			epStart = time.Now()
		}
		for _, l := range it.links {
			s.eng.Feedback(l, it.positive)
			s.metrics.feedbackLinks.Inc()
			pending++
		}
		if pending >= s.cfg.EpisodeSize {
			finish()
		}
	}

	for {
		select {
		case it := <-s.queue:
			apply(it)
		case <-flush.C:
			finish()
		case <-s.stop:
			// Drain everything already acknowledged to clients, then
			// finish the open episode so no accepted feedback is lost.
			for {
				select {
				case it := <-s.queue:
					apply(it)
				default:
					finish()
					return
				}
			}
		}
	}
}

// enqueue offers an answer-level feedback item to the writer without
// blocking. ok=false means the queue is full and the item was NOT
// accepted (the HTTP layer turns that into 429 + Retry-After).
func (s *Server) enqueue(it feedbackItem) bool {
	select {
	case s.queue <- it:
		s.metrics.feedbackQueued.Inc()
		return true
	default:
		s.metrics.feedbackThrottled.Inc()
		return false
	}
}

// Close shuts the writer down gracefully: queued feedback is drained,
// the open episode finished, and a final snapshot published. It returns
// an error if the writer does not drain within DrainTimeout. Close is
// idempotent; after it returns, feedback is no longer processed (the
// HTTP handlers keep serving reads from the last snapshot).
func (s *Server) Close() error {
	s.closing.Do(func() { close(s.stop) })
	select {
	case <-s.done:
		return nil
	case <-time.After(s.cfg.DrainTimeout):
		return fmt.Errorf("server: writer did not drain within %s", s.cfg.DrainTimeout)
	}
}
