// Package server is alexd's serving layer: a concurrent HTTP/JSON API
// over a running ALEX instance, exposing federated SPARQL queries and
// the answer-level feedback channel that drives the paper's exploration
// loop (§3.2).
//
// The architecture is single-writer / many-reader with snapshot
// isolation. Exactly one writer goroutine owns the *core.System: all
// feedback flows through a bounded queue into it, the writer brackets
// the feedback into episodes (BeginEpisode … FinishEpisode) and, after
// every episode, publishes an immutable Snapshot — the candidate link
// set plus a Federator frozen over it — through an atomic.Pointer.
// Query handlers load the current snapshot and evaluate against it
// without taking any lock, so readers never block on feedback
// processing and never observe a half-updated link set. A snapshot is
// never mutated after publication (federation.Federator.WithLinks
// enforces the frozen read path).
//
// Robustness is part of the design, on both the write and read paths:
//
// Durability (write path): with a data directory configured, every
// accepted feedback item is appended to a write-ahead journal and
// fsynced BEFORE the 202 ack leaves the server, so the ack is a real
// durability promise — an acknowledged item survives any crash. The
// writer checkpoints full ALEX state (candidate links, policy returns,
// blacklist, rollback log) every CheckpointEvery episodes and again on
// graceful shutdown — but only once every journaled record has been
// applied, since a checkpoint resets the journal and must never strand
// a queued, already-acked item; restart loads the newest valid checkpoint and
// replays only the journal tail, idempotently (a clean shutdown needs
// no replay at all). Torn or corrupt journal tails are truncated on
// open. When the journal cannot be written, /feedback returns 503
// instead of lying with a 202.
//
// Fault tolerance (read path): each federated source runs behind a
// per-source deadline, bounded jittered retries and a circuit breaker
// (see internal/federation). Queries over a degraded federation return
// partial results with a degradation marker rather than failing, and
// /healthz reports per-source breaker state.
//
// Also: per-request timeouts via context, backpressure (HTTP 429 +
// Retry-After when the feedback queue is full), panic-recovery
// middleware, graceful shutdown that drains queued feedback and
// finishes the open episode, and a built-in metrics registry exported
// at /metrics in Prometheus text format.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"alex/internal/cluster"
	"alex/internal/core"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/store"
	"alex/internal/wal"
)

// Engine is the feedback-consuming side of the writer goroutine.
// *core.System satisfies it; tests substitute slow or instrumented
// implementations.
type Engine interface {
	BeginEpisode()
	Feedback(l links.Link, positive bool)
	FinishEpisode() core.EpisodeStats
	Candidates() links.Set
	CandidateCount() int
	Episode() int
}

// Checkpointer is the optional engine surface that enables full-state
// checkpoints. *core.System satisfies it (core/snapshot.go). Engines
// without it still get journaling, but every restart replays the whole
// journal from the initial state.
type Checkpointer interface {
	Save(w io.Writer) error
	Restore(r io.Reader) error
}

// Config holds the serving-layer tunables.
type Config struct {
	// EpisodeSize is the number of link-level feedback items the writer
	// batches into one episode before improving the policy and
	// publishing a fresh snapshot.
	EpisodeSize int
	// QueueSize bounds the feedback queue (answer-level items). A full
	// queue yields 429 to clients, never a silent drop.
	QueueSize int
	// FlushInterval finishes a partially filled episode after this much
	// writer idle time, so low-traffic feedback still reaches the
	// published snapshot promptly.
	FlushInterval time.Duration
	// QueryTimeout caps per-request query evaluation time. Requests may
	// ask for less via timeout_ms, never more.
	QueryTimeout time.Duration
	// DrainTimeout bounds how long Close waits for the writer to drain
	// queued feedback and finish the open episode.
	DrainTimeout time.Duration
	// DataDir, when non-empty, enables the write-ahead feedback journal
	// and state checkpoints in that directory. Empty keeps the pre-WAL
	// in-memory behavior (acks promise ordering, not durability).
	DataDir string
	// CheckpointEvery is how many completed episodes elapse between
	// checkpoints (plus one final checkpoint at graceful shutdown).
	CheckpointEvery int
	// FS overrides the journal's file operations; nil uses the real
	// file system. Fault-injection tests pass a faultfs.FS.
	FS wal.FS
	// Resilience tunes the fault-tolerant federation read path
	// (per-source deadlines, retries, circuit breakers). The zero value
	// means federation.DefaultResilience.
	Resilience federation.Resilience
	// QueryWorkers is the per-query evaluation parallelism; 0 means
	// GOMAXPROCS (see federation.Options.Workers).
	QueryWorkers int
	// PlanCacheSize bounds the LRU cache of compiled query plans shared
	// by all published snapshots; 0 or negative means
	// federation.DefaultPlanCacheSize.
	PlanCacheSize int
	// ReplanEvery enables adaptive query execution: after every
	// ReplanEvery executed pattern stages the evaluator re-ranks the
	// remaining patterns using observed cardinalities, and cached plans
	// learn cardinalities across requests. 0 keeps the static planner
	// (see federation.Options.ReplanEvery).
	ReplanEvery int
	// MaxConcurrentQueries caps in-flight /query evaluations; excess
	// requests wait for a slot until their deadline, then get 503 +
	// Retry-After. 0 means unlimited. Fleet routers use this so one
	// shard's overload surfaces as backpressure instead of timeouts.
	MaxConcurrentQueries int
	// Fleet, when non-nil, runs this server as one shard of a
	// partitioned fleet (see fleet.go). It owns a contiguous range of
	// the entity-hash space, replicates its link snapshot to peers and
	// serves full reads from the union.
	Fleet *FleetConfig
	// Stores, when non-nil, is the disk-backed segment store set behind
	// the federation sources (cmd/alexd -store=disk). The writer
	// compacts its write deltas into immutable segments at episode
	// boundaries and checkpoints it (delta + manifest only — segments
	// never rewrite, so a store checkpoint is O(delta)) alongside the
	// engine checkpoint. Both are skipped when the store is clean.
	Stores *store.Set
	// StoreLoadSeconds records how long startup spent building or
	// cold-starting the triple stores (set by cmd/alexd); exported as
	// the alexd_snapshot_load_seconds gauge so mmap cold starts are
	// comparable to parse/build starts.
	StoreLoadSeconds float64
}

// DefaultConfig returns serving defaults suitable for interactive use.
func DefaultConfig() Config {
	return Config{
		EpisodeSize:     100,
		QueueSize:       1024,
		FlushInterval:   250 * time.Millisecond,
		QueryTimeout:    10 * time.Second,
		DrainTimeout:    10 * time.Second,
		CheckpointEvery: 16,
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.EpisodeSize < 1 {
		c.EpisodeSize = d.EpisodeSize
	}
	if c.QueueSize < 1 {
		c.QueueSize = d.QueueSize
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = d.FlushInterval
	}
	if c.QueryTimeout <= 0 {
		c.QueryTimeout = d.QueryTimeout
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
	if c.CheckpointEvery < 1 {
		c.CheckpointEvery = d.CheckpointEvery
	}
	return c
}

// Snapshot is one published, immutable view of the link set: queries
// evaluate against Fed, /links serves Links. Both are frozen at
// publication time. On a fleet shard, Links is the FULL served set
// (own partition ∪ newest peer manifests) while Own is the shard's
// authoritative slice — what it replicates out; Episode is always the
// local engine's episode (peer manifests republish without advancing
// it). Standalone, Own aliases Links.
type Snapshot struct {
	Fed       *federation.Federator
	Links     links.Set
	Own       links.Set
	Version   uint64
	Episode   int
	Published time.Time
}

// feedbackItem is one queued answer-level feedback: the links an answer
// row used, with one verdict for all of them. seq is the item's journal
// sequence number (0 when journaling is off).
type feedbackItem struct {
	seq      uint64
	links    []links.Link
	positive bool
}

// RecoveryStats reports what startup recovery did.
type RecoveryStats struct {
	// CheckpointSeq is the journal sequence the loaded checkpoint
	// covered (0 = started from the engine's initial state).
	CheckpointSeq uint64
	// Replayed is the number of journal records applied on top.
	Replayed int
}

// Server serves federated queries and routes feedback into ALEX.
type Server struct {
	cfg  Config
	eng  Engine
	dict *rdf.Dict
	base *federation.Federator
	// plans is the compiled-plan LRU shared by the base federator and
	// every published snapshot (plans are link-independent).
	plans *federation.PlanCache

	// Durability layer; log is nil when DataDir is unset, ckpt is nil
	// when the engine cannot checkpoint. logMu serializes journal
	// appends WITH the queue-capacity check, so a journaled record
	// always has a reserved queue slot (no acked-but-dropped items) —
	// and competing fsyncs batch behind it.
	log  *wal.Log
	ckpt Checkpointer
	// The fsync-under-lock IS the design: producers must not observe a
	// reserved slot without a durable record, and batching competing
	// fsyncs behind one lock holder is the journal's group-commit. The
	// queue send under logMu cannot block — the capacity check above it
	// holds the reservation.
	//lint:ignore lockhold journal append + queue send under logMu is the durability design (see field comment)
	logMu    sync.Mutex
	recovery RecoveryStats

	// Cross-shard transaction state (txn.go), guarded by logMu: the
	// prepared-but-unresolved table, the bounded resolved-outcome table
	// with its FIFO pruning order, and the resolver goroutine's done
	// channel (nil when standalone).
	txnPending     map[string]*txnEntry
	txnDone        map[string]string
	txnOrder       []string
	txnResolveDone chan struct{}
	txnMetrics     txnMetrics

	snap     atomic.Pointer[Snapshot]
	queue    chan feedbackItem
	stop     chan struct{}
	die      chan struct{} // crash simulation: writer exits without drain
	done     chan struct{}
	closing  sync.Once
	aborting sync.Once

	// querySem is the /query admission semaphore (nil = unlimited).
	querySem chan struct{}

	// Fleet role (all nil/zero when standalone; see fleet.go). peerMu
	// guards peerSets and peerClients; kick wakes the replicator, repub
	// asks the writer to republish after a peer manifest lands, repDone
	// closes when the replicator goroutine exits.
	fleet        *FleetConfig
	ranges       []cluster.HashRange
	peerMu       sync.Mutex
	peerSets     map[int]peerState
	peerClients  map[int]*Client
	kick         chan struct{}
	repub        chan struct{}
	repDone      chan struct{}
	fleetMetrics fleetMetrics

	// w is the writer goroutine's state. New touches it during replay,
	// strictly before the goroutine starts.
	w writerState

	mux     http.Handler
	reg     *Registry
	metrics serverMetrics
}

// writerState is the single-writer bookkeeping: the open episode, the
// snapshot version counter, and the checkpoint cursor.
type writerState struct {
	pending   int       // link-level items in the open episode
	epStart   time.Time // when the open episode began
	version   uint64    // last published snapshot version
	sinceCkpt int       // episodes completed since the last checkpoint
	applied   uint64    // journal seq of the newest applied item
	ckptSeq   uint64    // journal seq covered by the last checkpoint
	replaying bool      // suppress per-episode publication during replay
}

type serverMetrics struct {
	queries             *Counter
	queryErrors         *Counter
	queryTimeouts       *Counter
	queryAdmissionDrops *Counter
	queryRows           *Counter
	queryDuration       *Histogram
	degradedQueries     *Counter
	feedbackQueued      *Counter
	feedbackThrottled   *Counter
	feedbackLinks       *Counter
	episodes            *Counter
	episodeDuration     *Histogram
	panics              *Counter
	journalFsync        *Histogram
	journalErrors       *Counter
	checkpoints         *Counter
	checkpointErrors    *Counter
	checkpointDuration  *Histogram
	storeCheckpoints    *Counter
	storeErrors         *Counter
	storeCheckpointSecs *Gauge
}

// New builds a Server over an engine and the federation sources the
// queries run against. All graphs must share dict. With Config.DataDir
// set, New first recovers: it restores the newest valid checkpoint into
// the engine and replays the journal tail (idempotently — records a
// checkpoint already covers are skipped), so the first published
// snapshot already reflects every previously acknowledged feedback
// item. The writer goroutine starts before New returns and the initial
// snapshot (version 1) is published, so queries are answerable at once.
func New(eng Engine, dict *rdf.Dict, sources []federation.Source, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	base := federation.New(dict)
	base.SetResilience(cfg.Resilience)
	base.SetOptions(federation.Options{Workers: cfg.QueryWorkers, ReplanEvery: cfg.ReplanEvery})
	plans := federation.NewPlanCache(cfg.PlanCacheSize)
	base.SetPlanCache(plans)
	for _, src := range sources {
		if err := base.Add(src); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:        cfg,
		eng:        eng,
		dict:       dict,
		base:       base,
		plans:      plans,
		queue:      make(chan feedbackItem, cfg.QueueSize),
		stop:       make(chan struct{}),
		die:        make(chan struct{}),
		done:       make(chan struct{}),
		reg:        NewRegistry(),
		txnPending: make(map[string]*txnEntry),
		txnDone:    make(map[string]string),
	}
	if cfg.MaxConcurrentQueries > 0 {
		s.querySem = make(chan struct{}, cfg.MaxConcurrentQueries)
	}
	s.registerMetrics()
	if cfg.Fleet != nil {
		if err := s.initFleet(cfg.Fleet); err != nil {
			return nil, err
		}
	}
	if cfg.DataDir != "" {
		if err := s.recover(); err != nil {
			return nil, err
		}
	}
	s.w.version = 1
	s.publish(1)
	s.mux = s.routes()
	go s.writer()
	if s.fleet != nil {
		go s.replicator()
		s.txnResolveDone = make(chan struct{})
		go s.txnResolver()
		s.notifyRouters("up")
	}
	return s, nil
}

// recover opens the journal and rebuilds the acknowledged state:
// checkpoint restore plus journal-tail replay through the exact episode
// batching the writer uses, so a recovered system converges to the same
// state as one that never crashed.
func (s *Server) recover() error {
	log, err := wal.Open(s.cfg.DataDir, s.cfg.FS)
	if err != nil {
		return err
	}
	s.log = log
	if ck, ok := s.eng.(Checkpointer); ok {
		s.ckpt = ck
		seq, state, found, err := log.LatestCheckpoint()
		if err != nil {
			return err
		}
		if found {
			engineState, hdr, err := unwrapCheckpoint(state)
			if err != nil {
				return fmt.Errorf("server: checkpoint (seq %d): %w", seq, err)
			}
			for _, r := range hdr.Resolved {
				s.markResolved(r.ID, r.Status)
			}
			if err := ck.Restore(bytes.NewReader(engineState)); err != nil {
				return fmt.Errorf("server: restore checkpoint (seq %d): %w", seq, err)
			}
			s.w.ckptSeq = seq
			s.w.applied = seq
			s.recovery.CheckpointSeq = seq
		}
	}
	s.w.replaying = true
	n, err := log.Replay(s.w.ckptSeq, func(rec wal.Record) error {
		kind, body := wal.DecodeTyped(rec.Data)
		if kind != wal.KindFeedback {
			return s.replayTxnRecord(kind, rec, body)
		}
		var req FeedbackRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return fmt.Errorf("server: journal record %d: %w", rec.Seq, err)
		}
		it := feedbackItem{seq: rec.Seq, positive: req.Approve}
		for _, lj := range req.Links {
			l, err := s.resolveLink(lj)
			if err != nil {
				return fmt.Errorf("server: journal record %d: %w (were the datasets loaded identically?)", rec.Seq, err)
			}
			it.links = append(it.links, l)
		}
		s.applyItem(it)
		return nil
	})
	s.w.replaying = false
	if err != nil {
		return err
	}
	s.recovery.Replayed = n
	// Checkpoints are suppressed while replaying (the unreplayed tail is
	// memory-only there); take the deferred one now if replay ended on an
	// episode boundary. A mid-episode tail keeps the journal instead —
	// checkpointing a half-open episode would break the episode-batching
	// equivalence with an uninterrupted run.
	if s.w.pending == 0 && s.w.sinceCkpt >= s.cfg.CheckpointEvery {
		s.checkpoint()
	}
	return nil
}

func (s *Server) registerMetrics() {
	m := &s.metrics
	m.queries = s.reg.Counter("alexd_queries_total", "Federated queries served.")
	m.queryErrors = s.reg.Counter("alexd_query_errors_total", "Queries rejected or failed (parse/eval errors).")
	m.queryTimeouts = s.reg.Counter("alexd_query_timeouts_total", "Queries abandoned on deadline.")
	m.queryAdmissionDrops = s.reg.Counter("alexd_query_admission_drops_total", "Queries refused with 503 because no evaluation slot freed up in time.")
	m.queryRows = s.reg.Counter("alexd_query_rows_total", "Answer rows returned across all queries.")
	m.queryDuration = s.reg.Histogram("alexd_query_duration_seconds", "Query evaluation latency.", nil)
	m.degradedQueries = s.reg.Counter("alexd_degraded_queries_total", "Queries that returned partial results because a source was unavailable.")
	s.reg.CounterFunc("alexd_plan_cache_hits_total", "Queries served from a cached plan.", func() uint64 {
		hits, _ := s.plans.Stats()
		return hits
	})
	s.reg.CounterFunc("alexd_plan_cache_misses_total", "Queries that required parsing and planning.", func() uint64 {
		_, misses := s.plans.Stats()
		return misses
	})
	s.reg.CounterFunc("alexd_plan_cache_evictions_total", "Compiled plans (and their learned cardinalities) evicted by the LRU bound.", func() uint64 {
		return s.plans.Evictions()
	})
	s.reg.GaugeFunc("alexd_plan_cache_entries", "Compiled plans currently cached.", func() float64 {
		return float64(s.plans.Len())
	})
	s.reg.CounterFunc("alexd_replans_total", "Mid-query re-rankings performed by the adaptive evaluator.", func() uint64 {
		replans, _ := s.base.AdaptiveStats()
		return replans
	})
	s.reg.CounterFunc("alexd_plan_learned_hits_total", "Queries that started with usable learned cardinalities from their cached plan.", func() uint64 {
		_, hits := s.base.AdaptiveStats()
		return hits
	})
	m.feedbackQueued = s.reg.Counter("alexd_feedback_total", "Answer-level feedback items accepted into the queue.")
	m.feedbackThrottled = s.reg.Counter("alexd_feedback_throttled_total", "Feedback items refused with 429 (queue full).")
	m.feedbackLinks = s.reg.Counter("alexd_feedback_links_total", "Link-level feedback items applied by the writer.")
	m.episodes = s.reg.Counter("alexd_episodes_total", "Feedback episodes completed.")
	m.episodeDuration = s.reg.Histogram("alexd_episode_duration_seconds", "Episode duration from first feedback to policy improvement.", nil)
	m.panics = s.reg.Counter("alexd_http_panics_total", "Handler panics recovered.")
	m.journalFsync = s.reg.Histogram("alexd_journal_fsync_seconds", "Feedback journal append+fsync latency.", nil)
	m.journalErrors = s.reg.Counter("alexd_journal_errors_total", "Journal appends that failed (feedback refused with 503).")
	m.checkpoints = s.reg.Counter("alexd_checkpoints_total", "State checkpoints written.")
	m.checkpointErrors = s.reg.Counter("alexd_checkpoint_errors_total", "State checkpoints that failed.")
	m.checkpointDuration = s.reg.Histogram("alexd_checkpoint_seconds", "Checkpoint save+write duration.", nil)
	m.storeCheckpoints = s.reg.Counter("alexd_store_checkpoints_total", "Segment-store checkpoints written (delta + manifest only).")
	m.storeErrors = s.reg.Counter("alexd_store_errors_total", "Segment-store compactions or checkpoints that failed.")
	m.storeCheckpointSecs = s.reg.Gauge("alexd_store_checkpoint_seconds", "Duration of the last segment-store checkpoint; O(delta), not O(dataset), because segments are immutable.")
	s.reg.GaugeFunc("alexd_snapshot_load_seconds", "Startup time spent building or cold-starting the triple stores (mmap cold start vs full parse/build).", func() float64 {
		return s.cfg.StoreLoadSeconds
	})
	s.reg.GaugeFunc("alexd_feedback_queue_depth", "Answer-level feedback items waiting for the writer.", func() float64 {
		return float64(len(s.queue))
	})
	s.reg.GaugeFunc("alexd_snapshot_version", "Version of the published snapshot.", func() float64 {
		return float64(s.Snapshot().Version)
	})
	s.reg.GaugeFunc("alexd_snapshot_age_seconds", "Seconds since the current snapshot was published.", func() float64 {
		return time.Since(s.Snapshot().Published).Seconds()
	})
	s.reg.GaugeFunc("alexd_candidate_links", "Candidate links in the published snapshot.", func() float64 {
		return float64(s.Snapshot().Links.Len())
	})
	s.reg.GaugeFunc("alexd_replayed_records", "Journal records replayed by the last startup recovery.", func() float64 {
		return float64(s.Recovery().Replayed)
	})
	s.registerTxnMetrics()
	for i, st := range s.base.SourceStatuses() {
		i := i
		s.reg.LabeledGaugeFunc("alexd_source_breaker_state",
			fmt.Sprintf("source=%q", st.Name),
			"Per-source circuit state: 0 closed, 1 open, 2 half-open.",
			func() float64 { return float64(s.base.SourceStatuses()[i].Breaker) })
	}
}

// Snapshot returns the currently published snapshot. The result is
// immutable; it remains valid (and consistent) for as long as the
// caller holds it, even across later publications.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Recovery reports what startup recovery did (zero stats when no data
// directory is configured or nothing was recovered).
func (s *Server) Recovery() RecoveryStats { return s.recovery }

// Handler returns the root HTTP handler (all routes, middleware
// applied).
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry, so embedders can add their own
// instruments next to the server's.
func (s *Server) Registry() *Registry { return s.reg }

// publish builds a fresh immutable snapshot from the engine's current
// candidate set — unioned with the newest peer manifests on a fleet
// shard, so reads are always full. Writer-goroutine only (plus from
// New, before the writer starts).
func (s *Server) publish(version uint64) {
	own := s.eng.Candidates()
	served := s.peerUnion(own)
	s.snap.Store(&Snapshot{
		Fed:       s.base.WithLinks(served),
		Links:     served,
		Own:       own,
		Version:   version,
		Episode:   s.eng.Episode(),
		Published: time.Now(),
	})
}

// applyItem feeds one answer-level item into the engine, bracketing
// episodes exactly as the paper's loop does. It is the shared apply
// path of live writing and journal replay: identical batching is what
// makes a recovered run converge to the uninterrupted run's state.
func (s *Server) applyItem(it feedbackItem) {
	if s.w.pending == 0 {
		s.eng.BeginEpisode()
		s.w.epStart = time.Now()
	}
	for _, l := range it.links {
		s.eng.Feedback(l, it.positive)
		s.metrics.feedbackLinks.Inc()
		s.w.pending++
	}
	if it.seq > s.w.applied {
		s.w.applied = it.seq
	}
	if s.w.pending >= s.cfg.EpisodeSize {
		s.finishEpisode()
	}
}

// finishEpisode closes the open episode (if any), publishes a fresh
// snapshot, and checkpoints when the checkpoint interval elapsed.
func (s *Server) finishEpisode() {
	if s.w.pending == 0 {
		return
	}
	s.eng.FinishEpisode()
	s.metrics.episodes.Inc()
	s.metrics.episodeDuration.Observe(time.Since(s.w.epStart).Seconds())
	s.w.pending = 0
	s.w.sinceCkpt++
	if !s.w.replaying {
		s.w.version++
		s.publish(s.w.version)
		// On a fleet shard, every published episode is replicated out.
		s.kickReplicator()
	}
	if !s.w.replaying {
		s.compactStores()
	}
	if s.w.sinceCkpt >= s.cfg.CheckpointEvery {
		s.checkpoint()
	}
}

// compactStores folds the disk backend's write deltas into fresh
// immutable segments at an episode boundary. A no-op when the deltas
// are empty (today's serving path never mutates triples, so this only
// fires for dynamic-source setups and tests) and on the mem backend.
// Writer-goroutine only; runs outside every lock — compaction does
// file I/O and queries read through atomically swapped views, so
// nothing here can stall a reader or a producer.
func (s *Server) compactStores() {
	st := s.cfg.Stores
	if st == nil {
		return
	}
	start := time.Now()
	gen := st.Generation()
	if err := st.Compact(); err != nil {
		s.metrics.storeErrors.Inc()
		return
	}
	if st.Generation() != gen {
		// The compaction wrote a new generation (segments + manifest) —
		// that IS the store checkpoint for this episode; the explicit
		// checkpoint below will find the set clean and skip.
		s.metrics.storeCheckpoints.Inc()
		s.metrics.storeCheckpointSecs.Set(time.Since(start).Seconds())
	}
}

// checkpointStores persists the disk backend: dictionary tail, per-
// source delta files and a new manifest. The immutable segments are
// untouched, so the cost is O(delta) — and when nothing changed since
// the last store checkpoint it writes nothing at all (the skip-if-clean
// contract, regression-tested). Writer-goroutine only, outside logMu.
func (s *Server) checkpointStores() {
	if s.cfg.Stores == nil {
		return
	}
	start := time.Now()
	wrote, err := s.cfg.Stores.Checkpoint()
	if err != nil {
		s.metrics.storeErrors.Inc()
		return
	}
	if wrote {
		s.metrics.storeCheckpoints.Inc()
		s.metrics.storeCheckpointSecs.Set(time.Since(start).Seconds())
	}
}

// checkpoint saves full engine state through the log. A checkpoint
// resets the journal, so it must only run when the journal holds
// nothing beyond s.w.applied: it is suppressed during startup replay
// (the unreplayed tail exists only in memory, and a crash mid-recovery
// would lose it) and skipped while acked-but-unapplied feedback is
// still queued (checked under logMu, so no producer can journal a new
// record between the check and the reset). A skipped checkpoint retries
// at the next episode boundary — sinceCkpt stays past the threshold.
// Failures are counted and tolerated: the journal still covers
// everything since the last good checkpoint. Writer-goroutine only
// (or New, strictly before the writer starts).
func (s *Server) checkpoint() {
	if s.w.replaying {
		return
	}
	s.checkpointStores()
	if s.log == nil || s.ckpt == nil {
		return
	}
	if s.w.applied == s.w.ckptSeq {
		return // nothing new since the last checkpoint
	}
	start := time.Now()
	var buf bytes.Buffer
	if err := s.ckpt.Save(&buf); err != nil {
		s.metrics.checkpointErrors.Inc()
		return
	}
	s.logMu.Lock()
	if len(s.queue) > 0 {
		// Producers journal and enqueue under logMu, and only the writer
		// (us) dequeues: a non-empty queue here means journaled, 202-acked
		// records with seq > s.w.applied that would survive the journal
		// reset only in memory. Keep the journal; retry next episode.
		s.logMu.Unlock()
		return
	}
	if len(s.txnPending) > 0 {
		// An unresolved prepare lives only in the journal; the reset
		// below would silently discard a 202-acked batch. Keep the
		// journal; the resolver settles the prepare within its grace
		// period and the checkpoint retries next episode.
		s.logMu.Unlock()
		return
	}
	err := s.log.Checkpoint(s.w.applied, s.wrapCheckpoint(buf.Bytes()))
	s.logMu.Unlock()
	if err != nil {
		s.metrics.checkpointErrors.Inc()
		return
	}
	s.metrics.checkpoints.Inc()
	s.metrics.checkpointDuration.Observe(time.Since(start).Seconds())
	s.w.ckptSeq = s.w.applied
	s.w.sinceCkpt = 0
}

// writer is the single goroutine that owns the engine: it applies
// queued feedback, brackets it into episodes, publishes snapshots, and
// checkpoints.
func (s *Server) writer() {
	defer close(s.done)
	flush := time.NewTicker(s.cfg.FlushInterval)
	defer flush.Stop()

	for {
		select {
		case it := <-s.queue:
			s.applyItem(it)
		case <-flush.C:
			s.finishEpisode()
		case <-s.repub:
			// A peer manifest landed (fleet only; the channel is nil and
			// never fires standalone): fold it into a fresh snapshot.
			// Publication stays writer-only.
			s.w.version++
			s.publish(s.w.version)
		case <-s.die:
			return // simulated crash: no drain, no checkpoint
		case <-s.stop:
			// Drain everything already acknowledged to clients, then
			// finish the open episode so no accepted feedback is lost,
			// and leave a final checkpoint so restart needs no replay.
			for {
				select {
				case it := <-s.queue:
					s.applyItem(it)
				default:
					s.finishEpisode()
					s.checkpoint()
					return
				}
			}
		}
	}
}

// accept makes an answer-level feedback item durable (journal append +
// fsync) and hands it to the writer, without blocking. The returned
// status is http.StatusAccepted on success, 429 when the queue is full,
// or 503 when the journal cannot be written (the item was NOT accepted
// and the client must retry).
func (s *Server) accept(it feedbackItem, wirePayload []byte) (int, error) {
	if s.log == nil {
		if s.enqueue(it) {
			return http.StatusAccepted, nil
		}
		return http.StatusTooManyRequests, fmt.Errorf("feedback queue full, retry later")
	}
	s.logMu.Lock()
	defer s.logMu.Unlock()
	if len(s.queue) == cap(s.queue) {
		s.metrics.feedbackThrottled.Inc()
		return http.StatusTooManyRequests, fmt.Errorf("feedback queue full, retry later")
	}
	start := time.Now()
	seq, err := s.log.Append(wirePayload)
	s.metrics.journalFsync.Observe(time.Since(start).Seconds())
	if err != nil {
		s.metrics.journalErrors.Inc()
		return http.StatusServiceUnavailable, fmt.Errorf("feedback not durable: %v", err)
	}
	it.seq = seq
	// Guaranteed to fit: producers hold logMu and only the writer takes
	// items out, so the capacity check above still stands.
	s.queue <- it
	s.metrics.feedbackQueued.Inc()
	return http.StatusAccepted, nil
}

// enqueue offers an answer-level feedback item to the writer without
// blocking or journaling. ok=false means the queue is full and the item
// was NOT accepted (the HTTP layer turns that into 429 + Retry-After).
func (s *Server) enqueue(it feedbackItem) bool {
	select {
	case s.queue <- it:
		s.metrics.feedbackQueued.Inc()
		return true
	default:
		s.metrics.feedbackThrottled.Inc()
		return false
	}
}

// Close shuts the writer down gracefully: queued feedback is drained,
// the open episode finished, a final snapshot published and (with a
// data directory) a final checkpoint written, so the next start needs
// no journal replay. It returns an error if the writer does not drain
// within DrainTimeout. Close is idempotent; after it returns, feedback
// is no longer processed (the HTTP handlers keep serving reads from the
// last snapshot).
func (s *Server) Close() error {
	s.closing.Do(func() {
		// Close stop first — /healthz reports "closing" from that moment,
		// so a poll racing the push cannot flip the shard back up — then
		// push "down" so router failover reacts before the next poll.
		close(s.stop)
		s.notifyRouters("down")
	})
	select {
	case <-s.done:
	case <-time.After(s.cfg.DrainTimeout):
		return fmt.Errorf("server: writer did not drain within %s", s.cfg.DrainTimeout)
	}
	if s.repDone != nil {
		<-s.repDone
	}
	if s.txnResolveDone != nil {
		<-s.txnResolveDone
	}
	if s.log != nil {
		s.logMu.Lock()
		defer s.logMu.Unlock()
		return s.log.Close()
	}
	return nil
}

// abort kills the writer without draining, finishing the episode, or
// checkpointing — the crash-simulation entry point of the chaos tests.
// Acknowledged items that were still queued stay journaled on disk;
// recovery must resurrect them.
func (s *Server) abort() {
	s.aborting.Do(func() { close(s.die) })
	<-s.done
	if s.repDone != nil {
		<-s.repDone
	}
	if s.txnResolveDone != nil {
		<-s.txnResolveDone
	}
}

// Abort is the exported crash simulation: the writer (and, on a fleet
// shard, the replicator) exits immediately — no drain, no final
// episode, no checkpoint. The journal stays on disk exactly as a real
// crash would leave it, so a subsequent New over the same data
// directory must recover every acknowledged item. Fleet failover tests
// kill shards with it.
func (s *Server) Abort() { s.abort() }
