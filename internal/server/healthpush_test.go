package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"alex/internal/cluster"
)

// A fleet shard must announce its own health transitions to every
// configured router: "up" when New finishes (so a restarted shard is
// probed immediately instead of waiting out a poll interval) and
// "down" when Close begins (so routers fail over before the socket
// disappears). An unreachable router in the list must not block the
// push to the reachable ones — the notification is best-effort.
func TestShardPushesHealthTransitions(t *testing.T) {
	pushes := make(chan cluster.HealthPush, 8)
	stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/router/health" {
			t.Errorf("unexpected push request: %s %s", r.Method, r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
			return
		}
		var hp cluster.HealthPush
		if err := json.NewDecoder(r.Body).Decode(&hp); err != nil {
			t.Errorf("bad push body: %v", err)
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		pushes <- hp
		w.WriteHeader(http.StatusNoContent)
	}))
	defer stub.Close()

	dict, sources, sys, _ := tinyWorld(t)
	s, err := New(sys, dict, sources, Config{
		FlushInterval: 20 * time.Millisecond,
		Fleet: &FleetConfig{
			ShardID: 3,
			Shards:  4,
			// A dead router first: the live stub must still be notified.
			Routers: []string{"127.0.0.1:1", stub.URL},
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	expect := func(status string) {
		t.Helper()
		select {
		case hp := <-pushes:
			if hp.ShardID != 3 || hp.Status != status {
				t.Fatalf("push = %+v, want shard 3 %q", hp, status)
			}
		case <-time.After(3 * time.Second):
			t.Fatalf("no %q push arrived", status)
		}
	}
	expect("up")

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	expect("down")
}
