// HTTP surface of alexd: JSON wire types, the four endpoints, and the
// recovery/metrics middleware.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"alex/internal/cluster"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/rdf"
	"alex/internal/sparql"
)

// TermJSON is an RDF term on the wire.
type TermJSON struct {
	// Kind is "iri", "literal" or "blank".
	Kind     string `json:"kind"`
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"lang,omitempty"`
}

func termJSON(t rdf.Term) TermJSON {
	kind := "iri"
	switch t.Kind {
	case rdf.KindLiteral:
		kind = "literal"
	case rdf.KindBlank:
		kind = "blank"
	}
	return TermJSON{Kind: kind, Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
}

// LinkJSON is a sameAs link as entity IRIs.
type LinkJSON struct {
	E1 string `json:"e1"`
	E2 string `json:"e2"`
}

// RowJSON is one federated answer row: bindings plus the links it used.
// Echo Links back in a FeedbackRequest to approve or reject the row.
type RowJSON struct {
	Binding map[string]TermJSON `json:"binding"`
	Links   []LinkJSON          `json:"links,omitempty"`
}

// QueryRequest asks for a federated SPARQL evaluation.
type QueryRequest struct {
	Query string `json:"query"`
	// TimeoutMillis optionally lowers the server's query timeout for
	// this request; it can never raise it.
	TimeoutMillis int `json:"timeout_ms,omitempty"`
}

// QueryResponse carries the result set and the snapshot it was computed
// against. A non-empty DegradedSources means the answer is partial: the
// named sources were unavailable (open circuit, access failure or
// timeout) and their rows are missing. The same marker travels in the
// X-Alex-Degraded response header.
type QueryResponse struct {
	Vars            []string  `json:"vars,omitempty"`
	Rows            []RowJSON `json:"rows"`
	Ask             *bool     `json:"ask,omitempty"`
	SnapshotVersion uint64    `json:"snapshot_version"`
	DegradedSources []string  `json:"degraded_sources,omitempty"`
}

// FeedbackRequest reports an answer-level verdict: the links of the
// answer row (as returned by /query) with approve=true or false.
type FeedbackRequest struct {
	Approve bool       `json:"approve"`
	Links   []LinkJSON `json:"links"`
}

// FeedbackResponse acknowledges queued feedback.
type FeedbackResponse struct {
	Queued bool `json:"queued"`
	// Links is the number of link-level feedback items the request
	// expands to.
	Links int `json:"links"`
}

// LinksResponse is the published candidate link set.
type LinksResponse struct {
	SnapshotVersion uint64     `json:"snapshot_version"`
	Episode         int        `json:"episode"`
	Count           int        `json:"count"`
	Links           []LinkJSON `json:"links"`
}

// SourceHealth reports one federated source's circuit state.
type SourceHealth struct {
	Name string `json:"name"`
	// Guarded is false for local in-memory sources that cannot fail.
	Guarded bool `json:"guarded"`
	// Breaker is "closed", "open" or "half-open".
	Breaker string `json:"breaker"`
}

// JournalHealth reports the durability layer's state.
type JournalHealth struct {
	Enabled bool `json:"enabled"`
	// CheckpointSeq is the journal sequence the checkpoint loaded at
	// startup covered; Replayed is how many journal records were
	// applied on top of it.
	CheckpointSeq uint64 `json:"checkpoint_seq"`
	Replayed      int    `json:"replayed"`
}

// PeerHealth reports the newest replicated manifest a shard holds from
// one of its peers.
type PeerHealth struct {
	ShardID int `json:"shard_id"`
	Episode int `json:"episode"`
	Links   int `json:"links"`
}

// ShardHealth reports a fleet shard's identity: which slice of the
// hash space it owns, how far its own exploration has progressed, and
// what it has replicated in from each peer. The router's health loop
// reads it; so do humans debugging a fleet.
type ShardHealth struct {
	ID     int               `json:"id"`
	Shards int               `json:"shards"`
	Range  cluster.HashRange `json:"range"`
	// RangeText is Range rendered for humans ("[0x…, 0x…)").
	RangeText string `json:"range_text"`
	// OwnEpisode is the local engine's episode — the manifest episode
	// peers will see from this shard.
	OwnEpisode int `json:"own_episode"`
	// OwnLinks counts the shard's own candidate partition (the served
	// total including peers is candidate_links at the top level).
	OwnLinks int          `json:"own_links"`
	Peers    []PeerHealth `json:"peers,omitempty"`
}

// StoreSourceHealth reports one disk-backed source's segment/delta
// split — how much of it is immutable on-disk pages versus the
// in-memory write delta awaiting the next compaction.
type StoreSourceHealth struct {
	Name           string `json:"name"`
	Segments       int    `json:"segments"`
	SegmentTriples int    `json:"segment_triples"`
	DeltaTriples   int    `json:"delta_triples"`
}

// StoreHealth surfaces the active triple-store backend. Backend is
// "mem" (everything in rdf.Graph maps) or "disk" (mmap'd immutable
// segments plus a write delta); Sources is only set for "disk".
type StoreHealth struct {
	Backend    string              `json:"backend"`
	Generation uint64              `json:"generation,omitempty"`
	Sources    []StoreSourceHealth `json:"sources,omitempty"`
}

// HealthResponse reports liveness, writer progress, per-source breaker
// state and the durability layer. Role is "standalone" or "shard";
// Shard is set only for fleet members.
type HealthResponse struct {
	Status          string         `json:"status"`
	Role            string         `json:"role"`
	SnapshotVersion uint64         `json:"snapshot_version"`
	SnapshotAgeSecs float64        `json:"snapshot_age_seconds"`
	Episode         int            `json:"episode"`
	CandidateLinks  int            `json:"candidate_links"`
	QueueDepth      int            `json:"queue_depth"`
	QueueCapacity   int            `json:"queue_capacity"`
	Sources         []SourceHealth `json:"sources"`
	Journal         JournalHealth  `json:"journal"`
	Store           StoreHealth    `json:"store"`
	Shard           *ShardHealth   `json:"shard,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/feedback", s.handleFeedback)
	mux.HandleFunc("/links", s.handleLinks)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/replica/snapshot", s.handleReplicaSnapshot)
	mux.HandleFunc("/replica/push", s.handleReplicaPush)
	mux.HandleFunc("/txn/prepare", s.handleTxnPrepare)
	mux.HandleFunc("/txn/commit", s.handleTxnCommit)
	mux.HandleFunc("/txn/abort", s.handleTxnAbort)
	mux.HandleFunc("/txn/status", s.handleTxnStatus)
	return s.recoverMiddleware(mux)
}

// recoverMiddleware turns handler panics into 500s instead of killing
// the connection (and, pre-Go1.8-style, the process for ServeMux-level
// panics in tests using the handler directly).
func (s *Server) recoverMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.metrics.panics.Inc()
				writeJSON(w, http.StatusInternalServerError, errorResponse{Error: fmt.Sprintf("internal error: %v", rec)})
			}
		}()
		next.ServeHTTP(w, r)
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to do
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if req.Query == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "empty query"})
		return
	}
	timeout := s.cfg.QueryTimeout
	if req.TimeoutMillis > 0 {
		if t := time.Duration(req.TimeoutMillis) * time.Millisecond; t < timeout {
			timeout = t
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// Admission: with MaxConcurrentQueries set, wait for an evaluation
	// slot within the request's own deadline; an overloaded server then
	// backpressures with 503 + Retry-After instead of piling up work
	// and timing out everything at once.
	if s.querySem != nil {
		select {
		case s.querySem <- struct{}{}:
			defer func() { <-s.querySem }()
		case <-ctx.Done():
			s.metrics.queryAdmissionDrops.Inc()
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "query concurrency limit reached, retry later"})
			return
		}
	}

	// Lock-free read path: load the current snapshot once and evaluate
	// entirely against it. Concurrent episodes publish new snapshots but
	// never touch this one.
	snap := s.Snapshot()
	start := time.Now()
	res, err := evalWithContext(ctx, snap.Fed, req.Query)
	s.metrics.queryDuration.Observe(time.Since(start).Seconds())
	if err != nil {
		if ctx.Err() != nil {
			s.metrics.queryTimeouts.Inc()
			writeJSON(w, http.StatusGatewayTimeout, errorResponse{Error: "query deadline exceeded"})
			return
		}
		s.metrics.queryErrors.Inc()
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	s.metrics.queries.Inc()
	s.metrics.queryRows.Add(uint64(len(res.Rows)))

	out := QueryResponse{
		Vars:            res.Vars,
		Rows:            make([]RowJSON, 0, len(res.Rows)),
		SnapshotVersion: snap.Version,
		DegradedSources: res.Degraded,
	}
	if len(res.Degraded) > 0 {
		s.metrics.degradedQueries.Inc()
		w.Header().Set("X-Alex-Degraded", strings.Join(res.Degraded, ","))
	}
	if isAsk(req.Query, res) {
		ask := res.Ask
		out.Ask = &ask
	}
	for _, row := range res.Rows {
		out.Rows = append(out.Rows, s.rowJSON(row))
	}
	writeJSON(w, http.StatusOK, out)
}

// isAsk reports whether the result set came from an ASK form (no
// variables and no rows is how the federation layer signals it).
func isAsk(query string, res *federation.ResultSet) bool {
	if len(res.Vars) > 0 || len(res.Rows) > 0 {
		return false
	}
	q, err := sparql.Parse(query)
	return err == nil && q.Form == sparql.FormAsk
}

func (s *Server) rowJSON(row federation.Row) RowJSON {
	rj := RowJSON{Binding: make(map[string]TermJSON, len(row.Binding))}
	for v, t := range row.Binding {
		rj.Binding[v] = termJSON(t)
	}
	for _, l := range row.Used.Slice() {
		rj.Links = append(rj.Links, LinkJSON{E1: s.dict.Term(l.E1).Value, E2: s.dict.Term(l.E2).Value})
	}
	return rj
}

// evalWithContext runs the query in a helper goroutine so the handler
// can honor the deadline even mid-evaluation. The context also flows
// into the federator's per-source access probes, so an expiring request
// cancels any in-flight retries. An abandoned evaluation finishes in
// the background against its snapshot (which stays valid) and is
// discarded.
func evalWithContext(ctx context.Context, fed *federation.Federator, query string) (*federation.ResultSet, error) {
	type out struct {
		res *federation.ResultSet
		err error
	}
	ch := make(chan out, 1)
	go func() {
		res, err := fed.QueryContext(ctx, query)
		ch <- out{res, err}
	}()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (s *Server) handleFeedback(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST required"})
		return
	}
	var req FeedbackRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad request body: " + err.Error()})
		return
	}
	if len(req.Links) == 0 {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "no links in feedback"})
		return
	}
	item := feedbackItem{positive: req.Approve, links: make([]links.Link, 0, len(req.Links))}
	for _, lj := range req.Links {
		// A fleet shard only accepts links it owns. Accepting a misrouted
		// link would fork ownership: this shard would journal and explore
		// a link the true owner never sees, and replication (keyed by
		// owner) would silently drop it. 400, not 503 — the router must
		// fix its routing, not retry.
		if s.fleet != nil {
			if owner := cluster.OwnerOf(s.ranges, lj.E1); owner != s.fleet.ShardID {
				writeJSON(w, http.StatusBadRequest, errorResponse{
					Error: fmt.Sprintf("link %q belongs to shard %d, this is shard %d", lj.E1, owner, s.fleet.ShardID),
				})
				return
			}
		}
		l, err := s.resolveLink(lj)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
			return
		}
		item.links = append(item.links, l)
	}
	// Canonical wire payload for the journal: what replay will decode.
	payload, err := json.Marshal(req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	status, err := s.accept(item, payload)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, status, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, FeedbackResponse{Queued: true, Links: len(item.links)})
}

func (s *Server) resolveLink(lj LinkJSON) (links.Link, error) {
	e1, ok := s.dict.Lookup(rdf.IRI(lj.E1))
	if !ok {
		return links.Link{}, fmt.Errorf("unknown entity %q", lj.E1)
	}
	e2, ok := s.dict.Lookup(rdf.IRI(lj.E2))
	if !ok {
		return links.Link{}, fmt.Errorf("unknown entity %q", lj.E2)
	}
	return links.Link{E1: e1, E2: e2}, nil
}

func (s *Server) handleLinks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET required"})
		return
	}
	snap := s.Snapshot()
	if r.URL.Query().Get("format") == "ntriples" {
		w.Header().Set("Content-Type", "application/n-triples")
		sameAs := rdf.IRI(rdf.OWLSameAs)
		for _, l := range snap.Links.Slice() {
			fmt.Fprintf(w, "%s\n", rdf.Triple{S: s.dict.Term(l.E1), P: sameAs, O: s.dict.Term(l.E2)})
		}
		return
	}
	out := LinksResponse{
		SnapshotVersion: snap.Version,
		Episode:         snap.Episode,
		Count:           snap.Links.Len(),
		Links:           make([]LinkJSON, 0, snap.Links.Len()),
	}
	for _, l := range snap.Links.Slice() {
		out.Links = append(out.Links, LinkJSON{E1: s.dict.Term(l.E1).Value, E2: s.dict.Term(l.E2).Value})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	snap := s.Snapshot()
	statuses := s.base.SourceStatuses()
	srcs := make([]SourceHealth, len(statuses))
	for i, st := range statuses {
		srcs[i] = SourceHealth{Name: st.Name, Guarded: st.Guarded, Breaker: st.Breaker.String()}
	}
	// A draining server still answers reads but must not be offered new
	// writes; "closing" tells a router's poll the same thing the push
	// notification said, so the two signals cannot disagree.
	status := "ok"
	select {
	case <-s.stop:
		status = "closing"
	default:
	}
	out := HealthResponse{
		Status:          status,
		Role:            "standalone",
		SnapshotVersion: snap.Version,
		SnapshotAgeSecs: time.Since(snap.Published).Seconds(),
		Episode:         snap.Episode,
		CandidateLinks:  snap.Links.Len(),
		QueueDepth:      len(s.queue),
		QueueCapacity:   cap(s.queue),
		Sources:         srcs,
		Journal: JournalHealth{
			Enabled:       s.log != nil,
			CheckpointSeq: s.recovery.CheckpointSeq,
			Replayed:      s.recovery.Replayed,
		},
		Store: StoreHealth{Backend: "mem"},
	}
	if st := s.cfg.Stores; st != nil {
		out.Store.Backend = "disk"
		out.Store.Generation = st.Generation()
		for _, src := range st.Sources() {
			out.Store.Sources = append(out.Store.Sources, StoreSourceHealth{
				Name:           src.Name(),
				Segments:       src.SegmentCount(),
				SegmentTriples: src.SegmentTriples(),
				DeltaTriples:   src.DeltaSize(),
			})
		}
	}
	if s.fleet != nil {
		rng := s.ranges[s.fleet.ShardID]
		out.Role = "shard"
		out.Shard = &ShardHealth{
			ID:         s.fleet.ShardID,
			Shards:     s.fleet.Shards,
			Range:      rng,
			RangeText:  rng.String(),
			OwnEpisode: snap.Episode,
			OwnLinks:   snap.Own.Len(),
			Peers:      s.peerHealth(),
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.reg.WritePrometheus(w)
}
