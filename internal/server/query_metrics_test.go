package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestQueryMetricsExposition drives the /query endpoint and asserts the
// per-query observability surface: latency histogram, rows-returned
// counter, and the plan-cache hit/miss counters, all visible on
// /metrics in Prometheus text format.
func TestQueryMetricsExposition(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	_, ts, client := newTestServer(t, sys, dict, sources, Config{
		FlushInterval: 20 * time.Millisecond,
		PlanCacheSize: 8,
	})

	q := `SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`
	for i := 0; i < 3; i++ {
		res, err := client.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %d, want 1", len(res.Rows))
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		// Three identical queries: one plan compiled, two cache hits.
		"# TYPE alexd_plan_cache_hits_total counter",
		"alexd_plan_cache_hits_total 2",
		"# TYPE alexd_plan_cache_misses_total counter",
		"alexd_plan_cache_misses_total 1",
		"alexd_plan_cache_entries 1",
		// One answer row per query.
		"alexd_query_rows_total 3",
		"alexd_queries_total 3",
		// Latency histogram observed every evaluation.
		"# TYPE alexd_query_duration_seconds histogram",
		"alexd_query_duration_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}

// TestAdaptiveMetricsExposition drives /query with adaptive execution
// enabled and asserts the adaptive observability surface: mid-query
// re-rankings, learned-plan hits, and plan-cache evictions.
func TestAdaptiveMetricsExposition(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	_, ts, client := newTestServer(t, sys, dict, sources, Config{
		FlushInterval: 20 * time.Millisecond,
		PlanCacheSize: 1,
		ReplanEvery:   1,
	})

	// Two stages => one re-ranking per evaluation; the second run of
	// the same text starts from the cached plan's observations.
	q := `SELECT ?l ?n WHERE {
		<http://ds1/a1> <http://ds1/label> ?l .
		<http://ds1/a1> <http://ds2/name> ?n .
	}`
	for i := 0; i < 2; i++ {
		res, err := client.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %d, want 1", len(res.Rows))
		}
	}
	// A second query text overflows the single-entry cache.
	if _, err := client.Query(`SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE alexd_replans_total counter",
		"alexd_replans_total 2",
		"# TYPE alexd_plan_learned_hits_total counter",
		"alexd_plan_learned_hits_total 1",
		"# TYPE alexd_plan_cache_evictions_total counter",
		"alexd_plan_cache_evictions_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, out)
		}
	}
}

// TestQueryMetricsCacheDistinctQueries checks that distinct query texts
// occupy distinct plan-cache entries.
func TestQueryMetricsCacheDistinctQueries(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	s, _, client := newTestServer(t, sys, dict, sources, Config{
		FlushInterval: 20 * time.Millisecond,
	})

	queries := []string{
		`SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`,
		`SELECT ?e ?l WHERE { ?e <http://ds1/label> ?l . }`,
	}
	for _, q := range queries {
		if _, err := client.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.plans.Len(); got != len(queries) {
		t.Fatalf("plan cache entries = %d, want %d", got, len(queries))
	}
	hits, misses := s.plans.Stats()
	if hits != 0 || misses != uint64(len(queries)) {
		t.Fatalf("stats = %d hits / %d misses, want 0/%d", hits, misses, len(queries))
	}
}
