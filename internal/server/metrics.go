// Metrics: a dependency-free registry of counters, gauges and
// histograms exported in the Prometheus text exposition format. The
// instruments are lock-free on the hot path (atomic loads/adds); the
// registry lock is only taken at registration and scrape time.
package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram of observations (seconds, by
// convention). Buckets are cumulative in the exported format, as
// Prometheus expects.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// DefBuckets covers request latencies from 100µs to 10s.
var DefBuckets = []float64{.0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets
	}
	bounds = append([]float64(nil), bounds...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile returns an upper-bound estimate of the q-quantile (q in
// [0,1]) from the bucket counts: the upper bound of the bucket the
// quantile falls in, or the largest finite bound for the overflow
// bucket. Zero observations yield 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.bounds[len(h.bounds)-1]
		}
	}
	return h.bounds[len(h.bounds)-1]
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindCounterFunc
	kindGauge
	kindGaugeFunc
	kindHistogram
)

type metric struct {
	name, help string
	// labels is a rendered Prometheus label set ("k=\"v\",..."), empty
	// for unlabeled metrics. Several metrics may share a name with
	// distinct labels; they form one family in the exposition.
	labels    string
	kind      metricKind
	counter   *Counter
	counterFn func() uint64
	gauge     *Gauge
	gaugeFn   func() float64
	hist      *Histogram
}

// Registry holds named metrics and renders them in the Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu      sync.Mutex
	metrics []metric
	names   map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := m.name
	if m.labels != "" {
		key += "{" + m.labels + "}"
	}
	if r.names[key] {
		panic(fmt.Sprintf("server: metric %q registered twice", key))
	}
	r.names[key] = true
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	r.register(metric{name: name, help: help, kind: kindCounter, counter: c})
	return c
}

// CounterFunc registers a counter whose value is read at scrape time.
// fn must be monotonically non-decreasing (counter semantics); use it
// for counts that already live elsewhere, like plan-cache statistics.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(metric{name: name, help: help, kind: kindCounterFunc, counterFn: fn})
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(metric{name: name, help: help, kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(metric{name: name, help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// LabeledGaugeFunc registers one labeled sample of a gauge family;
// labels is a rendered Prometheus label set such as `source="ds1"`.
// Samples sharing a name must be registered consecutively to form one
// family in the exposition.
func (r *Registry) LabeledGaugeFunc(name, labels, help string, fn func() float64) {
	r.register(metric{name: name, labels: labels, help: help, kind: kindGaugeFunc, gaugeFn: fn})
}

// Histogram registers and returns a histogram with the given bucket
// upper bounds (nil for DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(bounds)
	r.register(metric{name: name, help: help, kind: kindHistogram, hist: h})
	return h
}

// WritePrometheus renders every metric in the text exposition format.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	prevFamily := ""
	for _, m := range ms {
		sample := m.name
		if m.labels != "" {
			sample += "{" + m.labels + "}"
		}
		if m.name != prevFamily {
			fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help)
			prevFamily = m.name
		} else {
			// Later samples of the same family: HELP/TYPE already out.
			switch m.kind {
			case kindCounter:
				fmt.Fprintf(w, "%s %d\n", sample, m.counter.Value())
			case kindCounterFunc:
				fmt.Fprintf(w, "%s %d\n", sample, m.counterFn())
			case kindGauge:
				fmt.Fprintf(w, "%s %s\n", sample, formatFloat(m.gauge.Value()))
			case kindGaugeFunc:
				fmt.Fprintf(w, "%s %s\n", sample, formatFloat(m.gaugeFn()))
			}
			continue
		}
		switch m.kind {
		case kindCounter:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, sample, m.counter.Value())
		case kindCounterFunc:
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, sample, m.counterFn())
		case kindGauge:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.name, sample, formatFloat(m.gauge.Value()))
		case kindGaugeFunc:
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.name, sample, formatFloat(m.gaugeFn()))
		case kindHistogram:
			fmt.Fprintf(w, "# TYPE %s histogram\n", m.name)
			var cum uint64
			for i, bound := range m.hist.bounds {
				cum += m.hist.buckets[i].Load()
				fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(bound), cum)
			}
			fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, m.hist.Count())
			fmt.Fprintf(w, "%s_sum %s\n", m.name, formatFloat(m.hist.Sum()))
			fmt.Fprintf(w, "%s_count %d\n", m.name, m.hist.Count())
		}
	}
}

func formatFloat(v float64) string {
	return fmt.Sprintf("%g", v)
}
