package server

import (
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"alex/internal/core"
	"alex/internal/eval"
	"alex/internal/federation"
	"alex/internal/links"
	"alex/internal/paris"
	"alex/internal/rdf"
	"alex/internal/synth"
)

// tinyWorld builds a two-source federation by hand: dataset 1 holds
// labels, dataset 2 holds names, one correct sameAs link (a1-b1) and
// one wrong link (a2-b2w).
func tinyWorld(t *testing.T) (*rdf.Dict, []federation.Source, *core.System, links.Set) {
	t.Helper()
	dict := rdf.NewDict()
	g1 := rdf.NewGraphWithDict(dict)
	g2 := rdf.NewGraphWithDict(dict)
	label := rdf.IRI("http://ds1/label")
	name := rdf.IRI("http://ds2/name")
	a1, a2 := rdf.IRI("http://ds1/a1"), rdf.IRI("http://ds1/a2")
	b1, b2w := rdf.IRI("http://ds2/b1"), rdf.IRI("http://ds2/b2w")
	g1.Insert(rdf.Triple{S: a1, P: label, O: rdf.Literal("alpha")})
	g1.Insert(rdf.Triple{S: a2, P: label, O: rdf.Literal("beta")})
	g2.Insert(rdf.Triple{S: b1, P: name, O: rdf.Literal("alpha prime")})
	g2.Insert(rdf.Triple{S: b2w, P: name, O: rdf.Literal("unrelated")})

	id := func(term rdf.Term) rdf.ID {
		i, ok := dict.Lookup(term)
		if !ok {
			t.Fatalf("unknown term %v", term)
		}
		return i
	}
	initial := links.NewSet(
		links.Link{E1: id(a1), E2: id(b1)},
		links.Link{E1: id(a2), E2: id(b2w)},
	)
	cfg := core.DefaultConfig()
	sys := core.New(g1, g2, g1.SubjectIDs(), g2.SubjectIDs(), initial.Slice(), cfg)
	sources := []federation.Source{{Name: "ds1", Graph: g1}, {Name: "ds2", Graph: g2}}
	return dict, sources, sys, initial
}

func newTestServer(t *testing.T, eng Engine, dict *rdf.Dict, sources []federation.Source, cfg Config) (*Server, *httptest.Server, *Client) {
	t.Helper()
	s, err := New(eng, dict, sources, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	// Retries off: tests that provoke 429/503 assert on the immediate
	// response; client_test.go covers the retry behavior.
	client := NewClient(ts.URL)
	client.SetRetryPolicy(RetryPolicy{MaxAttempts: 1})
	return s, ts, client
}

func TestQueryFeedbackRoundTrip(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	_, _, client := newTestServer(t, sys, dict, sources, Config{FlushInterval: 20 * time.Millisecond})

	// A query against a ds1 entity through the ds2 name predicate must
	// cross the sameAs link and report it as provenance.
	res, err := client.Query(`SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d, want 1", len(res.Rows))
	}
	row := res.Rows[0]
	if row.Binding["n"].Value != "alpha prime" {
		t.Fatalf("binding = %+v", row.Binding)
	}
	if len(row.Links) != 1 || row.Links[0].E1 != "http://ds1/a1" || row.Links[0].E2 != "http://ds2/b1" {
		t.Fatalf("links = %+v", row.Links)
	}
	if res.SnapshotVersion == 0 {
		t.Fatal("snapshot version missing")
	}

	// Reject the wrong link through the feedback API and wait for a new
	// snapshot: the link must leave the published set.
	if err := client.Feedback([]LinkJSON{{E1: "http://ds1/a2", E2: "http://ds2/b2w"}}, false); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		ls, err := client.Links()
		if err != nil {
			t.Fatal(err)
		}
		if ls.Count == 1 {
			if ls.Links[0].E2 != "http://ds2/b1" {
				t.Fatalf("wrong surviving link: %+v", ls.Links)
			}
			if ls.SnapshotVersion < 2 {
				t.Fatalf("snapshot version = %d, want >= 2", ls.SnapshotVersion)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rejected link never left the snapshot (count=%d)", ls.Count)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBadRequests(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	_, ts, client := newTestServer(t, sys, dict, sources, Config{})

	if _, err := client.Query("SELECT nonsense"); err == nil {
		t.Fatal("malformed query accepted")
	}
	if err := client.Feedback([]LinkJSON{{E1: "http://nope", E2: "http://ds2/b1"}}, true); err == nil {
		t.Fatal("unknown entity accepted")
	}
	if err := client.Feedback(nil, true); err == nil {
		t.Fatal("empty feedback accepted")
	}
	resp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query = %d, want 405", resp.StatusCode)
	}
}

func TestHealthzAndNTriples(t *testing.T) {
	dict, sources, sys, initial := tinyWorld(t)
	_, ts, client := newTestServer(t, sys, dict, sources, Config{})

	h, err := client.Healthz()
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.SnapshotVersion != 1 || h.CandidateLinks != initial.Len() {
		t.Fatalf("health = %+v", h)
	}
	resp, err := http.Get(ts.URL + "/links?format=ntriples")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "owl#sameAs") {
		t.Fatalf("ntriples output missing sameAs: %q", data)
	}
}

// blockingEngine wraps a real system but parks every Feedback call
// until released, simulating a slow episode held open by the writer.
type blockingEngine struct {
	*core.System
	entered chan struct{}
	release chan struct{}
	applied int
}

func newBlockingEngine(sys *core.System) *blockingEngine {
	return &blockingEngine{
		System:  sys,
		entered: make(chan struct{}, 1024),
		release: make(chan struct{}),
	}
}

func (b *blockingEngine) Feedback(l links.Link, positive bool) {
	b.entered <- struct{}{}
	<-b.release
	b.applied++
	b.System.Feedback(l, positive)
}

// TestReadersNeverBlockOnWriter holds an episode open (the writer is
// parked inside Feedback) and asserts queries still complete: the read
// path takes no lock shared with feedback processing.
func TestReadersNeverBlockOnWriter(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	eng := newBlockingEngine(sys)
	_, _, client := newTestServer(t, eng, dict, sources, Config{DrainTimeout: time.Second})

	if err := client.Feedback([]LinkJSON{{E1: "http://ds1/a1", E2: "http://ds2/b1"}}, true); err != nil {
		t.Fatal(err)
	}
	select {
	case <-eng.entered:
		// writer is now parked mid-episode
	case <-time.After(5 * time.Second):
		t.Fatal("writer never picked up feedback")
	}

	start := time.Now()
	for i := 0; i < 25; i++ {
		res, err := client.Query(`SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`)
		if err != nil {
			t.Fatalf("query %d while episode open: %v", i, err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("query %d rows = %d", i, len(res.Rows))
		}
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("queries blocked on the writer: %s for 25 queries", elapsed)
	}
	close(eng.release)
}

// TestBackpressure429 fills the queue while the writer is parked and
// asserts: the overflow request gets 429 + Retry-After and is NOT
// applied, while every acknowledged item IS applied after draining —
// never a dropped-and-acknowledged feedback.
func TestBackpressure429(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	eng := newBlockingEngine(sys)
	s, ts, client := newTestServer(t, eng, dict, sources, Config{QueueSize: 1, DrainTimeout: 5 * time.Second})

	good := []LinkJSON{{E1: "http://ds1/a1", E2: "http://ds2/b1"}}
	// First item: writer takes it off the queue and parks.
	if err := client.Feedback(good, true); err != nil {
		t.Fatal(err)
	}
	<-eng.entered
	// Second item: sits in the queue (capacity 1).
	if err := client.Feedback(good, true); err != nil {
		t.Fatal(err)
	}
	// Third item: queue full -> 429 with Retry-After.
	body := `{"approve":true,"links":[{"e1":"http://ds1/a1","e2":"http://ds2/b1"}]}`
	resp, err := http.Post(ts.URL+"/feedback", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if err := client.Feedback(good, true); err != ErrQueueFull {
		t.Fatalf("client error = %v, want ErrQueueFull", err)
	}

	close(eng.release)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if eng.applied != 2 {
		t.Fatalf("applied = %d, want exactly the 2 acknowledged items", eng.applied)
	}
}

// TestGracefulDrain: feedback acknowledged just before shutdown is
// still applied and lands in a final published snapshot.
func TestGracefulDrain(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	s, _, client := newTestServer(t, sys, dict, sources, Config{
		EpisodeSize:   1000, // never auto-finishes: only the drain path closes the episode
		FlushInterval: time.Hour,
	})
	if err := client.Feedback([]LinkJSON{{E1: "http://ds1/a2", E2: "http://ds2/b2w"}}, false); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Version < 2 {
		t.Fatalf("no final snapshot published: version %d", snap.Version)
	}
	if snap.Links.Len() != 1 {
		t.Fatalf("drained feedback not applied: %d links", snap.Links.Len())
	}
}

func TestPanicRecovery(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	s, err := New(sys, dict, sources, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	h := s.recoverMiddleware(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/query", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if s.metrics.panics.Value() != 1 {
		t.Fatalf("panics counter = %d", s.metrics.panics.Value())
	}
}

func TestQueryTimeout(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	_, ts, _ := newTestServer(t, sys, dict, sources, Config{})
	// An unbounded triple-cross-product is slow enough on any machine to
	// overrun a 1ms budget (the tiny graph keeps the abandoned
	// background evaluation cheap).
	body := `{"query":"SELECT ?a WHERE { ?a ?b ?c . ?d ?e ?f . ?g ?h ?i . ?j ?k ?l . ?m ?n ?o . }","timeout_ms":1}`
	resp, err := http.Post(ts.URL+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 504 (or 200 on a very fast machine)", resp.StatusCode)
	}
}

// linkSetOf interns wire links back into a links.Set for evaluation.
func linkSetOf(t *testing.T, dict *rdf.Dict, ls []LinkJSON) links.Set {
	t.Helper()
	out := links.NewSet()
	for _, lj := range ls {
		e1, ok1 := dict.Lookup(rdf.IRI(lj.E1))
		e2, ok2 := dict.Lookup(rdf.IRI(lj.E2))
		if !ok1 || !ok2 {
			t.Fatalf("unknown link on the wire: %+v", lj)
		}
		out.Add(links.Link{E1: e1, E2: e2})
	}
	return out
}

// gtIRIs converts a ground-truth link set to IRI-string pairs.
func gtIRIs(dict *rdf.Dict, gt links.Set) map[LinkJSON]bool {
	out := make(map[LinkJSON]bool, gt.Len())
	for _, l := range gt.Slice() {
		out[LinkJSON{E1: dict.Term(l.E1).Value, E2: dict.Term(l.E2).Value}] = true
	}
	return out
}

// TestServedFeedbackLoopImprovesF is the end-to-end acceptance test:
// concurrent clients run federated queries over HTTP, judge each answer
// row against the synthetic ground truth, and post answer-level
// feedback; the writer runs episodes and publishes snapshots; the final
// snapshot's F-measure must beat the initial link set's, and /metrics
// must show the traffic.
func TestServedFeedbackLoopImprovesF(t *testing.T) {
	prof, ok := synth.ProfileByName("dbpedia-drugbank")
	if !ok {
		t.Fatal("missing profile")
	}
	prof = prof.Scale(0.4)
	ds := synth.Generate(prof)
	scored := paris.Link(ds.G1, ds.G2, ds.Entities1, ds.Entities2, paris.NewOptions())
	initial := make([]links.Link, len(scored))
	for i, sc := range scored {
		initial[i] = sc.Link
	}
	cfg := core.DefaultConfig()
	cfg.Partitions = 2
	sys := core.New(ds.G1, ds.G2, ds.Entities1, ds.Entities2, initial, cfg)
	before := eval.Compute(links.NewSet(initial...), ds.GroundTruth)

	sources := []federation.Source{{Name: "ds1", Graph: ds.G1}, {Name: "ds2", Graph: ds.G2}}
	s, _, client := newTestServer(t, sys, ds.Dict, sources, Config{
		EpisodeSize:   200,
		QueueSize:     512,
		FlushInterval: 100 * time.Millisecond,
	})

	gt := gtIRIs(ds.Dict, ds.GroundTruth)
	// Iterate query+feedback rounds until quality clearly improves, with
	// a hard cap as the failure condition. Round 0 exercises both verdict
	// paths; later rounds only reject wrong rows. Re-approving the same
	// correct links every round would re-trigger exploration each episode
	// (firstVisit resets per episode), and whether that candidate flood
	// outruns the rejection cleanup depends on scheduling — reject-only
	// rounds shrink the candidate set monotonically instead, so the test
	// converges regardless of timing.
	const maxRounds, workers = 14, 4
	for round := 0; round < maxRounds; round++ {
		round := round
		ls, err := client.Links()
		if err != nil {
			t.Fatal(err)
		}
		fNow := eval.Compute(linkSetOf(t, ds.Dict, ls.Links), ds.GroundTruth).F1
		if round > 0 && fNow > before.F1+0.05 {
			break
		}
		work := make(chan string, len(ls.Links))
		seen := map[string]bool{}
		for _, l := range ls.Links {
			if !seen[l.E1] {
				seen[l.E1] = true
				work <- l.E1
			}
		}
		close(work)

		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for e1 := range work {
					q := fmt.Sprintf("SELECT ?n WHERE { <%s> <%s> ?n . }", e1, synth.P2Name.Value)
					res, err := client.Query(q)
					if err != nil {
						t.Errorf("query %s: %v", e1, err)
						return
					}
					for _, row := range res.Rows {
						if len(row.Links) == 0 {
							continue
						}
						approve := true
						for _, lj := range row.Links {
							if !gt[lj] {
								approve = false
							}
						}
						if approve && round > 0 {
							continue
						}
						for {
							err := client.Feedback(row.Links, approve)
							if err == ErrQueueFull {
								time.Sleep(5 * time.Millisecond)
								continue
							}
							if err != nil {
								t.Errorf("feedback: %v", err)
							}
							break
						}
					}
				}
			}()
		}
		wg.Wait()
		// Let the writer drain the round before re-reading /links.
		deadline := time.Now().Add(10 * time.Second)
		for {
			h, err := client.Healthz()
			if err != nil {
				t.Fatal(err)
			}
			if h.QueueDepth == 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatal("queue never drained")
			}
			time.Sleep(10 * time.Millisecond)
		}
	}

	metrics, err := client.MetricsText()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	after := eval.Compute(s.Snapshot().Links, ds.GroundTruth)
	t.Logf("served loop: %v -> %v (snapshot v%d, episode %d)",
		before, after, s.Snapshot().Version, s.Snapshot().Episode)
	if after.F1 <= before.F1 {
		t.Fatalf("F did not improve over HTTP: %.3f -> %.3f", before.F1, after.F1)
	}
	for _, want := range []string{"alexd_queries_total", "alexd_feedback_total", "alexd_episodes_total"} {
		val := metricValue(t, metrics, want)
		if val <= 0 {
			t.Fatalf("metric %s = %v, want > 0\n%s", want, val, metrics)
		}
	}
}

func metricValue(t *testing.T, exposition, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(strings.TrimPrefix(line, name+" "), "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestConcurrentQueriesDuringFeedback races many readers against a
// steady feedback stream; run under -race this is the data-race proof
// for the snapshot-isolation design.
func TestConcurrentQueriesDuringFeedback(t *testing.T) {
	dict, sources, sys, _ := tinyWorld(t)
	_, _, client := newTestServer(t, sys, dict, sources, Config{
		EpisodeSize:   2,
		FlushInterval: 5 * time.Millisecond,
	})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			default:
			}
			err := client.Feedback([]LinkJSON{{E1: "http://ds1/a1", E2: "http://ds2/b1"}}, rng.Intn(2) == 0)
			if err != nil && err != ErrQueueFull {
				t.Errorf("feedback: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, err := client.Query(`SELECT ?n WHERE { <http://ds1/a1> <http://ds2/name> ?n . }`); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
}
