// Client is the thin HTTP client of alexd used by cmd/fedquery's
// --server mode and cmd/alexload. It speaks the JSON wire types defined
// in handlers.go.
package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// ErrQueueFull is returned by Client.Feedback when the server responded
// 429: the feedback was NOT accepted and should be retried later.
var ErrQueueFull = errors.New("server: feedback queue full (429)")

// Client talks to an alexd instance.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for addr, which may be "host:port" or a
// full http:// URL.
func NewClient(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &Client{base: base, hc: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) postJSON(path string, req, resp any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	hr, err := c.hc.Post(c.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(hr.Body)
	if err != nil {
		return hr.StatusCode, err
	}
	if hr.StatusCode >= 400 {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return hr.StatusCode, fmt.Errorf("server: %s", e.Error)
		}
		return hr.StatusCode, fmt.Errorf("server: HTTP %d", hr.StatusCode)
	}
	if resp != nil {
		if err := json.Unmarshal(data, resp); err != nil {
			return hr.StatusCode, err
		}
	}
	return hr.StatusCode, nil
}

func (c *Client) getJSON(path string, resp any) error {
	hr, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer hr.Body.Close()
	if hr.StatusCode >= 400 {
		return fmt.Errorf("server: HTTP %d", hr.StatusCode)
	}
	return json.NewDecoder(hr.Body).Decode(resp)
}

// Query evaluates a federated SPARQL query on the server.
func (c *Client) Query(query string) (*QueryResponse, error) {
	var out QueryResponse
	if _, err := c.postJSON("/query", QueryRequest{Query: query}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Feedback reports an answer-level verdict on the links of a row.
// Returns ErrQueueFull if the server is backpressuring.
func (c *Client) Feedback(rowLinks []LinkJSON, approve bool) error {
	status, err := c.postJSON("/feedback", FeedbackRequest{Approve: approve, Links: rowLinks}, nil)
	if status == http.StatusTooManyRequests {
		return ErrQueueFull
	}
	return err
}

// Links fetches the published candidate link set.
func (c *Client) Links() (*LinksResponse, error) {
	var out LinksResponse
	if err := c.getJSON("/links", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz fetches the health report.
func (c *Client) Healthz() (*HealthResponse, error) {
	var out HealthResponse
	if err := c.getJSON("/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// MetricsText fetches the raw Prometheus exposition.
func (c *Client) MetricsText() (string, error) {
	hr, err := c.hc.Get(c.base + "/metrics")
	if err != nil {
		return "", err
	}
	defer hr.Body.Close()
	data, err := io.ReadAll(hr.Body)
	return string(data), err
}
