// Client is the thin HTTP client of alexd used by cmd/fedquery's
// --server mode and cmd/alexload. It speaks the JSON wire types defined
// in handlers.go.
//
// Transient failures — transport errors, 429 backpressure and 5xx
// responses (e.g. the 503 a journal outage produces) — are retried with
// jittered exponential backoff, honoring the server's Retry-After
// header, up to RetryPolicy.MaxAttempts and never past the caller's
// context deadline. /query and /links are reads, so their retries are
// always safe. /feedback delivery is at-least-once: 429 and 503 are
// explicit not-accepted responses and retrying them is exact, but a
// transport error is ambiguous — it can strike after the server
// journaled and acked the item with the response lost in flight, in
// which case the retry applies the same verdict twice. ALEX feedback
// tolerates duplicates (a repeated verdict reinforces, never corrupts);
// callers that need at-most-once delivery instead set
// RetryPolicy.MaxAttempts to 1 and handle the ambiguity themselves.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"alex/internal/cluster"
)

// ErrQueueFull is returned by Client.Feedback when the server responded
// 429 on the final attempt: the feedback was NOT accepted and should be
// retried later.
var ErrQueueFull = errors.New("server: feedback queue full (429)")

// RetryPolicy tunes the client's handling of transient failures.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries (1 disables retries).
	MaxAttempts int
	// BackoffBase is the first retry delay; it doubles per retry with
	// full jitter, capped at BackoffMax. A server Retry-After raises
	// (never lowers) the delay.
	BackoffBase time.Duration
	BackoffMax  time.Duration
}

// DefaultRetryPolicy retries transient failures a few times within
// roughly a second and a half of cumulative backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BackoffBase: 100 * time.Millisecond, BackoffMax: 2 * time.Second}
}

// Client talks to an alexd instance.
type Client struct {
	base  string
	hc    *http.Client
	retry RetryPolicy

	mu  sync.Mutex
	rng *rand.Rand
}

// NewClient returns a client for addr, which may be "host:port" or a
// full http:// URL, with DefaultRetryPolicy.
func NewClient(addr string) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")
	return &Client{
		base:  base,
		hc:    &http.Client{Timeout: 30 * time.Second},
		retry: DefaultRetryPolicy(),
		rng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
}

// SetRetryPolicy replaces the retry policy (e.g. MaxAttempts: 1 to
// disable retries). Not safe concurrently with in-flight requests.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p }

// SetTransport replaces the underlying HTTP transport. Chaos tests
// route requests through a faultnet.Transport with it. Not safe
// concurrently with in-flight requests.
func (c *Client) SetTransport(rt http.RoundTripper) { c.hc.Transport = rt }

// CloseIdleConnections releases the client's pooled connections.
func (c *Client) CloseIdleConnections() { c.hc.CloseIdleConnections() }

// retryableStatus reports whether a response status is worth retrying:
// backpressure, server-side outages and gateway errors. 4xx are the
// caller's fault and never retried.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusInternalServerError,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter parses a Retry-After header in its delay-seconds form.
func retryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0, false
	}
	return time.Duration(secs) * time.Second, true
}

func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Duration(c.rng.Int63n(int64(d)) + 1)
}

// callBudget bounds one no-ctx convenience call: worst case, every
// attempt runs to the transport timeout and waits out the maximum
// backoff. The Context variants are the real API — this budget only
// keeps the bare wrappers from waiting forever when every attempt
// stalls (a stuck TCP peer, a transport with no timeout of its own).
func (c *Client) callBudget() time.Duration {
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	per := c.hc.Timeout
	if per <= 0 {
		per = 30 * time.Second
	}
	backoff := c.retry.BackoffMax
	if backoff < c.retry.BackoffBase {
		backoff = c.retry.BackoffBase
	}
	if backoff <= 0 {
		backoff = DefaultRetryPolicy().BackoffMax
	}
	return time.Duration(attempts) * (per + backoff)
}

// do issues one request with retries. It returns the final attempt's
// status, headers and body; err is non-nil only when no response was
// obtained at all (transport failure or context expiry).
func (c *Client) do(ctx context.Context, method, path string, body []byte) (int, http.Header, []byte, error) {
	p := c.retry
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = DefaultRetryPolicy().BackoffBase
	}
	if p.BackoffMax < p.BackoffBase {
		p.BackoffMax = p.BackoffBase
	}
	backoff := p.BackoffBase
	var lastErr error
	var wait time.Duration
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			delay := c.jitter(backoff)
			if wait > delay {
				delay = wait // the server asked for at least this much
			}
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return 0, nil, nil, fmt.Errorf("server: %w (last error: %v)", ctx.Err(), lastErr)
			}
			backoff *= 2
			if backoff > p.BackoffMax {
				backoff = p.BackoffMax
			}
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
		if err != nil {
			return 0, nil, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return 0, nil, nil, fmt.Errorf("server: %w", ctx.Err())
			}
			lastErr = err // transport error: retry
			wait = 0
			continue
		}
		data, readErr := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); readErr == nil {
			readErr = cerr
		}
		if retryableStatus(resp.StatusCode) && attempt < p.MaxAttempts-1 {
			lastErr = fmt.Errorf("server: HTTP %d", resp.StatusCode)
			wait, _ = retryAfter(resp.Header)
			continue
		}
		return resp.StatusCode, resp.Header, data, readErr
	}
	return 0, nil, nil, lastErr
}

func (c *Client) postJSON(ctx context.Context, path string, req, resp any) (int, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return 0, err
	}
	status, _, data, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return status, err
	}
	if status >= 400 {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return status, fmt.Errorf("server: %s", e.Error)
		}
		return status, fmt.Errorf("server: HTTP %d", status)
	}
	if resp != nil {
		if err := json.Unmarshal(data, resp); err != nil {
			return status, err
		}
	}
	return status, nil
}

func (c *Client) getJSON(ctx context.Context, path string, resp any) error {
	status, _, data, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	if status >= 400 {
		return fmt.Errorf("server: HTTP %d", status)
	}
	return json.Unmarshal(data, resp)
}

// Query evaluates a federated SPARQL query on the server, bounded by
// the client's retry budget. Callers with a deadline of their own use
// QueryContext.
func (c *Client) Query(query string) (*QueryResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.callBudget())
	defer cancel()
	return c.QueryContext(ctx, query)
}

// QueryContext is Query bounded by ctx (including retry backoff).
func (c *Client) QueryContext(ctx context.Context, query string) (*QueryResponse, error) {
	var out QueryResponse
	if _, err := c.postJSON(ctx, "/query", QueryRequest{Query: query}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Feedback reports an answer-level verdict on the links of a row.
// Returns ErrQueueFull if the server is still backpressuring after the
// policy's retries. Delivery is at-least-once: a retry after a lost
// response may apply the verdict twice (see the package comment).
func (c *Client) Feedback(rowLinks []LinkJSON, approve bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.callBudget())
	defer cancel()
	return c.FeedbackContext(ctx, rowLinks, approve)
}

// FeedbackContext is Feedback bounded by ctx (including retry backoff).
func (c *Client) FeedbackContext(ctx context.Context, rowLinks []LinkJSON, approve bool) error {
	status, err := c.postJSON(ctx, "/feedback", FeedbackRequest{Approve: approve, Links: rowLinks}, nil)
	if status == http.StatusTooManyRequests {
		return ErrQueueFull
	}
	return err
}

// FeedbackResult is FeedbackContext exposing the final HTTP status
// (0 when no response was obtained at all). The fleet router uses it
// to tell a client mistake (4xx, not retryable) from backpressure and
// outages (429/5xx/transport, retryable).
func (c *Client) FeedbackResult(ctx context.Context, rowLinks []LinkJSON, approve bool) (int, error) {
	return c.postJSON(ctx, "/feedback", FeedbackRequest{Approve: approve, Links: rowLinks}, nil)
}

// Links fetches the published candidate link set, bounded by the
// client's retry budget.
func (c *Client) Links() (*LinksResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.callBudget())
	defer cancel()
	return c.LinksContext(ctx)
}

// LinksContext is Links bounded by ctx. The fleet router's /links
// proxy uses it so an abandoned request stops waiting on the shard.
func (c *Client) LinksContext(ctx context.Context) (*LinksResponse, error) {
	var out LinksResponse
	if err := c.getJSON(ctx, "/links", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Healthz fetches the health report, bounded by the client's retry
// budget.
func (c *Client) Healthz() (*HealthResponse, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.callBudget())
	defer cancel()
	return c.HealthzContext(ctx)
}

// HealthzContext is Healthz bounded by ctx. The fleet router's health
// loop uses it so one dead shard cannot stall a polling round.
func (c *Client) HealthzContext(ctx context.Context) (*HealthResponse, error) {
	var out HealthResponse
	if err := c.getJSON(ctx, "/healthz", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReplicaSnapshot pulls the shard's own link-partition manifest
// (fleet replication wire; 404 on a standalone server).
func (c *Client) ReplicaSnapshot(ctx context.Context) (*cluster.SnapshotManifest, error) {
	var out cluster.SnapshotManifest
	if err := c.getJSON(ctx, "/replica/snapshot", &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// ReplicaPush offers a manifest to a peer shard. applied=false means
// the peer already held an equal-or-newer episode from that shard.
func (c *Client) ReplicaPush(ctx context.Context, m cluster.SnapshotManifest) (applied bool, err error) {
	var out struct {
		Applied bool `json:"applied"`
	}
	if _, err := c.postJSON(ctx, "/replica/push", m, &out); err != nil {
		return false, err
	}
	return out.Applied, nil
}

// TxnPrepare offers one owner its slice of a cross-shard feedback
// batch. The returned status is the final HTTP status: 202 means the
// prepare is journaled and fsynced, 200 means the transaction already
// committed, 409 means it already aborted.
func (c *Client) TxnPrepare(ctx context.Context, p cluster.TxnPrepare) (int, error) {
	return c.postJSON(ctx, "/txn/prepare", p, nil)
}

// TxnCommit marks a prepared transaction committed on one owner.
// 404 means the owner has no record of it.
func (c *Client) TxnCommit(ctx context.Context, id string) (int, error) {
	return c.postJSON(ctx, "/txn/commit", cluster.TxnMark{ID: id}, nil)
}

// TxnAbort marks a prepared transaction aborted on one owner.
func (c *Client) TxnAbort(ctx context.Context, id string) (int, error) {
	return c.postJSON(ctx, "/txn/abort", cluster.TxnMark{ID: id}, nil)
}

// TxnStatus asks one owner for a transaction's status as it knows it
// (prepared, committed, aborted or unknown). Shard resolvers use it to
// settle prepares whose router died between prepare and commit.
func (c *Client) TxnStatus(ctx context.Context, id string) (*cluster.TxnStatusReply, error) {
	var out cluster.TxnStatusReply
	if err := c.getJSON(ctx, "/txn/status?id="+url.QueryEscape(id), &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Addr returns the client's normalized base URL.
func (c *Client) Addr() string { return c.base }

// MetricsText fetches the raw Prometheus exposition, bounded by the
// client's retry budget.
func (c *Client) MetricsText() (string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.callBudget())
	defer cancel()
	return c.MetricsTextContext(ctx)
}

// MetricsTextContext is MetricsText bounded by ctx.
func (c *Client) MetricsTextContext(ctx context.Context) (string, error) {
	status, _, data, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return "", err
	}
	if status >= 400 {
		return "", fmt.Errorf("server: HTTP %d", status)
	}
	return string(data), nil
}
