package rdf

import "testing"

func TestDictInternStable(t *testing.T) {
	d := NewDict()
	a := d.Intern(IRI("http://ex.org/a"))
	b := d.Intern(IRI("http://ex.org/b"))
	if a == b {
		t.Fatal("distinct terms received the same ID")
	}
	if a2 := d.Intern(IRI("http://ex.org/a")); a2 != a {
		t.Fatalf("re-interning changed ID: %d != %d", a2, a)
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d, want 2", d.Len())
	}
}

func TestDictNoIDNeverAssigned(t *testing.T) {
	d := NewDict()
	for i := 0; i < 100; i++ {
		if id := d.Intern(Literal(string(rune('a' + i)))); id == NoID {
			t.Fatal("NoID assigned to a term")
		}
	}
}

func TestDictLookup(t *testing.T) {
	d := NewDict()
	id := d.Intern(Literal("x"))
	got, ok := d.Lookup(Literal("x"))
	if !ok || got != id {
		t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
	if _, ok := d.Lookup(Literal("missing")); ok {
		t.Fatal("Lookup found a term that was never interned")
	}
}

func TestDictTermRoundTrip(t *testing.T) {
	d := NewDict()
	terms := []Term{IRI("http://a"), Literal("lit"), LangLiteral("l", "en"), TypedLiteral("5", XSDInteger), Blank("b")}
	for _, tm := range terms {
		id := d.Intern(tm)
		if got := d.Term(id); got != tm {
			t.Errorf("Term(Intern(%v)) = %v", tm, got)
		}
	}
}

func TestDictTermPanicsOnBadID(t *testing.T) {
	d := NewDict()
	defer func() {
		if recover() == nil {
			t.Fatal("Term(NoID) did not panic")
		}
	}()
	d.Term(NoID)
}
