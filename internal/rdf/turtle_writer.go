package rdf

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteTurtle serializes g as Turtle: prefix declarations for the given
// namespace map (name → IRI prefix), triples grouped by subject with
// ';' predicate lists and ',' object lists, 'a' for rdf:type, and
// shorthand for integer/decimal/boolean literals. Subjects, predicates
// and objects are emitted in deterministic (dictionary-order) term
// order.
func WriteTurtle(w io.Writer, g *Graph, prefixes map[string]string) error {
	bw := bufio.NewWriter(w)

	names := make([]string, 0, len(prefixes))
	for name := range prefixes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(bw, "@prefix %s: <%s> .\n", name, prefixes[name]); err != nil {
			return err
		}
	}
	if len(names) > 0 {
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}

	// Longest-prefix-wins compaction.
	type prefixEntry struct{ name, iri string }
	entries := make([]prefixEntry, 0, len(prefixes))
	for name, iri := range prefixes {
		entries = append(entries, prefixEntry{name: name, iri: iri})
	}
	sort.Slice(entries, func(i, j int) bool { return len(entries[i].iri) > len(entries[j].iri) })

	var render func(t Term, allowA bool) string
	render = func(t Term, allowA bool) string {
		switch t.Kind {
		case KindIRI:
			if allowA && t.Value == RDFType {
				return "a"
			}
			for _, e := range entries {
				if strings.HasPrefix(t.Value, e.iri) {
					local := t.Value[len(e.iri):]
					if isTurtleLocalName(local) {
						return e.name + ":" + local
					}
				}
			}
			return "<" + t.Value + ">"
		case KindBlank:
			return "_:" + t.Value
		default:
			switch t.EffectiveDatatype() {
			case XSDInteger, XSDDecimal:
				if isTurtleNumber(t.Value) {
					return t.Value
				}
			case XSDBoolean:
				if t.Value == "true" || t.Value == "false" {
					return t.Value
				}
			}
			s := `"` + escapeLiteral(t.Value) + `"`
			if t.Lang != "" {
				return s + "@" + t.Lang
			}
			if dt := t.EffectiveDatatype(); dt != XSDString {
				return s + "^^" + render(IRI(dt), false)
			}
			return s
		}
	}

	d := g.Dict()
	for _, sid := range g.SubjectIDs() {
		subj := d.Term(sid)
		preds := g.PredicatesOf(sid)
		if _, err := fmt.Fprintf(bw, "%s ", render(subj, false)); err != nil {
			return err
		}
		for pi, pid := range preds {
			objs := append([]ID(nil), g.Objects(sid, pid)...)
			sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
			if pi > 0 {
				if _, err := fmt.Fprint(bw, " ;\n\t"); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%s ", render(d.Term(pid), true)); err != nil {
				return err
			}
			for oi, oid := range objs {
				if oi > 0 {
					if _, err := fmt.Fprint(bw, ", "); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprint(bw, render(d.Term(oid), false)); err != nil {
					return err
				}
			}
		}
		if _, err := fmt.Fprintln(bw, " ."); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func isTurtleLocalName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

func isTurtleNumber(s string) bool {
	if s == "" {
		return false
	}
	i := 0
	if s[0] == '+' || s[0] == '-' {
		i++
	}
	digits, dots := 0, 0
	for ; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
			digits++
		case s[i] == '.':
			dots++
		default:
			return false
		}
	}
	return digits > 0 && dots <= 1 && !strings.HasSuffix(s, ".")
}
