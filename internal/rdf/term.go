// Package rdf implements a minimal, dependency-free RDF data model: terms,
// triples, a dictionary-encoded in-memory triple store with SPO/POS/OSP
// indexes, and an N-Triples reader/writer.
//
// The package is the storage substrate for the ALEX reproduction: datasets
// are Graphs, entities are subjects, and entity attributes are
// (predicate, object) pairs read through the Entity view.
package rdf

import (
	"fmt"
	"strings"
)

// TermKind discriminates the three kinds of RDF terms.
type TermKind uint8

// The RDF term kinds.
const (
	KindIRI TermKind = iota
	KindLiteral
	KindBlank
)

// Well-known IRIs used throughout the system.
const (
	XSDString   = "http://www.w3.org/2001/XMLSchema#string"
	XSDInteger  = "http://www.w3.org/2001/XMLSchema#integer"
	XSDDecimal  = "http://www.w3.org/2001/XMLSchema#decimal"
	XSDDouble   = "http://www.w3.org/2001/XMLSchema#double"
	XSDDate     = "http://www.w3.org/2001/XMLSchema#date"
	XSDDateTime = "http://www.w3.org/2001/XMLSchema#dateTime"
	XSDBoolean  = "http://www.w3.org/2001/XMLSchema#boolean"
	RDFType     = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	RDFSLabel   = "http://www.w3.org/2000/01/rdf-schema#label"
	OWLSameAs   = "http://www.w3.org/2002/07/owl#sameAs"
	OWLThing    = "http://www.w3.org/2002/07/owl#Thing"
)

// Term is an RDF term: an IRI, a literal, or a blank node. Terms are
// comparable values and can be used as map keys.
//
// For IRIs, Value holds the IRI string. For blank nodes, Value holds the
// label (without the "_:" prefix). For literals, Value holds the lexical
// form, Datatype the datatype IRI ("" means xsd:string unless Lang is
// set), and Lang the language tag.
type Term struct {
	Kind     TermKind
	Value    string
	Datatype string
	Lang     string
}

// IRI returns an IRI term.
func IRI(iri string) Term { return Term{Kind: KindIRI, Value: iri} }

// Blank returns a blank-node term with the given label.
func Blank(label string) Term { return Term{Kind: KindBlank, Value: label} }

// Literal returns a plain string literal.
func Literal(lex string) Term { return Term{Kind: KindLiteral, Value: lex} }

// TypedLiteral returns a literal with an explicit datatype IRI.
func TypedLiteral(lex, datatype string) Term {
	return Term{Kind: KindLiteral, Value: lex, Datatype: datatype}
}

// LangLiteral returns a language-tagged string literal.
func LangLiteral(lex, lang string) Term {
	return Term{Kind: KindLiteral, Value: lex, Lang: lang}
}

// IsIRI reports whether the term is an IRI.
func (t Term) IsIRI() bool { return t.Kind == KindIRI }

// IsLiteral reports whether the term is a literal.
func (t Term) IsLiteral() bool { return t.Kind == KindLiteral }

// IsBlank reports whether the term is a blank node.
func (t Term) IsBlank() bool { return t.Kind == KindBlank }

// EffectiveDatatype returns the literal's datatype IRI, defaulting to
// xsd:string for plain literals. It returns "" for non-literals.
func (t Term) EffectiveDatatype() string {
	if t.Kind != KindLiteral {
		return ""
	}
	if t.Datatype == "" {
		return XSDString
	}
	return t.Datatype
}

// String renders the term in N-Triples syntax.
func (t Term) String() string {
	switch t.Kind {
	case KindIRI:
		return "<" + t.Value + ">"
	case KindBlank:
		return "_:" + t.Value
	default:
		var b strings.Builder
		b.WriteByte('"')
		b.WriteString(escapeLiteral(t.Value))
		b.WriteByte('"')
		if t.Lang != "" {
			b.WriteByte('@')
			b.WriteString(t.Lang)
		} else if t.Datatype != "" && t.Datatype != XSDString {
			b.WriteString("^^<")
			b.WriteString(t.Datatype)
			b.WriteByte('>')
		}
		return b.String()
	}
}

// LocalName returns the fragment or last path segment of an IRI, which is
// useful for human-readable reports. For non-IRIs it returns Value.
func (t Term) LocalName() string {
	if t.Kind != KindIRI {
		return t.Value
	}
	v := t.Value
	if i := strings.LastIndexByte(v, '#'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	if i := strings.LastIndexByte(v, '/'); i >= 0 && i+1 < len(v) {
		return v[i+1:]
	}
	return v
}

func escapeLiteral(s string) string {
	if !strings.ContainsAny(s, "\"\\\n\r\t") {
		return s
	}
	var b strings.Builder
	for _, r := range s {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\r':
			b.WriteString(`\r`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// Triple is an RDF statement.
type Triple struct {
	S, P, O Term
}

// String renders the triple as an N-Triples line (without newline).
func (t Triple) String() string {
	return fmt.Sprintf("%s %s %s .", t.S, t.P, t.O)
}
