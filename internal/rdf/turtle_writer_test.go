package rdf

import (
	"strings"
	"testing"
)

func writerGraph() *Graph {
	g := NewGraph()
	s := IRI("http://ex.org/alice")
	g.Insert(Triple{S: s, P: IRI(RDFType), O: IRI("http://ex.org/Person")})
	g.Insert(Triple{S: s, P: IRI("http://ex.org/name"), O: Literal("Alice \"A\"")})
	g.Insert(Triple{S: s, P: IRI("http://ex.org/age"), O: TypedLiteral("30", XSDInteger)})
	g.Insert(Triple{S: s, P: IRI("http://ex.org/height"), O: TypedLiteral("1.7", XSDDecimal)})
	g.Insert(Triple{S: s, P: IRI("http://ex.org/active"), O: TypedLiteral("true", XSDBoolean)})
	g.Insert(Triple{S: s, P: IRI("http://ex.org/likes"), O: Literal("x")})
	g.Insert(Triple{S: s, P: IRI("http://ex.org/likes"), O: Literal("y")})
	g.Insert(Triple{S: IRI("http://ex.org/bob"), P: IRI("http://ex.org/born"), O: TypedLiteral("1990-01-02", XSDDate)})
	g.Insert(Triple{S: Blank("n1"), P: IRI("http://ex.org/p"), O: LangLiteral("salut", "fr")})
	return g
}

func TestWriteTurtleRoundTrip(t *testing.T) {
	g := writerGraph()
	var buf strings.Builder
	err := WriteTurtle(&buf, g, map[string]string{"ex": "http://ex.org/"})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	g2 := NewGraph()
	if _, err := ReadTurtle(strings.NewReader(out), g2); err != nil {
		t.Fatalf("own output does not parse: %v\n%s", err, out)
	}
	if g2.Size() != g.Size() {
		t.Fatalf("round trip size %d, want %d\n%s", g2.Size(), g.Size(), out)
	}
	for _, tri := range g.Triples() {
		if !g2.Has(tri) {
			t.Errorf("round trip lost %v\noutput:\n%s", tri, out)
		}
	}
}

func TestWriteTurtleUsesShorthand(t *testing.T) {
	g := writerGraph()
	var buf strings.Builder
	if err := WriteTurtle(&buf, g, map[string]string{"ex": "http://ex.org/"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"@prefix ex: <http://ex.org/>", "ex:alice", " a ex:Person", "ex:age 30", "1.7", "true", `"x", "y"`, `"salut"@fr`} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "<http://ex.org/name>") {
		t.Errorf("prefix not applied:\n%s", out)
	}
}

func TestWriteTurtleNoPrefixes(t *testing.T) {
	g := NewGraph()
	g.Insert(Triple{S: IRI("http://a"), P: IRI("http://p"), O: Literal("v")})
	var buf strings.Builder
	if err := WriteTurtle(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<http://a> <http://p> \"v\" .") {
		t.Fatalf("plain output wrong:\n%s", buf.String())
	}
}

func TestWriteTurtleDeterministic(t *testing.T) {
	g := writerGraph()
	render := func() string {
		var buf strings.Builder
		if err := WriteTurtle(&buf, g, map[string]string{"ex": "http://ex.org/"}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("output not deterministic")
	}
}

func TestIsTurtleHelpers(t *testing.T) {
	if !isTurtleLocalName("abc_1-x") || isTurtleLocalName("") || isTurtleLocalName("a b") || isTurtleLocalName("a/b") {
		t.Fatal("isTurtleLocalName wrong")
	}
	if !isTurtleNumber("42") || !isTurtleNumber("-3.5") || isTurtleNumber("") || isTurtleNumber("1.") || isTurtleNumber("1e5") || isTurtleNumber("..") {
		t.Fatal("isTurtleNumber wrong")
	}
}
