package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode"
)

// ReadTurtle parses a practical subset of the Turtle language from r and
// inserts every triple into g, returning the number of triples read.
//
// Supported: @prefix and PREFIX directives, @base/BASE (resolved by
// simple concatenation for relative IRIs), prefixed names, the 'a'
// keyword, predicate lists (';'), object lists (','), string literals
// with language tags and datatypes (both quoted and triple-quoted),
// numeric and boolean shorthand literals, blank node labels (_:x) and
// comments. Collections "( ... )" and anonymous blank nodes "[ ... ]"
// are parsed as fresh blank nodes with rdf:first/rdf:rest and inline
// property expansion respectively.
func ReadTurtle(r io.Reader, g *Graph) (int, error) {
	br := bufio.NewReader(r)
	data, err := io.ReadAll(br)
	if err != nil {
		return 0, err
	}
	p := &turtleParser{in: string(data), g: g, prefixes: map[string]string{}}
	if err := p.parse(); err != nil {
		return p.count, err
	}
	return p.count, nil
}

type turtleParser struct {
	in       string
	pos      int
	line     int
	g        *Graph
	prefixes map[string]string
	base     string
	count    int
	bnodeSeq int
}

func (p *turtleParser) errf(format string, args ...any) error {
	return fmt.Errorf("turtle: line %d: %s", p.line+1, fmt.Sprintf(format, args...))
}

func (p *turtleParser) parse() error {
	for {
		p.skipWS()
		if p.pos >= len(p.in) {
			return nil
		}
		if err := p.statement(); err != nil {
			return err
		}
	}
}

func (p *turtleParser) statement() error {
	switch {
	case p.hasKeyword("@prefix"):
		return p.prefixDirective(true)
	case p.hasKeyword("PREFIX"):
		return p.prefixDirective(false)
	case p.hasKeyword("@base"):
		return p.baseDirective(true)
	case p.hasKeyword("BASE"):
		return p.baseDirective(false)
	default:
		return p.triples()
	}
}

func (p *turtleParser) hasKeyword(kw string) bool {
	if len(p.in)-p.pos < len(kw) {
		return false
	}
	seg := p.in[p.pos : p.pos+len(kw)]
	if !strings.EqualFold(seg, kw) {
		return false
	}
	// keyword must be followed by whitespace
	next := p.pos + len(kw)
	if next < len(p.in) {
		c := p.in[next]
		if c != ' ' && c != '\t' && c != '\n' && c != '\r' {
			return false
		}
	}
	p.pos += len(kw)
	return true
}

func (p *turtleParser) prefixDirective(atForm bool) error {
	p.skipWS()
	name, err := p.readUntilByte(':')
	if err != nil {
		return p.errf("malformed prefix name")
	}
	p.pos++ // ':'
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.prefixes[name] = iri
	p.skipWS()
	if atForm {
		if p.pos >= len(p.in) || p.in[p.pos] != '.' {
			return p.errf("@prefix directive must end with '.'")
		}
		p.pos++
	} else if p.pos < len(p.in) && p.in[p.pos] == '.' {
		p.pos++ // tolerate SPARQL-style PREFIX followed by '.'
	}
	return nil
}

func (p *turtleParser) baseDirective(atForm bool) error {
	p.skipWS()
	iri, err := p.iriRef()
	if err != nil {
		return err
	}
	p.base = iri
	p.skipWS()
	if atForm {
		if p.pos >= len(p.in) || p.in[p.pos] != '.' {
			return p.errf("@base directive must end with '.'")
		}
		p.pos++
	} else if p.pos < len(p.in) && p.in[p.pos] == '.' {
		p.pos++
	}
	return nil
}

func (p *turtleParser) triples() error {
	subj, err := p.subject()
	if err != nil {
		return err
	}
	if err := p.predicateObjectList(subj); err != nil {
		return err
	}
	p.skipWS()
	if p.pos >= len(p.in) || p.in[p.pos] != '.' {
		return p.errf("expected '.' after triples")
	}
	p.pos++
	return nil
}

func (p *turtleParser) predicateObjectList(subj Term) error {
	for {
		p.skipWS()
		pred, err := p.predicate()
		if err != nil {
			return err
		}
		for {
			p.skipWS()
			obj, err := p.object()
			if err != nil {
				return err
			}
			p.g.Insert(Triple{S: subj, P: pred, O: obj})
			p.count++
			p.skipWS()
			if p.pos < len(p.in) && p.in[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
		p.skipWS()
		if p.pos < len(p.in) && p.in[p.pos] == ';' {
			p.pos++
			p.skipWS()
			// allow trailing ';' before '.' or ']'
			if p.pos < len(p.in) && (p.in[p.pos] == '.' || p.in[p.pos] == ']') {
				return nil
			}
			continue
		}
		return nil
	}
}

func (p *turtleParser) subject() (Term, error) {
	p.skipWS()
	if p.pos >= len(p.in) {
		return Term{}, p.errf("unexpected end of input")
	}
	switch p.in[p.pos] {
	case '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return IRI(iri), nil
	case '_':
		return p.blankNode()
	case '[':
		return p.anonBlank()
	case '(':
		return p.collection()
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) predicate() (Term, error) {
	p.skipWS()
	if p.pos < len(p.in) && p.in[p.pos] == 'a' {
		// 'a' keyword when followed by whitespace
		if p.pos+1 >= len(p.in) || isTurtleWS(p.in[p.pos+1]) {
			p.pos++
			return IRI(RDFType), nil
		}
	}
	if p.pos < len(p.in) && p.in[p.pos] == '<' {
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return IRI(iri), nil
	}
	return p.prefixedName()
}

func (p *turtleParser) object() (Term, error) {
	p.skipWS()
	if p.pos >= len(p.in) {
		return Term{}, p.errf("unexpected end of input in object position")
	}
	c := p.in[p.pos]
	switch {
	case c == '<':
		iri, err := p.iriRef()
		if err != nil {
			return Term{}, err
		}
		return IRI(iri), nil
	case c == '_':
		return p.blankNode()
	case c == '[':
		return p.anonBlank()
	case c == '(':
		return p.collection()
	case c == '"' || c == '\'':
		return p.literal(c)
	case c >= '0' && c <= '9' || c == '+' || c == '-' || c == '.':
		return p.numberLiteral()
	case strings.HasPrefix(p.in[p.pos:], "true") && p.boundaryAt(p.pos+4):
		p.pos += 4
		return TypedLiteral("true", XSDBoolean), nil
	case strings.HasPrefix(p.in[p.pos:], "false") && p.boundaryAt(p.pos+5):
		p.pos += 5
		return TypedLiteral("false", XSDBoolean), nil
	default:
		return p.prefixedName()
	}
}

func (p *turtleParser) boundaryAt(i int) bool {
	if i >= len(p.in) {
		return true
	}
	c := rune(p.in[i])
	return !unicode.IsLetter(c) && !unicode.IsDigit(c) && c != '_'
}

func (p *turtleParser) iriRef() (string, error) {
	if p.pos >= len(p.in) || p.in[p.pos] != '<' {
		return "", p.errf("expected IRI")
	}
	p.pos++
	end := strings.IndexByte(p.in[p.pos:], '>')
	if end < 0 {
		return "", p.errf("unterminated IRI")
	}
	raw := p.in[p.pos : p.pos+end]
	p.pos += end + 1
	v, err := unescape(raw)
	if err != nil {
		return "", p.errf("%v", err)
	}
	if p.base != "" && !strings.Contains(v, "://") && !strings.HasPrefix(v, "urn:") {
		v = p.base + v
	}
	return v, nil
}

func (p *turtleParser) blankNode() (Term, error) {
	if !strings.HasPrefix(p.in[p.pos:], "_:") {
		return Term{}, p.errf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.in) {
		c := rune(p.in[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' {
			p.pos++
			continue
		}
		break
	}
	if p.pos == start {
		return Term{}, p.errf("empty blank node label")
	}
	return Blank(p.in[start:p.pos]), nil
}

func (p *turtleParser) freshBlank() Term {
	p.bnodeSeq++
	return Blank(fmt.Sprintf("ttl-gen-%d", p.bnodeSeq))
}

// anonBlank parses "[ pred obj ; ... ]" (or the empty "[]"), emitting the
// inner triples with a fresh blank subject.
func (p *turtleParser) anonBlank() (Term, error) {
	p.pos++ // '['
	b := p.freshBlank()
	p.skipWS()
	if p.pos < len(p.in) && p.in[p.pos] == ']' {
		p.pos++
		return b, nil
	}
	if err := p.predicateObjectList(b); err != nil {
		return Term{}, err
	}
	p.skipWS()
	if p.pos >= len(p.in) || p.in[p.pos] != ']' {
		return Term{}, p.errf("unterminated blank node property list")
	}
	p.pos++
	return b, nil
}

// collection parses "( o1 o2 ... )" into the standard rdf:first/rdf:rest
// list structure and returns its head (rdf:nil for the empty list).
func (p *turtleParser) collection() (Term, error) {
	const (
		rdfFirst = "http://www.w3.org/1999/02/22-rdf-syntax-ns#first"
		rdfRest  = "http://www.w3.org/1999/02/22-rdf-syntax-ns#rest"
		rdfNil   = "http://www.w3.org/1999/02/22-rdf-syntax-ns#nil"
	)
	p.pos++ // '('
	var items []Term
	for {
		p.skipWS()
		if p.pos >= len(p.in) {
			return Term{}, p.errf("unterminated collection")
		}
		if p.in[p.pos] == ')' {
			p.pos++
			break
		}
		o, err := p.object()
		if err != nil {
			return Term{}, err
		}
		items = append(items, o)
	}
	head := IRI(rdfNil)
	for i := len(items) - 1; i >= 0; i-- {
		node := p.freshBlank()
		p.g.Insert(Triple{S: node, P: IRI(rdfFirst), O: items[i]})
		p.g.Insert(Triple{S: node, P: IRI(rdfRest), O: head})
		p.count += 2
		head = node
	}
	return head, nil
}

func (p *turtleParser) literal(quote byte) (Term, error) {
	long := strings.HasPrefix(p.in[p.pos:], strings.Repeat(string(quote), 3))
	var lex string
	if long {
		p.pos += 3
		end := strings.Index(p.in[p.pos:], strings.Repeat(string(quote), 3))
		if end < 0 {
			return Term{}, p.errf("unterminated long literal")
		}
		raw := p.in[p.pos : p.pos+end]
		p.pos += end + 3
		v, err := unescape(raw)
		if err != nil {
			return Term{}, p.errf("%v", err)
		}
		lex = v
	} else {
		p.pos++
		var b strings.Builder
		for {
			if p.pos >= len(p.in) {
				return Term{}, p.errf("unterminated literal")
			}
			c := p.in[p.pos]
			if c == quote {
				p.pos++
				break
			}
			if c == '\n' {
				return Term{}, p.errf("newline in short literal")
			}
			if c == '\\' {
				if p.pos+1 >= len(p.in) {
					return Term{}, p.errf("dangling escape")
				}
				consumed, r, err := decodeEscape(p.in[p.pos:])
				if err != nil {
					return Term{}, p.errf("%v", err)
				}
				b.WriteRune(r)
				p.pos += consumed
				continue
			}
			b.WriteByte(c)
			p.pos++
		}
		lex = b.String()
	}

	// language tag or datatype
	if p.pos < len(p.in) && p.in[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.in) {
			c := p.in[p.pos]
			if c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '-' {
				p.pos++
				continue
			}
			break
		}
		if p.pos == start {
			return Term{}, p.errf("empty language tag")
		}
		return LangLiteral(lex, p.in[start:p.pos]), nil
	}
	if strings.HasPrefix(p.in[p.pos:], "^^") {
		p.pos += 2
		if p.pos < len(p.in) && p.in[p.pos] == '<' {
			dt, err := p.iriRef()
			if err != nil {
				return Term{}, err
			}
			return TypedLiteral(lex, dt), nil
		}
		dt, err := p.prefixedName()
		if err != nil {
			return Term{}, err
		}
		return TypedLiteral(lex, dt.Value), nil
	}
	return Literal(lex), nil
}

func (p *turtleParser) numberLiteral() (Term, error) {
	start := p.pos
	if p.in[p.pos] == '+' || p.in[p.pos] == '-' {
		p.pos++
	}
	digits, dots, exp := 0, 0, false
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch {
		case c >= '0' && c <= '9':
			digits++
			p.pos++
		case c == '.' && dots == 0 && !exp:
			// a '.' not followed by a digit terminates the statement
			if p.pos+1 >= len(p.in) || p.in[p.pos+1] < '0' || p.in[p.pos+1] > '9' {
				goto done
			}
			dots++
			p.pos++
		case (c == 'e' || c == 'E') && !exp && digits > 0:
			exp = true
			p.pos++
			if p.pos < len(p.in) && (p.in[p.pos] == '+' || p.in[p.pos] == '-') {
				p.pos++
			}
		default:
			goto done
		}
	}
done:
	lex := p.in[start:p.pos]
	if digits == 0 {
		return Term{}, p.errf("malformed numeric literal %q", lex)
	}
	switch {
	case exp:
		return TypedLiteral(lex, XSDDouble), nil
	case dots > 0:
		return TypedLiteral(lex, XSDDecimal), nil
	default:
		return TypedLiteral(lex, XSDInteger), nil
	}
}

func (p *turtleParser) prefixedName() (Term, error) {
	start := p.pos
	for p.pos < len(p.in) {
		c := rune(p.in[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.' && p.pos > start {
			p.pos++
			continue
		}
		break
	}
	// trailing dots belong to the statement terminator
	for p.pos > start && p.in[p.pos-1] == '.' {
		p.pos--
	}
	name := p.in[start:p.pos]
	if p.pos >= len(p.in) || p.in[p.pos] != ':' {
		return Term{}, p.errf("expected prefixed name, got %q", name)
	}
	p.pos++
	localStart := p.pos
	for p.pos < len(p.in) {
		c := rune(p.in[p.pos])
		if unicode.IsLetter(c) || unicode.IsDigit(c) || c == '_' || c == '-' || c == '.' && p.pos > localStart {
			p.pos++
			continue
		}
		break
	}
	for p.pos > localStart && p.in[p.pos-1] == '.' {
		p.pos--
	}
	local := p.in[localStart:p.pos]
	base, ok := p.prefixes[name]
	if !ok {
		return Term{}, p.errf("undeclared prefix %q", name)
	}
	return IRI(base + local), nil
}

func (p *turtleParser) readUntilByte(b byte) (string, error) {
	start := p.pos
	for p.pos < len(p.in) && p.in[p.pos] != b {
		if isTurtleWS(p.in[p.pos]) {
			return "", fmt.Errorf("unexpected whitespace")
		}
		p.pos++
	}
	if p.pos >= len(p.in) {
		return "", io.ErrUnexpectedEOF
	}
	return p.in[start:p.pos], nil
}

func isTurtleWS(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }

func (p *turtleParser) skipWS() {
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		switch {
		case c == '\n':
			p.line++
			p.pos++
		case c == ' ' || c == '\t' || c == '\r':
			p.pos++
		case c == '#':
			for p.pos < len(p.in) && p.in[p.pos] != '\n' {
				p.pos++
			}
		default:
			return
		}
	}
}
