package rdf

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestParseTripleLineBasic(t *testing.T) {
	cases := []struct {
		in   string
		want Triple
	}{
		{
			`<http://a> <http://p> <http://b> .`,
			Triple{IRI("http://a"), IRI("http://p"), IRI("http://b")},
		},
		{
			`<http://a> <http://p> "lit" .`,
			Triple{IRI("http://a"), IRI("http://p"), Literal("lit")},
		},
		{
			`<http://a> <http://p> "hi"@en .`,
			Triple{IRI("http://a"), IRI("http://p"), LangLiteral("hi", "en")},
		},
		{
			`<http://a> <http://p> "5"^^<` + XSDInteger + `> .`,
			Triple{IRI("http://a"), IRI("http://p"), TypedLiteral("5", XSDInteger)},
		},
		{
			`_:b0 <http://p> "x" .`,
			Triple{Blank("b0"), IRI("http://p"), Literal("x")},
		},
		{
			`<http://a> <http://p> "tab\there \"q\" \\ \n" .`,
			Triple{IRI("http://a"), IRI("http://p"), Literal("tab\there \"q\" \\ \n")},
		},
		{
			`<http://a> <http://p> "é\U0001F600" .`,
			Triple{IRI("http://a"), IRI("http://p"), Literal("é😀")},
		},
	}
	for _, c := range cases {
		got, err := ParseTripleLine(c.in)
		if err != nil {
			t.Errorf("ParseTripleLine(%q) error: %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTripleLine(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseTripleLineErrors(t *testing.T) {
	bad := []string{
		``,
		`<http://a> <http://p> .`,
		`<http://a> <http://p> "x"`,
		`"lit" <http://p> "x" .`,
		`<http://a> _:b "x" .`,
		`<http://a> <http://p> "unterminated .`,
		`<http://a <http://p> "x" .`,
		`<http://a> <http://p> "x" . trailing`,
		`<http://a> <http://p> "\q" .`,
		`<http://a> <http://p> "\u12" .`,
	}
	for _, in := range bad {
		if _, err := ParseTripleLine(in); err == nil {
			t.Errorf("ParseTripleLine(%q) succeeded, want error", in)
		}
	}
}

func TestReadNTriplesSkipsCommentsAndBlank(t *testing.T) {
	in := `# a comment

<http://a> <http://p> "one" .
   # indented comment
<http://a> <http://p> "two" .
`
	g := NewGraph()
	n, err := ReadNTriples(strings.NewReader(in), g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || g.Size() != 2 {
		t.Fatalf("read %d triples, graph size %d; want 2, 2", n, g.Size())
	}
}

func TestReadNTriplesReportsLine(t *testing.T) {
	in := "<http://a> <http://p> \"ok\" .\nbroken line\n"
	g := NewGraph()
	_, err := ReadNTriples(strings.NewReader(in), g)
	pe, ok := err.(*ParseError)
	if !ok {
		t.Fatalf("error type = %T, want *ParseError", err)
	}
	if pe.Line != 2 {
		t.Fatalf("error line = %d, want 2", pe.Line)
	}
}

func TestNTriplesRoundTrip(t *testing.T) {
	g := NewGraph()
	g.Insert(Triple{IRI("http://a"), IRI("http://p"), Literal("with \"quotes\" and\nnewline")})
	g.Insert(Triple{IRI("http://a"), IRI("http://q"), LangLiteral("salut", "fr")})
	g.Insert(Triple{IRI("http://b"), IRI("http://p"), TypedLiteral("2024-01-02", XSDDate)})
	g.Insert(Triple{Blank("n1"), IRI("http://p"), IRI("http://b")})

	var buf bytes.Buffer
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2 := NewGraph()
	if _, err := ReadNTriples(bytes.NewReader(buf.Bytes()), g2); err != nil {
		t.Fatal(err)
	}
	if g2.Size() != g.Size() {
		t.Fatalf("round trip size %d, want %d", g2.Size(), g.Size())
	}
	for _, tri := range g.Triples() {
		if !g2.Has(tri) {
			t.Errorf("round trip lost triple %v", tri)
		}
	}
}

// Property: any literal string survives a serialize/parse round trip.
func TestLiteralEscapeRoundTripProperty(t *testing.T) {
	f := func(s string) bool {
		if !strings.Contains(s, "\x00") && strings.ToValidUTF8(s, "") == s {
			tri := Triple{IRI("http://a"), IRI("http://p"), Literal(s)}
			got, err := ParseTripleLine(tri.String())
			return err == nil && got == tri
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
