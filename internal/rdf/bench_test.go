package rdf

import (
	"fmt"
	"strings"
	"testing"
)

func buildBenchGraph(n int) *Graph {
	g := NewGraph()
	for i := 0; i < n; i++ {
		s := IRI(fmt.Sprintf("http://e/%d", i))
		g.Insert(Triple{S: s, P: IRI("http://p/name"), O: Literal(fmt.Sprintf("entity %d", i))})
		g.Insert(Triple{S: s, P: IRI("http://p/type"), O: IRI(fmt.Sprintf("http://t/%d", i%16))})
		g.Insert(Triple{S: s, P: IRI("http://p/next"), O: IRI(fmt.Sprintf("http://e/%d", (i+1)%n))})
	}
	return g
}

func BenchmarkGraphInsert(b *testing.B) {
	g := NewGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Insert(Triple{
			S: IRI(fmt.Sprintf("http://e/%d", i%10000)),
			P: IRI(fmt.Sprintf("http://p/%d", i%8)),
			O: Literal(fmt.Sprintf("v%d", i)),
		})
	}
}

func BenchmarkGraphMatchByPredicate(b *testing.B) {
	g := buildBenchGraph(5000)
	p := IRI("http://p/type")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		g.ForEachMatch(Pattern{P: &p}, func(Triple) bool { n++; return true })
		if n != 5000 {
			b.Fatalf("n=%d", n)
		}
	}
}

func BenchmarkGraphMatchBySubjectPredicate(b *testing.B) {
	g := buildBenchGraph(5000)
	d := g.Dict()
	s, _ := d.Lookup(IRI("http://e/1234"))
	p, _ := d.Lookup(IRI("http://p/name"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.Objects(s, p)) != 1 {
			b.Fatal("missing")
		}
	}
}

func BenchmarkNTriplesParse(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "<http://e/%d> <http://p/name> \"entity number %d with a \\\"quote\\\"\" .\n", i, i)
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		if _, err := ReadNTriples(strings.NewReader(doc), g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTurtleParse(b *testing.B) {
	var sb strings.Builder
	sb.WriteString("@prefix ex: <http://e/> .\n@prefix p: <http://p/> .\n")
	for i := 0; i < 2000; i++ {
		fmt.Fprintf(&sb, "ex:e%d p:name \"entity %d\" ; p:age %d ; a p:Thing .\n", i, i, i%100)
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := NewGraph()
		if _, err := ReadTurtle(strings.NewReader(doc), g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDictIntern(b *testing.B) {
	d := NewDict()
	terms := make([]Term, 4096)
	for i := range terms {
		terms[i] = IRI(fmt.Sprintf("http://e/%d", i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Intern(terms[i%len(terms)])
	}
}
