package rdf

// ID is a dense dictionary-encoded term identifier. ID 0 is never
// assigned; it is reserved as "no term" so that zero values are safe.
type ID uint32

// NoID is the zero ID, never assigned to a term.
const NoID ID = 0

// Dict interns Terms to dense IDs. The zero value is not ready for use;
// construct with NewDict. A Dict may be shared between several Graphs so
// that IDs are comparable across datasets.
type Dict struct {
	terms []Term
	index map[Term]ID
}

// NewDict returns an empty dictionary.
func NewDict() *Dict {
	return &Dict{
		terms: make([]Term, 1), // slot 0 reserved for NoID
		index: make(map[Term]ID),
	}
}

// Intern returns the ID for t, assigning a fresh one on first sight.
func (d *Dict) Intern(t Term) ID {
	if id, ok := d.index[t]; ok {
		return id
	}
	id := ID(len(d.terms))
	d.terms = append(d.terms, t)
	d.index[t] = id
	return id
}

// Lookup returns the ID for t if it has been interned.
func (d *Dict) Lookup(t Term) (ID, bool) {
	id, ok := d.index[t]
	return id, ok
}

// Term returns the term for a previously assigned ID. It panics on NoID
// or an ID that was never assigned, which always indicates a programming
// error.
func (d *Dict) Term(id ID) Term {
	if id == NoID || int(id) >= len(d.terms) {
		panic("rdf: Term called with unassigned ID")
	}
	return d.terms[id]
}

// Len returns the number of interned terms.
func (d *Dict) Len() int { return len(d.terms) - 1 }
