// Native fuzz targets for the two RDF parsers. Both parsers consume
// untrusted dataset files (cmd/alexd -ds, cmd/fedquery), so they must
// never panic, whatever the input. The N-Triples target additionally
// checks the serializer round-trip: every triple a valid document
// yields must re-serialize to a line the parser accepts and maps to the
// same triple — the property /links?format=ntriples output relies on.
package rdf

import (
	"strings"
	"testing"
)

func FuzzNTriples(f *testing.F) {
	for _, seed := range []string{
		"<http://a> <http://p> <http://b> .\n",
		`<http://a> <http://p> "lit" .`,
		`<http://a> <http://p> "hi"@en .`,
		`<http://a> <http://p> "5"^^<http://www.w3.org/2001/XMLSchema#integer> .`,
		`_:b0 <http://p> "x" .`,
		`<http://a> <http://p> "tab\there \"q\" \\ \n" .`,
		"<http://a> <http://p> \"\\u00e9\\U0001F600\" .",
		"# a comment\n\n<http://a> <http://p> <http://b> .",
		`<http://a> <http://p> "unterminated .`,
		`<http://a> <http://p> "\u12" .`,
		"\x00\xff<>",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		g := NewGraph()
		if _, err := ReadNTriples(strings.NewReader(data), g); err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		for _, tr := range g.Triples() {
			line := tr.String()
			back, err := ParseTripleLine(line)
			if err != nil {
				t.Fatalf("round-trip parse of %q: %v", line, err)
			}
			if back != tr {
				t.Fatalf("round-trip changed the triple: %#v -> %#v (via %q)", tr, back, line)
			}
		}
	})
}

func FuzzTurtle(f *testing.F) {
	for _, seed := range []string{
		"<http://a> <http://p> <http://b> .",
		"@prefix ex: <http://example.org/> .\nex:alice ex:knows ex:bob .",
		"PREFIX ex: <http://e/>\nex:s a ex:T ; ex:p ex:a, ex:b ; ex:n 42 .",
		"@prefix ex: <http://e/> .\nex:s ex:p \"x\"@en, \"2020-01-01\"^^ex:date .",
		"ex:s ex:p ex:o .", // undeclared prefix
		"@prefix ex: <http://e/> .\nex:s ex:p 3.14, 1.5e3, true, false .",
		"@prefix ex: <http://e/> .\nex:s ex:p \"\"\"long\nstring\"\"\" .",
		"_:b0 <http://p> _:b1 .",
		"@base <http://base/> .\n<rel> <p> <o> .",
		"@prefix : <http://d/> .\n:s :p :o .",
		"<http://a> <http://p> \"unterminated .",
		"\x00\xff<>;,.",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data string) {
		g := NewGraph()
		// Any outcome but a panic is acceptable for arbitrary input.
		_, _ = ReadTurtle(strings.NewReader(data), g)
	})
}
