package rdf

import (
	"fmt"
	"sort"
	"testing"
	"testing/quick"
)

func tr(s, p, o string) Triple {
	return Triple{IRI("http://ex.org/" + s), IRI("http://ex.org/" + p), Literal(o)}
}

func TestGraphInsertDedup(t *testing.T) {
	g := NewGraph()
	if !g.Insert(tr("s", "p", "o")) {
		t.Fatal("first insert reported duplicate")
	}
	if g.Insert(tr("s", "p", "o")) {
		t.Fatal("second insert reported new")
	}
	if g.Size() != 1 {
		t.Fatalf("Size = %d, want 1", g.Size())
	}
}

func TestGraphHas(t *testing.T) {
	g := NewGraph()
	g.Insert(tr("s", "p", "o"))
	if !g.Has(tr("s", "p", "o")) {
		t.Fatal("Has missed inserted triple")
	}
	if g.Has(tr("s", "p", "other")) {
		t.Fatal("Has found absent triple")
	}
	if g.Has(tr("never", "interned", "terms")) {
		t.Fatal("Has found triple with uninterned terms")
	}
}

func TestGraphMatchAllAccessPaths(t *testing.T) {
	g := NewGraph()
	triples := []Triple{tr("s1", "p1", "o1"), tr("s1", "p2", "o2"), tr("s2", "p1", "o1"), tr("s2", "p2", "o3")}
	for _, x := range triples {
		g.Insert(x)
	}
	s1 := IRI("http://ex.org/s1")
	p1 := IRI("http://ex.org/p1")
	o1 := Literal("o1")

	count := func(pat Pattern) int {
		n := 0
		g.ForEachMatch(pat, func(Triple) bool { n++; return true })
		return n
	}
	cases := []struct {
		pat  Pattern
		want int
	}{
		{Pattern{}, 4},
		{Pattern{S: &s1}, 2},
		{Pattern{P: &p1}, 2},
		{Pattern{O: &o1}, 2},
		{Pattern{S: &s1, P: &p1}, 1},
		{Pattern{P: &p1, O: &o1}, 2},
		{Pattern{S: &s1, O: &o1}, 1},
		{Pattern{S: &s1, P: &p1, O: &o1}, 1},
	}
	for i, c := range cases {
		if got := count(c.pat); got != c.want {
			t.Errorf("case %d: matched %d, want %d", i, got, c.want)
		}
	}
}

func TestGraphMatchEarlyStop(t *testing.T) {
	g := NewGraph()
	for i := 0; i < 10; i++ {
		g.Insert(tr("s", "p", fmt.Sprintf("o%d", i)))
	}
	n := 0
	g.ForEachMatch(Pattern{}, func(Triple) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d, want 3", n)
	}
}

func TestGraphEntityView(t *testing.T) {
	g := NewGraph()
	g.Insert(tr("e", "name", "Ada"))
	g.Insert(tr("e", "born", "1815"))
	g.Insert(tr("e", "name", "Ada Lovelace"))
	s, _ := g.Dict().Lookup(IRI("http://ex.org/e"))
	attrs := g.Entity(s)
	if len(attrs) != 3 {
		t.Fatalf("Entity returned %d attributes, want 3", len(attrs))
	}
	if !sort.SliceIsSorted(attrs, func(i, j int) bool {
		if attrs[i].Pred != attrs[j].Pred {
			return attrs[i].Pred < attrs[j].Pred
		}
		return attrs[i].Obj < attrs[j].Obj
	}) {
		t.Fatal("Entity attributes are not sorted")
	}
}

func TestGraphSharedDict(t *testing.T) {
	d := NewDict()
	g1 := NewGraphWithDict(d)
	g2 := NewGraphWithDict(d)
	g1.Insert(tr("s", "p", "o"))
	g2.Insert(tr("s", "p", "o2"))
	id1, ok1 := g1.Dict().Lookup(IRI("http://ex.org/s"))
	id2, ok2 := g2.Dict().Lookup(IRI("http://ex.org/s"))
	if !ok1 || !ok2 || id1 != id2 {
		t.Fatal("shared dictionary does not produce identical IDs")
	}
}

func TestGraphCountMatch(t *testing.T) {
	g := NewGraph()
	g.Insert(tr("s", "p", "o1"))
	g.Insert(tr("s", "p", "o2"))
	s, _ := g.Dict().Lookup(IRI("http://ex.org/s"))
	p, _ := g.Dict().Lookup(IRI("http://ex.org/p"))
	if got := g.CountMatch(s, p, 0, true, true, false); got != 2 {
		t.Fatalf("CountMatch(s,p,·) = %d, want 2", got)
	}
	if got := g.CountMatch(0, 0, 0, false, false, false); got != 2 {
		t.Fatalf("CountMatch(·,·,·) = %d, want 2", got)
	}
}

// Property: inserting any set of triples yields a graph whose size equals
// the number of distinct triples and where Has holds for each.
func TestGraphInsertProperty(t *testing.T) {
	f := func(raw [][3]uint8) bool {
		g := NewGraph()
		seen := map[[3]uint8]bool{}
		for _, r := range raw {
			g.Insert(Triple{
				S: IRI(fmt.Sprintf("http://s/%d", r[0]%8)),
				P: IRI(fmt.Sprintf("http://p/%d", r[1]%4)),
				O: Literal(fmt.Sprintf("o%d", r[2]%8)),
			})
			seen[[3]uint8{r[0] % 8, r[1] % 4, r[2] % 8}] = true
		}
		if g.Size() != len(seen) {
			return false
		}
		for k := range seen {
			if !g.Has(Triple{
				S: IRI(fmt.Sprintf("http://s/%d", k[0])),
				P: IRI(fmt.Sprintf("http://p/%d", k[1])),
				O: Literal(fmt.Sprintf("o%d", k[2])),
			}) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphSubjectsObjects(t *testing.T) {
	g := NewGraph()
	g.Insert(tr("s", "p", "o1"))
	g.Insert(tr("s", "p", "o2"))
	g.Insert(tr("s2", "p", "o1"))
	d := g.Dict()
	s, _ := d.Lookup(IRI("http://ex.org/s"))
	p, _ := d.Lookup(IRI("http://ex.org/p"))
	o1, _ := d.Lookup(Literal("o1"))
	if objs := g.Objects(s, p); len(objs) != 2 {
		t.Fatalf("Objects = %d results, want 2", len(objs))
	}
	if subs := g.Subjects(p, o1); len(subs) != 2 {
		t.Fatalf("Subjects = %d results, want 2", len(subs))
	}
}

func TestGraphIDListings(t *testing.T) {
	g := NewGraph()
	g.Insert(tr("s1", "p1", "o"))
	g.Insert(tr("s2", "p2", "o"))
	if got := len(g.SubjectIDs()); got != 2 {
		t.Fatalf("SubjectIDs = %d, want 2", got)
	}
	if got := len(g.PredicateIDs()); got != 2 {
		t.Fatalf("PredicateIDs = %d, want 2", got)
	}
	s1, _ := g.Dict().Lookup(IRI("http://ex.org/s1"))
	if got := len(g.PredicatesOf(s1)); got != 1 {
		t.Fatalf("PredicatesOf = %d, want 1", got)
	}
}

// TestCountMatchAgainstEnumeration cross-checks the index-based
// CountMatch against a brute-force enumeration for every combination of
// bound positions, including IDs absent from the graph.
func TestCountMatchAgainstEnumeration(t *testing.T) {
	g := NewGraph()
	g.Insert(tr("s1", "p1", "o1"))
	g.Insert(tr("s1", "p1", "o2"))
	g.Insert(tr("s1", "p2", "o1"))
	g.Insert(tr("s2", "p1", "o1"))
	g.Insert(tr("s2", "p2", "o3"))
	g.Insert(tr("s3", "p3", "o3"))

	d := g.Dict()
	ids := []ID{}
	for _, name := range []string{"s1", "s2", "s3", "p1", "p2", "p3"} {
		id, ok := d.Lookup(IRI("http://ex.org/" + name))
		if !ok {
			t.Fatalf("missing id for %s", name)
		}
		ids = append(ids, id)
	}
	for _, name := range []string{"o1", "o2", "o3"} {
		id, ok := d.Lookup(Literal(name))
		if !ok {
			t.Fatalf("missing id for %s", name)
		}
		ids = append(ids, id)
	}
	ids = append(ids, NoID, ID(9999)) // absent / never-interned

	for _, s := range ids {
		for _, p := range ids {
			for _, o := range ids {
				for mask := 0; mask < 8; mask++ {
					haveS := mask&1 != 0
					haveP := mask&2 != 0
					haveO := mask&4 != 0
					want := 0
					g.ForEachMatchIDs(s, p, o, haveS, haveP, haveO, func(_, _, _ ID) bool {
						want++
						return true
					})
					got := g.CountMatch(s, p, o, haveS, haveP, haveO)
					if got != want {
						t.Fatalf("CountMatch(%d,%d,%d,%v,%v,%v) = %d, enumeration = %d",
							s, p, o, haveS, haveP, haveO, got, want)
					}
				}
			}
		}
	}
}
