package rdf

import "sort"

// Graph is an in-memory RDF dataset with three access-path indexes
// (SPO, POS, OSP) over dictionary-encoded term IDs. Graph is not safe for
// concurrent mutation; concurrent reads are safe once loading is done.
type Graph struct {
	dict *Dict
	spo  map[ID]map[ID][]ID
	pos  map[ID]map[ID][]ID
	osp  map[ID]map[ID][]ID
	size int
}

// NewGraph returns an empty graph with its own private dictionary.
func NewGraph() *Graph { return NewGraphWithDict(NewDict()) }

// NewGraphWithDict returns an empty graph interning terms into d. Sharing
// a dictionary across graphs makes IDs comparable across datasets, which
// the linking layers rely on.
func NewGraphWithDict(d *Dict) *Graph {
	return &Graph{
		dict: d,
		spo:  make(map[ID]map[ID][]ID),
		pos:  make(map[ID]map[ID][]ID),
		osp:  make(map[ID]map[ID][]ID),
	}
}

// Dict returns the graph's dictionary.
func (g *Graph) Dict() *Dict { return g.dict }

// Size returns the number of distinct triples.
func (g *Graph) Size() int { return g.size }

// Insert adds a triple and reports whether it was new.
func (g *Graph) Insert(t Triple) bool {
	s := g.dict.Intern(t.S)
	p := g.dict.Intern(t.P)
	o := g.dict.Intern(t.O)
	return g.InsertIDs(s, p, o)
}

// InsertIDs adds a triple given already interned IDs and reports whether
// it was new.
func (g *Graph) InsertIDs(s, p, o ID) bool {
	po := g.spo[s]
	if po == nil {
		po = make(map[ID][]ID)
		g.spo[s] = po
	}
	objs := po[p]
	for _, existing := range objs {
		if existing == o {
			return false
		}
	}
	po[p] = append(objs, o)
	addIndex(g.pos, p, o, s)
	addIndex(g.osp, o, s, p)
	g.size++
	return true
}

func addIndex(idx map[ID]map[ID][]ID, a, b, c ID) {
	m := idx[a]
	if m == nil {
		m = make(map[ID][]ID)
		idx[a] = m
	}
	m[b] = append(m[b], c)
}

// Has reports whether the triple is present.
func (g *Graph) Has(t Triple) bool {
	s, ok := g.dict.Lookup(t.S)
	if !ok {
		return false
	}
	p, ok := g.dict.Lookup(t.P)
	if !ok {
		return false
	}
	o, ok := g.dict.Lookup(t.O)
	if !ok {
		return false
	}
	for _, existing := range g.spo[s][p] {
		if existing == o {
			return true
		}
	}
	return false
}

// Objects returns the object IDs of triples (s, p, ·).
func (g *Graph) Objects(s, p ID) []ID { return g.spo[s][p] }

// Subjects returns the subject IDs of triples (·, p, o).
func (g *Graph) Subjects(p, o ID) []ID { return g.pos[p][o] }

// PredicatesOf returns the distinct predicate IDs appearing on subject s,
// in ascending ID order.
func (g *Graph) PredicatesOf(s ID) []ID {
	po := g.spo[s]
	out := make([]ID, 0, len(po))
	for p := range po {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SubjectIDs returns all distinct subject IDs in ascending order.
func (g *Graph) SubjectIDs() []ID {
	out := make([]ID, 0, len(g.spo))
	for s := range g.spo {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// PredicateIDs returns all distinct predicate IDs in ascending order.
func (g *Graph) PredicateIDs() []ID {
	out := make([]ID, 0, len(g.pos))
	for p := range g.pos {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Attribute is a (predicate, object) pair of an entity.
type Attribute struct {
	Pred ID
	Obj  ID
}

// Entity returns all (predicate, object) pairs of subject s, ordered by
// predicate then object ID. This is the "entity = set of attributes" view
// of Section 4.1 of the paper.
func (g *Graph) Entity(s ID) []Attribute {
	po := g.spo[s]
	if len(po) == 0 {
		return nil
	}
	out := make([]Attribute, 0, len(po))
	for p, objs := range po {
		for _, o := range objs {
			out = append(out, Attribute{Pred: p, Obj: o})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pred != out[j].Pred {
			return out[i].Pred < out[j].Pred
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}

// Pattern is a triple pattern; nil fields are wildcards.
type Pattern struct {
	S, P, O *Term
}

// ForEachMatch calls fn for every triple matching the pattern until fn
// returns false. Matching picks the most selective index available.
func (g *Graph) ForEachMatch(pat Pattern, fn func(Triple) bool) {
	var s, p, o ID
	var haveS, haveP, haveO bool
	if pat.S != nil {
		id, ok := g.dict.Lookup(*pat.S)
		if !ok {
			return
		}
		s, haveS = id, true
	}
	if pat.P != nil {
		id, ok := g.dict.Lookup(*pat.P)
		if !ok {
			return
		}
		p, haveP = id, true
	}
	if pat.O != nil {
		id, ok := g.dict.Lookup(*pat.O)
		if !ok {
			return
		}
		o, haveO = id, true
	}
	g.ForEachMatchIDs(s, p, o, haveS, haveP, haveO, func(ts, tp, to ID) bool {
		return fn(Triple{g.dict.Term(ts), g.dict.Term(tp), g.dict.Term(to)})
	})
}

// ForEachMatchIDs is the ID-level matcher behind ForEachMatch. The have*
// flags mark bound positions; unbound positions are wildcards. fn returns
// false to stop early.
func (g *Graph) ForEachMatchIDs(s, p, o ID, haveS, haveP, haveO bool, fn func(s, p, o ID) bool) {
	switch {
	case haveS && haveP && haveO:
		for _, oo := range g.spo[s][p] {
			if oo == o {
				fn(s, p, o)
				return
			}
		}
	case haveS && haveP:
		for _, oo := range g.spo[s][p] {
			if !fn(s, p, oo) {
				return
			}
		}
	case haveP && haveO:
		for _, ss := range g.pos[p][o] {
			if !fn(ss, p, o) {
				return
			}
		}
	case haveS && haveO:
		for _, pp := range g.osp[o][s] {
			if !fn(s, pp, o) {
				return
			}
		}
	case haveS:
		for pp, objs := range g.spo[s] {
			for _, oo := range objs {
				if !fn(s, pp, oo) {
					return
				}
			}
		}
	case haveP:
		for oo, subs := range g.pos[p] {
			for _, ss := range subs {
				if !fn(ss, p, oo) {
					return
				}
			}
		}
	case haveO:
		for ss, preds := range g.osp[o] {
			for _, pp := range preds {
				if !fn(ss, pp, o) {
					return
				}
			}
		}
	default:
		for ss, po := range g.spo {
			for pp, objs := range po {
				for _, o2 := range objs {
					if !fn(ss, pp, o2) {
						return
					}
				}
			}
		}
	}
}

// CountMatch returns the number of triples matching the ID pattern; used
// for selectivity estimation by the query engine. It counts straight off
// the index postings rather than enumerating matches, so planners can
// afford to estimate every pattern: two-bound patterns are O(1) plus one
// slice scan, one-bound patterns are O(distinct second key), and the
// all-wildcard pattern is O(1).
func (g *Graph) CountMatch(s, p, o ID, haveS, haveP, haveO bool) int {
	switch {
	case haveS && haveP && haveO:
		for _, oo := range g.spo[s][p] {
			if oo == o {
				return 1
			}
		}
		return 0
	case haveS && haveP:
		return len(g.spo[s][p])
	case haveP && haveO:
		return len(g.pos[p][o])
	case haveS && haveO:
		return len(g.osp[o][s])
	case haveS:
		n := 0
		for _, objs := range g.spo[s] {
			n += len(objs)
		}
		return n
	case haveP:
		n := 0
		for _, subs := range g.pos[p] {
			n += len(subs)
		}
		return n
	case haveO:
		n := 0
		for _, preds := range g.osp[o] {
			n += len(preds)
		}
		return n
	default:
		return g.size
	}
}

// Triples returns all triples. Intended for tests and small graphs.
func (g *Graph) Triples() []Triple {
	out := make([]Triple, 0, g.size)
	g.ForEachMatch(Pattern{}, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}
