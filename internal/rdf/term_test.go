package rdf

import "testing"

func TestTermConstructorsAndKinds(t *testing.T) {
	cases := []struct {
		term    Term
		isIRI   bool
		isLit   bool
		isBlank bool
	}{
		{IRI("http://ex.org/a"), true, false, false},
		{Literal("hello"), false, true, false},
		{TypedLiteral("3", XSDInteger), false, true, false},
		{LangLiteral("bonjour", "fr"), false, true, false},
		{Blank("b0"), false, false, true},
	}
	for _, c := range cases {
		if c.term.IsIRI() != c.isIRI || c.term.IsLiteral() != c.isLit || c.term.IsBlank() != c.isBlank {
			t.Errorf("%v: kind predicates wrong", c.term)
		}
	}
}

func TestTermString(t *testing.T) {
	cases := []struct {
		term Term
		want string
	}{
		{IRI("http://ex.org/a"), "<http://ex.org/a>"},
		{Literal("hello"), `"hello"`},
		{TypedLiteral("3", XSDInteger), `"3"^^<` + XSDInteger + `>`},
		{TypedLiteral("x", XSDString), `"x"`},
		{LangLiteral("hi", "en"), `"hi"@en`},
		{Blank("b1"), "_:b1"},
		{Literal("a\"b\\c\nd"), `"a\"b\\c\nd"`},
	}
	for _, c := range cases {
		if got := c.term.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEffectiveDatatype(t *testing.T) {
	if got := Literal("x").EffectiveDatatype(); got != XSDString {
		t.Errorf("plain literal datatype = %q, want xsd:string", got)
	}
	if got := TypedLiteral("1", XSDInteger).EffectiveDatatype(); got != XSDInteger {
		t.Errorf("typed literal datatype = %q, want xsd:integer", got)
	}
	if got := IRI("x").EffectiveDatatype(); got != "" {
		t.Errorf("IRI datatype = %q, want empty", got)
	}
}

func TestLocalName(t *testing.T) {
	cases := []struct{ iri, want string }{
		{"http://ex.org/path/Name", "Name"},
		{"http://ex.org/onto#prop", "prop"},
		{"plain", "plain"},
	}
	for _, c := range cases {
		if got := IRI(c.iri).LocalName(); got != c.want {
			t.Errorf("LocalName(%q) = %q, want %q", c.iri, got, c.want)
		}
	}
}

func TestTermComparable(t *testing.T) {
	m := map[Term]int{}
	m[IRI("http://ex.org/a")] = 1
	m[Literal("a")] = 2
	if m[IRI("http://ex.org/a")] != 1 || m[Literal("a")] != 2 {
		t.Fatal("terms are not usable as map keys")
	}
	if IRI("a") == Literal("a") {
		t.Fatal("IRI and literal with same value must differ")
	}
}
