package rdf

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"unicode/utf8"
)

// ParseError describes a syntax error in N-Triples input.
type ParseError struct {
	Line int
	Msg  string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s", e.Line, e.Msg)
}

// ReadNTriples parses N-Triples from r and inserts every triple into g.
// It returns the number of triples read (including duplicates already in
// the graph). Comment lines (#...) and blank lines are skipped.
func ReadNTriples(r io.Reader, g *Graph) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	n := 0
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		t, err := ParseTripleLine(text)
		if err != nil {
			return n, &ParseError{Line: line, Msg: err.Error()}
		}
		g.Insert(t)
		n++
	}
	return n, sc.Err()
}

// WriteNTriples writes every triple of g to w in N-Triples syntax.
func WriteNTriples(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	var werr error
	g.ForEachMatch(Pattern{}, func(t Triple) bool {
		if _, err := fmt.Fprintf(bw, "%s\n", t); err != nil {
			werr = err
			return false
		}
		return true
	})
	if werr != nil {
		return werr
	}
	return bw.Flush()
}

// ParseTripleLine parses a single N-Triples statement (which must end
// with a '.'). N-Triples documents are UTF-8 by definition; statements
// carrying invalid byte sequences are rejected rather than silently
// mangled into replacement characters.
func ParseTripleLine(s string) (Triple, error) {
	if !utf8.ValidString(s) {
		return Triple{}, fmt.Errorf("invalid UTF-8 in statement")
	}
	p := &ntParser{in: s}
	subj, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	pred, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	obj, err := p.term()
	if err != nil {
		return Triple{}, err
	}
	p.skipWS()
	if p.pos >= len(p.in) || p.in[p.pos] != '.' {
		return Triple{}, fmt.Errorf("expected terminating '.'")
	}
	p.pos++
	p.skipWS()
	if p.pos != len(p.in) {
		return Triple{}, fmt.Errorf("trailing content after '.'")
	}
	if !subj.IsIRI() && !subj.IsBlank() {
		return Triple{}, fmt.Errorf("subject must be IRI or blank node")
	}
	if !pred.IsIRI() {
		return Triple{}, fmt.Errorf("predicate must be IRI")
	}
	return Triple{S: subj, P: pred, O: obj}, nil
}

type ntParser struct {
	in  string
	pos int
}

func (p *ntParser) skipWS() {
	for p.pos < len(p.in) && (p.in[p.pos] == ' ' || p.in[p.pos] == '\t') {
		p.pos++
	}
}

func (p *ntParser) term() (Term, error) {
	p.skipWS()
	if p.pos >= len(p.in) {
		return Term{}, fmt.Errorf("unexpected end of statement")
	}
	switch p.in[p.pos] {
	case '<':
		return p.iri()
	case '_':
		return p.blank()
	case '"':
		return p.literal()
	default:
		return Term{}, fmt.Errorf("unexpected character %q", p.in[p.pos])
	}
}

func (p *ntParser) iri() (Term, error) {
	p.pos++ // consume '<'
	end := strings.IndexByte(p.in[p.pos:], '>')
	if end < 0 {
		return Term{}, fmt.Errorf("unterminated IRI")
	}
	raw := p.in[p.pos : p.pos+end]
	p.pos += end + 1
	v, err := unescape(raw)
	if err != nil {
		return Term{}, err
	}
	return IRI(v), nil
}

func (p *ntParser) blank() (Term, error) {
	if !strings.HasPrefix(p.in[p.pos:], "_:") {
		return Term{}, fmt.Errorf("malformed blank node")
	}
	p.pos += 2
	start := p.pos
	for p.pos < len(p.in) {
		c := p.in[p.pos]
		if c == ' ' || c == '\t' {
			break
		}
		p.pos++
	}
	if p.pos == start {
		return Term{}, fmt.Errorf("empty blank node label")
	}
	return Blank(p.in[start:p.pos]), nil
}

func (p *ntParser) literal() (Term, error) {
	p.pos++ // consume opening quote
	var b strings.Builder
	for {
		if p.pos >= len(p.in) {
			return Term{}, fmt.Errorf("unterminated literal")
		}
		c := p.in[p.pos]
		if c == '"' {
			p.pos++
			break
		}
		if c == '\\' {
			if p.pos+1 >= len(p.in) {
				return Term{}, fmt.Errorf("dangling escape")
			}
			consumed, r, err := decodeEscape(p.in[p.pos:])
			if err != nil {
				return Term{}, err
			}
			b.WriteRune(r)
			p.pos += consumed
			continue
		}
		b.WriteByte(c)
		p.pos++
	}
	lex := b.String()
	// Optional language tag or datatype.
	if p.pos < len(p.in) && p.in[p.pos] == '@' {
		p.pos++
		start := p.pos
		for p.pos < len(p.in) {
			c := p.in[p.pos]
			if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '-' {
				p.pos++
				continue
			}
			break
		}
		if p.pos == start {
			return Term{}, fmt.Errorf("empty language tag")
		}
		return LangLiteral(lex, p.in[start:p.pos]), nil
	}
	if strings.HasPrefix(p.in[p.pos:], "^^") {
		p.pos += 2
		if p.pos >= len(p.in) || p.in[p.pos] != '<' {
			return Term{}, fmt.Errorf("datatype must be an IRI")
		}
		dt, err := p.iri()
		if err != nil {
			return Term{}, err
		}
		return TypedLiteral(lex, dt.Value), nil
	}
	return Literal(lex), nil
}

func decodeEscape(s string) (consumed int, r rune, err error) {
	// s begins with '\'.
	switch s[1] {
	case 't':
		return 2, '\t', nil
	case 'n':
		return 2, '\n', nil
	case 'r':
		return 2, '\r', nil
	case '"':
		return 2, '"', nil
	case '\\':
		return 2, '\\', nil
	case 'u':
		return decodeHexEscape(s, 4)
	case 'U':
		return decodeHexEscape(s, 8)
	default:
		return 0, 0, fmt.Errorf("invalid escape \\%c", s[1])
	}
}

func decodeHexEscape(s string, digits int) (int, rune, error) {
	if len(s) < 2+digits {
		return 0, 0, fmt.Errorf("truncated unicode escape")
	}
	var v rune
	for i := 2; i < 2+digits; i++ {
		c := s[i]
		var d rune
		switch {
		case c >= '0' && c <= '9':
			d = rune(c - '0')
		case c >= 'a' && c <= 'f':
			d = rune(c-'a') + 10
		case c >= 'A' && c <= 'F':
			d = rune(c-'A') + 10
		default:
			return 0, 0, fmt.Errorf("invalid hex digit %q in unicode escape", c)
		}
		v = v<<4 | d
	}
	if !utf8.ValidRune(v) {
		return 0, 0, fmt.Errorf("invalid rune U+%X in unicode escape", v)
	}
	return 2 + digits, v, nil
}

func unescape(s string) (string, error) {
	if !strings.ContainsRune(s, '\\') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			i++
			continue
		}
		if i+1 >= len(s) {
			return "", fmt.Errorf("dangling escape")
		}
		consumed, r, err := decodeEscape(s[i:])
		if err != nil {
			return "", err
		}
		b.WriteRune(r)
		i += consumed
	}
	return b.String(), nil
}
