package rdf

import (
	"strings"
	"testing"
)

func parseTurtle(t *testing.T, in string) *Graph {
	t.Helper()
	g := NewGraph()
	if _, err := ReadTurtle(strings.NewReader(in), g); err != nil {
		t.Fatalf("ReadTurtle: %v", err)
	}
	return g
}

func TestTurtleBasicTriples(t *testing.T) {
	g := parseTurtle(t, `
		<http://a> <http://p> <http://b> .
		<http://a> <http://q> "hello" .
	`)
	if g.Size() != 2 {
		t.Fatalf("size = %d", g.Size())
	}
	if !g.Has(Triple{IRI("http://a"), IRI("http://q"), Literal("hello")}) {
		t.Fatal("missing literal triple")
	}
}

func TestTurtlePrefixes(t *testing.T) {
	g := parseTurtle(t, `
		@prefix foaf: <http://xmlns.com/foaf/0.1/> .
		PREFIX ex: <http://example.org/>
		ex:alice foaf:name "Alice" .
	`)
	if !g.Has(Triple{IRI("http://example.org/alice"), IRI("http://xmlns.com/foaf/0.1/name"), Literal("Alice")}) {
		t.Fatalf("prefix expansion failed: %v", g.Triples())
	}
}

func TestTurtleAKeywordAndLists(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex.org/> .
		ex:s a ex:Person ;
		     ex:likes ex:a, ex:b ;
		     ex:age 42 .
	`)
	if g.Size() != 4 {
		t.Fatalf("size = %d, want 4", g.Size())
	}
	if !g.Has(Triple{IRI("http://ex.org/s"), IRI(RDFType), IRI("http://ex.org/Person")}) {
		t.Fatal("'a' not expanded to rdf:type")
	}
	if !g.Has(Triple{IRI("http://ex.org/s"), IRI("http://ex.org/age"), TypedLiteral("42", XSDInteger)}) {
		t.Fatal("numeric shorthand missing")
	}
}

func TestTurtleLiteralForms(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex.org/> .
		@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
		ex:s ex:p1 "plain" .
		ex:s ex:p2 "hallo"@de .
		ex:s ex:p3 "2020-01-01"^^xsd:date .
		ex:s ex:p4 "esc\"aped\n" .
		ex:s ex:p5 3.14 .
		ex:s ex:p6 1.5e3 .
		ex:s ex:p7 true .
		ex:s ex:p8 false .
		ex:s ex:p9 """long
string""" .
	`)
	want := []Triple{
		{IRI("http://ex.org/s"), IRI("http://ex.org/p1"), Literal("plain")},
		{IRI("http://ex.org/s"), IRI("http://ex.org/p2"), LangLiteral("hallo", "de")},
		{IRI("http://ex.org/s"), IRI("http://ex.org/p3"), TypedLiteral("2020-01-01", XSDDate)},
		{IRI("http://ex.org/s"), IRI("http://ex.org/p4"), Literal("esc\"aped\n")},
		{IRI("http://ex.org/s"), IRI("http://ex.org/p5"), TypedLiteral("3.14", XSDDecimal)},
		{IRI("http://ex.org/s"), IRI("http://ex.org/p6"), TypedLiteral("1.5e3", XSDDouble)},
		{IRI("http://ex.org/s"), IRI("http://ex.org/p7"), TypedLiteral("true", XSDBoolean)},
		{IRI("http://ex.org/s"), IRI("http://ex.org/p8"), TypedLiteral("false", XSDBoolean)},
		{IRI("http://ex.org/s"), IRI("http://ex.org/p9"), Literal("long\nstring")},
	}
	for _, w := range want {
		if !g.Has(w) {
			t.Errorf("missing %v", w)
		}
	}
}

func TestTurtleBlankNodes(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex.org/> .
		_:b1 ex:p "x" .
		ex:s ex:knows [ ex:name "Anon" ; ex:age 5 ] .
		ex:t ex:knows [] .
	`)
	if !g.Has(Triple{Blank("b1"), IRI("http://ex.org/p"), Literal("x")}) {
		t.Fatal("labelled blank node missing")
	}
	// the anon node produced 2 inner triples + 1 outer + the empty []
	if g.Size() != 5 {
		t.Fatalf("size = %d, want 5", g.Size())
	}
}

func TestTurtleCollections(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex.org/> .
		ex:s ex:list ( "a" "b" ) .
		ex:t ex:list () .
	`)
	// list of 2: 1 outer + 4 list triples; empty list: outer only (nil object).
	if g.Size() != 6 {
		t.Fatalf("size = %d, want 6", g.Size())
	}
	nilIRI := IRI("http://www.w3.org/1999/02/22-rdf-syntax-ns#nil")
	if !g.Has(Triple{IRI("http://ex.org/t"), IRI("http://ex.org/list"), nilIRI}) {
		t.Fatal("empty collection should be rdf:nil")
	}
}

func TestTurtleBase(t *testing.T) {
	g := parseTurtle(t, `
		@base <http://ex.org/> .
		<alice> <knows> <bob> .
	`)
	if !g.Has(Triple{IRI("http://ex.org/alice"), IRI("http://ex.org/knows"), IRI("http://ex.org/bob")}) {
		t.Fatalf("base resolution failed: %v", g.Triples())
	}
}

func TestTurtleComments(t *testing.T) {
	g := parseTurtle(t, `
		# leading comment
		<http://a> <http://p> "v" . # trailing comment
		# final comment
	`)
	if g.Size() != 1 {
		t.Fatalf("size = %d", g.Size())
	}
}

func TestTurtleErrors(t *testing.T) {
	bad := []string{
		`<http://a> <http://p> .`,
		`<http://a> <http://p> "x"`,
		`@prefix ex <http://e> .`,
		`ex:a ex:b ex:c .`, // undeclared prefix
		`<http://a> <http://p> "unterminated .`,
		`@prefix ex: <http://e> ex:a ex:b "x" .`, // missing dot after @prefix
		`<http://a> <http://p> ( "x" .`,
		`<http://a> <http://p> [ <http://q> "x" .`,
	}
	for _, in := range bad {
		g := NewGraph()
		if _, err := ReadTurtle(strings.NewReader(in), g); err == nil {
			t.Errorf("ReadTurtle(%q) succeeded, want error", in)
		}
	}
}

func TestTurtleErrorReportsLine(t *testing.T) {
	in := "<http://a> <http://p> \"ok\" .\n\nbroken ttl here\n"
	g := NewGraph()
	_, err := ReadTurtle(strings.NewReader(in), g)
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error = %v, want line 3 report", err)
	}
}

func TestTurtleCountsTriples(t *testing.T) {
	g := NewGraph()
	n, err := ReadTurtle(strings.NewReader(`<http://a> <http://p> "x", "y" .`), g)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("count = %d, want 2", n)
	}
}

// TestTurtleNTriplesAgreement: a document expressible in both syntaxes
// must parse to the same graph.
func TestTurtleNTriplesAgreement(t *testing.T) {
	nt := `<http://e/1> <http://p/name> "Ada \"L\"" .
<http://e/1> <http://p/born> "1815-12-10"^^<` + XSDDate + `> .
<http://e/2> <http://p/label> "Bob"@en .
_:b <http://p/ref> <http://e/1> .
`
	ttl := `@prefix p: <http://p/> .
@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .
<http://e/1> p:name "Ada \"L\"" ; p:born "1815-12-10"^^xsd:date .
<http://e/2> p:label "Bob"@en .
_:b p:ref <http://e/1> .
`
	g1 := NewGraph()
	if _, err := ReadNTriples(strings.NewReader(nt), g1); err != nil {
		t.Fatal(err)
	}
	g2 := NewGraph()
	if _, err := ReadTurtle(strings.NewReader(ttl), g2); err != nil {
		t.Fatal(err)
	}
	if g1.Size() != g2.Size() {
		t.Fatalf("sizes differ: %d vs %d", g1.Size(), g2.Size())
	}
	for _, tri := range g1.Triples() {
		if !g2.Has(tri) {
			t.Errorf("turtle graph missing %v", tri)
		}
	}
}

// TestTurtleWriteNTriplesRoundTrip: any Turtle-parsed graph survives a
// serialize-as-N-Triples round trip.
func TestTurtleWriteNTriplesRoundTrip(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex.org/> .
		ex:s a ex:Person ; ex:likes ( "a" "b" ) ; ex:knows [ ex:name "Anon" ] .
	`)
	var buf strings.Builder
	if err := WriteNTriples(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2 := NewGraph()
	if _, err := ReadNTriples(strings.NewReader(buf.String()), g2); err != nil {
		t.Fatal(err)
	}
	if g2.Size() != g.Size() {
		t.Fatalf("round trip size %d, want %d", g2.Size(), g.Size())
	}
}

func TestTurtleTrailingSemicolon(t *testing.T) {
	g := parseTurtle(t, `
		@prefix ex: <http://ex.org/> .
		ex:s ex:p "x" ; .
	`)
	if g.Size() != 1 {
		t.Fatalf("size = %d", g.Size())
	}
}
