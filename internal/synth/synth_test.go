package synth

import (
	"math/rand"
	"testing"

	"alex/internal/eval"
	"alex/internal/links"
	"alex/internal/paris"
)

func TestGenerateDeterministic(t *testing.T) {
	p, _ := ProfileByName("opencyc-lexvo")
	a := Generate(p)
	b := Generate(p)
	if a.G1.Size() != b.G1.Size() || a.G2.Size() != b.G2.Size() {
		t.Fatalf("sizes differ: (%d,%d) vs (%d,%d)", a.G1.Size(), a.G2.Size(), b.G1.Size(), b.G2.Size())
	}
	if a.GroundTruth.SymmetricDiff(b.GroundTruth) != 0 {
		t.Fatal("ground truth differs between identical seeds")
	}
	for _, tri := range a.G1.Triples()[:50] {
		if !b.G1.Has(tri) {
			t.Fatalf("triple %v missing from second generation", tri)
		}
	}
}

func TestGenerateCounts(t *testing.T) {
	p, _ := ProfileByName("dbpedia-dogfood")
	ds := Generate(p)
	if got := len(ds.Entities1); got != p.N1 {
		t.Errorf("Entities1 = %d, want %d", got, p.N1)
	}
	if got := len(ds.Entities2); got < p.N2 {
		t.Errorf("Entities2 = %d, want ≥ %d", got, p.N2)
	}
	if got := ds.GroundTruth.Len(); got != p.Matched {
		t.Errorf("GroundTruth = %d, want %d", got, p.Matched)
	}
	// Every GT endpoint must exist in its graph.
	for _, l := range ds.GroundTruth.Slice() {
		if len(ds.G1.Entity(l.E1)) == 0 {
			t.Fatalf("GT E1 %d has no attributes", l.E1)
		}
		if len(ds.G2.Entity(l.E2)) == 0 {
			t.Fatalf("GT E2 %d has no attributes", l.E2)
		}
	}
}

func TestProfilesAllGenerate(t *testing.T) {
	for _, p := range Profiles() {
		if p.Name == "dbpedia-opencyc" && testing.Short() {
			continue
		}
		small := p.Scale(0.2)
		ds := Generate(small)
		if ds.GroundTruth.Len() == 0 {
			t.Errorf("%s: empty ground truth", p.Name)
		}
		if ds.G1.Size() == 0 || ds.G2.Size() == 0 {
			t.Errorf("%s: empty graph", p.Name)
		}
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("dbpedia-nytimes"); !ok {
		t.Fatal("dbpedia-nytimes missing")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Fatal("unknown profile found")
	}
}

func TestScale(t *testing.T) {
	p, _ := ProfileByName("dbpedia-nytimes")
	s := p.Scale(0.1)
	if s.N1 != p.N1/10 || s.Matched != p.Matched/10 {
		t.Fatalf("scaled = %+v", s)
	}
	tiny := p.Scale(0.0001)
	if tiny.N1 < 1 || tiny.Matched < 1 {
		t.Fatal("scale floor violated")
	}
}

func TestPerturbNameChanges(t *testing.T) {
	p, _ := ProfileByName("opencyc-lexvo")
	g := &generator{p: p, rng: rand.New(rand.NewSource(7))}
	for i := 0; i < 100; i++ {
		name := "Branto Kestirol"
		got := g.perturbName(name, 1+i%3)
		if got == name {
			t.Fatalf("perturbName returned the input unchanged")
		}
	}
}

// The regime tests verify the PARIS baseline lands where the paper's
// figures start. These are the load-bearing properties of the generator.

func parisRegime(t *testing.T, name string) eval.Metrics {
	t.Helper()
	p, ok := ProfileByName(name)
	if !ok {
		t.Fatalf("missing profile %s", name)
	}
	ds := Generate(p)
	scored := paris.Link(ds.G1, ds.G2, ds.Entities1, ds.Entities2, paris.NewOptions())
	cands := links.NewSet()
	for _, s := range scored {
		cands.Add(s.Link)
	}
	m := eval.Compute(cands, ds.GroundTruth)
	t.Logf("%s: PARIS %v", name, m)
	return m
}

func TestRegimeLowRecall(t *testing.T) {
	m := parisRegime(t, "dbpedia-nytimes")
	if m.Recall > 0.45 {
		t.Errorf("recall = %.2f, want low (≤ 0.45)", m.Recall)
	}
	if m.Precision < 0.7 {
		t.Errorf("precision = %.2f, want high (≥ 0.7)", m.Precision)
	}
}

func TestRegimeLowPrecision(t *testing.T) {
	m := parisRegime(t, "dbpedia-drugbank")
	if m.Precision > 0.45 {
		t.Errorf("precision = %.2f, want low (≤ 0.45)", m.Precision)
	}
	if m.Recall < 0.85 {
		t.Errorf("recall = %.2f, want high (≥ 0.85)", m.Recall)
	}
}

func TestRegimeBothLow(t *testing.T) {
	m := parisRegime(t, "dbpedia-lexvo")
	if m.Precision > 0.75 || m.Recall > 0.6 {
		t.Errorf("precision = %.2f recall = %.2f, want both lowish", m.Precision, m.Recall)
	}
}
